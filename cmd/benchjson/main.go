// Command benchjson converts `go test -bench -benchmem` output into a
// structured JSON baseline and gates regressions against a previous
// baseline.
//
// Two modes:
//
//	go test -bench=. -benchmem | benchjson -o BENCH_PR2.json
//	    Parse benchmark lines from stdin and write the JSON baseline.
//
//	benchjson -compare -threshold 0.10 OLD.json NEW.json
//	    Exit non-zero if any sweep benchmark's trials/s throughput in
//	    NEW dropped more than threshold below OLD. Micro-benchmark
//	    ns/op and allocs/op changes are reported but informational:
//	    the committed gate is throughput (see EXPERIMENTS.md).
//
// The JSON schema is documented in EXPERIMENTS.md ("Benchmarks & the
// regression gate").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	NsPerOp    float64
	BytesPerOp float64
	AllocsQty  float64
	// Metrics holds custom b.ReportMetric values by unit, notably
	// "trials/s" for the experiment sweeps.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// MarshalJSON flattens the standard units into snake_case fields.
func (b Benchmark) MarshalJSON() ([]byte, error) {
	type wire struct {
		Name        string             `json:"name"`
		Iterations  int64              `json:"iterations"`
		NsPerOp     float64            `json:"ns_per_op"`
		BytesPerOp  float64            `json:"bytes_per_op"`
		AllocsPerOp float64            `json:"allocs_per_op"`
		Metrics     map[string]float64 `json:"metrics,omitempty"`
	}
	return json.Marshal(wire{b.Name, b.Iterations, b.NsPerOp, b.BytesPerOp, b.AllocsQty, b.Metrics})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	var w struct {
		Name        string             `json:"name"`
		Iterations  int64              `json:"iterations"`
		NsPerOp     float64            `json:"ns_per_op"`
		BytesPerOp  float64            `json:"bytes_per_op"`
		AllocsPerOp float64            `json:"allocs_per_op"`
		Metrics     map[string]float64 `json:"metrics,omitempty"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*b = Benchmark{w.Name, w.Iterations, w.NsPerOp, w.BytesPerOp, w.AllocsPerOp, w.Metrics}
	return nil
}

// Baseline is the file format of BENCH_*.json.
type Baseline struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output and extracts benchmark lines
// plus the environment header.
func parse(r *bufio.Scanner) (Baseline, error) {
	var base Baseline
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			base.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX --- FAIL"
		}
		b := Benchmark{
			Name:       cpuSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
			Iterations: iters,
		}
		// Remaining fields are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return base, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsQty = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		base.Benchmarks = append(base.Benchmarks, b)
	}
	sort.Slice(base.Benchmarks, func(i, j int) bool {
		return base.Benchmarks[i].Name < base.Benchmarks[j].Name
	})
	return base, r.Err()
}

func load(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// compare gates NEW against OLD: any trials/s metric dropping more
// than threshold fails. Other changes are printed as information.
func compare(oldPath, newPath string, threshold float64) error {
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldB.Benchmarks {
		oldBy[b.Name] = b
	}
	var failures []string
	for _, nb := range newB.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("  new benchmark: %s\n", nb.Name)
			continue
		}
		if oldTPS, ok := ob.Metrics["trials/s"]; ok && oldTPS > 0 {
			newTPS := nb.Metrics["trials/s"]
			delta := (newTPS - oldTPS) / oldTPS
			status := "ok"
			if newTPS < oldTPS*(1-threshold) {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s: trials/s %.2f -> %.2f (%.1f%%, limit -%.0f%%)",
					nb.Name, oldTPS, newTPS, delta*100, threshold*100))
			}
			fmt.Printf("  %-28s trials/s %10.2f -> %10.2f  (%+.1f%%) %s\n",
				nb.Name, oldTPS, newTPS, delta*100, status)
			continue
		}
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
			fmt.Printf("  %-28s ns/op    %10.0f -> %10.0f  (%+.1f%%)  allocs/op %8.0f -> %8.0f\n",
				nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, ob.AllocsQty, nb.AllocsQty)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nthroughput regression beyond %.0f%%:\n", threshold*100)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed", len(failures))
	}
	fmt.Println("benchmark gate OK")
	return nil
}

func main() {
	out := flag.String("o", "", "write parsed baseline JSON to this file (default stdout)")
	comparePair := flag.Bool("compare", false, "compare two baseline files: benchjson -compare [-threshold F] OLD.json NEW.json")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional trials/s drop in -compare mode")
	flag.Parse()

	if *comparePair {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-threshold 0.10] OLD.json NEW.json")
			os.Exit(2)
		}
		if err := compare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	base, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(base.Benchmarks))
}
