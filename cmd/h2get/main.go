// Command h2get fetches objects from an HTTP/2 server over real TCP
// with the repository's from-scratch client. With -burst it issues
// every request back-to-back on one connection so the server
// multiplexes the responses, printing per-response timings.
//
// Usage:
//
//	h2get -addr 127.0.0.1:8443 /results/2020-presidential-quiz
//	h2get -addr 127.0.0.1:8443 -burst /o1 /o2 /o3
//	h2get -addr 127.0.0.1:8443 -survey   # the full survey page load
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/h2"
	"repro/internal/website"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr   = flag.String("addr", "127.0.0.1:8443", "server address")
		burst  = flag.Bool("burst", false, "issue all requests before reading any response")
		survey = flag.Bool("survey", false, "fetch the whole synthetic survey page")
	)
	flag.Parse()

	paths := flag.Args()
	if *survey {
		site := website.Survey(website.IdentityPermutation())
		for _, spec := range site.Schedule {
			obj, _ := site.Object(spec.ObjectID)
			paths = append(paths, obj.Path)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "h2get: no paths given (or use -survey)")
		flag.Usage()
		return 2
	}

	cl, err := h2.Dial(*addr, h2.ConnConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2get: %v\n", err)
		return 1
	}
	defer cl.Close() //nolint:errcheck // process exit follows

	start := time.Now()
	if *burst {
		resps, err := cl.GetMany("h2get.test", paths)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2get: %v\n", err)
			return 1
		}
		for i, r := range resps {
			fmt.Printf("%-40s %d  %6d bytes  (stream %d)\n", paths[i], r.Status, len(r.Body), r.StreamID)
		}
	} else {
		for _, p := range paths {
			t0 := time.Now()
			r, err := cl.Get("h2get.test", p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "h2get: %s: %v\n", p, err)
				return 1
			}
			fmt.Printf("%-40s %d  %6d bytes  %v\n", p, r.Status, len(r.Body), time.Since(t0).Round(time.Microsecond))
		}
	}
	fmt.Printf("total: %d objects in %v\n", len(paths), time.Since(start).Round(time.Millisecond))
	return 0
}
