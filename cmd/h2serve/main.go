// Command h2serve serves the synthetic survey website over real TCP
// using the repository's from-scratch HTTP/2 implementation
// (prior-knowledge cleartext h2). Pair it with h2get and h2proxy to
// run the multiplexing-serialization attack against live connections.
//
// Usage:
//
//	h2serve -addr :8443 [-chunk 1400] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"

	"repro/internal/h2"
	"repro/internal/website"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8443", "listen address")
		chunk   = flag.Int("chunk", 1400, "DATA frame chunk size (smaller = more interleaving)")
		verbose = flag.Bool("verbose", false, "log every request")
	)
	flag.Parse()

	site := website.Survey(website.IdentityPermutation())
	handler := h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
		obj, ok := site.ObjectByPath(r.Path)
		if !ok {
			if err := w.WriteHeader(404); err != nil {
				return
			}
			return
		}
		if *verbose {
			log.Printf("GET %s -> %d bytes (stream %d)", r.Path, obj.Size, r.StreamID)
		}
		w.SetHeader("content-type", contentType(obj))
		w.SetHeader("content-length", strconv.Itoa(obj.Size))
		body := make([]byte, obj.Size)
		for i := range body {
			body[i] = byte(obj.ID + i)
		}
		if _, err := w.Write(body); err != nil {
			return
		}
	})

	srv := &h2.Server{
		Handler: handler,
		Config:  h2.ConnConfig{DataChunkSize: *chunk},
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2serve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("h2serve: serving %s (%d objects) on %s", site.Name, len(site.Objects), ln.Addr())
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "h2serve: %v\n", err)
		os.Exit(1)
	}
}

func contentType(o website.Object) string {
	switch o.Kind {
	case website.KindHTML:
		return "text/html"
	case website.KindScript:
		return "application/javascript"
	case website.KindStyle:
		return "text/css"
	case website.KindImage:
		return "image/png"
	default:
		return "application/octet-stream"
	}
}
