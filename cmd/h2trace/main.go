// Command h2trace runs one simulated trial and exports its traces as
// CSV for external analysis or plotting: the middlebox's record
// observations (the adversary's view), the server's ground-truth
// frame events, and the predictor's inferences.
//
// Usage:
//
//	h2trace -seed 7 -mode attack -out trace        # writes trace-*.csv
//	h2trace -seed 7 -mode passive -out -           # records CSV to stdout
//
// -format perfetto switches from the CSV exports to a single
// Perfetto/Chrome trace_event JSON timeline of the trial's
// flight-recorder events, one track per simulated layer — load it at
// https://ui.perfetto.dev or chrome://tracing:
//
//	h2trace -seed 7 -format perfetto -out trial.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/website"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed   = flag.Int64("seed", 1, "trial seed")
		mode   = flag.String("mode", "attack", "adversary: passive | jitter | attack")
		out    = flag.String("out", "trace", "output prefix (csv) or file (perfetto); - for stdout")
		format = flag.String("format", "csv", "export format: csv | perfetto")
	)
	flag.Parse()

	var rec *obs.Recorder
	cfg := h2sim.SessionConfig{Seed: *seed}
	switch *format {
	case "csv":
	case "perfetto":
		// The timeline renders the flight-recorder ring, so the trial
		// runs with a recording sink attached (CSV mode keeps the zero
		// sink — its exports read the ground-truth structures directly).
		rec = obs.NewRecorder(4096)
		cfg.Obs = obs.Sink{}.WithRecorder(rec)
	default:
		fmt.Fprintf(os.Stderr, "h2trace: unknown format %q (want csv or perfetto)\n", *format)
		return 2
	}

	site := website.Survey(website.IdentityPermutation())
	sess := h2sim.NewSession(site, cfg)
	var atk *core.Attack
	switch *mode {
	case "passive":
		atk = core.InstallPassive(sess)
	case "jitter":
		atk = core.Install(sess, core.AttackConfig{Phase1Spacing: 50 * time.Millisecond})
	case "attack":
		atk = core.Install(sess, core.PaperAttack())
	default:
		fmt.Fprintf(os.Stderr, "h2trace: unknown mode %q\n", *mode)
		return 2
	}
	if rec != nil {
		atk.Obs = cfg.Obs
	}
	sess.Run()

	if rec != nil {
		if err := writePerfetto(rec, *seed, *mode, *out); err != nil {
			fmt.Fprintf(os.Stderr, "h2trace: %v\n", err)
			return 1
		}
		return 0
	}

	if *out == "-" {
		if err := writeRecords(os.Stdout, atk); err != nil {
			fmt.Fprintf(os.Stderr, "h2trace: %v\n", err)
			return 1
		}
		return 0
	}
	files := map[string]func(io.Writer) error{
		*out + "-records.csv":    func(w io.Writer) error { return writeRecords(w, atk) },
		*out + "-frames.csv":     func(w io.Writer) error { return writeFrames(w, sess) },
		*out + "-copies.csv":     func(w io.Writer) error { return writeCopies(w, sess, site) },
		*out + "-inferences.csv": func(w io.Writer) error { return writeInferences(w, atk) },
	}
	for name, fn := range files {
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2trace: %v\n", err)
			return 1
		}
		werr := fn(f)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "h2trace: writing %s: %v %v\n", name, werr, cerr)
			return 1
		}
		fmt.Printf("wrote %s\n", name)
	}
	return 0
}

// writePerfetto renders the trial's flight-recorder ring as
// trace_event JSON. out is the target file (".json" is appended to a
// bare prefix so the default -out writes trace.json), or - for stdout.
func writePerfetto(rec *obs.Recorder, seed int64, mode, out string) error {
	data := telemetry.AppendTrace(nil, rec.Events(), fmt.Sprintf("seed %d %s", seed, mode))
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if !strings.HasSuffix(out, ".json") {
		out += ".json"
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// writeRecords dumps the adversary's record observations.
func writeRecords(w io.Writer, atk *core.Attack) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "dir", "content_type", "cipher_len"}); err != nil {
		return err
	}
	for _, r := range atk.Monitor.Records {
		if err := cw.Write([]string{
			strconv.FormatInt(r.Time.Microseconds(), 10),
			r.Dir.String(),
			strconv.Itoa(int(r.ContentType)),
			strconv.Itoa(r.Length),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeFrames dumps the server's ground-truth frame events.
func writeFrames(w io.Writer, sess *h2sim.Session) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "object", "copy", "stream", "len", "offset", "end"}); err != nil {
		return err
	}
	for _, f := range sess.GroundTruth.Frames {
		if err := cw.Write([]string{
			strconv.FormatInt(f.Time.Microseconds(), 10),
			strconv.Itoa(f.ObjectID),
			strconv.Itoa(f.CopyID),
			strconv.FormatUint(uint64(f.StreamID), 10),
			strconv.Itoa(f.Len),
			strconv.FormatInt(f.Offset, 10),
			strconv.FormatBool(f.End),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeCopies dumps the per-copy multiplexing analysis.
func writeCopies(w io.Writer, sess *h2sim.Session, site *website.Site) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"object", "label", "copy", "bytes", "complete", "degree", "start_us", "end_us"}); err != nil {
		return err
	}
	for _, c := range analysis.CopyTransmissions(sess.GroundTruth) {
		obj, _ := site.Object(c.Key.ObjectID)
		if err := cw.Write([]string{
			strconv.Itoa(c.Key.ObjectID),
			obj.Label,
			strconv.Itoa(c.Key.CopyID),
			strconv.Itoa(c.Bytes),
			strconv.FormatBool(c.Complete),
			strconv.FormatFloat(c.Degree, 'f', 3, 64),
			strconv.FormatInt(c.StartTime.Microseconds(), 10),
			strconv.FormatInt(c.EndTime.Microseconds(), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeInferences dumps what the adversary concluded.
func writeInferences(w io.Writer, atk *core.Attack) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_us", "end_us", "records", "est_size", "identified"}); err != nil {
		return err
	}
	for _, inf := range atk.Infer() {
		id := ""
		if inf.Object != nil {
			id = inf.Object.Label
		}
		if err := cw.Write([]string{
			strconv.FormatInt(inf.Start.Microseconds(), 10),
			strconv.FormatInt(inf.End.Microseconds(), 10),
			strconv.Itoa(inf.Records),
			strconv.Itoa(inf.EstSize),
			id,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
