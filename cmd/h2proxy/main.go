// Command h2proxy is a live TCP-level attack proxy for HTTP/2
// (prior-knowledge cleartext) connections: the real-network analogue
// of the paper's compromised gateway. It forwards a connection to the
// target server while
//
//   - spacing out client request frames (the paper's jitter knob),
//   - throttling the server→client byte rate (the bandwidth knob),
//   - stalling the response direction for a window after the Nth
//     request (the TCP-stream-safe analogue of the targeted-drop
//     phase), and
//   - printing the per-stream interleaving pattern it observes, which
//     is exactly the view a size side-channel adversary has.
//
// A TCP proxy cannot drop individual bytes of a stream without
// corrupting it, so the drop phase is modelled as a forwarding stall;
// see DESIGN.md.
//
// Usage:
//
//	h2proxy -listen 127.0.0.1:9443 -target 127.0.0.1:8443 \
//	        -spacing 50ms -throttle 10000000 -stall-at 6 -stall-for 3s -monitor
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/h2"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9443", "listen address")
		target   = flag.String("target", "127.0.0.1:8443", "upstream server address")
		spacing  = flag.Duration("spacing", 0, "minimum spacing between forwarded client requests")
		throttle = flag.Int64("throttle", 0, "server->client byte rate limit (bits/sec, 0 = off)")
		stallAt  = flag.Int("stall-at", 0, "stall responses after the Nth request (0 = off)")
		stallFor = flag.Duration("stall-for", 3*time.Second, "response stall duration")
		monitor  = flag.Bool("monitor", false, "print observed frames per direction")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2proxy: %v\n", err)
		os.Exit(1)
	}
	log.Printf("h2proxy: %s -> %s (spacing=%v throttle=%d stall-at=%d)",
		*listen, *target, *spacing, *throttle, *stallAt)
	for {
		cc, err := ln.Accept()
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2proxy: accept: %v\n", err)
			os.Exit(1)
		}
		p := &proxyConn{
			client:   cc,
			target:   *target,
			spacing:  *spacing,
			throttle: *throttle,
			stallAt:  *stallAt,
			stallFor: *stallFor,
			monitor:  *monitor,
		}
		go p.run()
	}
}

// proxyConn relays one client connection through the attack schedule.
type proxyConn struct {
	client   net.Conn
	target   string
	spacing  time.Duration
	throttle int64
	stallAt  int
	stallFor time.Duration
	monitor  bool

	mu        sync.Mutex
	requests  int
	stallGate chan struct{} // closed when the response stall begins
}

func (p *proxyConn) run() {
	defer p.client.Close() //nolint:errcheck // teardown
	sc, err := net.Dial("tcp", p.target)
	if err != nil {
		log.Printf("h2proxy: dial %s: %v", p.target, err)
		return
	}
	defer sc.Close() //nolint:errcheck // teardown
	log.Printf("h2proxy: relaying %s", p.client.RemoteAddr())

	p.stallGate = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.relayRequests(sc, p.client)
		_ = sc.(*net.TCPConn).CloseWrite() //nolint:errcheck // half-close
	}()
	go func() {
		defer wg.Done()
		p.relayResponses(p.client, sc)
		_ = p.client.(*net.TCPConn).CloseWrite() //nolint:errcheck // half-close
	}()
	wg.Wait()
}

// relayRequests forwards client bytes through a RequestPacer, which
// re-segments at frame boundaries, spaces out request HEADERS, and
// feeds the stall trigger.
func (p *proxyConn) relayRequests(dst io.Writer, src io.Reader) {
	pacer := h2.NewRequestPacer(dst, p.spacing, true)
	pacer.OnFrame = func(f h2.Frame) {
		switch fv := f.(type) {
		case *h2.HeadersFrame:
			p.onRequest()
			if p.monitor {
				log.Printf("  c->s HEADERS stream=%d (%d bytes)", fv.StreamID, len(fv.BlockFragment))
			}
		case *h2.RSTStreamFrame:
			if p.monitor {
				log.Printf("  c->s RST_STREAM stream=%d %v", fv.StreamID, fv.Code)
			}
		}
	}
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := pacer.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// onRequest counts requests and arms the response stall.
func (p *proxyConn) onRequest() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	if p.stallAt > 0 && p.requests == p.stallAt {
		close(p.stallGate)
	}
}

// relayResponses forwards server bytes under the throttle, pausing
// for the stall window when the gate fires.
func (p *proxyConn) relayResponses(dst io.Writer, src io.Reader) {
	var scanner h2.FrameScanner
	buf := make([]byte, 16<<10)
	stalled := false
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if !stalled {
				select {
				case <-p.stallGate:
					stalled = true
					log.Printf("h2proxy: stalling responses for %v (request %d seen)", p.stallFor, p.stallAt)
					time.Sleep(p.stallFor)
				default:
				}
			}
			if p.throttle > 0 {
				// Token-bucket-free approximation: sleep for the
				// serialization time of the chunk at the target rate.
				time.Sleep(time.Duration(int64(n) * 8 * int64(time.Second) / p.throttle))
			}
			if p.monitor {
				if frames, ferr := scanner.Feed(chunk); ferr == nil {
					for _, f := range frames {
						if d, ok := f.(*h2.DataFrame); ok {
							marker := ""
							if d.EndStream {
								marker = " END"
							}
							log.Printf("  s->c DATA stream=%d len=%d%s", d.StreamID, len(d.Data), marker)
						}
					}
				}
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
