package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// readWallTrials parses a bundle snapshot file and returns its wall
// trial count — the quickest proof the snapshot covers real work.
func readWallTrials(t *testing.T, path string) uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := &obs.Snapshot{}
	if err := json.Unmarshal(data, snap); err != nil {
		t.Fatal(err)
	}
	if snap.Wall == nil {
		return 0
	}
	return snap.Wall.Trials
}

// TestShardModeRerunKeepsSnapshot pins the resume contract of a shard
// that already finished: rerunning the same command must short-circuit
// on the done checkpoint and leave the bundle byte-identical — in
// particular it must NOT overwrite the obs snapshot with the fresh
// (empty) ObsState the short-circuited pipeline never populated.
func TestShardModeRerunKeepsSnapshot(t *testing.T) {
	dir := t.TempDir()
	defs := experiment.Sweeps(2, 1)[4:5] // delay sweep, 2 trials/config
	f := shardModeFlags{defs: defs, jobs: 2, checkpointEvery: 2}

	if err := runShardMode("1/1", dir, f); err != nil {
		t.Fatal(err)
	}
	name := defs[0].Name
	snapPath := filepath.Join(dir, name+".obs.json")
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := readWallTrials(t, snapPath); got != uint64(defs[0].Trials) {
		t.Fatalf("fresh bundle snapshot covers %d trials, want %d", got, defs[0].Trials)
	}
	jsonlBefore, err := os.ReadFile(filepath.Join(dir, name+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	if err := runShardMode("1/1", dir, f); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("rerun of a complete shard rewrote the obs snapshot:\n%s\nvs\n%s", after, before)
	}
	jsonlAfter, err := os.ReadFile(filepath.Join(dir, name+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonlBefore, jsonlAfter) {
		t.Fatal("rerun of a complete shard rewrote the results JSONL")
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("rerun of a complete shard lost the manifest: %v", err)
	}
}

// TestShardModeRecoversSnapshotFromCheckpoint covers the crash window
// between the final done checkpoint and the snapshot file write: the
// rerun short-circuits, finds no snapshot file, and must reconstruct
// it from the obs-state recorded inside the done checkpoint.
func TestShardModeRecoversSnapshotFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	defs := experiment.Sweeps(2, 1)[4:5]
	f := shardModeFlags{defs: defs, jobs: 2, checkpointEvery: 2}

	if err := runShardMode("1/1", dir, f); err != nil {
		t.Fatal(err)
	}
	name := defs[0].Name
	snapPath := filepath.Join(dir, name+".obs.json")
	if err := os.Remove(snapPath); err != nil {
		t.Fatal(err)
	}

	if err := runShardMode("1/1", dir, f); err != nil {
		t.Fatal(err)
	}
	if got := readWallTrials(t, snapPath); got != uint64(defs[0].Trials) {
		t.Fatalf("recovered snapshot covers %d trials, want %d", got, defs[0].Trials)
	}
}
