package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/website"
)

// surveyFlags carries the -survey mode's configuration out of main.
type surveyFlags struct {
	plane      *telemetryPlane
	corpus     int
	siteTrials int
	seed       int64
	jobs       int
	progress   bool
	metrics    bool

	export          string
	checkpoint      string
	checkpointEvery int
	maxTrials       int
	exportQueue     int
	exportBuf       int
}

// runSurvey executes a survey campaign: the paper's attack against a
// synthetic site corpus, streamed through the pipeline to the
// exporters named by -export, with optional checkpoint/resume.
func runSurvey(f surveyFlags) error {
	if f.corpus <= 0 {
		return fmt.Errorf("-corpus must be positive, got %d", f.corpus)
	}
	if f.siteTrials <= 0 {
		f.siteTrials = 1
	}
	cfg := experiment.SurveyConfig{
		Corpus: website.CorpusConfig{
			Seed:  uint64(f.seed),
			Sites: f.corpus,
		},
		SiteTrials: f.siteTrials,
		Seed:       f.seed,
	}
	s := experiment.NewSurvey(cfg)

	var (
		exporters []pipeline.Exporter[experiment.CorpusTrialParams, experiment.SurveyResult]
		summary   *experiment.SurveySummary
		reg       *obs.Registry
	)
	if f.metrics {
		reg = obs.NewRegistry()
	}
	for _, spec := range strings.Split(f.export, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, arg, hasArg := strings.Cut(spec, "=")
		switch {
		case name == "summary" && !hasArg:
			if summary == nil {
				summary = experiment.NewSurveySummary()
				exporters = append(exporters, summary)
			}
		case name == "jsonl" && hasArg:
			exporters = append(exporters, experiment.SurveyJSONL(arg))
		case name == "obs" && hasArg:
			if reg == nil {
				reg = obs.NewRegistry()
			}
			exporters = append(exporters, experiment.SurveyObsExport(reg, arg))
		default:
			return fmt.Errorf("-export: unknown spec %q (want summary, jsonl=FILE, or obs=FILE)", spec)
		}
	}
	if len(exporters) == 0 {
		return fmt.Errorf("-export: no exporters configured")
	}
	if reg != nil {
		s.SetMetrics(reg)
	}

	f.plane.campaign(s.Name(), s.Fingerprint(), "", s.Trials())
	pcfg := pipeline.Config{
		Workers:         f.jobs,
		Checkpoint:      f.checkpoint,
		CheckpointEvery: f.checkpointEvery,
		MaxTrials:       f.maxTrials,
		Stop:            interruptChannel(),
		ExportQueue:     f.exportQueue,
		WriterBuf:       f.exportBuf,
		Gauges:          f.plane.liveGauges(),
	}
	var inner func(runner.Progress)
	if f.progress {
		inner = progressPrinter("survey")
	}
	pcfg.OnProgress = f.plane.progress(inner)

	sum, err := s.Run(pcfg, exporters...)
	if err != nil {
		return err
	}
	fmt.Printf("survey: %d sites x %d trials, %d/%d trials exported (this run: %d)\n",
		f.corpus, s.Trials()/f.corpus, sum.Exported, sum.Trials, sum.Exported-sum.Start)
	if len(sum.Failures) > 0 {
		fmt.Printf("survey: %d trials panicked and were exported as zero results\n", len(sum.Failures))
	}
	if !sum.Done {
		if f.checkpoint != "" {
			fmt.Printf("survey: stopped at trial %d; rerun with the same flags and -checkpoint %s to resume\n",
				sum.Exported, f.checkpoint)
		} else {
			fmt.Println("survey: stopped (no -checkpoint, progress not saved)")
		}
		return nil
	}
	if summary != nil {
		fmt.Println()
		fmt.Print(summary.Format())
	}
	if reg != nil && f.metrics {
		fmt.Printf("\nmetrics: survey\n%s\n", reg.Snapshot().Text())
	}
	return nil
}

// interruptChannel returns a channel closed on the first SIGINT, so a
// long campaign checkpoints and exits cleanly; a second SIGINT kills
// the process as usual.
func interruptChannel() <-chan struct{} {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "survey: interrupt — checkpointing and stopping")
		close(stop)
		signal.Stop(sigc)
	}()
	return stop
}
