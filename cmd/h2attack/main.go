// Command h2attack runs the paper's experiments on the simulation
// stack and prints the tables and series the paper reports.
//
// Usage:
//
//	h2attack -table1            # Table I (jitter sweep)
//	h2attack -fig5              # Figure 5 (bandwidth sweep)
//	h2attack -drops             # Section IV-D (targeted drops)
//	h2attack -table2            # Table II (full attack accuracy)
//	h2attack -delay             # Section IV-A control (uniform delay)
//	h2attack -all               # everything
//	h2attack -trial -seed 42    # one verbose full-attack trial
//
// Use -trials and -seed to control the sweep size and reproducibility.
// Sweeps fan their trials across -j worker goroutines (default: all
// CPUs); the printed tables are identical at every -j because trial
// seeds derive from the trial index, not the worker. -progress shows
// a live completion/ETA line on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiment"
	"repro/internal/runner"
	"repro/internal/website"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		table1     = flag.Bool("table1", false, "reproduce Table I (jitter sweep)")
		fig5       = flag.Bool("fig5", false, "reproduce Figure 5 (bandwidth sweep)")
		drops      = flag.Bool("drops", false, "reproduce section IV-D (targeted drops)")
		table2     = flag.Bool("table2", false, "reproduce Table II (full attack)")
		delay      = flag.Bool("delay", false, "run the section IV-A uniform-delay control")
		defenses   = flag.Bool("defenses", false, "evaluate the section VII defence proposals")
		all        = flag.Bool("all", false, "run every experiment")
		trial      = flag.Bool("trial", false, "run one verbose full-attack trial")
		trials     = flag.Int("trials", 100, "page loads per configuration")
		seed       = flag.Int64("seed", 1, "base seed (trial i uses seed+i)")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "trial worker goroutines per sweep (1 = serial)")
		progress   = flag.Bool("progress", false, "report sweep completion and ETA on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -memprofile: %v\n", err)
			return 1
		}
		defer func() {
			// The allocation profile is written at exit so it covers
			// the whole run; GC first so the heap samples are current.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "h2attack: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	// sweepOpts builds the per-sweep execution options: the worker
	// count plus, with -progress, a stderr ticker. Results do not
	// depend on either (trial seeds derive from the trial index).
	sweepOpts := func(name string) []experiment.Option {
		opts := []experiment.Option{experiment.Workers(*jobs)}
		if *progress {
			lastPct := -1
			opts = append(opts, experiment.OnProgress(func(p runner.Progress) {
				pct := 100 * p.Completed / p.Total
				if pct == lastPct && p.Completed < p.Total {
					return
				}
				lastPct = pct
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials (%d%%), eta %v ",
					name, p.Completed, p.Total, pct, p.Remaining.Round(time.Second))
				if p.Completed == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			}))
		}
		return opts
	}

	if *all {
		*table1, *fig5, *drops, *table2, *delay, *defenses = true, true, true, true, true, true
	}
	ran := false
	if *table1 {
		fmt.Print(experiment.FormatTableI(experiment.TableI(*trials, *seed, sweepOpts("table1")...)))
		fmt.Println()
		ran = true
	}
	if *fig5 {
		fmt.Print(experiment.FormatFig5(experiment.Fig5(*trials, *seed, sweepOpts("fig5")...)))
		fmt.Println()
		ran = true
	}
	if *drops {
		fmt.Print(experiment.FormatDropSweep(experiment.DropSweep(*trials, *seed, sweepOpts("drops")...)))
		fmt.Println()
		ran = true
	}
	if *table2 {
		fmt.Print(experiment.FormatTableII(experiment.TableII(*trials, *seed, sweepOpts("table2")...)))
		fmt.Println()
		ran = true
	}
	if *delay {
		fmt.Print(experiment.FormatDelaySweep(experiment.DelaySweep(*trials, *seed, sweepOpts("delay")...)))
		fmt.Println()
		ran = true
	}
	if *defenses {
		fmt.Print(experiment.FormatDefenses(experiment.Defenses(*trials, *seed, sweepOpts("defenses")...)))
		fmt.Println()
		ran = true
	}
	if *trial {
		runOneTrial(*seed)
		ran = true
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return 0
}

// runOneTrial narrates a single full-attack page load.
func runOneTrial(seed int64) {
	r := experiment.RunTrial(experiment.TrialParams{
		Seed: seed,
		Mode: experiment.ModeFullAttack,
	})
	fmt.Printf("seed %d: full paper attack on the survey site\n", seed)
	fmt.Printf("  connection broken:        %v\n", r.Broken)
	fmt.Printf("  page completed:           %v (load time %v)\n", r.PageComplete, r.LoadTime)
	fmt.Printf("  stream resets forced:     %d\n", r.Resets)
	fmt.Printf("  duplicate requests:       %d\n", r.ReRequests)
	fmt.Printf("  total retransmissions:    %d\n", r.Retransmissions)
	fmt.Printf("  result HTML clean copy:   %v (degree of original %.2f)\n", r.HTMLCleanAny, r.HTMLDegree)
	fmt.Printf("  result HTML identified:   %v\n", r.HTMLIdentified)
	fmt.Printf("  survey outcome (truth):   %s\n", partyNames(r.TruthOrder))
	fmt.Printf("  adversary's prediction:   %s\n", partyNames(r.PredOrder))
	correct := 0
	for i := range r.TruthOrder {
		if r.ImageSuccess(i) {
			correct++
		}
	}
	fmt.Printf("  positions recovered:      %d/%d\n", correct, website.PartyCount)
}

func partyNames(order [website.PartyCount]int) string {
	s := ""
	for i, p := range order {
		if i > 0 {
			s += " > "
		}
		if p < 0 || p >= website.PartyCount {
			s += "?"
			continue
		}
		s += website.PartyLabels[p]
	}
	return s
}
