// Command h2attack runs the paper's experiments on the simulation
// stack and prints the tables and series the paper reports.
//
// Usage:
//
//	h2attack -table1            # Table I (jitter sweep)
//	h2attack -fig5              # Figure 5 (bandwidth sweep)
//	h2attack -drops             # Section IV-D (targeted drops)
//	h2attack -table2            # Table II (full attack accuracy)
//	h2attack -delay             # Section IV-A control (uniform delay)
//	h2attack -defenses          # Section VII defence evaluation
//	h2attack -all               # everything
//	h2attack -trial -seed 42    # one verbose full-attack trial
//	h2attack -events 42         # flight-recorder dump of one trial
//	                            # (seed=42 also accepted)
//	h2attack -events-trace trial.json -seed 42
//	                            # the same ring as a Perfetto timeline
//
// Survey campaigns run the attack against a synthetic site corpus
// through the streaming pipeline, with checkpointed resume:
//
//	h2attack -survey -corpus 1000 -export summary,jsonl=out.jsonl \
//	         -checkpoint ck.json -progress
//
// Interrupt a campaign with ^C (or bound it with -max-trials); rerun
// the same command to resume from the checkpoint — the final exporter
// output is byte-identical to an uninterrupted run.
//
// Any selection of campaigns also splits across OS processes: each
// process runs one contiguous slice of every selected campaign into a
// self-describing bundle directory, and a merge run reassembles the
// bundles into output byte-identical to a single process:
//
//	h2attack -all -shard 1/3 -shard-dir s1     # likewise 2/3, 3/3
//	h2attack -all -merge s1,s2,s3
//
// scripts/shard.sh wraps the fan-out and merge in one command. An
// interrupted shard resumes when rerun (bundles carry per-campaign
// checkpoints); -merge refuses incomplete bundles and bundles whose
// campaign fingerprints do not match the merge run's own flags.
//
// Use -trials and -seed to control the sweep size and reproducibility.
// Sweeps fan their trials across -j worker goroutines (default: all
// CPUs); the printed tables are identical at every -j because trial
// seeds derive from the trial index, not the worker. -progress shows
// a live completion/ETA line on stderr.
//
// -status ADDR serves live wall-side telemetry while any campaign
// runs: /metrics (Prometheus text), /status (JSON progress and health
// gauges), /events?seed=N (on-demand flight-recorder replay). The
// plane samples atomics the trial paths update; nothing it observes
// feeds back into campaign output, which stays byte-identical with it
// on or off.
//
// -metrics prints a cross-layer metrics summary after each sweep
// (counters and histograms per configuration segment, plus wall-clock
// throughput); -metrics-json FILE exports the same snapshots as JSON
// next to the BENCH_*.json baselines. The sim-domain portion of both
// is byte-identical at every -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/website"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		table1     = flag.Bool("table1", false, "reproduce Table I (jitter sweep)")
		fig5       = flag.Bool("fig5", false, "reproduce Figure 5 (bandwidth sweep)")
		drops      = flag.Bool("drops", false, "reproduce section IV-D (targeted drops)")
		table2     = flag.Bool("table2", false, "reproduce Table II (full attack)")
		delay      = flag.Bool("delay", false, "run the section IV-A uniform-delay control")
		defenses   = flag.Bool("defenses", false, "evaluate the section VII defence proposals")
		all        = flag.Bool("all", false, "run every experiment")
		trial      = flag.Bool("trial", false, "run one verbose full-attack trial")
		metrics    = flag.Bool("metrics", false, "print a cross-layer metrics summary after each sweep")
		metricsOut = flag.String("metrics-json", "", "write every sweep's metrics snapshot into this one JSON file")
		events     = flag.String("events", "", "dump one full-attack trial's flight-recorder events (value: seed=N or N)")
		evTrace    = flag.String("events-trace", "", "write one trial's flight recorder as Perfetto trace_event JSON to this file (trial from -events, else -seed)")
		status     = flag.String("status", "", "serve live campaign telemetry on this address (/metrics, /status, /events?seed=N); never affects campaign output")
		trials     = flag.Int("trials", 100, "page loads per configuration")
		seed       = flag.Int64("seed", 1, "base seed (trial i uses seed+i)")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "trial worker goroutines per sweep (1 = serial)")
		progress   = flag.Bool("progress", false, "report sweep completion and ETA on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		shardSpec = flag.String("shard", "", "run slice i/N (1-based) of every selected campaign and write a bundle into -shard-dir")
		shardDir  = flag.String("shard-dir", "", "shard: bundle output directory (holds JSONL slices, obs snapshots, checkpoints, manifest)")
		mergeDirs = flag.String("merge", "", "merge completed shard bundles (comma-separated directories); output is byte-identical to a single-process run")

		survey     = flag.Bool("survey", false, "run a survey campaign against a synthetic site corpus")
		corpus     = flag.Int("corpus", 1000, "survey: number of synthetic sites")
		siteTrials = flag.Int("site-trials", 1, "survey: attack repetitions per site")
		export     = flag.String("export", "summary", "survey: comma-separated exporters (summary, jsonl=FILE, obs=FILE)")
		checkpoint = flag.String("checkpoint", "", "survey: checkpoint file for resumable campaigns")
		ckptEvery  = flag.Int("checkpoint-every", 1000, "survey: trials between checkpoint writes")
		maxTrials  = flag.Int("max-trials", 0, "survey: stop (checkpointing) after this many trials this run; 0 = no limit")

		exportQueue = flag.Int("export-queue", 0, "depth of the pipelined export queue (0 = default 256, negative = write inline on the emit goroutine); never affects exported bytes")
		exportBuf   = flag.Int("export-buf", 0, "results writer buffer in bytes (0 = exporter default); never affects exported bytes")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -memprofile: %v\n", err)
			return 1
		}
		defer func() {
			// The allocation profile is written at exit so it covers
			// the whole run; GC first so the heap samples are current.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "h2attack: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	// The telemetry plane is wall-side only: with -status unset it is
	// inert (nil gauges, no server); either way campaign output is
	// byte-identical.
	tp, err := startTelemetry(*status)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2attack: -status: %v\n", err)
		return 1
	}
	defer tp.shutdown()

	// sweepOpts builds the per-sweep execution options: the worker
	// count plus, with -progress, a stderr ticker, plus the telemetry
	// plane when -status is live. Results do not depend on any of them
	// (trial seeds derive from the trial index).
	sweepOpts := func(name string) []experiment.Option {
		opts := []experiment.Option{experiment.Workers(*jobs)}
		if g := tp.liveGauges(); g != nil {
			opts = append(opts, experiment.Telemetry(g))
		}
		var inner func(runner.Progress)
		if *progress {
			inner = progressPrinter(name)
		}
		if cb := tp.progress(inner); cb != nil {
			opts = append(opts, experiment.OnProgress(cb))
		}
		return opts
	}

	if *all {
		*table1, *fig5, *drops, *table2, *delay, *defenses = true, true, true, true, true, true
	}
	// The fixed sweeps are driven through their shardable definitions
	// (experiment.Sweeps) so single-process, shard, and merge modes all
	// agree on campaign names, fingerprints, and rendered tables.
	selected := map[string]bool{
		"table1": *table1, "fig5": *fig5, "drops": *drops,
		"table2": *table2, "delay": *delay, "defenses": *defenses,
	}
	var defs []experiment.SweepDef
	for _, d := range experiment.Sweeps(*trials, *seed) {
		if selected[d.Name] {
			defs = append(defs, d)
		}
	}

	if *shardSpec != "" && *mergeDirs != "" {
		fmt.Fprintln(os.Stderr, "h2attack: -shard and -merge are mutually exclusive")
		return 2
	}
	if *shardSpec != "" || *mergeDirs != "" {
		smf := shardModeFlags{
			defs:            defs,
			plane:           tp,
			survey:          *survey,
			corpus:          *corpus,
			siteTrials:      *siteTrials,
			seed:            *seed,
			jobs:            *jobs,
			progress:        *progress,
			metrics:         *metrics,
			metricsOut:      *metricsOut,
			export:          *export,
			checkpointEvery: *ckptEvery,
			maxTrials:       *maxTrials,
			exportQueue:     *exportQueue,
			exportBuf:       *exportBuf,
		}
		if *shardSpec != "" {
			if err := runShardMode(*shardSpec, *shardDir, smf); err != nil {
				fmt.Fprintf(os.Stderr, "h2attack: -shard: %v\n", err)
				return 1
			}
		} else if err := runMergeMode(*mergeDirs, smf); err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -merge: %v\n", err)
			return 1
		}
		return 0
	}
	ran := false
	snaps := map[string]*obs.Snapshot{}
	// runSweep executes one sweep, attaching a fresh metrics registry
	// when -metrics or -metrics-json asked for one, and prints the
	// sweep's table followed by its metrics summary.
	runSweep := func(name string, fn func(opts []experiment.Option) string) {
		opts := sweepOpts(name)
		var reg *obs.Registry
		if *metrics || *metricsOut != "" {
			reg = obs.NewRegistry()
			opts = append(opts, experiment.Metrics(reg))
		}
		fmt.Print(fn(opts))
		fmt.Println()
		if reg != nil {
			snap := reg.Snapshot()
			snaps[name] = snap
			if *metrics {
				fmt.Printf("metrics: %s\n%s\n", name, snap.Text())
			}
		}
		ran = true
	}
	for _, d := range defs {
		runSweep(d.Name, func(opts []experiment.Option) string {
			tp.campaign(d.Name, d.Fingerprint(), "", d.Trials)
			return d.Format(d.Run(opts...))
		})
	}
	if *survey {
		err := runSurvey(surveyFlags{
			plane:           tp,
			corpus:          *corpus,
			siteTrials:      *siteTrials,
			seed:            *seed,
			jobs:            *jobs,
			progress:        *progress,
			metrics:         *metrics,
			export:          *export,
			checkpoint:      *checkpoint,
			checkpointEvery: *ckptEvery,
			maxTrials:       *maxTrials,
			exportQueue:     *exportQueue,
			exportBuf:       *exportBuf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -survey: %v\n", err)
			return 1
		}
		ran = true
	}
	if *trial {
		runOneTrial(*seed)
		ran = true
	}
	if *events != "" {
		if err := runEventDump(*events); err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -events: %v\n", err)
			return 1
		}
		ran = true
	}
	if *evTrace != "" {
		if err := runEventsTrace(*events, *seed, *evTrace); err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -events-trace: %v\n", err)
			return 1
		}
		ran = true
	}
	if *metricsOut != "" && len(snaps) > 0 {
		data, err := obs.MarshalSweeps(snaps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -metrics-json: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "h2attack: -metrics-json: %v\n", err)
			return 1
		}
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return 0
}

// parseSeedSpec parses a trial selector: the seed, optionally
// prefixed "seed=" (the -events / -events-trace flag value).
func parseSeedSpec(spec string) (int64, error) {
	seed, err := strconv.ParseInt(strings.TrimPrefix(spec, "seed="), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want seed=N or N, got %q", spec)
	}
	return seed, nil
}

// runEventDump replays one full-attack trial with the flight recorder
// attached and prints the recorded event stream. spec is the -events
// flag value: the trial seed, optionally prefixed "seed=".
func runEventDump(spec string) error {
	seed, err := parseSeedSpec(spec)
	if err != nil {
		return err
	}
	w := experiment.NewWorld()
	rec := obs.NewRecorder(4096)
	w.SetRecorder(rec)
	r := w.RunTrial(experiment.TrialParams{Seed: seed, Mode: experiment.ModeFullAttack})
	fmt.Printf("seed %d: flight recorder, full paper attack (broken=%v resets=%d re-requests=%d retransmissions=%d)\n",
		seed, r.Broken, r.Resets, r.ReRequests, r.Retransmissions)
	fmt.Print(rec.Dump())
	return nil
}

// runOneTrial narrates a single full-attack page load.
func runOneTrial(seed int64) {
	r := experiment.RunTrial(experiment.TrialParams{
		Seed: seed,
		Mode: experiment.ModeFullAttack,
	})
	fmt.Printf("seed %d: full paper attack on the survey site\n", seed)
	fmt.Printf("  connection broken:        %v\n", r.Broken)
	fmt.Printf("  page completed:           %v (load time %v)\n", r.PageComplete, r.LoadTime)
	fmt.Printf("  stream resets forced:     %d\n", r.Resets)
	fmt.Printf("  duplicate requests:       %d\n", r.ReRequests)
	fmt.Printf("  total retransmissions:    %d\n", r.Retransmissions)
	fmt.Printf("  result HTML clean copy:   %v (degree of original %.2f)\n", r.HTMLCleanAny, r.HTMLDegree)
	fmt.Printf("  result HTML identified:   %v\n", r.HTMLIdentified)
	fmt.Printf("  survey outcome (truth):   %s\n", partyNames(r.TruthOrder))
	fmt.Printf("  adversary's prediction:   %s\n", partyNames(r.PredOrder))
	correct := 0
	for i := range r.TruthOrder {
		if r.ImageSuccess(i) {
			correct++
		}
	}
	fmt.Printf("  positions recovered:      %d/%d\n", correct, website.PartyCount)
}

func partyNames(order [website.PartyCount]int) string {
	s := ""
	for i, p := range order {
		if i > 0 {
			s += " > "
		}
		if p < 0 || p >= website.PartyCount {
			s += "?"
			continue
		}
		s += website.PartyLabels[p]
	}
	return s
}
