package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// telemetryPlane bundles the optional live observability plane for
// one h2attack invocation: the gauge block every layer samples into,
// the campaign tracker, and the HTTP status server. A nil plane (and
// the plane startTelemetry returns for an empty -status) is the
// disabled state — every method and accessor is nil-safe, so the
// campaign modes wire it unconditionally.
type telemetryPlane struct {
	gauges  *telemetry.Gauges
	tracker *telemetry.Tracker
	server  *telemetry.Server
}

// startTelemetry starts the -status server when addr is non-empty and
// returns the plane the campaign modes thread their samples through.
// With an empty addr the returned plane is inert: no server, nil
// gauges and tracker, zero overhead on the trial paths.
func startTelemetry(addr string) (*telemetryPlane, error) {
	p := &telemetryPlane{}
	if addr == "" {
		return p, nil
	}
	p.gauges = &telemetry.Gauges{}
	p.tracker = &telemetry.Tracker{}
	srv, err := telemetry.StartServer(telemetry.ServerConfig{
		Addr:    addr,
		Gauges:  p.gauges,
		Tracker: p.tracker,
		Events:  newEventReplayer(),
	})
	if err != nil {
		return nil, err
	}
	p.server = srv
	fmt.Fprintf(os.Stderr, "h2attack: status server on http://%s (/metrics /status /events?seed=N)\n", srv.Addr())
	return p, nil
}

// newEventReplayer builds the /events hook: a lazily-constructed
// reusable world plus flight recorder, replaying the requested seed's
// full-attack trial. Trials are pure functions of the seed, so the
// replayed ring is exactly what the campaign's own execution of that
// trial recorded. The server serializes calls (Server.replayMu), so
// one world is safe.
func newEventReplayer() func(seed int64) ([]obs.Event, error) {
	var (
		w   *experiment.World
		rec *obs.Recorder
	)
	return func(seed int64) ([]obs.Event, error) {
		if w == nil {
			w = experiment.NewWorld()
			rec = obs.NewRecorder(4096)
			w.SetRecorder(rec)
		}
		w.RunTrial(experiment.TrialParams{Seed: seed, Mode: experiment.ModeFullAttack})
		return rec.Events(), nil
	}
}

// liveGauges returns the gauge block to thread into runner/pipeline
// configs — nil when the plane is disabled, which every instrumented
// layer treats as the no-op plane.
func (p *telemetryPlane) liveGauges() *telemetry.Gauges {
	if p == nil {
		return nil
	}
	return p.gauges
}

// campaign records the identity of the campaign about to run, so
// /status names it from the first scrape.
func (p *telemetryPlane) campaign(name, fingerprint, shard string, total int) {
	if p == nil {
		return
	}
	p.tracker.SetCampaign(name, fingerprint, shard, total)
}

// progress wraps a progress callback so every update also feeds the
// tracker (the /status progress source). inner may be nil; the result
// is nil when both the plane and inner are disabled, so callers can
// assign it to OnProgress unconditionally.
func (p *telemetryPlane) progress(inner func(runner.Progress)) func(runner.Progress) {
	if p == nil || p.tracker == nil {
		return inner
	}
	t := p.tracker
	return func(pr runner.Progress) {
		t.SetProgress(pr.Completed, pr.Failed, pr.Total, pr.TrialsPerSec, pr.Remaining)
		if inner != nil {
			inner(pr)
		}
	}
}

// shutdown gracefully stops the status server: in-flight scrapes get
// a short grace period, then the listener closes. A no-op when the
// plane is disabled.
func (p *telemetryPlane) shutdown() {
	if p == nil || p.server == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = p.server.Shutdown(ctx)
}

// progressPrinter renders the shared stderr progress line — percent,
// live throughput, ETA — used by every campaign mode (sweeps, survey,
// shard slices). The trials/s figure is runner.Progress.TrialsPerSec,
// the same field /status reports, so the two can never disagree.
func progressPrinter(name string) func(runner.Progress) {
	lastPct := -1
	return func(p runner.Progress) {
		pct := 100 * p.Completed / p.Total
		if pct == lastPct && p.Completed < p.Total {
			return
		}
		lastPct = pct
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials (%d%%), %.1f trials/s, eta %v ",
			name, p.Completed, p.Total, pct, p.TrialsPerSec, p.Remaining.Round(time.Second))
		if p.Completed == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// runEventsTrace replays one full-attack trial with the flight
// recorder attached and writes the ring as Perfetto/Chrome
// trace_event JSON (one track per simulated layer). spec is the
// -events selector when given; otherwise the trial uses -seed.
func runEventsTrace(spec string, seed int64, path string) error {
	if spec != "" {
		s, err := parseSeedSpec(spec)
		if err != nil {
			return err
		}
		seed = s
	}
	w := experiment.NewWorld()
	rec := obs.NewRecorder(4096)
	w.SetRecorder(rec)
	w.RunTrial(experiment.TrialParams{Seed: seed, Mode: experiment.ModeFullAttack})
	events := rec.Events()
	data := telemetry.AppendTrace(nil, events, fmt.Sprintf("seed %d", seed))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events, seed %d; open in https://ui.perfetto.dev)\n",
		path, len(events), seed)
	return nil
}
