package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/website"
)

// This file is the multi-process scale-out driver. `-shard i/N
// -shard-dir DIR` runs the i-th contiguous slice of every selected
// campaign and writes a self-describing bundle into DIR; `-merge
// dir1,dir2,...` validates a complete bundle set and reassembles it —
// tables, JSONL exports, and -metrics-json output byte-identical to
// the same flags run in a single process (see internal/shard).

// shardModeFlags carries the -shard / -merge configuration out of
// main. defs holds the flag-selected sweep definitions; the survey
// fields mirror the -survey flags.
type shardModeFlags struct {
	defs  []experiment.SweepDef
	plane *telemetryPlane

	survey     bool
	corpus     int
	siteTrials int
	seed       int64

	jobs       int
	progress   bool
	metrics    bool
	metricsOut string
	export     string

	checkpointEvery int
	maxTrials       int
	exportQueue     int
	exportBuf       int
}

// parseShardSpec parses "i/N" (1-based, as printed by -shard's usage)
// into a 0-based shard index and the shard count.
func parseShardSpec(spec string) (idx, count int, err error) {
	var i, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("-shard: want i/N (e.g. 2/3), got %q", spec)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("-shard: index %d outside 1..%d", i, n)
	}
	return i - 1, n, nil
}

// newSurvey builds the survey campaign exactly as runSurvey does, so
// shard and merge modes agree with single-process runs on the
// fingerprint.
func (f *shardModeFlags) newSurvey() (*experiment.Survey, error) {
	if f.corpus <= 0 {
		return nil, fmt.Errorf("-corpus must be positive, got %d", f.corpus)
	}
	st := f.siteTrials
	if st <= 0 {
		st = 1
	}
	return experiment.NewSurvey(experiment.SurveyConfig{
		Corpus:     website.CorpusConfig{Seed: uint64(f.seed), Sites: f.corpus},
		SiteTrials: st,
		Seed:       f.seed,
	}), nil
}

// progressFn builds the progress reporter for one campaign slice: the
// shared stderr line (same rendering as the single-process modes) plus
// the telemetry plane's range gauge and tracker feed when -status is
// live.
func (f *shardModeFlags) progressFn(name string) func(runner.Progress) {
	var inner func(runner.Progress)
	if f.progress {
		inner = progressPrinter(name)
	}
	g := f.plane.liveGauges()
	cb := f.plane.progress(inner)
	if g == nil {
		return cb
	}
	return func(p runner.Progress) {
		g.Set(telemetry.GRangeDone, int64(p.Completed))
		if cb != nil {
			cb(p)
		}
	}
}

// runShardMode executes one shard's slice of every selected campaign
// into a bundle directory. Each campaign slice is checkpointed inside
// the bundle, so an interrupted shard resumes with the same command;
// the manifest is written only once every slice completed, marking
// the bundle ready to merge.
func runShardMode(spec, dir string, f shardModeFlags) error {
	idx, count, err := parseShardSpec(spec)
	if err != nil {
		return err
	}
	if dir == "" {
		return fmt.Errorf("-shard requires -shard-dir DIR (the bundle output directory)")
	}
	if len(f.defs) == 0 && !f.survey {
		return fmt.Errorf("-shard: no campaigns selected (add -table1..-defenses, -all, or -survey)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stop := interruptChannel()

	man := &shard.Manifest{Shard: idx, Shards: count}
	done := true
	// runSlice executes one campaign's [start, end) slice through run,
	// writes the slice's obs snapshot, and records the campaign in the
	// manifest. Base filenames derive from the campaign name.
	runSlice := func(name, fingerprint string, trials int,
		run func(cfg pipeline.Config, st *experiment.ObsState, jsonl string) (pipeline.Summary, error)) error {
		r := shard.Plan(trials, count)[idx]
		if g := f.plane.liveGauges(); g != nil {
			g.Set(telemetry.GShardIndex, int64(idx+1))
			g.Set(telemetry.GShardCount, int64(count))
			g.Set(telemetry.GRangeStart, int64(r.Start))
			g.Set(telemetry.GRangeEnd, int64(r.End))
			g.Set(telemetry.GRangeDone, 0)
		}
		f.plane.campaign(name, fingerprint, fmt.Sprintf("%d/%d", idx+1, count), r.End-r.Start)
		cm := shard.CampaignManifest{
			Campaign:    name,
			Fingerprint: fingerprint,
			Trials:      trials,
			Start:       r.Start,
			End:         r.End,
			SeedBase:    f.seed,
			Results:     name + ".jsonl",
			Snapshot:    name + ".obs.json",
			Checkpoint:  name + ".ck.json",
		}
		st := experiment.NewObsState()
		cfg := pipeline.Config{
			Workers:         f.jobs,
			Start:           r.Start,
			End:             r.End,
			Checkpoint:      filepath.Join(dir, cm.Checkpoint),
			CheckpointEvery: f.checkpointEvery,
			MaxTrials:       f.maxTrials,
			Stop:            stop,
			OnProgress:      f.progressFn(name),
			ExportQueue:     f.exportQueue,
			WriterBuf:       f.exportBuf,
			Gauges:          f.plane.liveGauges(),
		}
		sum, err := run(cfg, st, filepath.Join(dir, cm.Results))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := writeSliceSnapshot(dir, cm, sum, st, cfg.Checkpoint); err != nil {
			return fmt.Errorf("%s: snapshot: %w", name, err)
		}
		man.Campaigns = append(man.Campaigns, cm)
		if !sum.Done {
			done = false
			fmt.Fprintf(os.Stderr, "shard %d/%d: %s stopped at trial %d of [%d, %d); rerun the same command to resume\n",
				idx+1, count, name, sum.Exported, r.Start, r.End)
		} else {
			fmt.Printf("shard %d/%d: %s trials [%d, %d) done\n", idx+1, count, name, r.Start, r.End)
		}
		return nil
	}

	for _, d := range f.defs {
		err := runSlice(d.Name, d.Fingerprint(), d.Trials,
			func(cfg pipeline.Config, st *experiment.ObsState, jsonl string) (pipeline.Summary, error) {
				return d.RunShard(cfg, st, jsonl)
			})
		if err != nil {
			return err
		}
	}
	if f.survey {
		s, err := f.newSurvey()
		if err != nil {
			return err
		}
		err = runSlice(s.Name(), s.Fingerprint(), s.Trials(),
			func(cfg pipeline.Config, st *experiment.ObsState, jsonl string) (pipeline.Summary, error) {
				s.SetMetrics(st.Reg)
				return s.Run(cfg, experiment.SurveyJSONL(jsonl),
					experiment.ObsStateExporter[experiment.CorpusTrialParams, experiment.SurveyResult](st))
			})
		if err != nil {
			return err
		}
	}

	if !done {
		// No manifest: the bundle is incomplete and -merge must refuse
		// it until a rerun finishes the remaining trials.
		return nil
	}
	if err := man.Save(dir); err != nil {
		return err
	}
	fmt.Printf("shard %d/%d: bundle complete: %s\n", idx+1, count, dir)
	return nil
}

// writeSliceSnapshot writes one slice's obs snapshot file. A slice
// whose checkpoint already said done short-circuits the pipeline
// without restoring any exporter, so the live ObsState is empty — in
// that case the bundle's existing snapshot is kept (a rerun of a
// complete shard must not wipe its metrics), falling back to the
// snapshot recorded inside the done checkpoint if the file is missing
// (process killed between the final checkpoint and the snapshot
// write).
func writeSliceSnapshot(dir string, cm shard.CampaignManifest, sum pipeline.Summary, st *experiment.ObsState, ckPath string) error {
	path := filepath.Join(dir, cm.Snapshot)
	shortCircuited := sum.Done && sum.Start >= sum.End
	if shortCircuited {
		if _, err := os.Stat(path); err == nil {
			return nil
		}
		if state, ok, err := pipeline.CheckpointExporterState(ckPath, "obs-state"); err != nil {
			return err
		} else if ok {
			// Re-marshal through the snapshot type: the checkpoint file
			// is indented, the bundle snapshot is compact.
			snap := &obs.Snapshot{}
			if err := json.Unmarshal(state, snap); err != nil {
				return err
			}
			data, err := json.Marshal(snap)
			if err != nil {
				return err
			}
			return os.WriteFile(path, append(data, '\n'), 0o644)
		}
	}
	snap, err := st.Snapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadShardSnapshot reads one bundle campaign's serialized snapshot.
func loadShardSnapshot(path string) (*obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := &obs.Snapshot{}
	if err := json.Unmarshal(data, snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// mergeSnapshots merges one campaign's per-shard snapshots in shard
// order.
func mergeSnapshots(slices []shard.CampaignManifest) (*obs.Snapshot, error) {
	var merged *obs.Snapshot
	for _, cm := range slices {
		if cm.Snapshot == "" {
			return nil, fmt.Errorf("campaign %q shard [%d, %d) has no snapshot", cm.Campaign, cm.Start, cm.End)
		}
		snap, err := loadShardSnapshot(cm.Snapshot)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = snap
			continue
		}
		if err := merged.Merge(snap); err != nil {
			return nil, fmt.Errorf("campaign %q: %w", cm.Campaign, err)
		}
	}
	return merged, nil
}

// runMergeMode validates a bundle set and reassembles the selected
// campaigns: sweep tables re-rendered from the concatenated results,
// the survey's exporters re-fed from the concatenated lines, metrics
// from the merged snapshots. stdout and every file export are
// byte-identical to the same flags run in a single process.
func runMergeMode(dirList string, f shardModeFlags) error {
	var dirs []string
	for _, d := range strings.Split(dirList, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dirs = append(dirs, d)
		}
	}
	set, err := shard.LoadSet(dirs)
	if err != nil {
		return err
	}
	if len(f.defs) == 0 && !f.survey {
		return fmt.Errorf("-merge: no campaigns selected (add the same campaign flags the shards ran with)")
	}

	snaps := map[string]*obs.Snapshot{}
	for _, d := range f.defs {
		slices, err := set.Campaign(d.Name)
		if err != nil {
			return err
		}
		// The bundles agree with each other (shard.LoadSet); they must
		// also agree with this invocation's -trials/-seed.
		if got, want := slices[0].Fingerprint, d.Fingerprint(); got != want {
			return fmt.Errorf("campaign %q was sharded under a different configuration:\n  bundles: %s\n  -merge:  %s",
				d.Name, got, want)
		}
		var buf bytes.Buffer
		if err := set.ConcatResults(d.Name, &buf); err != nil {
			return err
		}
		results, err := experiment.DecodeTrialResults(&buf, d.Trials)
		if err != nil {
			return fmt.Errorf("campaign %q: %w", d.Name, err)
		}
		fmt.Print(d.Format(results))
		fmt.Println()
		if f.metrics || f.metricsOut != "" {
			snap, err := mergeSnapshots(slices)
			if err != nil {
				return err
			}
			snaps[d.Name] = snap
			if f.metrics {
				fmt.Printf("metrics: %s\n%s\n", d.Name, snap.Text())
			}
		}
	}

	if f.survey {
		if err := mergeSurvey(set, f); err != nil {
			return err
		}
	}

	if f.metricsOut != "" && len(snaps) > 0 {
		data, err := obs.MarshalSweeps(snaps)
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.metricsOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// mergeSurvey reassembles the survey campaign: concatenated JSONL
// lines re-fed through the same exporters a single-process run wires
// from -export, so the summary table and every file export match
// byte-for-byte.
func mergeSurvey(set *shard.Set, f shardModeFlags) error {
	s, err := f.newSurvey()
	if err != nil {
		return err
	}
	slices, err := set.Campaign(s.Name())
	if err != nil {
		return err
	}
	if got, want := slices[0].Fingerprint, s.Fingerprint(); got != want {
		return fmt.Errorf("campaign %q was sharded under a different configuration:\n  bundles: %s\n  -merge:  %s",
			s.Name(), got, want)
	}

	var lines bytes.Buffer
	if err := set.ConcatResults(s.Name(), &lines); err != nil {
		return err
	}

	var (
		summary   *experiment.SurveySummary
		jsonlOut  []string
		obsOut    []string
		wantObs   bool
		wantLines = lines.Bytes()
	)
	for _, spec := range strings.Split(f.export, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, arg, hasArg := strings.Cut(spec, "=")
		switch {
		case name == "summary" && !hasArg:
			if summary == nil {
				summary = experiment.NewSurveySummary()
			}
		case name == "jsonl" && hasArg:
			jsonlOut = append(jsonlOut, arg)
		case name == "obs" && hasArg:
			obsOut = append(obsOut, arg)
			wantObs = true
		default:
			return fmt.Errorf("-export: unknown spec %q (want summary, jsonl=FILE, or obs=FILE)", spec)
		}
	}
	if summary == nil && len(jsonlOut) == 0 && len(obsOut) == 0 {
		return fmt.Errorf("-export: no exporters configured")
	}

	trials := slices[0].Trials
	if summary != nil {
		// Re-feed the concatenated lines through the summary exporter —
		// the same aggregation path Export runs per live trial.
		sc := json.NewDecoder(bytes.NewReader(wantLines))
		for i := 0; i < trials; i++ {
			var r experiment.SurveyResult
			if err := sc.Decode(&r); err != nil {
				return fmt.Errorf("survey record %d: %w", i, err)
			}
			if err := summary.Export(i, experiment.CorpusTrialParams{}, r); err != nil {
				return err
			}
		}
	}
	for _, path := range jsonlOut {
		if err := os.WriteFile(path, wantLines, 0o644); err != nil {
			return err
		}
	}
	var snap *obs.Snapshot
	if wantObs || f.metrics {
		if snap, err = mergeSnapshots(slices); err != nil {
			return err
		}
	}
	for _, path := range obsOut {
		data, err := obs.MarshalSweeps(map[string]*obs.Snapshot{"survey": snap})
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}

	// The status line a completed single-process campaign prints.
	fmt.Printf("survey: %d sites x %d trials, %d/%d trials exported (this run: %d)\n",
		f.corpus, trials/f.corpus, trials, trials, trials)
	if summary != nil {
		fmt.Println()
		fmt.Print(summary.Format())
	}
	if f.metrics {
		fmt.Printf("\nmetrics: survey\n%s\n", snap.Text())
	}
	return nil
}
