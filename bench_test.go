package repro

// The benchmarks in this file regenerate every table and figure of
// the paper's evaluation (see DESIGN.md section 4 for the index).
// Each experiment bench runs the full trial sweep per iteration and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both regenerates the results and tracks the simulator's own cost.
// The formatted tables (the exact rows the paper prints) come from
// cmd/h2attack; EXPERIMENTS.md records a reference run.
//
// Sweep benches run their trials through internal/runner's worker
// pool (GOMAXPROCS workers, like cmd/h2attack's default -j) and
// report sweep throughput as a trials/s metric; the headline
// percentages are identical at any worker count.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/h2"
	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/website"
)

// benchTrials is the per-configuration page-load count used by the
// experiment benches. The paper used 100; a smaller default keeps
// `go test -bench=.` under a few minutes while preserving the shapes.
const benchTrials = 40

// reportTrialsPerSec attaches the sweep throughput metric to an
// experiment bench: trialsPerIter simulated page loads ran per
// iteration (across all configurations of the sweep), fanned over the
// default worker pool (internal/runner, GOMAXPROCS workers).
func reportTrialsPerSec(b *testing.B, trialsPerIter int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(trialsPerIter*b.N)/s, "trials/s")
	}
}

// BenchmarkBaselineMultiplexing reproduces the section IV preamble:
// the default degree of multiplexing of the result HTML (paper: ~98%
// when multiplexed, not multiplexed in ~32% of loads).
func BenchmarkBaselineMultiplexing(b *testing.B) {
	w := experiment.NewWorld()
	for i := 0; i < b.N; i++ {
		clean, mux := 0, 0
		var degSum float64
		for t := 0; t < benchTrials; t++ {
			r := w.RunTrial(experiment.TrialParams{
				Seed: int64(40000 + t), Mode: experiment.ModePassive,
			})
			if r.HTMLCleanAny {
				clean++
			} else if r.HTMLDegree > 0 {
				mux++
				degSum += r.HTMLDegree
			}
		}
		b.ReportMetric(100*float64(clean)/benchTrials, "clean%")
		if mux > 0 {
			b.ReportMetric(100*degSum/float64(mux), "meanDegree%")
		}
	}
	reportTrialsPerSec(b, benchTrials)
}

// BenchmarkFig1PassiveBaseline reproduces the Figure 1 contrast on a
// two-object page: sequential transmissions leak exact sizes,
// multiplexed ones do not.
func BenchmarkFig1PassiveBaseline(b *testing.B) {
	site := website.TwoObject(7300, 12100)
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 100})
	atk := core.NewAttack(sess)
	for i := 0; i < b.N; i++ {
		identified := 0
		for t := 0; t < benchTrials; t++ {
			sess.Reset(site, h2sim.SessionConfig{Seed: int64(100 + t)})
			atk.ArmPassive()
			sess.Run()
			for _, inf := range atk.Infer() {
				if inf.Object != nil {
					identified++
				}
			}
		}
		b.ReportMetric(float64(identified)/(2*benchTrials)*100, "passiveIdentified%")
	}
	reportTrialsPerSec(b, benchTrials)
}

// BenchmarkDelayNoEffect reproduces the section IV-A control: uniform
// delay must not raise the non-multiplexed fraction.
func BenchmarkDelayNoEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.DelaySweep(benchTrials, 42000)
		b.ReportMetric(rows[0].NotMultiplexedPct, "clean%@0ms")
		b.ReportMetric(rows[len(rows)-1].NotMultiplexedPct, "clean%@100ms")
	}
	reportTrialsPerSec(b, 4*benchTrials)
}

// BenchmarkTableIJitter regenerates Table I (jitter sweep).
func BenchmarkTableIJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.TableI(benchTrials, 1)
		for _, r := range rows {
			ms := float64(r.Jitter) / float64(time.Millisecond)
			b.ReportMetric(r.NotMultiplexedPct, "clean%@"+itoa(int(ms))+"ms")
		}
	}
	reportTrialsPerSec(b, 4*benchTrials)
}

// BenchmarkFig5Bandwidth regenerates Figure 5 (bandwidth sweep; the
// sweep is scaled to the simulator's saturation point, see
// experiment.Fig5Scale).
func BenchmarkFig5Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Fig5(benchTrials/2, 50000)
		for _, r := range rows {
			b.ReportMetric(r.SuccessPct, "success%@"+itoa(r.LabelMbps)+"Mbps")
		}
	}
	reportTrialsPerSec(b, 5*(benchTrials/2))
}

// BenchmarkDropReset regenerates the section IV-D targeted-drop
// experiment (paper: ~90% success at an 80% drop rate).
func BenchmarkDropReset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.DropSweep(benchTrials, 60000)
		for _, r := range rows {
			b.ReportMetric(r.SuccessPct, "success%@"+itoa(int(100*r.DropRate))+"drop")
		}
	}
	reportTrialsPerSec(b, 4*benchTrials)
}

// BenchmarkTableIIAttack regenerates Table II (full-attack prediction
// accuracy over the HTML + 8 emblem images).
func BenchmarkTableIIAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.TableII(benchTrials, 70000)
		b.ReportMetric(res.SingleTarget[0], "single%HTML")
		b.ReportMetric(res.AllTargets[0], "all%HTML")
		b.ReportMetric(res.AllTargets[1], "all%I1")
		b.ReportMetric(res.AllTargets[8], "all%I8")
	}
	reportTrialsPerSec(b, benchTrials)
}

// --- Ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationNoBackpressure measures how baseline multiplexing
// collapses when server workers ignore the socket buffer.
func BenchmarkAblationNoBackpressure(b *testing.B) {
	w := experiment.NewWorld()
	for i := 0; i < b.N; i++ {
		clean := 0
		for t := 0; t < benchTrials; t++ {
			r := w.RunTrial(experiment.TrialParams{
				Seed: int64(47000 + t), Mode: experiment.ModePassive,
				Server: h2sim.ServerConfig{DisableBackpressure: true},
			})
			if r.HTMLCleanAny {
				clean++
			}
		}
		b.ReportMetric(100*float64(clean)/benchTrials, "clean%")
	}
}

// BenchmarkAblationNoReset measures the composed attack without the
// client's reset-streams behaviour.
func BenchmarkAblationNoReset(b *testing.B) {
	w := experiment.NewWorld()
	for i := 0; i < b.N; i++ {
		succ := 0
		for t := 0; t < benchTrials; t++ {
			r := w.RunTrial(experiment.TrialParams{
				Seed: int64(49000 + t), Mode: experiment.ModeFullAttack,
				Client: h2sim.ClientConfig{DisableReset: true},
			})
			if r.HTMLSuccess() {
				succ++
			}
		}
		b.ReportMetric(100*float64(succ)/benchTrials, "success%")
	}
}

// BenchmarkAblationWideRefetch measures the image-sequence accuracy
// cost of a wide post-reset refetch window.
func BenchmarkAblationWideRefetch(b *testing.B) {
	w := experiment.NewWorld()
	for i := 0; i < b.N; i++ {
		okPos := 0
		for t := 0; t < benchTrials; t++ {
			r := w.RunTrial(experiment.TrialParams{
				Seed: int64(50000 + t), Mode: experiment.ModeFullAttack,
				Client: h2sim.ClientConfig{RefetchWindow: 24},
			})
			for k := 0; k < website.PartyCount; k++ {
				if r.ImageSuccess(k) {
					okPos++
				}
			}
		}
		b.ReportMetric(100*float64(okPos)/float64(benchTrials*website.PartyCount), "posAccuracy%")
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkFullAttackTrial measures the wall-clock cost of one
// complete simulated attack trial (the unit of every sweep above),
// in the steady state the sweeps actually run in: one reusable world
// per worker, reset per trial.
func BenchmarkFullAttackTrial(b *testing.B) {
	w := experiment.NewWorld()
	for i := 0; i < b.N; i++ {
		w.RunTrial(experiment.TrialParams{
			Seed: int64(90000 + i), Mode: experiment.ModeFullAttack,
		})
	}
}

// BenchmarkFullAttackTrialFresh is the cold-path control for
// BenchmarkFullAttackTrial: a brand-new world per trial, what every
// sweep paid per trial before worlds became reusable.
func BenchmarkFullAttackTrialFresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.RunTrial(experiment.TrialParams{
			Seed: int64(90000 + i), Mode: experiment.ModeFullAttack,
		})
	}
}

// BenchmarkBaselineTrial measures one passive page-load trial
// (reused world, like the sweeps).
func BenchmarkBaselineTrial(b *testing.B) {
	w := experiment.NewWorld()
	for i := 0; i < b.N; i++ {
		w.RunTrial(experiment.TrialParams{
			Seed: int64(91000 + i), Mode: experiment.ModePassive,
		})
	}
}

// BenchmarkFramerRoundTrip measures frame encode+decode throughput.
func BenchmarkFramerRoundTrip(b *testing.B) {
	f := &h2.DataFrame{StreamID: 1, Data: make([]byte, 1400)}
	b.SetBytes(1400)
	for i := 0; i < b.N; i++ {
		wire := h2.MarshalFrame(f)
		if _, err := h2.ParseFramePayload(f.Header(), wire[h2.FrameHeaderLen:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHpackEncode measures header-block compression.
func BenchmarkHpackEncode(b *testing.B) {
	enc := h2.NewHpackEncoder(4096)
	fields := []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.isidewith.test"},
		{Name: ":path", Value: "/img/emblems/party-C.png"},
		{Name: "accept", Value: "image/png"},
	}
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = enc.AppendHeaderBlock(buf[:0], fields)
	}
}

// BenchmarkHpackDecode measures header-block decompression.
func BenchmarkHpackDecode(b *testing.B) {
	enc := h2.NewHpackEncoder(4096)
	block := enc.AppendHeaderBlock(nil, []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.isidewith.test"},
		{Name: ":path", Value: "/img/emblems/party-C.png"},
	})
	dec := h2.NewHpackDecoder(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeFull(block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuffman measures HPACK string coding.
func BenchmarkHuffman(b *testing.B) {
	const s = "/results/2020-presidential-quiz?session=abcdef0123456789"
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		enc := h2.AppendHuffmanString(nil, s)
		if _, err := h2.HuffmanDecode(nil, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegreeOfMultiplexing measures the trace analysis on a
// full-attack ground-truth trace.
func BenchmarkDegreeOfMultiplexing(b *testing.B) {
	site := website.Survey(website.IdentityPermutation())
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 42})
	core.InstallPassive(sess)
	sess.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.CopyTransmissions(sess.GroundTruth)
	}
}

// benchRecordStream captures one full-attack trial's observed record
// stream and its site, the shared fixture of the inference benches.
func benchRecordStream(b *testing.B) (*website.Site, []trace.RecordObs) {
	b.Helper()
	site := website.Survey(website.IdentityPermutation())
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 42, RandomizeAmbient: true})
	atk := core.Install(sess, core.PaperAttack())
	sess.Run()
	recs := append([]trace.RecordObs(nil), atk.Monitor.Records...)
	if len(recs) == 0 {
		b.Fatal("captured no records")
	}
	return site, recs
}

// BenchmarkInferPostHoc measures the reference inference path: the
// linear-scan Predictor.Infer pass over a stored trial capture (the
// pre-PR7 per-trial cost, allocating its result slice each call).
func BenchmarkInferPostHoc(b *testing.B) {
	site, recs := benchRecordStream(b)
	p := core.NewPredictor(site)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.Infer(recs)) == 0 {
			b.Fatal("no inferences")
		}
	}
}

// BenchmarkInferStreaming measures the online engine on the same
// stream: Start + Observe per record + Inferences, with primed table
// and reused buffers (zero-alloc steady state).
func BenchmarkInferStreaming(b *testing.B) {
	site, recs := benchRecordStream(b)
	p := core.NewPredictor(site)
	var eng core.StreamInference
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Start(p, obs.Sink{})
		for _, r := range recs {
			eng.Observe(r)
		}
		if len(eng.Inferences()) == 0 {
			b.Fatal("no inferences")
		}
	}
}

// BenchmarkInferBatch measures the batched API amortizing size-table
// setup across the K same-site trials a survey worker runs.
func BenchmarkInferBatch(b *testing.B) {
	site, recs := benchRecordStream(b)
	p := core.NewPredictor(site)
	const k = 8 // a typical -site-trials batch
	streams := make([][]trace.RecordObs, k)
	for i := range streams {
		streams[i] = recs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := p.InferBatch(streams)
		if len(out) != k || len(out[0]) == 0 {
			b.Fatal("bad batch result")
		}
	}
	reportTrialsPerSec(b, k)
}

// BenchmarkStreamDispatch isolates the worker pool's dispatch and
// delivery overhead with a near-free trial body: what the streaming
// runner costs per trial when the trial itself does no work. Batch=64
// claims a chunk of consecutive indices, buffers its results worker-
// locally, and delivers them under one lock acquisition; Batch=1 is
// the per-trial locking path. The spread between the two at high -j
// is the coordination cost the chunk-buffered delivery removes.
func BenchmarkStreamDispatch(b *testing.B) {
	const trials = 1 << 14
	for _, j := range []int{1, 8, 16} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("j%d/batch%d", j, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					total := 0
					runner.StreamWith(trials, runner.StreamOptions{
						Options: runner.Options{Workers: j},
						Batch:   batch,
					}, func() struct{} { return struct{}{} },
						func(struct{}, int) int { return 1 },
						func(idx int, r int, err *runner.TrialError) bool {
							total += r
							return true
						})
					if total != trials {
						b.Fatalf("delivered %d trials, want %d", total, trials)
					}
				}
				reportTrialsPerSec(b, trials)
			})
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// benchSurveyResult is a representative survey line for the export
// benches: every field populated, a realistic mix of bools, ints, and
// floats, ~330 bytes encoded.
func benchSurveyResult() experiment.SurveyResult {
	return experiment.SurveyResult{
		SiteSpec: website.SiteSpec{
			Index: 12345, Seed: 0xfeedface12345678, Objects: 48,
			Shape: "front-loaded", TargetID: 7, TargetSize: 73219,
			TotalBytes: 2310441,
		},
		Rep: 3, TrialSeed: 987654321, Broken: false, PageComplete: true,
		TargetClean: true, TargetCleanOrig: false, TargetIdentified: true,
		TargetDegree: 12.5, Success: true, Inferences: 51, Identified: 44,
		Retransmissions: 6, ReRequests: 2, Resets: 9, LoadTimeMs: 1872.25,
	}
}

// BenchmarkExportLine measures one JSONL line encode: the append fast
// path against the reflection path it replaced. The append encoder's
// zero-allocation steady state is pinned by TestAppendLineZeroAllocs;
// here -benchmem shows the same contrast as allocs/op.
func BenchmarkExportLine(b *testing.B) {
	r := benchSurveyResult()
	p := experiment.CorpusTrialParams{Site: 12345, Rep: 3, Seed: 987654321}
	b.Run("append", func(b *testing.B) {
		buf := make([]byte, 0, 1024)
		var err error
		for i := 0; i < b.N; i++ {
			buf, err = experiment.AppendSurveyResultLine(buf[:0], i, p, r)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(buf)))
		reportLinesPerSec(b, 1)
	})
	b.Run("marshal", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(r)
			if err != nil {
				b.Fatal(err)
			}
			n = len(data)
		}
		b.SetBytes(int64(n))
		reportLinesPerSec(b, 1)
	})
}

// reportLinesPerSec attaches the export throughput metric: linesPerIter
// JSONL lines were produced per iteration.
func reportLinesPerSec(b *testing.B, linesPerIter int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(linesPerIter*b.N)/s, "lines/s")
	}
}

// benchExportDir returns a scratch directory for export benchmarks,
// preferring tmpfs (/dev/shm) so the measurement tracks the export
// stack — encode, queueing, syscall batching — rather than the
// machine's disk bandwidth, which would cap both configurations
// identically.
func benchExportDir(b *testing.B) string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "h2attack-bench-")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// benchTrialResult is a representative sweep line for the campaign
// export bench: a full emblem verdict set plus a 56-entry request log,
// the shape a shard sweep actually streams to its bundle (~2.5 KB
// encoded). The nested slice is where reflection encoding hurts most,
// so this is also where the append fast path pays off most.
func benchTrialResult() experiment.TrialResult {
	r := experiment.TrialResult{
		HTMLCleanAny: true, HTMLCleanOrig: true, HTMLIdentified: true,
		HTMLDegree: 3.25, Retransmissions: 7, ReRequests: 2, Resets: 4,
		PageComplete: true, LoadTime: 1872250 * time.Microsecond,
	}
	for i := range r.TruthOrder {
		r.TruthOrder[i] = (i * 3) % website.PartyCount
		r.PredOrder[i] = (i * 5) % website.PartyCount
		r.ImageClean[i] = i%2 == 0
	}
	for i := 0; i < 56; i++ {
		r.Requests = append(r.Requests, h2sim.RequestLog{
			Time:     time.Duration(i) * 13 * time.Millisecond,
			ObjectID: i % 48, CopyID: i % 3, StreamID: uint32(1 + 2*i), ReIssue: i%7 == 0,
		})
	}
	return r
}

// BenchmarkCampaignExport measures the full export leg at campaign
// scale with a near-free trial body, so encode+write dominate: the
// zero-alloc appender through the pipelined writer with the shard
// writer buffer ("fast", the sharded sweep's production
// configuration) against the reflection encoder inline on the emit
// goroutine with the old hard-coded 64 KiB buffer ("baseline", the
// pre-fast-path configuration). The ≥3x lines/s gap between the two
// is this PR's acceptance metric.
func BenchmarkCampaignExport(b *testing.B) {
	const lines = 1 << 13
	r := benchTrialResult()
	gen := pipeline.Fixed[experiment.TrialParams]{
		CampaignName: "bench-export", N: lines,
		Fn: func(i int) experiment.TrialParams {
			return experiment.TrialParams{Seed: int64(i)}
		},
	}
	trial := func(_ struct{}, p experiment.TrialParams) experiment.TrialResult {
		out := r
		out.Resets = int(p.Seed)
		return out
	}
	noState := func() struct{} { return struct{}{} }
	run := func(b *testing.B, mk func(path string) *pipeline.JSONL[experiment.TrialParams, experiment.TrialResult], queue, wbuf int) {
		dir := benchExportDir(b)
		for i := 0; i < b.N; i++ {
			// Alternate between two output paths and reclaim the stale
			// one off the clock: freeing the previous iteration's ~20 MB
			// of pages is harness housekeeping, not export work.
			path := filepath.Join(dir, "out-"+strconv.Itoa(i&1)+".jsonl")
			b.StopTimer()
			os.Remove(path)
			b.StartTimer()
			sum, err := pipeline.Run(pipeline.Config{Workers: 1, ExportQueue: queue, WriterBuf: wbuf}, gen, noState, trial, mk(path))
			if err != nil {
				b.Fatal(err)
			}
			if !sum.Done || sum.Exported != lines {
				b.Fatalf("summary %+v", sum)
			}
		}
		reportLinesPerSec(b, lines)
	}
	b.Run("fast", func(b *testing.B) {
		run(b, func(path string) *pipeline.JSONL[experiment.TrialParams, experiment.TrialResult] {
			return pipeline.NewJSONL(path, func(i int, p experiment.TrialParams, r experiment.TrialResult) (any, error) {
				return r, nil
			}).WithAppender(pipeline.AppendFunc[experiment.TrialParams, experiment.TrialResult](experiment.AppendTrialResultLine)).
				WithBufferSize(experiment.ShardWriterBuf)
		}, 0, 0)
	})
	b.Run("baseline", func(b *testing.B) {
		run(b, func(path string) *pipeline.JSONL[experiment.TrialParams, experiment.TrialResult] {
			return pipeline.NewJSONL(path, func(i int, p experiment.TrialParams, r experiment.TrialResult) (any, error) {
				return r, nil
			})
		}, -1, 0)
	})
}

// BenchmarkDefenses evaluates the paper's section VII mitigation
// proposals (extension experiment; see EXPERIMENTS.md).
func BenchmarkDefenses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.Defenses(benchTrials/2, 80000)
		names := []string{"none", "order", "push", "pad", "both"}
		for i, r := range rows {
			name := names[i%len(names)]
			_ = r.Name
			b.ReportMetric(r.PosAccuracyPct, "posAcc%"+name)
		}
	}
	reportTrialsPerSec(b, 5*(benchTrials/2))
}

// BenchmarkPairInference measures the paper's section VII "partly
// multiplexed" extension: identification rate of a two-object
// multiplexed page, basic vs pair-sum inference.
func BenchmarkPairInference(b *testing.B) {
	site := website.TwoObject(7300, 12100)
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 300})
	atk := core.NewAttack(sess)
	for i := 0; i < b.N; i++ {
		basic, paired := 0, 0
		for t := 0; t < benchTrials; t++ {
			sess.Reset(site, h2sim.SessionConfig{Seed: int64(300 + t)})
			atk.ArmPassive()
			sess.Run()
			recs := atk.Monitor.ResponseRecords()
			for _, inf := range atk.Predictor.Infer(recs) {
				if inf.Object != nil && inf.Object.ID == 1 {
					basic++
					break
				}
			}
			if core.IdentifiedInPairs(atk.Predictor.InferPairs(recs), 1) {
				paired++
			}
		}
		b.ReportMetric(100*float64(basic)/benchTrials, "basic%")
		b.ReportMetric(100*float64(paired)/benchTrials, "paired%")
	}
}
