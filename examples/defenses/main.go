// Defenses evaluates the paper's section VII mitigation proposals
// against the full composed attack: a fixed (canonical) image request
// order, server push of the emblem images, padding all objects to
// 4 KiB buckets, and combinations.
//
// Run with: go run ./examples/defenses [-trials 30]
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiment"
)

func main() {
	trials := flag.Int("trials", 30, "page loads per defence configuration")
	flag.Parse()

	fmt.Printf("running the full paper attack against each defence (%d trials each)...\n\n", *trials)
	fmt.Print(experiment.FormatDefenses(experiment.Defenses(*trials, 1)))
	fmt.Println()
	fmt.Println("The ordering and push defences hide the survey outcome (the")
	fmt.Println("request/transmission order) while leaving object identities")
	fmt.Println("visible; padding destroys the size side-channel itself.")
}
