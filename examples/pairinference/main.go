// Pairinference demonstrates the paper's section VII adversary
// extension: identifying objects even when their transmissions are
// partly multiplexed, by matching sums of consecutive delimited runs
// against pairs of candidate object sizes.
//
// Run with: go run ./examples/pairinference
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/website"
)

func main() {
	const trials = 30
	basic, paired := 0, 0
	site := website.TwoObject(7300, 12100)
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 300})
	atk := core.NewAttack(sess)
	for i := 0; i < trials; i++ {
		sess.Reset(site, h2sim.SessionConfig{Seed: int64(300 + i)})
		atk.ArmPassive()
		sess.Run()
		recs := atk.Monitor.ResponseRecords()
		for _, inf := range atk.Predictor.Infer(recs) {
			if inf.Object != nil && inf.Object.ID == 1 {
				basic++
				break
			}
		}
		if core.IdentifiedInPairs(atk.Predictor.InferPairs(recs), 1) {
			paired++
		}
	}
	fmt.Println("passive eavesdropper against a two-object multiplexed page:")
	fmt.Printf("  delimiter attack identifies O1 in      %2d/%d trials\n", basic, trials)
	fmt.Printf("  with pair-sum inference it identifies  %2d/%d trials\n", paired, trials)
	fmt.Println()
	fmt.Println("Interleaving destroys run boundaries but not totals: the sum")
	fmt.Println("across consecutive unattributable runs still equals the sum of")
	fmt.Println("the objects' sizes, which identifies the pair when unambiguous.")
}
