// Realproxy demonstrates the attack tooling on REAL network
// connections (loopback TCP), no simulator involved: it starts the
// from-scratch HTTP/2 server, places an observing/manipulating proxy
// in front of it (the compromised gateway), and drives a client
// through the proxy twice — once with back-to-back requests (the
// server multiplexes; the frame interleaving at the proxy shows it)
// and once with the proxy spacing requests out (the transmissions
// serialize).
//
// Run with: go run ./examples/realproxy
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/h2"
)

// observation is one DATA frame seen at the proxy.
type observation struct {
	stream uint32
	size   int
	end    bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "realproxy: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	log.SetFlags(0)

	// The origin: three objects with distinctive sizes, served in
	// small DATA chunks so concurrent streams interleave.
	sizes := map[string]int{"/small": 4200, "/medium": 9100, "/large": 14800}
	srv := &h2.Server{
		Handler: h2.HandlerFunc(func(w *h2.ResponseWriter, r *h2.Request) {
			n, ok := sizes[r.Path]
			if !ok {
				_ = w.WriteHeader(404) //nolint:errcheck // demo
				return
			}
			// Stream in chunks with think time so the scheduler can
			// interleave concurrent responses.
			body := make([]byte, n)
			for off := 0; off < len(body); off += 1400 {
				end := off + 1400
				if end > len(body) {
					end = len(body)
				}
				if _, err := w.Write(body[off:end]); err != nil {
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}),
		Config: h2.ConnConfig{DataChunkSize: 1400},
	}
	originLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(originLn) //nolint:errcheck // demo server lives until exit
	defer srv.Close()      //nolint:errcheck // teardown

	paths := []string{"/large", "/medium", "/small"}

	fmt.Println("== back-to-back requests through an observing proxy ==")
	obs, err := fetchThroughProxy(originLn.Addr().String(), paths, 0)
	if err != nil {
		return err
	}
	report(obs, sizes)

	fmt.Println()
	fmt.Println("== the same fetch with the proxy spacing requests 150ms apart ==")
	obs, err = fetchThroughProxy(originLn.Addr().String(), paths, 150*time.Millisecond)
	if err != nil {
		return err
	}
	report(obs, sizes)
	return nil
}

// fetchThroughProxy stands up a one-connection observing proxy with
// optional request spacing, fetches all paths in a burst, and returns
// the DATA-frame observations in wire order.
func fetchThroughProxy(origin string, paths []string, spacing time.Duration) ([]observation, error) {
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer proxyLn.Close() //nolint:errcheck // teardown

	var (
		mu  sync.Mutex
		obs []observation
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cc, aerr := proxyLn.Accept()
		if aerr != nil {
			return
		}
		sc, derr := net.Dial("tcp", origin)
		if derr != nil {
			_ = cc.Close() //nolint:errcheck // teardown
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		// client -> server: the pacer re-segments at frame boundaries
		// and spaces out request HEADERS (the paper's jitter knob).
		go func() {
			defer wg.Done()
			defer sc.(*net.TCPConn).CloseWrite() //nolint:errcheck // half-close
			pacer := h2.NewRequestPacer(sc, spacing, true)
			buf := make([]byte, 32<<10)
			for {
				n, rerr := cc.Read(buf)
				if n > 0 {
					if _, werr := pacer.Write(buf[:n]); werr != nil {
						return
					}
				}
				if rerr != nil {
					return
				}
			}
		}()
		// server -> client: record DATA frames.
		go func() {
			defer wg.Done()
			defer cc.(*net.TCPConn).CloseWrite() //nolint:errcheck // half-close
			var sc2 h2.FrameScanner
			buf := make([]byte, 32<<10)
			for {
				n, rerr := sc.Read(buf)
				if n > 0 {
					frames, _ := sc2.Feed(buf[:n])
					mu.Lock()
					for _, f := range frames {
						if d, ok := f.(*h2.DataFrame); ok {
							obs = append(obs, observation{d.StreamID, len(d.Data), d.EndStream})
						}
					}
					mu.Unlock()
					if _, werr := cc.Write(buf[:n]); werr != nil {
						return
					}
				}
				if rerr != nil {
					return
				}
			}
		}()
		wg.Wait()
	}()

	cl, err := h2.Dial(proxyLn.Addr().String(), h2.ConnConfig{})
	if err != nil {
		return nil, err
	}
	if _, err := cl.GetMany("realproxy.test", paths); err != nil {
		_ = cl.Close() //nolint:errcheck // teardown
		return nil, err
	}
	_ = cl.Close() //nolint:errcheck // teardown
	<-done
	mu.Lock()
	defer mu.Unlock()
	return obs, nil
}

// report prints the interleaving pattern and the per-run size
// estimate a delimiter-based adversary would compute.
func report(obs []observation, sizes map[string]int) {
	fmt.Print("  wire order (stream ids): ")
	switches := 0
	var prev uint32
	for i, o := range obs {
		if i > 0 && o.stream != prev {
			switches++
		}
		prev = o.stream
		fmt.Printf("%d ", o.stream)
	}
	fmt.Printf("\n  stream switches mid-flight: %d\n", switches)

	// Delimiter heuristic: a sub-full frame ends a run.
	run := 0
	fmt.Println("  delimited runs as the adversary sums them:")
	for _, o := range obs {
		run += o.size
		if o.size < 1400 {
			verdict := "no unique match"
			for path, n := range sizes {
				if run == n {
					verdict = "matches " + path
				}
			}
			fmt.Printf("    %6d bytes -> %s\n", run, verdict)
			run = 0
		}
	}
}
