// Quickstart: the paper's Figure 1 in code.
//
// A client downloads two objects from a simulated HTTP/2 server while
// a passive eavesdropper watches TLS record sizes at an on-path
// middlebox. When the requests go out back-to-back, the server's
// worker threads interleave the responses and the size side-channel
// dies; when an active adversary spaces the requests, the objects
// serialize and their exact sizes fall out of the encrypted trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/website"
)

func main() {
	// Two secret objects; the eavesdropper wants to know which pair.
	const sizeA, sizeB = 7300, 12100
	site := website.TwoObject(sizeA, sizeB)

	fmt.Println("== Case 1: passive eavesdropper, multiplexed transmission ==")
	runCase(site, 0)

	fmt.Println()
	fmt.Println("== Case 2: active adversary spacing requests 50ms apart ==")
	runCase(site, 50*time.Millisecond)
}

func runCase(site *website.Site, spacing time.Duration) {
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 3})
	var atk *core.Attack
	if spacing > 0 {
		atk = core.Install(sess, core.AttackConfig{Phase1Spacing: spacing})
	} else {
		atk = core.InstallPassive(sess)
	}
	sess.Run()

	// Ground truth: how interleaved was each object on the wire?
	copies := analysis.CopyTransmissions(sess.GroundTruth)
	for _, c := range copies {
		obj, _ := site.Object(c.Key.ObjectID)
		fmt.Printf("  %-4s %5d bytes on the wire, degree of multiplexing %.0f%%\n",
			obj.Label, c.Bytes, 100*c.Degree)
	}

	// The adversary's view: delimiter-bounded record runs.
	infs := atk.Infer()
	fmt.Printf("  adversary sees %d delimited runs:\n", len(infs))
	for _, inf := range infs {
		verdict := "no match in size table"
		if inf.Object != nil {
			verdict = "identified as " + inf.Object.Label
		}
		fmt.Printf("    run of %d records, estimated %d bytes -> %s\n",
			inf.Records, inf.EstSize, verdict)
	}
}
