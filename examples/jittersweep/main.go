// Jittersweep reproduces the paper's Table I as a runnable example:
// the effect of adversarial inter-request jitter on how often the
// survey site's result HTML transmits without multiplexing, and on
// the volume of retransmissions the jitter provokes.
//
// Run with: go run ./examples/jittersweep [-trials 60]
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiment"
)

func main() {
	trials := flag.Int("trials", 60, "page loads per jitter value (paper: 100)")
	flag.Parse()

	fmt.Printf("sweeping jitter over %d page loads per setting...\n\n", *trials)
	rows := experiment.TableI(*trials, 1)
	fmt.Print(experiment.FormatTableI(rows))

	fmt.Println()
	fmt.Println("Reading the table: spacing requests apart gives each object a")
	fmt.Println("clean transmission slot, so the non-multiplexed fraction rises;")
	fmt.Println("but holding packets long enough also stalls the client into")
	fmt.Println("duplicate requests, which is the retransmission growth on the")
	fmt.Println("right — the tension the paper's sections IV-B and IV-C resolve")
	fmt.Println("with bandwidth throttling and targeted drops.")
}
