// Surveyattack runs the paper's section V end-to-end attack against
// the isidewith.com-like survey site: jitter from the start, then —
// on the 6th GET — bandwidth throttling plus targeted drops until the
// client resets its streams, then wider spacing for the 8 emblem
// images. For each trial it prints the true survey outcome next to
// what the adversary recovered from encrypted traffic alone.
//
// Run with: go run ./examples/surveyattack [-trials 10] [-seed 1]
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/website"
)

func main() {
	trials := flag.Int("trials", 10, "number of simulated volunteers")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	fmt.Println("attacking the survey site (one line per simulated volunteer):")
	fmt.Println()
	perfect, htmlOK := 0, 0
	w := experiment.NewWorld()
	for i := 0; i < *trials; i++ {
		r := w.RunTrial(experiment.TrialParams{
			Seed: *seed + int64(i),
			Mode: experiment.ModeFullAttack,
		})
		correct := 0
		for k := 0; k < website.PartyCount; k++ {
			if r.ImageSuccess(k) {
				correct++
			}
		}
		if correct == website.PartyCount {
			perfect++
		}
		if r.HTMLSuccess() {
			htmlOK++
		}
		fmt.Printf("volunteer %2d: truth %s\n", i+1, orderString(r.TruthOrder))
		fmt.Printf("              guess %s   (%d/%d positions, HTML %s)\n",
			orderString(r.PredOrder), correct, website.PartyCount, yesNo(r.HTMLSuccess()))
	}
	fmt.Println()
	fmt.Printf("result HTML identified in %d/%d trials; full outcome recovered in %d/%d\n",
		htmlOK, *trials, perfect, *trials)
}

func orderString(order [website.PartyCount]int) string {
	s := ""
	for i, p := range order {
		if i > 0 {
			s += ">"
		}
		if p < 0 || p >= website.PartyCount {
			s += "?"
			continue
		}
		// party-A..H -> single letter
		s += website.PartyLabels[p][len(website.PartyLabels[p])-1:]
	}
	return s
}

func yesNo(b bool) string {
	if b {
		return "broken"
	}
	return "kept private"
}
