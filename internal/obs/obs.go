// Package obs is the always-available observability layer of the
// attack stack: a sharded, allocation-free metrics registry (counters
// plus fixed-bucket histograms) and a per-trial structured event ring
// (the "flight recorder").
//
// Determinism is the design constraint. Every sweep in this
// repository must produce byte-identical aggregates at any worker
// count, and the metrics layer inherits that contract: each runner
// worker owns one Shard, every simulated event increments plain
// integer cells in that shard, and Registry.Snapshot merges the
// shards by integer addition — which is commutative, so the merged
// totals do not depend on which worker ran which trial. The only
// non-deterministic quantities (wall-clock trial latency, trials/s)
// live in a separate wall section that the deterministic snapshot
// text excludes.
//
// Zero cost when disabled is the other constraint. Layers hold an
// obs.Sink by value; the zero Sink is valid and every method on it is
// a nil-check and a return, so the instrumented hot paths (link
// forwarding, ACK processing, frame emission) pay one predictable
// branch and no allocations when metrics are off. When metrics are
// on, counters and histogram observations are single array
// increments into preallocated shard memory — still allocation-free.
//
// Key types: Counter/HistID (the compiled metric schema), Shard (one
// worker's cells, split into per-configuration segment blocks), Sink
// (the per-trial handle layers increment through), Registry (shard
// factory + merge point), Snapshot (the merged, formattable result),
// and Recorder (the flight-recorder event ring, see recorder.go).
package obs

import (
	"math/bits"
	"time"
)

// Counter enumerates every counter metric in the stack. The value is
// an array index into a shard block; the name table below is the
// export schema. Counters are grouped by the layer that increments
// them.
type Counter uint8

const (
	// netem: link-level forwarding (each packet crosses two links per
	// direction, so LinkSend counts link traversals, not packets).
	CNetemLinkSend Counter = iota
	CNetemDropLoss
	CNetemDropQueue

	// tcpsim: transport events on either endpoint.
	CTCPSegSent
	CTCPRetransmit
	CTCPFastRetx
	CTCPTimeoutRetx
	CTCPDupAckRecvd
	CTCPBroken

	// h2sim client: browser-model behaviour.
	CH2Request
	CH2ReRequest
	CH2ResetRound
	CH2StreamReset
	CH2Refetch
	CH2Stall
	CH2ObjComplete
	CH2PushPromise

	// h2sim server: origin-model behaviour.
	CH2SrvWorker
	CH2SrvDupCopy
	CH2SrvRSTRecv
	CH2SrvPush

	// core: adversary phase transitions and component actions.
	CAtkPhase2
	CAtkPhase3
	CCtlHeld
	CCtlDropped
	CMonGet
	CMonResetBurst
	CPredIdentified
	CPredUnknown

	// experiment: per-trial outcomes.
	CTrial
	CTrialBroken
	CTrialComplete

	counterCount // number of counters; must stay last
)

// counterNames is the export schema: dotted layer.event names, one
// per Counter, in declaration order.
var counterNames = [counterCount]string{
	CNetemLinkSend:  "netem.link.send",
	CNetemDropLoss:  "netem.drop.loss",
	CNetemDropQueue: "netem.drop.queue",

	CTCPSegSent:     "tcp.seg.sent",
	CTCPRetransmit:  "tcp.retransmit",
	CTCPFastRetx:    "tcp.retx.fast",
	CTCPTimeoutRetx: "tcp.retx.timeout",
	CTCPDupAckRecvd: "tcp.dupack.recvd",
	CTCPBroken:      "tcp.broken",

	CH2Request:     "h2.client.request",
	CH2ReRequest:   "h2.client.rerequest",
	CH2ResetRound:  "h2.client.reset_round",
	CH2StreamReset: "h2.client.stream_reset",
	CH2Refetch:     "h2.client.refetch",
	CH2Stall:       "h2.client.stall",
	CH2ObjComplete: "h2.client.object_complete",
	CH2PushPromise: "h2.client.push_promise",

	CH2SrvWorker:  "h2.server.worker_spawned",
	CH2SrvDupCopy: "h2.server.dup_copy",
	CH2SrvRSTRecv: "h2.server.rst_received",
	CH2SrvPush:    "h2.server.push",

	CAtkPhase2:      "attack.phase2_entered",
	CAtkPhase3:      "attack.phase3_entered",
	CCtlHeld:        "attack.ctl.held",
	CCtlDropped:     "attack.ctl.dropped",
	CMonGet:         "attack.mon.get",
	CMonResetBurst:  "attack.mon.reset_burst",
	CPredIdentified: "attack.pred.identified",
	CPredUnknown:    "attack.pred.unknown",

	CTrial:         "trial.count",
	CTrialBroken:   "trial.broken",
	CTrialComplete: "trial.page_complete",
}

// String returns the counter's export name.
func (c Counter) String() string {
	if c < counterCount {
		return counterNames[c]
	}
	return "counter(?)"
}

// HistID enumerates every histogram metric. Histograms are
// fixed-bucket (power-of-two boundaries) so merging is integer
// addition per bucket.
type HistID uint8

const (
	// HNetemQueueWait is the per-packet serialization backlog wait in
	// nanoseconds (queue occupancy expressed as delay).
	HNetemQueueWait HistID = iota
	// HNetemJitter is the per-packet random jitter delay applied, ns.
	HNetemJitter
	// HTCPCwnd samples the congestion window in bytes after each
	// cumulative ACK advance.
	HTCPCwnd
	// HCtlHold is the adversary's per-packet hold (spacing jitter), ns.
	HCtlHold

	histCount // number of histograms; must stay last
)

var histNames = [histCount]string{
	HNetemQueueWait: "netem.queue_wait_ns",
	HNetemJitter:    "netem.jitter_ns",
	HTCPCwnd:        "tcp.cwnd_bytes",
	HCtlHold:        "attack.ctl.hold_ns",
}

// String returns the histogram's export name.
func (h HistID) String() string {
	if h < histCount {
		return histNames[h]
	}
	return "hist(?)"
}

// histBuckets is the fixed bucket count. Bucket i holds values whose
// bit length is i: bucket 0 is exactly zero, bucket i (i ≥ 1) covers
// [2^(i-1), 2^i). 48 buckets reach 2^47 ns ≈ 39 hours, far past any
// simulated duration or window size.
const histBuckets = 48

// Hist is one fixed-bucket histogram. The zero value is empty and
// ready to use. All cells are integers, so merging two histograms is
// element-wise addition and the merged result is independent of
// observation partitioning.
type Hist struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Observe folds one sample in. Negative samples clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += uint64(v)
}

// Merge adds o's cells into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Mean returns the arithmetic mean of the observed samples (0 when
// empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]):
// the inclusive upper boundary of the bucket the quantile falls in.
// Bucket arithmetic only, so equal merged histograms give equal
// quantiles.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum > target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<histBuckets - 1
}

// block is the metric cells of one (shard, segment) pair.
type block struct {
	counters [counterCount]uint64
	hists    [histCount]Hist
}

// merge adds o's cells into b.
func (b *block) merge(o *block) {
	for i := range b.counters {
		b.counters[i] += o.counters[i]
	}
	for i := range b.hists {
		b.hists[i].Merge(&o.hists[i])
	}
}

// Shard is one worker's private metric cells, preallocated with one
// block per registry segment. A shard is not safe for concurrent use;
// the runner keeps one per worker goroutine (the same ownership rule
// as experiment.World).
type Shard struct {
	segs []block

	// wall is the worker's private trial-latency histogram (the only
	// wall-clock cell in the shard). Keeping it here instead of behind
	// the registry mutex means trial completion never takes a lock:
	// the registry folds all shard walls together at Snapshot time,
	// and histogram merge is commutative, so the aggregate is the same
	// as the old centrally-locked accumulation.
	wall Hist
}

// ObserveTrialWall folds one trial's wall-clock latency into the
// shard's private wall histogram, lock-free. A nil shard ignores the
// sample.
func (s *Shard) ObserveTrialWall(d time.Duration) {
	if s == nil {
		return
	}
	s.wall.Observe(int64(d))
}

// Sink returns the increment handle for one segment of the shard,
// clamping out-of-range segments to 0. A nil shard returns the
// disabled zero Sink, so callers never branch on metrics being on.
func (s *Shard) Sink(segment int) Sink {
	if s == nil || len(s.segs) == 0 {
		return Sink{}
	}
	if segment < 0 || segment >= len(s.segs) {
		segment = 0
	}
	return Sink{blk: &s.segs[segment]}
}

// Sink is the handle instrumented layers hold by value: a pointer to
// one shard segment's cells plus an optional flight recorder. The
// zero Sink is disabled — every method nil-checks and returns — so
// layers call unconditionally.
type Sink struct {
	blk *block
	rec *Recorder
}

// WithRecorder returns a copy of the sink that also records flight
// events into r.
func (k Sink) WithRecorder(r *Recorder) Sink {
	k.rec = r
	return k
}

// Enabled reports whether metric increments reach a shard.
func (k Sink) Enabled() bool { return k.blk != nil }

// Inc adds 1 to a counter.
func (k Sink) Inc(c Counter) {
	if k.blk != nil {
		k.blk.counters[c]++
	}
}

// Add adds n to a counter.
func (k Sink) Add(c Counter, n uint64) {
	if k.blk != nil {
		k.blk.counters[c] += n
	}
}

// Observe folds one sample into a histogram.
func (k Sink) Observe(h HistID, v int64) {
	if k.blk != nil {
		k.blk.hists[h].Observe(v)
	}
}

// ObserveDuration folds a duration sample (in nanoseconds) into a
// histogram.
func (k Sink) ObserveDuration(h HistID, d time.Duration) {
	if k.blk != nil {
		k.blk.hists[h].Observe(int64(d))
	}
}

// Event appends one typed event to the attached flight recorder, if
// any. at is the simulation timestamp.
func (k Sink) Event(at time.Duration, kind EventKind, a, b int64) {
	if k.rec != nil {
		k.rec.Record(at, kind, a, b)
	}
}
