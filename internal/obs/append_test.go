package obs

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// marshalSweepsReference is the reflection encoding AppendSweeps
// replaced — kept verbatim as the equivalence oracle.
func marshalSweepsReference(sweeps map[string]*Snapshot) ([]byte, error) {
	names := make([]string, 0, len(sweeps))
	for n := range sweeps {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		Sweep string `json:"sweep"`
		*Snapshot
	}
	out := struct {
		Sweeps []entry `json:"sweeps"`
	}{}
	for _, n := range names {
		out.Sweeps = append(out.Sweeps, entry{Sweep: n, Snapshot: sweeps[n].Deterministic()})
	}
	return json.MarshalIndent(out, "", "  ")
}

// randomSnapshot builds a snapshot with seeded segments, counters,
// and histograms, including empty-slice and escape-needing edges.
func randomSnapshot(rng *rand.Rand) *Snapshot {
	labels := []string{"baseline", "17-32 objects", `label "quoted" <&>`, ""}
	s := &Snapshot{}
	if rng.Intn(8) == 0 {
		if rng.Intn(2) == 0 {
			s.Segments = []SegmentSnapshot{} // empty, not nil
		}
		return s
	}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		seg := SegmentSnapshot{Label: labels[rng.Intn(len(labels))]}
		for c, nc := 0, rng.Intn(4); c < nc; c++ {
			seg.Counters = append(seg.Counters, CounterValue{
				Name:  "counter_" + string(rune('a'+c)),
				Value: rng.Uint64() >> uint(rng.Intn(64)),
			})
		}
		for h, nh := 0, rng.Intn(3); h < nh; h++ {
			hv := HistValue{Name: "hist_" + string(rune('a'+h))}
			for o, no := 0, rng.Intn(40); o < no; o++ {
				hv.Hist.Observe(rng.Int63() >> uint(rng.Intn(63)))
			}
			seg.Hists = append(seg.Hists, hv)
		}
		s.Segments = append(s.Segments, seg)
	}
	return s
}

// TestAppendSweepsMatchesReference pins the append encoder against
// the reflection encoding byte-for-byte: the shard-merge gate cmp's
// -metrics-json files, so any drift is output corruption.
func TestAppendSweepsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 0; n < 300; n++ {
		sweeps := map[string]*Snapshot{}
		for i, ns := 0, rng.Intn(4); i < ns; i++ {
			sweeps["sweep-"+string(rune('a'+i))] = randomSnapshot(rng)
		}
		want, err := marshalSweepsReference(sweeps)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		got, err := MarshalSweeps(sweeps)
		if err != nil {
			t.Fatalf("MarshalSweeps: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendSweeps drift (case %d):\n got:\n%s\nwant:\n%s", n, got, want)
		}
	}
}
