package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// workload populates a registry with a deterministic slice [lo, hi) of
// a synthetic trial stream — the single-process reference is
// workload(0, n), a sharded run is workload(0,k) + workload(k,n).
func workload(t *testing.T, lo, hi int) *Registry {
	t.Helper()
	r := NewRegistry()
	r.SetSegments("s0", "s1")
	s := r.NewShard()
	for i := lo; i < hi; i++ {
		k := s.Sink(i % 2)
		k.Inc(CTrial)
		k.Add(CH2Request, uint64(i%5))
		k.Observe(HTCPCwnd, int64(i*i))
		s.ObserveTrialWall(time.Duration(i+1) * time.Millisecond)
	}
	return r
}

// roundTrip pushes a snapshot through its JSON wire form — the
// process boundary a shard bundle crosses.
func roundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out := &Snapshot{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

func TestSnapshotJSONRoundTripPreservesDeterministicText(t *testing.T) {
	snap := workload(t, 0, 50).Snapshot()
	got := roundTrip(t, snap)
	if got.DeterministicText() != snap.DeterministicText() {
		t.Fatalf("round trip changed deterministic text:\n%s\nvs\n%s",
			got.DeterministicText(), snap.DeterministicText())
	}
	if got.Wall == nil || got.Wall.Trials != snap.Wall.Trials {
		t.Fatalf("round trip lost wall trials: %+v vs %+v", got.Wall, snap.Wall)
	}
	if got.Wall.Hist.Count != snap.Wall.Hist.Count || got.Wall.Hist.Sum != snap.Wall.Hist.Sum {
		t.Fatalf("round trip lost wall histogram: %+v vs %+v", got.Wall.Hist, snap.Wall.Hist)
	}
	if got.Elapsed != snap.Elapsed {
		t.Fatalf("round trip changed elapsed: %v vs %v", got.Elapsed, snap.Elapsed)
	}
}

// TestSnapshotMergePartitionInvariance is the merge driver's core
// contract: any contiguous partition of the trial stream, serialized
// across a process-style boundary and merged back, formats exactly
// like the unpartitioned run.
func TestSnapshotMergePartitionInvariance(t *testing.T) {
	const n = 60
	ref := workload(t, 0, n).Snapshot()
	for _, cuts := range [][]int{{30}, {1}, {59}, {20, 40}, {10, 20, 30, 40, 50}} {
		bounds := append(append([]int{0}, cuts...), n)
		var merged *Snapshot
		for i := 0; i+1 < len(bounds); i++ {
			part := roundTrip(t, workload(t, bounds[i], bounds[i+1]).Snapshot())
			if merged == nil {
				merged = part
				continue
			}
			if err := merged.Merge(part); err != nil {
				t.Fatalf("cuts %v: merge: %v", cuts, err)
			}
		}
		if merged.DeterministicText() != ref.DeterministicText() {
			t.Fatalf("cuts %v: merged deterministic text differs:\n%s\nvs\n%s",
				cuts, merged.DeterministicText(), ref.DeterministicText())
		}
		if merged.Wall.Trials != ref.Wall.Trials {
			t.Fatalf("cuts %v: wall trials %d, want %d", cuts, merged.Wall.Trials, ref.Wall.Trials)
		}
		if merged.Wall.Hist.Count != ref.Wall.Hist.Count || merged.Wall.Hist.Sum != ref.Wall.Hist.Sum {
			t.Fatalf("cuts %v: wall hist %+v, want %+v", cuts, merged.Wall.Hist, ref.Wall.Hist)
		}
	}
}

func TestSnapshotMergeCommutes(t *testing.T) {
	a1 := roundTrip(t, workload(t, 0, 25).Snapshot())
	b1 := roundTrip(t, workload(t, 25, 60).Snapshot())
	a2 := roundTrip(t, workload(t, 0, 25).Snapshot())
	b2 := roundTrip(t, workload(t, 25, 60).Snapshot())
	if err := a1.Merge(b1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Merge(a2); err != nil {
		t.Fatal(err)
	}
	if a1.DeterministicText() != b2.DeterministicText() {
		t.Fatalf("merge order changed deterministic text:\n%s\nvs\n%s",
			a1.DeterministicText(), b2.DeterministicText())
	}
	if a1.Wall.Trials != b2.Wall.Trials || a1.Wall.Hist.Sum != b2.Wall.Hist.Sum {
		t.Fatal("merge order changed wall aggregation")
	}
}

// TestSnapshotMergeAggregatesWall pins the multi-process wall-section
// contract: a merged snapshot's wall covers every shard's trials (sum
// of counts, merged latency histogram, max elapsed) — never one
// shard's values kept and the others dropped.
func TestSnapshotMergeAggregatesWall(t *testing.T) {
	a := &Snapshot{Elapsed: 5 * time.Second, Wall: &WallSnapshot{Trials: 10}}
	b := &Snapshot{Elapsed: 9 * time.Second, Wall: &WallSnapshot{Trials: 30}}
	for i := 0; i < 10; i++ {
		a.Wall.Hist.Observe(int64(time.Millisecond))
	}
	for i := 0; i < 30; i++ {
		b.Wall.Hist.Observe(int64(4 * time.Millisecond))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Wall.Trials != 40 {
		t.Fatalf("merged wall trials = %d, want 40", a.Wall.Trials)
	}
	if a.Wall.Hist.Count != 40 {
		t.Fatalf("merged wall hist count = %d, want 40", a.Wall.Hist.Count)
	}
	if want := uint64(10*time.Millisecond + 120*time.Millisecond); a.Wall.Hist.Sum != want {
		t.Fatalf("merged wall hist sum = %d, want %d", a.Wall.Hist.Sum, want)
	}
	if a.Elapsed != 9*time.Second {
		t.Fatalf("merged elapsed = %v, want the max (9s)", a.Elapsed)
	}

	// One-sided wall: merging a wall-less snapshot must keep the other
	// side's section intact.
	c := &Snapshot{}
	if err := c.Merge(a); err != nil {
		t.Fatal(err)
	}
	if c.Wall == nil || c.Wall.Trials != 40 {
		t.Fatalf("merge into wall-less snapshot lost the wall: %+v", c.Wall)
	}
}

// TestMarshalSweepsStripsWall pins the other half of the satellite:
// the JSON export paths (-metrics-json, survey obs=) must not carry
// any shard's wall section — aggregate or drop, never silently keep
// one process's values. MarshalSweeps drops.
func TestMarshalSweepsStripsWall(t *testing.T) {
	snap := workload(t, 0, 10).Snapshot()
	if snap.Wall == nil {
		t.Fatal("workload produced no wall section")
	}
	data, err := MarshalSweeps(map[string]*Snapshot{"x": snap})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"wall"`) || strings.Contains(string(data), `"elapsed_ns"`) {
		t.Fatalf("sweep export carries wall-clock sections:\n%s", data)
	}
}

func TestSnapshotMergeRejectsSegmentMismatch(t *testing.T) {
	a := workload(t, 0, 10).Snapshot()

	other := NewRegistry()
	other.SetSegments("different")
	if err := a.Merge(other.Snapshot()); err == nil {
		t.Fatal("want segment count mismatch error")
	}

	relabeled := NewRegistry()
	relabeled.SetSegments("s0", "WRONG")
	if err := a.Merge(relabeled.Snapshot()); err == nil || !strings.Contains(err.Error(), "label mismatch") {
		t.Fatalf("want label mismatch error, got %v", err)
	}
}

func TestSnapshotUnmarshalRejectsUnknownNames(t *testing.T) {
	in := `{"segments":[{"label":"a","counters":[{"name":"no.such.counter","value":3}]}]}`
	s := &Snapshot{}
	if err := json.Unmarshal([]byte(in), s); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(&Snapshot{Segments: []SegmentSnapshot{{Label: "a"}}}); err == nil {
		t.Fatal("want unknown-counter error from merge")
	}
}
