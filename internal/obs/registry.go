package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is the merge point of one sweep's metrics: it hands out
// per-worker Shards (NewShard is safe to call from worker goroutines)
// and merges them into a Snapshot at sweep end. Segment labels, when
// set, give each configuration of a sweep its own aggregate (the
// jitter values of Table I, the drop rates of §IV-D, …), so the
// summary can show how a counter moves across the sweep axis.
//
// The registry also accumulates the only wall-clock metrics in the
// stack — per-trial latency samples fed by the runner — under its own
// lock, kept strictly apart from the deterministic sim-domain cells.
type Registry struct {
	mu     sync.Mutex
	labels []string
	shards []*Shard

	wallHist  Hist
	wallCount uint64
	start     time.Time
}

// NewRegistry returns an empty single-segment registry.
func NewRegistry() *Registry {
	return &Registry{labels: []string{"all"}, start: time.Now()}
}

// SetSegments declares the sweep's configuration axis: one label per
// segment, in sweep order. Must be called before any NewShard;
// calling it later panics, because existing shards were sized for the
// old segment count.
func (r *Registry) SetSegments(labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.shards) > 0 {
		panic("obs: SetSegments after NewShard")
	}
	if len(labels) == 0 {
		labels = []string{"all"}
	}
	r.labels = append([]string(nil), labels...)
}

// NewShard allocates one worker's shard, registered for the final
// merge. Safe for concurrent use (runner workers build their state
// concurrently).
func (r *Registry) NewShard() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Shard{segs: make([]block, len(r.labels))}
	r.shards = append(r.shards, s)
	return s
}

// ObserveTrialWall folds one trial's wall-clock latency into the wall
// section. Safe for concurrent use.
func (r *Registry) ObserveTrialWall(d time.Duration) {
	r.mu.Lock()
	r.wallHist.Observe(int64(d))
	r.wallCount++
	r.mu.Unlock()
}

// Snapshot merges every shard into one aggregate. Because all cells
// are integers and merging is addition, the sim-domain sections are
// identical for any partition of the same trials across shards — the
// worker-count determinism guarantee.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{Elapsed: time.Since(r.start)}
	for i, label := range r.labels {
		seg := SegmentSnapshot{Label: label}
		var merged block
		for _, s := range r.shards {
			if i < len(s.segs) {
				merged.merge(&s.segs[i])
			}
		}
		for c := Counter(0); c < counterCount; c++ {
			if v := merged.counters[c]; v != 0 {
				seg.Counters = append(seg.Counters, CounterValue{Name: c.String(), Value: v})
			}
		}
		for h := HistID(0); h < histCount; h++ {
			hv := merged.hists[h]
			if hv.Count != 0 {
				seg.Hists = append(seg.Hists, HistValue{Name: h.String(), Hist: hv})
			}
		}
		snap.Segments = append(snap.Segments, seg)
	}
	if r.wallCount > 0 {
		snap.Wall = &WallSnapshot{Trials: r.wallCount, Hist: r.wallHist}
	}
	return snap
}

// CounterValue is one named counter total in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistValue is one named histogram in a snapshot.
type HistValue struct {
	Name string `json:"name"`
	Hist Hist   `json:"-"`
}

// MarshalJSON exports the histogram as summary statistics plus its
// non-empty buckets (bucket i covers [2^(i-1), 2^i), bucket 0 is
// exactly zero).
func (h HistValue) MarshalJSON() ([]byte, error) {
	type bucket struct {
		UpperBound uint64 `json:"le"`
		Count      uint64 `json:"count"`
	}
	var bs []bucket
	for i, c := range h.Hist.Buckets {
		if c != 0 {
			bs = append(bs, bucket{UpperBound: 1<<uint(i) - 1, Count: c})
		}
	}
	return json.Marshal(struct {
		Name    string   `json:"name"`
		Count   uint64   `json:"count"`
		Sum     uint64   `json:"sum"`
		P50     uint64   `json:"p50_le"`
		P99     uint64   `json:"p99_le"`
		Buckets []bucket `json:"buckets,omitempty"`
	}{h.Name, h.Hist.Count, h.Hist.Sum, h.Hist.Quantile(0.50), h.Hist.Quantile(0.99), bs})
}

// SegmentSnapshot is the merged cells of one sweep configuration.
// Only non-zero metrics appear, in schema declaration order.
type SegmentSnapshot struct {
	Label    string         `json:"label"`
	Counters []CounterValue `json:"counters,omitempty"`
	Hists    []HistValue    `json:"histograms,omitempty"`
}

// Counter returns a segment counter's total by export name (0 when
// absent).
func (s *SegmentSnapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// WallSnapshot is the non-deterministic wall-clock section.
type WallSnapshot struct {
	Trials uint64 `json:"trials"`
	Hist   Hist   `json:"-"`
}

// MarshalJSON exports the wall section's summary statistics.
func (w *WallSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Trials     uint64 `json:"trials"`
		SumNanos   uint64 `json:"sum_ns"`
		MeanNanos  uint64 `json:"mean_ns"`
		P50LENanos uint64 `json:"p50_le_ns"`
		P99LENanos uint64 `json:"p99_le_ns"`
	}{w.Trials, w.Hist.Sum, uint64(w.Hist.Mean()), w.Hist.Quantile(0.50), w.Hist.Quantile(0.99)})
}

// Snapshot is a merged view of one registry, produced by
// Registry.Snapshot. Segments are deterministic (sim-domain integer
// sums); Wall and Elapsed are wall-clock and excluded from
// DeterministicText.
type Snapshot struct {
	Segments []SegmentSnapshot `json:"segments"`
	Wall     *WallSnapshot     `json:"wall,omitempty"`
	Elapsed  time.Duration     `json:"elapsed_ns,omitempty"`
}

// Segment returns the snapshot segment with the given label, or nil.
func (s *Snapshot) Segment(label string) *SegmentSnapshot {
	for i := range s.Segments {
		if s.Segments[i].Label == label {
			return &s.Segments[i]
		}
	}
	return nil
}

// DeterministicText renders only the sim-domain sections: identical
// strings for identical trial sets at any worker count. This is the
// artifact the determinism tests compare.
func (s *Snapshot) DeterministicText() string {
	var b strings.Builder
	s.writeSegments(&b)
	return b.String()
}

// Text renders the full summary: the deterministic segments plus the
// wall-clock section (per-trial latency and trials/s).
func (s *Snapshot) Text() string {
	var b strings.Builder
	s.writeSegments(&b)
	if s.Wall != nil {
		fmt.Fprintf(&b, "wall clock:\n")
		fmt.Fprintf(&b, "  %-28s %d\n", "trials", s.Wall.Trials)
		fmt.Fprintf(&b, "  %-28s mean=%s p50<=%s p99<=%s\n", "trial latency",
			time.Duration(s.Wall.Hist.Mean()).Round(time.Microsecond),
			time.Duration(s.Wall.Hist.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Wall.Hist.Quantile(0.99)).Round(time.Microsecond))
		if s.Elapsed > 0 {
			fmt.Fprintf(&b, "  %-28s %.0f\n", "trials/s",
				float64(s.Wall.Trials)/s.Elapsed.Seconds())
		}
	}
	return b.String()
}

// writeSegments renders each segment's non-zero counters and
// histogram summaries.
func (s *Snapshot) writeSegments(b *strings.Builder) {
	for i := range s.Segments {
		seg := &s.Segments[i]
		fmt.Fprintf(b, "segment %s:\n", seg.Label)
		for _, c := range seg.Counters {
			fmt.Fprintf(b, "  %-28s %d\n", c.Name, c.Value)
		}
		for _, h := range seg.Hists {
			fmt.Fprintf(b, "  %-28s count=%d mean=%.0f p50<=%d p99<=%d\n",
				h.Name, h.Hist.Count, h.Hist.Mean(), h.Hist.Quantile(0.50), h.Hist.Quantile(0.99))
		}
	}
}

// MarshalSweeps serializes a map of sweep name → snapshot as stable,
// sorted JSON — the -metrics-json export, shaped like the BENCH_*.json
// flow (one object per sweep under a top-level key).
func MarshalSweeps(sweeps map[string]*Snapshot) ([]byte, error) {
	names := make([]string, 0, len(sweeps))
	for n := range sweeps {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		Sweep string `json:"sweep"`
		*Snapshot
	}
	out := struct {
		Sweeps []entry `json:"sweeps"`
	}{}
	for _, n := range names {
		out.Sweeps = append(out.Sweeps, entry{Sweep: n, Snapshot: sweeps[n]})
	}
	return json.MarshalIndent(out, "", "  ")
}
