package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"time"
)

// Registry is the merge point of one sweep's metrics: it hands out
// per-worker Shards (NewShard is safe to call from worker goroutines)
// and merges them into a Snapshot at sweep end. Segment labels, when
// set, give each configuration of a sweep its own aggregate (the
// jitter values of Table I, the drop rates of §IV-D, …), so the
// summary can show how a counter moves across the sweep axis.
//
// The registry also accumulates the only wall-clock metrics in the
// stack — per-trial latency samples fed by the runner — under its own
// lock, kept strictly apart from the deterministic sim-domain cells.
type Registry struct {
	mu     sync.Mutex
	labels []string
	shards []*Shard

	wallHist  Hist
	wallCount uint64
	start     time.Time
}

// NewRegistry returns an empty single-segment registry.
func NewRegistry() *Registry {
	return &Registry{labels: []string{"all"}, start: time.Now()}
}

// SetSegments declares the sweep's configuration axis: one label per
// segment, in sweep order. Must be called before any NewShard;
// calling it later panics, because existing shards were sized for the
// old segment count.
func (r *Registry) SetSegments(labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.shards) > 0 {
		panic("obs: SetSegments after NewShard")
	}
	if len(labels) == 0 {
		labels = []string{"all"}
	}
	r.labels = append([]string(nil), labels...)
}

// NewShard allocates one worker's shard, registered for the final
// merge. Safe for concurrent use (runner workers build their state
// concurrently).
func (r *Registry) NewShard() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Shard{segs: make([]block, len(r.labels))}
	r.shards = append(r.shards, s)
	return s
}

// ObserveTrialWall folds one trial's wall-clock latency into the wall
// section under the registry lock. Safe for concurrent use, but the
// hot path should prefer the lock-free Shard.ObserveTrialWall — the
// snapshot merges both.
func (r *Registry) ObserveTrialWall(d time.Duration) {
	r.mu.Lock()
	r.wallHist.Observe(int64(d))
	r.wallCount++
	r.mu.Unlock()
}

// Snapshot merges every shard into one aggregate. Because all cells
// are integers and merging is addition, the sim-domain sections are
// identical for any partition of the same trials across shards — the
// worker-count determinism guarantee.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{Elapsed: time.Since(r.start)}
	for i, label := range r.labels {
		var merged block
		for _, s := range r.shards {
			if i < len(s.segs) {
				merged.merge(&s.segs[i])
			}
		}
		snap.Segments = append(snap.Segments, segmentFromBlock(label, &merged))
	}
	wall := r.wallHist
	trials := r.wallCount
	for _, s := range r.shards {
		wall.Merge(&s.wall)
		trials += s.wall.Count
	}
	if trials > 0 {
		snap.Wall = &WallSnapshot{Trials: trials, Hist: wall}
	}
	return snap
}

// segmentFromBlock renders one merged block as a segment snapshot:
// only non-zero cells, in schema declaration order. Both
// Registry.Snapshot and Snapshot.Merge emit through this, so a merged
// snapshot is formatted exactly like a natively-collected one.
func segmentFromBlock(label string, merged *block) SegmentSnapshot {
	seg := SegmentSnapshot{Label: label}
	for c := Counter(0); c < counterCount; c++ {
		if v := merged.counters[c]; v != 0 {
			seg.Counters = append(seg.Counters, CounterValue{Name: c.String(), Value: v})
		}
	}
	for h := HistID(0); h < histCount; h++ {
		hv := merged.hists[h]
		if hv.Count != 0 {
			seg.Hists = append(seg.Hists, HistValue{Name: h.String(), Hist: hv})
		}
	}
	return seg
}

// CounterValue is one named counter total in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistValue is one named histogram in a snapshot.
type HistValue struct {
	Name string `json:"name"`
	Hist Hist   `json:"-"`
}

// histBucketJSON is the compressed on-wire form of one non-empty
// histogram bucket: the bucket's inclusive upper bound 2^i - 1 and
// its count. The bucket index is recoverable as bits.Len64(le), so
// the encoding is lossless.
type histBucketJSON struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// packBuckets compresses a histogram's non-empty buckets.
func packBuckets(h *Hist) []histBucketJSON {
	var bs []histBucketJSON
	for i, c := range h.Buckets {
		if c != 0 {
			bs = append(bs, histBucketJSON{UpperBound: 1<<uint(i) - 1, Count: c})
		}
	}
	return bs
}

// unpackBuckets reverses packBuckets into a zeroed histogram's bucket
// array (count and sum are carried separately on the wire).
func unpackBuckets(h *Hist, bs []histBucketJSON) error {
	for _, b := range bs {
		i := bits.Len64(b.UpperBound)
		if i >= histBuckets || b.UpperBound != 1<<uint(i)-1 {
			return fmt.Errorf("obs: bad histogram bucket bound %d", b.UpperBound)
		}
		h.Buckets[i] += b.Count
	}
	return nil
}

// MarshalJSON exports the histogram as summary statistics plus its
// non-empty buckets (bucket i covers [2^(i-1), 2^i), bucket 0 is
// exactly zero).
func (h HistValue) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name    string           `json:"name"`
		Count   uint64           `json:"count"`
		Sum     uint64           `json:"sum"`
		P50     uint64           `json:"p50_le"`
		P99     uint64           `json:"p99_le"`
		Buckets []histBucketJSON `json:"buckets,omitempty"`
	}{h.Name, h.Hist.Count, h.Hist.Sum, h.Hist.Quantile(0.50), h.Hist.Quantile(0.99), packBuckets(&h.Hist)})
}

// UnmarshalJSON reverses MarshalJSON: the full histogram is
// reconstructed from the compressed bucket list plus count and sum
// (the quantile fields are derived and ignored). This is what makes a
// Snapshot round-trippable across a process boundary for shard-bundle
// merging.
func (h *HistValue) UnmarshalJSON(data []byte) error {
	var in struct {
		Name    string           `json:"name"`
		Count   uint64           `json:"count"`
		Sum     uint64           `json:"sum"`
		Buckets []histBucketJSON `json:"buckets"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	h.Name = in.Name
	h.Hist = Hist{Count: in.Count, Sum: in.Sum}
	return unpackBuckets(&h.Hist, in.Buckets)
}

// SegmentSnapshot is the merged cells of one sweep configuration.
// Only non-zero metrics appear, in schema declaration order.
type SegmentSnapshot struct {
	Label    string         `json:"label"`
	Counters []CounterValue `json:"counters,omitempty"`
	Hists    []HistValue    `json:"histograms,omitempty"`
}

// Counter returns a segment counter's total by export name (0 when
// absent).
func (s *SegmentSnapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// WallSnapshot is the non-deterministic wall-clock section.
type WallSnapshot struct {
	Trials uint64 `json:"trials"`
	Hist   Hist   `json:"-"`
}

// MarshalJSON exports the wall section's summary statistics plus the
// full latency bucket list, so a serialized shard snapshot carries
// enough to aggregate wall sections across processes.
func (w *WallSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Trials     uint64           `json:"trials"`
		SumNanos   uint64           `json:"sum_ns"`
		MeanNanos  uint64           `json:"mean_ns"`
		P50LENanos uint64           `json:"p50_le_ns"`
		P99LENanos uint64           `json:"p99_le_ns"`
		Buckets    []histBucketJSON `json:"buckets,omitempty"`
	}{w.Trials, w.Hist.Sum, uint64(w.Hist.Mean()), w.Hist.Quantile(0.50), w.Hist.Quantile(0.99), packBuckets(&w.Hist)})
}

// UnmarshalJSON reverses MarshalJSON (derived statistics are
// recomputed from the buckets, not trusted from the wire).
func (w *WallSnapshot) UnmarshalJSON(data []byte) error {
	var in struct {
		Trials   uint64           `json:"trials"`
		SumNanos uint64           `json:"sum_ns"`
		Buckets  []histBucketJSON `json:"buckets"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*w = WallSnapshot{Trials: in.Trials, Hist: Hist{Count: in.Trials, Sum: in.SumNanos}}
	return unpackBuckets(&w.Hist, in.Buckets)
}

// Snapshot is a merged view of one registry, produced by
// Registry.Snapshot. Segments are deterministic (sim-domain integer
// sums); Wall and Elapsed are wall-clock and excluded from
// DeterministicText.
type Snapshot struct {
	Segments []SegmentSnapshot `json:"segments"`
	Wall     *WallSnapshot     `json:"wall,omitempty"`
	Elapsed  time.Duration     `json:"elapsed_ns,omitempty"`
}

// Segment returns the snapshot segment with the given label, or nil.
func (s *Snapshot) Segment(label string) *SegmentSnapshot {
	for i := range s.Segments {
		if s.Segments[i].Label == label {
			return &s.Segments[i]
		}
	}
	return nil
}

// counterIndex and histIndex map export names back to schema indices,
// for folding a deserialized snapshot into block cells.
var counterIndex = func() map[string]Counter {
	m := make(map[string]Counter, counterCount)
	for c := Counter(0); c < counterCount; c++ {
		m[c.String()] = c
	}
	return m
}()

var histIndex = func() map[string]HistID {
	m := make(map[string]HistID, histCount)
	for h := HistID(0); h < histCount; h++ {
		m[h.String()] = h
	}
	return m
}()

// toBlock folds a segment snapshot back into raw metric cells. An
// export name absent from the compiled schema is an error: it means
// the snapshot came from a different build of the schema and integer
// merging would silently misattribute its cells.
func (s *SegmentSnapshot) toBlock() (*block, error) {
	var b block
	for _, c := range s.Counters {
		idx, ok := counterIndex[c.Name]
		if !ok {
			return nil, fmt.Errorf("obs: unknown counter %q in snapshot", c.Name)
		}
		b.counters[idx] += c.Value
	}
	for i := range s.Hists {
		h := &s.Hists[i]
		idx, ok := histIndex[h.Name]
		if !ok {
			return nil, fmt.Errorf("obs: unknown histogram %q in snapshot", h.Name)
		}
		b.hists[idx].Merge(&h.Hist)
	}
	return &b, nil
}

// Merge folds o's cells into s. Both snapshots must have the same
// segment labels in the same order (shards of one campaign share the
// registry's segment configuration). Segment cells merge by integer
// addition through the same block path Registry.Snapshot uses, so
// merging is commutative and partition-invariant: merging N shard
// snapshots of a campaign yields byte-identical DeterministicText to
// running the whole campaign in one process. Wall sections aggregate
// (histograms merge, trial counts add) rather than keeping one
// shard's values; Elapsed becomes the maximum, since shard processes
// run concurrently.
func (s *Snapshot) Merge(o *Snapshot) error {
	if len(s.Segments) != len(o.Segments) {
		return fmt.Errorf("obs: segment count mismatch: %d vs %d", len(s.Segments), len(o.Segments))
	}
	for i := range s.Segments {
		a, b := &s.Segments[i], &o.Segments[i]
		if a.Label != b.Label {
			return fmt.Errorf("obs: segment label mismatch at %d: %q vs %q", i, a.Label, b.Label)
		}
		ab, err := a.toBlock()
		if err != nil {
			return err
		}
		bb, err := b.toBlock()
		if err != nil {
			return err
		}
		ab.merge(bb)
		s.Segments[i] = segmentFromBlock(a.Label, ab)
	}
	if o.Wall != nil {
		if s.Wall == nil {
			s.Wall = &WallSnapshot{}
		}
		s.Wall.Trials += o.Wall.Trials
		s.Wall.Hist.Merge(&o.Wall.Hist)
	}
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
	return nil
}

// Deterministic returns a copy of the snapshot with the wall-clock
// sections (Wall, Elapsed) dropped: the JSON-export view that must be
// byte-identical at any worker count and for any process sharding.
func (s *Snapshot) Deterministic() *Snapshot {
	return &Snapshot{Segments: s.Segments}
}

// DeterministicText renders only the sim-domain sections: identical
// strings for identical trial sets at any worker count. This is the
// artifact the determinism tests compare.
func (s *Snapshot) DeterministicText() string {
	var b strings.Builder
	s.writeSegments(&b)
	return b.String()
}

// Text renders the full summary: the deterministic segments plus the
// wall-clock section (per-trial latency and trials/s).
func (s *Snapshot) Text() string {
	var b strings.Builder
	s.writeSegments(&b)
	if s.Wall != nil {
		fmt.Fprintf(&b, "wall clock:\n")
		fmt.Fprintf(&b, "  %-28s %d\n", "trials", s.Wall.Trials)
		fmt.Fprintf(&b, "  %-28s mean=%s p50<=%s p99<=%s\n", "trial latency",
			time.Duration(s.Wall.Hist.Mean()).Round(time.Microsecond),
			time.Duration(s.Wall.Hist.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(s.Wall.Hist.Quantile(0.99)).Round(time.Microsecond))
		if s.Elapsed > 0 {
			fmt.Fprintf(&b, "  %-28s %.0f\n", "trials/s",
				float64(s.Wall.Trials)/s.Elapsed.Seconds())
		}
	}
	return b.String()
}

// writeSegments renders each segment's non-zero counters and
// histogram summaries.
func (s *Snapshot) writeSegments(b *strings.Builder) {
	for i := range s.Segments {
		seg := &s.Segments[i]
		fmt.Fprintf(b, "segment %s:\n", seg.Label)
		for _, c := range seg.Counters {
			fmt.Fprintf(b, "  %-28s %d\n", c.Name, c.Value)
		}
		for _, h := range seg.Hists {
			fmt.Fprintf(b, "  %-28s count=%d mean=%.0f p50<=%d p99<=%d\n",
				h.Name, h.Hist.Count, h.Hist.Mean(), h.Hist.Quantile(0.50), h.Hist.Quantile(0.99))
		}
	}
}

// MarshalSweeps serializes a map of sweep name → snapshot as stable,
// sorted JSON — the -metrics-json export, shaped like the BENCH_*.json
// flow (one object per sweep under a top-level key). Only the
// deterministic sections are exported (wall-clock stays in the
// human-readable -metrics text), so the file is byte-identical for
// the same trials at any worker count and for any process sharding —
// the property the shard-merge CI gate cmp's.
// The document is built by the append fast path (AppendSweeps); the
// equivalence test pins it byte-for-byte against the reflection
// encoding it replaced.
func MarshalSweeps(sweeps map[string]*Snapshot) ([]byte, error) {
	return AppendSweeps(nil, sweeps), nil
}
