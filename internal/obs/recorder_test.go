package obs

import (
	"testing"
	"time"
)

// TestRecorderWraparound pins the eviction order across multiple full
// wraps of the ring: after recording k·cap+r events, the ring holds
// exactly the last cap of them, in arrival order, with the write
// cursor anywhere in the ring (the multi-wrap case TestRecorderRing's
// single overflow doesn't reach).
func TestRecorderWraparound(t *testing.T) {
	const capacity = 4
	r := NewRecorder(capacity)
	for _, total := range []int{9, 12, 103} { // mid-ring, on-boundary, far wrap
		r.Reset()
		for i := 0; i < total; i++ {
			r.Record(time.Duration(i), EvH2Request, int64(i), 0)
		}
		ev := r.Events()
		if len(ev) != capacity {
			t.Fatalf("total %d: len(Events) = %d, want %d", total, len(ev), capacity)
		}
		for i, e := range ev {
			if want := int64(total - capacity + i); e.A != want {
				t.Errorf("total %d: event %d: A = %d, want %d", total, i, e.A, want)
			}
		}
		if got, want := r.Dropped(), uint64(total-capacity); got != want {
			t.Errorf("total %d: Dropped = %d, want %d", total, got, want)
		}
		if got := r.Total(); got != uint64(total) {
			t.Errorf("total %d: Total = %d, want %d", total, got, total)
		}
	}
}

// TestRecorderFilter pins the filter contract: filtered-out kinds
// never touch the ring — they consume no slot, evict nothing, and
// count in neither Total nor Dropped — so a sparse signal survives a
// noisy interleaved one.
func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(4)
	r.SetFilter(MaskOf(EvH2ResetRound, EvAtkPhase))

	// Interleave a flood of filtered-out drops with sparse admitted
	// events. Without the filter the drops would wash every reset
	// round out of a 4-slot ring.
	for i := 0; i < 100; i++ {
		r.Record(time.Duration(i), EvNetemDrop, int64(i), 0)
		if i%20 == 0 {
			r.Record(time.Duration(i), EvH2ResetRound, int64(i/20), 0)
		}
	}
	r.Record(101, EvAtkPhase, 2, 0)

	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(ev))
	}
	// 5 reset rounds + 1 phase admitted; ring keeps the last 4 in
	// arrival order: rounds 3, 4 then the phase... rounds are at
	// i=0,20,40,60,80 → A=0..4; admitted total 6, dropped 2 (A=0,1).
	want := []struct {
		kind EventKind
		a    int64
	}{
		{EvH2ResetRound, 2},
		{EvH2ResetRound, 3},
		{EvH2ResetRound, 4},
		{EvAtkPhase, 2},
	}
	for i, w := range want {
		if ev[i].Kind != w.kind || ev[i].A != w.a {
			t.Errorf("event %d = %v a=%d, want %v a=%d", i, ev[i].Kind, ev[i].A, w.kind, w.a)
		}
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6 (filtered events must not count)", r.Total())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2 (evictions among admitted events only)", r.Dropped())
	}

	// Reset keeps the filter (recorder-lifetime configuration).
	r.Reset()
	r.Record(1, EvNetemDrop, 1, 0)
	r.Record(2, EvH2ResetRound, 7, 0)
	if ev := r.Events(); len(ev) != 1 || ev[0].Kind != EvH2ResetRound {
		t.Errorf("after Reset: events = %v, want the reset round only", ev)
	}

	// Clearing the filter admits everything again.
	r.SetFilter(0)
	r.Record(3, EvNetemDrop, 2, 0)
	if ev := r.Events(); len(ev) != 2 {
		t.Errorf("after clearing filter: %d events, want 2", len(ev))
	}
}

// TestRecorderFilterWraparoundInteraction drives the filter and the
// ring wraparound together: eviction order among admitted events must
// be unaffected by any number of interleaved rejected events.
func TestRecorderFilterWraparoundInteraction(t *testing.T) {
	const capacity = 3
	filtered := NewRecorder(capacity)
	filtered.SetFilter(MaskOf(EvH2Request))
	reference := NewRecorder(capacity)

	// The reference recorder sees only the admitted stream; the
	// filtered one sees it buried in noise. Their rings must match
	// exactly at every step.
	for i := 0; i < 50; i++ {
		for j := 0; j < i%5; j++ { // bursty noise, including none
			filtered.Record(time.Duration(i), EvNetemDrop, int64(j), 0)
		}
		filtered.Record(time.Duration(i), EvH2Request, int64(i), int64(i))
		reference.Record(time.Duration(i), EvH2Request, int64(i), int64(i))

		fe, re := filtered.Events(), reference.Events()
		if len(fe) != len(re) {
			t.Fatalf("step %d: %d events vs reference %d", i, len(fe), len(re))
		}
		for k := range fe {
			if fe[k] != re[k] {
				t.Fatalf("step %d: event %d = %+v, reference %+v", i, k, fe[k], re[k])
			}
		}
		if filtered.Dropped() != reference.Dropped() || filtered.Total() != reference.Total() {
			t.Fatalf("step %d: counters %d/%d vs reference %d/%d", i,
				filtered.Dropped(), filtered.Total(), reference.Dropped(), reference.Total())
		}
	}
}

// TestMaskOf pins the mask helper.
func TestMaskOf(t *testing.T) {
	m := MaskOf(EvNetemDrop, EvPredRun)
	if !m.Has(EvNetemDrop) || !m.Has(EvPredRun) {
		t.Error("mask missing its own kinds")
	}
	if m.Has(EvH2Request) || m.Has(EvTCPBroken) {
		t.Error("mask admits kinds it should not")
	}
	if MaskOf() != 0 {
		t.Error("empty MaskOf should be the no-filter zero mask")
	}
}
