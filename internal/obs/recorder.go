package obs

import (
	"fmt"
	"strings"
	"time"
)

// EventKind enumerates the typed events the flight recorder captures.
// Each kind documents the meaning of its A/B payload fields.
type EventKind uint8

const (
	// EvNetemDrop: a link dropped a packet. A = 0 for a random-loss
	// drop, 1 for a queue-overflow drop; B = payload length in bytes.
	EvNetemDrop EventKind = iota
	// EvTCPFastRetx: a fast retransmit fired. A = retransmitted
	// sequence number, B = congestion window in bytes afterwards.
	EvTCPFastRetx
	// EvTCPTimeoutRetx: an RTO expired and retransmitted. A = sequence
	// number, B = backoff shift (number of consecutive timeouts).
	EvTCPTimeoutRetx
	// EvTCPBroken: the connection gave up after max retries. A =
	// sequence number that exhausted its retries.
	EvTCPBroken
	// EvH2Request: the client issued a request on a new stream. A =
	// stream ID, B = object ID.
	EvH2Request
	// EvH2Stall: the client's stall timer fired with streams still
	// open. A = number of open streams.
	EvH2Stall
	// EvH2ResetRound: the client cancelled all open streams with
	// RST_STREAM. A = number of streams reset, B = round number.
	EvH2ResetRound
	// EvH2Refetch: the client queued a re-request of an object after a
	// reset round. A = object ID.
	EvH2Refetch
	// EvH2ObjComplete: an object finished downloading. A = object ID,
	// B = bytes received.
	EvH2ObjComplete
	// EvH2SrvDupCopy: the server spawned a duplicate response copy for
	// a re-requested object (the spurious-retransmission mechanism
	// behind Table I / Fig. 5). A = object ID, B = copy index.
	EvH2SrvDupCopy
	// EvAtkPhase: the adversary advanced an attack phase. A = phase
	// number entered (2 or 3).
	EvAtkPhase
	// EvPredRun: the streaming inference engine closed a record run
	// (the delimiting sub-full record arrived). A = estimated object
	// size in bytes, B = matched object ID, or -1 when no size-table
	// entry was within tolerance.
	EvPredRun

	eventKindCount // number of event kinds; must stay last
)

var eventKindNames = [eventKindCount]string{
	EvNetemDrop:      "netem.drop",
	EvTCPFastRetx:    "tcp.fast_retx",
	EvTCPTimeoutRetx: "tcp.timeout_retx",
	EvTCPBroken:      "tcp.broken",
	EvH2Request:      "h2.request",
	EvH2Stall:        "h2.stall",
	EvH2ResetRound:   "h2.reset_round",
	EvH2Refetch:      "h2.refetch",
	EvH2ObjComplete:  "h2.obj_complete",
	EvH2SrvDupCopy:   "h2.srv_dup_copy",
	EvAtkPhase:       "attack.phase",
	EvPredRun:        "attack.pred.run",
}

// String returns the event kind's export name.
func (k EventKind) String() string {
	if k < eventKindCount {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one flight-recorder entry: a typed event stamped with the
// simulation clock plus two integer payload fields whose meaning is
// documented on the EventKind.
type Event struct {
	At   time.Duration
	Kind EventKind
	A, B int64
}

// Recorder is the per-trial flight recorder: a fixed-capacity ring of
// typed events that keeps the most recent entries. It is reset at the
// start of each recorded trial, filled by Sink.Event during the
// simulation, and dumped afterwards. Recording is allocation-free
// (the ring is preallocated) and single-goroutine, like everything
// else inside one trial.
//
// An optional kind filter (SetFilter) restricts recording to a subset
// of event kinds. Filtered-out events are rejected before they touch
// the ring: they consume no slot, evict nothing, and do not count
// toward Total — so a noisy layer (per-packet netem drops) cannot
// wash an interesting sparse signal (reset rounds) out of the ring.
type Recorder struct {
	ring    []Event
	next    int
	total   uint64
	dropped uint64
	filter  EventMask // 0 = record every kind
}

// EventMask is a bit set of EventKinds (bit k = kind k). The zero
// mask means "no filter" on a Recorder: every kind records.
type EventMask uint64

// MaskOf builds a mask admitting exactly the given kinds.
func MaskOf(kinds ...EventKind) EventMask {
	var m EventMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask admits kind k.
func (m EventMask) Has(k EventKind) bool { return m&(1<<k) != 0 }

// SetFilter restricts the recorder to the masked kinds (zero removes
// the filter). The filter applies to subsequent Record calls only;
// events already in the ring are kept.
func (r *Recorder) SetFilter(m EventMask) { r.filter = m }

// NewRecorder returns a recorder holding up to capacity events
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]Event, 0, capacity)}
}

// Reset discards all recorded events, keeping the ring's capacity and
// the kind filter (the filter is a recorder-lifetime configuration,
// not per-trial state).
func (r *Recorder) Reset() {
	r.ring = r.ring[:0]
	r.next = 0
	r.total = 0
	r.dropped = 0
}

// Record appends one event, evicting the oldest when full. Events
// rejected by the kind filter never reach the ring and count in
// neither Total nor Dropped.
func (r *Recorder) Record(at time.Duration, kind EventKind, a, b int64) {
	if r.filter != 0 && !r.filter.Has(kind) {
		return
	}
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, Event{At: at, Kind: kind, A: a, B: b})
		return
	}
	r.ring[r.next] = Event{At: at, Kind: kind, A: a, B: b}
	r.next = (r.next + 1) % cap(r.ring)
	r.dropped++
}

// Events returns the recorded events in arrival order. The returned
// slice is freshly allocated; use only after the trial completes.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dropped reports how many events were evicted because the ring was
// full.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Total reports how many events were recorded, including evicted
// ones.
func (r *Recorder) Total() uint64 { return r.total }

// Dump renders the recorded events as one line each — sim timestamp,
// kind, payload — the -events seed=N output.
func (r *Recorder) Dump() string {
	var b strings.Builder
	if r.dropped > 0 {
		fmt.Fprintf(&b, "(ring full: %d oldest of %d events evicted)\n", r.dropped, r.total)
	}
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "%12s  %-16s a=%-8d b=%d\n", e.At, e.Kind, e.A, e.B)
	}
	return b.String()
}
