package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 46, 47}, {1<<62 + 1, 47},
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Observe(c.v)
		if h.Buckets[c.bucket] != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", c.v, c.bucket)
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	// 100 samples of value 5 (bucket 3, upper bound 7).
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
	// Add 1 sample of 1000 (bucket 10, upper bound 1023): p99 crosses.
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 after outlier = %d, want 7", got)
	}
	if got := h.Quantile(0.999); got != 1023 {
		t.Errorf("p99.9 after outlier = %d, want 1023", got)
	}
}

// TestHistMergePartitionInvariance is the histogram half of the
// determinism contract: splitting a sample stream across shards and
// merging gives cells identical to observing serially.
func TestHistMergePartitionInvariance(t *testing.T) {
	samples := make([]int64, 0, 500)
	x := uint64(12345)
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		samples = append(samples, int64(x>>40))
	}
	var serial Hist
	for _, v := range samples {
		serial.Observe(v)
	}
	var a, b, c, merged Hist
	for i, v := range samples {
		switch i % 3 {
		case 0:
			a.Observe(v)
		case 1:
			b.Observe(v)
		default:
			c.Observe(v)
		}
	}
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(&c)
	if merged != serial {
		t.Fatal("merged histogram differs from serial observation")
	}
}

func TestZeroSinkIsSafe(t *testing.T) {
	var k Sink
	if k.Enabled() {
		t.Fatal("zero Sink reports Enabled")
	}
	k.Inc(CTrial)
	k.Add(CH2Request, 7)
	k.Observe(HTCPCwnd, 42)
	k.ObserveDuration(HNetemJitter, time.Millisecond)
	k.Event(time.Second, EvH2Request, 1, 2)

	var nilShard *Shard
	k = nilShard.Sink(3)
	if k.Enabled() {
		t.Fatal("nil-shard Sink reports Enabled")
	}
	k.Inc(CTrial)
}

func TestShardSegmentsAndClamping(t *testing.T) {
	r := NewRegistry()
	r.SetSegments("a", "b")
	s := r.NewShard()
	s.Sink(0).Inc(CTrial)
	s.Sink(1).Add(CTrial, 2)
	s.Sink(-1).Inc(CH2Request) // clamps to segment 0
	s.Sink(99).Inc(CH2Request) // clamps to segment 0
	snap := r.Snapshot()
	if got := snap.Segment("a").Counter("trial.count"); got != 1 {
		t.Errorf("segment a trial.count = %d, want 1", got)
	}
	if got := snap.Segment("b").Counter("trial.count"); got != 2 {
		t.Errorf("segment b trial.count = %d, want 2", got)
	}
	if got := snap.Segment("a").Counter("h2.client.request"); got != 2 {
		t.Errorf("clamped increments = %d, want 2", got)
	}
}

// TestRegistryMergeDeterminism distributes a deterministic workload
// across different shard counts and checks the snapshot text is
// byte-identical — the same invariant the runner relies on at -j 1 vs
// -j 8.
func TestRegistryMergeDeterminism(t *testing.T) {
	const trials = 96
	run := func(shards int) string {
		r := NewRegistry()
		r.SetSegments("s0", "s1", "s2")
		ss := make([]*Shard, shards)
		for i := range ss {
			ss[i] = r.NewShard()
		}
		for trial := 0; trial < trials; trial++ {
			k := ss[trial%shards].Sink(trial % 3)
			k.Inc(CTrial)
			k.Add(CH2Request, uint64(trial%7))
			k.Observe(HTCPCwnd, int64(trial*trial))
		}
		return r.Snapshot().DeterministicText()
	}
	ref := run(1)
	for _, n := range []int{2, 3, 8} {
		if got := run(n); got != ref {
			t.Fatalf("snapshot with %d shards differs from 1 shard:\n%s\nvs\n%s", n, got, ref)
		}
	}
	if !strings.Contains(ref, "trial.count") || !strings.Contains(ref, "tcp.cwnd_bytes") {
		t.Fatalf("snapshot text missing expected metrics:\n%s", ref)
	}
}

func TestSnapshotWallSectionExcludedFromDeterministicText(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	s.Sink(0).Inc(CTrial)
	r.ObserveTrialWall(2 * time.Millisecond)
	snap := r.Snapshot()
	det := snap.DeterministicText()
	full := snap.Text()
	if strings.Contains(det, "wall clock") {
		t.Fatal("deterministic text contains wall section")
	}
	if !strings.Contains(full, "wall clock") || !strings.Contains(full, "trials/s") {
		t.Fatalf("full text missing wall section:\n%s", full)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(time.Duration(i), EvH2Request, int64(i), 0)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(i + 2); e.A != want {
			t.Errorf("event %d: A = %d, want %d (keep-most-recent order)", i, e.A, want)
		}
	}
	if r.Dropped() != 2 || r.Total() != 6 {
		t.Errorf("Dropped/Total = %d/%d, want 2/6", r.Dropped(), r.Total())
	}
	dump := r.Dump()
	if !strings.Contains(dump, "h2.request") || !strings.Contains(dump, "evicted") {
		t.Fatalf("dump missing expected content:\n%s", dump)
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestSinkAllocationFree(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	k := s.Sink(0)
	rec := NewRecorder(64)
	kr := k.WithRecorder(rec)
	if n := testing.AllocsPerRun(100, func() {
		k.Inc(CTrial)
		k.Add(CH2Request, 3)
		k.Observe(HTCPCwnd, 1000)
		kr.Event(time.Second, EvH2Request, 1, 2)
	}); n != 0 {
		t.Fatalf("enabled sink allocates: %v allocs/op", n)
	}
	var off Sink
	if n := testing.AllocsPerRun(100, func() {
		off.Inc(CTrial)
		off.Observe(HTCPCwnd, 1000)
		off.Event(time.Second, EvH2Request, 1, 2)
	}); n != 0 {
		t.Fatalf("disabled sink allocates: %v allocs/op", n)
	}
}

func TestMarshalSweeps(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	s.Sink(0).Inc(CTrial)
	s.Sink(0).Observe(HTCPCwnd, 100)
	out, err := MarshalSweeps(map[string]*Snapshot{"table1": r.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sweep": "table1"`, `"trial.count"`, `"tcp.cwnd_bytes"`, `"p99_le"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("JSON missing %s:\n%s", want, out)
		}
	}
}
