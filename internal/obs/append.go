package obs

import (
	"sort"

	"repro/internal/jsonenc"
)

// This file is the append-based encoder behind MarshalSweeps: the
// -metrics-json wire form built without reflection, byte-identical to
// json.MarshalIndent over the same structures (two-space indent,
// ": " after keys, compact empty arrays, omitempty slices dropped).
// The equivalence test in append_test.go pins it against the
// reflection reference — the shard-merge CI gate cmp's these files,
// so drift here is corruption, not style.

// appendNL appends a newline plus depth levels of two-space indent.
func appendNL(dst []byte, depth int) []byte {
	dst = append(dst, '\n')
	for i := 0; i < depth; i++ {
		dst = append(dst, ' ', ' ')
	}
	return dst
}

// appendBucketList appends a histogram's non-empty buckets as the
// packed {le, count} list (packBuckets' wire form, indent style),
// without materializing the intermediate slice.
func appendBucketList(dst []byte, h *Hist, depth int) []byte {
	dst = append(dst, '[')
	first := true
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = appendNL(dst, depth+1)
		dst = append(dst, '{')
		dst = appendNL(dst, depth+2)
		dst = append(dst, `"le": `...)
		dst = jsonenc.AppendUint(dst, 1<<uint(i)-1)
		dst = append(dst, ',')
		dst = appendNL(dst, depth+2)
		dst = append(dst, `"count": `...)
		dst = jsonenc.AppendUint(dst, c)
		dst = appendNL(dst, depth+1)
		dst = append(dst, '}')
	}
	dst = appendNL(dst, depth)
	return append(dst, ']')
}

// appendHistValue mirrors HistValue.MarshalJSON (name, count, sum,
// p50_le, p99_le, buckets omitempty), re-indented as MarshalIndent
// would.
func appendHistValue(dst []byte, h *HistValue, depth int) []byte {
	dst = append(dst, '{')
	dst = appendNL(dst, depth+1)
	dst = append(dst, `"name": `...)
	dst = jsonenc.AppendString(dst, h.Name)
	dst = append(dst, ',')
	dst = appendNL(dst, depth+1)
	dst = append(dst, `"count": `...)
	dst = jsonenc.AppendUint(dst, h.Hist.Count)
	dst = append(dst, ',')
	dst = appendNL(dst, depth+1)
	dst = append(dst, `"sum": `...)
	dst = jsonenc.AppendUint(dst, h.Hist.Sum)
	dst = append(dst, ',')
	dst = appendNL(dst, depth+1)
	dst = append(dst, `"p50_le": `...)
	dst = jsonenc.AppendUint(dst, h.Hist.Quantile(0.50))
	dst = append(dst, ',')
	dst = appendNL(dst, depth+1)
	dst = append(dst, `"p99_le": `...)
	dst = jsonenc.AppendUint(dst, h.Hist.Quantile(0.99))
	empty := true
	for _, c := range h.Hist.Buckets {
		if c != 0 {
			empty = false
			break
		}
	}
	if !empty {
		dst = append(dst, ',')
		dst = appendNL(dst, depth+1)
		dst = append(dst, `"buckets": `...)
		dst = appendBucketList(dst, &h.Hist, depth+1)
	}
	dst = appendNL(dst, depth)
	return append(dst, '}')
}

// appendSegment mirrors SegmentSnapshot's reflection encoding (label,
// counters omitempty, histograms omitempty).
func appendSegment(dst []byte, seg *SegmentSnapshot, depth int) []byte {
	dst = append(dst, '{')
	dst = appendNL(dst, depth+1)
	dst = append(dst, `"label": `...)
	dst = jsonenc.AppendString(dst, seg.Label)
	if len(seg.Counters) > 0 {
		dst = append(dst, ',')
		dst = appendNL(dst, depth+1)
		dst = append(dst, `"counters": [`...)
		for k := range seg.Counters {
			if k > 0 {
				dst = append(dst, ',')
			}
			dst = appendNL(dst, depth+2)
			dst = append(dst, '{')
			dst = appendNL(dst, depth+3)
			dst = append(dst, `"name": `...)
			dst = jsonenc.AppendString(dst, seg.Counters[k].Name)
			dst = append(dst, ',')
			dst = appendNL(dst, depth+3)
			dst = append(dst, `"value": `...)
			dst = jsonenc.AppendUint(dst, seg.Counters[k].Value)
			dst = appendNL(dst, depth+2)
			dst = append(dst, '}')
		}
		dst = appendNL(dst, depth+1)
		dst = append(dst, ']')
	}
	if len(seg.Hists) > 0 {
		dst = append(dst, ',')
		dst = appendNL(dst, depth+1)
		dst = append(dst, `"histograms": [`...)
		for k := range seg.Hists {
			if k > 0 {
				dst = append(dst, ',')
			}
			dst = appendNL(dst, depth+2)
			dst = appendHistValue(dst, &seg.Hists[k], depth+2)
		}
		dst = appendNL(dst, depth+1)
		dst = append(dst, ']')
	}
	dst = appendNL(dst, depth)
	return append(dst, '}')
}

// AppendSweeps appends the -metrics-json document for a sweep-name →
// snapshot map: stable sorted sweep order, deterministic sections
// only, byte-identical to the json.MarshalIndent form MarshalSweeps
// produced before the fast path existed.
func AppendSweeps(dst []byte, sweeps map[string]*Snapshot) []byte {
	names := make([]string, 0, len(sweeps))
	for n := range sweeps {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = append(dst, '{')
	dst = appendNL(dst, 1)
	dst = append(dst, `"sweeps": `...)
	if len(names) == 0 {
		// A nil slice marshals as null, matching the reference.
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for k, n := range names {
			if k > 0 {
				dst = append(dst, ',')
			}
			dst = appendNL(dst, 2)
			snap := sweeps[n]
			dst = append(dst, '{')
			dst = appendNL(dst, 3)
			dst = append(dst, `"sweep": `...)
			dst = jsonenc.AppendString(dst, n)
			dst = append(dst, ',')
			dst = appendNL(dst, 3)
			dst = append(dst, `"segments": `...)
			switch {
			case snap.Segments == nil:
				dst = append(dst, "null"...)
			case len(snap.Segments) == 0:
				dst = append(dst, '[', ']')
			default:
				dst = append(dst, '[')
				for s := range snap.Segments {
					if s > 0 {
						dst = append(dst, ',')
					}
					dst = appendNL(dst, 4)
					dst = appendSegment(dst, &snap.Segments[s], 4)
				}
				dst = appendNL(dst, 3)
				dst = append(dst, ']')
			}
			dst = appendNL(dst, 2)
			dst = append(dst, '}')
		}
		dst = appendNL(dst, 1)
		dst = append(dst, ']')
	}
	dst = append(dst, '\n', '}')
	return dst
}
