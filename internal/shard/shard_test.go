package shard

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlanTilesExactly(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{0, 1}, {1, 1}, {1, 3}, {10, 3}, {10, 1}, {100, 7}, {5, 5}, {3, 8},
	} {
		rs := Plan(tc.total, tc.shards)
		if len(rs) != tc.shards {
			t.Fatalf("Plan(%d,%d): %d ranges", tc.total, tc.shards, len(rs))
		}
		next := 0
		for i, r := range rs {
			if r.Start != next {
				t.Fatalf("Plan(%d,%d)[%d]: starts at %d, want %d", tc.total, tc.shards, i, r.Start, next)
			}
			if r.End < r.Start {
				t.Fatalf("Plan(%d,%d)[%d]: inverted range %+v", tc.total, tc.shards, i, r)
			}
			next = r.End
		}
		if next != tc.total {
			t.Fatalf("Plan(%d,%d): covers [0,%d)", tc.total, tc.shards, next)
		}
	}
}

func TestPlanBalance(t *testing.T) {
	rs := Plan(10, 3)
	for i, r := range rs {
		if n := r.End - r.Start; n < 3 || n > 4 {
			t.Fatalf("Plan(10,3)[%d] has %d trials", i, n)
		}
	}
}

// writeBundle creates a bundle directory with a manifest and result
// slices containing one line per index.
func writeBundle(t *testing.T, dir string, idx, count int, campaigns []CampaignManifest) {
	t.Helper()
	for i := range campaigns {
		cm := &campaigns[i]
		if cm.Results == "" {
			continue
		}
		var b strings.Builder
		for k := cm.Start; k < cm.End; k++ {
			b.WriteString(cm.Campaign)
			b.WriteByte(' ')
			b.WriteString(strings.Repeat("x", k%3)) // varying line shape
			b.WriteString("line\n")
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, cm.Results), []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m := &Manifest{Shard: idx, Shards: count, Campaigns: campaigns}
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
}

// campaignSlices fabricates one campaign split by Plan.
func campaignSlices(name, fp string, trials, shards int) [][]CampaignManifest {
	out := make([][]CampaignManifest, shards)
	for i, r := range Plan(trials, shards) {
		out[i] = []CampaignManifest{{
			Campaign:    name,
			Fingerprint: fp,
			Trials:      trials,
			Start:       r.Start,
			End:         r.End,
			Results:     name + ".jsonl",
		}}
	}
	return out
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{Shard: 1, Shards: 3, Campaigns: []CampaignManifest{{
		Campaign: "table1", Fingerprint: "fp", Trials: 30, Start: 10, End: 20,
		SeedBase: 42, Results: "table1.jsonl", Snapshot: "table1.obs.json",
		Checkpoint: "table1.ck.json",
	}}}
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != 1 || got.Shards != 3 || len(got.Campaigns) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Campaigns[0] != m.Campaigns[0] {
		t.Fatalf("campaign round trip:\n got %+v\nwant %+v", got.Campaigns[0], m.Campaigns[0])
	}
}

func TestLoadMissingManifest(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("want error for bundle without manifest")
	}
}

func TestLoadSetAndConcat(t *testing.T) {
	slices := campaignSlices("table1", "fp-a", 10, 3)
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "s")
		writeBundle(t, dirs[i], i, 3, slices[i])
	}
	// Load in shuffled order; the set must sort by shard index.
	set, err := LoadSet([]string{dirs[2], dirs[0], dirs[1]})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range set.Manifests {
		if m.Shard != i {
			t.Fatalf("set not sorted: position %d holds shard %d", i, m.Shard)
		}
	}

	var merged bytes.Buffer
	if err := set.ConcatResults("table1", &merged); err != nil {
		t.Fatal(err)
	}
	var single strings.Builder
	for k := 0; k < 10; k++ {
		single.WriteString("table1 " + strings.Repeat("x", k%3) + "line\n")
	}
	if merged.String() != single.String() {
		t.Fatalf("concat differs from single-process order:\n%q\nwant\n%q", merged.String(), single.String())
	}
}

func TestLoadSetEmptyShardRange(t *testing.T) {
	// More shards than trials: tail ranges are empty, concat skips them.
	slices := campaignSlices("t", "fp", 2, 3)
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "s")
		writeBundle(t, dirs[i], i, 3, slices[i])
	}
	set, err := LoadSet(dirs)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if err := set.ConcatResults("t", &merged); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(merged.String(), "\n"); n != 2 {
		t.Fatalf("got %d lines, want 2", n)
	}
}

func TestLoadSetRejectsFingerprintMismatch(t *testing.T) {
	slices := campaignSlices("table1", "fp-a", 10, 2)
	slices[1][0].Fingerprint = "fp-b"
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "s")
		writeBundle(t, dirs[i], i, 2, slices[i])
	}
	_, err := LoadSet(dirs)
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("want fingerprint mismatch error, got %v", err)
	}
}

func TestLoadSetRejectsDuplicateShard(t *testing.T) {
	slices := campaignSlices("t", "fp", 4, 2)
	d0 := filepath.Join(t.TempDir(), "s")
	d1 := filepath.Join(t.TempDir(), "s")
	writeBundle(t, d0, 0, 2, slices[0])
	writeBundle(t, d1, 0, 2, slices[0]) // duplicate index 0
	if _, err := LoadSet([]string{d0, d1}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate shard error, got %v", err)
	}
}

func TestLoadSetRejectsCountMismatch(t *testing.T) {
	slices := campaignSlices("t", "fp", 4, 2)
	d0 := filepath.Join(t.TempDir(), "s")
	writeBundle(t, d0, 0, 2, slices[0])
	// Only one of two bundles supplied.
	if _, err := LoadSet([]string{d0}); err == nil {
		t.Fatal("want error for incomplete bundle set")
	}
}

func TestLoadSetRejectsRangeGap(t *testing.T) {
	slices := campaignSlices("t", "fp", 10, 2)
	slices[1][0].Start = 6 // shard 0 ends at 5
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "s")
		writeBundle(t, dirs[i], i, 2, slices[i])
	}
	if _, err := LoadSet(dirs); err == nil || !strings.Contains(err.Error(), "tile") {
		t.Fatalf("want tiling error, got %v", err)
	}
}

func TestLoadSetRejectsShortCoverage(t *testing.T) {
	slices := campaignSlices("t", "fp", 10, 2)
	slices[1][0].End = 9 // last shard stops short
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "s")
		writeBundle(t, dirs[i], i, 2, slices[i])
	}
	if _, err := LoadSet(dirs); err == nil {
		t.Fatal("want coverage error")
	}
}

func TestLoadSetRejectsCampaignSetMismatch(t *testing.T) {
	a := campaignSlices("t", "fp", 4, 2)
	b := campaignSlices("u", "fp", 4, 2)
	d0 := filepath.Join(t.TempDir(), "s")
	d1 := filepath.Join(t.TempDir(), "s")
	writeBundle(t, d0, 0, 2, a[0])
	writeBundle(t, d1, 1, 2, b[1])
	if _, err := LoadSet([]string{d0, d1}); err == nil {
		t.Fatal("want campaign set mismatch error")
	}
}
