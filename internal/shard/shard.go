// Package shard is the multi-process scale-out layer: it splits a
// campaign into N contiguous trial-index ranges, describes each
// range's output as a self-describing bundle (a manifest plus a JSONL
// result slice, a serialized obs snapshot, and a per-shard pipeline
// checkpoint), and validates and reassembles a complete bundle set
// for merging.
//
// The partitioning is free because every campaign in this repository
// is a pure function of the trial index: shard i simply runs
// [Plan(total, N)[i].Start, .End) through the existing pipeline
// (pipeline.Config.Start/End) and exports exactly the JSONL lines a
// single process would for those indices. Merging is therefore
// concatenation in index order for results, and the commutative
// obs.Snapshot.Merge for metrics — both byte-identical to a
// single-process run. The manifest carries the campaign fingerprint
// so a merge can refuse bundles produced under a different
// configuration, the same guard pipeline checkpoints use.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Range is one contiguous trial-index slice [Start, End).
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Plan splits [0, total) into shards contiguous ranges of near-equal
// size (earlier shards get the remainder). The ranges tile [0, total)
// exactly; with more shards than trials the tail ranges are empty.
func Plan(total, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	rs := make([]Range, shards)
	for i := 0; i < shards; i++ {
		rs[i] = Range{Start: i * total / shards, End: (i + 1) * total / shards}
	}
	return rs
}

// CampaignManifest describes one campaign's slice inside a bundle.
// File paths are relative to the bundle directory.
type CampaignManifest struct {
	// Campaign is the campaign name ("table1", "survey", ...).
	Campaign string `json:"campaign"`

	// Fingerprint is the campaign's configuration fingerprint
	// (pipeline.Generator.Fingerprint); merge refuses to combine
	// bundles whose fingerprints differ, or that differ from the
	// merge invocation's own configuration.
	Fingerprint string `json:"fingerprint"`

	// Trials is the full campaign size; Start/End is this shard's
	// slice of it.
	Trials int `json:"trials"`
	Start  int `json:"start"`
	End    int `json:"end"`

	// SeedBase is the campaign's base seed (informational; the
	// fingerprint is the authoritative configuration check).
	SeedBase int64 `json:"seed_base"`

	// Results is the JSONL file holding one line per trial in
	// [Start, End), in index order.
	Results string `json:"results,omitempty"`

	// Snapshot is the serialized obs.Snapshot of this slice's
	// metrics.
	Snapshot string `json:"snapshot,omitempty"`

	// Checkpoint is the slice's pipeline checkpoint (resume state for
	// an interrupted shard).
	Checkpoint string `json:"checkpoint,omitempty"`
}

// Manifest is a bundle's self-description: which shard of how many,
// and the campaign slices it holds. A shard process writes it last,
// after every campaign slice completed, so a manifest's presence
// marks the bundle complete.
type Manifest struct {
	Shard     int                `json:"shard"`
	Shards    int                `json:"shards"`
	Campaigns []CampaignManifest `json:"campaigns"`
}

// manifestName is the manifest's filename inside a bundle directory.
const manifestName = "manifest.json"

// Save writes the manifest atomically into dir.
func (m *Manifest) Save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode manifest: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: bundle dir: %w", err)
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: commit manifest: %w", err)
	}
	return nil
}

// Load reads a bundle directory's manifest.
func Load(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: bundle %s has no manifest (incomplete shard run?): %w", dir, err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("shard: parse manifest in %s: %w", dir, err)
	}
	return m, nil
}

// Set is a validated bundle collection covering a whole campaign run:
// one bundle per shard, sorted by shard index.
type Set struct {
	Dirs      []string
	Manifests []*Manifest
}

// LoadSet loads and validates the bundles in dirs: every shard index
// 0..N-1 present exactly once, all bundles agreeing on the shard
// count and on each campaign's identity (name set, fingerprint, total
// trials), and each campaign's ranges tiling [0, Trials) in shard
// order. The returned set is sorted by shard index.
func LoadSet(dirs []string) (*Set, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("shard: no bundle directories")
	}
	set := &Set{Dirs: make([]string, len(dirs)), Manifests: make([]*Manifest, len(dirs))}
	count := 0
	for _, dir := range dirs {
		m, err := Load(dir)
		if err != nil {
			return nil, err
		}
		if count == 0 {
			count = m.Shards
			if count != len(dirs) {
				return nil, fmt.Errorf("shard: %s was written as 1 of %d shards, %d bundles given", dir, count, len(dirs))
			}
		}
		if m.Shards != count {
			return nil, fmt.Errorf("shard: %s disagrees on shard count: %d vs %d", dir, m.Shards, count)
		}
		if m.Shard < 0 || m.Shard >= count {
			return nil, fmt.Errorf("shard: %s has shard index %d of %d", dir, m.Shard, count)
		}
		if set.Manifests[m.Shard] != nil {
			return nil, fmt.Errorf("shard: duplicate bundle for shard %d (%s and %s)", m.Shard, set.Dirs[m.Shard], dir)
		}
		set.Dirs[m.Shard] = dir
		set.Manifests[m.Shard] = m
	}
	// All indices are in range and duplicates were rejected, so every
	// slot is filled. Validate each campaign across the set against
	// shard 0's view of it.
	for _, cm := range set.Manifests[0].Campaigns {
		if err := set.validateCampaign(cm.Campaign); err != nil {
			return nil, err
		}
	}
	for i, m := range set.Manifests {
		if len(m.Campaigns) != len(set.Manifests[0].Campaigns) {
			return nil, fmt.Errorf("shard: %s holds %d campaigns, shard 0 holds %d",
				set.Dirs[i], len(m.Campaigns), len(set.Manifests[0].Campaigns))
		}
	}
	return set, nil
}

// validateCampaign checks one campaign's slices across the whole set:
// identical fingerprints and totals, ranges tiling [0, Trials).
func (s *Set) validateCampaign(name string) error {
	ref, err := s.Manifests[0].campaign(name)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", s.Dirs[0], err)
	}
	next := 0
	for i, m := range s.Manifests {
		cm, err := m.campaign(name)
		if err != nil {
			return fmt.Errorf("shard: %s: %w", s.Dirs[i], err)
		}
		if cm.Fingerprint != ref.Fingerprint {
			return fmt.Errorf("shard: campaign %q fingerprint mismatch:\n  %s: %s\n  %s: %s",
				name, s.Dirs[0], ref.Fingerprint, s.Dirs[i], cm.Fingerprint)
		}
		if cm.Trials != ref.Trials {
			return fmt.Errorf("shard: campaign %q trial count mismatch: %s has %d, %s has %d",
				name, s.Dirs[0], ref.Trials, s.Dirs[i], cm.Trials)
		}
		if cm.Start != next {
			return fmt.Errorf("shard: campaign %q ranges do not tile: shard %d starts at %d, want %d",
				name, i, cm.Start, next)
		}
		if cm.End < cm.Start || cm.End > cm.Trials {
			return fmt.Errorf("shard: campaign %q shard %d has bad range [%d, %d) of %d",
				name, i, cm.Start, cm.End, cm.Trials)
		}
		next = cm.End
	}
	if next != ref.Trials {
		return fmt.Errorf("shard: campaign %q ranges cover [0, %d) of %d trials", name, next, ref.Trials)
	}
	return nil
}

// campaign finds a campaign entry by name in one manifest.
func (m *Manifest) campaign(name string) (*CampaignManifest, error) {
	for i := range m.Campaigns {
		if m.Campaigns[i].Campaign == name {
			return &m.Campaigns[i], nil
		}
	}
	return nil, fmt.Errorf("no campaign %q in manifest", name)
}

// Campaign returns the validated per-shard slices of one campaign, in
// shard (= index) order, with file paths resolved against their
// bundle directories.
func (s *Set) Campaign(name string) ([]CampaignManifest, error) {
	out := make([]CampaignManifest, 0, len(s.Manifests))
	for i, m := range s.Manifests {
		cm, err := m.campaign(name)
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %w", s.Dirs[i], err)
		}
		r := *cm
		if r.Results != "" {
			r.Results = filepath.Join(s.Dirs[i], r.Results)
		}
		if r.Snapshot != "" {
			r.Snapshot = filepath.Join(s.Dirs[i], r.Snapshot)
		}
		if r.Checkpoint != "" {
			r.Checkpoint = filepath.Join(s.Dirs[i], r.Checkpoint)
		}
		out = append(out, r)
	}
	return out, nil
}

// ConcatResults streams one campaign's JSONL slices to w in shard
// order — because slices are contiguous and index-ordered, the output
// is byte-identical to the single-process export. Empty slices
// (shards whose range was empty) are skipped.
func (s *Set) ConcatResults(name string, w io.Writer) error {
	slices, err := s.Campaign(name)
	if err != nil {
		return err
	}
	// One 1 MiB copy buffer reused across every slice: multi-gigabyte
	// bundle merges move in large reads instead of io.Copy's default
	// 32 KiB chunks (w is typically not a ReaderFrom here, so the
	// buffer is what sets the syscall granularity).
	var buf []byte
	for _, cm := range slices {
		if cm.Start == cm.End {
			continue
		}
		if cm.Results == "" {
			return fmt.Errorf("shard: campaign %q shard range [%d, %d) has no results file", name, cm.Start, cm.End)
		}
		f, err := os.Open(cm.Results)
		if err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		if buf == nil {
			buf = make([]byte, 1<<20)
		}
		_, err = io.CopyBuffer(w, f, buf)
		f.Close()
		if err != nil {
			return fmt.Errorf("shard: concat %s: %w", cm.Results, err)
		}
	}
	return nil
}
