package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// TestDeliveryIntegrityQuick is the transport's core property: under
// arbitrary (bounded) loss, jitter, reordering, and bandwidth, every
// byte written is delivered exactly once, in order, unless the
// connection breaks.
func TestDeliveryIntegrityQuick(t *testing.T) {
	f := func(seed int64, lossPct, jitterMs, sizeKB uint8, reorder bool) bool {
		loss := float64(lossPct%8) / 100 // 0-7%
		size := (int(sizeKB)%64 + 1) << 10
		cfg := netem.PathConfig{
			ClientSide: netem.LinkConfig{PropDelay: 2 * time.Millisecond},
			ServerSide: netem.LinkConfig{
				PropDelay:    5 * time.Millisecond,
				Loss:         loss,
				Jitter:       netem.UniformJitter(time.Duration(jitterMs%20) * time.Millisecond),
				AllowReorder: reorder,
			},
		}
		s := sim.New(seed)
		s.MaxSteps = 10_000_000
		var rcv bytes.Buffer
		conn := NewConn(s, cfg, Config{}, func(b []byte) { rcv.Write(b) }, nil)
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i*7 + int(seed))
		}
		conn.Server.Write(payload)
		s.Run()
		if conn.Broken() {
			return true // breaking under loss is a legal outcome
		}
		return bytes.Equal(rcv.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBidirectionalIntegrityQuick checks both directions concurrently.
func TestBidirectionalIntegrityQuick(t *testing.T) {
	f := func(seed int64, aKB, bKB uint8) bool {
		s := sim.New(seed)
		s.MaxSteps = 10_000_000
		var c2s, s2c bytes.Buffer
		conn := NewConn(s, netem.PathConfig{
			ClientSide: netem.LinkConfig{PropDelay: time.Millisecond},
			ServerSide: netem.LinkConfig{PropDelay: 4 * time.Millisecond, Loss: 0.01},
		}, Config{},
			func(b []byte) { s2c.Write(b) },
			func(b []byte) { c2s.Write(b) },
		)
		up := make([]byte, (int(aKB)%32+1)<<10)
		down := make([]byte, (int(bKB)%32+1)<<10)
		conn.Client.Write(up)
		conn.Server.Write(down)
		s.Run()
		if conn.Broken() {
			return true
		}
		return c2s.Len() == len(up) && s2c.Len() == len(down)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNoRetransmitWithoutImpairment: on a clean FIFO path, the
// transport must never retransmit (efficiency property; spurious
// retransmissions would distort every experiment).
func TestNoRetransmitWithoutImpairment(t *testing.T) {
	f := func(seed int64, sizeKB uint8, rateMbps uint8) bool {
		s := sim.New(seed)
		s.MaxSteps = 10_000_000
		cfg := netem.PathConfig{
			ClientSide: netem.LinkConfig{PropDelay: time.Millisecond},
			ServerSide: netem.LinkConfig{
				PropDelay:      8 * time.Millisecond,
				RateBitsPerSec: int64(rateMbps%50+5) * 1_000_000,
				MaxQueueDelay:  10 * time.Second, // no queue drops
			},
		}
		conn := NewConn(s, cfg, Config{}, func([]byte) {}, nil)
		conn.Server.Write(make([]byte, (int(sizeKB)%128+1)<<10))
		s.Run()
		return conn.Server.Stats.Retransmits == 0 && !conn.Broken()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSeqArithmeticWraparound exercises modular comparisons.
func TestSeqArithmeticWraparound(t *testing.T) {
	cases := []struct {
		a, b     uint32
		less, le bool
	}{
		{0, 1, true, true},
		{1, 0, false, false},
		{5, 5, false, true},
		{0xfffffff0, 0x10, true, true}, // wraps
		{0x10, 0xfffffff0, false, false},
	}
	for _, c := range cases {
		if seqLess(c.a, c.b) != c.less {
			t.Errorf("seqLess(%#x, %#x) = %v", c.a, c.b, !c.less)
		}
		if seqLEQ(c.a, c.b) != c.le {
			t.Errorf("seqLEQ(%#x, %#x) = %v", c.a, c.b, !c.le)
		}
	}
}

// TestOnRetransmitCallbackRanges verifies the callback reports the
// exact head range on both retransmission paths.
func TestOnRetransmitCallbackRanges(t *testing.T) {
	cfg := netem.PathConfig{
		ClientSide: netem.LinkConfig{PropDelay: time.Millisecond},
		ServerSide: netem.LinkConfig{PropDelay: 2 * time.Millisecond, Loss: 1.0},
	}
	s := sim.New(3)
	s.MaxSteps = 5_000_000
	conn := NewConn(s, cfg, Config{MaxRetries: 2}, nil, nil)
	var ranges [][2]uint32
	conn.Server.OnRetransmit = func(a, b uint32) { ranges = append(ranges, [2]uint32{a, b}) }
	conn.Server.Write(make([]byte, 5000))
	s.Run()
	if len(ranges) == 0 {
		t.Fatal("no retransmit callbacks under blackout")
	}
	for _, r := range ranges {
		if r[0] != 0 || r[1] == 0 || r[1] > 1460 {
			t.Errorf("retransmit range %v, want head segment [0, <=1460)", r)
		}
	}
}

// TestRTORecoversAfterProgress guards the RFC 6298 §5.7 behaviour:
// after a backoff episode, a single acked transmission restores the
// RTO to the estimator value instead of the backed-off one.
func TestRTORecoversAfterProgress(t *testing.T) {
	cfg := netem.PathConfig{
		ClientSide: netem.LinkConfig{PropDelay: time.Millisecond},
		ServerSide: netem.LinkConfig{PropDelay: 5 * time.Millisecond, Loss: 1.0},
	}
	s := sim.New(4)
	s.MaxSteps = 5_000_000
	conn := NewConn(s, cfg, Config{}, func([]byte) {}, nil)
	conn.Server.Write(make([]byte, 40000))
	// Heal after ~7s of backoff (RTO should have reached >= 4s).
	s.At(7*time.Second, func() {
		conn.Path.LinkS2M.SetLoss(0)
		conn.Path.LinkM2S.SetLoss(0)
	})
	s.Run()
	if conn.Broken() {
		t.Fatal("connection broke despite healing")
	}
	if rto := conn.Server.RTO(); rto > time.Second {
		t.Errorf("RTO stuck at %v after recovery; backoff must decay on progress", rto)
	}
}
