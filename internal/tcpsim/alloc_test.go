package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// TestSteadyStateTransferZeroAlloc proves the pooled data path: after
// a warm-up transfer has grown every buffer (packet pool, send
// buffers, event heap) to its high-water mark, pushing more bytes
// through a clean connection allocates nothing per segment.
func TestSteadyStateTransferZeroAlloc(t *testing.T) {
	s := sim.New(1)
	conn := NewConn(s, defaultPath(), Config{}, func([]byte) {}, nil)
	payload := make([]byte, 256<<10)

	// Warm up pools and buffers.
	conn.Server.Write(payload)
	s.Run()

	allocs := testing.AllocsPerRun(5, func() {
		conn.Server.Write(payload)
		s.Run()
	})
	// With the Karn sentAt map replaced by the recycled sentQ slice,
	// the transport data path is allocation-free outright.
	if allocs != 0 {
		t.Errorf("steady-state 256KiB transfer: %.1f allocs/op, want 0", allocs)
	}
}

// TestPacketPoolRecycles checks the pool actually recycles: a long
// transfer must keep the pool's live packet population bounded near
// the in-flight window rather than one packet per segment sent.
func TestPacketPoolRecycles(t *testing.T) {
	s := sim.New(1)
	conn := NewConn(s, defaultPath(), Config{}, func([]byte) {}, nil)
	conn.Server.Write(make([]byte, 1<<20))
	s.Run()
	sent := conn.Server.Stats.SegmentsSent + conn.Server.Stats.AcksSent +
		conn.Client.Stats.SegmentsSent + conn.Client.Stats.AcksSent
	if free := conn.Path.Pool.Len(); free == 0 || free > sent/3 {
		t.Errorf("pool holds %d packets after %d sends; want bounded recycling (0 < free <= sent/3)", free, sent)
	}
}

// BenchmarkBulkTransfer measures a clean 1 MiB server->client
// transfer end to end through netem: the transport-layer share of a
// trial's cost.
func BenchmarkBulkTransfer(b *testing.B) {
	payload := make([]byte, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		conn := NewConn(s, defaultPath(), Config{}, func([]byte) {}, nil)
		conn.Server.Write(payload)
		s.Run()
	}
	b.SetBytes(1 << 20)
}

// BenchmarkLossyTransfer exercises the retransmission paths (hold
// queue, RTO timer churn, fast retransmit) under 2% loss.
func BenchmarkLossyTransfer(b *testing.B) {
	payload := make([]byte, 256<<10)
	cfg := netem.PathConfig{
		ClientSide: netem.LinkConfig{PropDelay: 2 * time.Millisecond, Loss: 0.02},
		ServerSide: netem.LinkConfig{PropDelay: 8 * time.Millisecond, Loss: 0.02},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i + 1))
		s.MaxSteps = 5_000_000
		conn := NewConn(s, cfg, Config{}, func([]byte) {}, nil)
		conn.Server.Write(payload)
		s.Run()
	}
	b.SetBytes(256 << 10)
}
