package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

func defaultPath() netem.PathConfig {
	return netem.PathConfig{
		ClientSide: netem.LinkConfig{PropDelay: 2 * time.Millisecond},
		ServerSide: netem.LinkConfig{PropDelay: 8 * time.Millisecond},
	}
}

// runTransfer sends size bytes server->client over the given path and
// returns the connection, received buffer, and simulator.
func runTransfer(t *testing.T, seed int64, pathCfg netem.PathConfig, size int) (*Conn, *bytes.Buffer, *sim.Simulator) {
	t.Helper()
	s := sim.New(seed)
	s.MaxSteps = 5_000_000
	var rcv bytes.Buffer
	conn := NewConn(s, pathCfg, Config{}, func(b []byte) { rcv.Write(b) }, nil)
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	conn.Server.Write(payload)
	s.Run()
	if !conn.Broken() && !bytes.Equal(rcv.Bytes(), payload) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", rcv.Len(), size)
	}
	return conn, &rcv, s
}

func TestBulkTransferClean(t *testing.T) {
	conn, rcv, _ := runTransfer(t, 1, defaultPath(), 500<<10)
	if conn.Broken() {
		t.Fatal("clean path broke the connection")
	}
	if rcv.Len() != 500<<10 {
		t.Fatalf("received %d bytes", rcv.Len())
	}
	if conn.Server.Stats.Retransmits != 0 {
		t.Errorf("clean path caused %d retransmits", conn.Server.Stats.Retransmits)
	}
}

func TestBulkTransferWithLoss(t *testing.T) {
	cfg := defaultPath()
	cfg.ServerSide.Loss = 0.02 // 2% loss on both server-side links
	conn, rcv, _ := runTransfer(t, 2, cfg, 200<<10)
	if conn.Broken() {
		t.Fatal("2% loss broke the connection")
	}
	if rcv.Len() != 200<<10 {
		t.Fatalf("received %d bytes", rcv.Len())
	}
	if conn.Server.Stats.Retransmits == 0 {
		t.Error("lossy transfer had no retransmits")
	}
	if conn.Server.Stats.FastRetransmits == 0 {
		t.Error("no fast retransmits despite loss with ongoing traffic")
	}
}

func TestHeavyLossBreaksConnection(t *testing.T) {
	cfg := defaultPath()
	cfg.ServerSide.Loss = 0.95
	s := sim.New(3)
	s.MaxSteps = 5_000_000
	var gotBreak error
	conn := NewConn(s, cfg, Config{}, nil, nil)
	conn.Server.OnBreak = func(err error) { gotBreak = err }
	conn.Server.Write(make([]byte, 100<<10))
	s.Run()
	if !conn.Server.Broken() {
		t.Fatal("95% loss did not break the connection")
	}
	if gotBreak == nil {
		t.Error("OnBreak not invoked")
	}
}

func TestReorderingCausesDupAcksAndSpuriousRetransmits(t *testing.T) {
	// Strong reordering jitter on the client->server direction (as an
	// on-path adversary's per-packet holds produce) makes the server
	// emit dup-ACKs and the client fast-retransmit — the paper's
	// section IV-B side effect.
	cfg := defaultPath()
	cfg.ClientSide.Jitter = netem.UniformJitter(40 * time.Millisecond)
	cfg.ClientSide.AllowReorder = true
	s := sim.New(4)
	s.MaxSteps = 5_000_000
	var rcv bytes.Buffer
	conn := NewConn(s, cfg, Config{}, nil, func(b []byte) { rcv.Write(b) })
	// Many small writes spaced closely, like a burst of GETs.
	total := 0
	for i := 0; i < 60; i++ {
		msg := make([]byte, 200)
		total += len(msg)
		d := time.Duration(i) * 300 * time.Microsecond
		s.At(d, func() { conn.Client.Write(msg) })
	}
	s.Run()
	if rcv.Len() != total {
		t.Fatalf("received %d bytes, want %d", rcv.Len(), total)
	}
	if conn.Server.Stats.DupAcksSent == 0 {
		t.Error("reordering produced no dup-ACKs")
	}
	if conn.Client.Stats.Retransmits == 0 {
		t.Error("reordering produced no spurious retransmits")
	}
}

func TestThrottlingInflatesRTT(t *testing.T) {
	// Bandwidth throttling at the middlebox adds queueing delay, which
	// the endpoints observe as a larger RTT (and hence larger RTO and
	// stall timeouts one layer up) — the lever behind the paper's
	// Figure 5 retransmission decline.
	srttAt := func(bps int64) time.Duration {
		s := sim.New(5)
		s.MaxSteps = 5_000_000
		conn := NewConn(s, defaultPath(), Config{}, nil, nil)
		conn.Path.SetBandwidth(bps)
		conn.Server.Write(make([]byte, 60<<10))
		s.Run()
		return conn.Server.SRTT()
	}
	fast := srttAt(1_000_000_000)
	slow := srttAt(3_000_000)
	if slow <= fast {
		t.Errorf("throttling did not inflate RTT: fast=%v slow=%v", fast, slow)
	}
}

func TestTimeoutRetransmitCompletes(t *testing.T) {
	cfg := defaultPath()
	cfg.ServerSide.Loss = 1.0 // total blackout initially
	s := sim.New(6)
	s.MaxSteps = 5_000_000
	var rcv bytes.Buffer
	conn := NewConn(s, cfg, Config{}, func(b []byte) { rcv.Write(b) }, nil)
	conn.Server.Write(make([]byte, 8000))
	// Heal the path after 2.5 seconds (inside the retry budget). Both
	// server-side links carry the ServerSide loss config: data flows
	// over LinkS2M, the returning ACKs over LinkM2S.
	s.At(2500*time.Millisecond, func() {
		conn.Path.LinkS2M.SetLoss(0)
		conn.Path.LinkM2S.SetLoss(0)
	})
	s.Run()
	if conn.Broken() {
		t.Fatal("connection broke despite healing within retry budget")
	}
	if rcv.Len() != 8000 {
		t.Fatalf("received %d bytes, want 8000", rcv.Len())
	}
	if conn.Server.Stats.TimeoutRetransmits == 0 {
		t.Error("no timeout retransmits recorded")
	}
}

func TestRTOBackoffDoubling(t *testing.T) {
	cfg := defaultPath()
	cfg.ServerSide.Loss = 1.0
	s := sim.New(7)
	s.MaxSteps = 5_000_000
	conn := NewConn(s, cfg, Config{MaxRetries: 3}, nil, nil)
	conn.Server.Write(make([]byte, 1000))
	var breakTime time.Duration
	conn.Server.OnBreak = func(error) { breakTime = s.Now() }
	s.Run()
	if !conn.Server.Broken() {
		t.Fatal("connection did not break under blackout")
	}
	// 1s + 2s + 4s (+ final 8s check) of backoff before breaking.
	if breakTime < 7*time.Second {
		t.Errorf("broke at %v, want >= 7s of exponential backoff", breakTime)
	}
}

func TestRTTEstimation(t *testing.T) {
	conn, _, _ := runTransfer(t, 8, defaultPath(), 100<<10)
	srtt := conn.Server.SRTT()
	// Path RTT is 2*(2ms+8ms) = 20ms.
	if srtt < 15*time.Millisecond || srtt > 30*time.Millisecond {
		t.Errorf("SRTT = %v, want ~20ms", srtt)
	}
	if rto := conn.Server.RTO(); rto < conn.Server.cfg.RTOMin {
		t.Errorf("RTO = %v below floor", rto)
	}
}

func TestBackoffRTO(t *testing.T) {
	s := sim.New(9)
	conn := NewConn(s, defaultPath(), Config{}, nil, nil)
	before := conn.Client.RTO()
	conn.Client.BackoffRTO(4)
	if got := conn.Client.RTO(); got != 4*before {
		t.Errorf("RTO after backoff = %v, want %v", got, 4*before)
	}
	conn.Client.BackoffRTO(0) // no-op
	if got := conn.Client.RTO(); got != 4*before {
		t.Errorf("RTO changed on zero factor: %v", got)
	}
}

func TestCwndGrowsDuringTransfer(t *testing.T) {
	conn, _, _ := runTransfer(t, 10, defaultPath(), 300<<10)
	if conn.Server.Cwnd() <= conn.Server.cfg.InitialCwnd*conn.Server.cfg.MSS {
		t.Errorf("cwnd = %d did not grow past initial %d",
			conn.Server.Cwnd(), conn.Server.cfg.InitialCwnd*conn.Server.cfg.MSS)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	s := sim.New(11)
	s.MaxSteps = 5_000_000
	var c2s, s2c bytes.Buffer
	conn := NewConn(s, defaultPath(), Config{},
		func(b []byte) { s2c.Write(b) },
		func(b []byte) { c2s.Write(b) },
	)
	conn.Client.Write(bytes.Repeat([]byte("q"), 5000))
	conn.Server.Write(bytes.Repeat([]byte("r"), 50000))
	s.Run()
	if c2s.Len() != 5000 || s2c.Len() != 50000 {
		t.Errorf("c2s=%d s2c=%d", c2s.Len(), s2c.Len())
	}
}

func TestWriteAfterBreakIsNoop(t *testing.T) {
	cfg := defaultPath()
	cfg.ServerSide.Loss = 1.0
	s := sim.New(12)
	s.MaxSteps = 5_000_000
	conn := NewConn(s, cfg, Config{MaxRetries: 1}, nil, nil)
	conn.Server.Write(make([]byte, 100))
	s.Run()
	if !conn.Server.Broken() {
		t.Fatal("setup: connection should be broken")
	}
	sent := conn.Server.Stats.SegmentsSent
	conn.Server.Write(make([]byte, 100))
	s.Run()
	if conn.Server.Stats.SegmentsSent != sent {
		t.Error("broken endpoint still sent segments")
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() (int, int) {
		cfg := defaultPath()
		cfg.ClientSide.Jitter = netem.UniformJitter(10 * time.Millisecond)
		cfg.ServerSide.Loss = 0.01
		s := sim.New(99)
		s.MaxSteps = 5_000_000
		conn := NewConn(s, cfg, Config{}, nil, nil)
		conn.Server.Write(make([]byte, 100<<10))
		s.Run()
		return conn.Server.Stats.Retransmits, conn.Server.Stats.SegmentsSent
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", r1, s1, r2, s2)
	}
}
