// Package tcpsim implements a simplified TCP endpoint on the
// discrete-event simulator: MSS segmentation, cumulative ACKs,
// duplicate-ACK fast retransmit, retransmission timeouts with
// exponential backoff, slow-start/AIMD congestion control, and
// in-order delivery with receive-side reassembly.
//
// These are exactly the transport mechanisms the reproduced attack
// manipulates: jitter-induced reordering triggers dup-ACKs and
// spurious fast retransmits (Table I's retransmission column);
// bandwidth throttling shrinks the effective window via the
// congestion response (Figure 5); sustained targeted loss exhausts
// the retry budget and (one layer up) drives the HTTP/2 client to
// reset its streams (section IV-D).
//
// The data path is allocation-free in steady state: segments are
// emitted as pooled netem.Packets whose payload buffers are recycled,
// the send buffer is consumed by offset (no reslicing churn), and
// out-of-order receive segments are held in a pooled, sorted slice
// rather than a map (which also removes the per-drain key sort).
//
// Key types: Endpoint (one side's send/receive state machine, with
// retransmit and break callbacks) and Conn (a client/server Endpoint
// pair wired through a netem.Path).
package tcpsim

import (
	"errors"
	"time"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrConnectionBroken is reported via OnBreak when the retransmission
// retry budget is exhausted (the paper's "broken connection").
var ErrConnectionBroken = errors.New("tcpsim: connection broken: retransmission retries exhausted")

// Config tunes an endpoint. The zero value means defaults.
type Config struct {
	// MSS is the maximum segment payload size. Default 1460.
	MSS int

	// InitialCwnd is the initial congestion window in segments.
	// Default 10 (RFC 6928).
	InitialCwnd int

	// RTOInit is the initial retransmission timeout. Default 1s.
	RTOInit time.Duration

	// RTOMin floors the adaptive RTO. Default 200ms.
	RTOMin time.Duration

	// RTOMax caps the backed-off RTO. Default 60s.
	RTOMax time.Duration

	// MaxRetries is the number of consecutive RTO expiries tolerated
	// before the connection is declared broken. Default 6.
	MaxRetries int

	// DupAckThreshold triggers fast retransmit. Default 3.
	DupAckThreshold int
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.RTOInit == 0 {
		c.RTOInit = time.Second
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * time.Millisecond
	}
	if c.RTOMax == 0 {
		c.RTOMax = 60 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 6
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = 3
	}
	return c
}

// Stats counts transport events on one endpoint.
type Stats struct {
	SegmentsSent       int
	BytesSent          int64
	Retransmits        int // all retransmitted segments
	FastRetransmits    int
	TimeoutRetransmits int
	DupAcksSent        int
	DupAcksRecvd       int
	AcksSent           int
}

// heldSeg is one out-of-order inbound segment waiting for its gap to
// fill. The buf is an owned copy of the wire payload.
type heldSeg struct {
	seq uint32
	buf []byte
}

// sentStamp is one Karn RTT bookkeeping entry: the end sequence of a
// first-transmission segment and when it left.
type sentStamp struct {
	end uint32
	at  time.Duration
}

// Endpoint is one side of a simulated TCP connection. Not safe for
// concurrent use; it runs entirely on the simulator goroutine.
type Endpoint struct {
	name string
	s    *sim.Simulator
	cfg  Config
	out  func(*netem.Packet) // inject into the network
	app  func([]byte)        // ordered delivery upward
	pool *netem.PacketPool   // recycled transmit packets; nil => allocate

	// Send state. sendBuf[sendOff:] holds bytes [sndUna, sndUna+len).
	// Acked bytes advance sendOff instead of reslicing, so the backing
	// array is reused instead of drifting; Write compacts the buffer
	// before appending.
	sndUna, sndNxt uint32
	sendBuf        []byte
	sendOff        int
	cwnd           float64 // bytes
	ssthresh       float64
	dupAcks        int
	retries        int
	rtoTimer       *sim.Timer
	rto            time.Duration
	srtt, rttvar   time.Duration
	broken         bool

	// sentQ[sentOff:] records (end-seq, first-send time) per
	// first-transmission segment for Karn-filtered RTT sampling. sndNxt
	// only grows, so the queue is sorted in send order and cumulative
	// ACKs drain it from the front — replacing the end-seq map whose
	// per-ACK iteration sat on the hot path. Cleared wholesale on
	// retransmission (Karn: no samples from a retransmit window).
	sentQ   []sentStamp
	sentOff int

	// Receive state. held is kept sorted ascending by wrap-safe
	// distance (seq - rcvNxt); spare recycles hold buffers.
	rcvNxt uint32
	held   []heldSeg
	spare  [][]byte

	// OnBreak is called once when the connection breaks. May be nil.
	OnBreak func(error)

	// OnRetransmit, when non-nil, is called with the sequence range of
	// every retransmitted segment (fast retransmit or timeout). The
	// HTTP/2 client layer uses it to mirror the paper's observed
	// browser behaviour of re-issuing requests whose segments were
	// retransmitted.
	OnRetransmit func(seqStart, seqEnd uint32)

	// Stats accumulates counters.
	Stats Stats

	// Obs receives metric increments and flight events; the zero Sink
	// discards them.
	Obs obs.Sink

	pktID uint64
}

// New creates an endpoint. out injects packets toward the peer; app
// receives the ordered inbound byte stream (the slice is only valid
// for the duration of the callback). name labels diagnostics.
func New(s *sim.Simulator, cfg Config, name string, out func(*netem.Packet), app func([]byte)) *Endpoint {
	e := &Endpoint{
		name: name,
		s:    s,
		cfg:  cfg.withDefaults(),
		out:  out,
		app:  app,
	}
	e.cwnd = float64(e.cfg.InitialCwnd * e.cfg.MSS)
	e.ssthresh = 1 << 30
	e.rto = e.cfg.RTOInit
	e.rtoTimer = s.NewTimer(e.onRTO)
	return e
}

// SetPool attaches a packet pool that emit draws transmit packets
// from. The pool's owner (normally Conn's delivery handlers) releases
// packets after the receiving endpoint has processed them.
func (e *Endpoint) SetPool(pp *netem.PacketPool) { e.pool = pp }

// Reset returns the endpoint to the state New would produce with cfg,
// keeping the simulator wiring, pool, timer object, and every buffer's
// capacity (send buffer, held segments, spares, the RTT queue). The
// OnBreak and OnRetransmit callbacks are cleared, matching a freshly
// constructed endpoint; rewire them after Reset. Must be called after
// the owning simulator has been Reset, so the stale RTO timer
// generation cannot fire.
func (e *Endpoint) Reset(cfg Config) {
	e.cfg = cfg.withDefaults()
	e.sndUna, e.sndNxt = 0, 0
	e.sendBuf = e.sendBuf[:0]
	e.sendOff = 0
	e.cwnd = float64(e.cfg.InitialCwnd * e.cfg.MSS)
	e.ssthresh = 1 << 30
	e.dupAcks = 0
	e.retries = 0
	e.rtoTimer.Stop()
	e.rto = e.cfg.RTOInit
	e.srtt, e.rttvar = 0, 0
	e.sentQ = e.sentQ[:0]
	e.sentOff = 0
	e.broken = false
	e.rcvNxt = 0
	for i := range e.held {
		if buf := e.held[i].buf; buf != nil {
			e.spare = append(e.spare, buf[:0])
		}
		e.held[i] = heldSeg{}
	}
	e.held = e.held[:0]
	e.OnBreak = nil
	e.OnRetransmit = nil
	e.Stats = Stats{}
	e.Obs = obs.Sink{}
	e.pktID = 0
}

// MSS returns the configured segment size.
func (e *Endpoint) MSS() int { return e.cfg.MSS }

// Cwnd returns the current congestion window in bytes.
func (e *Endpoint) Cwnd() int { return int(e.cwnd) }

// Broken reports whether the connection has failed.
func (e *Endpoint) Broken() bool { return e.broken }

// Outstanding returns the number of sent-but-unacked bytes.
func (e *Endpoint) Outstanding() int { return int(e.sndNxt - e.sndUna) }

// BufferedSend returns bytes queued (sent or not) above sndUna.
func (e *Endpoint) BufferedSend() int { return len(e.sendBuf) - e.sendOff }

// Write queues b for transmission.
func (e *Endpoint) Write(b []byte) {
	if e.broken || len(b) == 0 {
		return
	}
	if e.sendOff > 0 {
		n := copy(e.sendBuf, e.sendBuf[e.sendOff:])
		e.sendBuf = e.sendBuf[:n]
		e.sendOff = 0
	}
	e.sendBuf = append(e.sendBuf, b...)
	e.trySend()
}

// trySend emits new segments within the congestion window.
func (e *Endpoint) trySend() {
	if e.broken {
		return
	}
	for {
		inFlight := int(e.sndNxt - e.sndUna)
		avail := len(e.sendBuf) - e.sendOff - inFlight
		if avail <= 0 {
			break
		}
		win := int(e.cwnd) - inFlight
		if win <= 0 {
			break
		}
		n := e.cfg.MSS
		if n > avail {
			n = avail
		}
		if n > win {
			// Send a short segment only if nothing is in flight
			// (avoid silly-window behaviour but never deadlock).
			if inFlight > 0 {
				break
			}
			n = win
		}
		off := e.sendOff + inFlight
		e.emit(e.sndNxt, e.sendBuf[off:off+n], false)
		e.sentQ = append(e.sentQ, sentStamp{end: e.sndNxt + uint32(n), at: e.s.Now()})
		e.sndNxt += uint32(n)
	}
	if e.Outstanding() > 0 && !e.rtoTimer.Armed() {
		e.rtoTimer.Reset(e.rto)
	}
}

// emit sends one segment (or pure ACK when payload is empty). The
// payload is copied into the packet's recycled buffer, so callers may
// pass send-buffer subslices directly.
func (e *Endpoint) emit(seq uint32, payload []byte, retransmit bool) {
	e.pktID++
	p := e.pool.Get()
	p.ID = e.pktID
	p.Seq = seq
	p.Ack = e.rcvNxt
	p.Payload = append(p.Payload[:0], payload...)
	p.Retransmit = retransmit
	p.SentAt = e.s.Now()
	if len(payload) > 0 {
		e.Stats.SegmentsSent++
		e.Stats.BytesSent += int64(len(payload))
		e.Obs.Inc(obs.CTCPSegSent)
		if retransmit {
			e.Stats.Retransmits++
			e.Obs.Inc(obs.CTCPRetransmit)
		}
	} else {
		e.Stats.AcksSent++
	}
	e.out(p)
}

// retransmitHead resends the segment starting at sndUna.
func (e *Endpoint) retransmitHead() {
	n := e.cfg.MSS
	if pending := len(e.sendBuf) - e.sendOff; n > pending {
		n = pending
	}
	if n == 0 {
		return
	}
	// Karn's algorithm: no RTT samples from a window containing a
	// retransmission — a cumulative ACK triggered by the retransmitted
	// head would otherwise be matched against the first-transmission
	// timestamp of a later segment, poisoning SRTT with the whole
	// stall duration.
	e.sentQ = e.sentQ[:0]
	e.sentOff = 0
	e.emit(e.sndUna, e.sendBuf[e.sendOff:e.sendOff+n], true)
	if e.OnRetransmit != nil {
		e.OnRetransmit(e.sndUna, e.sndUna+uint32(n))
	}
}

// onRTO handles a retransmission timeout.
func (e *Endpoint) onRTO() {
	if e.broken || e.Outstanding() == 0 {
		return
	}
	e.retries++
	if e.retries > e.cfg.MaxRetries {
		e.breakConn()
		return
	}
	e.Stats.TimeoutRetransmits++
	e.Obs.Inc(obs.CTCPTimeoutRetx)
	e.Obs.Event(e.s.Now(), obs.EvTCPTimeoutRetx, int64(e.sndUna), int64(e.retries))
	flight := float64(e.Outstanding())
	e.ssthresh = maxf(flight/2, float64(2*e.cfg.MSS))
	e.cwnd = float64(e.cfg.MSS)
	e.dupAcks = 0
	e.rto *= 2
	if e.rto > e.cfg.RTOMax {
		e.rto = e.cfg.RTOMax
	}
	e.retransmitHead()
	e.rtoTimer.Reset(e.rto)
}

func (e *Endpoint) breakConn() {
	if e.broken {
		return
	}
	e.broken = true
	e.rtoTimer.Stop()
	e.Obs.Inc(obs.CTCPBroken)
	e.Obs.Event(e.s.Now(), obs.EvTCPBroken, int64(e.sndUna), 0)
	if e.OnBreak != nil {
		e.OnBreak(ErrConnectionBroken)
	}
}

// HandlePacket ingests a packet from the network (wire it as the
// netem Path's delivery handler for this endpoint). The endpoint does
// not retain the packet or its payload past the call, so the caller
// may recycle it afterwards.
func (e *Endpoint) HandlePacket(p *netem.Packet) {
	if e.broken {
		return
	}
	e.handleAck(p.Ack, len(p.Payload) == 0)
	if len(p.Payload) > 0 {
		e.handleData(p.Seq, p.Payload)
	}
}

// handleAck processes the cumulative acknowledgement field. pureAck
// reports that the packet carried no payload: per RFC 5681 only such
// segments may count as duplicate ACKs.
func (e *Endpoint) handleAck(ack uint32, pureAck bool) {
	if seqLess(e.sndUna, ack) && seqLEQ(ack, e.sndNxt) {
		acked := ack - e.sndUna
		// Drain fully-acked entries from the RTT queue front (it is in
		// ascending end-seq order), sampling on an exact match — the
		// ACK for a whole segment's first transmission (Karn-filtered).
		for e.sentOff < len(e.sentQ) && seqLEQ(e.sentQ[e.sentOff].end, ack) {
			if e.sentQ[e.sentOff].end == ack {
				e.updateRTT(e.s.Now() - e.sentQ[e.sentOff].at)
			}
			e.sentOff++
		}
		if e.sentOff == len(e.sentQ) {
			e.sentQ = e.sentQ[:0]
			e.sentOff = 0
		} else if e.sentOff > 64 && e.sentOff*2 >= len(e.sentQ) {
			// Compact so the backing array stays bounded by the
			// in-flight window instead of sliding forever.
			n := copy(e.sentQ, e.sentQ[e.sentOff:])
			e.sentQ = e.sentQ[:n]
			e.sentOff = 0
		}
		e.sendOff += int(acked)
		if e.sendOff == len(e.sendBuf) {
			e.sendBuf = e.sendBuf[:0]
			e.sendOff = 0
		}
		e.sndUna = ack
		e.dupAcks = 0
		e.retries = 0
		// Forward progress ends any timeout backoff: recompute the RTO
		// from the smoothed estimators (RFC 6298 section 5.7) instead
		// of staying at the backed-off value, which would otherwise
		// make every later loss cost a full backed-off timeout.
		e.rto = e.clampRTO(e.computeRTO())
		// Congestion window growth.
		if e.cwnd < e.ssthresh {
			e.cwnd += float64(minInt(int(acked), e.cfg.MSS)) // slow start
		} else {
			e.cwnd += float64(e.cfg.MSS) * float64(e.cfg.MSS) / e.cwnd // AIMD
		}
		e.Obs.Observe(obs.HTCPCwnd, int64(e.cwnd))
		if e.Outstanding() == 0 {
			e.rtoTimer.Stop()
			e.rto = e.clampRTO(e.computeRTO())
		} else {
			e.rtoTimer.Reset(e.rto)
		}
		e.trySend()
		return
	}
	if pureAck && ack == e.sndUna && e.Outstanding() > 0 {
		e.dupAcks++
		e.Stats.DupAcksRecvd++
		e.Obs.Inc(obs.CTCPDupAckRecvd)
		if e.dupAcks == e.cfg.DupAckThreshold {
			// Fast retransmit + fast recovery entry.
			e.Stats.FastRetransmits++
			flight := float64(e.Outstanding())
			e.ssthresh = maxf(flight/2, float64(2*e.cfg.MSS))
			e.cwnd = e.ssthresh + float64(e.cfg.DupAckThreshold*e.cfg.MSS)
			e.Obs.Inc(obs.CTCPFastRetx)
			e.Obs.Event(e.s.Now(), obs.EvTCPFastRetx, int64(e.sndUna), int64(e.cwnd))
			e.retransmitHead()
			e.rtoTimer.Reset(e.rto)
		}
	}
}

// handleData processes inbound payload and acknowledges.
func (e *Endpoint) handleData(seq uint32, payload []byte) {
	switch {
	case seq == e.rcvNxt:
		e.deliver(payload)
		e.drainHeld()
		e.sendAck(false)
	case seqLess(e.rcvNxt, seq):
		// Out of order: hold and send a duplicate ACK.
		e.hold(seq, payload)
		e.Stats.DupAcksSent++
		e.sendAck(true)
	default:
		// Old or overlapping segment.
		end := seq + uint32(len(payload))
		if seqLess(e.rcvNxt, end) {
			e.deliver(payload[e.rcvNxt-seq:])
			e.drainHeld()
		}
		e.sendAck(false)
	}
}

func (e *Endpoint) deliver(b []byte) {
	e.rcvNxt += uint32(len(b))
	if e.app != nil {
		e.app(b)
	}
}

// hold files a future segment at its sorted position (ascending
// wrap-safe distance from rcvNxt), copying the payload into a
// recycled buffer. A duplicate of an already-held sequence is ignored
// (first copy wins, matching the original map behaviour).
func (e *Endpoint) hold(seq uint32, payload []byte) {
	d := seq - e.rcvNxt
	i := 0
	for i < len(e.held) && e.held[i].seq-e.rcvNxt < d {
		i++
	}
	if i < len(e.held) && e.held[i].seq == seq {
		return
	}
	buf := append(e.getSpare(), payload...)
	e.held = append(e.held, heldSeg{})
	copy(e.held[i+1:], e.held[i:])
	e.held[i] = heldSeg{seq: seq, buf: buf}
}

// drainHeld delivers held segments made contiguous by an advance of
// rcvNxt. The slice is sorted in stream order (distance from rcvNxt
// in sequence space, wrap-safe), so a front scan visits segments in
// the same deterministic order the map version achieved by sorting
// its keys per call — the sort is simply no longer needed.
func (e *Endpoint) drainHeld() {
	for len(e.held) > 0 {
		h := e.held[0]
		end := h.seq + uint32(len(h.buf))
		if seqLEQ(end, e.rcvNxt) {
			e.dropHead() // fully superseded duplicate
			continue
		}
		if seqLess(e.rcvNxt, h.seq) {
			return // gap remains
		}
		e.deliver(h.buf[e.rcvNxt-h.seq:])
		e.dropHead()
	}
}

// dropHead removes the first held segment, recycling its buffer.
func (e *Endpoint) dropHead() {
	buf := e.held[0].buf
	n := len(e.held)
	copy(e.held, e.held[1:])
	e.held[n-1] = heldSeg{}
	e.held = e.held[:n-1]
	if buf != nil {
		e.spare = append(e.spare, buf[:0])
	}
}

// getSpare returns a recycled zero-length hold buffer, or nil.
func (e *Endpoint) getSpare() []byte {
	if n := len(e.spare); n > 0 {
		b := e.spare[n-1]
		e.spare[n-1] = nil
		e.spare = e.spare[:n-1]
		return b
	}
	return nil
}

// sendAck emits a pure ACK; dup marks it as a duplicate for stats
// only (the wire format is identical).
func (e *Endpoint) sendAck(dup bool) {
	_ = dup
	e.emit(e.sndNxt, nil, false)
}

// updateRTT folds one sample into SRTT/RTTVAR (RFC 6298).
func (e *Endpoint) updateRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		diff := e.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + sample) / 8
	}
	e.rto = e.clampRTO(e.computeRTO())
}

func (e *Endpoint) computeRTO() time.Duration {
	if e.srtt == 0 {
		return e.cfg.RTOInit
	}
	return e.srtt + 4*e.rttvar
}

func (e *Endpoint) clampRTO(d time.Duration) time.Duration {
	if d < e.cfg.RTOMin {
		return e.cfg.RTOMin
	}
	if d > e.cfg.RTOMax {
		return e.cfg.RTOMax
	}
	return d
}

// SRTT returns the smoothed RTT estimate (zero before any sample).
func (e *Endpoint) SRTT() time.Duration { return e.srtt }

// RTO returns the current retransmission timeout.
func (e *Endpoint) RTO() time.Duration { return e.rto }

// BackoffRTO multiplies the RTO, modelling the client stack raising
// its timeout after an HTTP/2 stream reset on a lossy channel
// (paper section IV-D).
func (e *Endpoint) BackoffRTO(factor int) {
	if factor < 1 {
		return
	}
	e.rto = e.clampRTO(e.rto * time.Duration(factor))
}

func seqLess(a, b uint32) bool { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool  { return int32(a-b) <= 0 }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Conn couples two endpoints across a netem.Path.
type Conn struct {
	Client *Endpoint
	Server *Endpoint
	Path   *netem.Path
}

// NewConn builds a client and server endpoint joined by a path with
// the given ambient configuration. clientApp and serverApp receive
// each side's ordered inbound bytes. Both endpoints draw transmit
// packets from the path's pool, and the delivery handlers release
// each packet back to it once the endpoint has consumed it.
func NewConn(s *sim.Simulator, pathCfg netem.PathConfig, tcpCfg Config, clientApp, serverApp func([]byte)) *Conn {
	c := &Conn{}
	var path *netem.Path
	path = netem.NewPath(s, pathCfg,
		func(p *netem.Packet) {
			c.Client.HandlePacket(p)
			path.Pool.Put(p)
		},
		func(p *netem.Packet) {
			c.Server.HandlePacket(p)
			path.Pool.Put(p)
		},
	)
	c.Path = path
	c.Client = New(s, tcpCfg, "client", path.SendFromClient, clientApp)
	c.Server = New(s, tcpCfg, "server", path.SendFromServer, serverApp)
	c.Client.SetPool(path.Pool)
	c.Server.SetPool(path.Pool)
	return c
}

// Reset restores the path and both endpoints to their just-built
// configuration, reusing every allocation. Call after the simulator
// has been Reset (and after Path.ReclaimPending, if in-flight packets
// should return to the pool).
func (c *Conn) Reset(pathCfg netem.PathConfig, tcpCfg Config) {
	c.Path.Reset(pathCfg)
	c.Client.Reset(tcpCfg)
	c.Server.Reset(tcpCfg)
}

// SetObs points both endpoints' and the path's metric sinks at k.
// Call after Reset (which clears them).
func (c *Conn) SetObs(k obs.Sink) {
	c.Client.Obs = k
	c.Server.Obs = k
	c.Path.SetObs(k)
}

// Broken reports whether either side has declared the connection
// broken.
func (c *Conn) Broken() bool { return c.Client.Broken() || c.Server.Broken() }
