package trace

import (
	"testing"
	"time"
)

func TestDirectionHelpers(t *testing.T) {
	if ClientToServer.String() != "c->s" || ServerToClient.String() != "s->c" {
		t.Error("Direction.String broken")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction must render")
	}
	if ClientToServer.Reverse() != ServerToClient || ServerToClient.Reverse() != ClientToServer {
		t.Error("Reverse broken")
	}
}

func TestRecordObsIsAppData(t *testing.T) {
	if !(RecordObs{ContentType: 23}).IsAppData() {
		t.Error("content type 23 is app data")
	}
	if (RecordObs{ContentType: 22}).IsAppData() {
		t.Error("content type 22 is not app data")
	}
}

func TestTraceAccumulators(t *testing.T) {
	tr := &Trace{}
	tr.AddPacket(PacketObs{Time: time.Second, Dir: ClientToServer, PayloadLen: 10, Retransmit: true})
	tr.AddPacket(PacketObs{Time: 2 * time.Second, Dir: ClientToServer, PayloadLen: 20})
	tr.AddPacket(PacketObs{Time: 3 * time.Second, Dir: ServerToClient, PayloadLen: 30, Retransmit: true})
	tr.AddRecord(RecordObs{Dir: ServerToClient, ContentType: 23, Length: 100})
	tr.AddRecord(RecordObs{Dir: ServerToClient, ContentType: 21, Length: 2})
	tr.AddRecord(RecordObs{Dir: ClientToServer, ContentType: 23, Length: 50})
	tr.AddFrame(FrameEvent{ObjectID: 1, Len: 100})

	if len(tr.Packets) != 3 || len(tr.Records) != 3 || len(tr.Frames) != 1 {
		t.Fatalf("sizes: %d %d %d", len(tr.Packets), len(tr.Records), len(tr.Frames))
	}
	if tr.AppDataCount(ServerToClient) != 1 || tr.AppDataCount(ClientToServer) != 1 {
		t.Error("AppDataCount wrong")
	}
	if tr.RetransmitCount(ClientToServer) != 1 || tr.RetransmitCount(ServerToClient) != 1 {
		t.Error("RetransmitCount wrong")
	}
}
