package trace

import (
	"testing"
	"time"
)

func TestDirectionHelpers(t *testing.T) {
	if ClientToServer.String() != "c->s" || ServerToClient.String() != "s->c" {
		t.Error("Direction.String broken")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction must render")
	}
	if ClientToServer.Reverse() != ServerToClient || ServerToClient.Reverse() != ClientToServer {
		t.Error("Reverse broken")
	}
}

func TestRecordObsIsAppData(t *testing.T) {
	if !(RecordObs{ContentType: 23}).IsAppData() {
		t.Error("content type 23 is app data")
	}
	if (RecordObs{ContentType: 22}).IsAppData() {
		t.Error("content type 22 is not app data")
	}
}

func TestTraceAccumulators(t *testing.T) {
	tr := &Trace{}
	tr.AddPacket(PacketObs{Time: time.Second, Dir: ClientToServer, PayloadLen: 10, Retransmit: true})
	tr.AddPacket(PacketObs{Time: 2 * time.Second, Dir: ClientToServer, PayloadLen: 20})
	tr.AddPacket(PacketObs{Time: 3 * time.Second, Dir: ServerToClient, PayloadLen: 30, Retransmit: true})
	tr.AddRecord(RecordObs{Dir: ServerToClient, ContentType: 23, Length: 100})
	tr.AddRecord(RecordObs{Dir: ServerToClient, ContentType: 21, Length: 2})
	tr.AddRecord(RecordObs{Dir: ClientToServer, ContentType: 23, Length: 50})
	tr.AddFrame(FrameEvent{ObjectID: 1, Len: 100})

	if len(tr.Packets) != 3 || len(tr.Records) != 3 || len(tr.Frames) != 1 {
		t.Fatalf("sizes: %d %d %d", len(tr.Packets), len(tr.Records), len(tr.Frames))
	}
	if tr.AppDataCount(ServerToClient) != 1 || tr.AppDataCount(ClientToServer) != 1 {
		t.Error("AppDataCount wrong")
	}
	if tr.RetransmitCount(ClientToServer) != 1 || tr.RetransmitCount(ServerToClient) != 1 {
		t.Error("RetransmitCount wrong")
	}
}

func TestTraceCountsEmpty(t *testing.T) {
	tr := &Trace{}
	for _, dir := range []Direction{ClientToServer, ServerToClient} {
		if tr.AppDataCount(dir) != 0 {
			t.Errorf("AppDataCount(%v) on empty trace = %d", dir, tr.AppDataCount(dir))
		}
		if tr.RetransmitCount(dir) != 0 {
			t.Errorf("RetransmitCount(%v) on empty trace = %d", dir, tr.RetransmitCount(dir))
		}
	}
}

// TestTraceCountsFilterDirection pins the direction filter: records
// and packets of the opposite direction, and non-app-data records,
// must not leak into a direction's counts.
func TestTraceCountsFilterDirection(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 3; i++ {
		tr.AddRecord(RecordObs{Dir: ClientToServer, ContentType: 23})
		tr.AddRecord(RecordObs{Dir: ClientToServer, ContentType: 22}) // handshake: not app data
		tr.AddPacket(PacketObs{Dir: ServerToClient, Retransmit: true})
		tr.AddPacket(PacketObs{Dir: ServerToClient}) // original transmission
	}
	if got := tr.AppDataCount(ClientToServer); got != 3 {
		t.Errorf("AppDataCount(c->s) = %d, want 3", got)
	}
	if got := tr.AppDataCount(ServerToClient); got != 0 {
		t.Errorf("AppDataCount(s->c) = %d, want 0", got)
	}
	if got := tr.RetransmitCount(ServerToClient); got != 3 {
		t.Errorf("RetransmitCount(s->c) = %d, want 3", got)
	}
	if got := tr.RetransmitCount(ClientToServer); got != 0 {
		t.Errorf("RetransmitCount(c->s) = %d, want 0", got)
	}
}

// TestTraceResetKeepsCapacity pins the reuse contract: Reset empties
// the three streams but keeps their backing arrays, so a reused trace
// records allocation-free at its high-water mark.
func TestTraceResetKeepsCapacity(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 100; i++ {
		tr.AddPacket(PacketObs{Dir: ClientToServer})
		tr.AddRecord(RecordObs{Dir: ClientToServer, ContentType: 23})
		tr.AddFrame(FrameEvent{ObjectID: i})
	}
	cp, cr, cf := cap(tr.Packets), cap(tr.Records), cap(tr.Frames)
	tr.Reset()
	if len(tr.Packets) != 0 || len(tr.Records) != 0 || len(tr.Frames) != 0 {
		t.Fatal("Reset must empty all three streams")
	}
	if cap(tr.Packets) != cp || cap(tr.Records) != cr || cap(tr.Frames) != cf {
		t.Error("Reset must keep the backing arrays")
	}
	allocs := testing.AllocsPerRun(10, func() {
		tr.Reset()
		for i := 0; i < 100; i++ {
			tr.AddPacket(PacketObs{Dir: ClientToServer})
			tr.AddRecord(RecordObs{Dir: ClientToServer, ContentType: 23})
			tr.AddFrame(FrameEvent{ObjectID: i})
		}
	})
	if allocs != 0 {
		t.Errorf("reused trace allocates %.0f objects/run at its high-water mark, want 0", allocs)
	}
}
