// Package trace defines the observation records shared by the network
// simulation, the adversary, and the offline analysis: packets as seen
// on the wire at a vantage point, TLS records parsed from the byte
// stream, and ground-truth HTTP/2 frame events emitted by the
// instrumented endpoints.
//
// Key types: PacketObs and RecordObs (what the paper's gateway
// monitor captures, section V), FrameEvent (server-side ground truth
// the adversary never sees, used only for scoring, as in the paper's
// section VI evaluation), and Trace (a trial's full capture, exported
// by cmd/h2trace).
package trace

import (
	"fmt"
	"time"
)

// Direction is the side of the client-server path a packet travels.
// The enum starts at 1 so the zero value is invalid.
type Direction uint8

const (
	// ClientToServer carries requests.
	ClientToServer Direction = iota + 1
	// ServerToClient carries responses.
	ServerToClient
)

// String returns "c->s" or "s->c".
func (d Direction) String() string {
	switch d {
	case ClientToServer:
		return "c->s"
	case ServerToClient:
		return "s->c"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == ClientToServer {
		return ServerToClient
	}
	return ClientToServer
}

// PacketObs is one packet observed at a vantage point (the
// compromised middlebox). Payload is the TCP payload bytes — for an
// HTTPS connection these are TLS records, whose 5-byte headers are
// cleartext; everything inside is opaque.
type PacketObs struct {
	Time       time.Duration
	Dir        Direction
	Seq        uint32
	PayloadLen int
	WireLen    int
	Retransmit bool
}

// RecordObs is one TLS record reassembled from the observed TCP byte
// stream. Only the cleartext header fields are available to an
// observer.
type RecordObs struct {
	Time        time.Duration // time the record's last byte was observed
	Dir         Direction
	ContentType uint8
	Length      int // ciphertext length from the record header
}

// IsAppData reports whether the record carries application data
// (TLS content type 23 — the paper's
// 'ssl.record.content_type==23' display filter).
func (r RecordObs) IsAppData() bool { return r.ContentType == 23 }

// IsResponseData reports whether the record is server→client
// application data — the subset the size-inference side channel
// consumes. The monitor's batch filter and the streaming segmentation
// engine share this predicate so the two inference paths see exactly
// the same records.
func (r RecordObs) IsResponseData() bool {
	return r.Dir == ServerToClient && r.IsAppData()
}

// FrameEvent is ground truth recorded by the instrumented server: one
// HTTP/2 DATA (or HEADERS) frame handed to the transport, attributed
// to the object it belongs to. The adversary never sees these; the
// evaluation harness uses them to score multiplexing and prediction
// accuracy.
type FrameEvent struct {
	Time     time.Duration
	StreamID uint32

	// ObjectID identifies the website object served; copies created by
	// duplicate (retransmitted) requests share the ObjectID but have
	// distinct CopyID values.
	ObjectID int
	CopyID   int

	// Len is the frame payload length in bytes.
	Len int

	// Offset is the byte offset of this frame's first wire byte in
	// the server's outbound TCP stream; WireLen is the sealed record
	// size. Together they order ground truth exactly as the bytes
	// appear on the wire.
	Offset  int64
	WireLen int

	// End marks the final frame of this object copy.
	End bool
}

// Trace accumulates the three observation kinds for one trial.
type Trace struct {
	Packets []PacketObs
	Records []RecordObs
	Frames  []FrameEvent
}

// Reset empties all three observation streams, keeping their backing
// arrays so a reused trace records allocation-free once it has grown
// to a trial's high-water mark.
func (t *Trace) Reset() {
	t.Packets = t.Packets[:0]
	t.Records = t.Records[:0]
	t.Frames = t.Frames[:0]
}

// AddPacket appends a packet observation.
func (t *Trace) AddPacket(p PacketObs) { t.Packets = append(t.Packets, p) }

// AddRecord appends a TLS record observation.
func (t *Trace) AddRecord(r RecordObs) { t.Records = append(t.Records, r) }

// AddFrame appends a ground-truth frame event.
func (t *Trace) AddFrame(f FrameEvent) { t.Frames = append(t.Frames, f) }

// AppDataCount returns the number of application-data records seen in
// the given direction.
func (t *Trace) AppDataCount(dir Direction) int {
	n := 0
	for _, r := range t.Records {
		if r.Dir == dir && r.IsAppData() {
			n++
		}
	}
	return n
}

// RetransmitCount returns the number of packets flagged as
// transport-layer retransmissions in the given direction.
func (t *Trace) RetransmitCount(dir Direction) int {
	n := 0
	for _, p := range t.Packets {
		if p.Dir == dir && p.Retransmit {
			n++
		}
	}
	return n
}
