// Package analysis computes the evaluation metrics of the paper from
// ground-truth traces: the degree of multiplexing of each transmitted
// object copy (the fraction of its bytes interleaved with bytes of
// another transmission in the same TCP stream, the paper's section II
// definition), completeness, and the clean-copy success criteria used
// by Tables I/II and Figure 5.
//
// The central type is CopyTransmission — one transmission of one
// object copy reconstructed from ground-truth frame events — which
// CopyTransmissions builds from a trace and the Clean*/Degree helpers
// score, keyed by CopyKey (object, copy number).
package analysis

import (
	"sort"
	"time"

	"repro/internal/trace"
)

// CopyKey identifies one transmitted copy of an object (duplicates
// from re-requests get distinct CopyIDs).
type CopyKey struct {
	ObjectID int
	CopyID   int
}

// CopyTransmission summarizes one object copy's presence on the wire.
type CopyTransmission struct {
	Key      CopyKey
	StreamID uint32

	// Start and End bound the copy's DATA bytes in the server's TCP
	// stream (wire offsets).
	Start, End int64

	// Bytes is the payload transmitted; Complete reports whether the
	// final (END_STREAM) frame was sent.
	Bytes    int
	Complete bool

	// InterleavedBytes counts payload bytes that fell strictly inside
	// another copy's transmission span; Degree is the fraction.
	InterleavedBytes int
	Degree           float64

	// StartTime and EndTime are the enqueue times of the first and
	// last DATA frames.
	StartTime, EndTime time.Duration
}

// CopyTransmissions groups ground-truth frame events by copy and
// computes each copy's degree of multiplexing. Results are ordered by
// first wire byte. Every returned transmission is freshly allocated
// (the results outlive the trace they were computed from). Hot loops
// that score one trace per trial should keep an Analyzer instead and
// amortize the indexing scratch.
func CopyTransmissions(tr *trace.Trace) []*CopyTransmission {
	var a Analyzer
	return a.Copies(tr)
}

// Analyzer reconstructs copy transmissions with reused internal
// scratch (the copy index, the sorted wire-frame buffer, the sorters),
// so a trial world that scores one ground-truth trace per trial pays
// no per-trial indexing allocations once the scratch has grown to its
// high-water mark. An Analyzer is not safe for concurrent use; keep
// one per worker, like experiment.World.
//
// Copies allocates the returned transmissions fresh (safe to retain,
// the CopyTransmissions contract); CopiesReused returns arena-backed
// results valid only until the next call, for consumers that extract
// verdicts immediately.
type Analyzer struct {
	byKey map[CopyKey]int
	wire  []trace.FrameEvent
	arena []CopyTransmission
	order []*CopyTransmission

	wireSorter  wireByOffset
	orderSorter copiesByStart
}

// Copies is CopyTransmissions with amortized scratch: the returned
// transmissions (arena and pointer slice) are freshly allocated and
// safe to retain; only the analyzer's internal indexing state is
// reused between calls.
func (a *Analyzer) Copies(tr *trace.Trace) []*CopyTransmission {
	return a.analyze(tr, false)
}

// CopiesReused is the zero-steady-state-allocation variant: results
// live in the analyzer's own arena and are valid only until the next
// Copies/CopiesReused call. Byte-for-byte the same content as Copies.
func (a *Analyzer) CopiesReused(tr *trace.Trace) []*CopyTransmission {
	return a.analyze(tr, true)
}

func (a *Analyzer) analyze(tr *trace.Trace, reuse bool) []*CopyTransmission {
	// Pass 1: count the wire (Len>0) frames and the distinct copies,
	// so the arena and scratch below are sized exactly once.
	if a.byKey == nil {
		a.byKey = make(map[CopyKey]int)
	} else {
		clear(a.byKey)
	}
	byKey := a.byKey
	nWire := 0
	for i := range tr.Frames {
		f := &tr.Frames[i]
		if f.Len == 0 {
			continue // HEADERS marker
		}
		nWire++
		k := CopyKey{ObjectID: f.ObjectID, CopyID: f.CopyID}
		if _, ok := byKey[k]; !ok {
			byKey[k] = len(byKey)
		}
	}

	// Pass 2: fill a single arena of transmissions in place. The
	// returned pointers all point into this one allocation. Indices
	// were assigned in first-occurrence order, so while iterating the
	// frames in the same order, index inited is hit exactly when its
	// copy's first frame appears.
	var arena []CopyTransmission
	var order []*CopyTransmission
	if reuse {
		if cap(a.arena) < len(byKey) {
			a.arena = make([]CopyTransmission, len(byKey))
		} else {
			a.arena = a.arena[:len(byKey)]
			for i := range a.arena {
				a.arena[i] = CopyTransmission{}
			}
		}
		if cap(a.order) < len(byKey) {
			a.order = make([]*CopyTransmission, len(byKey))
		}
		a.order = a.order[:len(byKey)]
		arena, order = a.arena, a.order
	} else {
		arena = make([]CopyTransmission, len(byKey))
		order = make([]*CopyTransmission, len(byKey))
	}
	wire := a.wire[:0]
	if cap(wire) < nWire {
		wire = make([]trace.FrameEvent, 0, nWire)
	}
	inited := 0
	for _, f := range tr.Frames {
		if f.Len == 0 {
			continue
		}
		wire = append(wire, f)
		k := CopyKey{ObjectID: f.ObjectID, CopyID: f.CopyID}
		idx := byKey[k]
		ct := &arena[idx]
		if idx == inited {
			inited++
			ct.Key = k
			ct.StreamID = f.StreamID
			ct.Start = f.Offset
			ct.StartTime = f.Time
		}
		ct.Bytes += f.Len
		if end := f.Offset + int64(f.WireLen); end > ct.End {
			ct.End = end
		}
		if f.Time > ct.EndTime {
			ct.EndTime = f.Time
		}
		if f.End {
			ct.Complete = true
		}
	}
	a.wire = wire

	// Degree of multiplexing: a frame of copy X is interleaved when an
	// adjacent frame on the wire belongs to a different copy whose
	// transmission span overlaps X's. This matches what the size
	// side-channel needs: a delimiter-bounded record run is only
	// attributable to X when no concurrent transmission's records
	// border X's (sequentially adjacent transmissions do not count —
	// that is the normal delimited case of Figure 1). Wire offsets are
	// unique (each sealed record advances the stream), so the unstable
	// sort is deterministic.
	a.wireSorter.w = wire
	sort.Sort(&a.wireSorter)
	a.wireSorter.w = nil
	overlaps := func(a, b *CopyTransmission) bool {
		return a.Start < b.End && b.Start < a.End
	}
	foreignNeighbor := func(x *CopyTransmission, idx int) bool {
		f := wire[idx]
		k := CopyKey{ObjectID: f.ObjectID, CopyID: f.CopyID}
		if k == x.Key {
			return false
		}
		return overlaps(x, &arena[byKey[k]])
	}
	for i, f := range wire {
		x := &arena[byKey[CopyKey{ObjectID: f.ObjectID, CopyID: f.CopyID}]]
		if (i > 0 && foreignNeighbor(x, i-1)) || (i+1 < len(wire) && foreignNeighbor(x, i+1)) {
			x.InterleavedBytes += f.Len
		}
	}
	for i := range arena {
		x := &arena[i]
		if x.Bytes > 0 {
			x.Degree = float64(x.InterleavedBytes) / float64(x.Bytes)
		}
		order[i] = x
	}
	a.orderSorter.c = order
	sort.Sort(&a.orderSorter)
	a.orderSorter.c = nil
	return order
}

// wireByOffset sorts wire frames by stream byte offset without the
// sort.Slice reflection allocations (the analyzer stores one sorter
// and re-points it per call).
type wireByOffset struct{ w []trace.FrameEvent }

func (s *wireByOffset) Len() int           { return len(s.w) }
func (s *wireByOffset) Less(i, j int) bool { return s.w[i].Offset < s.w[j].Offset }
func (s *wireByOffset) Swap(i, j int)      { s.w[i], s.w[j] = s.w[j], s.w[i] }

// copiesByStart sorts transmissions by first wire byte, likewise
// allocation-free.
type copiesByStart struct{ c []*CopyTransmission }

func (s *copiesByStart) Len() int           { return len(s.c) }
func (s *copiesByStart) Less(i, j int) bool { return s.c[i].Start < s.c[j].Start }
func (s *copiesByStart) Swap(i, j int)      { s.c[i], s.c[j] = s.c[j], s.c[i] }

// CopiesOf filters transmissions of one object.
func CopiesOf(copies []*CopyTransmission, objectID int) []*CopyTransmission {
	var out []*CopyTransmission
	for _, c := range copies {
		if c.Key.ObjectID == objectID {
			out = append(out, c)
		}
	}
	return out
}

// CleanCopy reports whether some complete copy of the object was
// transmitted with zero multiplexing, and whether the original
// (first-requested) copy was. The distinction drives the paper's
// Figure 5 discussion: at high bandwidth many "successes" come from
// retransmitted copies rather than the original.
func CleanCopy(copies []*CopyTransmission, objectID int) (anyClean, originalClean bool) {
	for _, c := range CopiesOf(copies, objectID) {
		if !c.Complete || c.Degree != 0 {
			continue
		}
		anyClean = true
		if c.Key.CopyID == 0 {
			originalClean = true
		}
	}
	return anyClean, originalClean
}

// OriginalDegree returns the degree of multiplexing of the object's
// first transmitted copy, or -1 if it never hit the wire.
func OriginalDegree(copies []*CopyTransmission, objectID int) float64 {
	for _, c := range copies {
		if c.Key.ObjectID == objectID && c.Key.CopyID == 0 {
			return c.Degree
		}
	}
	return -1
}

// MeanDegree averages the degree of multiplexing over all complete
// copies of the object (used for the paper's "default degree of
// multiplexing ~98%" observation).
func MeanDegree(copies []*CopyTransmission, objectID int) float64 {
	var sum float64
	var n int
	for _, c := range CopiesOf(copies, objectID) {
		if !c.Complete {
			continue
		}
		sum += c.Degree
		n++
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// CopyCount returns the number of transmissions (original +
// duplicates) of the object that reached the wire.
func CopyCount(copies []*CopyTransmission, objectID int) int {
	return len(CopiesOf(copies, objectID))
}
