package analysis

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// mkFrame is a test helper for ground-truth events.
func mkFrame(obj, cp int, stream uint32, off int64, n int, at time.Duration, end bool) trace.FrameEvent {
	return trace.FrameEvent{
		Time: at, StreamID: stream, ObjectID: obj, CopyID: cp,
		Len: n, Offset: off, WireLen: n + 38, End: end,
	}
}

func TestSequentialTransmissionsNotMultiplexed(t *testing.T) {
	tr := &trace.Trace{}
	// Object 1 fully transmitted, then object 2 (Figure 1 case 1).
	tr.AddFrame(mkFrame(1, 0, 1, 0, 1400, 0, false))
	tr.AddFrame(mkFrame(1, 0, 1, 1438, 600, time.Millisecond, true))
	tr.AddFrame(mkFrame(2, 0, 3, 2076, 1400, 2*time.Millisecond, false))
	tr.AddFrame(mkFrame(2, 0, 3, 3514, 900, 3*time.Millisecond, true))
	copies := CopyTransmissions(tr)
	if len(copies) != 2 {
		t.Fatalf("got %d copies", len(copies))
	}
	for _, c := range copies {
		if c.Degree != 0 {
			t.Errorf("copy %+v degree = %v, want 0", c.Key, c.Degree)
		}
		if !c.Complete {
			t.Errorf("copy %+v not complete", c.Key)
		}
	}
	if copies[0].Bytes != 2000 || copies[1].Bytes != 2300 {
		t.Errorf("bytes = %d, %d", copies[0].Bytes, copies[1].Bytes)
	}
}

func TestInterleavedTransmissionsFullyMultiplexed(t *testing.T) {
	tr := &trace.Trace{}
	// O1Seg1 O2Seg1 O1Seg2 O2Seg2 (Figure 1 case 2).
	tr.AddFrame(mkFrame(1, 0, 1, 0, 1400, 0, false))
	tr.AddFrame(mkFrame(2, 0, 3, 1438, 1400, 1, false))
	tr.AddFrame(mkFrame(1, 0, 1, 2876, 600, 2, true))
	tr.AddFrame(mkFrame(2, 0, 3, 4314, 900, 3, true))
	copies := CopyTransmissions(tr)
	if d := OriginalDegree(copies, 1); d != 1 {
		t.Errorf("O1 degree = %v, want 1", d)
	}
	if d := OriginalDegree(copies, 2); d != 1 {
		t.Errorf("O2 degree = %v, want 1", d)
	}
}

func TestPartialInterleaving(t *testing.T) {
	tr := &trace.Trace{}
	// O1 has 4 frames; only the 3rd lies inside O2's span.
	tr.AddFrame(mkFrame(1, 0, 1, 0, 1000, 0, false))
	tr.AddFrame(mkFrame(1, 0, 1, 1038, 1000, 1, false))
	tr.AddFrame(mkFrame(2, 0, 3, 2076, 1000, 2, false))
	tr.AddFrame(mkFrame(1, 0, 1, 3114, 1000, 3, false))
	tr.AddFrame(mkFrame(2, 0, 3, 4152, 1000, 4, true))
	tr.AddFrame(mkFrame(1, 0, 1, 5190, 1000, 5, true))
	copies := CopyTransmissions(tr)
	// O1's first frame borders only its own successor: clean. The
	// other three border O2 frames while the spans overlap: 3/4.
	if d := OriginalDegree(copies, 1); d != 0.75 {
		t.Errorf("O1 degree = %v, want 0.75", d)
	}
	// Both O2 frames border O1 frames: fully interleaved.
	if d := OriginalDegree(copies, 2); d != 1 {
		t.Errorf("O2 degree = %v, want 1", d)
	}
}

func TestDuplicateCopiesInterfere(t *testing.T) {
	tr := &trace.Trace{}
	// Copy 0 and copy 1 of the same object interleave: both count as
	// "another object" for each other (paper: retransmitted objects
	// interleave with the object of interest).
	tr.AddFrame(mkFrame(7, 0, 1, 0, 1000, 0, false))
	tr.AddFrame(mkFrame(7, 1, 3, 1038, 1000, 1, false))
	tr.AddFrame(mkFrame(7, 0, 1, 2076, 1000, 2, true))
	tr.AddFrame(mkFrame(7, 1, 3, 3114, 1000, 3, true))
	copies := CopyTransmissions(tr)
	if len(copies) != 2 {
		t.Fatalf("copies = %d, want 2", len(copies))
	}
	anyClean, origClean := CleanCopy(copies, 7)
	if anyClean || origClean {
		t.Error("interleaved duplicates reported clean")
	}
	if CopyCount(copies, 7) != 2 {
		t.Error("copy count wrong")
	}
}

func TestCleanCopyViaDuplicate(t *testing.T) {
	tr := &trace.Trace{}
	// Original interleaved with object 9; a later duplicate is clean.
	tr.AddFrame(mkFrame(7, 0, 1, 0, 1000, 0, false))
	tr.AddFrame(mkFrame(9, 0, 5, 1038, 1000, 1, false))
	tr.AddFrame(mkFrame(7, 0, 1, 2076, 1000, 2, true))
	tr.AddFrame(mkFrame(9, 0, 5, 3114, 1000, 3, true))
	tr.AddFrame(mkFrame(7, 1, 7, 5000, 2000, 4, true))
	copies := CopyTransmissions(tr)
	anyClean, origClean := CleanCopy(copies, 7)
	if !anyClean {
		t.Error("clean duplicate not detected")
	}
	if origClean {
		t.Error("original wrongly reported clean")
	}
}

func TestIncompleteCopyNeverClean(t *testing.T) {
	tr := &trace.Trace{}
	tr.AddFrame(mkFrame(7, 0, 1, 0, 1000, 0, false)) // no End frame
	copies := CopyTransmissions(tr)
	anyClean, _ := CleanCopy(copies, 7)
	if anyClean {
		t.Error("incomplete copy reported clean")
	}
	if copies[0].Complete {
		t.Error("copy marked complete without End frame")
	}
}

func TestHeadersMarkersIgnored(t *testing.T) {
	tr := &trace.Trace{}
	tr.AddFrame(trace.FrameEvent{ObjectID: 7, CopyID: 0, Len: 0, Offset: 0, WireLen: 70})
	tr.AddFrame(mkFrame(7, 0, 1, 70, 1000, 1, true))
	copies := CopyTransmissions(tr)
	if len(copies) != 1 || copies[0].Bytes != 1000 {
		t.Errorf("copies = %+v", copies)
	}
	if copies[0].Start != 70 {
		t.Errorf("start = %d, want 70 (HEADERS record excluded)", copies[0].Start)
	}
}

func TestOriginalDegreeMissingObject(t *testing.T) {
	if d := OriginalDegree(nil, 42); d != -1 {
		t.Errorf("missing object degree = %v, want -1", d)
	}
	if d := MeanDegree(nil, 42); d != -1 {
		t.Errorf("missing object mean degree = %v, want -1", d)
	}
}

func TestMeanDegree(t *testing.T) {
	tr := &trace.Trace{}
	// Copy 0 clean, copy 1 fully interleaved with object 9.
	tr.AddFrame(mkFrame(7, 0, 1, 0, 1000, 0, true))
	tr.AddFrame(mkFrame(9, 0, 5, 2000, 1000, 1, false))
	tr.AddFrame(mkFrame(7, 1, 3, 3038, 1000, 2, true))
	tr.AddFrame(mkFrame(9, 0, 5, 4076, 1000, 3, true))
	copies := CopyTransmissions(tr)
	if m := MeanDegree(copies, 7); m != 0.5 {
		t.Errorf("mean degree = %v, want 0.5", m)
	}
}

func TestCopiesOrderedByWireOffset(t *testing.T) {
	tr := &trace.Trace{}
	tr.AddFrame(mkFrame(2, 0, 3, 5000, 100, 5, true))
	tr.AddFrame(mkFrame(1, 0, 1, 0, 100, 0, true))
	copies := CopyTransmissions(tr)
	if copies[0].Key.ObjectID != 1 || copies[1].Key.ObjectID != 2 {
		t.Errorf("copies not offset-ordered: %+v", copies)
	}
}

func TestTraceCounters(t *testing.T) {
	tr := &trace.Trace{}
	tr.AddPacket(trace.PacketObs{Dir: trace.ClientToServer, Retransmit: true})
	tr.AddPacket(trace.PacketObs{Dir: trace.ServerToClient})
	tr.AddRecord(trace.RecordObs{Dir: trace.ClientToServer, ContentType: 23})
	tr.AddRecord(trace.RecordObs{Dir: trace.ClientToServer, ContentType: 22})
	if tr.AppDataCount(trace.ClientToServer) != 1 {
		t.Error("AppDataCount wrong")
	}
	if tr.RetransmitCount(trace.ClientToServer) != 1 || tr.RetransmitCount(trace.ServerToClient) != 0 {
		t.Error("RetransmitCount wrong")
	}
}
