package analysis

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

// testConfig mirrors core.Predictor's protocol defaults.
func testConfig() SegmentConfig {
	return SegmentConfig{
		FullCipher:        1400 + 9 + 24,
		MinDataCipher:     120,
		PerRecordOverhead: 24 + 9,
		IdleGap:           600 * time.Millisecond,
	}
}

// referenceRuns is an independent transliteration of the post-hoc
// inference pass (core.Predictor.inferAppend minus the size-table
// match): the oracle the streaming engine must agree with.
func referenceRuns(cfg SegmentConfig, records []trace.RecordObs) []Run {
	var out []Run
	var runSize, runRecs int
	var start, lastSeen time.Duration
	for _, r := range records {
		if r.Dir != trace.ServerToClient || !r.IsAppData() {
			continue
		}
		if runRecs > 0 && cfg.IdleGap > 0 && r.Time-lastSeen > cfg.IdleGap {
			runSize, runRecs = 0, 0
		}
		lastSeen = r.Time
		if r.Length < cfg.MinDataCipher {
			runSize, runRecs = 0, 0
			continue
		}
		if runRecs == 0 {
			start = r.Time
		}
		payload := r.Length - cfg.PerRecordOverhead
		if payload < 0 {
			payload = 0
		}
		runSize += payload
		runRecs++
		if r.Length < cfg.FullCipher {
			out = append(out, Run{Size: runSize, Records: runRecs, Start: start, End: r.Time})
			runSize, runRecs = 0, 0
		}
	}
	return out
}

// feedAll pushes a record stream through a segmenter one observation
// at a time, collecting the completed runs — the streaming consumer.
func feedAll(g *Segmenter, cfg SegmentConfig, records []trace.RecordObs) []Run {
	g.Reset(cfg)
	var out []Run
	for _, r := range records {
		if run, ok := g.Feed(r); ok {
			out = append(out, run)
		}
	}
	return out
}

// randomStream generates an adversarially messy record stream: full
// and sub-full data records, control-size records, wrong-direction
// and non-appdata noise, idle gaps, boundary lengths.
func randomStream(rng *rand.Rand, n int) []trace.RecordObs {
	cfg := testConfig()
	recs := make([]trace.RecordObs, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		// Gaps span 0..1.3×IdleGap, so idle discards occur but do not
		// dominate.
		now += time.Duration(rng.Int63n(int64(cfg.IdleGap) * 13 / 10))
		r := trace.RecordObs{Time: now, Dir: trace.ServerToClient, ContentType: 23}
		switch rng.Intn(10) {
		case 0: // control-size record (HEADERS / SETTINGS)
			r.Length = 20 + rng.Intn(cfg.MinDataCipher-20)
		case 1: // client-direction noise
			r.Dir = trace.ClientToServer
			r.Length = 60 + rng.Intn(400)
		case 2: // handshake-type noise
			r.ContentType = 22
			r.Length = 100 + rng.Intn(2000)
		case 3: // boundary lengths around the thresholds
			edges := []int{cfg.MinDataCipher - 1, cfg.MinDataCipher, cfg.MinDataCipher + 1,
				cfg.PerRecordOverhead - 1, cfg.PerRecordOverhead,
				cfg.FullCipher - 1, cfg.FullCipher, cfg.FullCipher + 1}
			r.Length = edges[rng.Intn(len(edges))]
			if r.Length < 0 {
				r.Length = 0
			}
		case 4, 5: // delimiting sub-full data record
			r.Length = cfg.MinDataCipher + rng.Intn(cfg.FullCipher-cfg.MinDataCipher)
		default: // full-size data record
			r.Length = cfg.FullCipher
		}
		recs = append(recs, r)
	}
	return recs
}

func TestStreamingMatchesPostHoc(t *testing.T) {
	cfg := testConfig()
	var g Segmenter
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		recs := randomStream(rng, 50+rng.Intn(400))
		want := referenceRuns(cfg, recs)
		got := feedAll(&g, cfg, recs) // reused across seeds on purpose
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: streaming runs diverge from post-hoc\n got %+v\nwant %+v", seed, got, want)
		}
		batch := g.Segment(nil, cfg, recs)
		if !reflect.DeepEqual(batch, want) {
			t.Fatalf("seed %d: batch Segment diverges from post-hoc\n got %+v\nwant %+v", seed, batch, want)
		}
	}
}

func TestSegmenterFiltersNonResponseData(t *testing.T) {
	cfg := testConfig()
	var g Segmenter
	g.Reset(cfg)
	noise := []trace.RecordObs{
		{Time: 0, Dir: trace.ClientToServer, ContentType: 23, Length: cfg.FullCipher},
		{Time: 1, Dir: trace.ServerToClient, ContentType: 22, Length: cfg.FullCipher},
		{Time: 2, Dir: trace.ClientToServer, ContentType: 20, Length: 500},
	}
	for _, r := range noise {
		if _, ok := g.Feed(r); ok {
			t.Fatalf("non-response record %+v completed a run", r)
		}
	}
	// The noise must not have touched run state: a lone sub-full data
	// record now yields a single-record run.
	run, ok := g.Feed(trace.RecordObs{Time: 3, Dir: trace.ServerToClient, ContentType: 23, Length: 500})
	if !ok || run.Records != 1 || run.Size != 500-cfg.PerRecordOverhead {
		t.Fatalf("run = %+v ok = %v after noise", run, ok)
	}
}

func TestSegmenterControlRecordDiscardsOpenRun(t *testing.T) {
	cfg := testConfig()
	var g Segmenter
	g.Reset(cfg)
	resp := func(at time.Duration, length int) trace.RecordObs {
		return trace.RecordObs{Time: at, Dir: trace.ServerToClient, ContentType: 23, Length: length}
	}
	g.Feed(resp(0, cfg.FullCipher))
	if _, ok := g.Feed(resp(1, 60)); ok { // control-size record
		t.Fatal("control record completed a run")
	}
	run, ok := g.Feed(resp(2, 800))
	if !ok || run.Records != 1 {
		t.Fatalf("run after control discard = %+v ok=%v, want fresh 1-record run", run, ok)
	}
}

func TestSegmenterIdleGapDiscardsOpenRun(t *testing.T) {
	cfg := testConfig()
	var g Segmenter
	g.Reset(cfg)
	resp := func(at time.Duration, length int) trace.RecordObs {
		return trace.RecordObs{Time: at, Dir: trace.ServerToClient, ContentType: 23, Length: length}
	}
	g.Feed(resp(0, cfg.FullCipher))
	run, ok := g.Feed(resp(cfg.IdleGap+time.Millisecond, 800))
	if !ok {
		t.Fatal("delimiting record after idle gap did not complete a run")
	}
	if run.Records != 1 || run.Size != 800-cfg.PerRecordOverhead {
		t.Fatalf("run = %+v, want the stale full record discarded", run)
	}
}

func TestSegmenterResetDropsTrailingRun(t *testing.T) {
	cfg := testConfig()
	var g Segmenter
	g.Reset(cfg)
	g.Feed(trace.RecordObs{Time: 0, Dir: trace.ServerToClient, ContentType: 23, Length: cfg.FullCipher})
	g.Reset(cfg) // new trial: the unterminated run must not leak
	run, ok := g.Feed(trace.RecordObs{Time: 1, Dir: trace.ServerToClient, ContentType: 23, Length: 700})
	if !ok || run.Records != 1 || run.Size != 700-cfg.PerRecordOverhead {
		t.Fatalf("run after Reset = %+v ok=%v", run, ok)
	}
}

// randomTrace builds a ground-truth frame trace with duplicate copies,
// HEADERS markers and out-of-order wire offsets, for analyzer reuse
// testing.
func randomTrace(rng *rand.Rand) *trace.Trace {
	tr := &trace.Trace{}
	nObjects := 1 + rng.Intn(12)
	off := int64(0)
	now := time.Duration(0)
	type copyRef struct{ obj, cp int }
	var open []copyRef
	for o := 0; o < nObjects; o++ {
		copies := 1 + rng.Intn(3)
		for c := 0; c < copies; c++ {
			open = append(open, copyRef{obj: o + 1, cp: c})
		}
	}
	rng.Shuffle(len(open), func(i, j int) { open[i], open[j] = open[j], open[i] })
	for _, ref := range open {
		frames := 1 + rng.Intn(4)
		for f := 0; f < frames; f++ {
			if rng.Intn(8) == 0 {
				tr.AddFrame(trace.FrameEvent{ObjectID: ref.obj, CopyID: ref.cp, Len: 0, WireLen: 70, Time: now})
			}
			n := 100 + rng.Intn(1400)
			tr.AddFrame(trace.FrameEvent{
				Time: now, StreamID: uint32(2*ref.obj + 1), ObjectID: ref.obj, CopyID: ref.cp,
				Len: n, Offset: off, WireLen: n + 38, End: f == frames-1 && rng.Intn(4) > 0,
			})
			off += int64(n + 38)
			now += time.Duration(rng.Intn(3)) * time.Millisecond
		}
	}
	return tr
}

// deref flattens transmissions to values so pointer identity does not
// mask content differences (CopiesReused returns arena pointers).
func deref(copies []*CopyTransmission) []CopyTransmission {
	out := make([]CopyTransmission, len(copies))
	for i, c := range copies {
		out[i] = *c
	}
	return out
}

func TestAnalyzerMatchesCopyTransmissions(t *testing.T) {
	var reused Analyzer
	for seed := int64(1); seed <= 40; seed++ {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		want := deref(CopyTransmissions(tr))
		if got := deref(reused.Copies(tr)); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: reused Copies diverges\n got %+v\nwant %+v", seed, got, want)
		}
		if got := deref(reused.CopiesReused(tr)); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: CopiesReused diverges\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

func TestAnalyzerCopiesAreFresh(t *testing.T) {
	var a Analyzer
	tr1 := randomTrace(rand.New(rand.NewSource(7)))
	first := a.Copies(tr1)
	snapshot := deref(first)
	// Running more traces through the same analyzer must not mutate
	// previously returned Copies results (the retention contract).
	for seed := int64(8); seed <= 12; seed++ {
		a.Copies(randomTrace(rand.New(rand.NewSource(seed))))
		a.CopiesReused(randomTrace(rand.New(rand.NewSource(seed + 100))))
	}
	if !reflect.DeepEqual(deref(first), snapshot) {
		t.Fatal("Copies result mutated by later analyzer calls")
	}
}
