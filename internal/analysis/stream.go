package analysis

import (
	"time"

	"repro/internal/trace"
)

// This file is the streaming half of the package: an incremental
// run-segmentation engine over TLS record observations. The paper's
// adversary is an online observer — it watches records appear on the
// wire and carves the server→client stream into delimiter-bounded
// runs of full-size records (Figure 1's size-estimation procedure) as
// they happen, not from a stored capture. Segmenter is that engine:
// zero state allocation, one call per observed record, a completed
// run returned the moment its delimiting record arrives. The batch
// Segment helper replays a stored record slice through the same state
// machine, so post-hoc and streaming consumers provably agree.

// SegmentConfig is the protocol knowledge the segmentation engine
// needs. It mirrors the predictor's tuning fields (core.Predictor);
// the zero value is not useful — callers supply explicit values.
type SegmentConfig struct {
	// FullCipher is the ciphertext length of a full data record. A
	// data record shorter than this delimits (ends) the current run.
	FullCipher int

	// MinDataCipher separates control/HEADERS records from data
	// records: a response-direction record below it discards any open
	// run (the transfer was cut off without its delimiter).
	MinDataCipher int

	// PerRecordOverhead is subtracted from each record's ciphertext
	// length to recover the plaintext payload it carried (TLS record
	// overhead plus the HTTP/2 frame header).
	PerRecordOverhead int

	// IdleGap discards an open run when the stream goes quiet longer
	// than this. Zero disables the idle check.
	IdleGap time.Duration
}

// Run is one delimiter-bounded record run: consecutive full-size
// server→client data records terminated by a sub-full record. Size is
// the estimated plaintext byte count — the paper's size side channel.
type Run struct {
	// Size is the estimated object size in plaintext bytes.
	Size int

	// Records is the number of data records in the run.
	Records int

	// Start and End are the observation times of the run's first and
	// delimiting records.
	Start, End time.Duration
}

// Segmenter carves a stream of record observations into runs,
// incrementally. Feed it every observed record in arrival order; it
// filters to server→client application data itself, so callers can
// hand it the raw tap stream. The zero value is unusable — call Reset
// with a config first. A Segmenter holds a few integers of state and
// never allocates.
type Segmenter struct {
	cfg      SegmentConfig
	size     int
	recs     int
	start    time.Duration
	lastSeen time.Duration
}

// Reset rewinds the segmenter for a new stream, installing cfg.
func (g *Segmenter) Reset(cfg SegmentConfig) {
	g.cfg = cfg
	g.size, g.recs = 0, 0
	g.start, g.lastSeen = 0, 0
}

// Feed ingests one record observation. When the record delimits a run
// (a sub-full data record), the completed run is returned with
// ok=true; every other record returns ok=false. An unterminated run —
// cut off by a control-size record, an idle gap, or end of stream —
// is silently discarded, exactly as the post-hoc inference pass does:
// without its delimiter the size is not observable.
func (g *Segmenter) Feed(r trace.RecordObs) (run Run, ok bool) {
	if !r.IsResponseData() {
		return Run{}, false
	}
	if g.recs > 0 && g.cfg.IdleGap > 0 && r.Time-g.lastSeen > g.cfg.IdleGap {
		g.size, g.recs = 0, 0
	}
	g.lastSeen = r.Time
	if r.Length < g.cfg.MinDataCipher {
		// Control or HEADERS record: a new response is starting, so an
		// unterminated run was a cut-off transfer.
		g.size, g.recs = 0, 0
		return Run{}, false
	}
	if g.recs == 0 {
		g.start = r.Time
	}
	payload := r.Length - g.cfg.PerRecordOverhead
	if payload < 0 {
		payload = 0
	}
	g.size += payload
	g.recs++
	if r.Length < g.cfg.FullCipher {
		// Sub-full record: the delimiting packet that ends an object's
		// transmission.
		run = Run{Size: g.size, Records: g.recs, Start: g.start, End: r.Time}
		g.size, g.recs = 0, 0
		return run, true
	}
	return Run{}, false
}

// Segment replays a stored record slice through the state machine and
// appends every completed run to dst (which may be nil). The
// segmenter is Reset with cfg first, so the result is exactly what a
// streaming consumer would have accumulated from the same records.
func (g *Segmenter) Segment(dst []Run, cfg SegmentConfig, records []trace.RecordObs) []Run {
	g.Reset(cfg)
	for _, r := range records {
		if run, ok := g.Feed(r); ok {
			dst = append(dst, run)
		}
	}
	return dst
}
