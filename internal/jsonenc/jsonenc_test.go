package jsonenc

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestAppendStringMatchesJSON pins AppendString against json.Marshal
// over hand-picked escape cases and seeded random byte soup (valid and
// invalid UTF-8 alike).
func TestAppendStringMatchesJSON(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"tabs\tnewlines\ncarriage\rreturns",
		"\b\f\x00\x01\x1f",
		"html <b>&amp;</b> sensitive",
		"unicode: héllo wörld — ünïcode",
		"line sep   and para sep  ",
		" ",
		"invalid \xff utf8 \xc3\x28 tail \xe2\x80",
		"mixed \xffvalid <&>\t",
		strings.Repeat("a", 1000) + "\x02" + strings.Repeat(" ", 3),
	}
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 500; n++ {
		b := make([]byte, rng.Intn(64))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Fatalf("AppendString(%q):\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestAppendFloat64MatchesJSON pins the float formatting (ES6-style
// exponent cutoffs, unpadded single-digit negative exponents) against
// json.Marshal over edge cases and seeded random values.
func TestAppendFloat64MatchesJSON(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 100, 63.5,
		1e-6, 9.999999e-7, 1e-7, 1e21, 9.99e20, 1e22, -1e-9, -2.5e21,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		123456789.123456789, 0.1, 1.0 / 3.0,
	}
	rng := rand.New(rand.NewSource(2))
	for n := 0; n < 2000; n++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		cases = append(cases, f, f*1e-20, f*1e20, float64(rng.Int63n(1_000_000)))
	}
	for _, f := range cases {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		got, err := AppendFloat64(nil, f)
		if err != nil {
			t.Fatalf("AppendFloat64(%v): %v", f, err)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendFloat64(%v):\n got %s\nwant %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := AppendFloat64(nil, f); err == nil {
			t.Fatalf("AppendFloat64(%v): want error, got none", f)
		}
	}
}

// TestAppendScalars covers the trivial encoders.
func TestAppendScalars(t *testing.T) {
	if got := string(AppendInt(nil, -42)); got != "-42" {
		t.Fatalf("AppendInt: %s", got)
	}
	if got := string(AppendUint(nil, 18446744073709551615)); got != "18446744073709551615" {
		t.Fatalf("AppendUint: %s", got)
	}
	if got := string(AppendBool(AppendBool(nil, true), false)); got != "truefalse" {
		t.Fatalf("AppendBool: %s", got)
	}
}

// TestAppendStringZeroAlloc pins the steady-state allocation count:
// appending into a pre-grown buffer must not allocate.
func TestAppendStringZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 1024)
	const s = "a survey line with <html> & unicode   and \xff bytes"
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendString(buf[:0], s)
	})
	if allocs != 0 {
		t.Fatalf("AppendString allocates %.1f times per call, want 0", allocs)
	}
}
