// Package jsonenc holds the append-based JSON encoding primitives
// behind the export fast path. Every function appends the exact bytes
// encoding/json would produce for the same value (json.Marshal's
// default configuration: HTML escaping on, invalid UTF-8 repaired to
// the \ufffd escape, ES6-style float formatting) without reflection
// and without allocating beyond the destination buffer's growth.
//
// The byte-for-byte contract is load-bearing, not cosmetic: JSONL
// checkpoints record file offsets, shard merges concatenate slices,
// and resume tests cmp entire files — an encoder that drifted from
// json.Marshal by one byte would silently corrupt every one of those
// guarantees. The equivalence suites in this package and the
// consuming packages (internal/experiment, internal/obs) pin the
// contract against the reflection encoder under seeded random inputs.
package jsonenc

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// htmlSafeSet mirrors encoding/json's table: true for ASCII bytes
// that can appear verbatim inside a JSON string when HTML escaping is
// on (everything printable except '"', '\\', '<', '>', '&').
var htmlSafeSet = [utf8.RuneSelf]bool{}

func init() {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		switch b {
		case '"', '\\', '<', '>', '&':
		default:
			htmlSafeSet[b] = true
		}
	}
}

// AppendString appends s as a JSON string literal (including the
// surrounding quotes), byte-identical to json.Marshal(s): control
// characters and the HTML-sensitive set escaped, invalid UTF-8
// replaced with the \ufffd escape, U+2028/U+2029 escaped.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if htmlSafeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Bytes < 0x20 without a shorthand, plus <, > and &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			// Invalid UTF-8 becomes the six-byte escape text \ufffd,
			// exactly as encoding/json emits it.
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 break JSONP; encoding/json escapes them
		// unconditionally, so the equivalence contract requires it.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// AppendInt appends v in base 10.
func AppendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// AppendUint appends v in base 10.
func AppendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// AppendBool appends "true" or "false".
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// AppendFloat64 appends f formatted as json.Marshal formats a
// float64: shortest representation, fixed-point inside [1e-6, 1e21),
// exponent form outside it with single-digit negative exponents
// unpadded ("1e-7", not "1e-07"). NaN and infinities are unencodable
// in JSON and return an error, matching json.Marshal's
// UnsupportedValueError.
func AppendFloat64(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("jsonenc: unsupported value: %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	n := len(dst)
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, exactly as encoding/json does.
		if m := len(dst); m-n >= 4 && dst[m-4] == 'e' && dst[m-3] == '-' && dst[m-2] == '0' {
			dst[m-2] = dst[m-1]
			dst = dst[:m-1]
		}
	}
	return dst, nil
}
