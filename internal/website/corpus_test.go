package website

import (
	"reflect"
	"sync"
	"testing"
)

func TestCorpusDeterministicAnyOrder(t *testing.T) {
	cfg := CorpusConfig{Seed: 7, Sites: 40}
	forward := NewCorpus(cfg)
	backward := NewCorpus(cfg)

	want := make([]*GeneratedSite, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		want[i] = forward.Build(i)
	}
	for i := cfg.Sites - 1; i >= 0; i-- {
		got := backward.Build(i)
		if !reflect.DeepEqual(got.Spec, want[i].Spec) {
			t.Fatalf("site %d spec differs by build order:\ngot  %+v\nwant %+v", i, got.Spec, want[i].Spec)
		}
		if !sitesEqual(got.Site, want[i].Site) {
			t.Fatalf("site %d model differs by build order", i)
		}
	}
}

func TestCorpusDeterministicParallel(t *testing.T) {
	cfg := CorpusConfig{Seed: 99, Sites: 64}
	serial := NewCorpus(cfg)
	want := make([]*GeneratedSite, cfg.Sites)
	for i := range want {
		want[i] = serial.Build(i)
	}

	got := make([]*GeneratedSite, cfg.Sites)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewCorpus(cfg) // one handle per worker, as the pipeline does
			for i := w; i < cfg.Sites; i += 8 {
				got[i] = c.Build(i)
			}
		}(w)
	}
	wg.Wait()
	for i := range got {
		if !reflect.DeepEqual(got[i].Spec, want[i].Spec) || !sitesEqual(got[i].Site, want[i].Site) {
			t.Fatalf("site %d differs when built on 8 workers", i)
		}
	}
}

func sitesEqual(a, b *Site) bool {
	return a.Name == b.Name &&
		reflect.DeepEqual(a.Objects, b.Objects) &&
		reflect.DeepEqual(a.Schedule, b.Schedule)
}

func TestCorpusSiteInvariants(t *testing.T) {
	cfg := CorpusConfig{Seed: 3, Sites: 100}.Normalize()
	c := NewCorpus(cfg)
	shapes := map[string]int{}
	for i := 0; i < cfg.Sites; i++ {
		gs := c.Build(i)
		spec, site := gs.Spec, gs.Site
		if spec.Objects < cfg.MinObjects || spec.Objects > cfg.MaxObjects {
			t.Fatalf("site %d: %d objects outside [%d,%d]", i, spec.Objects, cfg.MinObjects, cfg.MaxObjects)
		}
		if len(site.Objects) != spec.Objects || len(site.Schedule) != spec.Objects {
			t.Fatalf("site %d: inventory/schedule size mismatch", i)
		}
		shapes[spec.Shape]++

		// IDs are 1..n in schedule order, so the target's schedule
		// position equals its ID.
		for j, o := range site.Objects {
			if o.ID != j+1 {
				t.Fatalf("site %d: object %d has ID %d", i, j, o.ID)
			}
			if o.Size < cfg.MinSize {
				t.Fatalf("site %d: object %d size %d below min", i, j, o.Size)
			}
		}
		for j, r := range site.Schedule {
			if r.ObjectID != j+1 {
				t.Fatalf("site %d: schedule entry %d requests %d", i, j, r.ObjectID)
			}
		}
		target, ok := site.Object(spec.TargetID)
		if !ok || target.Kind != KindHTML || target.Label != "target-html" || target.Size != spec.TargetSize {
			t.Fatalf("site %d: bad target object %+v (spec %+v)", i, target, spec)
		}
		if site.ScheduleIndex(spec.TargetID) != spec.TargetID {
			t.Fatalf("site %d: target schedule position != ID", i)
		}

		// Pairwise size separation keeps the size table unambiguous.
		for a := 0; a < len(site.Objects); a++ {
			for b := a + 1; b < len(site.Objects); b++ {
				d := site.Objects[a].Size - site.Objects[b].Size
				if d < 0 {
					d = -d
				}
				if d < cfg.MinSizeGap {
					t.Fatalf("site %d: sizes %d and %d closer than %d",
						i, site.Objects[a].Size, site.Objects[b].Size, cfg.MinSizeGap)
				}
			}
		}
	}
	for _, s := range AllShapes {
		if shapes[s.String()] == 0 {
			t.Fatalf("shape %s never drawn across 100 sites: %v", s, shapes)
		}
	}
}

func TestCorpusFingerprintReflectsConfig(t *testing.T) {
	a := CorpusConfig{Seed: 1, Sites: 10}.Fingerprint()
	b := CorpusConfig{Seed: 2, Sites: 10}.Fingerprint()
	c := CorpusConfig{Seed: 1, Sites: 11}.Fingerprint()
	if a == b || a == c {
		t.Fatalf("fingerprints must differ: %q %q %q", a, b, c)
	}
	if a != (CorpusConfig{Seed: 1, Sites: 10}.Fingerprint()) {
		t.Fatal("fingerprint not stable")
	}
}
