package website

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ScheduleShape classifies the request-timing profile of a synthetic
// site: how a browser paces the object requests after the page
// skeleton lands.
type ScheduleShape uint8

const (
	// ShapeBurst issues almost everything in sub-millisecond bursts
	// with occasional parser pauses — the asset waterfall of a
	// script-heavy page.
	ShapeBurst ScheduleShape = iota + 1

	// ShapePaced spreads requests 5–40 ms apart — sequential parsing
	// with little concurrency.
	ShapePaced

	// ShapeWaves groups requests into bursts of 4–8 separated by
	// 50–300 ms pauses — progressive rendering in stages.
	ShapeWaves
)

var shapeNames = map[ScheduleShape]string{
	ShapeBurst: "burst",
	ShapePaced: "paced",
	ShapeWaves: "waves",
}

// String returns a short shape name.
func (s ScheduleShape) String() string {
	if n, ok := shapeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("ScheduleShape(%d)", uint8(s))
}

// AllShapes lists every schedule shape, the default corpus mix.
var AllShapes = []ScheduleShape{ShapeBurst, ShapePaced, ShapeWaves}

// CorpusConfig parameterizes a synthetic site population. Every field
// has a usable default (see Normalize); the zero value plus a Sites
// count is a valid corpus.
type CorpusConfig struct {
	// Seed is the corpus master seed. Site i derives its own seed
	// from (Seed, i) with a splitmix64 step, so the population is
	// identical no matter which sites are built, in which order, on
	// how many workers.
	Seed uint64

	// Sites is the population size.
	Sites int

	// MinObjects/MaxObjects bound the per-site object count
	// (inclusive). Defaults 8 and 64.
	MinObjects int
	MaxObjects int

	// MinSize/MaxSize bound object body sizes in bytes; sizes are
	// drawn log-uniformly so small assets dominate, as in real
	// inventories. Defaults 300 and 150000.
	MinSize int
	MaxSize int

	// MinSizeGap is the minimum pairwise distance between object
	// sizes on one site. The default 48 keeps every site's size table
	// unambiguous under the predictor's ±32-byte record-matching
	// tolerance, so identification failures measure the attack, not
	// corpus degeneracy. Set it to 0..32 to deliberately generate
	// colliding inventories.
	MinSizeGap int

	// Shapes is the schedule-shape mix sites are drawn from.
	// Defaults to AllShapes.
	Shapes []ScheduleShape
}

// Normalize fills defaults and returns the effective configuration.
func (c CorpusConfig) Normalize() CorpusConfig {
	if c.MinObjects <= 0 {
		c.MinObjects = 8
	}
	if c.MaxObjects <= 0 {
		c.MaxObjects = 64
	}
	if c.MaxObjects < c.MinObjects {
		c.MaxObjects = c.MinObjects
	}
	if c.MinSize <= 0 {
		c.MinSize = 300
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 150000
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = c.MinSize
	}
	if c.MinSizeGap <= 0 {
		c.MinSizeGap = 48
	}
	if len(c.Shapes) == 0 {
		c.Shapes = AllShapes
	}
	return c
}

// Fingerprint is a stable one-line description of the full
// configuration, recorded in campaign checkpoints to refuse resuming
// under a different population.
func (c CorpusConfig) Fingerprint() string {
	c = c.Normalize()
	shapes := ""
	for i, s := range c.Shapes {
		if i > 0 {
			shapes += ","
		}
		shapes += s.String()
	}
	return fmt.Sprintf("corpus{seed=%d sites=%d objects=%d..%d size=%d..%d gap=%d shapes=%s}",
		c.Seed, c.Sites, c.MinObjects, c.MaxObjects, c.MinSize, c.MaxSize, c.MinSizeGap, shapes)
}

// SiteSpec summarizes one generated site — the fields a survey
// campaign wants alongside each trial result without re-building the
// site.
type SiteSpec struct {
	// Index is the site's position in the corpus.
	Index int `json:"site"`

	// Seed is the site's derived generation seed.
	Seed uint64 `json:"seed"`

	// Objects is the object count.
	Objects int `json:"objects"`

	// Shape is the schedule shape.
	Shape string `json:"shape"`

	// TargetID is the object ID of the attacked HTML document; it
	// equals its 1-based schedule position (IDs are assigned in
	// request order), so an attacker triggering on the N-th GET sets
	// TriggerGet = TargetID.
	TargetID int `json:"target_id"`

	// TargetSize is the target's body size in bytes.
	TargetSize int `json:"target_size"`

	// TotalBytes is the site's summed object size.
	TotalBytes int `json:"total_bytes"`
}

// GeneratedSite couples a built site model with its spec.
type GeneratedSite struct {
	*Site
	Spec SiteSpec
}

// Corpus is a deterministic synthetic site population. It holds no
// built sites — Build(i) derives site i from scratch every call, a
// pure function of (config, i) — so a million-site corpus costs
// nothing until sites are built, and per-worker caching is the
// caller's choice.
type Corpus struct {
	cfg CorpusConfig
}

// NewCorpus builds a corpus handle with defaults applied.
func NewCorpus(cfg CorpusConfig) *Corpus {
	return &Corpus{cfg: cfg.Normalize()}
}

// Config returns the effective (normalized) configuration.
func (c *Corpus) Config() CorpusConfig { return c.cfg }

// Len returns the population size.
func (c *Corpus) Len() int { return c.cfg.Sites }

// splitmix64 is the standard splitmix64 finalizer, mixing the corpus
// seed with a site index into an independent per-site seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SiteSeed returns site i's derived generation seed.
func (c *Corpus) SiteSeed(i int) uint64 {
	return splitmix64(c.cfg.Seed ^ splitmix64(uint64(i)+1))
}

// Build generates site i. The result is freshly allocated — callers
// running many trials against the same site should cache it keyed on
// the index (the survey worker state does).
func (c *Corpus) Build(i int) *GeneratedSite {
	cfg := c.cfg
	seed := c.SiteSeed(i)
	rng := rand.New(rand.NewSource(int64(seed)))

	nObjects := cfg.MinObjects + rng.Intn(cfg.MaxObjects-cfg.MinObjects+1)
	shape := cfg.Shapes[rng.Intn(len(cfg.Shapes))]

	// The attacked HTML document sits mid-schedule — late enough that
	// skeleton objects precede it (the attack throttles during them),
	// early enough that a tail of embedded objects follows.
	targetPos := 2 + rng.Intn(maxInt(1, nObjects-4)) // 0-based, in [2, nObjects-3]
	if targetPos > nObjects-2 {
		targetPos = nObjects - 2
	}
	if targetPos < 0 {
		targetPos = 0
	}

	// Draw object sizes log-uniformly, keeping every pair at least
	// MinSizeGap apart so the site's size table is as ambiguous as the
	// config asks for and no more.
	logMin, logMax := math.Log(float64(cfg.MinSize)), math.Log(float64(cfg.MaxSize))
	used := make(map[int]bool, nObjects)
	distinct := func(want int) int {
		for {
			ok := true
			for u := range used {
				d := want - u
				if d < 0 {
					d = -d
				}
				if d < cfg.MinSizeGap {
					ok = false
					break
				}
			}
			if ok {
				used[want] = true
				return want
			}
			want += cfg.MinSizeGap + 1
		}
	}
	drawSize := func() int {
		u := rng.Float64()
		return distinct(int(math.Round(math.Exp(logMin + u*(logMax-logMin)))))
	}

	site := &Site{Name: fmt.Sprintf("corpus-%d", i)}
	total := 0
	var targetSize int
	for j := 0; j < nObjects; j++ {
		id := j + 1
		size := drawSize()
		total += size
		kind := KindImage
		label := fmt.Sprintf("asset-%d", id)
		if j == targetPos {
			kind = KindHTML
			label = "target-html"
			targetSize = size
		} else {
			switch rng.Intn(5) {
			case 0:
				kind = KindScript
			case 1:
				kind = KindStyle
			case 2:
				kind = KindHTML
			}
		}
		site.Objects = append(site.Objects, Object{
			ID:    id,
			Path:  fmt.Sprintf("/corpus/%d/%s-%d", i, kind, id),
			Size:  size,
			Kind:  kind,
			Label: label,
		})
	}

	// Request schedule: IDs in order, gaps by shape, with a think-time
	// pause (parse/render, 150–600 ms) before the target document as
	// on the survey site.
	site.Schedule = make([]RequestSpec, 0, nObjects)
	wave := 0
	for j := 0; j < nObjects; j++ {
		var gap time.Duration
		switch {
		case j == 0:
			gap = 0
		case j == targetPos:
			gap = time.Duration(150+rng.Intn(451)) * time.Millisecond
		default:
			switch shape {
			case ShapePaced:
				gap = time.Duration(5+rng.Intn(36)) * time.Millisecond
			case ShapeWaves:
				if wave <= 0 {
					wave = 4 + rng.Intn(5)
					gap = time.Duration(50+rng.Intn(251)) * time.Millisecond
				} else {
					gap = time.Duration(100+rng.Intn(900)) * time.Microsecond
				}
				wave--
			default: // ShapeBurst
				if rng.Intn(7) == 0 {
					gap = time.Duration(5+rng.Intn(16)) * time.Millisecond
				} else {
					gap = time.Duration(100+rng.Intn(900)) * time.Microsecond
				}
			}
		}
		site.Schedule = append(site.Schedule, RequestSpec{ObjectID: j + 1, Gap: gap})
	}
	site.Finalize()

	return &GeneratedSite{
		Site: site,
		Spec: SiteSpec{
			Index:      i,
			Seed:       seed,
			Objects:    nObjects,
			Shape:      shape.String(),
			TargetID:   targetPos + 1,
			TargetSize: targetSize,
			TotalBytes: total,
		},
	}
}

// maxInt is a pre-generics helper kept local to the corpus.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
