// Package website models the content and client request behaviour of
// the target websites: object inventories (paths, sizes, kinds) and
// the schedule in which a browser requests them, including the
// isidewith.com-like survey site the paper attacks (result HTML of
// ~9500 bytes requested 6th, 47 embedded objects, and 8 party-emblem
// images of 5–16 KB requested in the survey-result order).
package website

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind classifies an object. The enum starts at 1 so the zero value
// is invalid.
type Kind uint8

const (
	KindHTML Kind = iota + 1
	KindScript
	KindStyle
	KindImage
	KindFont
)

var kindNames = map[Kind]string{
	KindHTML:   "html",
	KindScript: "js",
	KindStyle:  "css",
	KindImage:  "image",
	KindFont:   "font",
}

// String returns a short kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Object is one resource served by the site.
type Object struct {
	ID    int
	Path  string
	Size  int // plaintext body size in bytes
	Kind  Kind
	Label string // semantic identity, e.g. the party an emblem denotes
}

// RequestSpec is one entry of the client's request schedule.
type RequestSpec struct {
	ObjectID int

	// Gap is the interval between issuing the previous request and
	// this one (the paper's Table II inter-request times).
	Gap time.Duration
}

// Site is a website model: its objects and the default order a
// client requests them in.
type Site struct {
	Name     string
	Objects  []Object
	Schedule []RequestSpec

	// DisplayOrder is the survey outcome: DisplayOrder[i] is the party
	// displayed i-th on the result page. Under the canonical-order
	// defence this differs from the request order.
	DisplayOrder [PartyCount]int

	byPath map[string]int
}

// Finalize builds lookup indexes; call after constructing a Site by
// hand. Builders in this package return finalized sites.
func (s *Site) Finalize() {
	s.byPath = make(map[string]int, len(s.Objects))
	for i, o := range s.Objects {
		s.byPath[o.Path] = i
	}
}

// ObjectByPath returns the object served at path.
func (s *Site) ObjectByPath(path string) (Object, bool) {
	i, ok := s.byPath[path]
	if !ok {
		return Object{}, false
	}
	return s.Objects[i], true
}

// Object returns the object with the given ID.
func (s *Site) Object(id int) (Object, bool) {
	for _, o := range s.Objects {
		if o.ID == id {
			return o, true
		}
	}
	return Object{}, false
}

// SizeTable returns the size -> object mapping the paper's adversary
// precompiles ("a pre-compiled list of image size to political party
// mapping").
func (s *Site) SizeTable() map[int]Object {
	m := make(map[int]Object, len(s.Objects))
	for _, o := range s.Objects {
		m[o.Size] = o
	}
	return m
}

// ScheduleIndex returns the position (1-based) of the first request
// for objectID in the schedule, or 0 if absent.
func (s *Site) ScheduleIndex(objectID int) int {
	for i, r := range s.Schedule {
		if r.ObjectID == objectID {
			return i + 1
		}
	}
	return 0
}

// PartyCount is the number of political parties (emblem images) on
// the survey-result page.
const PartyCount = 8

// PartyLabels are the semantic identities of the emblem images.
var PartyLabels = [PartyCount]string{
	"party-A", "party-B", "party-C", "party-D",
	"party-E", "party-F", "party-G", "party-H",
}

// EmblemSizes are the unique image sizes (bytes), one per party,
// spanning the paper's 5–16 KB range. Every size leaves a healthy
// sub-chunk tail so the delimiting record is never mistaken for
// protocol chatter (the paper's "rarely equal to the MTU" caveat).
var EmblemSizes = [PartyCount]int{
	5243, 6781, 8012, 9318, 10842, 12207, 13956, 15580,
}

// ResultHTMLSize is the size of the survey-result HTML file the paper
// targets (~9500 bytes, the 6th object requested).
const ResultHTMLSize = 9500

// ResultHTMLID is the object ID of the result HTML.
const ResultHTMLID = 6

// EmblemID returns the object ID of the emblem for party p (0-based).
func EmblemID(p int) int { return 100 + p }

// msf converts fractional milliseconds to a Duration.
func msf(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Survey builds the isidewith.com-like site model. order is the
// survey outcome: order[i] is the party (0-based) whose emblem the
// client requests i-th; it is also the display order on the result
// page. The embedded-object inventory is fixed; only the image
// request order varies between trials.
//
// The request schedule follows the paper's measured inter-request
// gaps (Table II): the result HTML is the 6th request, preceded by a
// 500 ms gap and followed after 160 ms by further embedded objects;
// the 8 emblem images arrive near the end in one sub-millisecond
// burst triggered by a script.
func Survey(order [PartyCount]int) *Site {
	return SurveyCustom(order, SurveyOptions{})
}

// SurveyOptions tune per-trial client-side variation of the survey
// site and the paper's section VII defence proposals.
type SurveyOptions struct {
	// HTMLGap is the pause before the result-HTML request (browser
	// parse/render and user think time; it varies widely between
	// sessions). Zero means 250ms.
	HTMLGap time.Duration

	// CanonicalImageOrder is the paper's section VII ordering defence:
	// the client requests the emblem images in a fixed canonical order
	// (party 0..7) instead of the display order, so the request
	// sequence carries no information about the survey outcome. The
	// display order (the secret) is still recorded in DisplayOrder.
	CanonicalImageOrder bool

	// PadBucket, when nonzero, pads every object size up to the next
	// multiple of PadBucket bytes — the classic size-obfuscation
	// defence. Colliding padded sizes make the adversary's size table
	// ambiguous.
	PadBucket int
}

// SurveyCustom builds the survey site with explicit options.
func SurveyCustom(order [PartyCount]int, opts SurveyOptions) *Site {
	if opts.HTMLGap == 0 {
		opts.HTMLGap = 250 * time.Millisecond
	}
	site := &Site{Name: "isidewith-survey", DisplayOrder: order}

	// Embedded support objects. Sizes are a fixed, deterministic
	// inventory of small-to-moderate assets; all sizes keep a >=150
	// byte distance from every emblem size so the adversary's
	// size->identity table is unambiguous. 47 embedded objects + the
	// result HTML, as in the paper.
	rng := rand.New(rand.NewSource(20200622)) // fixed: the site itself does not vary
	used := make(map[int]bool)
	for _, s := range EmblemSizes {
		used[s] = true
	}
	used[ResultHTMLSize] = true
	distinct := func(want int) int {
		for {
			ok := true
			for u := range used {
				d := want - u
				if d < 0 {
					d = -d
				}
				if d < 150 {
					ok = false
					break
				}
			}
			if ok {
				used[want] = true
				return want
			}
			want += 151
		}
	}
	addObj := func(id int, kind Kind, size int, label string) {
		site.Objects = append(site.Objects, Object{
			ID:    id,
			Path:  fmt.Sprintf("/assets/%s-%d.%s", kind, id, kind),
			Size:  distinct(size),
			Kind:  kind,
			Label: label,
		})
	}

	// Objects 1..5: the page skeleton fetched just before the result
	// HTML. Moderate sizes: their transmissions chain into the HTML's
	// window when the connection is congested, but an adversary
	// spacing requests ~50ms apart serializes them (paper Fig. 2).
	addObj(1, KindHTML, 2800, "shell")
	addObj(2, KindStyle, 14200, "main-css")
	addObj(3, KindScript, 17800, "app-js")
	addObj(4, KindScript, 12600, "vendor-js")
	addObj(5, KindImage, 9900, "banner")

	// Object 6: the result HTML the paper targets.
	site.Objects = append(site.Objects, Object{
		ID:    ResultHTMLID,
		Path:  "/results/2020-presidential-quiz",
		Size:  ResultHTMLSize,
		Kind:  KindHTML,
		Label: "result-html",
	})

	// Objects 7..44: remaining embedded assets (38 of them), small to
	// moderate sizes.
	for id := 7; id <= 44; id++ {
		kind := KindImage
		switch id % 4 {
		case 0:
			kind = KindScript
		case 1:
			kind = KindStyle
		}
		addObj(id, kind, 1200+rng.Intn(11000), fmt.Sprintf("asset-%d", id))
	}

	// Objects 100..107: the 8 party emblems, unique sizes 5-16 KB.
	for p := 0; p < PartyCount; p++ {
		site.Objects = append(site.Objects, Object{
			ID:    EmblemID(p),
			Path:  fmt.Sprintf("/img/emblems/%s.png", PartyLabels[p]),
			Size:  EmblemSizes[p],
			Kind:  KindImage,
			Label: PartyLabels[p],
		})
	}

	// Request schedule. The image-burst gaps follow Table II; the gap
	// before the result HTML is a small parser pause (see
	// EXPERIMENTS.md for why the paper's 500 ms reading is modelled
	// this way), and the asset wave resumes 160 ms after the HTML.
	sched := []RequestSpec{
		{ObjectID: 1, Gap: 0},
		{ObjectID: 2, Gap: msf(8)},
		{ObjectID: 3, Gap: msf(1.5)},
		{ObjectID: 4, Gap: msf(0.8)},
		{ObjectID: 5, Gap: msf(6)},
		{ObjectID: ResultHTMLID, Gap: opts.HTMLGap},
	}
	// 160 ms after the HTML, the embedded-asset burst resumes.
	gap := 160.0
	for id := 7; id <= 44; id++ {
		sched = append(sched, RequestSpec{ObjectID: id, Gap: msf(gap)})
		// Bursty: most assets follow within a millisecond, with
		// occasional parser pauses.
		switch id % 7 {
		case 0:
			gap = 18
		case 3:
			gap = 5
		default:
			gap = 0.6
		}
	}
	// The script-triggered image burst (Table II gaps):
	// I1 arrives 780 ms after its predecessor, then
	// 0.4, 2, 0.3, 0.1, 0.3, 2, 0.5 ms between successive images.
	imageGaps := [PartyCount]float64{780, 0.4, 2, 0.3, 0.1, 0.3, 2, 0.5}
	reqOrder := order
	if opts.CanonicalImageOrder {
		reqOrder = IdentityPermutation()
	}
	for i, p := range reqOrder {
		sched = append(sched, RequestSpec{ObjectID: EmblemID(p), Gap: msf(imageGaps[i])})
	}
	// A trailing beacon request 26 ms after the last image (Table II).
	site.Objects = append(site.Objects, Object{
		ID: 45, Path: "/metrics/beacon", Size: 900, Kind: KindScript, Label: "beacon",
	})
	sched = append(sched, RequestSpec{ObjectID: 45, Gap: msf(26)})

	site.Schedule = sched
	if opts.PadBucket > 0 {
		for i := range site.Objects {
			site.Objects[i].Size = padTo(site.Objects[i].Size, opts.PadBucket)
		}
	}
	site.Finalize()
	return site
}

// SurveyBuilder caches one built survey site and applies the
// per-trial variation in place, so a reused trial world does not pay
// the full SurveyCustom construction (object inventory, paths, size
// de-collision) on every trial. Only three things vary between trials
// of the same sweep: the display order, the order the emblem images
// are requested in, and the think-time gap before the result HTML —
// all of which Build rewrites on the cached site. A change of
// PadBucket changes object sizes and forces a rebuild.
//
// The returned site is shared across Build calls: callers must treat
// it as valid only until the next Build.
type SurveyBuilder struct {
	site      *Site
	padBucket int
}

// Build returns the survey site for the given outcome and options,
// reusing the cached site when only per-trial fields changed. It is
// equivalent to SurveyCustom(order, opts) by construction.
func (b *SurveyBuilder) Build(order [PartyCount]int, opts SurveyOptions) *Site {
	if opts.HTMLGap == 0 {
		opts.HTMLGap = 250 * time.Millisecond
	}
	if b.site == nil || b.padBucket != opts.PadBucket {
		b.site = SurveyCustom(order, opts)
		b.padBucket = opts.PadBucket
		return b.site
	}
	site := b.site
	site.DisplayOrder = order
	sched := site.Schedule
	// Schedule layout (see SurveyCustom): the result HTML is entry 5,
	// the emblem burst occupies the 8 entries before the trailing
	// beacon.
	sched[5].Gap = opts.HTMLGap
	reqOrder := order
	if opts.CanonicalImageOrder {
		reqOrder = IdentityPermutation()
	}
	base := len(sched) - 1 - PartyCount
	for i, p := range reqOrder {
		sched[base+i].ObjectID = EmblemID(p)
	}
	return site
}

// padTo rounds n up to the next multiple of bucket.
func padTo(n, bucket int) int {
	if bucket <= 0 {
		return n
	}
	if rem := n % bucket; rem != 0 {
		n += bucket - rem
	}
	return n
}

// IdentityPermutation is the unpermuted survey outcome.
func IdentityPermutation() [PartyCount]int {
	var p [PartyCount]int
	for i := range p {
		p[i] = i
	}
	return p
}

// RandomPermutation draws a survey outcome from rng.
func RandomPermutation(rng *rand.Rand) [PartyCount]int {
	p := IdentityPermutation()
	rng.Shuffle(PartyCount, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// TwoObject builds the minimal two-object page used by the Figure 1
// passive-baseline demonstration.
func TwoObject(sizeA, sizeB int) *Site {
	s := &Site{
		Name: "two-object",
		Objects: []Object{
			{ID: 1, Path: "/o1", Size: sizeA, Kind: KindImage, Label: "O1"},
			{ID: 2, Path: "/o2", Size: sizeB, Kind: KindImage, Label: "O2"},
		},
		Schedule: []RequestSpec{
			{ObjectID: 1, Gap: 0},
			{ObjectID: 2, Gap: 200 * time.Microsecond},
		},
	}
	s.Finalize()
	return s
}
