package website

import (
	"math/rand"
	"testing"
	"time"
)

func TestSurveyStructureMatchesPaper(t *testing.T) {
	site := Survey(IdentityPermutation())

	// 5 skeleton objects + result HTML + 47 embedded objects
	// (38 assets + 8 emblems + beacon), as in the paper's page.
	if got := len(site.Objects); got != 5+1+47 {
		t.Errorf("object count = %d, want 53", got)
	}
	embedded := 0
	for _, o := range site.Objects {
		if o.ID >= 7 { // after the result HTML
			embedded++
		}
	}
	if embedded != 47 {
		t.Errorf("embedded object count = %d, want 47", embedded)
	}

	html, ok := site.Object(ResultHTMLID)
	if !ok {
		t.Fatal("result HTML missing")
	}
	if html.Size != ResultHTMLSize {
		t.Errorf("HTML size = %d, want %d", html.Size, ResultHTMLSize)
	}
	// The HTML is the 6th request (paper: "the object of interest is
	// the 6th object downloaded by the client").
	if idx := site.ScheduleIndex(ResultHTMLID); idx != 6 {
		t.Errorf("HTML schedule index = %d, want 6", idx)
	}

	// 8 emblem images, 5-16 KB, unique sizes.
	seen := map[int]bool{}
	for p := 0; p < PartyCount; p++ {
		o, ok := site.Object(EmblemID(p))
		if !ok {
			t.Fatalf("emblem %d missing", p)
		}
		if o.Size < 5000 || o.Size > 16000 {
			t.Errorf("emblem %d size %d outside 5-16KB", p, o.Size)
		}
		if seen[o.Size] {
			t.Errorf("duplicate emblem size %d", o.Size)
		}
		seen[o.Size] = true
	}
}

func TestSurveySizesUnambiguous(t *testing.T) {
	// Every pair of object sizes must differ by >= 64 bytes so the
	// predictor's size table has no collisions within tolerance.
	site := Survey(IdentityPermutation())
	for i, a := range site.Objects {
		for _, b := range site.Objects[i+1:] {
			d := a.Size - b.Size
			if d < 0 {
				d = -d
			}
			if d < 64 {
				t.Errorf("objects %d and %d sizes %d/%d differ by %d < 64",
					a.ID, b.ID, a.Size, b.Size, d)
			}
		}
	}
}

func TestSurveyScheduleGapsFollowTableII(t *testing.T) {
	site := Survey(IdentityPermutation())
	// Image burst gaps: 780, 0.4, 2, 0.3, 0.1, 0.3, 2, 0.5 ms.
	want := []time.Duration{
		msf(780), msf(0.4), msf(2), msf(0.3), msf(0.1), msf(0.3), msf(2), msf(0.5),
	}
	var gaps []time.Duration
	for _, spec := range site.Schedule {
		if spec.ObjectID >= EmblemID(0) && spec.ObjectID < EmblemID(PartyCount) {
			gaps = append(gaps, spec.Gap)
		}
	}
	if len(gaps) != PartyCount {
		t.Fatalf("found %d image requests, want %d", len(gaps), PartyCount)
	}
	for i := range gaps {
		if gaps[i] != want[i] {
			t.Errorf("image %d gap = %v, want %v", i+1, gaps[i], want[i])
		}
	}
}

func TestSurveyPermutationControlsImageOrder(t *testing.T) {
	perm := [PartyCount]int{3, 1, 4, 0, 5, 2, 7, 6}
	site := Survey(perm)
	pos := 0
	for _, spec := range site.Schedule {
		if spec.ObjectID >= EmblemID(0) && spec.ObjectID < EmblemID(PartyCount) {
			if want := EmblemID(perm[pos]); spec.ObjectID != want {
				t.Errorf("image position %d requests object %d, want %d", pos, spec.ObjectID, want)
			}
			pos++
		}
	}
}

func TestSurveyDeterministicInventory(t *testing.T) {
	a := Survey(IdentityPermutation())
	b := Survey([PartyCount]int{7, 6, 5, 4, 3, 2, 1, 0})
	if len(a.Objects) != len(b.Objects) {
		t.Fatal("object counts differ between permutations")
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Errorf("object %d differs across permutations: %+v vs %+v",
				i, a.Objects[i], b.Objects[i])
		}
	}
}

func TestSurveyCustomHTMLGap(t *testing.T) {
	site := SurveyCustom(IdentityPermutation(), SurveyOptions{HTMLGap: 123 * time.Millisecond})
	for _, spec := range site.Schedule {
		if spec.ObjectID == ResultHTMLID {
			if spec.Gap != 123*time.Millisecond {
				t.Errorf("HTML gap = %v, want 123ms", spec.Gap)
			}
			return
		}
	}
	t.Fatal("HTML not in schedule")
}

func TestLookupHelpers(t *testing.T) {
	site := Survey(IdentityPermutation())
	html, ok := site.ObjectByPath("/results/2020-presidential-quiz")
	if !ok || html.ID != ResultHTMLID {
		t.Errorf("ObjectByPath = %+v, %v", html, ok)
	}
	if _, ok := site.ObjectByPath("/nope"); ok {
		t.Error("unknown path resolved")
	}
	if _, ok := site.Object(99999); ok {
		t.Error("unknown id resolved")
	}
	tbl := site.SizeTable()
	if o, ok := tbl[ResultHTMLSize]; !ok || o.ID != ResultHTMLID {
		t.Error("size table misses the HTML")
	}
	if site.ScheduleIndex(-5) != 0 {
		t.Error("ScheduleIndex of absent object should be 0")
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		p := RandomPermutation(rng)
		var seen [PartyCount]bool
		for _, v := range p {
			if v < 0 || v >= PartyCount || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestTwoObjectSite(t *testing.T) {
	site := TwoObject(4000, 9000)
	if len(site.Objects) != 2 || len(site.Schedule) != 2 {
		t.Fatalf("site = %+v", site)
	}
	if o, ok := site.ObjectByPath("/o1"); !ok || o.Size != 4000 {
		t.Errorf("o1 = %+v, %v", o, ok)
	}
}

func TestKindString(t *testing.T) {
	if KindHTML.String() != "html" || KindImage.String() != "image" {
		t.Error("Kind.String broken")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestSurveyCanonicalOrderDefence(t *testing.T) {
	perm := [PartyCount]int{3, 1, 4, 0, 5, 2, 7, 6}
	site := SurveyCustom(perm, SurveyOptions{CanonicalImageOrder: true})
	if site.DisplayOrder != perm {
		t.Errorf("display order = %v, want %v", site.DisplayOrder, perm)
	}
	pos := 0
	for _, spec := range site.Schedule {
		if spec.ObjectID >= EmblemID(0) && spec.ObjectID < EmblemID(PartyCount) {
			if want := EmblemID(pos); spec.ObjectID != want {
				t.Errorf("canonical position %d requests %d, want %d", pos, spec.ObjectID, want)
			}
			pos++
		}
	}
}

func TestSurveyPadBucketDefence(t *testing.T) {
	site := SurveyCustom(IdentityPermutation(), SurveyOptions{PadBucket: 4096})
	for _, o := range site.Objects {
		if o.Size%4096 != 0 {
			t.Errorf("object %d size %d not padded to 4096", o.ID, o.Size)
		}
	}
	// Padding must create collisions (that is the defence).
	seen := map[int]int{}
	for _, o := range site.Objects {
		seen[o.Size]++
	}
	collided := false
	for _, n := range seen {
		if n > 1 {
			collided = true
		}
	}
	if !collided {
		t.Error("padding produced no size collisions")
	}
}

func TestPadTo(t *testing.T) {
	cases := []struct{ n, bucket, want int }{
		{1, 4096, 4096},
		{4096, 4096, 4096},
		{4097, 4096, 8192},
		{100, 0, 100},
	}
	for _, c := range cases {
		if got := padTo(c.n, c.bucket); got != c.want {
			t.Errorf("padTo(%d,%d) = %d, want %d", c.n, c.bucket, got, c.want)
		}
	}
}
