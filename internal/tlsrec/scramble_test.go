package tlsrec

import (
	"bytes"
	"math/rand"
	"testing"
)

// scrambleRef is the original byte-at-a-time transform, kept as the
// oracle for the word-at-a-time implementation.
func scrambleRef(dst, src []byte) {
	for i, b := range src {
		dst[i] = b ^ 0x5a
	}
}

// TestScrambleEquivalence checks the vectorized scramble against the
// reference loop across lengths that cover the word loop, the tail,
// and both at once — including the in-place (dst == src) aliasing that
// Seal uses.
func TestScrambleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1399, 1400, 16384}
	for _, n := range lengths {
		src := make([]byte, n)
		rng.Read(src)

		want := make([]byte, n)
		scrambleRef(want, src)

		got := make([]byte, n)
		scramble(got, src)
		if !bytes.Equal(got, want) {
			t.Errorf("len %d: distinct-buffer scramble diverges from reference", n)
		}

		inPlace := append([]byte(nil), src...)
		scramble(inPlace, inPlace)
		if !bytes.Equal(inPlace, want) {
			t.Errorf("len %d: in-place scramble diverges from reference", n)
		}

		// Involution: applying twice restores the plaintext.
		scramble(inPlace, inPlace)
		if !bytes.Equal(inPlace, src) {
			t.Errorf("len %d: scramble is not an involution", n)
		}
	}
}

// BenchmarkScramble measures the record-body transform at the server's
// per-record plaintext size.
func BenchmarkScramble(b *testing.B) {
	buf := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scramble(buf, buf)
	}
}
