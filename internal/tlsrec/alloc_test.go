package tlsrec

import (
	"testing"
)

// TestSealReuseZeroAlloc proves Seal into a recycled buffer is
// allocation-free once the buffer has its high-water capacity.
func TestSealReuseZeroAlloc(t *testing.T) {
	var s Sealer
	plain := make([]byte, 1400)
	buf := s.Seal(nil, TypeAppData, plain) // warm up
	allocs := testing.AllocsPerRun(200, func() {
		buf = s.Seal(buf[:0], TypeAppData, plain)
	})
	if allocs != 0 {
		t.Errorf("Seal reuse: %.1f allocs/op, want 0", allocs)
	}
}

// TestFeedReuseZeroAlloc proves the scratch-returning parse path is
// allocation-free in steady state.
func TestFeedReuseZeroAlloc(t *testing.T) {
	var s Sealer
	var o Opener
	wire := s.Seal(nil, TypeAppData, make([]byte, 1400))
	// Warm up scratch (records slice, plaintext arena, stream buffer).
	for i := 0; i < 8; i++ {
		if _, err := o.FeedReuse(wire); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		recs, err := o.FeedReuse(wire)
		if err != nil || len(recs) != 1 {
			t.Fatalf("recs=%d err=%v", len(recs), err)
		}
	})
	if allocs != 0 {
		t.Errorf("FeedReuse steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestFeedReuseSplitDelivery checks scratch parsing across records
// split at arbitrary chunk boundaries, including bodies handed out of
// the arena staying intact within one call.
func TestFeedReuseSplitDelivery(t *testing.T) {
	var s Sealer
	s.MaxPlain = 100
	var o Opener
	plain := make([]byte, 250)
	for i := range plain {
		plain[i] = byte(i)
	}
	wire := s.Seal(nil, TypeAppData, plain)
	var got []byte
	for i := 0; i < len(wire); i += 7 {
		end := i + 7
		if end > len(wire) {
			end = len(wire)
		}
		recs, err := o.FeedReuse(wire[i:end])
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			got = append(got, r.Body...)
		}
	}
	if o.Buffered() != 0 {
		t.Errorf("%d bytes left buffered", o.Buffered())
	}
	if string(got) != string(plain) {
		t.Errorf("round trip mismatch: %d bytes, want %d", len(got), len(plain))
	}
}

// TestStreamParserScratchZeroAlloc proves the passive header parser
// is allocation-free in steady state.
func TestStreamParserScratchZeroAlloc(t *testing.T) {
	var s Sealer
	var p StreamParser
	wire := s.Seal(nil, TypeAppData, make([]byte, 1400))
	for i := 0; i < 8; i++ {
		p.Feed(wire)
	}
	allocs := testing.AllocsPerRun(200, func() {
		hs := p.Feed(wire)
		if len(hs) != 1 {
			t.Fatalf("headers=%d", len(hs))
		}
	})
	if allocs != 0 {
		t.Errorf("StreamParser.Feed steady state: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkSealOpen measures one sealed+opened 1400-byte record on
// recycled buffers — the per-chunk TLS cost of the simulation.
func BenchmarkSealOpen(b *testing.B) {
	var s Sealer
	var o Opener
	plain := make([]byte, 1400)
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(1400)
	for i := 0; i < b.N; i++ {
		buf = s.Seal(buf[:0], TypeAppData, plain)
		if _, err := o.FeedReuse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
