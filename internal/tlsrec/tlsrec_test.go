package tlsrec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	var s Sealer
	var o Opener
	msg := []byte("GET /quiz HTTP/2")
	wire := s.Seal(nil, TypeAppData, msg)
	recs, err := o.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].ContentType != TypeAppData {
		t.Errorf("content type = %d", recs[0].ContentType)
	}
	if !bytes.Equal(recs[0].Body, msg) {
		t.Errorf("body = %q, want %q", recs[0].Body, msg)
	}
	if recs[0].CipherLen != len(msg)+Overhead {
		t.Errorf("cipher len = %d, want %d", recs[0].CipherLen, len(msg)+Overhead)
	}
}

func TestSealFragmentsLargePlaintext(t *testing.T) {
	s := Sealer{MaxPlain: 1000}
	var o Opener
	msg := bytes.Repeat([]byte("x"), 2500)
	wire := s.Seal(nil, TypeAppData, msg)
	if got, want := len(wire), s.SealedLen(len(msg)); got != want {
		t.Errorf("wire len = %d, SealedLen = %d", got, want)
	}
	recs, err := o.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	var all []byte
	for _, r := range recs {
		all = append(all, r.Body...)
	}
	if !bytes.Equal(all, msg) {
		t.Error("fragmented round trip corrupted data")
	}
	if len(recs[0].Body) != 1000 || len(recs[2].Body) != 500 {
		t.Errorf("fragment sizes = %d,%d,%d", len(recs[0].Body), len(recs[1].Body), len(recs[2].Body))
	}
}

func TestSealEmptyPlaintext(t *testing.T) {
	var s Sealer
	var o Opener
	wire := s.Seal(nil, TypeHandshake, nil)
	if len(wire) != HeaderLen+Overhead {
		t.Errorf("empty record wire len = %d, want %d", len(wire), HeaderLen+Overhead)
	}
	recs, err := o.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Body) != 0 {
		t.Errorf("recs = %+v", recs)
	}
}

func TestOpenerIncrementalFeed(t *testing.T) {
	var s Sealer
	var o Opener
	msg := []byte("drip drip drip")
	wire := s.Seal(nil, TypeAppData, msg)
	var got []Record
	for _, b := range wire { // one byte at a time
		recs, err := o.Feed([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Body, msg) {
		t.Errorf("incremental feed got %+v", got)
	}
	if o.Buffered() != 0 {
		t.Errorf("buffered = %d after complete record", o.Buffered())
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	var s Sealer
	msg := []byte("sensitive survey result")
	wire := s.Seal(nil, TypeAppData, msg)
	if bytes.Contains(wire, msg) {
		t.Error("plaintext visible on the wire")
	}
}

func TestStreamParserSeesHeadersOnly(t *testing.T) {
	var s Sealer
	var p StreamParser
	wire := s.Seal(nil, TypeHandshake, make([]byte, 100))
	wire = s.Seal(wire, TypeAppData, make([]byte, 700))
	var hdrs []HeaderInfo
	// Feed in uneven chunks crossing record boundaries.
	for len(wire) > 0 {
		n := 37
		if n > len(wire) {
			n = len(wire)
		}
		hdrs = append(hdrs, p.Feed(wire[:n])...)
		wire = wire[n:]
	}
	if len(hdrs) != 2 {
		t.Fatalf("parsed %d headers, want 2", len(hdrs))
	}
	if hdrs[0].ContentType != TypeHandshake || hdrs[0].Length != 100+Overhead {
		t.Errorf("first header = %+v", hdrs[0])
	}
	if hdrs[1].ContentType != TypeAppData || hdrs[1].Length != 700+Overhead {
		t.Errorf("second header = %+v", hdrs[1])
	}
}

func TestOpenerRejectsOversizedRecord(t *testing.T) {
	var o Opener
	bad := []byte{TypeAppData, 3, 3, 0xff, 0xff} // 65535-byte body
	if _, err := o.Feed(bad); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestOpenerRejectsUndersizedRecord(t *testing.T) {
	var o Opener
	bad := []byte{TypeAppData, 3, 3, 0, 1, 0} // 1-byte body < Overhead
	if _, err := o.Feed(bad); err == nil {
		t.Error("undersized record accepted")
	}
}

func TestSealedLenMatchesSealQuick(t *testing.T) {
	f := func(n uint16, maxPlain uint16) bool {
		s := Sealer{MaxPlain: int(maxPlain)}
		wire := s.Seal(nil, TypeAppData, make([]byte, int(n)))
		return len(wire) == s.SealedLen(int(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSealOpenQuick(t *testing.T) {
	f := func(data []byte, maxPlain uint16) bool {
		s := Sealer{MaxPlain: int(maxPlain%4096) + 1}
		var o Opener
		wire := s.Seal(nil, TypeAppData, data)
		recs, err := o.Feed(wire)
		if err != nil {
			return false
		}
		var all []byte
		for _, r := range recs {
			all = append(all, r.Body...)
		}
		return bytes.Equal(all, data) && o.Buffered() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
