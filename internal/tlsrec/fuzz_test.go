package tlsrec

import (
	"bytes"
	"testing"
)

// FuzzOpener ensures arbitrary streams never panic the record parser
// and chunking invariance holds.
func FuzzOpener(f *testing.F) {
	var s Sealer
	f.Add(s.Seal(nil, TypeAppData, []byte("hello")), 1)
	f.Add([]byte{23, 3, 3, 255, 255}, 2)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		var whole Opener
		wr, werr := whole.Feed(data)

		var piecewise Opener
		var pr []Record
		var perr error
		for off := 0; off < len(data) && perr == nil; off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			var got []Record
			got, perr = piecewise.Feed(data[off:end])
			pr = append(pr, got...)
		}
		if (werr == nil) != (perr == nil) {
			t.Fatalf("error mismatch: %v vs %v", werr, perr)
		}
		if werr == nil && len(wr) != len(pr) {
			t.Fatalf("record count mismatch: %d vs %d", len(wr), len(pr))
		}
		for i := range pr {
			if werr == nil && !bytes.Equal(wr[i].Body, pr[i].Body) {
				t.Fatal("body mismatch under chunking")
			}
		}
	})
}
