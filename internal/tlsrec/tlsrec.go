// Package tlsrec simulates the TLS record layer with size-preserving
// opacity: plaintext is framed into records with the standard 5-byte
// cleartext header (content type, version, length) and a fixed
// per-record ciphertext expansion, and the body is lightly scrambled
// so nothing downstream can accidentally depend on payload content.
//
// This preserves exactly the observables a passive adversary has
// against real TLS — record boundaries, content types, ciphertext
// lengths, direction, and timing — which is all the reproduced attack
// uses (the paper's section II primer and its tshark-based monitor,
// section V). (See DESIGN.md, substitutions table.)
//
// The record path is built for the simulation hot loop: Seal appends
// into a caller-recycled buffer, Opener.FeedReuse and
// StreamParser.Feed return scratch storage reused across calls, and
// both parsers consume their buffers by offset with compaction rather
// than reslicing.
//
// Key types: Sealer and Opener (the endpoint halves), Record,
// HeaderInfo (what a sniffer reads from the 5 cleartext header
// bytes), and StreamParser (incremental header extraction from a
// reassembled byte stream, used by core.Monitor).
package tlsrec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TLS record constants.
const (
	// HeaderLen is the cleartext record header size.
	HeaderLen = 5

	// Overhead is the per-record ciphertext expansion (8-byte explicit
	// nonce + 16-byte AEAD tag, as in TLS 1.2 AES-GCM).
	Overhead = 24

	// MaxPlaintext is the largest plaintext fragment per record
	// (RFC 5246 section 6.2.1).
	MaxPlaintext = 16384

	// Version is the wire version written into record headers
	// (TLS 1.2 = 0x0303).
	Version = 0x0303
)

// Content types.
const (
	TypeChangeCipherSpec uint8 = 20
	TypeAlert            uint8 = 21
	TypeHandshake        uint8 = 22
	TypeAppData          uint8 = 23
)

// ErrRecordTooLarge is returned when a record header declares a body
// larger than MaxPlaintext+Overhead.
var ErrRecordTooLarge = errors.New("tlsrec: record exceeds maximum size")

// zeros backs the nonce and tag placeholders so Seal does not
// allocate them per record.
var zeros [Overhead]byte

// scramblePattern is the involution key 0x5a replicated across a
// 64-bit word for the vectorized path.
const scramblePattern = 0x5a5a5a5a5a5a5a5a

// scramble applies a fixed involutive byte transform so "ciphertext"
// differs from plaintext while Seal/Open stay inverses without key
// state. It XORs eight bytes per iteration (the byte-at-a-time loop
// was a measurable slice of whole-trial CPU) with a byte-wise tail,
// and is safe when dst and src alias exactly (Seal scrambles in
// place). TestScrambleEquivalence pins it against the reference loop.
func scramble(dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(src[i:])^scramblePattern)
	}
	for i := n; i < len(src); i++ {
		dst[i] = src[i] ^ 0x5a
	}
}

// Sealer frames plaintext into encrypted records.
type Sealer struct {
	// MaxPlain caps the plaintext per record; zero means MaxPlaintext.
	// Real stacks often use smaller fragments; the simulation's server
	// uses the TCP MSS so record boundaries align with segments.
	MaxPlain int
}

func (s *Sealer) maxPlain() int {
	if s.MaxPlain <= 0 || s.MaxPlain > MaxPlaintext {
		return MaxPlaintext
	}
	return s.MaxPlain
}

// SealedLen returns the total wire size Seal produces for n plaintext
// bytes.
func (s *Sealer) SealedLen(n int) int {
	mp := s.maxPlain()
	if n == 0 {
		return HeaderLen + Overhead
	}
	full := n / mp
	rem := n % mp
	total := full * (HeaderLen + Overhead + mp)
	if rem > 0 {
		total += HeaderLen + Overhead + rem
	}
	return total
}

// Seal appends the record encoding of plaintext (split into fragments
// of at most MaxPlain) to dst and returns the extended slice. An empty
// plaintext produces a single empty record. Passing a recycled
// dst[:0] makes Seal allocation-free once the buffer has reached its
// high-water capacity.
func (s *Sealer) Seal(dst []byte, contentType uint8, plaintext []byte) []byte {
	mp := s.maxPlain()
	first := true
	for first || len(plaintext) > 0 {
		frag := plaintext
		if len(frag) > mp {
			frag = frag[:mp]
		}
		plaintext = plaintext[len(frag):]
		bodyLen := len(frag) + Overhead
		dst = append(dst, contentType, byte(Version>>8), byte(Version&0xff))
		dst = binary.BigEndian.AppendUint16(dst, uint16(bodyLen))
		// Explicit nonce placeholder.
		dst = append(dst, zeros[:8]...)
		off := len(dst)
		dst = append(dst, frag...)
		scramble(dst[off:], dst[off:])
		// AEAD tag placeholder.
		dst = append(dst, zeros[:16]...)
		first = false
	}
	return dst
}

// Record is one parsed record.
type Record struct {
	ContentType uint8
	// Body is the decrypted plaintext (Opener) or nil (StreamParser).
	Body []byte
	// CipherLen is the body length on the wire (including Overhead).
	CipherLen int
}

// Opener incrementally parses and decrypts a record stream. Feed
// arbitrary byte chunks; complete records come out.
type Opener struct {
	buf  []byte
	off  int      // parse position within buf
	recs []Record // FeedReuse scratch
	body []byte   // FeedReuse plaintext arena
}

// Feed appends stream bytes and returns all newly complete records.
// The returned records own their memory and stay valid indefinitely;
// the allocation-free variant is FeedReuse.
func (o *Opener) Feed(b []byte) ([]Record, error) {
	return o.feed(b, false)
}

// FeedReuse is Feed with recycled storage: the returned slice and the
// record bodies it points into are scratch owned by the Opener, valid
// only until the next Feed/FeedReuse call. In steady state it
// allocates nothing.
func (o *Opener) FeedReuse(b []byte) ([]Record, error) {
	return o.feed(b, true)
}

func (o *Opener) feed(b []byte, reuse bool) ([]Record, error) {
	if o.off > 0 {
		// Compact the consumed prefix (at most one partial record plus
		// whatever arrived mid-parse) so the buffer is reused instead
		// of growing behind an advancing offset.
		n := copy(o.buf, o.buf[o.off:])
		o.buf = o.buf[:n]
		o.off = 0
	}
	o.buf = append(o.buf, b...)
	var out []Record
	var arena []byte
	if reuse {
		out = o.recs[:0]
		// Size the plaintext arena for every complete buffered record
		// before parsing: growing it mid-loop would reallocate and
		// dangle the Body slices already handed out.
		need := 0
		for off := 0; len(o.buf)-off >= HeaderLen; {
			bodyLen := int(binary.BigEndian.Uint16(o.buf[off+3 : off+5]))
			if bodyLen > MaxPlaintext+Overhead || bodyLen < Overhead ||
				len(o.buf)-off < HeaderLen+bodyLen {
				break
			}
			need += bodyLen - Overhead
			off += HeaderLen + bodyLen
		}
		if cap(o.body) < need {
			o.body = make([]byte, 0, need)
		}
		arena = o.body[:0]
	}
	for {
		if len(o.buf)-o.off < HeaderLen {
			break
		}
		bodyLen := int(binary.BigEndian.Uint16(o.buf[o.off+3 : o.off+5]))
		if bodyLen > MaxPlaintext+Overhead {
			o.saveScratch(reuse, out, arena)
			return out, fmt.Errorf("%w: %d", ErrRecordTooLarge, bodyLen)
		}
		if bodyLen < Overhead {
			o.saveScratch(reuse, out, arena)
			return out, fmt.Errorf("tlsrec: body %d shorter than overhead", bodyLen)
		}
		if len(o.buf)-o.off < HeaderLen+bodyLen {
			break
		}
		ct := o.buf[o.off]
		cipher := o.buf[o.off+HeaderLen : o.off+HeaderLen+bodyLen]
		n := bodyLen - Overhead
		var plain []byte
		if reuse {
			start := len(arena)
			arena = arena[:start+n]
			plain = arena[start : start+n]
		} else {
			plain = make([]byte, n)
		}
		scramble(plain, cipher[8:8+n])
		out = append(out, Record{ContentType: ct, Body: plain, CipherLen: bodyLen})
		o.off += HeaderLen + bodyLen
	}
	o.saveScratch(reuse, out, arena)
	return out, nil
}

// saveScratch stows the scratch slices back on the Opener so their
// capacity carries over to the next FeedReuse call.
func (o *Opener) saveScratch(reuse bool, out []Record, arena []byte) {
	if reuse {
		o.recs = out
		o.body = arena
	}
}

// Buffered returns the number of bytes awaiting a complete record.
func (o *Opener) Buffered() int { return len(o.buf) - o.off }

// Reset discards any buffered partial record so the Opener can start
// a fresh stream, keeping the buffer and scratch capacities.
func (o *Opener) Reset() {
	o.buf = o.buf[:0]
	o.off = 0
}

// HeaderInfo is what a passive observer reads from a record header.
type HeaderInfo struct {
	ContentType uint8
	Length      int // ciphertext body length
}

// StreamParser extracts record headers from a passively observed byte
// stream without decrypting, the way the paper's tshark monitor does.
type StreamParser struct {
	buf []byte
	off int
	out []HeaderInfo // Feed scratch
}

// Feed appends observed bytes and returns headers of all records whose
// bytes have fully transited. The returned slice is scratch reused by
// the next Feed call; copy the values out if they must survive it.
func (p *StreamParser) Feed(b []byte) []HeaderInfo {
	if p.off > 0 {
		n := copy(p.buf, p.buf[p.off:])
		p.buf = p.buf[:n]
		p.off = 0
	}
	p.buf = append(p.buf, b...)
	out := p.out[:0]
	for {
		if len(p.buf)-p.off < HeaderLen {
			break
		}
		bodyLen := int(binary.BigEndian.Uint16(p.buf[p.off+3 : p.off+5]))
		if len(p.buf)-p.off < HeaderLen+bodyLen {
			break
		}
		out = append(out, HeaderInfo{ContentType: p.buf[p.off], Length: bodyLen})
		p.off += HeaderLen + bodyLen
	}
	p.out = out
	return out
}

// Reset discards buffered partial-record bytes so the parser can
// observe a fresh stream, keeping buffer and scratch capacities.
func (p *StreamParser) Reset() {
	p.buf = p.buf[:0]
	p.off = 0
}
