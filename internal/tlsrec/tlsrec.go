// Package tlsrec simulates the TLS record layer with size-preserving
// opacity: plaintext is framed into records with the standard 5-byte
// cleartext header (content type, version, length) and a fixed
// per-record ciphertext expansion, and the body is lightly scrambled
// so nothing downstream can accidentally depend on payload content.
//
// This preserves exactly the observables a passive adversary has
// against real TLS — record boundaries, content types, ciphertext
// lengths, direction, and timing — which is all the reproduced attack
// uses (the paper's section II primer and its tshark-based monitor,
// section V). (See DESIGN.md, substitutions table.)
//
// Key types: Sealer and Opener (the endpoint halves), Record,
// HeaderInfo (what a sniffer reads from the 5 cleartext header
// bytes), and StreamParser (incremental header extraction from a
// reassembled byte stream, used by core.Monitor).
package tlsrec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TLS record constants.
const (
	// HeaderLen is the cleartext record header size.
	HeaderLen = 5

	// Overhead is the per-record ciphertext expansion (8-byte explicit
	// nonce + 16-byte AEAD tag, as in TLS 1.2 AES-GCM).
	Overhead = 24

	// MaxPlaintext is the largest plaintext fragment per record
	// (RFC 5246 section 6.2.1).
	MaxPlaintext = 16384

	// Version is the wire version written into record headers
	// (TLS 1.2 = 0x0303).
	Version = 0x0303
)

// Content types.
const (
	TypeChangeCipherSpec uint8 = 20
	TypeAlert            uint8 = 21
	TypeHandshake        uint8 = 22
	TypeAppData          uint8 = 23
)

// ErrRecordTooLarge is returned when a record header declares a body
// larger than MaxPlaintext+Overhead.
var ErrRecordTooLarge = errors.New("tlsrec: record exceeds maximum size")

// scramble applies a fixed involutive byte transform so "ciphertext"
// differs from plaintext while Seal/Open stay inverses without key
// state.
func scramble(dst, src []byte) {
	for i, b := range src {
		dst[i] = b ^ 0x5a
	}
}

// Sealer frames plaintext into encrypted records.
type Sealer struct {
	// MaxPlain caps the plaintext per record; zero means MaxPlaintext.
	// Real stacks often use smaller fragments; the simulation's server
	// uses the TCP MSS so record boundaries align with segments.
	MaxPlain int
}

func (s *Sealer) maxPlain() int {
	if s.MaxPlain <= 0 || s.MaxPlain > MaxPlaintext {
		return MaxPlaintext
	}
	return s.MaxPlain
}

// SealedLen returns the total wire size Seal produces for n plaintext
// bytes.
func (s *Sealer) SealedLen(n int) int {
	mp := s.maxPlain()
	if n == 0 {
		return HeaderLen + Overhead
	}
	full := n / mp
	rem := n % mp
	total := full * (HeaderLen + Overhead + mp)
	if rem > 0 {
		total += HeaderLen + Overhead + rem
	}
	return total
}

// Seal appends the record encoding of plaintext (split into fragments
// of at most MaxPlain) to dst and returns the extended slice. An empty
// plaintext produces a single empty record.
func (s *Sealer) Seal(dst []byte, contentType uint8, plaintext []byte) []byte {
	mp := s.maxPlain()
	first := true
	for first || len(plaintext) > 0 {
		frag := plaintext
		if len(frag) > mp {
			frag = frag[:mp]
		}
		plaintext = plaintext[len(frag):]
		bodyLen := len(frag) + Overhead
		dst = append(dst, contentType, byte(Version>>8), byte(Version&0xff))
		dst = binary.BigEndian.AppendUint16(dst, uint16(bodyLen))
		// Explicit nonce placeholder.
		dst = append(dst, make([]byte, 8)...)
		off := len(dst)
		dst = append(dst, frag...)
		scramble(dst[off:], dst[off:])
		// AEAD tag placeholder.
		dst = append(dst, make([]byte, 16)...)
		first = false
	}
	return dst
}

// Record is one parsed record.
type Record struct {
	ContentType uint8
	// Body is the decrypted plaintext (Opener) or nil (StreamParser).
	Body []byte
	// CipherLen is the body length on the wire (including Overhead).
	CipherLen int
}

// Opener incrementally parses and decrypts a record stream. Feed
// arbitrary byte chunks; complete records come out.
type Opener struct {
	buf []byte
}

// Feed appends stream bytes and returns all newly complete records.
func (o *Opener) Feed(b []byte) ([]Record, error) {
	o.buf = append(o.buf, b...)
	var out []Record
	for {
		if len(o.buf) < HeaderLen {
			return out, nil
		}
		bodyLen := int(binary.BigEndian.Uint16(o.buf[3:5]))
		if bodyLen > MaxPlaintext+Overhead {
			return out, fmt.Errorf("%w: %d", ErrRecordTooLarge, bodyLen)
		}
		if bodyLen < Overhead {
			return out, fmt.Errorf("tlsrec: body %d shorter than overhead", bodyLen)
		}
		if len(o.buf) < HeaderLen+bodyLen {
			return out, nil
		}
		ct := o.buf[0]
		cipher := o.buf[HeaderLen : HeaderLen+bodyLen]
		plain := make([]byte, bodyLen-Overhead)
		scramble(plain, cipher[8:8+len(plain)])
		out = append(out, Record{ContentType: ct, Body: plain, CipherLen: bodyLen})
		o.buf = o.buf[HeaderLen+bodyLen:]
	}
}

// Buffered returns the number of bytes awaiting a complete record.
func (o *Opener) Buffered() int { return len(o.buf) }

// HeaderInfo is what a passive observer reads from a record header.
type HeaderInfo struct {
	ContentType uint8
	Length      int // ciphertext body length
}

// StreamParser extracts record headers from a passively observed byte
// stream without decrypting, the way the paper's tshark monitor does.
type StreamParser struct {
	buf []byte
}

// Feed appends observed bytes and returns headers of all records whose
// bytes have fully transited.
func (p *StreamParser) Feed(b []byte) []HeaderInfo {
	p.buf = append(p.buf, b...)
	var out []HeaderInfo
	for {
		if len(p.buf) < HeaderLen {
			return out
		}
		bodyLen := int(binary.BigEndian.Uint16(p.buf[3:5]))
		if len(p.buf) < HeaderLen+bodyLen {
			return out
		}
		out = append(out, HeaderInfo{ContentType: p.buf[0], Length: bodyLen})
		p.buf = p.buf[HeaderLen+bodyLen:]
	}
}
