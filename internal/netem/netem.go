// Package netem emulates the network path between the client and the
// server on a discrete-event simulator: rate-limited links with
// propagation delay, random jitter, loss, and bounded queues, joined
// by a middlebox vantage point where the adversary observes and
// manipulates traffic.
//
// Topology (one Path):
//
//	client ──linkC2M──▶ ┌───────────┐ ──linkM2S──▶ server
//	client ◀──linkM2C── │ middlebox │ ◀──linkS2M── server
//	                    └───────────┘
//
// The middlebox sees every packet, can drop or delay individual
// packets (the paper's jitter and targeted-drop knobs), and can change
// the rate of its outgoing links (the paper's bandwidth-throttling
// knob).
//
// The forwarding plane is allocation-free in steady state: packets and
// their payload buffers are recycled through a per-Path PacketPool,
// links schedule deliveries with sim.AfterArg instead of per-packet
// closures, and the middlebox reassemblers hold out-of-order segments
// in pooled, sorted slices rather than maps (which also removes a
// per-drain sort).
//
// Key types: Link (rate/delay/jitter/loss/queue), Path (the four-link
// topology above), Middlebox (per-direction Interceptor and ByteTap
// hooks), Packet, and PacketPool. This is the paper's threat model
// (section III): a compromised gateway — their OpenWrt router — on the
// client's path.
package netem

import (
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HeaderOverhead is the per-packet TCP/IP header cost in bytes added
// to the payload when computing wire size.
const HeaderOverhead = 40

// Packet is one TCP segment on the simulated wire.
type Packet struct {
	ID  uint64
	Dir trace.Direction

	// Seq is the TCP sequence number of the first payload byte.
	Seq uint32
	// Ack is the cumulative acknowledgement number.
	Ack uint32

	Payload []byte

	// SYN/FIN/RST model the TCP control flags used by the simulation.
	SYN, FIN, RST bool

	// Retransmit is ground-truth sender annotation used by traces; a
	// real observer would infer it from sequence numbers.
	Retransmit bool

	// SentAt is when the sender handed the packet to its link.
	SentAt time.Duration
}

// WireLen is the packet's size on the wire including header overhead.
func (p *Packet) WireLen() int { return len(p.Payload) + HeaderOverhead }

// PacketPool recycles Packets and their payload buffers within one
// simulated connection. Like everything else on the hot path it
// belongs to a single Simulator and is not safe for concurrent use.
// A nil pool is valid: Get falls back to plain allocation and Put
// becomes a no-op, so standalone links and tests work unchanged.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed packet, reusing a previously Put one (and its
// payload buffer's capacity) when available.
func (pp *PacketPool) Get() *Packet {
	if pp != nil {
		if n := len(pp.free); n > 0 {
			p := pp.free[n-1]
			pp.free[n-1] = nil
			pp.free = pp.free[:n-1]
			return p
		}
	}
	return &Packet{}
}

// Len reports how many recycled packets the pool currently holds.
func (pp *PacketPool) Len() int {
	if pp == nil {
		return 0
	}
	return len(pp.free)
}

// Put recycles p: every field is cleared, but the payload buffer's
// capacity is kept for the next Get. The caller must not touch p (or
// its payload) afterwards.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	payload := p.Payload[:0]
	*p = Packet{Payload: payload}
	pp.free = append(pp.free, p)
}

// Handler consumes delivered packets.
type Handler func(p *Packet)

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// RateBitsPerSec is the serialization rate; zero means infinite.
	RateBitsPerSec int64

	// PropDelay is the fixed propagation delay.
	PropDelay time.Duration

	// Jitter, when non-nil, returns a per-packet extra delay.
	Jitter func(rng *rand.Rand) time.Duration

	// AllowReorder lets jittered packets overtake one another. By
	// default the link is FIFO: jitter varies delay but preserves
	// order, as real queues do. (On-path adversarial reordering comes
	// from middlebox hold decisions, which bypass this.)
	AllowReorder bool

	// Loss is the probability in [0,1] that a packet is dropped.
	Loss float64

	// MaxQueueDelay bounds the transmit backlog: a packet that would
	// wait longer than this for serialization is tail-dropped. Zero
	// means 500ms (a large router buffer).
	MaxQueueDelay time.Duration
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.MaxQueueDelay == 0 {
		c.MaxQueueDelay = 500 * time.Millisecond
	}
	return c
}

// LinkStats counts link activity.
type LinkStats struct {
	Sent         int
	DroppedLoss  int
	DroppedQueue int
	Bytes        int64
}

// Link is one unidirectional rate-limited link. Not safe for
// concurrent use; everything runs on the simulator goroutine.
type Link struct {
	sim         *sim.Simulator
	cfg         LinkConfig
	dst         Handler
	deliverFn   func(any) // reused AfterArg callback: dst(p)
	pool        *PacketPool
	nextFree    time.Duration
	lastArrival time.Duration

	// Stats accumulates per-link counters.
	Stats LinkStats

	// Obs receives metric increments and flight events; the zero Sink
	// discards them.
	Obs obs.Sink
}

// NewLink returns a link delivering packets to dst.
func NewLink(s *sim.Simulator, cfg LinkConfig, dst Handler) *Link {
	l := &Link{sim: s, cfg: cfg.withDefaults(), dst: dst}
	l.deliverFn = func(x any) { l.dst(x.(*Packet)) }
	return l
}

// SetPool attaches a packet pool so the link can recycle the packets
// it drops (loss or queue overflow). Delivered packets are the
// receiver's to release.
func (l *Link) SetPool(pp *PacketPool) { l.pool = pp }

// Reset returns the link to the state NewLink(s, cfg, dst) would
// produce, keeping the destination handler, the delivery callback,
// and the attached pool. Used by reusable trial worlds to reconfigure
// a link between trials without rebuilding it.
func (l *Link) Reset(cfg LinkConfig) {
	l.cfg = cfg.withDefaults()
	l.nextFree = 0
	l.lastArrival = 0
	l.Stats = LinkStats{}
	l.Obs = obs.Sink{}
}

// SetRate changes the serialization rate (bits per second; zero means
// infinite). Takes effect for subsequently sent packets.
func (l *Link) SetRate(bps int64) { l.cfg.RateBitsPerSec = bps }

// Rate returns the current serialization rate.
func (l *Link) Rate() int64 { return l.cfg.RateBitsPerSec }

// SetLoss changes the random loss probability.
func (l *Link) SetLoss(p float64) { l.cfg.Loss = p }

// SetMaxQueueDelay changes the transmit-backlog bound.
func (l *Link) SetMaxQueueDelay(d time.Duration) { l.cfg.MaxQueueDelay = d }

// txTime returns the serialization time of n wire bytes.
func (l *Link) txTime(n int) time.Duration {
	if l.cfg.RateBitsPerSec <= 0 {
		return 0
	}
	bits := int64(n) * 8
	return time.Duration(bits * int64(time.Second) / l.cfg.RateBitsPerSec)
}

// Send queues p for transmission. The packet is delivered to the
// link's destination handler after queueing, serialization,
// propagation, and jitter; or silently dropped by loss or a full
// queue (dropped packets return to the pool, if one is attached).
func (l *Link) Send(p *Packet) {
	now := l.sim.Now()
	if l.cfg.Loss > 0 && l.sim.Rand().Float64() < l.cfg.Loss {
		l.Stats.DroppedLoss++
		l.Obs.Inc(obs.CNetemDropLoss)
		l.Obs.Event(now, obs.EvNetemDrop, 0, int64(len(p.Payload)))
		l.pool.Put(p)
		return
	}
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	if start-now > l.cfg.MaxQueueDelay {
		l.Stats.DroppedQueue++
		l.Obs.Inc(obs.CNetemDropQueue)
		l.Obs.Event(now, obs.EvNetemDrop, 1, int64(len(p.Payload)))
		l.pool.Put(p)
		return
	}
	l.Obs.ObserveDuration(obs.HNetemQueueWait, start-now)
	tx := l.txTime(p.WireLen())
	l.nextFree = start + tx
	delay := l.nextFree - now + l.cfg.PropDelay
	if l.cfg.Jitter != nil {
		j := l.cfg.Jitter(l.sim.Rand())
		l.Obs.ObserveDuration(obs.HNetemJitter, j)
		delay += j
	}
	arrival := now + delay
	if !l.cfg.AllowReorder && arrival < l.lastArrival {
		arrival = l.lastArrival
		delay = arrival - now
	}
	l.lastArrival = arrival
	l.Stats.Sent++
	l.Stats.Bytes += int64(p.WireLen())
	l.Obs.Inc(obs.CNetemLinkSend)
	l.sim.AfterArg(delay, l.deliverFn, p)
}

// UniformJitter returns a jitter function drawing uniformly from
// [0, max].
func UniformJitter(max time.Duration) func(*rand.Rand) time.Duration {
	if max <= 0 {
		return nil
	}
	return func(rng *rand.Rand) time.Duration {
		return time.Duration(rng.Int63n(int64(max) + 1))
	}
}

// Action is the middlebox interceptor's verdict for a packet. The
// enum starts at 1 so the zero value is invalid.
type Action uint8

const (
	// ActPass forwards the packet immediately.
	ActPass Action = iota + 1
	// ActDrop discards the packet.
	ActDrop
	// ActDelay holds the packet for Decision.Delay before forwarding.
	ActDelay
)

// Decision is what the interceptor wants done with a packet.
type Decision struct {
	Action Action
	Delay  time.Duration
}

// Pass is the identity decision.
func Pass() Decision { return Decision{Action: ActPass} }

// Drop discards the packet.
func Drop() Decision { return Decision{Action: ActDrop} }

// Delay holds the packet for d before forwarding.
func Delay(d time.Duration) Decision { return Decision{Action: ActDelay, Delay: d} }

// Interceptor inspects each packet transiting the middlebox and
// decides its fate. It runs on the simulator goroutine and must not
// retain the packet beyond the call.
type Interceptor func(dir trace.Direction, p *Packet) Decision

// ByteTap receives the reassembled in-order TCP payload byte stream
// of one direction, as a passive observer would reconstruct it. The
// slice is scratch owned by the middlebox: copy it if it must survive
// the call.
type ByteTap func(dir trace.Direction, b []byte)

// Middlebox is the compromised on-path device: it observes every
// packet (feeding the capture trace and the byte-stream taps), applies
// the interceptor verdict, and forwards survivors to the outgoing
// link of the packet's direction.
type Middlebox struct {
	sim       *sim.Simulator
	forwardFn func(any) // reused AfterArg callback for delayed packets
	pool      *PacketPool

	outC2S *Link // toward the server
	outS2C *Link // toward the client

	// Interceptor may be nil (pass everything).
	Interceptor Interceptor

	// Tap receives reassembled payload bytes per direction; may be nil.
	Tap ByteTap

	// Capture, when non-nil, receives packet observations.
	Capture *trace.Trace

	// Stats counts interceptor outcomes.
	Stats struct {
		Passed, Dropped, Delayed int
	}

	asmC2S reassembler
	asmS2C reassembler
}

// NewMiddlebox wires a middlebox to its two outgoing links.
func NewMiddlebox(s *sim.Simulator, toServer, toClient *Link) *Middlebox {
	m := &Middlebox{sim: s, outC2S: toServer, outS2C: toClient}
	m.forwardFn = func(x any) {
		p := x.(*Packet)
		m.linkFor(p.Dir).Send(p)
	}
	return m
}

// SetPool attaches a packet pool so the middlebox can recycle packets
// the interceptor drops.
func (m *Middlebox) SetPool(pp *PacketPool) { m.pool = pp }

// Reset clears the middlebox's per-trial state — hooks, stats, and
// both reassemblers — keeping the link wiring, callbacks, and pool.
func (m *Middlebox) Reset() {
	m.Interceptor = nil
	m.Tap = nil
	m.Capture = nil
	m.Stats.Passed, m.Stats.Dropped, m.Stats.Delayed = 0, 0, 0
	m.asmC2S.reset()
	m.asmS2C.reset()
}

// linkFor returns the outgoing link for a direction.
func (m *Middlebox) linkFor(dir trace.Direction) *Link {
	if dir == trace.ServerToClient {
		return m.outS2C
	}
	return m.outC2S
}

// HandlePacket is the middlebox's link-delivery entry point.
func (m *Middlebox) HandlePacket(p *Packet) {
	if m.Capture != nil {
		m.Capture.AddPacket(trace.PacketObs{
			Time:       m.sim.Now(),
			Dir:        p.Dir,
			Seq:        p.Seq,
			PayloadLen: len(p.Payload),
			WireLen:    p.WireLen(),
			Retransmit: p.Retransmit,
		})
	}
	if m.Tap != nil && len(p.Payload) > 0 {
		var fresh []byte
		if p.Dir == trace.ClientToServer {
			fresh = m.asmC2S.push(p.Seq, p.Payload)
		} else {
			fresh = m.asmS2C.push(p.Seq, p.Payload)
		}
		if len(fresh) > 0 {
			m.Tap(p.Dir, fresh)
		}
	}

	dec := Pass()
	if m.Interceptor != nil {
		dec = m.Interceptor(p.Dir, p)
	}
	switch dec.Action {
	case ActDrop:
		m.Stats.Dropped++
		m.pool.Put(p)
	case ActDelay:
		m.Stats.Delayed++
		m.sim.AfterArg(dec.Delay, m.forwardFn, p)
	default:
		m.Stats.Passed++
		m.linkFor(p.Dir).Send(p)
	}
}

// heldSeg is one out-of-order segment waiting for its gap to fill.
type heldSeg struct {
	seq uint32
	buf []byte
}

// reassembler rebuilds an in-order byte stream from possibly
// out-of-order, duplicated TCP segments, the way a passive sniffer
// does. Held segments live in a slice kept sorted by sequence-space
// distance from the next expected byte (wrap-safe), so draining needs
// no per-call sort and no map iteration; hold buffers and the
// contiguous-bytes scratch are recycled across pushes.
type reassembler struct {
	next    uint32
	started bool
	held    []heldSeg // sorted ascending by (seq - next)
	spare   [][]byte  // recycled hold buffers
	scratch []byte    // reusable contiguous-bytes buffer handed out by push
}

// push ingests one segment and returns any newly contiguous bytes.
// The returned slice is scratch, valid only until the next push.
func (r *reassembler) push(seq uint32, payload []byte) []byte {
	if !r.started {
		r.next = seq
		r.started = true
	}
	end := seq + uint32(len(payload))
	if seqLEQ(end, r.next) {
		return nil // pure duplicate
	}
	if seqLess(r.next, seq) {
		r.hold(seq, payload)
		return nil
	}
	// Overlapping or exactly next: take the fresh suffix, then drain
	// any now-contiguous held segments in stream order.
	fresh := append(r.scratch[:0], payload[r.next-seq:]...)
	r.next = end
	for len(r.held) > 0 {
		h := r.held[0]
		hend := h.seq + uint32(len(h.buf))
		if seqLEQ(hend, r.next) {
			r.dropHead() // fully superseded
			continue
		}
		if seqLess(r.next, h.seq) {
			break // gap remains
		}
		fresh = append(fresh, h.buf[r.next-h.seq:]...)
		r.next = hend
		r.dropHead()
	}
	r.scratch = fresh
	return fresh
}

// hold files a future segment in sorted position, keeping the longest
// copy for a duplicated slot (the same rule the map version applied).
func (r *reassembler) hold(seq uint32, payload []byte) {
	d := seq - r.next
	i := 0
	for i < len(r.held) && r.held[i].seq-r.next < d {
		i++
	}
	if i < len(r.held) && r.held[i].seq == seq {
		if len(payload) > len(r.held[i].buf) {
			r.held[i].buf = append(r.held[i].buf[:0], payload...)
		}
		return
	}
	buf := append(r.getSpare(), payload...)
	r.held = append(r.held, heldSeg{})
	copy(r.held[i+1:], r.held[i:])
	r.held[i] = heldSeg{seq: seq, buf: buf}
}

// dropHead removes the first held segment, recycling its buffer.
func (r *reassembler) dropHead() {
	buf := r.held[0].buf
	n := len(r.held)
	copy(r.held, r.held[1:])
	r.held[n-1] = heldSeg{}
	r.held = r.held[:n-1]
	if buf != nil {
		r.spare = append(r.spare, buf[:0])
	}
}

// reset forgets stream position and held segments, recycling their
// buffers (and keeping the scratch) for the next stream.
func (r *reassembler) reset() {
	r.next = 0
	r.started = false
	for i := range r.held {
		if buf := r.held[i].buf; buf != nil {
			r.spare = append(r.spare, buf[:0])
		}
		r.held[i] = heldSeg{}
	}
	r.held = r.held[:0]
}

// getSpare returns a recycled zero-length hold buffer, or nil.
func (r *reassembler) getSpare() []byte {
	if n := len(r.spare); n > 0 {
		b := r.spare[n-1]
		r.spare[n-1] = nil
		r.spare = r.spare[:n-1]
		return b
	}
	return nil
}

// seqLess is modular 32-bit sequence comparison (RFC 793 style).
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ is modular less-or-equal.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// Path assembles the full client↔server topology around one
// middlebox.
type Path struct {
	Mbox *Middlebox

	// LinkC2M and LinkS2M feed the middlebox; LinkM2S and LinkM2C are
	// its outgoing links (whose rates the adversary throttles).
	LinkC2M, LinkM2S, LinkS2M, LinkM2C *Link

	// Pool recycles packets flowing through the path. Endpoints draw
	// their transmit packets from it and release inbound packets back
	// to it after processing; the links and middlebox release what
	// they drop.
	Pool *PacketPool
}

// PathConfig holds the ambient (non-adversarial) link parameters for
// each half of the path.
type PathConfig struct {
	// ClientSide configures client↔middlebox links.
	ClientSide LinkConfig
	// ServerSide configures middlebox↔server links.
	ServerSide LinkConfig
}

// NewPath builds the topology. clientRecv and serverRecv receive
// packets delivered to the endpoints.
func NewPath(s *sim.Simulator, cfg PathConfig, clientRecv, serverRecv Handler) *Path {
	pool := &PacketPool{}
	toServer := NewLink(s, cfg.ServerSide, serverRecv)
	toClient := NewLink(s, cfg.ClientSide, clientRecv)
	mbox := NewMiddlebox(s, toServer, toClient)
	p := &Path{
		Mbox:    mbox,
		LinkC2M: NewLink(s, cfg.ClientSide, mbox.HandlePacket),
		LinkS2M: NewLink(s, cfg.ServerSide, mbox.HandlePacket),
		LinkM2S: toServer,
		LinkM2C: toClient,
		Pool:    pool,
	}
	mbox.SetPool(pool)
	for _, l := range []*Link{p.LinkC2M, p.LinkS2M, p.LinkM2S, p.LinkM2C} {
		l.SetPool(pool)
	}
	return p
}

// Reset restores all four links to cfg and clears the middlebox, as
// NewPath would, keeping every allocation (links, callbacks, pool and
// its contents) so a reused path forwards allocation-free from the
// first packet of the next trial.
func (p *Path) Reset(cfg PathConfig) {
	p.LinkC2M.Reset(cfg.ClientSide)
	p.LinkM2C.Reset(cfg.ClientSide)
	p.LinkS2M.Reset(cfg.ServerSide)
	p.LinkM2S.Reset(cfg.ServerSide)
	p.Mbox.Reset()
}

// ReclaimPending returns every packet still riding the simulator's
// event queue (in flight on a link or held by the middlebox) to the
// path's pool. Call it immediately before sim.Reset discards the
// queue, so a reused world does not leak its in-flight packets to the
// garbage collector each trial.
func (p *Path) ReclaimPending(s *sim.Simulator) {
	s.ForEachPendingArg(func(a any) {
		if pkt, ok := a.(*Packet); ok {
			p.Pool.Put(pkt)
		}
	})
}

// SetObs points all four links' metric sinks at k. Call after Reset
// (which clears them), the same re-wiring pattern the session uses
// for its other cross-layer hooks.
func (p *Path) SetObs(k obs.Sink) {
	p.LinkC2M.Obs = k
	p.LinkM2S.Obs = k
	p.LinkS2M.Obs = k
	p.LinkM2C.Obs = k
}

// SendFromClient injects a client packet into the path.
func (p *Path) SendFromClient(pkt *Packet) {
	pkt.Dir = trace.ClientToServer
	p.LinkC2M.Send(pkt)
}

// SendFromServer injects a server packet into the path.
func (p *Path) SendFromServer(pkt *Packet) {
	pkt.Dir = trace.ServerToClient
	p.LinkS2M.Send(pkt)
}

// SetBandwidth throttles both middlebox outgoing links, as the
// paper's adversary does ("bandwidth limits are applied for both
// incoming and outgoing packets").
func (p *Path) SetBandwidth(bps int64) {
	p.LinkM2S.SetRate(bps)
	p.LinkM2C.SetRate(bps)
}
