package netem

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestLinkDeliversWithPropDelay(t *testing.T) {
	s := sim.New(1)
	var at time.Duration
	l := NewLink(s, LinkConfig{PropDelay: 10 * time.Millisecond}, func(p *Packet) {
		at = s.Now()
	})
	l.Send(&Packet{Payload: []byte("x")})
	s.Run()
	if at != 10*time.Millisecond {
		t.Errorf("delivered at %v, want 10ms", at)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	s := sim.New(1)
	// 1 Mbps; 1000-byte payload + 40 overhead = 8320 bits = 8.32 ms.
	var at time.Duration
	l := NewLink(s, LinkConfig{RateBitsPerSec: 1_000_000}, func(p *Packet) { at = s.Now() })
	l.Send(&Packet{Payload: make([]byte, 1000)})
	s.Run()
	want := 8320 * time.Microsecond
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestLinkBackToBackQueueing(t *testing.T) {
	s := sim.New(1)
	var times []time.Duration
	l := NewLink(s, LinkConfig{RateBitsPerSec: 1_000_000}, func(p *Packet) {
		times = append(times, s.Now())
	})
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Payload: make([]byte, 1000)})
	}
	s.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(times))
	}
	per := 8320 * time.Microsecond
	for i, at := range times {
		want := time.Duration(i+1) * per
		if at != want {
			t.Errorf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	delivered := 0
	l := NewLink(s, LinkConfig{
		RateBitsPerSec: 1_000_000,
		MaxQueueDelay:  10 * time.Millisecond,
	}, func(p *Packet) { delivered++ })
	for i := 0; i < 10; i++ { // 8.32ms each; queue caps around 2 extra
		l.Send(&Packet{Payload: make([]byte, 1000)})
	}
	s.Run()
	if l.Stats.DroppedQueue == 0 {
		t.Error("no queue drops despite overload")
	}
	if delivered+l.Stats.DroppedQueue != 10 {
		t.Errorf("delivered %d + dropped %d != 10", delivered, l.Stats.DroppedQueue)
	}
}

func TestLinkLoss(t *testing.T) {
	s := sim.New(7)
	delivered := 0
	l := NewLink(s, LinkConfig{Loss: 0.5}, func(p *Packet) { delivered++ })
	for i := 0; i < 1000; i++ {
		l.Send(&Packet{Payload: []byte("x")})
	}
	s.Run()
	if delivered < 400 || delivered > 600 {
		t.Errorf("delivered %d of 1000 at 50%% loss", delivered)
	}
	if l.Stats.DroppedLoss+delivered != 1000 {
		t.Errorf("loss accounting: %d + %d != 1000", l.Stats.DroppedLoss, delivered)
	}
}

func TestLinkJitterReorders(t *testing.T) {
	s := sim.New(3)
	var order []uint64
	l := NewLink(s, LinkConfig{
		PropDelay:    time.Millisecond,
		Jitter:       UniformJitter(20 * time.Millisecond),
		AllowReorder: true,
	}, func(p *Packet) { order = append(order, p.ID) })
	for i := 0; i < 50; i++ {
		id := uint64(i)
		l.Send(&Packet{ID: id, Payload: []byte("x")})
		s.RunUntil(s.Now() + 100*time.Microsecond)
	}
	s.Run()
	if len(order) != 50 {
		t.Fatalf("delivered %d, want 50", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("heavy jitter never reordered packets")
	}
}

func TestUniformJitterZero(t *testing.T) {
	if UniformJitter(0) != nil {
		t.Error("UniformJitter(0) should be nil (no jitter)")
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	s := sim.New(1)
	var times []time.Duration
	l := NewLink(s, LinkConfig{}, func(p *Packet) { times = append(times, s.Now()) })
	l.Send(&Packet{Payload: make([]byte, 1000)})
	s.Run()
	l.SetRate(1_000_000)
	if l.Rate() != 1_000_000 {
		t.Fatalf("Rate = %d", l.Rate())
	}
	base := s.Now()
	l.Send(&Packet{Payload: make([]byte, 1000)})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != 0 {
		t.Errorf("unthrottled delivery at %v, want 0", times[0])
	}
	if got := times[1] - base; got != 8320*time.Microsecond {
		t.Errorf("throttled delivery took %v, want 8.32ms", got)
	}
}

func newTestPath(s *sim.Simulator, clientRecv, serverRecv Handler) *Path {
	return NewPath(s, PathConfig{
		ClientSide: LinkConfig{PropDelay: time.Millisecond},
		ServerSide: LinkConfig{PropDelay: 2 * time.Millisecond},
	}, clientRecv, serverRecv)
}

func TestPathEndToEnd(t *testing.T) {
	s := sim.New(1)
	var gotServer, gotClient *Packet
	var atServer, atClient time.Duration
	p := newTestPath(s,
		func(pkt *Packet) { gotClient, atClient = pkt, s.Now() },
		func(pkt *Packet) { gotServer, atServer = pkt, s.Now() },
	)
	p.SendFromClient(&Packet{Seq: 100, Payload: []byte("req")})
	s.Run()
	if gotServer == nil || gotServer.Seq != 100 {
		t.Fatal("server did not receive the client packet")
	}
	if atServer != 3*time.Millisecond { // 1ms + 2ms
		t.Errorf("server delivery at %v, want 3ms", atServer)
	}
	p.SendFromServer(&Packet{Seq: 200, Payload: []byte("resp")})
	s.Run()
	if gotClient == nil || gotClient.Seq != 200 {
		t.Fatal("client did not receive the server packet")
	}
	if atClient-atServer != 3*time.Millisecond {
		t.Errorf("client delivery took %v, want 3ms", atClient-atServer)
	}
}

func TestMiddleboxCaptureAndStats(t *testing.T) {
	s := sim.New(1)
	p := newTestPath(s, func(*Packet) {}, func(*Packet) {})
	cap := &trace.Trace{}
	p.Mbox.Capture = cap
	p.SendFromClient(&Packet{Seq: 0, Payload: []byte("abcd"), Retransmit: true})
	p.SendFromServer(&Packet{Seq: 0, Payload: []byte("efgh")})
	s.Run()
	if len(cap.Packets) != 2 {
		t.Fatalf("captured %d packets, want 2", len(cap.Packets))
	}
	if cap.Packets[0].Dir != trace.ClientToServer || !cap.Packets[0].Retransmit {
		t.Errorf("first obs = %+v", cap.Packets[0])
	}
	if cap.RetransmitCount(trace.ClientToServer) != 1 {
		t.Error("retransmit count wrong")
	}
	if p.Mbox.Stats.Passed != 2 {
		t.Errorf("passed = %d, want 2", p.Mbox.Stats.Passed)
	}
}

func TestMiddleboxInterceptorDropAndDelay(t *testing.T) {
	s := sim.New(1)
	var deliveries []time.Duration
	p := newTestPath(s, func(*Packet) {}, func(pkt *Packet) {
		deliveries = append(deliveries, s.Now())
	})
	p.Mbox.Interceptor = func(dir trace.Direction, pkt *Packet) Decision {
		switch pkt.ID {
		case 1:
			return Drop()
		case 2:
			return Delay(50 * time.Millisecond)
		default:
			return Pass()
		}
	}
	p.SendFromClient(&Packet{ID: 1, Payload: []byte("dropme")})
	p.SendFromClient(&Packet{ID: 2, Payload: []byte("delayme")})
	p.SendFromClient(&Packet{ID: 3, Payload: []byte("passme")})
	s.Run()
	if len(deliveries) != 2 {
		t.Fatalf("delivered %d packets, want 2 (one dropped)", len(deliveries))
	}
	if p.Mbox.Stats.Dropped != 1 || p.Mbox.Stats.Delayed != 1 || p.Mbox.Stats.Passed != 1 {
		t.Errorf("stats = %+v", p.Mbox.Stats)
	}
	// The delayed packet (50ms hold) must arrive well after the passed one.
	if deliveries[1]-deliveries[0] < 45*time.Millisecond {
		t.Errorf("delay hold too short: %v", deliveries[1]-deliveries[0])
	}
}

func TestMiddleboxByteTapReassembly(t *testing.T) {
	s := sim.New(1)
	p := newTestPath(s, func(*Packet) {}, func(*Packet) {})
	var got bytes.Buffer
	p.Mbox.Tap = func(dir trace.Direction, b []byte) {
		if dir == trace.ClientToServer {
			got.Write(b)
		}
	}
	// Deliver out of order with a duplicate: tap must see in-order
	// deduplicated bytes.
	p.SendFromClient(&Packet{Seq: 1000, Payload: []byte("hello ")})
	s.Run()
	p.SendFromClient(&Packet{Seq: 1012, Payload: []byte("attack")}) // future
	s.Run()
	p.SendFromClient(&Packet{Seq: 1006, Payload: []byte("world ")}) // fills gap
	s.Run()
	p.SendFromClient(&Packet{Seq: 1000, Payload: []byte("hello ")}) // duplicate
	s.Run()
	if got.String() != "hello world attack" {
		t.Errorf("tap saw %q, want %q", got.String(), "hello world attack")
	}
}

func TestReassemblerOverlap(t *testing.T) {
	// push returns scratch valid only until the next push, so the
	// accumulator must copy each result out.
	var r reassembler
	var out []byte
	out = append(out, r.push(0, []byte("abcd"))...)
	out = append(out, r.push(2, []byte("cdef"))...) // overlaps 2 bytes
	if string(out) != "abcdef" {
		t.Errorf("reassembled %q, want abcdef", out)
	}
}

func TestReassemblerWraparound(t *testing.T) {
	var r reassembler
	var out []byte
	start := uint32(0xfffffffe)
	out = append(out, r.push(start, []byte("ab"))...) // ends at 0
	out = append(out, r.push(0, []byte("cd"))...)     // wraps
	if string(out) != "abcd" {
		t.Errorf("reassembled %q, want abcd", out)
	}
}

func TestSetBandwidthThrottlesBothDirections(t *testing.T) {
	s := sim.New(1)
	var toServer, toClient time.Duration
	p := newTestPath(s,
		func(*Packet) { toClient = s.Now() },
		func(*Packet) { toServer = s.Now() },
	)
	p.SetBandwidth(1_000_000)
	p.SendFromClient(&Packet{Payload: make([]byte, 1000)})
	s.Run()
	mark := s.Now()
	p.SendFromServer(&Packet{Payload: make([]byte, 1000)})
	s.Run()
	// 8.32ms serialization at the middlebox + 3ms propagation.
	if toServer < 11*time.Millisecond {
		t.Errorf("c->s delivery at %v, want >= 11.3ms", toServer)
	}
	if toClient-mark < 11*time.Millisecond {
		t.Errorf("s->c delivery took %v, want >= 11.3ms", toClient-mark)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if trace.ClientToServer.Reverse() != trace.ServerToClient {
		t.Error("Reverse broken")
	}
	if trace.ClientToServer.String() != "c->s" || trace.ServerToClient.String() != "s->c" {
		t.Error("String broken")
	}
	if (&Packet{Payload: make([]byte, 10)}).WireLen() != 50 {
		t.Error("WireLen broken")
	}
}

func TestLinkFIFOByDefault(t *testing.T) {
	// Heavy jitter without AllowReorder must never reorder.
	s := sim.New(9)
	var order []uint64
	l := NewLink(s, LinkConfig{
		PropDelay: time.Millisecond,
		Jitter:    UniformJitter(30 * time.Millisecond),
	}, func(p *Packet) { order = append(order, p.ID) })
	for i := 0; i < 80; i++ {
		l.Send(&Packet{ID: uint64(i), Payload: []byte("x")})
		s.RunUntil(s.Now() + 200*time.Microsecond)
	}
	s.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FIFO link reordered: %v before %v", order[i-1], order[i])
		}
	}
}

func TestMiddleboxTapBothDirections(t *testing.T) {
	s := sim.New(1)
	p := newTestPath(s, func(*Packet) {}, func(*Packet) {})
	var c2s, s2c bytes.Buffer
	p.Mbox.Tap = func(dir trace.Direction, b []byte) {
		if dir == trace.ClientToServer {
			c2s.Write(b)
		} else {
			s2c.Write(b)
		}
	}
	p.SendFromClient(&Packet{Seq: 0, Payload: []byte("req")})
	p.SendFromServer(&Packet{Seq: 0, Payload: []byte("resp")})
	s.Run()
	if c2s.String() != "req" || s2c.String() != "resp" {
		t.Errorf("taps saw %q / %q", c2s.String(), s2c.String())
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, LinkConfig{}, func(*Packet) {})
	l.Send(&Packet{Payload: make([]byte, 100)})
	l.Send(&Packet{Payload: make([]byte, 200)})
	s.Run()
	if l.Stats.Sent != 2 {
		t.Errorf("sent = %d", l.Stats.Sent)
	}
	if l.Stats.Bytes != int64(100+40+200+40) {
		t.Errorf("bytes = %d", l.Stats.Bytes)
	}
}
