package netem

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestLinkSendZeroAlloc proves the closure-free delivery path: once
// the event heap has grown, sending pooled packets through a link
// allocates nothing per packet.
func TestLinkSendZeroAlloc(t *testing.T) {
	s := sim.New(1)
	pool := &PacketPool{}
	var l *Link
	l = NewLink(s, LinkConfig{PropDelay: time.Millisecond}, func(p *Packet) { pool.Put(p) })
	l.SetPool(pool)

	send := func(n int) {
		for i := 0; i < n; i++ {
			p := pool.Get()
			p.Payload = append(p.Payload[:0], make([]byte, 0)...)
			l.Send(p)
		}
		s.Run()
	}
	send(64) // warm up pool and heap

	allocs := testing.AllocsPerRun(100, func() { send(32) })
	if allocs != 0 {
		t.Errorf("Link.Send steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestMiddleboxPathZeroAlloc pushes pooled packets through the full
// path — two links plus the middlebox with capture and byte tap
// active — and requires the per-packet cost to stay allocation-free
// apart from the capture trace's own (amortized) growth.
func TestMiddleboxPathZeroAlloc(t *testing.T) {
	s := sim.New(1)
	var path *Path
	path = NewPath(s, PathConfig{
		ClientSide: LinkConfig{PropDelay: time.Millisecond},
		ServerSide: LinkConfig{PropDelay: time.Millisecond},
	}, func(p *Packet) { path.Pool.Put(p) }, func(p *Packet) { path.Pool.Put(p) })
	path.Mbox.Tap = func(trace.Direction, []byte) {}

	seq := uint32(0)
	payload := make([]byte, 100)
	send := func(n int) {
		for i := 0; i < n; i++ {
			p := path.Pool.Get()
			p.Seq = seq
			p.Payload = append(p.Payload[:0], payload...)
			seq += uint32(len(payload))
			path.SendFromClient(p)
		}
		s.Run()
	}
	send(64)

	allocs := testing.AllocsPerRun(100, func() { send(16) })
	if allocs != 0 {
		t.Errorf("path steady state: %.1f allocs/op, want 0", allocs)
	}
}

// TestReassemblerSteadyStateZeroAlloc holds out-of-order segments and
// drains them repeatedly: held-buffer and scratch recycling must make
// the loop allocation-free after warm-up.
func TestReassemblerSteadyStateZeroAlloc(t *testing.T) {
	var r reassembler
	seg := make([]byte, 64)
	next := uint32(0)
	cycle := func() {
		// Arrivals 2,3 out of order, then 1 fills the gap.
		r.push(next+64, seg)
		r.push(next+128, seg)
		r.push(next, seg)
		next += 192
	}
	for i := 0; i < 32; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if allocs != 0 {
		t.Errorf("reassembler steady state: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkLinkSend measures the per-packet scheduling cost through
// one link.
func BenchmarkLinkSend(b *testing.B) {
	s := sim.New(1)
	pool := &PacketPool{}
	var l *Link
	l = NewLink(s, LinkConfig{PropDelay: time.Millisecond}, func(p *Packet) { pool.Put(p) })
	l.SetPool(pool)
	payload := make([]byte, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.Payload = append(p.Payload[:0], payload...)
		l.Send(p)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}
