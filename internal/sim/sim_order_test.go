package sim

import (
	"fmt"
	"testing"
	"time"
)

// Order-equivalence oracle: refSim reimplements the Simulator's public
// scheduling semantics on the slice-backed binary heap the calendar
// queue replaced. Both engines are driven through an identical
// deterministic workload (same schedule calls, same in-callback
// decisions, same timer races) and must dispatch in the identical
// order — this is the invariant that keeps every simulation result
// byte-for-byte unchanged by the scheduler swap.

type refEvent struct {
	at    time.Duration
	seq   uint64
	fn    func()
	timer *refTimer
	gen   uint64
}

func (e *refEvent) before(o *refEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

type refSim struct {
	now    time.Duration
	seq    uint64
	events []refEvent
}

func (r *refSim) push(e refEvent) {
	r.events = append(r.events, e)
	i := len(r.events) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !r.events[i].before(&r.events[p]) {
			break
		}
		r.events[i], r.events[p] = r.events[p], r.events[i]
		i = p
	}
}

func (r *refSim) pop() refEvent {
	min := r.events[0]
	n := len(r.events) - 1
	r.events[0] = r.events[n]
	r.events = r.events[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if rc := l + 1; rc < n && r.events[rc].before(&r.events[l]) {
			small = rc
		}
		if !r.events[small].before(&r.events[i]) {
			break
		}
		r.events[i], r.events[small] = r.events[small], r.events[i]
		i = small
	}
	return min
}

func (r *refSim) At(t time.Duration, fn func()) {
	if t < r.now {
		t = r.now
	}
	r.seq++
	r.push(refEvent{at: t, seq: r.seq, fn: fn})
}

func (r *refSim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	r.At(r.now+d, fn)
}

func (r *refSim) step() bool {
	if len(r.events) == 0 {
		return false
	}
	e := r.pop()
	r.now = e.at
	if e.timer != nil {
		t := e.timer
		if t.gen == e.gen && t.set {
			t.set = false
			t.fn()
		}
		return true
	}
	e.fn()
	return true
}

func (r *refSim) Run() {
	for r.step() {
	}
}

func (r *refSim) RunUntil(t time.Duration) {
	for len(r.events) > 0 && r.events[0].at <= t {
		r.step()
	}
	if r.now < t {
		r.now = t
	}
}

type refTimer struct {
	r   *refSim
	fn  func()
	gen uint64
	set bool
}

func (t *refTimer) Reset(d time.Duration) {
	t.gen++
	t.set = true
	at := t.r.now + d
	if at < t.r.now {
		at = t.r.now
	}
	t.r.seq++
	t.r.push(refEvent{at: at, seq: t.r.seq, timer: t, gen: t.gen})
}

func (t *refTimer) Stop() {
	t.gen++
	t.set = false
}

// splitmix64 gives both engines the same pseudo-random decision stream
// without touching either simulator's rand.Rand.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// engine abstracts the two schedulers so one workload drives both.
type engine struct {
	now      func() time.Duration
	after    func(time.Duration, func())
	at       func(time.Duration, func())
	runUntil func(time.Duration)
	run      func()
	timerSet func(i int, d time.Duration)
	timerCut func(i int)
}

func wheelEngine(s *Simulator, timers []*Timer) engine {
	return engine{
		now:      s.Now,
		after:    s.After,
		at:       s.At,
		runUntil: s.RunUntil,
		run:      s.Run,
		timerSet: func(i int, d time.Duration) { timers[i].Reset(d) },
		timerCut: func(i int) { timers[i].Stop() },
	}
}

func refEngine(r *refSim, timers []*refTimer) engine {
	return engine{
		now:      func() time.Duration { return r.now },
		after:    r.After,
		at:       r.At,
		runUntil: r.RunUntil,
		run:      r.Run,
		timerSet: func(i int, d time.Duration) { timers[i].Reset(d) },
		timerCut: func(i int) { timers[i].Stop() },
	}
}

// workloadDelay maps a decision word to a delay that exercises every
// queue region: same-tick bursts (zero and sub-tick), in-wheel ticks,
// the exact wheel-horizon edge, and far-future overflow events.
func workloadDelay(w uint64) time.Duration {
	switch w % 8 {
	case 0:
		return 0 // same-time burst: FIFO via seq
	case 1:
		return time.Duration(w % 1000) // sub-tick
	case 2:
		return time.Duration(w%64) << tickBits // nearby ticks
	case 3:
		return wheelSize << tickBits // horizon edge (d == wheelSize)
	case 4:
		return (wheelSize + 1 + time.Duration(w%977)) << tickBits // far heap
	case 5:
		return -time.Duration(w % 100) // negative: clamps to "now"
	case 6:
		return time.Duration(w % (4 << tickBits)) // tick straddles
	default:
		return time.Duration(w % uint64(3*time.Second)) // wide spread
	}
}

// driveWorkload runs one deterministic scripted scenario on an engine
// and returns the dispatch log. Every callback appends its identity
// and may schedule follow-ups or race the timer set, with all choices
// keyed off splitmix64 so the wheel and the reference heap see the
// same decisions at the same points.
func driveWorkload(e engine, key uint64, nSeed, nTimers int, log *[]string) {
	var fire func(id uint64)
	fire = func(id uint64) {
		*log = append(*log, fmt.Sprintf("%d@%d", id, e.now()))
		w := splitmix64(key ^ id)
		switch w % 5 {
		case 0: // chain a follow-up event
			child := id*2 + 1
			if child < uint64(nSeed)*8 {
				e.after(workloadDelay(splitmix64(w)), func() { fire(child) })
			}
		case 1: // timer race: re-arm over a pending generation
			e.timerSet(int(w%uint64(nTimers)), workloadDelay(splitmix64(w+1)))
		case 2: // timer race: cancel whatever is pending
			e.timerCut(int((w >> 8) % uint64(nTimers)))
		case 3: // absolute-time schedule, possibly in the past (clamps)
			child := id*2 + 2
			if child < uint64(nSeed)*8 {
				at := e.now() + workloadDelay(splitmix64(w+2)) - time.Millisecond
				e.at(at, func() { fire(child) })
			}
		}
	}
	for i := 0; i < nSeed; i++ {
		w := splitmix64(key + uint64(i)*0x51ed2701)
		id := uint64(i)
		e.after(workloadDelay(w), func() { fire(id) })
	}
	for i := 0; i < nTimers; i++ {
		e.timerSet(i, workloadDelay(splitmix64(key+uint64(i)*0xabcd)))
	}
	// Mix RunUntil windows (peek path: clock advances without
	// dispatch) with a final drain.
	e.runUntil(150 * time.Millisecond)
	e.runUntil(150 * time.Millisecond) // idempotent re-run at same time
	e.runUntil(2600 * time.Millisecond)
	e.run()
}

// runBoth executes the identical workload on a wheel Simulator and the
// reference heap and returns both logs. The Simulator s may be a
// freshly-constructed or a Reset one — the log must not differ.
func runBoth(s *Simulator, key uint64, nSeed, nTimers int) (wheel, ref []string) {
	wt := make([]*Timer, nTimers)
	for i := range wt {
		i := i
		wt[i] = s.NewTimer(func() { wheel = append(wheel, fmt.Sprintf("T%d@%d", i, s.Now())) })
	}
	driveWorkload(wheelEngine(s, wt), key, nSeed, nTimers, &wheel)

	r := &refSim{}
	rt := make([]*refTimer, nTimers)
	for i := range rt {
		i := i
		rt[i] = &refTimer{r: r, fn: func() { ref = append(ref, fmt.Sprintf("T%d@%d", i, r.now)) }}
	}
	driveWorkload(refEngine(r, rt), key, nSeed, nTimers, &ref)
	return wheel, ref
}

func diffLogs(t *testing.T, label string, wheel, ref []string) {
	t.Helper()
	n := len(wheel)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if wheel[i] != ref[i] {
			t.Fatalf("%s: dispatch %d diverges: wheel=%s ref=%s", label, i, wheel[i], ref[i])
		}
	}
	if len(wheel) != len(ref) {
		t.Fatalf("%s: dispatch count diverges: wheel=%d ref=%d", label, len(wheel), len(ref))
	}
}

// TestWheelMatchesReferenceHeap is the main order-equivalence
// property: across many randomized workloads — far-future events,
// same-tick bursts, Timer Reset/Stop races over pending generations,
// negative-delay clamping, RunUntil windows — the calendar queue
// dispatches in exactly the reference heap's (at, seq) order.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		key := splitmix64(uint64(trial) * 0x2545f4914f6cdd1d)
		s := New(int64(trial))
		wheel, ref := runBoth(s, key, 40, 4)
		if len(wheel) == 0 {
			t.Fatalf("trial %d: empty dispatch log", trial)
		}
		diffLogs(t, fmt.Sprintf("trial %d", trial), wheel, ref)
	}
}

// TestWheelMatchesReferenceAfterReset re-runs fresh workloads on a
// Reset simulator: the recycled wheel (buckets, pool freelist, cur/far
// heaps) must behave exactly like a new one against a fresh reference.
func TestWheelMatchesReferenceAfterReset(t *testing.T) {
	s := New(1)
	for round := 0; round < 8; round++ {
		key := splitmix64(0xfeed + uint64(round))
		if round > 0 {
			s.Reset(int64(round))
		}
		wheel, ref := runBoth(s, key, 30, 3)
		diffLogs(t, fmt.Sprintf("round %d", round), wheel, ref)
	}
}

// FuzzWheelOrder lets the fuzzer hunt for workload keys whose dispatch
// order diverges between the wheel and the reference heap. Run as a
// plain test it checks the seed corpus; `go test -fuzz=FuzzWheelOrder`
// explores further.
func FuzzWheelOrder(f *testing.F) {
	f.Add(uint64(0), uint8(10))
	f.Add(uint64(0xdeadbeef), uint8(60))
	f.Add(^uint64(0), uint8(33))
	f.Fuzz(func(t *testing.T, key uint64, n uint8) {
		nSeed := int(n%64) + 1
		s := New(int64(key))
		wheel, ref := runBoth(s, key, nSeed, 3)
		nn := len(wheel)
		if len(ref) < nn {
			nn = len(ref)
		}
		for i := 0; i < nn; i++ {
			if wheel[i] != ref[i] {
				t.Fatalf("dispatch %d diverges: wheel=%s ref=%s", i, wheel[i], ref[i])
			}
		}
		if len(wheel) != len(ref) {
			t.Fatalf("dispatch count diverges: wheel=%d ref=%d", len(wheel), len(ref))
		}
	})
}
