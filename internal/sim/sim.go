// Package sim provides a deterministic discrete-event simulator: a
// virtual clock, an event queue, restartable timers, and seeded
// randomness.
//
// All of the network, transport, and HTTP/2 simulation layers in this
// repository are event-driven callbacks scheduled on one Simulator, so
// a whole attack trial — hundreds of packets, retransmission timers,
// jitter distributions — runs deterministically from a single seed and
// completes in microseconds of real time.
//
// # Scheduler internals
//
// The event queue is a calendar queue (a single-level timer wheel with
// an overflow heap), replacing the earlier slice-backed binary heap:
//
//   - Virtual time is divided into ticks of 2^tickBits ns (~524 µs). A
//     wheel of wheelSize buckets covers the next ~2.1 s of ticks; each
//     bucket is an unsorted intrusive list of nodes in one shared pool
//     (so queue capacity amortizes at the max-pending high-water mark,
//     not per bucket), and a bitmap records which buckets are
//     occupied, so finding the next non-empty tick is a word scan, not
//     a search.
//   - Events within the tick currently being dispatched live in a
//     small binary heap (`cur`) ordered by (at, seq); same-tick
//     scheduling during dispatch pushes into it. A bucket is heapified
//     once when the wheel reaches its tick.
//   - Events beyond the wheel horizon (stall-timer backoffs, RTO
//     exponential backoff, page time limits) go to an overflow heap
//     and migrate into buckets as the wheel slides forward.
//
// Scheduling and dispatch are therefore amortized O(1) for the hot
// paths (packet delivery, worker steps, ACK clocking — all within the
// wheel horizon), with the exact (at, seq) total order of the original
// heap: the dispatch sequence is byte-for-byte identical, which the
// wheel-vs-reference-heap property tests in sim_order_test.go pin
// down.
//
// The queue stays off the garbage collector's books: events are stored
// by value (no per-event allocation, no container/heap interface
// boxing), timers schedule themselves without closures, and AfterArg
// carries a payload pointer through the queue so packet delivery needs
// no per-packet closure either. In steady state — once buckets and
// heaps have grown to the simulation's high-water mark — At, After,
// AfterArg, and Timer.Reset allocate zero bytes (see
// sim_alloc_test.go).
//
// Key types: Simulator (clock + event queue + seeded RNG streams) and
// Timer (a restartable scheduled callback). The package replaces the
// paper's physical testbed (section V): one Simulator hosts one page
// load, and every sweep trial owns a private Simulator, which is what
// lets internal/runner execute trials concurrently without sharing.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"
)

// Calendar-queue geometry. One tick is 2^tickBits ns (~524 µs), sized
// so that sub-tick event chains (packet serialization, ACK clocking)
// stay in the small cur heap while multi-tick delays (propagation,
// worker service times, stall timeouts up to ~2 s) take the O(1)
// bucket path. The wheel spans wheelSize ticks (~2.1 s); only genuine
// long-delay events (RTO backoff, reset grace on slow paths, page
// time limits) overflow to the far heap.
const (
	tickBits  = 19
	wheelSize = 1 << 12
	wheelMask = wheelSize - 1
	occWords  = wheelSize / 64
)

// event is one scheduled callback, stored by value in the queue.
// Exactly one of the three dispatch forms is used: fn (a plain
// closure), pfn+parg (a closure-free callback with argument), or
// timer+gen (a Timer firing, validated against the timer's current
// generation at dispatch time).
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker: FIFO among same-time events
	fn    func()
	pfn   func(any)
	parg  any
	timer *Timer
	gen   uint64
}

// before orders events by (at, seq) — the same total order the
// original binary heap used, so dispatch order (and therefore every
// simulation result) is unchanged by the calendar-queue layout.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// heapPush inserts e into the (at, seq) min-heap h (sift-up). The only
// allocation is the amortized growth of the backing slice, which stops
// once the heap reaches its high-water mark.
func heapPush(h []event, e event) []event {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes and returns the minimum event (sift-down). The
// vacated tail slot is zeroed so the heap does not pin dead closures.
func heapPop(h []event) (event, []event) {
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	siftDown(h, 0)
	return min, h
}

func siftDown(h []event, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			small = r
		}
		if !h[small].before(&h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// heapify establishes the heap invariant over an unsorted bucket.
func heapify(h []event) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// node is one bucketed event in the shared pool, linked intrusively
// into its tick's bucket list. Bucket lists are unordered (LIFO push);
// the (at, seq) order is established by heapifying into cur when the
// wheel reaches the tick, so list order never affects dispatch order.
type node struct {
	ev   event
	next int32 // pool index of the next node in the bucket, -1 = end
}

// Simulator is a single-threaded discrete-event scheduler. It is not
// safe for concurrent use; all callbacks run on the caller's
// goroutine inside Run.
type Simulator struct {
	now time.Duration
	seq uint64
	rng *rand.Rand

	// Calendar queue state. cur holds the events of tick curTick as an
	// (at, seq) min-heap; bh[t & wheelMask] heads the intrusive list of
	// pool nodes for a pending tick t in (curTick, curTick+wheelSize];
	// occ is the bucket-occupancy bitmap; far is the overflow min-heap
	// for ticks beyond the wheel horizon. count is the total number of
	// pending events across all three.
	curTick int64
	cur     []event
	bh      []int32 // bucket heads, len wheelSize, -1 = empty
	pool    []node
	free    int32 // pool freelist head, -1 = none
	occ     [occWords]uint64
	near    int // events currently stored in buckets
	far     []event
	count   int

	// Steps counts executed events, to bound runaway simulations.
	steps uint64

	// MaxSteps aborts Run with a panic after this many events; zero
	// means no limit. Used to catch livelocks in tests.
	MaxSteps uint64
}

// New returns a simulator whose randomness derives entirely from seed.
func New(seed int64) *Simulator {
	s := &Simulator{
		rng:  rand.New(rand.NewSource(seed)),
		bh:   make([]int32, wheelSize),
		free: -1,
	}
	for i := range s.bh {
		s.bh[i] = -1
	}
	return s
}

// Reset rewinds the simulator to the state New(seed) would produce,
// keeping every queue's backing storage so a reused simulator
// schedules allocation-free from the first event. Pending events are
// discarded; callers that pooled objects riding the queue (AfterArg
// payloads) should reclaim them with ForEachPendingArg first.
// Re-seeding the existing rand.Rand in place yields the identical
// stream a fresh rand.New(rand.NewSource(seed)) would, so trial
// results do not depend on whether the simulator was reused.
func (s *Simulator) Reset(seed int64) {
	for i := range s.cur {
		s.cur[i] = event{} // unpin dead closures and payloads
	}
	s.cur = s.cur[:0]
	for i := range s.far {
		s.far[i] = event{}
	}
	s.far = s.far[:0]
	for w := range s.occ {
		for word := s.occ[w]; word != 0; word &= word - 1 {
			s.bh[w<<6+bits.TrailingZeros64(word)] = -1
		}
		s.occ[w] = 0
	}
	// Rebuild the pool freelist over the whole node array, zeroing the
	// events so dead closures and payloads are unpinned. Freelist order
	// only selects storage slots, never dispatch order, so this cannot
	// perturb results.
	for i := range s.pool {
		s.pool[i] = node{next: int32(i) - 1}
	}
	if len(s.pool) > 0 {
		s.free = int32(len(s.pool)) - 1
	} else {
		s.free = -1
	}
	s.near = 0
	s.count = 0
	s.curTick = 0
	s.now = 0
	s.seq = 0
	s.steps = 0
	s.MaxSteps = 0
	s.rng.Seed(seed)
}

// ForEachPendingArg visits the payload of every pending AfterArg
// event, in unspecified order. It exists so object pools can recover
// in-flight payloads (e.g. netem packets still "on the wire") before
// Reset discards the queue.
func (s *Simulator) ForEachPendingArg(f func(any)) {
	visit := func(evs []event) {
		for i := range evs {
			if evs[i].parg != nil {
				f(evs[i].parg)
			}
		}
	}
	visit(s.cur)
	for w := range s.occ {
		for word := s.occ[w]; word != 0; word &= word - 1 {
			for n := s.bh[w<<6+bits.TrailingZeros64(word)]; n >= 0; n = s.pool[n].next {
				if s.pool[n].ev.parg != nil {
					f(s.pool[n].ev.parg)
				}
			}
		}
	}
	visit(s.far)
}

// Now returns the current virtual time (elapsed since simulation
// start).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have executed.
func (s *Simulator) Steps() uint64 { return s.steps }

// schedule routes e to the cur heap (current tick — or, defensively,
// any past tick), a wheel bucket (within the horizon), or the far
// heap (beyond it). All three paths are allocation-free once their
// backing storage has reached its high-water mark.
func (s *Simulator) schedule(e event) {
	s.count++
	tk := int64(e.at) >> tickBits
	d := tk - s.curTick
	switch {
	case d <= 0:
		// Current tick (or an already-passed tick, which cannot arise
		// from the public API but is safe regardless): the cur heap
		// dispatches strictly by (at, seq), so ordering is exact.
		s.cur = heapPush(s.cur, e)
	case d <= wheelSize:
		s.bucketPush(tk&wheelMask, e)
	default:
		s.far = heapPush(s.far, e)
	}
}

// bucketPush links e into the bucket at wheel index i, taking a node
// from the freelist (or growing the shared pool toward its high-water
// mark — the queue's only steady-state allocation source).
func (s *Simulator) bucketPush(i int64, e event) {
	n := s.free
	if n >= 0 {
		s.free = s.pool[n].next
		s.pool[n].ev = e
	} else {
		s.pool = append(s.pool, node{ev: e})
		n = int32(len(s.pool)) - 1
	}
	s.pool[n].next = s.bh[i]
	if s.bh[i] < 0 {
		s.occ[i>>6] |= 1 << uint(i&63)
	}
	s.bh[i] = n
	s.near++
}

// scanNext returns the next occupied tick in (curTick,
// curTick+wheelSize]. Callers must ensure s.near > 0.
func (s *Simulator) scanNext() int64 {
	start := (s.curTick + 1) & wheelMask
	w := int(start >> 6)
	word := s.occ[w] &^ (1<<uint(start&63) - 1)
	for i := 0; i <= occWords; i++ {
		if word != 0 {
			idx := int64(w<<6 + bits.TrailingZeros64(word))
			delta := (idx - start) & wheelMask
			return s.curTick + 1 + delta
		}
		w = (w + 1) & (occWords - 1)
		word = s.occ[w]
	}
	panic("sim: occupancy bitmap inconsistent with near count")
}

// advanceTo moves the wheel to tick tk: the far heap is drained into
// any buckets now inside the horizon, and tk's bucket list is drained
// into the cur heap (freeing its nodes) and heapified. cur's backing
// array keeps its high-water capacity across ticks, so steady state
// allocates nothing here.
func (s *Simulator) advanceTo(tk int64) {
	s.curTick = tk
	// Drain tick tk's bucket BEFORE migrating far events: a far event
	// at tick tk+wheelSize maps to the same bucket residue as tk, and
	// draining far first would sweep it into cur a whole revolution
	// early, dispatching it ahead of nearer buckets.
	i := tk & wheelMask
	s.occ[i>>6] &^= 1 << uint(i&63)
	for n := s.bh[i]; n >= 0; {
		s.cur = append(s.cur, s.pool[n].ev)
		s.pool[n].ev = event{} // unpin
		nx := s.pool[n].next
		s.pool[n].next = s.free
		s.free = n
		n = nx
	}
	s.bh[i] = -1
	s.near -= len(s.cur)
	heapify(s.cur)
	if len(s.far) > 0 {
		s.drainFar()
	}
}

// drainFar migrates far-heap events whose tick has come inside the
// wheel horizon into their buckets.
func (s *Simulator) drainFar() {
	limit := s.curTick + wheelSize
	for len(s.far) > 0 && int64(s.far[0].at)>>tickBits <= limit {
		var e event
		e, s.far = heapPop(s.far)
		s.bucketPush((int64(e.at)>>tickBits)&wheelMask, e)
	}
}

// pop removes and returns the globally minimal (at, seq) event.
// Callers must ensure s.count > 0.
func (s *Simulator) pop() event {
	for {
		if len(s.cur) > 0 {
			var e event
			e, s.cur = heapPop(s.cur)
			s.count--
			return e
		}
		if s.near > 0 {
			s.advanceTo(s.scanNext())
			continue
		}
		// Wheel empty: jump the horizon to the far heap's minimum and
		// let the next iteration load its bucket.
		s.curTick = int64(s.far[0].at)>>tickBits - 1
		s.drainFar()
	}
}

// peekAt returns the virtual time of the next pending event without
// dispatching it (and without moving the wheel).
func (s *Simulator) peekAt() (time.Duration, bool) {
	if len(s.cur) > 0 {
		return s.cur[0].at, true
	}
	if s.near > 0 {
		n := s.bh[s.scanNext()&wheelMask]
		min := s.pool[n].ev.at
		for n = s.pool[n].next; n >= 0; n = s.pool[n].next {
			if at := s.pool[n].ev.at; at < min {
				min = at
			}
		}
		return min, true
	}
	if len(s.far) > 0 {
		return s.far[0].at, true
	}
	return 0, false
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// runs the event "now" (at the current time, after already-queued
// same-time events).
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.schedule(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now. Negative d behaves like zero.
func (s *Simulator) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// AfterArg schedules fn(arg) d from now. Unlike After with a closure
// over arg, AfterArg allocates nothing per call when fn is a reused
// func value (typically built once at construction time) and arg is a
// pointer: the argument rides through the event queue instead of a
// fresh closure. This is the per-packet scheduling path of
// internal/netem.
func (s *Simulator) AfterArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.seq++
	s.schedule(event{at: s.now + d, seq: s.seq, pfn: fn, parg: arg})
}

// step executes the earliest pending event and returns false when the
// queue is empty.
func (s *Simulator) step() bool {
	if s.count == 0 {
		return false
	}
	e := s.pop()
	s.now = e.at
	s.steps++
	if s.MaxSteps != 0 && s.steps > s.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded %d steps at t=%v", s.MaxSteps, s.now))
	}
	switch {
	case e.timer != nil:
		t := e.timer
		if t.gen == e.gen && t.set {
			t.set = false
			t.fn()
		}
	case e.pfn != nil:
		e.pfn(e.parg)
	default:
		e.fn()
	}
	return true
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t.
func (s *Simulator) RunUntil(t time.Duration) {
	for {
		at, ok := s.peekAt()
		if !ok || at > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunWhile executes events while cond() stays true and events remain.
func (s *Simulator) RunWhile(cond func() bool) {
	for cond() && s.step() {
	}
}

// Timer is a restartable one-shot timer bound to a Simulator. The
// zero value is not usable; construct with NewTimer.
//
// A Timer schedules itself directly into the event queue: each Reset
// pushes a by-value event carrying the timer pointer and its current
// generation, and stale events (superseded by a later Reset or Stop)
// are discarded at dispatch time by the generation check. Reset and
// Stop therefore allocate nothing in steady state.
type Timer struct {
	s   *Simulator
	fn  func()
	gen uint64 // invalidates stale firings
	at  time.Duration
	set bool
}

// NewTimer returns a stopped timer that runs fn when it fires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	return &Timer{s: s, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any earlier
// deadline. Negative d fires "now", like After.
func (t *Timer) Reset(d time.Duration) {
	t.gen++
	s := t.s
	t.at = s.now + d
	t.set = true
	at := t.at
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.schedule(event{at: at, seq: s.seq, timer: t, gen: t.gen})
}

// Stop disarms the timer. It is safe to stop a stopped timer.
func (t *Timer) Stop() {
	t.gen++
	t.set = false
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.set }

// Deadline returns the pending fire time; valid only while Armed.
func (t *Timer) Deadline() time.Duration { return t.at }
