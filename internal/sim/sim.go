// Package sim provides a deterministic discrete-event simulator: a
// virtual clock, an event queue, restartable timers, and seeded
// randomness.
//
// All of the network, transport, and HTTP/2 simulation layers in this
// repository are event-driven callbacks scheduled on one Simulator, so
// a whole attack trial — hundreds of packets, retransmission timers,
// jitter distributions — runs deterministically from a single seed and
// completes in microseconds of real time.
//
// Key types: Simulator (clock + event queue + seeded RNG streams) and
// Timer (a restartable scheduled callback). The package replaces the
// paper's physical testbed (section V): one Simulator hosts one page
// load, and every sweep trial owns a private Simulator, which is what
// lets internal/runner execute trials concurrently without sharing.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. It is not
// safe for concurrent use; all callbacks run on the caller's
// goroutine inside Run.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// Steps counts executed events, to bound runaway simulations.
	steps uint64

	// MaxSteps aborts Run with a panic after this many events; zero
	// means no limit. Used to catch livelocks in tests.
	MaxSteps uint64
}

// New returns a simulator whose randomness derives entirely from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation
// start).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have executed.
func (s *Simulator) Steps() uint64 { return s.steps }

// At schedules fn at absolute virtual time t. Scheduling in the past
// runs the event "now" (at the current time, after already-queued
// same-time events).
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now. Negative d behaves like zero.
func (s *Simulator) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// step executes the earliest pending event and returns false when the
// queue is empty.
func (s *Simulator) step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.steps++
	if s.MaxSteps != 0 && s.steps > s.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded %d steps at t=%v", s.MaxSteps, s.now))
	}
	e.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t.
func (s *Simulator) RunUntil(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunWhile executes events while cond() stays true and events remain.
func (s *Simulator) RunWhile(cond func() bool) {
	for cond() && s.step() {
	}
}

// Timer is a restartable one-shot timer bound to a Simulator. The
// zero value is not usable; construct with NewTimer.
type Timer struct {
	s   *Simulator
	fn  func()
	gen uint64 // invalidates stale firings
	at  time.Duration
	set bool
}

// NewTimer returns a stopped timer that runs fn when it fires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	return &Timer{s: s, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any earlier
// deadline.
func (t *Timer) Reset(d time.Duration) {
	t.gen++
	gen := t.gen
	t.at = t.s.Now() + d
	t.set = true
	t.s.After(d, func() {
		if t.gen != gen || !t.set {
			return
		}
		t.set = false
		t.fn()
	})
}

// Stop disarms the timer. It is safe to stop a stopped timer.
func (t *Timer) Stop() {
	t.gen++
	t.set = false
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.set }

// Deadline returns the pending fire time; valid only while Armed.
func (t *Timer) Deadline() time.Duration { return t.at }
