// Package sim provides a deterministic discrete-event simulator: a
// virtual clock, an event queue, restartable timers, and seeded
// randomness.
//
// All of the network, transport, and HTTP/2 simulation layers in this
// repository are event-driven callbacks scheduled on one Simulator, so
// a whole attack trial — hundreds of packets, retransmission timers,
// jitter distributions — runs deterministically from a single seed and
// completes in microseconds of real time.
//
// The event queue is engineered to stay off the garbage collector's
// books: events are stored by value in a slice-backed binary heap (no
// per-event allocation, no container/heap interface boxing), timers
// schedule themselves without closures, and AfterArg carries a payload
// pointer through the queue so packet delivery needs no per-packet
// closure either. In steady state — once the heap slice has grown to
// the simulation's high-water mark — At, After, AfterArg, and
// Timer.Reset allocate zero bytes (see sim_alloc_test.go).
//
// Key types: Simulator (clock + event queue + seeded RNG streams) and
// Timer (a restartable scheduled callback). The package replaces the
// paper's physical testbed (section V): one Simulator hosts one page
// load, and every sweep trial owns a private Simulator, which is what
// lets internal/runner execute trials concurrently without sharing.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// event is one scheduled callback, stored by value in the heap.
// Exactly one of the three dispatch forms is used: fn (a plain
// closure), pfn+parg (a closure-free callback with argument), or
// timer+gen (a Timer firing, validated against the timer's current
// generation at dispatch time).
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker: FIFO among same-time events
	fn    func()
	pfn   func(any)
	parg  any
	timer *Timer
	gen   uint64
}

// before orders events by (at, seq) — the same total order the
// original pointer-heap used, so pop order (and therefore every
// simulation result) is unchanged by the by-value layout.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Simulator is a single-threaded discrete-event scheduler. It is not
// safe for concurrent use; all callbacks run on the caller's
// goroutine inside Run.
type Simulator struct {
	now    time.Duration
	events []event // binary min-heap ordered by (at, seq)
	seq    uint64
	rng    *rand.Rand

	// Steps counts executed events, to bound runaway simulations.
	steps uint64

	// MaxSteps aborts Run with a panic after this many events; zero
	// means no limit. Used to catch livelocks in tests.
	MaxSteps uint64
}

// New returns a simulator whose randomness derives entirely from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Reset rewinds the simulator to the state New(seed) would produce,
// keeping the heap's backing array so a reused simulator schedules
// allocation-free from the first event. Pending events are discarded;
// callers that pooled objects riding the queue (AfterArg payloads)
// should reclaim them with ForEachPendingArg first. Re-seeding the
// existing rand.Rand in place yields the identical stream a fresh
// rand.New(rand.NewSource(seed)) would, so trial results do not
// depend on whether the simulator was reused.
func (s *Simulator) Reset(seed int64) {
	for i := range s.events {
		s.events[i] = event{} // unpin dead closures and payloads
	}
	s.events = s.events[:0]
	s.now = 0
	s.seq = 0
	s.steps = 0
	s.MaxSteps = 0
	s.rng.Seed(seed)
}

// ForEachPendingArg visits the payload of every pending AfterArg
// event, in heap-array order. It exists so object pools can recover
// in-flight payloads (e.g. netem packets still "on the wire") before
// Reset discards the queue.
func (s *Simulator) ForEachPendingArg(f func(any)) {
	for i := range s.events {
		if s.events[i].parg != nil {
			f(s.events[i].parg)
		}
	}
}

// Now returns the current virtual time (elapsed since simulation
// start).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have executed.
func (s *Simulator) Steps() uint64 { return s.steps }

// push inserts e into the heap (sift-up). The only allocation is the
// amortized growth of the backing slice, which stops once the queue
// reaches its high-water mark.
func (s *Simulator) push(e event) {
	s.events = append(s.events, e)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down). The vacated
// tail slot is zeroed so the heap does not pin dead closures.
func (s *Simulator) pop() event {
	h := s.events
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	s.events = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			small = r
		}
		if !h[small].before(&h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return min
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// runs the event "now" (at the current time, after already-queued
// same-time events).
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d from now. Negative d behaves like zero.
func (s *Simulator) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// AfterArg schedules fn(arg) d from now. Unlike After with a closure
// over arg, AfterArg allocates nothing per call when fn is a reused
// func value (typically built once at construction time) and arg is a
// pointer: the argument rides through the event queue instead of a
// fresh closure. This is the per-packet scheduling path of
// internal/netem.
func (s *Simulator) AfterArg(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.seq++
	s.push(event{at: s.now + d, seq: s.seq, pfn: fn, parg: arg})
}

// step executes the earliest pending event and returns false when the
// queue is empty.
func (s *Simulator) step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.pop()
	s.now = e.at
	s.steps++
	if s.MaxSteps != 0 && s.steps > s.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded %d steps at t=%v", s.MaxSteps, s.now))
	}
	switch {
	case e.timer != nil:
		t := e.timer
		if t.gen == e.gen && t.set {
			t.set = false
			t.fn()
		}
	case e.pfn != nil:
		e.pfn(e.parg)
	default:
		e.fn()
	}
	return true
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to
// exactly t.
func (s *Simulator) RunUntil(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunWhile executes events while cond() stays true and events remain.
func (s *Simulator) RunWhile(cond func() bool) {
	for cond() && s.step() {
	}
}

// Timer is a restartable one-shot timer bound to a Simulator. The
// zero value is not usable; construct with NewTimer.
//
// A Timer schedules itself directly into the event queue: each Reset
// pushes a by-value event carrying the timer pointer and its current
// generation, and stale events (superseded by a later Reset or Stop)
// are discarded at dispatch time by the generation check. Reset and
// Stop therefore allocate nothing in steady state.
type Timer struct {
	s   *Simulator
	fn  func()
	gen uint64 // invalidates stale firings
	at  time.Duration
	set bool
}

// NewTimer returns a stopped timer that runs fn when it fires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	return &Timer{s: s, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any earlier
// deadline. Negative d fires "now", like After.
func (t *Timer) Reset(d time.Duration) {
	t.gen++
	s := t.s
	t.at = s.now + d
	t.set = true
	at := t.at
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.push(event{at: at, seq: s.seq, timer: t, gen: t.gen})
}

// Stop disarms the timer. It is safe to stop a stopped timer.
func (t *Timer) Stop() {
	t.gen++
	t.set = false
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.set }

// Deadline returns the pending fire time; valid only while Armed.
func (t *Timer) Deadline() time.Duration { return t.at }
