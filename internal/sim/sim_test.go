package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("final time = %v, want 30ms", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(2*time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New(1)
	ran := false
	s.After(10*time.Millisecond, func() {
		s.At(time.Millisecond, func() { ran = true }) // in the past
	})
	s.Run()
	if !ran {
		t.Error("past-scheduled event never ran")
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("clock went backwards: %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(3 * time.Millisecond)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("now = %v, want 3ms", s.Now())
	}
	s.RunUntil(10 * time.Millisecond)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("now = %v, want 10ms (advances past last event)", s.Now())
	}
}

func TestRunWhile(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 100; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunWhile(func() bool { return count < 7 })
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
}

func TestTimerFires(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.NewTimer(func() { fired++ })
	tm.Reset(5 * time.Millisecond)
	if !tm.Armed() {
		t.Error("timer not armed after Reset")
	}
	if tm.Deadline() != 5*time.Millisecond {
		t.Errorf("deadline = %v", tm.Deadline())
	}
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStopPreventsFiring(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.NewTimer(func() { fired++ })
	tm.Reset(5 * time.Millisecond)
	s.After(time.Millisecond, func() { tm.Stop() })
	s.Run()
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}
	tm.Stop() // stopping again is a no-op
}

func TestTimerResetSupersedesOldDeadline(t *testing.T) {
	s := New(1)
	var at time.Duration
	tm := s.NewTimer(func() { at = s.Now() })
	tm.Reset(5 * time.Millisecond)
	s.After(time.Millisecond, func() { tm.Reset(20 * time.Millisecond) })
	s.Run()
	if at != 21*time.Millisecond {
		t.Errorf("timer fired at %v, want 21ms", at)
	}
}

func TestTimerRearmInCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tm *Timer
	tm = s.NewTimer(func() {
		count++
		if count < 3 {
			tm.Reset(time.Millisecond)
		}
	})
	tm.Reset(time.Millisecond)
	s.Run()
	if count != 3 {
		t.Errorf("periodic rearm fired %d times, want 3", count)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, s.Rand().Int63n(1000))
			if len(out) < 50 {
				s.After(time.Duration(s.Rand().Int63n(int64(time.Millisecond))), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	s := New(1)
	s.MaxSteps = 10
	var loop func()
	loop = func() { s.After(time.Microsecond, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway simulation did not panic")
		}
	}()
	s.Run()
}

func TestClockMonotoneQuick(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			s.After(time.Duration(d)*time.Microsecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStepsCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Steps() != 5 {
		t.Errorf("steps = %d, want 5", s.Steps())
	}
}
