package sim

import (
	"testing"
	"time"
)

// TestAfterZeroAlloc proves the tentpole property: once the event
// heap has grown to its high-water mark, scheduling with After (a
// pre-built callback) allocates zero bytes per event.
func TestAfterZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm up: grow the heap slice past anything the loop needs.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.After(time.Duration(i)*time.Microsecond, fn)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("After + Run: %.1f allocs/op, want 0", allocs)
	}
}

// TestAtZeroAlloc covers the absolute-time variant.
func TestAtZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.At(s.Now(), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.At(s.Now()+time.Duration(i), fn)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("At + Run: %.1f allocs/op, want 0", allocs)
	}
}

// TestAfterArgZeroAlloc proves the closure-free argument-carrying
// path (used for per-packet delivery) stays allocation-free when the
// callback is reused and the argument is pointer-shaped.
func TestAfterArgZeroAlloc(t *testing.T) {
	s := New(1)
	var sink *int
	fn := func(x any) { sink = x.(*int) }
	arg := new(int)
	for i := 0; i < 64; i++ {
		s.AfterArg(time.Microsecond, fn, arg)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.AfterArg(time.Duration(i), fn, arg)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("AfterArg + Run: %.1f allocs/op, want 0", allocs)
	}
	_ = sink
}

// TestTimerResetZeroAlloc proves Timer.Reset and Timer.Stop schedule
// without allocating in steady state — the property the retransmission
// timer hot path depends on.
func TestTimerResetZeroAlloc(t *testing.T) {
	s := New(1)
	timer := s.NewTimer(func() {})
	// Warm up the heap, including stale generations left by re-Resets.
	for i := 0; i < 64; i++ {
		timer.Reset(time.Duration(i) * time.Microsecond)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			timer.Reset(time.Duration(i+1) * time.Microsecond)
		}
		timer.Stop()
		timer.Reset(time.Microsecond)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("Timer.Reset/Stop + Run: %.1f allocs/op, want 0", allocs)
	}
}

// TestCrossTickZeroAlloc exercises every calendar-queue region — the
// current-tick heap, wheel buckets at many distinct ticks (the shared
// node pool and its freelist), the horizon edge, and the far overflow
// heap — and proves schedule+dispatch stays allocation-free once each
// structure has reached its high-water mark.
func TestCrossTickZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	mixed := func() {
		base := s.Now()
		for i := 0; i < 8; i++ {
			s.At(base, fn)                                          // cur heap
			s.After(time.Duration(i+1)<<tickBits, fn)               // wheel buckets
			s.After(wheelSize<<tickBits, fn)                        // horizon edge
			s.After((wheelSize+100+time.Duration(i))<<tickBits, fn) // far heap
		}
		s.Run()
	}
	mixed() // warm: grows pool, cur, far to high-water
	allocs := testing.AllocsPerRun(100, mixed)
	if allocs != 0 {
		t.Errorf("cross-tick schedule + Run: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkAfter measures raw schedule+dispatch cost of the event
// queue.
func BenchmarkAfter(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkTimerReset measures the timer re-arm path (the RTO timer
// resets on every ACK in the TCP simulation).
func BenchmarkTimerReset(b *testing.B) {
	s := New(1)
	timer := s.NewTimer(func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		timer.Reset(time.Microsecond)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}
