package sim

import (
	"fmt"
	"testing"
	"time"
)

// Edge cases for the self-scheduling (generation-checked) timer
// implementation: the event a Reset pushes stays in the heap even
// after a Stop or a newer Reset, so every path below exercises stale
// events being discarded at dispatch time.

// TestTimerResetInsideOwnCallback re-arms the timer from its own
// firing, the pattern the TCP RTO backoff uses.
func TestTimerResetInsideOwnCallback(t *testing.T) {
	s := New(1)
	var fires []time.Duration
	var timer *Timer
	timer = s.NewTimer(func() {
		fires = append(fires, s.Now())
		if len(fires) < 3 {
			timer.Reset(10 * time.Millisecond)
		}
	})
	timer.Reset(10 * time.Millisecond)
	s.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times at %v, want %d", len(fires), fires, len(want))
	}
	for i, at := range want {
		if fires[i] != at {
			t.Errorf("fire %d at %v, want %v", i, fires[i], at)
		}
	}
	if timer.Armed() {
		t.Error("timer still armed after final fire")
	}
}

// TestTimerStopAfterFire stops a timer that has already fired: a
// no-op that must not disturb a subsequent re-arm.
func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	fired := 0
	timer := s.NewTimer(func() { fired++ })
	timer.Reset(time.Millisecond)
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	timer.Stop() // already fired: must be a safe no-op
	timer.Stop() // and idempotent
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d after post-fire Stop, want 1", fired)
	}
	timer.Reset(time.Millisecond)
	s.Run()
	if fired != 2 {
		t.Errorf("fired %d after re-arm, want 2", fired)
	}
}

// TestTimerInterleavedResetStopDeterminism interleaves two timers'
// Reset/Stop calls with plain events and checks the full execution
// order is exactly the (at, seq) order — i.e. stale timer events
// (cancelled or superseded) occupy their heap slots without ever
// perturbing when live events run.
func TestTimerInterleavedResetStopDeterminism(t *testing.T) {
	run := func() []string {
		s := New(7)
		var order []string
		mark := func(name string) func() {
			return func() { order = append(order, fmt.Sprintf("%s@%v", name, s.Now())) }
		}
		a := s.NewTimer(mark("a"))
		b := s.NewTimer(mark("b"))
		a.Reset(5 * time.Millisecond) // superseded below
		b.Reset(3 * time.Millisecond) // stopped below
		s.After(2*time.Millisecond, mark("e1"))
		a.Reset(4 * time.Millisecond) // wins for a
		b.Stop()
		s.After(4*time.Millisecond, mark("e2")) // same time as a: FIFO by seq
		b.Reset(6 * time.Millisecond)
		s.After(6*time.Millisecond, mark("e3"))
		s.Run()
		return order
	}
	want := []string{"e1@2ms", "a@4ms", "e2@4ms", "b@6ms", "e3@6ms"}
	first := run()
	if len(first) != len(want) {
		t.Fatalf("order %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order %v, want %v", first, want)
		}
	}
	// Determinism: identical runs produce identical order.
	for trial := 0; trial < 3; trial++ {
		again := run()
		for i := range want {
			if again[i] != first[i] {
				t.Fatalf("run %d diverged: %v vs %v", trial, again, first)
			}
		}
	}
}

// TestTimerStopThenResetSameTick stops and immediately re-arms for
// the same deadline: exactly one fire, from the newest generation.
func TestTimerStopThenResetSameTick(t *testing.T) {
	s := New(1)
	fired := 0
	timer := s.NewTimer(func() { fired++ })
	timer.Reset(time.Millisecond)
	timer.Stop()
	timer.Reset(time.Millisecond)
	timer.Stop()
	timer.Reset(time.Millisecond)
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d, want exactly 1", fired)
	}
}
