package telemetry

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceDoc mirrors the trace_event JSON-object format for decoding
// in tests.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// sampleEvents builds a plausible trial ring exercising every span
// reconstruction: a completed download, a refetched download, attack
// phase boundaries, reset rounds, and instants on all five layers.
func sampleEvents() []obs.Event {
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	return []obs.Event{
		{At: ms(1), Kind: obs.EvH2Request, A: 1, B: 10},
		{At: ms(2), Kind: obs.EvNetemDrop, A: 0, B: 1460},
		{At: ms(3), Kind: obs.EvTCPFastRetx, A: 4096, B: 8192},
		{At: ms(5), Kind: obs.EvH2ObjComplete, A: 10, B: 30000},
		{At: ms(6), Kind: obs.EvAtkPhase, A: 2},
		{At: ms(7), Kind: obs.EvH2Request, A: 3, B: 11},
		{At: ms(8), Kind: obs.EvH2Stall, A: 1},
		{At: ms(9), Kind: obs.EvH2ResetRound, A: 1, B: 1},
		{At: ms(10), Kind: obs.EvH2Refetch, A: 11},
		{At: ms(11), Kind: obs.EvH2Request, A: 5, B: 11},
		{At: ms(12), Kind: obs.EvTCPTimeoutRetx, A: 9000, B: 1},
		{At: ms(14), Kind: obs.EvH2ResetRound, A: 1, B: 2},
		{At: ms(15), Kind: obs.EvAtkPhase, A: 3},
		{At: ms(16), Kind: obs.EvPredRun, A: 30000, B: 10},
		{At: ms(17), Kind: obs.EvH2SrvDupCopy, A: 11, B: 1},
	}
}

// TestAppendTraceValidJSON pins the acceptance criterion: the output
// is valid trace_event JSON with one named track per layer.
func TestAppendTraceValidJSON(t *testing.T) {
	out := AppendTrace(nil, sampleEvents(), "seed 7")
	var doc traceDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, out)
	}
	tracks := map[int]string{}
	var processName string
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			continue
		}
		switch e.Name {
		case "thread_name":
			tracks[e.Tid] = e.Args["name"].(string)
		case "process_name":
			processName = e.Args["name"].(string)
		}
	}
	want := map[int]string{1: "netem", 2: "tcp", 3: "h2", 4: "attack", 5: "predictor"}
	if len(tracks) != len(want) {
		t.Fatalf("got %d named tracks %v, want %d", len(tracks), tracks, len(want))
	}
	for tid, name := range want {
		if tracks[tid] != name {
			t.Errorf("tid %d named %q, want %q", tid, tracks[tid], name)
		}
	}
	if processName != "h2attack seed 7" {
		t.Errorf("process name %q", processName)
	}
}

// TestAppendTraceSpans verifies the duration reconstruction: the
// request→complete pair becomes one X span of the right length and
// track, phases and reset rounds tile the timeline, and non-paired
// events appear as thread-scoped instants on their layer's track.
func TestAppendTraceSpans(t *testing.T) {
	out := AppendTrace(nil, sampleEvents(), "seed 7")
	var doc traceDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}

	var spans, instants []traceEvent
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				t.Errorf("span %q has negative dur %v", e.Name, e.Dur)
			}
			spans = append(spans, e)
		case "i":
			if e.S != "t" {
				t.Errorf("instant %q scope %q, want thread", e.Name, e.S)
			}
			instants = append(instants, e)
		}
	}

	find := func(name string, arg string, val float64) *traceEvent {
		for i := range spans {
			if spans[i].Name == name && spans[i].Args[arg] == val {
				return &spans[i]
			}
		}
		return nil
	}

	// Object 10: requested at 1ms, complete at 5ms → 4000µs span on h2.
	if sp := find("h2.obj", "object", 10); sp == nil {
		t.Error("no h2.obj span for object 10")
	} else {
		if sp.Tid != 3 || sp.Ts != 1000 || sp.Dur != 4000 {
			t.Errorf("object 10 span tid=%d ts=%v dur=%v, want 3/1000/4000", sp.Tid, sp.Ts, sp.Dur)
		}
	}
	// Object 11 was requested twice (refetch at 11ms) and never
	// completed → a zero-length h2.obj_incomplete marker at the last
	// request.
	if sp := find("h2.obj_incomplete", "object", 11); sp == nil {
		t.Error("no h2.obj_incomplete span for object 11")
	} else if sp.Ts != 11000 || sp.Dur != 0 {
		t.Errorf("object 11 marker ts=%v dur=%v, want 11000/0", sp.Ts, sp.Dur)
	}

	// Phases: 1 spans [0,6ms), 2 spans [6,15ms), 3 spans [15,17ms].
	for _, want := range []struct{ phase, ts, dur float64 }{
		{1, 0, 6000}, {2, 6000, 9000}, {3, 15000, 2000},
	} {
		sp := find("attack.phase", "phase", want.phase)
		if sp == nil {
			t.Errorf("no span for phase %v", want.phase)
			continue
		}
		if sp.Tid != 4 || sp.Ts != want.ts || sp.Dur != want.dur {
			t.Errorf("phase %v: tid=%d ts=%v dur=%v, want 4/%v/%v",
				want.phase, sp.Tid, sp.Ts, sp.Dur, want.ts, want.dur)
		}
	}

	// Reset rounds tile: round 1 [0,9ms), round 2 [9,14ms).
	if sp := find("h2.reset_round", "round", 1); sp == nil || sp.Ts != 0 || sp.Dur != 9000 {
		t.Errorf("round 1 span = %+v, want ts 0 dur 9000", sp)
	}
	if sp := find("h2.reset_round", "round", 2); sp == nil || sp.Ts != 9000 || sp.Dur != 5000 {
		t.Errorf("round 2 span = %+v, want ts 9000 dur 5000", sp)
	}

	// Instants land on their layer's track.
	wantTid := map[string]int{
		"netem.drop":       1,
		"tcp.fast_retx":    2,
		"tcp.timeout_retx": 2,
		"h2.stall":         3,
		"h2.refetch":       3,
		"h2.srv_dup_copy":  3,
		"attack.pred.run":  5,
	}
	seen := map[string]bool{}
	for _, in := range instants {
		if tid, ok := wantTid[in.Name]; ok {
			seen[in.Name] = true
			if in.Tid != tid {
				t.Errorf("instant %q on tid %d, want %d", in.Name, in.Tid, tid)
			}
		}
	}
	for name := range wantTid {
		if !seen[name] {
			t.Errorf("instant %q missing from trace", name)
		}
	}
}

// TestAppendTraceEmpty verifies an empty ring still renders a valid
// document (metadata only — a passive trial with the filter set).
func TestAppendTraceEmpty(t *testing.T) {
	out := AppendTrace(nil, nil, "seed 0")
	var doc traceDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("empty trace invalid: %v\n%s", err, out)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			t.Errorf("empty trace contains non-metadata event %+v", e)
		}
	}
}

// TestAppendTraceDeterministic pins that the same ring renders the
// same bytes — including the sorted flush of never-completed
// requests, which iterates a map.
func TestAppendTraceDeterministic(t *testing.T) {
	events := sampleEvents()
	// Add several never-completed requests to exercise the sorted
	// flush path.
	for i := int64(0); i < 8; i++ {
		events = append(events, obs.Event{At: time.Duration(20+i) * time.Millisecond, Kind: obs.EvH2Request, A: i, B: 100 + (7 - i)})
	}
	first := string(AppendTrace(nil, events, "seed 1"))
	for i := 0; i < 10; i++ {
		if got := string(AppendTrace(nil, events, "seed 1")); got != first {
			t.Fatal("trace bytes differ across renders of the same events")
		}
	}
}
