package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// startTestServer binds a loopback server with a populated plane and
// tears it down with the test.
func startTestServer(t *testing.T, events func(int64) ([]obs.Event, error)) (*Server, *Gauges, *Tracker) {
	t.Helper()
	g := &Gauges{}
	tr := &Tracker{}
	s, err := StartServer(ServerConfig{Addr: "127.0.0.1:0", Gauges: g, Tracker: tr, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, g, tr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerMetricsAndStatus drives the two sampling endpoints
// against live gauge and tracker values.
func TestServerMetricsAndStatus(t *testing.T) {
	s, g, tr := startTestServer(t, nil)
	g.Set(GWorkers, 8)
	g.Set(GExportQueueDepth, 13)
	g.Add(GTrialsDone, 250)
	tr.SetCampaign("survey", "survey/sites=1000", "", 4000)
	tr.SetProgress(250, 1, 4000, 125.5, 30*time.Second)

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"h2attack_runner_workers 8\n",
		"h2attack_pipeline_export_queue_depth 13\n",
		"h2attack_runner_trials_done_total 250\n",
		"h2attack_trials_done 250\n",
		"h2attack_trials_total 4000\n",
		"h2attack_trials_per_sec 125.5\n",
		"# TYPE h2attack_runner_workers gauge\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, "http://"+s.Addr()+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d", code)
	}
	var st statusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Campaign != "survey" || st.Fingerprint != "survey/sites=1000" {
		t.Errorf("campaign identity = %q/%q", st.Campaign, st.Fingerprint)
	}
	if st.TrialsDone != 250 || st.TrialsTotal != 4000 || st.TrialsFailed != 1 {
		t.Errorf("progress = %d/%d failed %d", st.TrialsDone, st.TrialsTotal, st.TrialsFailed)
	}
	if st.TrialsPerSec != 125.5 {
		t.Errorf("trials/s = %v", st.TrialsPerSec)
	}
	if st.ETASeconds != 30 {
		t.Errorf("eta = %v", st.ETASeconds)
	}
	if st.Gauges["runner_workers"] != 8 || st.Gauges["pipeline_export_queue_depth"] != 13 {
		t.Errorf("gauge snapshot = %v", st.Gauges)
	}
	if st.Runtime.GoMaxProcs < 1 || st.Runtime.Goroutines < 1 {
		t.Errorf("runtime stats = %+v", st.Runtime)
	}
}

// TestServerEvents drives /events in both formats through a stub
// replay hook.
func TestServerEvents(t *testing.T) {
	var gotSeed int64
	s, _, _ := startTestServer(t, func(seed int64) ([]obs.Event, error) {
		gotSeed = seed
		if seed == 666 {
			return nil, fmt.Errorf("no such trial")
		}
		return sampleEvents(), nil
	})

	code, body := get(t, "http://"+s.Addr()+"/events?seed=42")
	if code != http.StatusOK {
		t.Fatalf("/events status %d: %s", code, body)
	}
	if gotSeed != 42 {
		t.Errorf("replay hook saw seed %d", gotSeed)
	}
	if !strings.Contains(body, "h2.request") || !strings.Contains(body, "attack.phase") {
		t.Errorf("text dump missing event kinds:\n%s", body)
	}

	code, body = get(t, "http://"+s.Addr()+"/events?seed=42&format=trace")
	if code != http.StatusOK {
		t.Fatalf("/events trace status %d", code)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace has no events")
	}

	if code, _ = get(t, "http://"+s.Addr()+"/events"); code != http.StatusBadRequest {
		t.Errorf("missing seed: status %d, want 400", code)
	}
	if code, _ = get(t, "http://"+s.Addr()+"/events?seed=666"); code != http.StatusInternalServerError {
		t.Errorf("replay error: status %d, want 500", code)
	}
}

// TestServerEventsDisabled verifies /events 404s when the campaign
// provides no replay hook.
func TestServerEventsDisabled(t *testing.T) {
	s, _, _ := startTestServer(t, nil)
	if code, _ := get(t, "http://"+s.Addr()+"/events?seed=1"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}
