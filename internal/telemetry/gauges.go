// Package telemetry is the wall-clock-side live observability plane
// of the attack stack: lock-free sampled gauges threaded through the
// runner, the export pipeline, and the shard driver, an HTTP status
// server exposing them while a campaign is in flight (/metrics
// Prometheus text, /status JSON, /events flight-recorder views), and
// a Perfetto/Chrome trace_event converter that renders one trial's
// flight-recorder ring as a per-layer timeline.
//
// The design constraint is the inverse of internal/obs: obs is the
// deterministic side (sim-domain counters whose snapshots must be
// byte-identical at any worker count), telemetry is the wall side —
// everything here is sampled, racy-by-design reads of atomic cells,
// and nothing it observes may ever feed back into exported bytes.
// The golden sweeps, survey JSONL, and shard bundles are
// byte-identical with the plane on or off; the CI telemetry smoke
// pins that.
//
// Zero cost when disabled is the other contract, shared with
// obs.Sink: every instrumented layer holds a *Gauges that is nil by
// default, and every method on a nil *Gauges is a nil-check and a
// return — no allocation, no atomic traffic. When enabled, updates
// are single atomic operations on preallocated cells; still
// allocation-free (pinned by TestGaugesZeroAlloc).
package telemetry

import "sync/atomic"

// GaugeID enumerates every live gauge in the plane. The value is an
// array index into the Gauges cell block; gaugeInfos below is the
// export schema. Gauges are grouped by the layer that updates them.
type GaugeID uint8

const (
	// runner (internal/runner.StreamWith): worker-pool and reorder-
	// ring occupancy.
	GWorkers      GaugeID = iota // worker goroutines in the pool
	GWorkersBusy                 // workers currently executing a trial chunk
	GBusyNanos                   // cumulative wall nanoseconds spent inside trial functions
	GTrialsDone                  // cumulative trials completed (including failed)
	GClaims                      // cumulative chunk claims handed to workers
	GInFlight                    // trials claimed but not yet emitted
	GRingCapacity                // reorder ring capacity (the admission window)
	GRingParked                  // completed trials parked in the ring awaiting an earlier index

	// pipeline (internal/pipeline): export-stage backlog and
	// checkpoint lag.
	GExportQueueDepth     // trials + checkpoint tokens queued for the export writer
	GExportQueueHighWater // maximum export-queue depth seen this campaign
	GWriteBehindPending   // write-behind chunks queued for the flusher
	GExportBytes          // cumulative bytes handed to the results writer
	GExportedTrials       // trials emitted to the export stage so far (campaign index)
	GCkptTrials           // campaign index recorded by the last checkpoint
	GCkptBytes            // GExportBytes at the last checkpoint

	// shard (cmd/h2attack -shard): this process's slice of the
	// campaign.
	GShardIndex // 1-based shard index
	GShardCount // total shard count
	GRangeStart // first trial index of this shard's range
	GRangeEnd   // one past the last trial index of this shard's range
	GRangeDone  // trials completed in the range by this invocation

	gaugeCount // number of gauges; must stay last
)

// GaugeCount is the number of gauges in the schema (the length of a
// Snapshot).
const GaugeCount = int(gaugeCount)

// gaugeInfo is one gauge's export schema row: the Prometheus metric
// name (the "h2attack_" prefix is added at render time) and its HELP
// string.
type gaugeInfo struct {
	name string
	help string
}

// gaugeInfos is the export schema, one row per GaugeID in declaration
// order.
var gaugeInfos = [gaugeCount]gaugeInfo{
	GWorkers:      {"runner_workers", "Worker goroutines in the trial pool."},
	GWorkersBusy:  {"runner_workers_busy", "Workers currently executing a trial chunk."},
	GBusyNanos:    {"runner_busy_nanos_total", "Cumulative wall nanoseconds spent inside trial functions."},
	GTrialsDone:   {"runner_trials_done_total", "Trials completed, including failed ones."},
	GClaims:       {"runner_chunk_claims_total", "Chunk claims handed to workers."},
	GInFlight:     {"runner_inflight_trials", "Trials claimed but not yet emitted."},
	GRingCapacity: {"runner_reorder_ring_capacity", "Reorder ring capacity (admission window)."},
	GRingParked:   {"runner_reorder_ring_parked", "Completed trials parked awaiting an earlier index."},

	GExportQueueDepth:     {"pipeline_export_queue_depth", "Items queued for the export writer goroutine."},
	GExportQueueHighWater: {"pipeline_export_queue_high_water", "Maximum export-queue depth seen this campaign."},
	GWriteBehindPending:   {"pipeline_write_behind_chunks", "Write-behind chunks queued for the flusher."},
	GExportBytes:          {"pipeline_export_bytes", "Bytes handed to the results writer."},
	GExportedTrials:       {"pipeline_exported_trials", "Trials emitted to the export stage (campaign index)."},
	GCkptTrials:           {"pipeline_checkpoint_trials", "Campaign index recorded by the last checkpoint."},
	GCkptBytes:            {"pipeline_checkpoint_bytes", "Export bytes recorded by the last checkpoint."},

	GShardIndex: {"shard_index", "This process's 1-based shard index."},
	GShardCount: {"shard_count", "Total shard count of the fan-out."},
	GRangeStart: {"shard_range_start", "First trial index of this shard's range."},
	GRangeEnd:   {"shard_range_end", "One past the last trial index of this shard's range."},
	GRangeDone:  {"shard_range_done", "Trials completed in the range by this invocation."},
}

// Name returns the gauge's Prometheus metric name (without the
// "h2attack_" prefix).
func (g GaugeID) Name() string {
	if g < gaugeCount {
		return gaugeInfos[g].name
	}
	return "gauge(?)"
}

// Help returns the gauge's HELP string.
func (g GaugeID) Help() string {
	if g < gaugeCount {
		return gaugeInfos[g].help
	}
	return ""
}

// Gauges is the live gauge block: one atomic cell per GaugeID,
// preallocated, updated lock-free from the runner's and pipeline's
// hot paths and sampled racily by the status server. A nil *Gauges is
// the disabled plane — every method nil-checks and returns, so
// instrumented layers call unconditionally (the obs.Sink contract).
//
// Updates are plain atomic stores/adds with no cross-cell
// consistency: a /metrics scrape may observe one cell mid-batch
// relative to another. That is fine — the plane reports load, not
// ledger truth; the deterministic ledgers live in internal/obs.
type Gauges struct {
	cells [gaugeCount]atomic.Int64
}

// Set stores v into the gauge.
func (g *Gauges) Set(id GaugeID, v int64) {
	if g != nil {
		g.cells[id].Store(v)
	}
}

// Add adds delta to the gauge and returns the new value (0 when
// disabled).
func (g *Gauges) Add(id GaugeID, delta int64) int64 {
	if g == nil {
		return 0
	}
	return g.cells[id].Add(delta)
}

// SetMax raises the gauge to v if v is larger (the high-water update).
func (g *Gauges) SetMax(id GaugeID, v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.cells[id].Load()
		if v <= cur || g.cells[id].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the gauge's current value (0 when disabled).
func (g *Gauges) Load(id GaugeID) int64 {
	if g == nil {
		return 0
	}
	return g.cells[id].Load()
}

// Snapshot copies every cell into a plain array — the sampled view
// the status server renders. Cells are read individually (no global
// consistency), which is the plane's documented semantics.
func (g *Gauges) Snapshot() [GaugeCount]int64 {
	var out [GaugeCount]int64
	if g == nil {
		return out
	}
	for i := range out {
		out[i] = g.cells[i].Load()
	}
	return out
}
