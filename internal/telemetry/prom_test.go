package telemetry

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// referenceMetrics is the naive fmt.Sprintf rendering of the
// exposition — the semantic reference the append encoder is pinned
// against (the same reference-vs-fast-path structure as the jsonenc
// equivalence suites).
func referenceMetrics(s *MetricsSnapshot) string {
	var b strings.Builder
	line := func(name, help string, value string) {
		fmt.Fprintf(&b, "# HELP h2attack_%s %s\n", name, help)
		fmt.Fprintf(&b, "# TYPE h2attack_%s gauge\n", name)
		fmt.Fprintf(&b, "h2attack_%s %s\n", name, value)
	}
	for id := GaugeID(0); id < gaugeCount; id++ {
		line(id.Name(), id.Help(), fmt.Sprintf("%d", s.Gauges[id]))
	}
	for i := range promExtras {
		e := &promExtras[i]
		if e.isFloat {
			line(e.name, e.help, fmt.Sprintf("%g", e.fltVal(s)))
		} else {
			line(e.name, e.help, fmt.Sprintf("%d", e.intVal(s)))
		}
	}
	return b.String()
}

// TestAppendMetricsMatchesReference pins the append encoder byte-for-
// byte against the fmt reference across representative snapshots,
// including awkward float values (%g switches to exponent form, and
// strconv's 'g'/-1 must agree exactly).
func TestAppendMetricsMatchesReference(t *testing.T) {
	snaps := []MetricsSnapshot{
		{}, // all zeros
		{
			TrialsDone: 12345, TrialsTotal: 100000,
			TrialsPerSec: 1234.5678901, UptimeSeconds: 0.25,
			Goroutines: 17, HeapAllocBytes: 1 << 30, GCCycles: 42, GoMaxProcs: 8,
		},
		{
			TrialsPerSec:  1e21, // exponent form in %g
			UptimeSeconds: math.SmallestNonzeroFloat64,
		},
		{
			TrialsPerSec:  0.000001234,
			UptimeSeconds: 123456789.123456,
		},
	}
	// Populate every gauge with a distinct value, including negatives
	// (a gauge briefly reads negative only through sampling races, but
	// the encoder must render whatever the cells hold).
	for i := range snaps[1].Gauges {
		snaps[1].Gauges[i] = int64(i*i) - 3
	}
	for i, s := range snaps {
		got := string(AppendMetrics(nil, &s))
		want := referenceMetrics(&s)
		if got != want {
			t.Errorf("snapshot %d: append encoder diverges from fmt reference\n got: %q\nwant: %q", i, got, want)
		}
	}
}

// TestAppendMetricsWellFormed sanity-checks the exposition shape the
// CI smoke also greps for: HELP/TYPE pairs precede each sample and
// every sample line parses as "name value".
func TestAppendMetricsWellFormed(t *testing.T) {
	s := MetricsSnapshot{TrialsDone: 5, TrialsTotal: 10, TrialsPerSec: 2.5}
	text := string(AppendMetrics(nil, &s))
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if len(lines)%3 != 0 {
		t.Fatalf("exposition length %d not a multiple of HELP/TYPE/sample triples", len(lines))
	}
	for i := 0; i < len(lines); i += 3 {
		if !strings.HasPrefix(lines[i], "# HELP h2attack_") {
			t.Errorf("line %d: want HELP, got %q", i, lines[i])
		}
		if !strings.HasPrefix(lines[i+1], "# TYPE h2attack_") || !strings.HasSuffix(lines[i+1], " gauge") {
			t.Errorf("line %d: want TYPE gauge, got %q", i+1, lines[i+1])
		}
		fields := strings.Fields(lines[i+2])
		if len(fields) != 2 || !strings.HasPrefix(fields[0], "h2attack_") {
			t.Errorf("line %d: malformed sample %q", i+2, lines[i+2])
		}
	}
}
