package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server is the live status endpoint of a running campaign
// (h2attack -status ADDR): a plain net/http server exposing
//
//	/metrics          Prometheus text exposition of the gauge plane
//	/status           JSON campaign status (fingerprint, progress,
//	                  trials/s, ETA, gauges, Go runtime stats)
//	/events?seed=N    one trial's flight-recorder ring, replayed on
//	                  demand (text dump, or ?format=trace for the
//	                  Perfetto trace_event JSON)
//
// The server only ever samples: it reads the atomic gauge cells and
// the tracker snapshot, and the /events replay runs a fresh trial in
// its own world — nothing it does can perturb the campaign's
// deterministic output. Shutdown is graceful and tied to the CLI's
// SIGINT path: in-flight scrapes finish, then the listener closes.
type Server struct {
	cfg      ServerConfig
	srv      *http.Server
	listener net.Listener
	started  time.Time

	// scrapeBuf reuses the /metrics render buffer across scrapes
	// (one buffer is plenty at human scrape rates; the mutex also
	// serializes concurrent scrapes onto it).
	scrapeMu  sync.Mutex
	scrapeBuf []byte

	// replayMu serializes /events replays: the replay hook reuses one
	// trial world and recorder.
	replayMu sync.Mutex
}

// ServerConfig wires a Server to the campaign.
type ServerConfig struct {
	// Addr is the listen address (":8080", "127.0.0.1:0"; :0 picks a
	// free port — read the result from Server.Addr).
	Addr string

	// Gauges is the live gauge block the campaign updates (may be
	// nil; endpoints then render zeros).
	Gauges *Gauges

	// Tracker carries campaign identity and progress (may be nil).
	Tracker *Tracker

	// Events, when non-nil, replays trial seed and returns its
	// flight-recorder events — trials are pure functions of their
	// seed, so the replay reproduces exactly the ring the campaign's
	// own execution of that trial had. Nil disables /events (404).
	Events func(seed int64) ([]obs.Event, error)
}

// StartServer binds cfg.Addr and serves in a background goroutine.
// The returned server is already accepting; check Addr for the bound
// address when cfg.Addr used port 0.
func StartServer(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, listener: ln, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/events", s.handleEvents)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed is the normal Shutdown result; anything else
		// means the listener died, which the campaign must survive —
		// telemetry is best-effort by design, so the error is dropped.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests get until the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// snapshot assembles one MetricsSnapshot from the gauges, tracker,
// and Go runtime.
func (s *Server) snapshot() (MetricsSnapshot, TrackerSnapshot) {
	ts := s.cfg.Tracker.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MetricsSnapshot{
		Gauges:         s.cfg.Gauges.Snapshot(),
		TrialsDone:     int64(ts.Done),
		TrialsTotal:    int64(ts.Total),
		TrialsPerSec:   ts.TrialsPerSec,
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Goroutines:     int64(runtime.NumGoroutine()),
		HeapAllocBytes: int64(ms.HeapAlloc),
		GCCycles:       int64(ms.NumGC),
		GoMaxProcs:     int64(runtime.GOMAXPROCS(0)),
	}, ts
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, _ := s.snapshot()
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()
	s.scrapeBuf = AppendMetrics(s.scrapeBuf[:0], &snap)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(s.scrapeBuf)
}

// statusResponse is the /status JSON document. Wall-clock values
// throughout; nothing here feeds back into campaign output, so plain
// encoding/json is fine (no byte-identity contract to uphold).
type statusResponse struct {
	Campaign     string  `json:"campaign"`
	Fingerprint  string  `json:"fingerprint,omitempty"`
	Shard        string  `json:"shard,omitempty"`
	TrialsDone   int     `json:"trials_done"`
	TrialsFailed int     `json:"trials_failed"`
	TrialsTotal  int     `json:"trials_total"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	ETASeconds   float64 `json:"eta_seconds"`

	UptimeSeconds float64 `json:"uptime_seconds"`

	Gauges map[string]int64 `json:"gauges"`

	Runtime struct {
		GoVersion      string `json:"go_version"`
		Goroutines     int64  `json:"goroutines"`
		HeapAllocBytes int64  `json:"heap_alloc_bytes"`
		GCCycles       int64  `json:"gc_cycles"`
		GoMaxProcs     int64  `json:"gomaxprocs"`
	} `json:"runtime"`
}

// handleStatus renders the JSON campaign status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ts := s.snapshot()
	resp := statusResponse{
		Campaign:      ts.Campaign,
		Fingerprint:   ts.Fingerprint,
		Shard:         ts.Shard,
		TrialsDone:    ts.Done,
		TrialsFailed:  ts.Failed,
		TrialsTotal:   ts.Total,
		TrialsPerSec:  ts.TrialsPerSec,
		ETASeconds:    ts.Remaining.Seconds(),
		UptimeSeconds: snap.UptimeSeconds,
		Gauges:        make(map[string]int64, GaugeCount),
	}
	for id := GaugeID(0); id < gaugeCount; id++ {
		resp.Gauges[id.Name()] = snap.Gauges[id]
	}
	resp.Runtime.GoVersion = runtime.Version()
	resp.Runtime.Goroutines = snap.Goroutines
	resp.Runtime.HeapAllocBytes = snap.HeapAllocBytes
	resp.Runtime.GCCycles = snap.GCCycles
	resp.Runtime.GoMaxProcs = snap.GoMaxProcs
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// handleEvents replays one trial's flight recorder. ?seed=N selects
// the trial; ?format=trace switches from the text dump to the
// Perfetto trace_event JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Events == nil {
		http.Error(w, "event replay not available for this campaign", http.StatusNotFound)
		return
	}
	seed, err := strconv.ParseInt(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, "missing or malformed ?seed=N", http.StatusBadRequest)
		return
	}
	s.replayMu.Lock()
	events, err := s.cfg.Events(seed)
	s.replayMu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("format") == "trace" {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(AppendTrace(nil, events, "seed "+strconv.FormatInt(seed, 10)))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, e := range events {
		fmt.Fprintf(w, "%12s  %-16s a=%-8d b=%d\n", e.At, e.Kind, e.A, e.B)
	}
}
