package telemetry

import (
	"sync"
	"testing"
)

// TestGaugesZeroAlloc pins the plane's cost contract: gauge updates
// allocate nothing — on the disabled (nil-receiver) path, where they
// must be pure nil-checks, and on the enabled path, where they are
// single atomic operations on preallocated cells. The disabled pin is
// what lets the runner and pipeline call unconditionally from their
// hot paths (the obs.Sink contract).
func TestGaugesZeroAlloc(t *testing.T) {
	var disabled *Gauges
	enabled := &Gauges{}
	for _, tc := range []struct {
		name string
		g    *Gauges
	}{
		{"disabled", disabled},
		{"enabled", enabled},
	} {
		g := tc.g
		if n := testing.AllocsPerRun(100, func() {
			g.Set(GWorkers, 8)
			g.Add(GTrialsDone, 1)
			g.SetMax(GExportQueueHighWater, 5)
			_ = g.Load(GInFlight)
		}); n != 0 {
			t.Errorf("%s gauges: %v allocs per update batch, want 0", tc.name, n)
		}
	}
	// Snapshot copies into a stack array; it must not allocate either
	// (the status server calls it per scrape, but the pin keeps it
	// honest for any future caller).
	if n := testing.AllocsPerRun(100, func() {
		_ = enabled.Snapshot()
	}); n != 0 {
		t.Errorf("Snapshot: %v allocs, want 0", n)
	}
}

// TestGaugesDisabledReads verifies the nil receiver reads as zero
// everywhere instead of panicking.
func TestGaugesDisabledReads(t *testing.T) {
	var g *Gauges
	if v := g.Load(GWorkers); v != 0 {
		t.Errorf("nil Load = %d, want 0", v)
	}
	if v := g.Add(GTrialsDone, 3); v != 0 {
		t.Errorf("nil Add = %d, want 0", v)
	}
	if s := g.Snapshot(); s != ([GaugeCount]int64{}) {
		t.Errorf("nil Snapshot = %v, want zeros", s)
	}
}

// TestGaugesSetMax verifies the high-water update under contention:
// the cell must end at the maximum of all attempted values.
func TestGaugesSetMax(t *testing.T) {
	g := &Gauges{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for v := int64(0); v < 1000; v++ {
				g.SetMax(GExportQueueHighWater, base+v)
			}
		}(int64(w * 100))
	}
	wg.Wait()
	if got := g.Load(GExportQueueHighWater); got != 7*100+999 {
		t.Errorf("SetMax high water = %d, want %d", got, 7*100+999)
	}
	g.SetMax(GExportQueueHighWater, 5)
	if got := g.Load(GExportQueueHighWater); got != 7*100+999 {
		t.Errorf("SetMax lowered the high water to %d", got)
	}
}

// TestGaugeNames verifies every gauge has a distinct schema row —
// a duplicated name would silently merge two series in /metrics.
func TestGaugeNames(t *testing.T) {
	seen := map[string]GaugeID{}
	for id := GaugeID(0); id < gaugeCount; id++ {
		name := id.Name()
		if name == "" || name == "gauge(?)" {
			t.Errorf("gauge %d has no name", id)
		}
		if id.Help() == "" {
			t.Errorf("gauge %s has no help text", name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("gauge name %q used by both %d and %d", name, prev, id)
		}
		seen[name] = id
	}
}
