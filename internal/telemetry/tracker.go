package telemetry

import (
	"sync"
	"time"
)

// Tracker is the campaign-level side of the plane: which campaign is
// running (name, fingerprint, total trials) and its latest progress
// snapshot (done count, throughput, ETA). The runner's OnProgress
// callback feeds it plain values — the telemetry package deliberately
// does not import internal/runner (runner imports telemetry for the
// gauges, and the dependency must stay one-way) — and the status
// server samples it per request.
//
// Unlike the Gauges cells, tracker updates set several fields that
// must be read consistently (done/total/rate belong to one progress
// callback), so it is a small mutex-guarded struct rather than
// independent atomics. Update rate is one progress callback per
// trial; scrape rate is human; contention is irrelevant.
type Tracker struct {
	mu sync.Mutex
	s  TrackerSnapshot
}

// TrackerSnapshot is one consistent view of the tracked campaign.
type TrackerSnapshot struct {
	// Campaign is the campaign name ("survey", "table1.delay", or a
	// CLI-level label covering several sweeps).
	Campaign string
	// Fingerprint is the campaign's generator fingerprint, when known
	// — the same string the checkpoint verifies on resume.
	Fingerprint string
	// Shard is the "i/N" shard spec when running in shard mode
	// (empty otherwise).
	Shard string

	// Done/Failed/Total count trials of the current run portion;
	// Total is 0 until a campaign starts.
	Done   int
	Failed int
	Total  int
	// TrialsPerSec and Remaining mirror runner.Progress — the one
	// code path both the -progress line and /status report from.
	TrialsPerSec float64
	Remaining    time.Duration

	// Started is when the tracker first saw this campaign.
	Started time.Time
}

// SetCampaign records the identity of the campaign now running and
// resets the progress counts. Passing totals <= 0 keeps the previous
// total (used when identity is known before the trial count).
func (t *Tracker) SetCampaign(name, fingerprint, shard string, total int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.s.Campaign, t.s.Fingerprint, t.s.Shard = name, fingerprint, shard
	if total > 0 {
		t.s.Total = total
	}
	t.s.Done, t.s.Failed = 0, 0
	t.s.TrialsPerSec, t.s.Remaining = 0, 0
	t.s.Started = time.Now()
	t.mu.Unlock()
}

// SetProgress records the latest progress callback's values.
func (t *Tracker) SetProgress(done, failed, total int, trialsPerSec float64, remaining time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.s.Done, t.s.Failed = done, failed
	if total > 0 {
		t.s.Total = total
	}
	t.s.TrialsPerSec, t.s.Remaining = trialsPerSec, remaining
	t.mu.Unlock()
}

// Snapshot returns one consistent copy of the tracked state.
func (t *Tracker) Snapshot() TrackerSnapshot {
	if t == nil {
		return TrackerSnapshot{}
	}
	t.mu.Lock()
	s := t.s
	t.mu.Unlock()
	return s
}
