package telemetry

import "strconv"

// Prometheus text exposition (version 0.0.4) of the live plane,
// rendered with the same append-encoder style as internal/jsonenc: a
// caller-owned []byte grows through strconv.Append* primitives, no
// fmt, no intermediate strings. /metrics responses are built into a
// reused buffer, so a scrape steady-state allocates only what
// net/http itself needs.
//
// Every metric is prefixed "h2attack_". Gauge metrics come straight
// from the Gauges schema (gaugeInfos); the campaign- and runtime-
// level series are listed in promExtras below. Values are rendered
// with strconv.AppendFloat(... 'g', -1, 64) for floats — the exact
// formatting of fmt.Sprintf("%g"), which the equivalence test pins —
// and strconv.AppendInt for integers.

// MetricsSnapshot is the input to AppendMetrics: one sampled view of
// the plane, assembled by the status server from the Tracker, the
// Gauges block, and runtime.ReadMemStats. A pure value type so the
// encoder is testable without a live campaign.
type MetricsSnapshot struct {
	// Gauges is the sampled gauge block (Gauges.Snapshot()).
	Gauges [GaugeCount]int64

	// TrialsDone/TrialsTotal/TrialsPerSec describe campaign progress
	// (Tracker values; TrialsPerSec is runner.Progress.TrialsPerSec).
	TrialsDone   int64
	TrialsTotal  int64
	TrialsPerSec float64

	// UptimeSeconds is the wall time since the status server started.
	UptimeSeconds float64

	// Goroutines, HeapAllocBytes, GCCycles, GoMaxProcs are the Go
	// runtime stats surfaced alongside the campaign gauges.
	Goroutines     int64
	HeapAllocBytes int64
	GCCycles       int64
	GoMaxProcs     int64
}

// promExtra is one non-gauge series in the exposition: a name, HELP
// text, and an accessor into the snapshot. Float-valued series set
// isFloat; the rest render as integers.
type promExtra struct {
	name    string
	help    string
	isFloat bool
	intVal  func(*MetricsSnapshot) int64
	fltVal  func(*MetricsSnapshot) float64
}

// promExtras is the campaign/runtime section of the exposition, in
// output order after the gauge block.
var promExtras = []promExtra{
	{name: "trials_done", help: "Trials completed in the current campaign.",
		intVal: func(s *MetricsSnapshot) int64 { return s.TrialsDone }},
	{name: "trials_total", help: "Total trials in the current campaign.",
		intVal: func(s *MetricsSnapshot) int64 { return s.TrialsTotal }},
	{name: "trials_per_sec", help: "Wall-clock trial throughput (runner.Progress.TrialsPerSec).", isFloat: true,
		fltVal: func(s *MetricsSnapshot) float64 { return s.TrialsPerSec }},
	{name: "uptime_seconds", help: "Seconds since the status server started.", isFloat: true,
		fltVal: func(s *MetricsSnapshot) float64 { return s.UptimeSeconds }},
	{name: "go_goroutines", help: "Number of goroutines.",
		intVal: func(s *MetricsSnapshot) int64 { return s.Goroutines }},
	{name: "go_heap_alloc_bytes", help: "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		intVal: func(s *MetricsSnapshot) int64 { return s.HeapAllocBytes }},
	{name: "go_gc_cycles_total", help: "Completed GC cycles (runtime.MemStats.NumGC).",
		intVal: func(s *MetricsSnapshot) int64 { return s.GCCycles }},
	{name: "go_gomaxprocs", help: "GOMAXPROCS at sample time.",
		intVal: func(s *MetricsSnapshot) int64 { return s.GoMaxProcs }},
}

// appendPromHeader appends the # HELP and # TYPE comment lines for
// one metric. Every series in the plane is conceptually a sampled
// gauge (even the *_total cumulative cells are resettable per
// campaign), so the TYPE is always "gauge".
func appendPromHeader(dst []byte, name, help string) []byte {
	dst = append(dst, "# HELP h2attack_"...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, help...)
	dst = append(dst, "\n# TYPE h2attack_"...)
	dst = append(dst, name...)
	dst = append(dst, " gauge\n"...)
	return dst
}

// appendPromInt appends one "h2attack_<name> <value>" sample line.
func appendPromInt(dst []byte, name string, v int64) []byte {
	dst = append(dst, "h2attack_"...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\n')
}

// appendPromFloat is appendPromInt for float-valued series; 'g'
// shortest-form formatting, matching fmt's %g verb exactly (the
// equivalence test pins this).
func appendPromFloat(dst []byte, name string, v float64) []byte {
	dst = append(dst, "h2attack_"...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	return append(dst, '\n')
}

// AppendMetrics renders the full Prometheus text exposition of one
// snapshot into dst and returns the extended slice: first every gauge
// in schema order, then the campaign/runtime extras.
func AppendMetrics(dst []byte, s *MetricsSnapshot) []byte {
	for id := GaugeID(0); id < gaugeCount; id++ {
		info := &gaugeInfos[id]
		dst = appendPromHeader(dst, info.name, info.help)
		dst = appendPromInt(dst, info.name, s.Gauges[id])
	}
	for i := range promExtras {
		e := &promExtras[i]
		dst = appendPromHeader(dst, e.name, e.help)
		if e.isFloat {
			dst = appendPromFloat(dst, e.name, e.fltVal(s))
		} else {
			dst = appendPromInt(dst, e.name, e.intVal(s))
		}
	}
	return dst
}
