package telemetry

import (
	"slices"
	"strconv"

	"repro/internal/obs"
)

// Perfetto/Chrome trace_event conversion of one trial's flight-
// recorder ring: the timeline view of an attack. The output is the
// JSON-object form of the trace_event format —
// {"traceEvents":[...]} — loadable in ui.perfetto.dev or
// chrome://tracing, with one named track ("thread") per simulated
// layer:
//
//	tid 1  netem      packet drops
//	tid 2  tcp        retransmissions, broken connections
//	tid 3  h2         request→completion spans, stalls, refetches,
//	                  duplicate server copies
//	tid 4  attack     phase spans and reset-round spans
//	tid 5  predictor  inference-run instants
//
// Point events render as instants (ph "i", thread-scoped).
// Durations are reconstructed from event pairs:
//
//   - an h2.request (B = object) opens a span closed by the
//     h2.obj_complete carrying the same object ID (A) — the object's
//     download time, the signal the §V attack stretches;
//   - attack.phase boundary events split the trial into phase spans
//     (phase 1 runs from the trace start to the first boundary);
//   - each h2.reset_round closes a round span from the previous
//     round boundary, so the Fig. 5 reset cadence reads directly off
//     the track.
//
// Timestamps are microseconds of simulation time (the trace_event
// unit), rendered with fixed 3-decimal precision — exactly the
// nanosecond resolution of the simulated clock.
type traceLayer int

const (
	layerNetem traceLayer = iota + 1
	layerTCP
	layerH2
	layerAttack
	layerPredictor
)

// traceLayerNames names the per-layer tracks, indexed by traceLayer.
var traceLayerNames = [...]string{
	layerNetem:     "netem",
	layerTCP:       "tcp",
	layerH2:        "h2",
	layerAttack:    "attack",
	layerPredictor: "predictor",
}

// layerOf maps an event kind to its track.
func layerOf(k obs.EventKind) traceLayer {
	switch k {
	case obs.EvNetemDrop:
		return layerNetem
	case obs.EvTCPFastRetx, obs.EvTCPTimeoutRetx, obs.EvTCPBroken:
		return layerTCP
	case obs.EvAtkPhase:
		return layerAttack
	case obs.EvPredRun:
		return layerPredictor
	default:
		return layerH2
	}
}

// appendTS appends a trace timestamp: nanoseconds converted to the
// format's microsecond unit, fixed 3 decimals (exact for the
// integer-nanosecond sim clock).
func appendTS(dst []byte, ns int64) []byte {
	return strconv.AppendFloat(dst, float64(ns)/1e3, 'f', 3, 64)
}

// appendTraceStr appends a JSON string. Track and event names are
// ASCII identifiers from the tables above, so plain quoting suffices;
// caller-supplied trial names go through the same path and must not
// contain quotes or control characters (the CLI passes "seed N").
func appendTraceStr(dst []byte, s string) []byte {
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// appendMeta appends one ph:"M" metadata event naming a process or
// thread.
func appendMeta(dst []byte, tid int, key, name string) []byte {
	dst = append(dst, `{"ph":"M","pid":1,"tid":`...)
	dst = strconv.AppendInt(dst, int64(tid), 10)
	dst = append(dst, `,"name":"`...)
	dst = append(dst, key...)
	dst = append(dst, `","args":{"name":`...)
	dst = appendTraceStr(dst, name)
	return append(dst, "}}"...)
}

// appendEventHead opens one trace event up to and including its
// timestamp: {"ph":"<ph>","pid":1,"tid":T,"ts":...
func appendEventHead(dst []byte, ph byte, layer traceLayer, tsNanos int64) []byte {
	dst = append(dst, `{"ph":"`...)
	dst = append(dst, ph)
	dst = append(dst, `","pid":1,"tid":`...)
	dst = strconv.AppendInt(dst, int64(layer), 10)
	dst = append(dst, `,"ts":`...)
	return appendTS(dst, tsNanos)
}

// appendInstant appends a thread-scoped instant event with the
// recorder's raw a/b payload as args.
func appendInstant(dst []byte, layer traceLayer, e obs.Event) []byte {
	dst = appendEventHead(dst, 'i', layer, int64(e.At))
	dst = append(dst, `,"s":"t","name":`...)
	dst = appendTraceStr(dst, e.Kind.String())
	dst = append(dst, `,"args":{"a":`...)
	dst = strconv.AppendInt(dst, e.A, 10)
	dst = append(dst, `,"b":`...)
	dst = strconv.AppendInt(dst, e.B, 10)
	return append(dst, "}}"...)
}

// appendSpan appends a ph:"X" complete event covering
// [startNanos, endNanos) with up to two named integer args.
func appendSpan(dst []byte, layer traceLayer, name string, startNanos, endNanos int64, argNames [2]string, argVals [2]int64, nargs int) []byte {
	dst = appendEventHead(dst, 'X', layer, startNanos)
	dst = append(dst, `,"dur":`...)
	dst = appendTS(dst, endNanos-startNanos)
	dst = append(dst, `,"name":`...)
	dst = appendTraceStr(dst, name)
	dst = append(dst, `,"args":{`...)
	for i := 0; i < nargs; i++ {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '"')
		dst = append(dst, argNames[i]...)
		dst = append(dst, `":`...)
		dst = strconv.AppendInt(dst, argVals[i], 10)
	}
	return append(dst, "}}"...)
}

// AppendTrace renders events (one trial's flight-recorder dump, in
// arrival order — which is simulation-time order) as a trace_event
// JSON document and returns dst extended. name labels the trace's
// process track (e.g. "survey seed 7").
func AppendTrace(dst []byte, events []obs.Event, name string) []byte {
	dst = append(dst, `{"traceEvents":[`...)
	dst = appendMeta(dst, 0, "process_name", "h2attack "+name)
	for tid := layerNetem; tid <= layerPredictor; tid++ {
		dst = append(dst, ',')
		dst = appendMeta(dst, int(tid), "thread_name", traceLayerNames[tid])
	}

	// endNanos closes the open-ended spans (final attack phase, an
	// unfinished download rendered as zero-length at its request).
	var endNanos int64
	if len(events) > 0 {
		endNanos = int64(events[len(events)-1].At)
	}

	// pendingReq maps object ID → request timestamp for open
	// downloads; pendingStream carries the request's stream ID along.
	pendingReq := map[int64]int64{}
	pendingStream := map[int64]int64{}
	phase := int64(1) // current attack phase; trials start in phase 1
	phaseStart := int64(0)
	roundStart := int64(0)
	sawPhase := false

	for _, e := range events {
		at := int64(e.At)
		switch e.Kind {
		case obs.EvH2Request:
			// Opens an object-download span; B is the object ID. A
			// refetch of the same object replaces the open request —
			// the completion pairs with the most recent fetch.
			pendingReq[e.B] = at
			pendingStream[e.B] = e.A
		case obs.EvH2ObjComplete:
			start, open := pendingReq[e.A]
			if !open {
				dst = append(dst, ',')
				dst = appendInstant(dst, layerH2, e)
				continue
			}
			delete(pendingReq, e.A)
			stream := pendingStream[e.A]
			delete(pendingStream, e.A)
			dst = append(dst, ',')
			dst = appendSpan(dst, layerH2, "h2.obj", start, at,
				[2]string{"object", "stream"}, [2]int64{e.A, stream}, 2)
		case obs.EvAtkPhase:
			// Close the span of the phase we are leaving; A is the
			// phase being entered.
			dst = append(dst, ',')
			dst = appendSpan(dst, layerAttack, "attack.phase", phaseStart, at,
				[2]string{"phase"}, [2]int64{phase}, 1)
			phase, phaseStart, sawPhase = e.A, at, true
		case obs.EvH2ResetRound:
			dst = append(dst, ',')
			dst = appendSpan(dst, layerH2, "h2.reset_round", roundStart, at,
				[2]string{"round", "streams_reset"}, [2]int64{e.B, e.A}, 2)
			roundStart = at
		default:
			dst = append(dst, ',')
			dst = appendInstant(dst, layerOf(e.Kind), e)
		}
	}

	// Close what's still open: the current attack phase (only when
	// the trial had phase structure at all — a passive trial renders
	// no attack track) and any never-completed downloads.
	if sawPhase {
		dst = append(dst, ',')
		dst = appendSpan(dst, layerAttack, "attack.phase", phaseStart, endNanos,
			[2]string{"phase"}, [2]int64{phase}, 1)
	}
	// Sorted by object ID so the rendered bytes are deterministic (a
	// -events-trace file for a given seed is always the same file).
	open := make([]int64, 0, len(pendingReq))
	for obj := range pendingReq {
		open = append(open, obj)
	}
	slices.Sort(open)
	for _, obj := range open {
		dst = append(dst, ',')
		dst = appendSpan(dst, layerH2, "h2.obj_incomplete", pendingReq[obj], pendingReq[obj],
			[2]string{"object", "stream"}, [2]int64{obj, pendingStream[obj]}, 2)
	}

	return append(dst, "]}"...)
}
