package h2sim

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/website"
)

// TestCalibrationBaseline prints the baseline statistics the paper's
// Table I row 0 reports; run with -v to inspect.
func TestCalibrationBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	clean, mux := 0, 0
	var degSum float64
	rerq, completed, broken := 0, 0, 0
	const trials = 100
	for i := 0; i < trials; i++ {
		site := website.Survey(website.IdentityPermutation())
		sess := NewSession(site, SessionConfig{Seed: int64(5000 + i), RandomizeAmbient: true})
		sess.Run()
		if sess.Broken() {
			broken++
			continue
		}
		if sess.Client.AllScheduledComplete() {
			completed++
		}
		rerq += sess.Client.Stats.ReRequests
		copies := analysis.CopyTransmissions(sess.GroundTruth)
		d := analysis.OriginalDegree(copies, website.ResultHTMLID)
		if d == 0 {
			clean++
		} else if d > 0 {
			mux++
			degSum += d
		}
	}
	t.Logf("baseline over %d trials: clean=%d (%.0f%%) mux=%d meanDeg=%.2f rerequests=%d completed=%d broken=%d",
		trials, clean, 100*float64(clean)/trials, mux, degSum/float64(maxi(mux, 1)), rerq, completed, broken)
}
