package h2sim

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/website"
)

func TestBaselinePageLoadCompletes(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	sess := NewSession(site, SessionConfig{Seed: 1})
	sess.Run()
	if sess.Broken() {
		t.Fatal("baseline load broke the connection")
	}
	if !sess.Client.AllScheduledComplete() {
		t.Fatalf("page incomplete: %d/%d objects", sess.Client.Stats.Completed, len(site.Schedule))
	}
	if sess.Server.Stats.Requests < len(site.Schedule) {
		t.Errorf("server saw %d requests, want >= %d", sess.Server.Stats.Requests, len(site.Schedule))
	}
}

func TestBaselineHTMLIsHeavilyMultiplexed(t *testing.T) {
	// Paper section IV: without an adversary, the 9500-byte result
	// HTML has a high degree of multiplexing in most trials.
	cleanTrials := 0
	var degreeSum float64
	degreeTrials := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		site := website.Survey(website.IdentityPermutation())
		sess := NewSession(site, SessionConfig{Seed: int64(1000 + i)})
		sess.Run()
		if sess.Broken() {
			t.Fatalf("trial %d broke", i)
		}
		copies := analysis.CopyTransmissions(sess.GroundTruth)
		d := analysis.OriginalDegree(copies, website.ResultHTMLID)
		if d < 0 {
			t.Fatalf("trial %d: HTML never transmitted", i)
		}
		if d == 0 {
			cleanTrials++
		} else {
			degreeSum += d
			degreeTrials++
		}
	}
	t.Logf("baseline: clean %d/%d trials; mean degree when multiplexed %.2f",
		cleanTrials, trials, degreeSum/float64(maxi(degreeTrials, 1)))
	if cleanTrials == trials {
		t.Error("HTML was never multiplexed at baseline; paper reports ~98% default degree")
	}
	if degreeTrials > 0 && degreeSum/float64(degreeTrials) < 0.5 {
		t.Errorf("mean multiplexed degree %.2f too low; want heavy interleaving",
			degreeSum/float64(degreeTrials))
	}
}

func TestBaselineDeterminism(t *testing.T) {
	run := func() (int, int, int64) {
		site := website.Survey(website.IdentityPermutation())
		sess := NewSession(site, SessionConfig{Seed: 7})
		sess.Run()
		return sess.Client.Stats.Requests, sess.TotalRetransmissions(), sess.Server.Stats.BytesData
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestServerServesDuplicateRequests(t *testing.T) {
	// Lossy enough that the client re-requests; the server must spawn
	// extra workers (paper's intensified-multiplexing mechanism).
	site := website.Survey(website.IdentityPermutation())
	cfg := SessionConfig{Seed: 3, Path: DefaultPath()}
	cfg.Path.ServerSide.Loss = 0.12
	sess := NewSession(site, cfg)
	sess.Run()
	if sess.Client.Stats.ReRequests == 0 {
		t.Skip("seed produced no re-requests under loss; adjust seed")
	}
	if sess.Server.Stats.Duplicates == 0 {
		t.Error("client re-requested but server spawned no duplicate workers")
	}
}

func TestDisableDuplicatesAblation(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	cfg := SessionConfig{Seed: 3, Path: DefaultPath()}
	cfg.Path.ServerSide.Loss = 0.12
	cfg.Server.DisableDuplicates = true
	sess := NewSession(site, cfg)
	sess.Run()
	copies := analysis.CopyTransmissions(sess.GroundTruth)
	for _, c := range copies {
		if c.Key.CopyID > 0 && c.Bytes > 0 {
			t.Fatalf("deduplicating server transmitted duplicate copy %+v", c.Key)
		}
	}
}

func TestGroundTruthAccountsAllBytes(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	sess := NewSession(site, SessionConfig{Seed: 5})
	sess.Run()
	copies := analysis.CopyTransmissions(sess.GroundTruth)
	// Every scheduled object must appear with a complete copy of the
	// right size.
	for _, spec := range site.Schedule {
		obj, _ := site.Object(spec.ObjectID)
		found := false
		for _, c := range analysis.CopiesOf(copies, spec.ObjectID) {
			if c.Complete && c.Bytes == obj.Size {
				found = true
			}
			if c.Bytes > obj.Size {
				t.Errorf("object %d copy %d transmitted %d bytes > size %d",
					spec.ObjectID, c.Key.CopyID, c.Bytes, obj.Size)
			}
		}
		if !found {
			t.Errorf("object %d: no complete copy of %d bytes", spec.ObjectID, obj.Size)
		}
	}
}

func TestResetFlushesServerWorkers(t *testing.T) {
	// Under a sustained blackout of the response path the client must
	// eventually reset streams, and the server must stop the affected
	// workers.
	site := website.Survey(website.IdentityPermutation())
	cfg := SessionConfig{Seed: 11, Path: DefaultPath(), TimeLimit: 60 * time.Second}
	cfg.Client.StallBase = 200 * time.Millisecond
	sess := NewSession(site, cfg)
	// Blackhole server->client data from 0.3s to 6s.
	sess.Sim.At(300*time.Millisecond, func() {
		sess.Conn.Path.LinkM2C.SetLoss(0.85)
	})
	sess.Sim.At(6*time.Second, func() {
		sess.Conn.Path.LinkM2C.SetLoss(0)
	})
	sess.Run()
	if sess.Client.Stats.Resets == 0 {
		t.Fatal("client never reset streams under sustained loss")
	}
	if sess.Server.Stats.Resets == 0 {
		t.Fatal("server never received RST_STREAM")
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
