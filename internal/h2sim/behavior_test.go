package h2sim

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/netem"
	"repro/internal/trace"
	"repro/internal/website"
)

// tinySite builds an n-object site with the given sizes, requested
// gap apart.
func tinySite(gap time.Duration, sizes ...int) *website.Site {
	s := &website.Site{Name: "tiny"}
	for i, size := range sizes {
		s.Objects = append(s.Objects, website.Object{
			ID: i + 1, Path: pathOf(i + 1), Size: size, Kind: website.KindImage,
		})
		g := gap
		if i == 0 {
			g = 0
		}
		s.Schedule = append(s.Schedule, website.RequestSpec{ObjectID: i + 1, Gap: g})
	}
	s.Finalize()
	return s
}

func pathOf(id int) string { return "/obj/" + string(rune('a'+id)) }

// quietClient disables client-side gap noise for exact-timing tests.
func quietClient() ClientConfig { return ClientConfig{GapNoiseFrac: -1} }

func TestServerChunksAndTerminatesObjects(t *testing.T) {
	site := tinySite(10*time.Millisecond, 3500)
	sess := NewSession(site, SessionConfig{Seed: 1, Client: quietClient()})
	sess.Run()
	var dataFrames []trace.FrameEvent
	for _, f := range sess.GroundTruth.Frames {
		if f.Len > 0 {
			dataFrames = append(dataFrames, f)
		}
	}
	// 3500 bytes at 1400/chunk = 1400 + 1400 + 700.
	if len(dataFrames) != 3 {
		t.Fatalf("frames = %d, want 3", len(dataFrames))
	}
	if dataFrames[0].Len != 1400 || dataFrames[2].Len != 700 {
		t.Errorf("chunk sizes = %d,%d,%d", dataFrames[0].Len, dataFrames[1].Len, dataFrames[2].Len)
	}
	if !dataFrames[2].End || dataFrames[0].End {
		t.Error("END flag on wrong frame")
	}
	// Wire offsets strictly increase and abut record boundaries.
	for i := 1; i < len(dataFrames); i++ {
		if dataFrames[i].Offset <= dataFrames[i-1].Offset {
			t.Error("offsets not increasing")
		}
	}
}

func TestServerServesEveryDuplicateCopy(t *testing.T) {
	site := tinySite(5*time.Millisecond, 50000, 2000)
	sess := NewSession(site, SessionConfig{Seed: 2, Client: quietClient()})
	// Issue a duplicate request for object 1 while it is still in
	// flight.
	sess.Sim.After(30*time.Millisecond, func() { sess.Client.issue(1, true) })
	sess.Run()
	copies := analysis.CopiesOf(analysis.CopyTransmissions(sess.GroundTruth), 1)
	if len(copies) != 2 {
		t.Fatalf("object 1 transmitted %d times, want 2 (duplicate served)", len(copies))
	}
	if sess.Server.Stats.Duplicates != 1 {
		t.Errorf("server duplicates = %d", sess.Server.Stats.Duplicates)
	}
}

func TestServerDedupAblationAnswersEmpty(t *testing.T) {
	site := tinySite(5*time.Millisecond, 50000)
	sess := NewSession(site, SessionConfig{
		Seed:   3,
		Server: ServerConfig{DisableDuplicates: true},
		Client: quietClient(),
	})
	sess.Sim.After(30*time.Millisecond, func() { sess.Client.issue(1, true) })
	sess.Run()
	copies := analysis.CopiesOf(analysis.CopyTransmissions(sess.GroundTruth), 1)
	if len(copies) != 1 {
		t.Fatalf("dedup server transmitted %d copies, want 1", len(copies))
	}
}

func TestServer404ForUnknownPath(t *testing.T) {
	site := tinySite(0, 1000)
	sess := NewSession(site, SessionConfig{Seed: 4, Client: quietClient()})
	// Request a path the site does not serve by grafting an object the
	// server's site lacks into the client's view.
	clientSite := tinySite(0, 1000)
	clientSite.Objects = append(clientSite.Objects, website.Object{ID: 99, Path: "/nope", Size: 10})
	sess.Client.site = clientSite
	sess.Client.objects = growTable(sess.Client.objects, 100)
	sess.Client.objects[99] = &objState{obj: clientSite.Objects[1]}
	sess.Sim.After(100*time.Millisecond, func() { sess.Client.issue(99, true) })
	sess.Run()
	if sess.Client.Complete(99) {
		t.Error("404 object reported complete")
	}
	if !sess.Client.Complete(1) {
		t.Error("valid object incomplete")
	}
}

func TestClientScheduleGapsExact(t *testing.T) {
	site := tinySite(25*time.Millisecond, 1000, 1000, 1000)
	sess := NewSession(site, SessionConfig{Seed: 5, Client: quietClient()})
	sess.Run()
	var reqs []RequestLog
	for _, r := range sess.Client.Requests {
		if !r.ReIssue {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) != 3 {
		t.Fatalf("requests = %d", len(reqs))
	}
	if reqs[1].Time-reqs[0].Time != 25*time.Millisecond ||
		reqs[2].Time-reqs[1].Time != 25*time.Millisecond {
		t.Errorf("gaps = %v, %v; want exact 25ms with noise disabled",
			reqs[1].Time-reqs[0].Time, reqs[2].Time-reqs[1].Time)
	}
}

func TestClientStallTriggersReRequest(t *testing.T) {
	site := tinySite(0, 4000)
	cfg := SessionConfig{Seed: 6, Client: quietClient()}
	cfg.Client.StallBase = 500 * time.Millisecond
	sess := NewSession(site, cfg)
	// Black-hole all server data so the response stalls.
	sess.Middlebox().Interceptor = func(dir trace.Direction, p *netem.Packet) netem.Decision {
		if dir == trace.ServerToClient && len(p.Payload) > 0 {
			return netem.Drop()
		}
		return netem.Pass()
	}
	sess.Client.Start()
	sess.Sim.RunUntil(2 * time.Second)
	if sess.Client.Stats.ReRequests == 0 {
		t.Error("stalled response produced no re-request")
	}
	if sess.Server.Stats.Duplicates == 0 {
		t.Error("server saw no duplicate request")
	}
}

func TestClientResetAfterStallBurst(t *testing.T) {
	site := tinySite(time.Millisecond, 4000, 4000, 4000, 4000, 4000, 4000)
	cfg := SessionConfig{Seed: 7, Client: quietClient()}
	cfg.Client.StallBase = 400 * time.Millisecond
	cfg.Client.StallsForReset = 4
	sess := NewSession(site, cfg)
	sess.Middlebox().Interceptor = func(dir trace.Direction, p *netem.Packet) netem.Decision {
		if dir == trace.ServerToClient && len(p.Payload) > 0 {
			return netem.Drop()
		}
		return netem.Pass()
	}
	sess.Client.Start()
	sess.Sim.RunUntil(5 * time.Second)
	if sess.Client.Stats.Resets == 0 {
		t.Fatal("stall burst did not trigger a reset")
	}
	if sess.Server.Stats.Resets == 0 {
		t.Error("server never received the RST_STREAM burst")
	}
}

func TestClientRefetchWindowPacing(t *testing.T) {
	// After a reset, at most RefetchWindow refetches may be in flight
	// before the first completion.
	site := tinySite(time.Millisecond, 3000, 3000, 3000, 3000, 3000, 3000)
	cfg := SessionConfig{Seed: 8, Client: quietClient()}
	cfg.Client.StallBase = 300 * time.Millisecond
	cfg.Client.StallsForReset = 3
	cfg.Client.RefetchWindow = 2
	sess := NewSession(site, cfg)
	dropping := true
	sess.Middlebox().Interceptor = func(dir trace.Direction, p *netem.Packet) netem.Decision {
		if dropping && dir == trace.ServerToClient && len(p.Payload) > 0 {
			return netem.Drop()
		}
		return netem.Pass()
	}
	// Heal the path once the reset has fired.
	sess.Sim.After(3*time.Second, func() { dropping = false })
	sess.Run()
	if sess.Client.Stats.Resets == 0 {
		t.Skip("no reset in this configuration")
	}
	// Count refetch requests issued before any post-reset completion:
	// they must not exceed the window.
	var resetTime time.Duration
	for _, r := range sess.Client.Requests {
		if r.ReIssue {
			resetTime = r.Time
			break
		}
	}
	inFlight := 0
	for _, r := range sess.Client.Requests {
		if r.ReIssue && r.Time == resetTime {
			inFlight++
		}
	}
	if inFlight > 2 {
		t.Errorf("refetch issued %d requests at once, window is 2", inFlight)
	}
}

func TestRetransmitTriggeredDuplicate(t *testing.T) {
	site := tinySite(0, 2000)
	sess := NewSession(site, SessionConfig{Seed: 9, Client: quietClient()})
	sess.Run()
	before := sess.Client.Stats.ReRequests
	// Simulate the transport retransmitting the request's bytes.
	sess.Client.OnTCPRetransmit(0, 1<<30)
	if sess.Client.Stats.ReRequests != before {
		t.Error("retransmit of a completed object's request re-issued it")
	}
	// Now with an incomplete object: new session, intercept delivery.
	sess2 := NewSession(site, SessionConfig{Seed: 10, Client: quietClient()})
	sess2.Middlebox().Interceptor = func(dir trace.Direction, p *netem.Packet) netem.Decision {
		if dir == trace.ServerToClient && len(p.Payload) > 0 {
			return netem.Drop()
		}
		return netem.Pass()
	}
	sess2.Client.Start()
	sess2.Sim.RunUntil(200 * time.Millisecond)
	sess2.Client.OnTCPRetransmit(0, 1<<30)
	if sess2.Client.Stats.ReRequests == 0 {
		t.Error("retransmitted pending request not re-issued")
	}
	// The budget bounds repeated triggers.
	for i := 0; i < 20; i++ {
		sess2.Client.OnTCPRetransmit(0, 1<<30)
	}
	if sess2.Client.Stats.ReRequests > sess2.Client.cfg.MaxReRequests+1 {
		t.Errorf("re-requests %d exceeded budget %d",
			sess2.Client.Stats.ReRequests, sess2.Client.cfg.MaxReRequests)
	}
}

func TestBackpressureBoundsEnqueueAhead(t *testing.T) {
	// The server must never be more than SendBufLimit+1 chunk ahead of
	// the transport.
	site := tinySite(time.Millisecond, 60000, 60000)
	cfg := SessionConfig{Seed: 11, Client: quietClient()}
	cfg.Server.SendBufLimit = 16 << 10
	sess := NewSession(site, cfg)
	maxBuf := 0
	var probe func()
	probe = func() {
		if b := sess.Conn.Server.BufferedSend(); b > maxBuf {
			maxBuf = b
		}
		if sess.Sim.Now() < 10*time.Second {
			sess.Sim.After(time.Millisecond, probe)
		}
	}
	sess.Sim.After(0, probe)
	sess.Run()
	limit := 16<<10 + 1400 + 100 // one chunk + record overhead of slack
	if maxBuf > limit {
		t.Errorf("send buffer reached %d, want <= %d", maxBuf, limit)
	}
	if !sess.Client.AllScheduledComplete() {
		t.Error("transfer incomplete")
	}
}

func TestCompletedAtAndOpenStreams(t *testing.T) {
	site := tinySite(10*time.Millisecond, 1000, 1000)
	sess := NewSession(site, SessionConfig{Seed: 12, Client: quietClient()})
	sess.Run()
	if sess.Client.CompletedAt(1) == 0 || sess.Client.CompletedAt(2) == 0 {
		t.Error("CompletedAt not recorded")
	}
	if sess.Client.CompletedAt(1) >= sess.Client.CompletedAt(2) {
		t.Error("objects completed out of order")
	}
	if sess.Client.OpenStreams() != 0 {
		t.Errorf("open streams = %d after completion", sess.Client.OpenStreams())
	}
	if sess.Client.CompletedAt(404) != 0 {
		t.Error("unknown object has a completion time")
	}
}

func TestSessionTimeLimitBoundsRun(t *testing.T) {
	site := tinySite(0, 5000)
	cfg := SessionConfig{Seed: 13, TimeLimit: 300 * time.Millisecond, DrainTime: time.Millisecond, Client: quietClient()}
	sess := NewSession(site, cfg)
	sess.Middlebox().Interceptor = func(dir trace.Direction, p *netem.Packet) netem.Decision {
		if dir == trace.ServerToClient && len(p.Payload) > 0 {
			return netem.Drop() // never completes
		}
		return netem.Pass()
	}
	sess.Run()
	if sess.Sim.Now() > 2*time.Second {
		t.Errorf("run continued to %v despite 300ms limit", sess.Sim.Now())
	}
}

func TestServerPushDeliversObjects(t *testing.T) {
	// Object 1 is the "page"; objects 2 and 3 get pushed when it is
	// requested, and the client must not request them itself.
	site := tinySite(300*time.Millisecond, 2000, 3000, 4000)
	cfg := SessionConfig{Seed: 20, Client: quietClient()}
	cfg.Server.Push = map[string][]string{
		pathOf(1): {pathOf(2), pathOf(3)},
	}
	sess := NewSession(site, cfg)
	sess.Run()
	for id := 1; id <= 3; id++ {
		if !sess.Client.Complete(id) {
			t.Errorf("object %d incomplete", id)
		}
	}
	// Only one client GET: the pushed objects' scheduled requests are
	// suppressed by the push match.
	gets := 0
	for _, r := range sess.Client.Requests {
		if !r.ReIssue {
			gets++
		}
	}
	if gets != 1 {
		t.Errorf("client issued %d requests, want 1 (pushes suppress the rest)", gets)
	}
	// Pushed streams are even (server-initiated) in ground truth.
	for _, f := range sess.GroundTruth.Frames {
		if f.ObjectID >= 2 && f.StreamID%2 != 0 {
			t.Errorf("pushed object %d on odd stream %d", f.ObjectID, f.StreamID)
		}
	}
}

func TestServerPushOnlyOnce(t *testing.T) {
	// Re-requesting the pushing page must not re-push. Object 2's own
	// scheduled request comes late enough that the push suppresses it.
	site := tinySite(800*time.Millisecond, 50000, 3000)
	cfg := SessionConfig{Seed: 21, Client: quietClient()}
	cfg.Server.Push = map[string][]string{pathOf(1): {pathOf(2)}}
	sess := NewSession(site, cfg)
	sess.Sim.After(30*time.Millisecond, func() { sess.Client.issue(1, true) })
	sess.Run()
	copies := analysis.CopiesOf(analysis.CopyTransmissions(sess.GroundTruth), 2)
	if len(copies) != 1 {
		t.Errorf("pushed object transmitted %d times, want 1", len(copies))
	}
}
