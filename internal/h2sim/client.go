package h2sim

import (
	"time"

	"repro/internal/h2"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tlsrec"
	"repro/internal/website"
)

// ClientConfig tunes the browser model.
type ClientConfig struct {
	// StallBase is the floor of the per-stream stall timeout. Default
	// 2s (a browser-scale response deadline; baseline loads must not
	// trip it).
	StallBase time.Duration

	// StallRTTFactor scales the stall timeout with the transport's
	// smoothed RTT: timeout = max(StallBase, factor*SRTT) * backoff.
	// Throttled (queue-inflated) paths therefore re-request less —
	// the mechanism behind the paper's Figure 5 retransmission
	// decline. Default 6.
	StallRTTFactor int

	// MaxReRequests bounds duplicate requests per object. Default 3.
	MaxReRequests int

	// ResetAfterStalls is how many post-exhaustion stalls an object
	// tolerates before the client resets every open stream (the
	// paper's RST_STREAM response to a persistently lossy channel).
	// Default 1.
	ResetAfterStalls int

	// ResetGrace is the pause between resetting and re-requesting,
	// while the transport recovers and the stale backlog drains (the
	// paper: after a reset "the client's TCP also waits for a longer
	// time"). Default 1.5s.
	ResetGrace time.Duration

	// MaxResets caps reset rounds per page load. Default 4.
	MaxResets int

	// StallsForReset triggers a reset when this many stream stalls
	// burst (within 2.5s of one another) without any object
	// completing — the "highly lossy communication channel" signal of
	// paper section IV-D. Default 6.
	StallsForReset int

	// RefetchWindow bounds outstanding post-reset refetches. Small
	// windows keep the recovering connection near single-threaded (the
	// paper's observation); large windows re-create the pre-reset
	// interleaving (ablation). Default 2.
	RefetchWindow int

	// GapNoiseFrac randomizes schedule gaps by ±frac (client-side
	// think-time noise). Default 0.15; negative disables.
	GapNoiseFrac float64

	// DisableReRequest turns off duplicate requests (ablation 2).
	DisableReRequest bool

	// DisableReset turns off the reset-streams policy (ablation 3).
	DisableReset bool
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.StallBase == 0 {
		c.StallBase = 2 * time.Second
	}
	if c.StallRTTFactor == 0 {
		c.StallRTTFactor = 10
	}
	if c.MaxReRequests == 0 {
		c.MaxReRequests = 3
	}
	if c.ResetAfterStalls == 0 {
		c.ResetAfterStalls = 1
	}
	if c.ResetGrace == 0 {
		c.ResetGrace = 3500 * time.Millisecond
	}
	if c.MaxResets == 0 {
		c.MaxResets = 4
	}
	if c.StallsForReset == 0 {
		c.StallsForReset = 6
	}
	if c.RefetchWindow == 0 {
		c.RefetchWindow = 2
	}
	if c.GapNoiseFrac == 0 {
		c.GapNoiseFrac = 0.15
	}
	return c
}

// ClientStats counts client-side events.
type ClientStats struct {
	Requests   int // all request HEADERS sent, including re-requests
	ReRequests int // stall-triggered duplicates (the paper's
	// "retransmission requests")
	Resets    int // reset-all rounds
	Completed int // distinct objects fully received
}

// RequestLog records one issued request for evaluation.
type RequestLog struct {
	Time     time.Duration
	ObjectID int
	CopyID   int
	StreamID uint32
	ReIssue  bool
}

type clientStream struct {
	id       uint32
	objectID int
	copyID   int
	received int
	done     bool
	closed   bool // locally reset
	stall    *sim.Timer
	rearms   int

	// reqStart/reqEnd bound the request record's bytes in the client's
	// outbound TCP stream; reRequested marks that a transport
	// retransmission of those bytes already triggered a duplicate.
	reqStart, reqEnd uint32
	reRequested      bool
}

type objState struct {
	obj             website.Object
	requested       bool
	scheduled       bool // appears in the site schedule (counted by scheduledLeft)
	complete        bool
	completedAt     time.Duration
	reRequests      int
	exhaustedStalls int
	pushed          bool // a server push for this object is in flight or done
}

// Client is the simulated browser: it issues the site's request
// schedule, re-requests stalled objects, and resets streams on a
// persistently failing channel.
type Client struct {
	s    *sim.Simulator
	cfg  ClientConfig
	site *website.Site
	tcp  *tcpsim.Endpoint

	opener  tlsrec.Opener
	sealer  tlsrec.Sealer
	scanner h2.FrameScanner
	hdec    *h2.HpackDecoder
	henc    *h2.HpackEncoder

	// Dense state tables, indexed by raw stream ID and object ID (both
	// are small and sequential in this simulation: client streams are
	// odd 1,3,5,… and pushed streams even 2,4,…, object IDs top out at
	// ~108). They replace the map[uint32]/map[int] tables that
	// dominated the hot path with mapaccess calls; lookups are now a
	// bounds check and an index.
	streams []*clientStream // by stream ID; nil = no such open stream
	objects []*objState     // by object ID; nil = unknown object
	copies  []int           // by object ID: next copy sequence number

	// O(1) trial-completion state: open counts the non-nil entries of
	// streams; scheduledLeft counts distinct scheduled objects not yet
	// complete (an unknown scheduled ID counts forever, matching the
	// old per-event scan that could never find it complete).
	open          int
	scheduledLeft int

	nextStreamID uint32
	stallMult    time.Duration
	bytesOut     uint32        // bytes written to the transport so far
	dryStalls    int           // stalls since the last completion, within a burst
	lastStall    time.Duration // time of the most recent stall
	refetchQ     []int         // post-reset refetch queue (object IDs)
	refetchBack  []int         // refetchQ's backing array (refetchQ is sliced forward)
	docsScratch  []int         // resetAll priority-partition scratch
	restScratch  []int
	refetchOut   int // outstanding refetches from the queue

	// Per-request scratch, hoisted so issuing requests and parsing
	// responses allocate only per-stream state, not per-byte-chunk:
	// record/frame/header-block build buffers, the streamsByID
	// snapshot, and the FeedInto callback built once.
	recBuf   []byte
	frameBuf []byte
	blockBuf []byte
	hdrFrame h2.HeadersFrame   // scratch: a stack literal would escape through AppendFrame
	rstFrame h2.RSTStreamFrame // scratch: same escape-avoidance for reset rounds
	sbuf     []*clientStream
	frameCb  func(h2.Frame) error
	issueFn  func(any) // AfterArg callback for scheduled issues

	// Recycled per-stream and per-object state. A pooled clientStream
	// keeps its stall Timer (whose generation counter makes any stale
	// queued firing a no-op), so steady-state request issuance
	// allocates nothing.
	sfree []*clientStream
	ofree []*objState

	// Stats accumulates counters; Requests lists every issued request.
	Stats    ClientStats
	Requests []RequestLog

	// OnComplete, when non-nil, fires once per completed object.
	OnComplete func(objectID int)

	// Obs receives metric increments and flight events; the zero Sink
	// discards them.
	Obs obs.Sink
}

// NewClient builds the client for a site. Call Attach then Start.
// Construction is skeleton allocation plus Reset, so a freshly built
// client and a reused one start every trial in identical state by
// construction.
func NewClient(s *sim.Simulator, cfg ClientConfig, site *website.Site) *Client {
	c := &Client{
		s:    s,
		hdec: h2.NewHpackDecoder(4096),
		henc: h2.NewHpackEncoder(4096),
	}
	c.frameCb = func(f h2.Frame) error {
		c.handleFrame(f)
		return nil
	}
	c.issueFn = func(a any) { c.issue(a.(int), false) }
	c.Reset(cfg, site)
	return c
}

// Reset returns the client to its just-constructed state for a new
// trial: configuration and site swapped in, protocol state (HPACK
// tables, scanners, stream table, object states, counters) rewound,
// stats zeroed. Stream and object-state structs are recycled; the
// Requests log is released (not truncated) because the previous
// trial's result may still reference it. Call after the simulator has
// been Reset, then Attach and Start.
func (c *Client) Reset(cfg ClientConfig, site *website.Site) {
	c.cfg = cfg.withDefaults()
	c.site = site
	c.tcp = nil
	c.opener.Reset()
	c.scanner.Reset()
	c.hdec.Reset(4096)
	c.henc.Reset(4096)
	for id, st := range c.streams {
		if st != nil {
			st.stall.Stop()
			c.sfree = append(c.sfree, st)
			c.streams[id] = nil
		}
	}
	c.open = 0
	maxID := 0
	for _, o := range site.Objects {
		if o.ID > maxID {
			maxID = o.ID
		}
	}
	for id, os := range c.objects {
		if os != nil {
			c.ofree = append(c.ofree, os)
			c.objects[id] = nil
		}
	}
	c.objects = growTable(c.objects, maxID+1)
	c.copies = growTable(c.copies, maxID+1)
	for i := range c.copies {
		c.copies[i] = 0
	}
	for _, o := range site.Objects {
		os := c.getObjState()
		os.obj = o
		c.objects[o.ID] = os
	}
	// Seed the O(1) completion counter: one unit per distinct scheduled
	// object. A scheduled ID with no object state can never complete,
	// so it is counted permanently (AllScheduledComplete stays false),
	// exactly like the old per-call scan.
	c.scheduledLeft = 0
	for _, spec := range site.Schedule {
		if spec.ObjectID < 0 || spec.ObjectID > maxID || c.objects[spec.ObjectID] == nil {
			c.scheduledLeft++
			continue
		}
		if os := c.objects[spec.ObjectID]; !os.scheduled {
			os.scheduled = true
			c.scheduledLeft++
		}
	}
	c.nextStreamID = 1
	c.stallMult = 1
	c.bytesOut = 0
	c.dryStalls = 0
	c.lastStall = 0
	c.refetchQ = c.refetchQ[:0]
	c.refetchOut = 0
	for i := range c.sbuf {
		c.sbuf[i] = nil
	}
	c.sbuf = c.sbuf[:0]
	c.Stats = ClientStats{}
	// Requests escapes into the trial result, so it must be freshly
	// allocated (never truncated) — but sized to the schedule so the
	// log grows in one allocation instead of a doubling chain.
	c.Requests = make([]RequestLog, 0, len(site.Schedule)+8)
	c.OnComplete = nil
	c.Obs = obs.Sink{}
}

// stream looks up an open stream by raw ID; nil if absent.
func (c *Client) stream(id uint32) *clientStream {
	if int(id) >= len(c.streams) {
		return nil
	}
	return c.streams[id]
}

// putStream registers an open stream in the dense table.
func (c *Client) putStream(id uint32, st *clientStream) {
	if int(id) >= len(c.streams) {
		c.streams = growTable(c.streams, int(id)+1)
	}
	c.streams[id] = st
	c.open++
}

// delStream removes an open stream. The id must be present.
func (c *Client) delStream(id uint32) {
	c.streams[id] = nil
	c.open--
}

// nextCopy returns and advances the object's copy sequence number.
func (c *Client) nextCopy(objectID int) int {
	if objectID >= len(c.copies) {
		c.copies = growTable(c.copies, objectID+1)
	}
	n := c.copies[objectID]
	c.copies[objectID]++
	return n
}

// object looks up per-object state by ID; nil if unknown.
func (c *Client) object(id int) *objState {
	if id < 0 || id >= len(c.objects) {
		return nil
	}
	return c.objects[id]
}

// getStream returns a recycled stream (zeroed, keeping its prebuilt
// stall timer) or a fresh one. The timer's generation counter makes
// any stale firing queued for the stream's previous life a no-op.
func (c *Client) getStream() *clientStream {
	if n := len(c.sfree); n > 0 {
		st := c.sfree[n-1]
		c.sfree[n-1] = nil
		c.sfree = c.sfree[:n-1]
		*st = clientStream{stall: st.stall}
		return st
	}
	st := &clientStream{}
	st.stall = c.s.NewTimer(func() { c.onStall(st) })
	return st
}

// freeStream stops the stream's timer and recycles it. The caller
// must not touch st afterwards.
func (c *Client) freeStream(st *clientStream) {
	st.stall.Stop()
	c.sfree = append(c.sfree, st)
}

// getObjState returns a recycled (zeroed) object state or a fresh one.
func (c *Client) getObjState() *objState {
	if n := len(c.ofree); n > 0 {
		os := c.ofree[n-1]
		c.ofree[n-1] = nil
		c.ofree = c.ofree[:n-1]
		*os = objState{}
		return os
	}
	return &objState{}
}

// Attach wires the client to its TCP endpoint and announces SETTINGS.
func (c *Client) Attach(tcp *tcpsim.Endpoint) {
	c.tcp = tcp
	settings := h2.MarshalFrame(&h2.SettingsFrame{Settings: []h2.Setting{
		{ID: h2.SettingInitialWindowSize, Val: 1 << 30},
	}})
	c.writeRecord(settings)
}

// writeRecord seals plaintext through the recycled record buffer
// (tcp.Write copies it into the send buffer).
func (c *Client) writeRecord(plaintext []byte) (start, end uint32) {
	c.recBuf = c.sealer.Seal(c.recBuf[:0], tlsrec.TypeAppData, plaintext)
	start = c.bytesOut
	c.bytesOut += uint32(len(c.recBuf))
	c.tcp.Write(c.recBuf)
	return start, c.bytesOut
}

// Start schedules the site's request sequence from the current
// simulation time.
func (c *Client) Start() {
	at := time.Duration(0)
	for _, spec := range c.site.Schedule {
		gap := spec.Gap
		if c.cfg.GapNoiseFrac > 0 && gap > 0 {
			f := 1 + c.cfg.GapNoiseFrac*(2*c.s.Rand().Float64()-1)
			gap = time.Duration(float64(gap) * f)
		}
		at += gap
		// AfterArg with the prebuilt callback: no per-entry closure,
		// and small ints box allocation-free (the runtime preboxes
		// values < 256, which covers every object ID).
		c.s.AfterArg(at, c.issueFn, spec.ObjectID)
	}
}

// issue sends one GET for the object; reissue marks stall-triggered
// duplicates and post-reset retries.
func (c *Client) issue(objectID int, reissue bool) {
	if c.tcp.Broken() {
		return
	}
	os := c.object(objectID)
	if os == nil || os.complete {
		return
	}
	if os.pushed && !reissue {
		// A matching server push is in flight: the browser does not
		// re-request pushed resources.
		return
	}
	os.requested = true
	id := c.nextStreamID
	c.nextStreamID += 2
	copyID := c.nextCopy(objectID)

	c.blockBuf = c.henc.AppendHeaderBlock(c.blockBuf[:0], []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.isidewith.test"},
		{Name: ":path", Value: os.obj.Path},
	})
	c.hdrFrame = h2.HeadersFrame{
		StreamID:      id,
		BlockFragment: c.blockBuf,
		EndHeaders:    true,
		EndStream:     true,
	}
	c.frameBuf = h2.AppendFrame(c.frameBuf[:0], &c.hdrFrame)
	reqStart, reqEnd := c.writeRecord(c.frameBuf)
	c.Stats.Requests++
	c.Obs.Inc(obs.CH2Request)
	c.Obs.Event(c.s.Now(), obs.EvH2Request, int64(id), int64(objectID))
	c.Requests = append(c.Requests, RequestLog{
		Time: c.s.Now(), ObjectID: objectID, CopyID: copyID, StreamID: id, ReIssue: reissue,
	})

	st := c.getStream()
	st.id, st.objectID, st.copyID = id, objectID, copyID
	st.reqStart, st.reqEnd = reqStart, reqEnd
	st.stall.Reset(c.stallTimeout())
	c.putStream(id, st)
}

// stallTimeout derives the adaptive stall deadline.
func (c *Client) stallTimeout() time.Duration {
	d := time.Duration(c.cfg.StallRTTFactor) * c.tcp.SRTT()
	if d < c.cfg.StallBase {
		d = c.cfg.StallBase
	}
	return d * c.stallMult
}

// OnTCPRetransmit reacts to the transport retransmitting client
// bytes: when the retransmitted range covers a pending request, the
// client re-issues that request on a fresh stream — the browser
// behaviour the paper describes as "TCP fast-retransmits for the same
// object" that makes the server spawn duplicate workers.
func (c *Client) OnTCPRetransmit(seqStart, seqEnd uint32) {
	if c.cfg.DisableReRequest {
		return
	}
	for _, st := range c.streamsByID() {
		if st.reRequested || st.done || st.closed {
			continue
		}
		if st.reqStart >= seqEnd || st.reqEnd <= seqStart {
			continue
		}
		os := c.object(st.objectID)
		if os == nil || os.complete || os.reRequests >= c.cfg.MaxReRequests {
			continue
		}
		st.reRequested = true
		os.reRequests++
		c.Stats.ReRequests++
		c.Obs.Inc(obs.CH2ReRequest)
		c.issue(st.objectID, true)
	}
}

// OnBytes is the TCP delivery callback. Records and frames are parsed
// on recycled scratch (Opener.FeedReuse, FrameScanner.FeedInto);
// handleFrame never retains frame memory past the call.
func (c *Client) OnBytes(b []byte) {
	recs, err := c.opener.FeedReuse(b)
	if err != nil {
		return
	}
	for _, r := range recs {
		if r.ContentType != tlsrec.TypeAppData {
			continue
		}
		_ = c.scanner.FeedInto(r.Body, c.frameCb)
	}
}

func (c *Client) handleFrame(f h2.Frame) {
	switch fv := f.(type) {
	case *h2.HeadersFrame:
		st := c.stream(fv.StreamID)
		if st == nil || st.closed {
			return
		}
		if fv.EndStream {
			// Empty response (404 or deduplicated copy): the stream
			// ends without completing the object.
			c.finishStream(st)
			return
		}
		st.stall.Reset(c.stallTimeout())
	case *h2.DataFrame:
		st := c.stream(fv.StreamID)
		if st == nil || st.closed {
			return
		}
		st.received += len(fv.Data)
		st.stall.Reset(c.stallTimeout())
		if fv.EndStream {
			c.finishStream(st)
		}
	case *h2.SettingsFrame:
		if !fv.Ack {
			c.writeRecord(h2.MarshalFrame(&h2.SettingsFrame{Ack: true}))
		}
	case *h2.RSTStreamFrame:
		if st := c.stream(fv.StreamID); st != nil {
			c.closeStream(st)
		}
	case *h2.PushPromiseFrame:
		c.handlePushPromise(fv)
	default:
	}
}

// handlePushPromise registers a server-initiated stream: the pushed
// response will arrive on PromiseID, and the client will not request
// the resource itself.
func (c *Client) handlePushPromise(f *h2.PushPromiseFrame) {
	fields, err := c.hdec.DecodeFullReuse(f.BlockFragment)
	if err != nil {
		return
	}
	var path string
	for _, hf := range fields {
		if hf.Name == ":path" {
			path = hf.Value
		}
	}
	obj, ok := c.site.ObjectByPath(path)
	if !ok {
		return
	}
	os := c.object(obj.ID)
	if os == nil || os.complete {
		return
	}
	os.pushed = true
	c.Obs.Inc(obs.CH2PushPromise)
	st := c.getStream()
	st.id, st.objectID, st.copyID = f.PromiseID, obj.ID, c.nextCopy(obj.ID)
	st.stall.Reset(c.stallTimeout())
	c.putStream(f.PromiseID, st)
}

// finishStream handles END_STREAM on a live stream. The stream is
// recycled immediately (its stall timer's generation guard disarms
// any stale queued firing), so the body works from copied locals.
func (c *Client) finishStream(st *clientStream) {
	st.done = true
	objectID, received := st.objectID, st.received
	c.delStream(st.id)
	c.freeStream(st)
	os := c.object(objectID)
	if os == nil || os.complete {
		return
	}
	if received >= os.obj.Size {
		os.complete = true
		os.completedAt = c.s.Now()
		if os.scheduled {
			c.scheduledLeft--
		}
		c.Stats.Completed++
		c.Obs.Inc(obs.CH2ObjComplete)
		c.Obs.Event(c.s.Now(), obs.EvH2ObjComplete, int64(objectID), int64(received))
		c.dryStalls = 0 // completions are the liveness signal
		if c.refetchOut > 0 {
			c.refetchOut--
			c.pumpRefetch()
		}
		// Quiesce sibling copies' timers: the object is done.
		for _, other := range c.streams {
			if other != nil && other.objectID == objectID {
				other.stall.Stop()
			}
		}
		if c.OnComplete != nil {
			c.OnComplete(objectID)
		}
	}
}

func (c *Client) closeStream(st *clientStream) {
	st.closed = true
	c.delStream(st.id)
	c.freeStream(st)
}

// streamsByID snapshots the open streams in ascending stream-id
// order. Every walk that has side effects (re-issuing requests,
// emitting RST_STREAM frames) must use this instead of mutating the
// table mid-walk; the dense table is already in ID order, so the
// snapshot is one linear sweep (the sort that the old map table
// needed is gone). The returned slice is scratch reused by the next
// call; no caller nests walks.
func (c *Client) streamsByID() []*clientStream {
	out := c.sbuf[:0]
	for _, st := range c.streams {
		if st != nil {
			out = append(out, st)
		}
	}
	c.sbuf = out
	return out
}

// onStall handles a stream whose response made no progress within the
// stall timeout: the client re-requests the object ("fast-retransmit"
// behaviour the paper describes), and on persistent failure resets
// every open stream.
func (c *Client) onStall(st *clientStream) {
	if st.closed || st.done || c.tcp.Broken() {
		return
	}
	st.rearms++
	if st.rearms > 12 {
		return // give up on this stream; bounds simulation work
	}
	os := c.object(st.objectID)
	if os == nil || os.complete {
		return
	}
	c.Obs.Inc(obs.CH2Stall)
	c.Obs.Event(c.s.Now(), obs.EvH2Stall, int64(c.open), 0)
	// A lossy channel shows up as a burst of stalls with nothing
	// completing; isolated stalls on a merely slow page do not count.
	if c.s.Now()-c.lastStall > 2500*time.Millisecond {
		c.dryStalls = 0
	}
	c.lastStall = c.s.Now()
	c.dryStalls++
	if !c.cfg.DisableReset && c.dryStalls >= c.cfg.StallsForReset && c.Stats.Resets < c.cfg.MaxResets {
		c.resetAll()
		return
	}
	if !c.cfg.DisableReRequest && os.reRequests < c.cfg.MaxReRequests {
		os.reRequests++
		c.Stats.ReRequests++
		c.Obs.Inc(obs.CH2ReRequest)
		c.issue(st.objectID, true)
		st.stall.Reset(2 * c.stallTimeout())
		return
	}
	os.exhaustedStalls++
	if !c.cfg.DisableReset && os.exhaustedStalls >= c.cfg.ResetAfterStalls && c.Stats.Resets < c.cfg.MaxResets {
		c.resetAll()
		return
	}
	st.stall.Reset(2 * c.stallTimeout())
}

// resetAll sends RST_STREAM for every open stream in one record,
// backs off the transport, and re-requests incomplete objects after a
// grace period — the paper's section IV-D client behaviour.
func (c *Client) resetAll() {
	c.Stats.Resets++
	frames := c.frameBuf[:0]
	reset := 0
	for _, st := range c.streamsByID() {
		c.rstFrame = h2.RSTStreamFrame{StreamID: st.id, Code: h2.ErrCodeCancel}
		frames = h2.AppendFrame(frames, &c.rstFrame)
		c.closeStream(st)
		reset++
	}
	if len(frames) > 0 {
		c.writeRecord(frames)
	}
	c.frameBuf = frames
	c.Obs.Inc(obs.CH2ResetRound)
	c.Obs.Add(obs.CH2StreamReset, uint64(reset))
	c.Obs.Event(c.s.Now(), obs.EvH2ResetRound, int64(reset), int64(c.Stats.Resets))
	// The client's TCP stack raises its retransmission timeout in
	// response to the lossy channel (paper: "The client's TCP also
	// waits for a longer time before attempting to send
	// fast-retransmission requests").
	c.tcp.BackoffRTO(2)
	c.stallMult *= 2
	c.dryStalls = 0
	// Wait out the channel: at least ResetGrace, and longer on
	// long-RTT paths where the server's backed-off retransmission
	// timer takes proportionally longer to recover.
	grace := c.cfg.ResetGrace
	if byRTT := 14 * c.tcp.SRTT(); byRTT > grace {
		grace = byRTT
	}
	c.s.After(grace, func() {
		// Re-request pending objects in priority order: documents
		// first, then the rest in schedule order (the paper: "the
		// client resends GET requests if a high priority object is
		// not yet received" — and only then the rest).
		docs, rest := c.docsScratch[:0], c.restScratch[:0]
		for _, spec := range c.site.Schedule {
			os := c.object(spec.ObjectID)
			if os == nil || !os.requested || os.complete {
				continue
			}
			if os.obj.Kind == website.KindHTML {
				docs = append(docs, spec.ObjectID)
			} else {
				rest = append(rest, spec.ObjectID)
			}
		}
		c.docsScratch, c.restScratch = docs, rest
		// Refetch conservatively: a small window of outstanding
		// refetches, paced by completions, so the recovering
		// connection serves them near-serially (the single-threaded
		// mode the paper observes after a reset).
		c.refetchQ = append(append(c.refetchBack[:0], docs...), rest...)
		c.refetchBack = c.refetchQ
		c.refetchOut = 0
		c.pumpRefetch()
	})
}

// pumpRefetch issues queued refetches up to the window.
func (c *Client) pumpRefetch() {
	for c.refetchOut < c.cfg.RefetchWindow && len(c.refetchQ) > 0 {
		id := c.refetchQ[0]
		c.refetchQ = c.refetchQ[1:]
		os := c.object(id)
		if os == nil || os.complete {
			continue
		}
		os.reRequests = 0
		os.exhaustedStalls = 0
		c.refetchOut++
		c.Obs.Inc(obs.CH2Refetch)
		c.Obs.Event(c.s.Now(), obs.EvH2Refetch, int64(id), 0)
		c.issue(id, true)
	}
}

// Complete reports whether the object has been fully received.
func (c *Client) Complete(objectID int) bool {
	os := c.object(objectID)
	return os != nil && os.complete
}

// CompletedAt returns when the object finished (zero if incomplete).
func (c *Client) CompletedAt(objectID int) time.Duration {
	os := c.object(objectID)
	if os == nil {
		return 0
	}
	return os.completedAt
}

// AllScheduledComplete reports whether every object in the schedule
// has been fully received. O(1): the scheduledLeft counter is seeded
// at Reset and decremented as scheduled objects complete, so the
// per-event session loop no longer scans the schedule.
func (c *Client) AllScheduledComplete() bool { return c.scheduledLeft == 0 }

// OpenStreams reports in-flight request count.
func (c *Client) OpenStreams() int { return c.open }
