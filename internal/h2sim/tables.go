package h2sim

// growTable extends a dense lookup table to at least n entries,
// reusing the backing array when it is large enough (zeroing any
// stale tail) so steady-state trials never reallocate their tables.
// Tables in this package only ever grow; indices are raw stream IDs
// or object IDs, both small and near-sequential by construction.
func growTable[T any](t []T, n int) []T {
	if n <= len(t) {
		return t
	}
	if cap(t) >= n {
		var zero T
		ext := t[len(t):n]
		for i := range ext {
			ext[i] = zero
		}
		return t[:n]
	}
	nt := make([]T, n, n+n/2+8)
	copy(nt, t)
	return nt
}
