package h2sim

import (
	"time"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trace"
	"repro/internal/website"
)

// SessionConfig assembles one simulated page load.
type SessionConfig struct {
	// Seed drives all randomness in the trial.
	Seed int64

	// Path is the ambient network configuration. The zero value uses
	// DefaultPath.
	Path netem.PathConfig

	// TCP tunes both transport endpoints.
	TCP tcpsim.Config

	// Server and Client tune the HTTP/2 endpoints.
	Server ServerConfig
	Client ClientConfig

	// TimeLimit bounds the simulated wall clock. Default 120s.
	TimeLimit time.Duration

	// DrainTime lets in-flight transmissions settle after the page
	// completes, so ground truth captures trailing duplicates.
	// Default 2s.
	DrainTime time.Duration

	// RandomizeAmbient perturbs the default path per trial (RTT and
	// jitter drawn from the seed), modelling the day-to-day network
	// variation across the paper's ~500 volunteer sessions. Only
	// applies when Path is left at the default.
	RandomizeAmbient bool

	// Obs, when enabled, receives metric increments and flight events
	// from every layer of the session (links, TCP endpoints, HTTP/2
	// client and server). The zero Sink discards everything at the cost
	// of one branch per site.
	Obs obs.Sink
}

// DefaultPath models the paper's setup: a short first hop from the
// client to the lab gateway (the compromised middlebox) and a
// long-RTT Internet path to the origin. The ~100ms RTT is what makes
// the early large objects' slow-start transfers span later requests —
// the source of the baseline multiplexing.
func DefaultPath() netem.PathConfig {
	return netem.PathConfig{
		ClientSide: netem.LinkConfig{
			RateBitsPerSec: 1_000_000_000,
			PropDelay:      2 * time.Millisecond,
			Jitter:         netem.UniformJitter(800 * time.Microsecond),
			Loss:           0.0005,
		},
		ServerSide: netem.LinkConfig{
			RateBitsPerSec: 1_000_000_000,
			PropDelay:      46 * time.Millisecond,
			Jitter:         netem.UniformJitter(3 * time.Millisecond),
			Loss:           0.002,
		},
	}
}

func (c SessionConfig) withDefaults() SessionConfig {
	unset := func(lc netem.LinkConfig) bool {
		return lc.RateBitsPerSec == 0 && lc.PropDelay == 0 && lc.Jitter == nil &&
			lc.Loss == 0 && lc.MaxQueueDelay == 0
	}
	if unset(c.Path.ClientSide) && unset(c.Path.ServerSide) {
		c.Path = DefaultPath()
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = 120 * time.Second
	}
	if c.DrainTime == 0 {
		c.DrainTime = 2 * time.Second
	}
	return c
}

// Session is one assembled trial: simulator, network path with
// middlebox, TCP connection, HTTP/2 endpoints, and traces.
type Session struct {
	Sim    *sim.Simulator
	Conn   *tcpsim.Conn
	Server *Server
	Client *Client
	Site   *website.Site

	// Capture is the middlebox's packet/record observation trace (the
	// adversary's view). GroundTruth is the server's frame
	// attribution trace (the evaluator's view).
	Capture     *trace.Trace
	GroundTruth *trace.Trace

	cfg SessionConfig
}

// NewSession wires up a trial for the given site. Construction builds
// a side-effect-free skeleton (no SETTINGS exchanged, no randomness
// consumed) and then calls Reset, so a fresh session and a reused one
// run any given (site, cfg, seed) identically by construction.
func NewSession(site *website.Site, cfg SessionConfig) *Session {
	s := sim.New(0)
	sess := &Session{
		Sim:         s,
		Capture:     &trace.Trace{},
		GroundTruth: &trace.Trace{},
	}
	sess.Server = NewServer(s, ServerConfig{}, site)
	sess.Client = NewClient(s, ClientConfig{}, site)
	sess.Conn = tcpsim.NewConn(s, netem.PathConfig{}, tcpsim.Config{},
		sess.Client.OnBytes,
		sess.Server.OnBytes,
	)
	sess.Reset(site, cfg)
	return sess
}

// Reset rewinds the whole stack for a new trial: simulator re-seeded,
// in-flight packets reclaimed into the pool, every layer returned to
// its just-built state for the new site and configuration, and the
// construction-time side effects (ambient randomization draws, the
// SETTINGS exchange from both Attach calls) replayed in the exact
// order NewSession performs them — which is what makes a reused
// session's wire trace byte-identical to a fresh session's at the
// same seed.
func (sess *Session) Reset(site *website.Site, cfg SessionConfig) {
	cfg = cfg.withDefaults()
	s := sess.Sim
	sess.Conn.Path.ReclaimPending(s)
	s.Reset(cfg.Seed)
	s.MaxSteps = 50_000_000

	if cfg.RandomizeAmbient {
		rng := s.Rand()
		// Server-side one-way delay 30-62ms (path RTT ~64-132ms),
		// client-side 1-4ms.
		cfg.Path.ServerSide.PropDelay = 30*time.Millisecond +
			time.Duration(rng.Int63n(int64(32*time.Millisecond)))
		cfg.Path.ClientSide.PropDelay = time.Millisecond +
			time.Duration(rng.Int63n(int64(3*time.Millisecond)))
	}
	sess.Site = site
	sess.cfg = cfg
	sess.Capture.Reset()
	sess.GroundTruth.Reset()
	sess.Server.Reset(cfg.Server, site)
	sess.Client.Reset(cfg.Client, site)
	sess.Server.GroundTruth = sess.GroundTruth
	sess.Conn.Reset(cfg.Path, cfg.TCP)
	// Fan the metric sink out to every layer before Attach, so even the
	// SETTINGS exchange is counted (each layer's Reset cleared its copy).
	sess.Conn.SetObs(cfg.Obs)
	sess.Client.Obs = cfg.Obs
	sess.Server.Obs = cfg.Obs
	sess.Conn.Path.Mbox.Capture = sess.Capture
	sess.Client.Attach(sess.Conn.Client)
	sess.Server.Attach(sess.Conn.Server)
	sess.Conn.Client.OnRetransmit = sess.Client.OnTCPRetransmit
}

// Middlebox returns the compromised vantage point for adversary
// installation.
func (sess *Session) Middlebox() *netem.Middlebox { return sess.Conn.Path.Mbox }

// Run executes the page load until completion, connection break, or
// the time limit, then drains in-flight transmissions.
func (sess *Session) Run() {
	sess.Client.Start()
	limit := sess.cfg.TimeLimit
	sess.Sim.RunWhile(func() bool {
		return sess.Sim.Now() < limit &&
			!sess.Conn.Broken() &&
			!sess.Client.AllScheduledComplete()
	})
	if !sess.Conn.Broken() {
		sess.Sim.RunUntil(sess.Sim.Now() + sess.cfg.DrainTime)
	}
}

// Broken reports whether the trial ended with a broken connection.
func (sess *Session) Broken() bool { return sess.Conn.Broken() }

// TotalRetransmissions sums the transport retransmissions on both
// endpoints with the client's application-level re-requests — the
// paper's "number of retransmissions" observable.
func (sess *Session) TotalRetransmissions() int {
	return sess.Conn.Client.Stats.Retransmits +
		sess.Conn.Server.Stats.Retransmits +
		sess.Client.Stats.ReRequests
}
