package h2sim

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/website"
)

// tracesEqual compares two traces element-wise (capacity and nilness
// of the backing arrays are irrelevant — a reused trace keeps its
// arrays, a fresh one grows them).
func tracesEqual(t *testing.T, name string, a, b *trace.Trace) {
	t.Helper()
	if len(a.Packets) != len(b.Packets) {
		t.Errorf("%s: packet count %d != %d", name, len(a.Packets), len(b.Packets))
		return
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Errorf("%s: packet %d: %+v != %+v", name, i, a.Packets[i], b.Packets[i])
			return
		}
	}
	if len(a.Records) != len(b.Records) {
		t.Errorf("%s: record count %d != %d", name, len(a.Records), len(b.Records))
		return
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Errorf("%s: record %d: %+v != %+v", name, i, a.Records[i], b.Records[i])
			return
		}
	}
	if len(a.Frames) != len(b.Frames) {
		t.Errorf("%s: frame count %d != %d", name, len(a.Frames), len(b.Frames))
		return
	}
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Errorf("%s: frame %d: %+v != %+v", name, i, a.Frames[i], b.Frames[i])
			return
		}
	}
}

// TestSessionResetReplaysFreshRun is the session-level reuse
// contract: a session dirtied by trials at other seeds and then Reset
// to a target (site, cfg, seed) must produce the same wire trace and
// ground truth, byte for byte, as a session freshly constructed for
// that target.
func TestSessionResetReplaysFreshRun(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	targetCfg := SessionConfig{Seed: 77, RandomizeAmbient: true}

	fresh := NewSession(site, targetCfg)
	fresh.Run()

	reused := NewSession(site, SessionConfig{Seed: 5, RandomizeAmbient: true})
	reused.Run()
	otherSite := website.Survey(website.RandomPermutation(rand.New(rand.NewSource(9))))
	reused.Reset(otherSite, SessionConfig{Seed: 6})
	reused.Run()
	reused.Reset(site, targetCfg)
	reused.Run()

	tracesEqual(t, "capture", fresh.Capture, reused.Capture)
	tracesEqual(t, "ground truth", fresh.GroundTruth, reused.GroundTruth)
	if fresh.Client.Stats != reused.Client.Stats {
		t.Errorf("client stats: fresh %+v != reused %+v", fresh.Client.Stats, reused.Client.Stats)
	}
	if fresh.Server.Stats != reused.Server.Stats {
		t.Errorf("server stats: fresh %+v != reused %+v", fresh.Server.Stats, reused.Server.Stats)
	}
	if fresh.TotalRetransmissions() != reused.TotalRetransmissions() {
		t.Errorf("retransmissions: fresh %d != reused %d",
			fresh.TotalRetransmissions(), reused.TotalRetransmissions())
	}
}
