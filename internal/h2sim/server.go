// Package h2sim provides event-driven HTTP/2 endpoints over the
// simulated TCP/TLS stack: a multi-threaded server model whose
// concurrent per-request workers interleave object segments on the
// shared transmit queue (the multiplexing the paper studies), and a
// browser-like client that issues a scheduled request sequence,
// re-requests stalled objects (the paper's "TCP fast-retransmit"
// behaviour at the application layer), and resets all streams on a
// persistently lossy channel (the paper's RST_STREAM lever).
//
// The bytes on the simulated wire are genuine RFC 7540 frames with
// genuine HPACK header blocks, sealed into TLS records and segmented
// by the TCP simulation — so the adversary observes exactly what a
// real on-path device would.
//
// Key types: Session (one page load: site + path + endpoints + ground
// truth, the unit every experiment trial runs), Server and Client
// (the endpoint models), and their ServerConfig/ClientConfig knobs
// (ablation levers; see DESIGN.md section 5). The package models the
// paper's Apache origin and Chrome client (section V testbed).
package h2sim

import (
	"time"

	"repro/internal/h2"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tlsrec"
	"repro/internal/trace"
	"repro/internal/website"
)

// ServerConfig tunes the server model.
type ServerConfig struct {
	// ChunkPlain is the DATA payload per frame/record; sized so one
	// record fits one TCP segment. Default 1400.
	ChunkPlain int

	// ServiceTime is the per-chunk processing time of a worker thread
	// (disk read + TLS sealing). Concurrency of workers over this
	// interval is what interleaves objects. Default 500µs.
	ServiceTime time.Duration

	// ServiceJitter adds uniform [0, ServiceJitter) noise per chunk.
	// Default 200µs.
	ServiceJitter time.Duration

	// HeaderDelay is the request-processing latency before the
	// response HEADERS frame. Default 300µs.
	HeaderDelay time.Duration

	// SendBufLimit is the socket-buffer backpressure threshold: a
	// worker pauses while the TCP send buffer holds at least this many
	// bytes, so the enqueue (interleaving) order tracks the wire pace.
	// This is what lets slow-start over a long-RTT path stretch early
	// object transmissions across later requests — the baseline
	// multiplexing source. Default 24 KiB.
	SendBufLimit int

	// DisableDuplicates suppresses the paper-observed behaviour of
	// serving every copy of a retransmitted request (ablation 2 in
	// DESIGN.md). Default false: duplicates are served.
	DisableDuplicates bool

	// DisableBackpressure makes workers enqueue at pure service rate
	// regardless of the socket buffer (ablation 1: wire-driven-only
	// multiplexing collapses).
	DisableBackpressure bool

	// Push maps a request path to resource paths the server pushes
	// (PUSH_PROMISE) when that path is requested — the paper's
	// section VII proposal of using server push for privacy: pushed
	// resources are sent in the server's fixed order, so the request
	// sequence carries no secret.
	Push map[string][]string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ChunkPlain == 0 {
		c.ChunkPlain = 1400
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = 500 * time.Microsecond
	}
	if c.ServiceJitter == 0 {
		c.ServiceJitter = 200 * time.Microsecond
	}
	if c.HeaderDelay == 0 {
		c.HeaderDelay = 300 * time.Microsecond
	}
	if c.SendBufLimit == 0 {
		c.SendBufLimit = 56 << 10
	}
	return c
}

// ServerStats counts server-side events.
type ServerStats struct {
	Requests   int // request HEADERS received (including duplicates)
	Duplicates int // requests beyond the first for the same object
	Resets     int // RST_STREAM frames received
	DataFrames int
	BytesData  int64
}

// Server is the simulated multi-threaded HTTP/2 origin.
type Server struct {
	s    *sim.Simulator
	cfg  ServerConfig
	site *website.Site
	tcp  *tcpsim.Endpoint

	opener  tlsrec.Opener
	sealer  tlsrec.Sealer
	scanner h2.FrameScanner
	hdec    *h2.HpackDecoder
	henc    *h2.HpackEncoder

	// GroundTruth receives FrameEvents attributing wire bytes to
	// object copies; may be nil.
	GroundTruth *trace.Trace

	offset int64 // bytes written to the TCP stream so far

	// Dense worker/copy tables, indexed by raw stream ID and object ID
	// (see the Client's tables for the indexing rationale); active
	// counts the non-nil workers so ActiveWorkers is O(1).
	workers       []*worker // by stream ID; nil = no worker on that stream
	copies        []int     // by object ID: copies spawned
	active        int
	nextPushID    uint32 // next server-initiated (even) stream id
	pushedAlready map[string]bool

	// Worker recycling. wfree holds workers ready for reuse; parked
	// holds cancelled workers whose already-scheduled step event has
	// not fired yet (reusing one early would let the stale event drive
	// the wrong stream), reclaimed wholesale at the next Reset.
	wfree  []*worker
	parked []*worker

	// Per-chunk scratch, hoisted so the steady-state transmit path
	// (worker.step → writeRecord) allocates nothing: record/frame/
	// header-block build buffers, the synthetic body (content never
	// varies, only size), a reusable DATA frame value, and the FeedInto
	// callback built once.
	recBuf   []byte
	frameBuf []byte
	blockBuf []byte
	hdrFrame h2.HeadersFrame // scratch: a stack literal would escape through AppendFrame
	zeroBody []byte
	dataF    h2.DataFrame
	frameCb  func(h2.Frame) error

	// Stats accumulates counters.
	Stats ServerStats

	// Obs receives metric increments and flight events; the zero Sink
	// discards them.
	Obs obs.Sink
}

// NewServer builds the server for a site. Call Attach before running.
// Construction is skeleton allocation plus Reset, so a freshly built
// server and a reused one start every trial in identical state by
// construction.
func NewServer(s *sim.Simulator, cfg ServerConfig, site *website.Site) *Server {
	sv := &Server{
		s:             s,
		hdec:          h2.NewHpackDecoder(4096),
		henc:          h2.NewHpackEncoder(4096),
		pushedAlready: make(map[string]bool),
	}
	sv.frameCb = func(f h2.Frame) error {
		sv.handleFrame(f)
		return nil
	}
	sv.Reset(cfg, site)
	return sv
}

// Reset returns the server to its just-constructed state for a new
// trial: configuration and site swapped in, protocol state (HPACK
// tables, stream scanners, stream-id counters, worker set) rewound,
// stats zeroed. All scratch capacity and recycled workers are kept.
// Call after the simulator has been Reset, then Attach.
func (sv *Server) Reset(cfg ServerConfig, site *website.Site) {
	sv.cfg = cfg.withDefaults()
	sv.site = site
	sv.tcp = nil
	sv.opener.Reset()
	sv.scanner.Reset()
	sv.hdec.Reset(4096)
	sv.henc.Reset(4096)
	sv.GroundTruth = nil
	sv.offset = 0
	// Recycle leftover workers: with the event queue already cleared,
	// no stale step event can reference them. Recycled workers are
	// interchangeable once zeroed, so reclaim order does not matter.
	for id, w := range sv.workers {
		if w != nil {
			sv.wfree = append(sv.wfree, w)
			sv.workers[id] = nil
		}
	}
	sv.active = 0
	for i, w := range sv.parked {
		sv.wfree = append(sv.wfree, w)
		sv.parked[i] = nil
	}
	sv.parked = sv.parked[:0]
	for i := range sv.copies {
		sv.copies[i] = 0
	}
	sv.nextPushID = 2
	clear(sv.pushedAlready)
	if cap(sv.zeroBody) < sv.cfg.ChunkPlain {
		sv.zeroBody = make([]byte, sv.cfg.ChunkPlain)
	} else {
		sv.zeroBody = sv.zeroBody[:sv.cfg.ChunkPlain]
	}
	sv.Stats = ServerStats{}
	sv.Obs = obs.Sink{}
}

// worker looks up the worker serving a stream; nil if none.
func (sv *Server) worker(streamID uint32) *worker {
	if int(streamID) >= len(sv.workers) {
		return nil
	}
	return sv.workers[streamID]
}

// putWorker registers a worker in the dense table.
func (sv *Server) putWorker(streamID uint32, w *worker) {
	if int(streamID) >= len(sv.workers) {
		sv.workers = growTable(sv.workers, int(streamID)+1)
	}
	sv.workers[streamID] = w
	sv.active++
}

// delWorker removes a stream's worker. The stream must be present.
func (sv *Server) delWorker(streamID uint32) {
	sv.workers[streamID] = nil
	sv.active--
}

// nextCopy returns and advances the object's spawned-copy counter.
func (sv *Server) nextCopy(objectID int) int {
	if objectID >= len(sv.copies) {
		sv.copies = growTable(sv.copies, objectID+1)
	}
	n := sv.copies[objectID]
	sv.copies[objectID]++
	return n
}

// getWorker returns a recycled worker reinitialized for a stream, or
// a fresh one with its step callback prebuilt.
func (sv *Server) getWorker(streamID uint32, obj website.Object, copyID int) *worker {
	if n := len(sv.wfree); n > 0 {
		w := sv.wfree[n-1]
		sv.wfree[n-1] = nil
		sv.wfree = sv.wfree[:n-1]
		*w = worker{sv: sv, streamID: streamID, obj: obj, copyID: copyID,
			stepFn: w.stepFn, sendFn: w.sendFn}
		return w
	}
	w := &worker{sv: sv, streamID: streamID, obj: obj, copyID: copyID}
	w.stepFn = w.step
	w.sendFn = w.sendHeaders
	return w
}

// Attach wires the server to its TCP endpoint and announces SETTINGS.
func (sv *Server) Attach(tcp *tcpsim.Endpoint) {
	sv.tcp = tcp
	settings := h2.MarshalFrame(&h2.SettingsFrame{Settings: []h2.Setting{
		{ID: h2.SettingInitialWindowSize, Val: 1 << 30},
		{ID: h2.SettingMaxConcurrentStreams, Val: 256},
	}})
	sv.writeRecord(tlsrec.TypeAppData, settings)
}

// writeRecord seals plaintext into one record and writes it to TCP,
// returning the record's wire offset and length. The sealed bytes go
// through a recycled buffer (tcp.Write copies them into its send
// buffer), so sealing allocates nothing in steady state.
func (sv *Server) writeRecord(contentType uint8, plaintext []byte) (int64, int) {
	sv.recBuf = sv.sealer.Seal(sv.recBuf[:0], contentType, plaintext)
	off := sv.offset
	sv.offset += int64(len(sv.recBuf))
	sv.tcp.Write(sv.recBuf)
	return off, len(sv.recBuf)
}

// OnBytes is the TCP delivery callback (ordered inbound byte stream).
// The record and frame parse paths run on recycled scratch
// (Opener.FeedReuse, FrameScanner.FeedInto), which is safe because
// handleFrame never retains frame memory past the call.
func (sv *Server) OnBytes(b []byte) {
	recs, err := sv.opener.FeedReuse(b)
	if err != nil {
		return // corrupted stream: drop silently, TCP sim shouldn't produce this
	}
	for _, r := range recs {
		if r.ContentType != tlsrec.TypeAppData {
			continue
		}
		_ = sv.scanner.FeedInto(r.Body, sv.frameCb)
	}
}

func (sv *Server) handleFrame(f h2.Frame) {
	switch fv := f.(type) {
	case *h2.HeadersFrame:
		sv.handleRequest(fv)
	case *h2.RSTStreamFrame:
		sv.Stats.Resets++
		sv.Obs.Inc(obs.CH2SrvRSTRecv)
		if w := sv.worker(fv.StreamID); w != nil {
			// Flush the stream: the worker stops enqueueing segments
			// (paper section IV-D: "the server closes the stream and
			// flushes the corresponding object segments from its
			// queue"). Its pending step event still references it, so
			// park it for recycling at the next Reset rather than
			// reusing it immediately.
			w.cancelled = true
			sv.delWorker(fv.StreamID)
			sv.parked = append(sv.parked, w)
		}
	case *h2.SettingsFrame:
		if !fv.Ack {
			sv.writeRecord(tlsrec.TypeAppData, h2.MarshalFrame(&h2.SettingsFrame{Ack: true}))
		}
	default:
		// PING/WINDOW_UPDATE/PRIORITY are irrelevant to the model.
	}
}

// handleRequest spawns a worker thread for the requested object.
// Every received request copy gets its own worker, including
// duplicates from client re-requests — the multi-threaded behaviour
// the paper observed causing intensified multiplexing.
func (sv *Server) handleRequest(f *h2.HeadersFrame) {
	fields, err := sv.hdec.DecodeFullReuse(f.BlockFragment)
	if err != nil {
		return
	}
	var path string
	for _, hf := range fields {
		if hf.Name == ":path" {
			path = hf.Value
		}
	}
	obj, ok := sv.site.ObjectByPath(path)
	if !ok {
		sv.respondNotFound(f.StreamID)
		return
	}
	sv.Stats.Requests++
	copyID := sv.nextCopy(obj.ID)
	if copyID > 0 {
		sv.Stats.Duplicates++
		sv.Obs.Inc(obs.CH2SrvDupCopy)
		sv.Obs.Event(sv.s.Now(), obs.EvH2SrvDupCopy, int64(obj.ID), int64(copyID))
		if sv.cfg.DisableDuplicates {
			// Ablation: a deduplicating server answers duplicates with
			// an empty 200 instead of re-serving the body.
			sv.respondEmpty(f.StreamID)
			return
		}
	}
	w := sv.getWorker(f.StreamID, obj, copyID)
	sv.putWorker(f.StreamID, w)
	sv.Obs.Inc(obs.CH2SrvWorker)
	sv.s.After(sv.cfg.HeaderDelay, w.sendFn)
	sv.pushFor(obj.Path, f.StreamID)
}

// pushFor initiates any configured server pushes for the requested
// path: a PUSH_PROMISE on the requesting stream, then the pushed
// response on a server-initiated (even) stream.
func (sv *Server) pushFor(path string, parentStream uint32) {
	for _, pushPath := range sv.cfg.Push[path] {
		if sv.pushedAlready[pushPath] {
			continue
		}
		obj, ok := sv.site.ObjectByPath(pushPath)
		if !ok {
			continue
		}
		sv.pushedAlready[pushPath] = true
		promiseID := sv.nextPushID
		sv.nextPushID += 2
		sv.blockBuf = sv.henc.AppendHeaderBlock(sv.blockBuf[:0], []h2.HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: "https"},
			{Name: ":path", Value: pushPath},
		})
		sv.frameBuf = h2.AppendFrame(sv.frameBuf[:0], &h2.PushPromiseFrame{
			StreamID:      parentStream,
			PromiseID:     promiseID,
			BlockFragment: sv.blockBuf,
			EndHeaders:    true,
		})
		sv.writeRecord(tlsrec.TypeAppData, sv.frameBuf)
		w := sv.getWorker(promiseID, obj, sv.nextCopy(obj.ID))
		sv.putWorker(promiseID, w)
		sv.Obs.Inc(obs.CH2SrvPush)
		sv.Obs.Inc(obs.CH2SrvWorker)
		sv.s.After(sv.cfg.HeaderDelay, w.sendFn)
	}
}

func (sv *Server) respondNotFound(streamID uint32) {
	sv.respondBodyless(streamID, "404")
}

func (sv *Server) respondEmpty(streamID uint32) {
	sv.respondBodyless(streamID, "200")
}

// respondBodyless sends a HEADERS-only response through the recycled
// build buffers.
func (sv *Server) respondBodyless(streamID uint32, status string) {
	sv.blockBuf = sv.henc.AppendHeaderBlock(sv.blockBuf[:0], []h2.HeaderField{{Name: ":status", Value: status}})
	sv.frameBuf = h2.AppendFrame(sv.frameBuf[:0], &h2.HeadersFrame{
		StreamID: streamID, BlockFragment: sv.blockBuf, EndHeaders: true, EndStream: true,
	})
	sv.writeRecord(tlsrec.TypeAppData, sv.frameBuf)
}

// serviceInterval draws one per-chunk service time.
func (sv *Server) serviceInterval() time.Duration {
	d := sv.cfg.ServiceTime
	if sv.cfg.ServiceJitter > 0 {
		d += time.Duration(sv.s.Rand().Int63n(int64(sv.cfg.ServiceJitter)))
	}
	return d
}

// worker is one server "thread" streaming one object copy. Workers
// are recycled through Server.wfree (see getWorker); the stepFn
// method value is created once per worker object and survives reuse.
type worker struct {
	sv        *Server
	streamID  uint32
	obj       website.Object
	copyID    int
	sent      int
	cancelled bool
	stepFn    func() // w.step, created once: rescheduling allocates no method value
	sendFn    func() // w.sendHeaders, created once, same reason
}

// sendHeaders emits the response HEADERS record and schedules the
// first data chunk.
func (w *worker) sendHeaders() {
	if w.cancelled {
		return
	}
	sv := w.sv
	sv.blockBuf = sv.henc.AppendHeaderBlock(sv.blockBuf[:0], []h2.HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "content-type", Value: "application/octet-stream"},
	})
	sv.hdrFrame = h2.HeadersFrame{
		StreamID:      w.streamID,
		BlockFragment: sv.blockBuf,
		EndHeaders:    true,
	}
	sv.frameBuf = h2.AppendFrame(sv.frameBuf[:0], &sv.hdrFrame)
	off, n := sv.writeRecord(tlsrec.TypeAppData, sv.frameBuf)
	if sv.GroundTruth != nil {
		sv.GroundTruth.AddFrame(trace.FrameEvent{
			Time:     sv.s.Now(),
			StreamID: w.streamID,
			ObjectID: w.obj.ID,
			CopyID:   w.copyID,
			Len:      0, // HEADERS marker
			Offset:   off,
			WireLen:  n,
		})
	}
	sv.s.After(sv.serviceInterval(), w.stepFn)
}

// step enqueues one data chunk and reschedules until the object is
// fully transmitted.
func (w *worker) step() {
	if w.cancelled {
		return
	}
	sv := w.sv
	if !sv.cfg.DisableBackpressure && sv.tcp.BufferedSend() >= sv.cfg.SendBufLimit {
		// Socket buffer full: wait for the wire to drain before
		// producing the next chunk. Poll no faster than 10ms so a
		// stalled transport (e.g. during the attack's drop phase) does
		// not turn blocked workers into an event storm.
		retry := sv.serviceInterval()
		if retry < 10*time.Millisecond {
			retry = 10 * time.Millisecond
		}
		sv.s.After(retry, w.stepFn)
		return
	}
	n := sv.cfg.ChunkPlain
	if rem := w.obj.Size - w.sent; n > rem {
		n = rem
	}
	end := w.sent+n == w.obj.Size
	// Synthetic body bytes; content is irrelevant, size is the
	// side-channel.
	sv.dataF = h2.DataFrame{
		StreamID:  w.streamID,
		Data:      sv.zeroBody[:n],
		EndStream: end,
	}
	sv.frameBuf = h2.AppendFrame(sv.frameBuf[:0], &sv.dataF)
	off, wlen := sv.writeRecord(tlsrec.TypeAppData, sv.frameBuf)
	w.sent += n
	sv.Stats.DataFrames++
	sv.Stats.BytesData += int64(n)
	if sv.GroundTruth != nil {
		sv.GroundTruth.AddFrame(trace.FrameEvent{
			Time:     sv.s.Now(),
			StreamID: w.streamID,
			ObjectID: w.obj.ID,
			CopyID:   w.copyID,
			Len:      n,
			Offset:   off,
			WireLen:  wlen,
			End:      end,
		})
	}
	if end {
		// The completed worker has no pending events left (this firing
		// was its only one), so it can be reused immediately.
		sv.delWorker(w.streamID)
		sv.wfree = append(sv.wfree, w)
		return
	}
	sv.s.After(sv.serviceInterval(), w.stepFn)
}

// ActiveWorkers reports how many object transmissions are in flight.
// O(1): the counter tracks dense-table inserts and removals.
func (sv *Server) ActiveWorkers() int { return sv.active }
