package runner

import (
	"testing"

	"repro/internal/telemetry"
)

// TestGaugesEndState verifies the runner leaves the telemetry plane
// consistent after a run: every trial counted, nothing left in
// flight or parked, the pool and ring dimensions published, and the
// busy clock advanced (gauges enable per-trial timing the way
// OnTrialDone does).
func TestGaugesEndState(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := &telemetry.Gauges{}
		const n = 200
		var emitted int
		StreamWith(n, StreamOptions{Options: Options{Workers: workers, Gauges: g}, Batch: 7},
			func() struct{} { return struct{}{} },
			func(_ struct{}, i int) int { return i * i },
			func(i int, r int, err *TrialError) bool {
				emitted++
				return true
			})
		if emitted != n {
			t.Fatalf("workers=%d: emitted %d of %d", workers, emitted, n)
		}
		if got := g.Load(telemetry.GTrialsDone); got != n {
			t.Errorf("workers=%d: GTrialsDone = %d, want %d", workers, got, n)
		}
		if got := g.Load(telemetry.GWorkers); got != int64(workers) {
			t.Errorf("workers=%d: GWorkers = %d", workers, got)
		}
		if got := g.Load(telemetry.GInFlight); got != 0 {
			t.Errorf("workers=%d: GInFlight = %d after completion, want 0", workers, got)
		}
		if got := g.Load(telemetry.GRingParked); got != 0 {
			t.Errorf("workers=%d: GRingParked = %d after completion, want 0", workers, got)
		}
		if got := g.Load(telemetry.GWorkersBusy); got != 0 {
			t.Errorf("workers=%d: GWorkersBusy = %d after completion, want 0", workers, got)
		}
		if got := g.Load(telemetry.GClaims); got < int64(n)/7 {
			t.Errorf("workers=%d: GClaims = %d, want >= %d", workers, got, n/7)
		}
		if workers > 1 {
			if got := g.Load(telemetry.GRingCapacity); got < 64 {
				t.Errorf("GRingCapacity = %d, want the default window (>= 64)", got)
			}
		}
	}
}

// TestGaugesDoNotAffectStream pins the wall-vs-deterministic
// boundary at the runner level: the emitted (index, result) stream
// with the telemetry plane enabled is exactly the stream with it
// disabled, at every worker count.
func TestGaugesDoNotAffectStream(t *testing.T) {
	run := func(workers int, g *telemetry.Gauges) []int {
		var out []int
		StreamWith(300, StreamOptions{Options: Options{Workers: workers, Gauges: g}, Batch: 5},
			func() struct{} { return struct{}{} },
			func(_ struct{}, i int) int { return i*31 + 7 },
			func(i int, r int, err *TrialError) bool {
				out = append(out, r)
				return true
			})
		return out
	}
	want := run(1, nil)
	for _, workers := range []int{1, 2, 8} {
		got := run(workers, &telemetry.Gauges{})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestProgressTrialsPerSec verifies the TrialsPerSec field: positive
// while trials complete, and consistent with Completed/Elapsed (one
// code path feeds both the -progress line and /status).
func TestProgressTrialsPerSec(t *testing.T) {
	var last Progress
	Run(50, Options{Workers: 2, OnProgress: func(p Progress) { last = p }},
		func(i int) int { return i })
	if last.Completed != 50 {
		t.Fatalf("final progress completed = %d", last.Completed)
	}
	if last.TrialsPerSec <= 0 {
		t.Errorf("TrialsPerSec = %v, want > 0", last.TrialsPerSec)
	}
	if last.Elapsed > 0 {
		want := float64(last.Completed) / last.Elapsed.Seconds()
		if diff := last.TrialsPerSec - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("TrialsPerSec = %v, want Completed/Elapsed = %v", last.TrialsPerSec, want)
		}
	}
}
