// Package runner executes batches of independent seeded trials
// across a worker pool while preserving the deterministic aggregate
// output of a serial run.
//
// Every sweep in this repository (Tables I/II, Figure 5, the §IV-A
// and §IV-D experiments, the §VII defence evaluation) is N
// independent single-threaded discrete-event simulations, each driven
// entirely by its trial index — a trivially parallel workload. Run
// fans the indices [0,n) across Workers goroutines and collects the
// results into an index-ordered slice, so downstream aggregation
// visits trials in exactly the order a serial loop would and produces
// byte-identical tables at any worker count. Determinism therefore
// rests on one caller-side rule: a trial's behaviour must be a pure
// function of its index (derive the seed from the index, never from
// worker identity or shared state).
//
// A panic inside one trial is captured with its stack and reported as
// a TrialError instead of killing the sweep; the remaining trials
// still run. Progress (completed count, elapsed, ETA) is reported
// through an optional callback.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Progress is a snapshot of a running batch, delivered to
// Options.OnProgress after each trial completes. Callbacks are
// serialized by the runner (never invoked concurrently).
type Progress struct {
	// Completed counts finished trials, including failed ones.
	Completed int
	// Failed counts trials that panicked.
	Failed int
	// Total is the batch size n.
	Total int
	// Elapsed is the wall-clock time since Run started.
	Elapsed time.Duration
	// Remaining estimates the wall-clock time left, extrapolating
	// from the mean per-trial cost so far (0 until one trial is done).
	Remaining time.Duration
	// TrialsPerSec is the wall throughput so far, Completed/Elapsed
	// (0 until the clock has advanced). This is the single source of
	// the campaign rate: the -progress ETA line and the telemetry
	// /status endpoint both report this field, so they can never
	// disagree. Wall-clock derived and therefore non-deterministic —
	// like Elapsed/Remaining it must stay out of exported bytes.
	TrialsPerSec float64
}

// Options configures a Run.
type Options struct {
	// Workers is the number of concurrent trial executors. Zero or
	// negative means runtime.GOMAXPROCS(0). Workers == 1 runs the
	// trials inline on the calling goroutine (the serial path).
	Workers int

	// OnProgress, when non-nil, is invoked after every trial
	// completion with a consistent snapshot. It runs on a worker
	// goroutine under the runner's lock; keep it cheap.
	OnProgress func(Progress)

	// OnTrialDone, when non-nil, is invoked after every trial with its
	// index and wall-clock duration (the trial function alone, lock
	// wait excluded). Like OnProgress it runs serialized under the
	// runner's lock; keep it cheap. Trial timing is only measured when
	// this is set, so the default path pays nothing. Wall-clock
	// durations are inherently non-deterministic — consumers (e.g. the
	// metrics registry's wall section) must keep them out of any
	// deterministic aggregate.
	OnTrialDone func(index int, elapsed time.Duration)

	// Gauges, when non-nil, receives live health samples: worker-pool
	// size and busy count, cumulative trials/claims/busy-nanoseconds,
	// and reorder-ring occupancy (in-flight and parked trials). The
	// runner only writes gauges — they are sampled by the telemetry
	// status server and never read back, so they cannot influence the
	// emitted stream. Nil (the default) disables the plane at zero
	// cost; setting it enables per-trial wall timing like OnTrialDone.
	Gauges *telemetry.Gauges
}

// TrialError reports a trial that panicked.
type TrialError struct {
	// Index is the trial whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *TrialError) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v", e.Index, e.Value)
}

// Run executes fn(i) for every i in [0,n) across a worker pool and
// returns the results in index order. Trials that panic leave the
// zero value of T at their index and are reported in the second
// return value, ordered by trial index (nil when every trial
// succeeded). Run itself never panics on a trial failure.
//
// fn must treat its index argument as the trial's only identity: with
// index-derived seeds the returned slice is identical for every
// worker count.
func Run[T any](n int, opts Options, fn func(index int) T) ([]T, []*TrialError) {
	return RunWith(n, opts,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return fn(i) })
}

// RunWith is Run with per-worker reusable state: newState builds one
// S per worker goroutine (one total on the serial path) and fn
// receives that worker's state alongside the trial index. This is how
// the sweeps amortize expensive per-trial setup — each worker keeps
// one reusable trial world and resets it per index.
//
// The determinism contract extends accordingly: fn(state, i) must
// return a result that depends only on i, treating state purely as a
// reusable arena (re-initialized from the index-derived seed), never
// as a channel between trials. Which worker's state a trial sees
// depends on scheduling; any state leak shows up as worker-count-
// dependent output.
//
// RunWith is the collect-everything convenience over StreamWith: it
// allocates the full result slice up front. Callers that must stay
// in bounded memory (long campaigns) use StreamWith directly.
func RunWith[S, T any](n int, opts Options, newState func() S, fn func(state S, index int) T) ([]T, []*TrialError) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	var failures []*TrialError
	StreamWith(n, StreamOptions{Options: opts}, newState, fn,
		func(i int, result T, err *TrialError) bool {
			results[i] = result
			if err != nil {
				failures = append(failures, err)
			}
			return true
		})
	return results, failures
}

// defaultWorkers resolves the Workers zero value.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// state is the mutable completion bookkeeping shared by the workers
// of one Run/StreamWith: completion counts and the progress/timing
// callbacks, serialized under one lock.
type state struct {
	mu          sync.Mutex
	completed   int
	failed      int
	total       int
	start       time.Time
	onProgress  func(Progress)
	onTrialDone func(int, time.Duration)
	gauges      *telemetry.Gauges
}

// newRunState builds the completion bookkeeping for a batch of total
// trials.
func newRunState(total int, opts Options) *state {
	return &state{total: total, start: time.Now(), onProgress: opts.OnProgress, onTrialDone: opts.OnTrialDone, gauges: opts.Gauges}
}

// timed reports whether trials must be wall-clock timed (only when a
// consumer asked — the progress-timing callback or the telemetry
// busy-fraction gauges — so the default path pays nothing).
func (st *state) timed() bool { return st.onTrialDone != nil || st.gauges != nil }

// finishOne records one trial completion and fires the callbacks,
// serialized under the state lock.
func (st *state) finishOne(i int, failure *TrialError, elapsed time.Duration) {
	st.mu.Lock()
	st.finishLocked(i, failure, elapsed)
	st.mu.Unlock()
}

// beginFinish/endFinish bracket a run of finishLocked calls so a
// worker delivering a whole chunk pays one lock acquisition for the
// chunk's completion bookkeeping instead of one per trial.
func (st *state) beginFinish() { st.mu.Lock() }
func (st *state) endFinish()   { st.mu.Unlock() }

// finishLocked is finishOne's body; the caller holds st.mu. Callbacks
// still fire once per trial.
func (st *state) finishLocked(i int, failure *TrialError, elapsed time.Duration) {
	st.completed++
	if failure != nil {
		st.failed++
	}
	st.gauges.Add(telemetry.GTrialsDone, 1)
	st.gauges.Add(telemetry.GBusyNanos, int64(elapsed))
	if st.onTrialDone != nil {
		st.onTrialDone(i, elapsed)
	}
	if st.onProgress != nil {
		st.onProgress(st.progressLocked())
	}
}

// progressLocked builds the Progress snapshot for the current
// completion counts; the caller holds st.mu.
func (st *state) progressLocked() Progress {
	p := Progress{
		Completed: st.completed,
		Failed:    st.failed,
		Total:     st.total,
		Elapsed:   time.Since(st.start),
	}
	if p.Completed > 0 && p.Completed < p.Total {
		perTrial := p.Elapsed / time.Duration(p.Completed)
		p.Remaining = perTrial * time.Duration(p.Total-p.Completed)
	}
	if p.Completed > 0 && p.Elapsed > 0 {
		p.TrialsPerSec = float64(p.Completed) / p.Elapsed.Seconds()
	}
	return p
}

// protect runs one trial and converts a panic into a TrialError.
func protect[S, T any](i int, out *T, ws S, fn func(S, int) T) (failure *TrialError) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 64<<10)
			failure = &TrialError{Index: i, Value: v, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	*out = fn(ws, i)
	return nil
}
