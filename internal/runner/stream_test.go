package runner

import (
	"sync"
	"testing"
)

// TestStreamBatchEmitsIdenticalStream checks the batching contract:
// the emitted (index, result) stream is the same at every worker
// count, window size, and claim batch — batching only moves work
// between workers, never reorders or changes output.
func TestStreamBatchEmitsIdenticalStream(t *testing.T) {
	const n = 503
	run := func(workers, window, batch, start int) []int {
		var got []int
		StreamWith(n,
			StreamOptions{Options: Options{Workers: workers}, Start: start, Window: window, Batch: batch},
			func() struct{} { return struct{}{} },
			func(_ struct{}, i int) int { return i * i },
			func(i int, r int, err *TrialError) bool {
				if err != nil {
					t.Errorf("trial %d failed: %v", i, err)
				}
				if r != i*i {
					t.Errorf("trial %d result %d, want %d", i, r, i*i)
				}
				got = append(got, i)
				return true
			})
		return got
	}
	for _, start := range []int{0, 5} {
		want := run(1, 0, 0, start)
		if len(want) != n-start {
			t.Fatalf("serial run emitted %d trials, want %d", len(want), n-start)
		}
		for _, workers := range []int{2, 3, 8} {
			for _, window := range []int{0, 8, 64} {
				for _, batch := range []int{0, 1, 3, 7, 64, 1000} {
					got := run(workers, window, batch, start)
					if len(got) != len(want) {
						t.Fatalf("workers=%d window=%d batch=%d start=%d: emitted %d trials, want %d",
							workers, window, batch, start, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d window=%d batch=%d start=%d: emit order differs at position %d: %d vs %d",
								workers, window, batch, start, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestStreamBatchKeepsChunksOnOneWorker checks the amortization
// guarantee: with Batch = B, every aligned B-index period [k*B,
// (k+1)*B) runs entirely on one worker — the property the survey
// relies on so a site's repetitions hit one worker's caches. Also
// covers resume alignment: a Start inside a period re-aligns after
// one short chunk.
func TestStreamBatchKeepsChunksOnOneWorker(t *testing.T) {
	const (
		n     = 240
		batch = 8
	)
	for _, start := range []int{0, 3} {
		var mu sync.Mutex
		workerOf := make(map[int]int, n)
		nextWorker := 0
		StreamWith(n,
			StreamOptions{Options: Options{Workers: 4}, Start: start, Batch: batch},
			func() *int {
				mu.Lock()
				defer mu.Unlock()
				id := nextWorker
				nextWorker++
				return &id
			},
			func(id *int, i int) int {
				mu.Lock()
				workerOf[i] = *id
				mu.Unlock()
				return i
			},
			func(int, int, *TrialError) bool { return true })
		for period := start / batch; period*batch < n; period++ {
			lo := period * batch
			if lo < start {
				lo = start
			}
			hi := (period + 1) * batch
			if hi > n {
				hi = n
			}
			w, seen := -1, false
			for i := lo; i < hi; i++ {
				id, ok := workerOf[i]
				if !ok {
					t.Fatalf("start=%d: trial %d never ran", start, i)
				}
				if !seen {
					w, seen = id, true
				} else if id != w {
					t.Fatalf("start=%d: period [%d,%d) split across workers %d and %d",
						start, lo, hi, w, id)
				}
			}
		}
	}
}

// TestStreamBatchStopAbandonsChunk checks that an emit-side stop ends
// the stream promptly mid-chunk: nothing past the stop index is
// emitted, and the call returns (no deadlocked workers).
func TestStreamBatchStopAbandonsChunk(t *testing.T) {
	const n = 400
	var emitted []int
	StreamWith(n,
		StreamOptions{Options: Options{Workers: 4}, Batch: 16},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) int { return i },
		func(i int, _ int, _ *TrialError) bool {
			emitted = append(emitted, i)
			return i < 57
		})
	if len(emitted) == 0 || emitted[len(emitted)-1] != 57 {
		t.Fatalf("emitted %v, want strict index order ending at the stop index 57", emitted)
	}
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("emit order broken at position %d: %d", i, idx)
		}
	}
}

// TestStreamBatchClampedToWindow pins the deadlock guard: a batch
// larger than the reorder ring is clamped, so workers can always
// claim and the stream completes.
func TestStreamBatchClampedToWindow(t *testing.T) {
	const n = 100
	count := 0
	StreamWith(n,
		StreamOptions{Options: Options{Workers: 3}, Window: 4, Batch: 1 << 20},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) int { return i },
		func(i int, _ int, _ *TrialError) bool {
			if i != count {
				t.Fatalf("emit order broken: got %d at position %d", i, count)
			}
			count++
			return true
		})
	if count != n {
		t.Fatalf("emitted %d of %d trials", count, n)
	}
}
