package runner

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// StreamOptions configures a StreamWith run. The embedded Options
// carry the worker count and the progress/timing callbacks with the
// same semantics as Run/RunWith.
type StreamOptions struct {
	Options

	// Start is the first trial index to execute; StreamWith runs
	// [Start, n). A checkpointed campaign resumes by setting Start to
	// the index after the last exported trial — because trials are
	// pure functions of their index, the emitted stream continues
	// exactly where the interrupted run left off.
	Start int

	// Window bounds how far trial execution may run ahead of the
	// emit cursor: at most Window trials are in flight or parked
	// waiting for an earlier index to complete, so memory stays
	// bounded no matter how long the campaign is. Zero or negative
	// selects max(64, 4*workers). The window never affects the
	// emitted stream, only scheduling.
	Window int

	// Batch is the number of consecutive trial indices a worker
	// claims at a time. Chunks are aligned: every claim is exactly
	// Batch indices (the final one may be the remainder), so a
	// campaign whose parameters repeat with period Batch — the
	// survey's SiteTrials repetitions of one site — keeps each
	// period on one worker, letting per-worker state (site cache,
	// primed size tables) amortize across it. Zero or negative
	// claims one index. Batching never affects the emitted stream,
	// only which worker runs which trial.
	Batch int

	// Stop, when non-nil, requests a graceful drain when it becomes
	// readable: workers claim no further chunks, every trial already
	// claimed completes and is emitted, then StreamWith returns. At
	// most workers×Batch trials execute after the signal. Draining —
	// rather than abandoning in-flight work the way an emit-side stop
	// does — means every executed trial reaches emit, so side effects
	// recorded during execution (per-worker metrics shards) exactly
	// match the emitted prefix.
	Stop <-chan struct{}
}

// stopRequested polls a drain channel without blocking.
func stopRequested(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// windowFor resolves the admission window for a worker count.
func (o StreamOptions) windowFor(workers int) int {
	if o.Window > 0 {
		return o.Window
	}
	if w := 4 * workers; w > 64 {
		return w
	}
	return 64
}

// StreamWith executes fn(state, i) for every i in [opts.Start, n)
// across a worker pool and delivers each result to emit in strict
// index order — the streaming core under internal/pipeline. Unlike
// RunWith it never accumulates results: completed trials are parked
// in a fixed-size reorder ring (capacity opts.Window) until every
// earlier index has been emitted, so a million-trial campaign holds
// at most Window results in memory.
//
// emit runs serialized (never concurrently) and in index order. A
// trial that panicked is delivered with the zero value of T and a
// non-nil *TrialError. emit's return value is the continuation
// signal: returning false stops the stream — no further trials are
// admitted, no further results are emitted, and in-flight trials are
// discarded (a resumed run will re-execute them; with index-derived
// seeds they reproduce exactly).
//
// The determinism contract is RunWith's: fn(state, i) must depend
// only on i, treating state purely as a reusable per-worker arena.
// Under that contract the emitted (index, result) stream is identical
// at every worker count and every window size.
func StreamWith[S, T any](n int, opts StreamOptions, newState func() S, fn func(state S, index int) T, emit func(index int, result T, err *TrialError) bool) {
	if n <= opts.Start {
		return
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	remaining := n - opts.Start
	if workers > remaining {
		workers = remaining
	}
	// Progress covers this run's portion: a resumed campaign reports
	// completion and ETA over the trials it still has to execute.
	st := newRunState(remaining, opts.Options)

	g := opts.Gauges
	g.Set(telemetry.GWorkers, int64(workers))

	if workers == 1 {
		// Serial path: run and emit inline; the window is irrelevant
		// because results are emitted as they complete.
		ws := newState()
		for i := opts.Start; i < n; i++ {
			if stopRequested(opts.Stop) {
				return
			}
			g.Add(telemetry.GClaims, 1)
			g.Set(telemetry.GWorkersBusy, 1)
			result, failure, elapsed := runTimed(st, i, ws, fn)
			g.Set(telemetry.GWorkersBusy, 0)
			st.finishOne(i, failure, elapsed)
			if !emit(i, result, failure) {
				return
			}
		}
		return
	}

	sw := &streamState[T]{
		runState: st,
		next:     opts.Start,
		head:     opts.Start,
		n:        n,
		ring:     make([]streamSlot[T], opts.windowFor(workers)),
	}
	g.Set(telemetry.GRingCapacity, int64(len(sw.ring)))
	sw.cond = sync.NewCond(&sw.mu)
	batch := opts.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > len(sw.ring) {
		batch = len(sw.ring)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := newState()
			// buf is the worker's private completion buffer, reused
			// across chunks: the whole chunk runs without touching any
			// shared state, then deliverChunk publishes it under one
			// lock acquisition — one coordination round per Batch
			// trials instead of one per trial.
			var buf []chunkResult[T]
			for {
				start, count, ok := sw.claim(batch, opts.Stop)
				if !ok {
					return
				}
				if cap(buf) < count {
					buf = make([]chunkResult[T], count)
				}
				buf = buf[:count]
				g.Add(telemetry.GWorkersBusy, 1)
				for k := 0; k < count; k++ {
					result, failure, elapsed := runTimed(st, start+k, ws, fn)
					buf[k] = chunkResult[T]{result: result, err: failure, elapsed: elapsed}
					if k+1 < count && sw.stopping.Load() {
						buf = buf[:k+1] // stream stopped; abandon the rest
						break
					}
				}
				g.Add(telemetry.GWorkersBusy, -1)
				if !sw.deliverChunk(start, buf, emit) {
					return
				}
			}
		}()
	}
	wg.Wait()
}

// chunkResult is one completed trial buffered worker-locally between
// execution and chunk delivery.
type chunkResult[T any] struct {
	result  T
	err     *TrialError
	elapsed time.Duration
}

// streamSlot is one parked completion in the reorder ring.
type streamSlot[T any] struct {
	result T
	err    *TrialError
	done   bool
}

// streamState is the shared bookkeeping of one StreamWith run.
type streamState[T any] struct {
	runState *state
	mu       sync.Mutex
	cond     *sync.Cond
	next     int // next index to hand to a worker
	head     int // next index to emit
	n        int
	parked   int // completed trials in the ring awaiting an earlier index
	stopped  bool
	ring     []streamSlot[T] // reorder buffer, indexed by index % len(ring)

	// stopping mirrors stopped for lock-free mid-chunk polling:
	// workers check it between trials so a large abandoned chunk stops
	// burning CPU without taking the stream lock per trial.
	stopping atomic.Bool
}

// claim hands the calling worker the next chunk of trial indices,
// blocking while the reorder window lacks room for the whole chunk
// (so a claimed chunk always fits the ring — batch is pre-clamped to
// the ring size). Chunk ends are aligned to absolute multiples of
// batch, so a campaign resumed mid-period re-aligns after one short
// chunk and every later claim covers exactly one period. Returns
// ok=false when the stream is exhausted or stopped, or when a drain
// was requested (already-claimed chunks still deliver — a waiter
// blocked on window room is woken by their delivery broadcasts and
// re-checks the drain before claiming).
func (sw *streamState[T]) claim(batch int, stop <-chan struct{}) (start, count int, ok bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for {
		if sw.stopped || sw.next >= sw.n || stopRequested(stop) {
			return 0, 0, false
		}
		want := batch - sw.next%batch
		if rem := sw.n - sw.next; rem < want {
			want = rem
		}
		if sw.next+want <= sw.head+len(sw.ring) {
			start = sw.next
			sw.next += want
			g := sw.runState.gauges
			g.Add(telemetry.GClaims, 1)
			g.Set(telemetry.GInFlight, int64(sw.next-sw.head))
			return start, want, true
		}
		sw.cond.Wait()
	}
}

// runTimed executes one trial with panic capture, measuring its wall
// clock only when a consumer asked for per-trial timing.
func runTimed[S, T any](st *state, i int, ws S, fn func(S, int) T) (result T, failure *TrialError, elapsed time.Duration) {
	if st.timed() {
		started := time.Now()
		failure = protect(i, &result, ws, fn)
		elapsed = time.Since(started)
		return result, failure, elapsed
	}
	failure = protect(i, &result, ws, fn)
	return result, failure, 0
}

// deliverChunk parks a chunk of consecutive completed trials starting
// at index start and emits every contiguous completed index from the
// head of the window — one stream-lock acquisition and one
// bookkeeping-lock acquisition per chunk, the batched aggregation
// that keeps dispatch overhead flat at high worker counts. The chunk
// always fits the ring: claim admitted it only when
// start+len(chunk) <= head+len(ring), and head only advances. Reports
// whether the stream is still running, so a worker knows to stop
// claiming.
func (sw *streamState[T]) deliverChunk(start int, chunk []chunkResult[T], emit func(int, T, *TrialError) bool) bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := sw.runState
	st.beginFinish()
	for k := range chunk {
		st.finishLocked(start+k, chunk[k].err, chunk[k].elapsed)
	}
	st.endFinish()
	if sw.stopped {
		return false
	}
	for k := range chunk {
		slot := &sw.ring[(start+k)%len(sw.ring)]
		slot.result, slot.err, slot.done = chunk[k].result, chunk[k].err, true
		// Hand the result's memory to the ring: the worker's reusable
		// buffer must not retain a second reference past delivery.
		chunk[k] = chunkResult[T]{}
	}
	sw.parked += len(chunk)
	for sw.head < sw.n {
		head := &sw.ring[sw.head%len(sw.ring)]
		if !head.done {
			break
		}
		result, err := head.result, head.err
		var zero streamSlot[T]
		*head = zero
		idx := sw.head
		sw.head++
		sw.parked--
		// emit runs under the lock: exporters see a serialized,
		// index-ordered stream without further synchronization.
		if !emit(idx, result, err) {
			sw.stopped = true
			sw.stopping.Store(true)
			break
		}
	}
	g := st.gauges
	g.Set(telemetry.GRingParked, int64(sw.parked))
	g.Set(telemetry.GInFlight, int64(sw.next-sw.head))
	// Either the head advanced (windowed-out workers can claim again)
	// or the stream stopped (waiters must exit).
	sw.cond.Broadcast()
	return !sw.stopped
}
