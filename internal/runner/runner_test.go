package runner

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// trial is a stand-in for a seeded simulation: an expensive-ish pure
// function of the trial index alone.
func trial(i int) int64 {
	rng := rand.New(rand.NewSource(int64(i)))
	var sum int64
	for k := 0; k < 1000; k++ {
		sum += rng.Int63n(1 << 30)
	}
	return sum
}

func TestSerialAndParallelIdentical(t *testing.T) {
	const n = 200
	serial, errs1 := Run(n, Options{Workers: 1}, trial)
	if errs1 != nil {
		t.Fatalf("serial run failed: %v", errs1)
	}
	for _, workers := range []int{2, 8, 17} {
		par, errs := Run(n, Options{Workers: workers}, trial)
		if errs != nil {
			t.Fatalf("workers=%d run failed: %v", workers, errs)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d (index-order collection broken)",
					workers, i, par[i], serial[i])
			}
		}
	}
}

func TestPanicIsolatedToOneTrial(t *testing.T) {
	const n = 50
	for _, workers := range []int{1, 8} {
		results, errs := Run(n, Options{Workers: workers}, func(i int) int {
			if i == 17 {
				panic("trial 17 exploded")
			}
			return i * 2
		})
		if len(errs) != 1 {
			t.Fatalf("workers=%d: %d failures, want exactly 1", workers, len(errs))
		}
		e := errs[0]
		if e.Index != 17 {
			t.Errorf("workers=%d: failed index %d, want 17", workers, e.Index)
		}
		if want := "trial 17 exploded"; e.Value != want {
			t.Errorf("workers=%d: panic value %v, want %q", workers, e.Value, want)
		}
		if len(e.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
		if !strings.Contains(e.Error(), "trial 17") {
			t.Errorf("workers=%d: Error() = %q", workers, e.Error())
		}
		// Every other trial still ran; the failed slot holds the zero value.
		for i, r := range results {
			switch {
			case i == 17 && r != 0:
				t.Errorf("workers=%d: failed trial slot = %d, want zero value", workers, r)
			case i != 17 && r != i*2:
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*2)
			}
		}
	}
}

func TestFailuresSortedByIndex(t *testing.T) {
	_, errs := Run(100, Options{Workers: 8}, func(i int) int {
		if i%7 == 0 {
			panic(i)
		}
		return i
	})
	if len(errs) != 15 {
		t.Fatalf("%d failures, want 15", len(errs))
	}
	for k := 1; k < len(errs); k++ {
		if errs[k-1].Index >= errs[k].Index {
			t.Fatalf("failures not index-ordered: %d before %d", errs[k-1].Index, errs[k].Index)
		}
	}
}

func TestZeroAndNegativeTrials(t *testing.T) {
	for _, n := range []int{0, -3} {
		results, errs := Run(n, Options{Workers: 8}, func(i int) int {
			t.Errorf("trial fn called for n=%d", n)
			return 0
		})
		if results != nil || errs != nil {
			t.Errorf("n=%d: got (%v, %v), want (nil, nil)", n, results, errs)
		}
	}
}

func TestSingleTrial(t *testing.T) {
	results, errs := Run(1, Options{Workers: 8}, func(i int) int { return 41 + i })
	if errs != nil {
		t.Fatalf("unexpected failures: %v", errs)
	}
	if len(results) != 1 || results[0] != 41 {
		t.Fatalf("results = %v, want [41]", results)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	// Workers <= 0 must still run everything exactly once.
	var calls atomic.Int64
	results, errs := Run(100, Options{}, func(i int) int {
		calls.Add(1)
		return i
	})
	if errs != nil {
		t.Fatalf("unexpected failures: %v", errs)
	}
	if calls.Load() != 100 {
		t.Fatalf("trial fn called %d times, want 100", calls.Load())
	}
	for i, r := range results {
		if r != i {
			t.Fatalf("result[%d] = %d", i, r)
		}
	}
}

func TestProgressReporting(t *testing.T) {
	var snaps []Progress
	_, errs := Run(30, Options{
		Workers:    4,
		OnProgress: func(p Progress) { snaps = append(snaps, p) },
	}, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		time.Sleep(time.Millisecond)
		return i
	})
	if len(errs) != 1 {
		t.Fatalf("%d failures, want 1", len(errs))
	}
	if len(snaps) != 30 {
		t.Fatalf("%d progress callbacks, want one per trial (30)", len(snaps))
	}
	for k, p := range snaps {
		if p.Completed != k+1 {
			t.Fatalf("snapshot %d: Completed = %d, want %d (callbacks must be serialized)", k, p.Completed, k+1)
		}
		if p.Total != 30 {
			t.Fatalf("snapshot %d: Total = %d", k, p.Total)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Failed != 1 {
		t.Errorf("final snapshot Failed = %d, want 1", last.Failed)
	}
	if last.Remaining != 0 {
		t.Errorf("final snapshot Remaining = %v, want 0", last.Remaining)
	}
}

func TestWorkersCappedAtTrialCount(t *testing.T) {
	// More workers than trials must not deadlock or double-run.
	var calls atomic.Int64
	results, _ := Run(3, Options{Workers: 64}, func(i int) int {
		calls.Add(1)
		return i
	})
	if calls.Load() != 3 || len(results) != 3 {
		t.Fatalf("calls=%d results=%d, want 3/3", calls.Load(), len(results))
	}
}
