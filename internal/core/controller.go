// Package core implements the paper's primary contribution: the
// active network adversary that forces an HTTP/2 server to serialize
// multiplexed object transmissions, restoring the encrypted-object-
// size side channel.
//
// The adversary has the same three components as the paper's
// prototype (section V):
//
//   - Controller — the "network controller" (the paper's bash/tc
//     scripts): inter-request spacing via held packets (jitter),
//     bandwidth throttling of the transit links, and targeted drops
//     of server→client application packets.
//   - Monitor — the "traffic monitor" (the paper's tshark): parses
//     cleartext TLS record headers out of the observed byte stream,
//     counts client GET records, and triggers attack phases.
//   - Predictor — the "object prediction module" (the paper's Python
//     scripts): infers object sizes from delimiter-bounded record
//     runs and maps them to identities via a precompiled size table.
//
// Attack composes the three into the paper's phase schedule.
package core

import (
	"time"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ControllerStats counts controller actions.
type ControllerStats struct {
	Held    int
	Dropped int
	Passed  int
}

// Controller is the adversary's network-manipulation arm, installed
// as the middlebox interceptor. All methods run on the simulator
// goroutine.
type Controller struct {
	s    *sim.Simulator
	path *netem.Path

	spacing     time.Duration // c->s request spacing; 0 = off
	lastRelease time.Duration

	dropRate  float64
	dropUntil time.Duration

	// Stats accumulates counters.
	Stats ControllerStats

	// Obs receives metric increments; the zero Sink discards them.
	Obs obs.Sink
}

// NewController wires a controller to the path it manipulates. Call
// Install to activate it.
func NewController(s *sim.Simulator, path *netem.Path) *Controller {
	return &Controller{s: s, path: path}
}

// Install registers the controller as the middlebox interceptor.
func (c *Controller) Install() {
	c.path.Mbox.Interceptor = c.Intercept
}

// Reset returns the controller to its just-built state: no spacing,
// no drops, zeroed counters. The simulator and path bindings are
// kept, so a reused world re-arms the same controller each trial.
func (c *Controller) Reset() {
	c.spacing = 0
	c.lastRelease = 0
	c.dropRate = 0
	c.dropUntil = 0
	c.Stats = ControllerStats{}
	c.Obs = obs.Sink{}
}

// SetSpacing enforces a minimum inter-arrival time between
// client→server payload packets (the paper's calculated jitter: "set
// the jitter such that the inter-arrival time of requests is d ms").
// Zero disables.
func (c *Controller) SetSpacing(d time.Duration) {
	c.spacing = d
	if c.lastRelease < c.s.Now() {
		c.lastRelease = c.s.Now()
	}
}

// Spacing returns the active request spacing.
func (c *Controller) Spacing() time.Duration { return c.spacing }

// SetBandwidth throttles both transit directions at the middlebox
// (paper section IV-C). Zero restores unlimited.
func (c *Controller) SetBandwidth(bps int64) { c.path.SetBandwidth(bps) }

// StartDrops begins dropping server→client payload packets with the
// given probability for the given duration (paper section IV-D).
func (c *Controller) StartDrops(rate float64, d time.Duration) {
	c.dropRate = rate
	c.dropUntil = c.s.Now() + d
}

// StopDrops ends the drop phase immediately.
func (c *Controller) StopDrops() { c.dropUntil = 0 }

// DroppingNow reports whether the drop phase is active.
func (c *Controller) DroppingNow() bool {
	return c.dropRate > 0 && c.s.Now() < c.dropUntil
}

// Intercept implements the middlebox verdict for each packet.
func (c *Controller) Intercept(dir trace.Direction, p *netem.Packet) netem.Decision {
	switch dir {
	case trace.ClientToServer:
		// Space out request (payload-bearing) packets; pure ACKs pass
		// so the transport's ack clock survives. On top of the spacing
		// grid each held packet gets a random jitter component of up to
		// one spacing — the adversary's holds are jitter, not a precise
		// scheduler. The occasional near-inversions this produces are
		// what caps the benefit of larger jitter (Table I's plateau)
		// and what triggers the dup-ACK/fast-retransmit side effects
		// the paper reports (section IV-B).
		if c.spacing > 0 && len(p.Payload) > 0 {
			release := c.s.Now()
			if min := c.lastRelease + c.spacing; release < min {
				release = min
			}
			c.lastRelease = release
			hold := release - c.s.Now()
			hold += time.Duration(c.s.Rand().Int63n(int64(c.spacing) + 1))
			if hold > 0 {
				c.Stats.Held++
				c.Obs.Inc(obs.CCtlHeld)
				c.Obs.ObserveDuration(obs.HCtlHold, hold)
				return netem.Delay(hold)
			}
		}
	case trace.ServerToClient:
		// Targeted drops of application (payload) packets, mimicking a
		// lossy network.
		if c.DroppingNow() && len(p.Payload) > 0 {
			if c.s.Rand().Float64() < c.dropRate {
				c.Stats.Dropped++
				c.Obs.Inc(obs.CCtlDropped)
				return netem.Drop()
			}
		}
	}
	c.Stats.Passed++
	return netem.Pass()
}
