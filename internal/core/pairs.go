package core

import (
	"repro/internal/trace"
	"repro/internal/website"
)

// PairInference identifies a *set* of objects from consecutive
// delimited runs whose individual sums match nothing: when two
// transmissions interleave (Figure 1 case 2), the bytes between
// delimiters are mixtures, but the total across the affected runs is
// still the sum of the objects' sizes. This implements the paper's
// section VII "possible extension... to infer the object identity
// even when the object is partly multiplexed".
type PairInference struct {
	// Objects are the identified set (unordered — interleaving
	// destroys order information).
	Objects []*website.Object

	// EstSize is the summed size of the spanned runs.
	EstSize int

	// Runs is how many consecutive runs the span covers.
	Runs int
}

// InferPairs post-processes the record stream: runs that match a
// single object are reported as usual; consecutive unmatched runs are
// tested as sums of two distinct site objects. Only unambiguous
// matches (a unique pair within tolerance) are reported.
func (p *Predictor) InferPairs(records []trace.RecordObs) []PairInference {
	base := p.Infer(records)
	var out []PairInference
	i := 0
	for i < len(base) {
		if base[i].Object != nil {
			out = append(out, PairInference{
				Objects: []*website.Object{base[i].Object},
				EstSize: base[i].EstSize,
				Runs:    1,
			})
			i++
			continue
		}
		// Grow a span of consecutive unmatched runs (up to 3) and try
		// pair decomposition on each prefix.
		matched := false
		total := 0
		for span := 1; span <= 3 && i+span <= len(base); span++ {
			if base[i+span-1].Object != nil {
				break
			}
			total += base[i+span-1].EstSize
			if pair, ok := p.uniquePair(total); ok {
				out = append(out, PairInference{Objects: pair, EstSize: total, Runs: span})
				i += span
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

// uniquePair finds the single unordered pair of distinct site objects
// whose sizes sum to total within twice the tolerance (each boundary
// contributes its own estimation error). Ambiguous totals return
// false.
func (p *Predictor) uniquePair(total int) ([]*website.Object, bool) {
	tol := 2 * p.Tolerance
	var found []*website.Object
	objs := p.Site.Objects
	for a := 0; a < len(objs); a++ {
		for b := a + 1; b < len(objs); b++ {
			sum := objs[a].Size + objs[b].Size
			diff := sum - total
			if diff < 0 {
				diff = -diff
			}
			if diff <= tol {
				if found != nil {
					return nil, false // ambiguous
				}
				found = []*website.Object{&objs[a], &objs[b]}
			}
		}
	}
	return found, found != nil
}

// ContainsObject reports whether the inference set includes the
// object.
func (pi PairInference) ContainsObject(objectID int) bool {
	for _, o := range pi.Objects {
		if o != nil && o.ID == objectID {
			return true
		}
	}
	return false
}

// IdentifiedInPairs reports whether any (single or pair) inference
// includes the object.
func IdentifiedInPairs(infs []PairInference, objectID int) bool {
	for _, pi := range infs {
		if pi.ContainsObject(objectID) {
			return true
		}
	}
	return false
}
