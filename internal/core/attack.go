package core

import (
	"time"

	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/trace"
)

// AttackConfig is the paper's phase schedule (section V):
//
//  1. From the start, add jitter so requests are spaced
//     Phase1Spacing apart and count GETs.
//  2. On the TriggerGet-th GET (the result HTML), throttle the
//     transit links to ThrottleBps and drop DropRate of server→client
//     application packets for DropDuration, forcing the client to
//     reset its streams.
//  3. Afterwards, raise the spacing to Phase2Spacing so the 8
//     consecutive image files transmit in non-multiplexed form.
type AttackConfig struct {
	// Phase1Spacing is the initial inter-request spacing. Paper: 50ms.
	Phase1Spacing time.Duration

	// TriggerGet is the 1-based index of the GET that starts phase 2.
	// Paper: 6 (the result HTML). Zero disables phases 2-3 (jitter-
	// only adversary).
	TriggerGet int

	// ThrottleBps is the phase-2 bandwidth limit. Paper: 800 Mbps.
	ThrottleBps int64

	// DropRate is the phase-2 server→client drop probability.
	// Paper: 0.8.
	DropRate float64

	// DropDuration is how long drops last. Paper: 6s.
	DropDuration time.Duration

	// Phase2Spacing is the spacing after the drop phase. Paper: 80ms.
	Phase2Spacing time.Duration
}

// PaperAttack returns the exact configuration of the paper's
// section V attack.
func PaperAttack() AttackConfig {
	return AttackConfig{
		Phase1Spacing: 50 * time.Millisecond,
		TriggerGet:    6,
		ThrottleBps:   800_000_000,
		DropRate:      0.8,
		DropDuration:  6 * time.Second,
		Phase2Spacing: 80 * time.Millisecond,
	}
}

// Attack wires the adversary's components onto a session's middlebox
// and runs the phase schedule. One Attack can be re-armed across
// trials of a reused session (see Arm / ArmPassive).
type Attack struct {
	Controller *Controller
	Monitor    *Monitor
	Predictor  *Predictor

	sess  *h2sim.Session
	cfg   AttackConfig
	phase int

	// Obs receives adversary-side metrics (phase transitions,
	// controller actions, prediction outcomes). Set it before Arm /
	// ArmPassive; the zero Sink discards everything.
	Obs obs.Sink

	// stream classifies record runs online as the monitor taps them;
	// onRec is stream.Observe bound once at construction so re-arming
	// each trial installs the hook without allocating a closure.
	stream StreamInference
	onRec  func(trace.RecordObs)
}

// NewAttack builds the adversary's components against a session
// without arming anything. Call Arm or ArmPassive before each
// Session.Run; a reused world constructs one Attack and re-arms it
// every trial.
func NewAttack(sess *h2sim.Session) *Attack {
	a := &Attack{
		Controller: NewController(sess.Sim, sess.Conn.Path),
		Monitor:    NewMonitor(sess.Sim),
		Predictor:  NewPredictor(sess.Site),
		sess:       sess,
	}
	a.onRec = a.stream.Observe
	return a
}

// reset rewinds the components for a fresh trial. Session.Reset has
// already detached the previous trial's wiring (Middlebox.Reset
// clears the interceptor and tap), so only component state remains.
func (a *Attack) reset(cfg AttackConfig) {
	a.cfg = cfg
	a.Controller.Reset()
	a.Monitor.Reset()
	a.Controller.Obs = a.Obs
	a.Monitor.Obs = a.Obs
	a.Predictor.Site = a.sess.Site
	a.stream.Start(a.Predictor, a.Obs)
	a.Monitor.OnRecord = a.onRec
}

// Arm wires the full adversary onto the session's middlebox and
// starts the phase schedule. Call after Session.Reset and before
// Session.Run.
func (a *Attack) Arm(cfg AttackConfig) {
	a.reset(cfg)
	a.Controller.Install()
	a.sess.Middlebox().Tap = a.Monitor.Tap
	a.Monitor.OnGet = a.onGet
	a.Monitor.OnResetBurst = a.onResetBurst
	a.Controller.SetSpacing(cfg.Phase1Spacing)
	a.phase = 1
	if cfg.TriggerGet == 0 {
		a.phase = 0 // static jitter-only adversary
	}
}

// ArmPassive wires only the monitor (a classic passive eavesdropper),
// for baselines.
func (a *Attack) ArmPassive() {
	a.reset(AttackConfig{})
	a.sess.Middlebox().Tap = a.Monitor.Tap
	a.phase = 0
}

// Install builds the adversary on the session's middlebox. Call
// before Session.Run.
func Install(sess *h2sim.Session, cfg AttackConfig) *Attack {
	a := NewAttack(sess)
	a.Arm(cfg)
	return a
}

// InstallPassive wires only the monitor (a classic passive
// eavesdropper) onto the session, for baselines.
func InstallPassive(sess *h2sim.Session) *Attack {
	a := NewAttack(sess)
	a.ArmPassive()
	return a
}

// Phase reports the current attack phase (0 static, 1 before
// trigger, 2 drop phase, 3 after).
func (a *Attack) Phase() int { return a.phase }

func (a *Attack) onGet(count int) {
	if a.phase != 1 || count != a.cfg.TriggerGet {
		return
	}
	a.phase = 2
	a.Obs.Inc(obs.CAtkPhase2)
	a.Obs.Event(a.Controller.s.Now(), obs.EvAtkPhase, 2, int64(count))
	a.Controller.SetBandwidth(a.cfg.ThrottleBps)
	a.Controller.StartDrops(a.cfg.DropRate, a.cfg.DropDuration)
	s := a.Controller.s
	// The drop phase ends when the client is seen resetting its
	// streams ("we continue the packet drops ... until the client
	// sends stream reset"), with the configured duration as a cap.
	s.After(a.cfg.DropDuration, func() { a.enterPhase3() })
}

// onResetBurst reacts to the observed RST_STREAM burst.
func (a *Attack) onResetBurst() {
	if a.phase == 2 {
		a.enterPhase3()
	}
}

func (a *Attack) enterPhase3() {
	if a.phase != 2 {
		return
	}
	a.phase = 3
	a.Obs.Inc(obs.CAtkPhase3)
	a.Obs.Event(a.Controller.s.Now(), obs.EvAtkPhase, 3, 0)
	a.Controller.StopDrops()
	a.Controller.SetSpacing(a.cfg.Phase2Spacing)
}

// Infer returns what the streaming engine classified during the
// trial: the runs were segmented and matched online as the monitor
// tapped each record, so this is a read of accumulated results, not a
// pass over the capture. Predictions are byte-identical to the
// post-hoc Predictor.Infer over Monitor.ResponseRecords. The returned
// slice is backed by scratch owned by the attack: it is valid until
// the next Arm call and must not be retained across trials.
func (a *Attack) Infer() []Inference {
	infs := a.stream.Inferences()
	for i := range infs {
		if infs[i].Object != nil {
			a.Obs.Inc(obs.CPredIdentified)
		} else {
			a.Obs.Inc(obs.CPredUnknown)
		}
	}
	return infs
}
