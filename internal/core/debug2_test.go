package core

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/h2sim"
	"repro/internal/website"
)

func TestDebugJitterMechanism(t *testing.T) {
	for _, spacing := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		cleanOrig, cleanDup, mux, resets := 0, 0, 0, 0
		for i := 0; i < 40; i++ {
			site := website.Survey(website.IdentityPermutation())
			sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: int64(9000 + i), RandomizeAmbient: true})
			Install(sess, AttackConfig{Phase1Spacing: spacing})
			sess.Run()
			copies := analysis.CopyTransmissions(sess.GroundTruth)
			any, orig := analysis.CleanCopy(copies, website.ResultHTMLID)
			resets += sess.Client.Stats.Resets
			switch {
			case orig:
				cleanOrig++
			case any:
				cleanDup++
			default:
				mux++
			}
			if i < 3 && spacing == 50*time.Millisecond {
				for _, c := range analysis.CopiesOf(copies, website.ResultHTMLID) {
					t.Logf("  seed %d: html copy %d deg %.2f complete %v t[%v %v]", 9000+i, c.Key.CopyID, c.Degree, c.Complete, c.StartTime, c.EndTime)
				}
				// what's active in the html window?
				html := analysis.CopiesOf(copies, website.ResultHTMLID)[0]
				overl := 0
				for _, c := range copies {
					if c != html && c.Start < html.End && html.Start < c.End {
						overl++
						if overl <= 6 {
							t.Logf("    overlaps: obj %d copy %d [%d %d) bytes %d", c.Key.ObjectID, c.Key.CopyID, c.Start, c.End, c.Bytes)
						}
					}
				}
				t.Logf("    total overlapping copies: %d", overl)
			}
		}
		t.Logf("spacing=%v cleanOrig=%d cleanDup=%d mux=%d resets=%d", spacing, cleanOrig, cleanDup, mux, resets)
	}
}
