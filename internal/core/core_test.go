package core

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsrec"
	"repro/internal/trace"
	"repro/internal/website"
)

// --- Controller ---

func controllerFixture(t *testing.T) (*sim.Simulator, *Controller, *[]time.Duration, *int) {
	t.Helper()
	s := sim.New(1)
	var deliveries []time.Duration
	var serverGot int
	path := netem.NewPath(s, netem.PathConfig{},
		func(*netem.Packet) {},
		func(*netem.Packet) { serverGot++; deliveries = append(deliveries, s.Now()) },
	)
	ctl := NewController(s, path)
	ctl.Install()
	sendReq := func() { path.SendFromClient(&netem.Packet{Payload: []byte("GET")}) }
	_ = sendReq
	t.Cleanup(func() {})
	// expose the path via closure-captured send below
	controllerTestPath = path
	return s, ctl, &deliveries, &serverGot
}

var controllerTestPath *netem.Path

func TestControllerSpacingEnforced(t *testing.T) {
	s, ctl, deliveries, _ := controllerFixture(t)
	ctl.SetSpacing(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		controllerTestPath.SendFromClient(&netem.Packet{Payload: []byte("GET")})
	}
	s.Run()
	if len(*deliveries) != 5 {
		t.Fatalf("delivered %d packets", len(*deliveries))
	}
	for i := 1; i < len(*deliveries); i++ {
		gap := (*deliveries)[i] - (*deliveries)[i-1]
		// Grid spacing minus the random component's worst-case
		// inversion still leaves a positive floor near zero; the MEAN
		// gap must approximate the spacing.
		if gap < 0 {
			t.Errorf("deliveries out of order at %d", i)
		}
	}
	total := (*deliveries)[len(*deliveries)-1] - (*deliveries)[0]
	if total < 3*50*time.Millisecond {
		t.Errorf("5 packets spread over %v, want >= 150ms of spacing", total)
	}
	if ctl.Stats.Held == 0 {
		t.Error("no packets held")
	}
}

func TestControllerPureAcksPass(t *testing.T) {
	s, ctl, deliveries, _ := controllerFixture(t)
	ctl.SetSpacing(100 * time.Millisecond)
	controllerTestPath.SendFromClient(&netem.Packet{Payload: []byte("GET1")})
	controllerTestPath.SendFromClient(&netem.Packet{}) // pure ACK
	s.Run()
	if len(*deliveries) != 2 {
		t.Fatalf("delivered %d", len(*deliveries))
	}
	// The ACK (second send) must not be delayed by the grid: it
	// arrives before or at the held GET.
	if ctl.Stats.Held == 0 {
		t.Skip("first packet not held; nothing to compare")
	}
}

func TestControllerTargetedDrops(t *testing.T) {
	s, ctl, _, _ := controllerFixture(t)
	clientGot := 0
	// rewire client receive counting by sending from server side
	path := controllerTestPath
	path.Mbox.Interceptor = ctl.Intercept
	_ = clientGot
	ctl.StartDrops(1.0, time.Second) // drop everything for 1s
	dropped0 := ctl.Stats.Dropped
	for i := 0; i < 10; i++ {
		path.SendFromServer(&netem.Packet{Payload: []byte("data")})
	}
	path.SendFromServer(&netem.Packet{}) // pure ACK: never dropped
	s.Run()
	if got := ctl.Stats.Dropped - dropped0; got != 10 {
		t.Errorf("dropped %d, want 10 (payload only)", got)
	}
	// After the window, packets pass again.
	s.RunUntil(s.Now() + 2*time.Second)
	if ctl.DroppingNow() {
		t.Error("still dropping past the window")
	}
	ctl.StopDrops()
	before := ctl.Stats.Dropped
	path.SendFromServer(&netem.Packet{Payload: []byte("data")})
	s.Run()
	if ctl.Stats.Dropped != before {
		t.Error("dropped after StopDrops")
	}
}

func TestControllerBandwidth(t *testing.T) {
	s, ctl, deliveries, _ := controllerFixture(t)
	ctl.SetBandwidth(1_000_000) // 1 Mbps
	controllerTestPath.SendFromClient(&netem.Packet{Payload: make([]byte, 1210)})
	s.Run()
	if len(*deliveries) != 1 {
		t.Fatal("packet lost")
	}
	// 1250 wire bytes at 1 Mbps = 10ms serialization.
	if (*deliveries)[0] < 10*time.Millisecond {
		t.Errorf("throttled delivery at %v, want >= 10ms", (*deliveries)[0])
	}
}

// --- Monitor ---

func TestMonitorCountsGets(t *testing.T) {
	s := sim.New(1)
	m := NewMonitor(s)
	var gets []int
	m.OnGet = func(n int) { gets = append(gets, n) }
	var sealer tlsrec.Sealer

	// First record: SETTINGS (skipped).
	m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 30)))
	// Three GET-sized records.
	for i := 0; i < 3; i++ {
		m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 50)))
	}
	// A tiny control record (SETTINGS ack): not counted.
	m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 9)))
	// A data-sized record: not a GET.
	m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 1400)))

	if m.GetCount() != 3 {
		t.Errorf("GetCount = %d, want 3", m.GetCount())
	}
	if len(gets) != 3 || gets[2] != 3 {
		t.Errorf("OnGet calls = %v", gets)
	}
	if got := len(m.RequestTimes()); got != 3 {
		t.Errorf("RequestTimes = %d entries", got)
	}
}

func TestMonitorDetectsResetBurst(t *testing.T) {
	s := sim.New(1)
	m := NewMonitor(s)
	resets := 0
	m.OnResetBurst = func() { resets++ }
	var sealer tlsrec.Sealer
	m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 30))) // SETTINGS
	// A 40-stream RST batch: 40*13 = 520 plaintext bytes.
	m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 520)))
	if resets != 1 {
		t.Errorf("reset bursts = %d, want 1", resets)
	}
	if m.GetCount() != 0 {
		t.Errorf("reset burst counted as GET")
	}
}

func TestMonitorSplitRecordsAcrossTaps(t *testing.T) {
	s := sim.New(1)
	m := NewMonitor(s)
	var sealer tlsrec.Sealer
	wire := sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 30))
	wire = sealer.Seal(wire, tlsrec.TypeAppData, make([]byte, 60))
	// Feed byte by byte: records must still parse exactly once.
	for _, b := range wire {
		m.Tap(trace.ClientToServer, []byte{b})
	}
	if m.GetCount() != 1 {
		t.Errorf("GetCount = %d, want 1", m.GetCount())
	}
	if len(m.Records) != 2 {
		t.Errorf("records = %d, want 2", len(m.Records))
	}
}

func TestMonitorResponseRecords(t *testing.T) {
	s := sim.New(1)
	m := NewMonitor(s)
	var sealer tlsrec.Sealer
	m.Tap(trace.ServerToClient, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 1400)))
	m.Tap(trace.ServerToClient, sealer.Seal(nil, tlsrec.TypeHandshake, make([]byte, 40)))
	m.Tap(trace.ClientToServer, sealer.Seal(nil, tlsrec.TypeAppData, make([]byte, 50)))
	rr := m.ResponseRecords()
	if len(rr) != 1 || rr[0].Length != 1400+tlsrec.Overhead {
		t.Errorf("ResponseRecords = %+v", rr)
	}
}

// --- Predictor ---

// rec builds a server→client app-data record observation.
func rec(at time.Duration, plainLen int) trace.RecordObs {
	return trace.RecordObs{
		Time: at, Dir: trace.ServerToClient,
		ContentType: tlsrec.TypeAppData,
		Length:      plainLen + tlsrec.Overhead,
	}
}

// objRecords renders a clean transmission of n bytes as records:
// HEADERS (small) + full chunks + the sub-full delimiter.
func objRecords(at time.Duration, n int) []trace.RecordObs {
	out := []trace.RecordObs{rec(at, 40)} // response HEADERS
	for n > 1400 {
		out = append(out, rec(at, 1400+9))
		n -= 1400
	}
	out = append(out, rec(at, n+9))
	return out
}

func TestPredictorIdentifiesCleanObjects(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	var records []trace.RecordObs
	at := time.Second
	records = append(records, objRecords(at, website.ResultHTMLSize)...)
	records = append(records, objRecords(at, website.EmblemSizes[3])...)
	infs := p.Infer(records)
	if len(infs) != 2 {
		t.Fatalf("inferences = %d, want 2", len(infs))
	}
	if !p.IdentifiedHTML(infs) {
		t.Error("HTML not identified")
	}
	if infs[1].Object == nil || infs[1].Object.ID != website.EmblemID(3) {
		t.Errorf("second inference = %+v", infs[1].Object)
	}
	if infs[0].EstSize != website.ResultHTMLSize {
		t.Errorf("HTML size estimate = %d", infs[0].EstSize)
	}
}

func TestPredictorRejectsInterleavedRuns(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	// Interleave two objects' full records, then one delimiter: the
	// summed run matches nothing.
	var records []trace.RecordObs
	for i := 0; i < 12; i++ {
		records = append(records, rec(time.Second, 1400+9))
	}
	records = append(records, rec(time.Second, 500+9))
	infs := p.Infer(records)
	for _, inf := range infs {
		if inf.Object != nil {
			t.Errorf("interleaved run identified as %v (est %d)", inf.Object.Label, inf.EstSize)
		}
	}
}

func TestPredictorDiscardsRunAtHeaders(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	var records []trace.RecordObs
	// A cut-off transfer: 3 full records, never delimited...
	for i := 0; i < 3; i++ {
		records = append(records, rec(time.Second, 1400+9))
	}
	// ...then a fresh response (HEADERS + clean emblem).
	records = append(records, objRecords(2*time.Second, website.EmblemSizes[0])...)
	infs := p.Infer(records)
	if len(infs) != 1 {
		t.Fatalf("inferences = %d, want 1", len(infs))
	}
	if infs[0].Object == nil || infs[0].Object.ID != website.EmblemID(0) {
		t.Errorf("got %+v", infs[0])
	}
}

func TestPredictorDiscardsRunOnIdleGap(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	var records []trace.RecordObs
	// Unterminated records, then silence, then a clean object WITHOUT
	// a HEADERS record (only the gap separates them).
	records = append(records, rec(time.Second, 1400+9), rec(time.Second, 1400+9))
	clean := objRecords(5*time.Second, website.EmblemSizes[1])
	records = append(records, clean[1:]...) // skip the HEADERS marker
	infs := p.Infer(records)
	if len(infs) != 1 || infs[0].Object == nil || infs[0].Object.ID != website.EmblemID(1) {
		t.Errorf("inferences = %+v", infs)
	}
}

func TestPredictorUnterminatedTrailingRunDropped(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	records := []trace.RecordObs{rec(time.Second, 1400+9), rec(time.Second, 1400+9)}
	if infs := p.Infer(records); len(infs) != 0 {
		t.Errorf("trailing run produced inferences: %+v", infs)
	}
}

func TestPredictorToleranceWindow(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	// Estimate off by Tolerance-1 still matches; off by 200 does not.
	infs := p.Infer(objRecords(0, website.ResultHTMLSize+p.Tolerance-1))
	if len(infs) != 1 || infs[0].Object == nil || infs[0].Object.ID != website.ResultHTMLID {
		t.Errorf("near match failed: %+v", infs)
	}
	// +80 bytes: inside the site's guaranteed 150-byte exclusion zone
	// around the HTML, but beyond the 32-byte tolerance — no match.
	infs = p.Infer(objRecords(0, website.ResultHTMLSize+80))
	if len(infs) != 1 || infs[0].Object != nil {
		t.Errorf("far size matched: %+v", infs)
	}
}

func TestPredictEmblemOrder(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	var records []trace.RecordObs
	order := []int{5, 2, 7}
	for i, party := range order {
		records = append(records, objRecords(time.Duration(i)*time.Second, website.EmblemSizes[party])...)
	}
	pred := p.PredictEmblemOrder(p.Infer(records))
	want := [website.PartyCount]int{5, 2, 7, -1, -1, -1, -1, -1}
	if pred != want {
		t.Errorf("pred = %v, want %v", pred, want)
	}
}

// --- Attack wiring (integration is exercised in internal/experiment) ---

func TestPaperAttackConfig(t *testing.T) {
	cfg := PaperAttack()
	if cfg.Phase1Spacing != 50*time.Millisecond ||
		cfg.TriggerGet != 6 ||
		cfg.ThrottleBps != 800_000_000 ||
		cfg.DropRate != 0.8 ||
		cfg.DropDuration != 6*time.Second ||
		cfg.Phase2Spacing != 80*time.Millisecond {
		t.Errorf("PaperAttack = %+v does not match section V", cfg)
	}
}
