package core

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tlsrec"
	"repro/internal/trace"
)

// Monitor is the adversary's passive observation arm: it reassembles
// the TCP byte stream of each direction (the middlebox tap), parses
// the cleartext TLS record headers (the paper's
// 'ssl.record.content_type==23' tshark filter), counts client
// requests, and records every observation for the predictor.
type Monitor struct {
	s *sim.Simulator

	// Records accumulates every parsed record observation.
	Records []trace.RecordObs

	// OnGet, when non-nil, is invoked with the running request count
	// after each client GET record is observed.
	OnGet func(count int)

	// OnResetBurst, when non-nil, is invoked when a client record too
	// large to be a GET appears — the batched RST_STREAM frames of a
	// stream reset (the signal the paper's adversary waits for before
	// stopping its targeted drops).
	OnResetBurst func()

	// OnRecord, when non-nil, is invoked with every parsed record
	// observation in arrival order, right after it is appended to
	// Records — the streaming inference engine's tap point.
	OnRecord func(trace.RecordObs)

	// ResetMinCipher is the ciphertext length above which a client
	// record is classified as a reset burst. Default 300.
	ResetMinCipher int

	// MinGetCipher/MaxGetCipher bound the ciphertext length of
	// records classified as GET requests. Records below the minimum
	// are control chatter (SETTINGS acks, lone RST_STREAM); HTTP/2
	// GETs are small thanks to HPACK. Defaults 45/200.
	MinGetCipher int
	MaxGetCipher int

	parserC2S tlsrec.StreamParser
	parserS2C tlsrec.StreamParser

	getCount   int
	seenFirstC bool // first c->s app record is the client SETTINGS

	// Obs receives metric increments; the zero Sink discards them.
	Obs obs.Sink

	respScratch []trace.RecordObs // reused by ResponseRecords
}

// NewMonitor builds a monitor. Wire Tap as the middlebox byte tap.
func NewMonitor(s *sim.Simulator) *Monitor {
	return &Monitor{s: s, MinGetCipher: 45, MaxGetCipher: 200, ResetMinCipher: 300}
}

// Reset returns the monitor to its just-built state for a new trial:
// observations cleared (backing arrays kept), stream parsers rewound,
// callbacks detached. The classification thresholds are preserved.
func (m *Monitor) Reset() {
	m.Records = m.Records[:0]
	m.OnGet = nil
	m.OnResetBurst = nil
	m.OnRecord = nil
	m.parserC2S.Reset()
	m.parserS2C.Reset()
	m.getCount = 0
	m.seenFirstC = false
	m.Obs = obs.Sink{}
}

// Tap ingests reassembled stream bytes from the middlebox.
func (m *Monitor) Tap(dir trace.Direction, b []byte) {
	var infos []tlsrec.HeaderInfo
	if dir == trace.ClientToServer {
		infos = m.parserC2S.Feed(b)
	} else {
		infos = m.parserS2C.Feed(b)
	}
	for _, h := range infos {
		obs := trace.RecordObs{
			Time:        m.s.Now(),
			Dir:         dir,
			ContentType: h.ContentType,
			Length:      h.Length,
		}
		m.Records = append(m.Records, obs)
		if m.OnRecord != nil {
			m.OnRecord(obs)
		}
		if dir == trace.ClientToServer && obs.IsAppData() {
			m.classifyClientRecord(h)
		}
	}
}

// classifyClientRecord counts GET-like records on the request path.
func (m *Monitor) classifyClientRecord(h tlsrec.HeaderInfo) {
	if !m.seenFirstC {
		// The first application record is the client's SETTINGS.
		m.seenFirstC = true
		return
	}
	if h.Length >= m.ResetMinCipher {
		m.Obs.Inc(obs.CMonResetBurst)
		if m.OnResetBurst != nil {
			m.OnResetBurst()
		}
		return
	}
	if h.Length < m.MinGetCipher || h.Length > m.MaxGetCipher {
		return
	}
	m.getCount++
	m.Obs.Inc(obs.CMonGet)
	if m.OnGet != nil {
		m.OnGet(m.getCount)
	}
}

// GetCount returns the number of GET records observed so far.
func (m *Monitor) GetCount() int { return m.getCount }

// ResponseRecords returns the server→client application-data records
// observed so far (the predictor's input). The returned slice is
// backed by a scratch buffer owned by the monitor: it is valid until
// the next ResponseRecords call and must not be retained across
// trials.
func (m *Monitor) ResponseRecords() []trace.RecordObs {
	out := m.respScratch[:0]
	for _, r := range m.Records {
		if r.IsResponseData() {
			out = append(out, r)
		}
	}
	m.respScratch = out
	return out
}

// RequestTimes returns the observation time of each counted GET.
func (m *Monitor) RequestTimes() []time.Duration {
	var out []time.Duration
	count := 0
	seenFirst := false
	for _, r := range m.Records {
		if r.Dir != trace.ClientToServer || !r.IsAppData() {
			continue
		}
		if !seenFirst {
			seenFirst = true
			continue
		}
		if r.Length >= m.MinGetCipher && r.Length <= m.MaxGetCipher {
			count++
			out = append(out, r.Time)
		}
	}
	return out
}
