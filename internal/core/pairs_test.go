package core

import (
	"testing"
	"time"

	"repro/internal/h2sim"
	"repro/internal/website"
)

func TestInferPairsSingleObjectsStillReported(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	p := NewPredictor(site)
	records := objRecords(0, website.ResultHTMLSize)
	infs := p.InferPairs(records)
	if len(infs) != 1 || len(infs[0].Objects) != 1 || infs[0].Objects[0].ID != website.ResultHTMLID {
		t.Fatalf("infs = %+v", infs)
	}
	if !IdentifiedInPairs(infs, website.ResultHTMLID) {
		t.Error("IdentifiedInPairs missed the HTML")
	}
}

func TestInferPairsDecomposesInterleavedPair(t *testing.T) {
	// Two emblems interleaved as in Figure 1 case 2: the two runs sum
	// to sizeA+sizeB, matching no single object but exactly one pair.
	site := website.TwoObject(website.EmblemSizes[0], website.EmblemSizes[5])
	p := NewPredictor(site)
	a, b := website.EmblemSizes[0], website.EmblemSizes[5]

	// Run 1: all of A's full chunks + B's full chunks + A's delimiter.
	// Run 2: B's delimiter.
	var records []struct{}
	_ = records
	recs := objRecords(0, a+(b/1400)*1400)          // mixed run ending at A's delimiter
	recs = append(recs, rec(time.Second, b%1400+9)) // B's trailing partial
	infs := p.InferPairs(recs)
	foundPair := false
	for _, pi := range infs {
		if len(pi.Objects) == 2 && pi.ContainsObject(1) && pi.ContainsObject(2) {
			foundPair = true
		}
	}
	if !foundPair {
		t.Errorf("pair not decomposed: %+v", infs)
	}
}

func TestInferPairsRejectsAmbiguousTotals(t *testing.T) {
	// A site with colliding pair-sums must not produce a pair match.
	site := &website.Site{
		Name: "ambiguous",
		Objects: []website.Object{
			{ID: 1, Path: "/a", Size: 4000},
			{ID: 2, Path: "/b", Size: 6000},
			{ID: 3, Path: "/c", Size: 5000},
			{ID: 4, Path: "/d", Size: 5010}, // 1+2 = 10000, 3+4 = 10010 (within 2*tol)
		},
	}
	site.Finalize()
	p := NewPredictor(site)
	// Two unmatched runs summing to 10005.
	recs := objRecords(0, 7000)
	recs = append(recs, objRecords(time.Second, 3005)...)
	for _, pi := range p.InferPairs(recs) {
		if len(pi.Objects) == 2 {
			t.Errorf("ambiguous pair reported: %+v", pi)
		}
	}
}

func TestInferPairsImprovesPassiveAdversary(t *testing.T) {
	// On the two-object page with back-to-back requests (multiplexed),
	// the basic predictor identifies nothing but the pair extension
	// recovers which objects were transferred.
	basic, paired, trials := 0, 0, 30
	for i := 0; i < trials; i++ {
		site := website.TwoObject(7300, 12100)
		sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: int64(300 + i)})
		atk := InstallPassive(sess)
		sess.Run()
		recs := atk.Monitor.ResponseRecords()
		for _, inf := range atk.Predictor.Infer(recs) {
			if inf.Object != nil && inf.Object.ID == 1 {
				basic++
				break
			}
		}
		if IdentifiedInPairs(atk.Predictor.InferPairs(recs), 1) {
			paired++
		}
	}
	if paired <= basic {
		t.Errorf("pair inference did not improve: basic %d/%d, paired %d/%d",
			basic, trials, paired, trials)
	}
	t.Logf("passive identification of O1: basic %d/%d, with pairs %d/%d", basic, trials, paired, trials)
}
