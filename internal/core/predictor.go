package core

import (
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/tlsrec"
	"repro/internal/trace"
	"repro/internal/website"
)

// Inference is one object transmission the predictor believes it
// observed: a delimiter-bounded run of full-size records.
type Inference struct {
	// EstSize is the estimated object size in plaintext bytes.
	EstSize int

	// Object is the size-table match, or nil when no object matched
	// within tolerance.
	Object *website.Object

	// Start and End are the observation times of the run.
	Start, End time.Duration

	// Records is the number of data records in the run.
	Records int
}

// Predictor is the adversary's size-inference arm. It knows the
// protocol constants (record overhead, frame header size, the
// server's full-record size) and carries the precompiled size→object
// table the paper's adversary uses.
type Predictor struct {
	// Site supplies the size table.
	Site *website.Site

	// Tolerance is the size-match window in bytes. Default 32.
	Tolerance int

	// FullCipher is the ciphertext length of a full data record
	// (ChunkPlain + frame header + record overhead). Runs end at any
	// data record shorter than this. Default 1400+9+24.
	FullCipher int

	// MinDataCipher separates control/HEADERS records from data
	// records. Default 120.
	MinDataCipher int

	// IdleGap discards an unterminated run when the stream goes quiet
	// longer than this (a transfer cut off without its delimiter, e.g.
	// by a stream reset, leaves a run that must not absorb the next
	// object). Default 600ms.
	IdleGap time.Duration

	// table is the compiled size→object index: entries sorted by size
	// with duplicate sizes collapsed to the lowest-index object, so
	// matchPrimed's two binary-search neighbors reproduce the linear
	// scan's first-wins tie-break exactly. tableSite keys the cache:
	// the survey builder only changes object sizes by rebuilding the
	// site (a new pointer), so pointer identity is a sound key.
	table     []sizeEntry
	tableSite *website.Site
}

// sizeEntry is one compiled size-table row.
type sizeEntry struct {
	size int
	idx  int // original Site.Objects index, the tie-break order
	obj  *website.Object
}

// NewPredictor builds a predictor with protocol defaults for site.
func NewPredictor(site *website.Site) *Predictor {
	return &Predictor{
		Site:          site,
		Tolerance:     32,
		FullCipher:    1400 + 9 + tlsrec.Overhead,
		MinDataCipher: 120,
		IdleGap:       600 * time.Millisecond,
	}
}

// Infer scans server→client application records for delimiter-bounded
// runs: consecutive full-size records terminated by a sub-full record
// (the paper's Figure 1 size-estimation procedure). Each run yields
// an estimated object size, matched against the size table.
//
// Two kinds of separator discard an unterminated run: a control-size
// record (every serialized response opens with a small HEADERS
// record, so a run still open when one appears was cut off without
// its delimiter) and an idle gap longer than IdleGap.
func (p *Predictor) Infer(records []trace.RecordObs) []Inference {
	return p.inferAppend(nil, records)
}

// inferAppend is Infer with a caller-supplied destination, letting a
// reused world amortize the inference slice across trials.
func (p *Predictor) inferAppend(out []Inference, records []trace.RecordObs) []Inference {
	var (
		runSize  int
		runRecs  int
		start    time.Duration
		lastSeen time.Duration
	)
	flush := func(end time.Duration) {
		if runRecs == 0 {
			return
		}
		inf := Inference{EstSize: runSize, Start: start, End: end, Records: runRecs}
		inf.Object = p.match(runSize)
		out = append(out, inf)
		runSize, runRecs = 0, 0
	}
	discard := func() { runSize, runRecs = 0, 0 }
	for _, r := range records {
		if r.Dir != trace.ServerToClient || !r.IsAppData() {
			continue
		}
		if runRecs > 0 && p.IdleGap > 0 && r.Time-lastSeen > p.IdleGap {
			discard()
		}
		lastSeen = r.Time
		if r.Length < p.MinDataCipher {
			// Control or HEADERS record: a new response is starting,
			// so an unterminated run was a cut-off transfer.
			discard()
			continue
		}
		if runRecs == 0 {
			start = r.Time
		}
		// Plain bytes carried: ciphertext minus record overhead minus
		// the DATA frame header.
		payload := r.Length - tlsrec.Overhead - 9
		if payload < 0 {
			payload = 0
		}
		runSize += payload
		runRecs++
		if r.Length < p.FullCipher {
			// Sub-full record: the delimiting packet that ends an
			// object's transmission.
			flush(r.Time)
		}
	}
	// An unterminated trailing run is not flushed: without its
	// delimiter the size is not observable.
	return out
}

// match finds the site object whose size is within tolerance, or nil.
// Among candidates the closest wins; on an exact diff tie the
// lowest-index object wins (the strict < keeps the first seen). This
// linear scan is the reference semantics — matchPrimed must agree on
// every input (TestPrimedMatchEquivalence).
func (p *Predictor) match(est int) *website.Object {
	var best *website.Object
	bestDiff := p.Tolerance + 1
	for i := range p.Site.Objects {
		o := &p.Site.Objects[i]
		diff := o.Size - est
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = o, diff
		}
	}
	return best
}

// Prime compiles the size table for the current Site if it is not
// already compiled. Matching after Prime is a two-neighbor binary
// search instead of a full scan; the batched and streaming inference
// paths call it once per site and amortize the sort across the K
// trials a worker runs there. Infer itself never requires priming —
// the reference path stays scan-based so equivalence tests retain an
// independent oracle.
func (p *Predictor) Prime() {
	if p.tableSite == p.Site && p.table != nil {
		return
	}
	p.table = p.table[:0]
	for i := range p.Site.Objects {
		o := &p.Site.Objects[i]
		p.table = append(p.table, sizeEntry{size: o.Size, idx: i, obj: o})
	}
	sort.Slice(p.table, func(i, j int) bool {
		a, b := p.table[i], p.table[j]
		if a.size != b.size {
			return a.size < b.size
		}
		return a.idx < b.idx
	})
	// Collapse duplicate sizes to the lowest original index — the
	// entry the linear scan's strict < would have kept.
	out := p.table[:0]
	for _, e := range p.table {
		if len(out) > 0 && out[len(out)-1].size == e.size {
			continue
		}
		out = append(out, e)
	}
	p.table = out
	p.tableSite = p.Site
}

// matchPrimed is match against the compiled table: only the floor and
// ceiling neighbors of est can hold the minimal diff, and on an exact
// tie between them the lower original index wins, replicating the
// scan order. Callers must Prime first.
func (p *Predictor) matchPrimed(est int) *website.Object {
	t := p.table
	// First entry with size >= est.
	lo, hi := 0, len(t)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t[mid].size < est {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var best *website.Object
	bestDiff := p.Tolerance + 1
	bestIdx := 0
	if lo < len(t) {
		if diff := t[lo].size - est; diff < bestDiff {
			best, bestDiff, bestIdx = t[lo].obj, diff, t[lo].idx
		}
	}
	if lo > 0 {
		e := t[lo-1]
		diff := est - e.size
		if diff <= p.Tolerance && (diff < bestDiff || (diff == bestDiff && e.idx < bestIdx)) {
			best = e.obj
		}
	}
	return best
}

// segmentConfig is the predictor's tuning expressed as the streaming
// segmentation engine's config. Both inference paths derive their
// constants from here, so they cannot drift.
func (p *Predictor) segmentConfig() analysis.SegmentConfig {
	return analysis.SegmentConfig{
		FullCipher:        p.FullCipher,
		MinDataCipher:     p.MinDataCipher,
		PerRecordOverhead: tlsrec.Overhead + 9,
		IdleGap:           p.IdleGap,
	}
}

// InferBatch classifies K record streams against one site, priming
// the size table once and reusing the segmentation state across the
// batch. Results are element-wise identical to calling Infer on each
// stream. Use it when a worker runs several trials of the same site
// (the survey's SiteTrials repetitions): the per-call table setup
// that Infer's scan path pays per inference is amortized to one sort
// per site.
func (p *Predictor) InferBatch(streams [][]trace.RecordObs) [][]Inference {
	p.Prime()
	out := make([][]Inference, len(streams))
	var seg analysis.Segmenter
	for i, recs := range streams {
		seg.Reset(p.segmentConfig())
		var infs []Inference
		for _, r := range recs {
			run, ok := seg.Feed(r)
			if !ok {
				continue
			}
			inf := Inference{EstSize: run.Size, Start: run.Start, End: run.End, Records: run.Records}
			inf.Object = p.matchPrimed(run.Size)
			infs = append(infs, inf)
		}
		out[i] = infs
	}
	return out
}

// PredictEmblemOrder extracts the predicted survey outcome: the
// distinct emblem images in order of first identified appearance.
// Positions beyond the identified emblems are -1.
func (p *Predictor) PredictEmblemOrder(infs []Inference) [website.PartyCount]int {
	var order [website.PartyCount]int
	for i := range order {
		order[i] = -1
	}
	var seen [website.PartyCount]bool
	pos := 0
	for _, inf := range infs {
		if inf.Object == nil || pos >= website.PartyCount {
			continue
		}
		party := inf.Object.ID - website.EmblemID(0)
		if party < 0 || party >= website.PartyCount || seen[party] {
			continue
		}
		seen[party] = true
		order[pos] = party
		pos++
	}
	return order
}

// IdentifiedHTML reports whether any inference matched the result
// HTML.
func (p *Predictor) IdentifiedHTML(infs []Inference) bool {
	for _, inf := range infs {
		if inf.Object != nil && inf.Object.ID == website.ResultHTMLID {
			return true
		}
	}
	return false
}
