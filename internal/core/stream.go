package core

import (
	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/trace"
)

// StreamInference is the adversary's online inference engine: the
// paper's size side channel evaluated as the records appear on the
// wire instead of from a stored capture. It feeds every tapped record
// through the incremental segmentation engine (analysis.Segmenter)
// and matches each completed run against the predictor's primed size
// table the moment its delimiting record arrives, emitting an
// obs.EvPredRun flight-recorder event per run.
//
// The engine owns its inference slice and segmentation state and
// reuses both across trials, so once grown to a trial's high-water
// mark a steady-state trial infers without allocating. Results are
// byte-identical to the post-hoc Predictor.Infer pass over the same
// records (TestStreamingMatchesPostHoc).
type StreamInference struct {
	p    *Predictor
	seg  analysis.Segmenter
	infs []Inference
	sink obs.Sink
}

// Start rewinds the engine for a new trial: the predictor's size
// table is primed (a no-op when the site is unchanged — the batching
// win when a worker runs K trials per site), the segmenter reset with
// the predictor's current tuning, and the inference buffer emptied.
func (s *StreamInference) Start(p *Predictor, sink obs.Sink) {
	s.p = p
	s.sink = sink
	p.Prime()
	s.seg.Reset(p.segmentConfig())
	s.infs = s.infs[:0]
}

// Observe ingests one tapped record observation in arrival order. The
// segmenter filters to server→client application data itself, so the
// monitor can hand over every record it parses.
func (s *StreamInference) Observe(r trace.RecordObs) {
	run, ok := s.seg.Feed(r)
	if !ok {
		return
	}
	inf := Inference{EstSize: run.Size, Start: run.Start, End: run.End, Records: run.Records}
	inf.Object = s.p.matchPrimed(run.Size)
	s.infs = append(s.infs, inf)
	obj := int64(-1)
	if inf.Object != nil {
		obj = int64(inf.Object.ID)
	}
	s.sink.Event(run.End, obs.EvPredRun, int64(run.Size), obj)
}

// Inferences returns the runs classified so far. The slice is owned
// by the engine: valid until the next Start, not to be retained
// across trials.
func (s *StreamInference) Inferences() []Inference { return s.infs }
