package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/website"
)

// TestStreamingMatchesPostHoc runs full attack sessions and checks
// that the online inference the attack accumulated while the monitor
// tapped records is identical — fields and matched-object pointers —
// to the post-hoc reference pass (linear-scan Predictor.Infer over
// the stored capture). This is the end-to-end half of the equivalence
// suite; internal/analysis covers the segmentation state machine on
// synthetic streams.
func TestStreamingMatchesPostHoc(t *testing.T) {
	cases := []struct {
		name string
		arm  func(a *Attack)
	}{
		{"passive", func(a *Attack) { a.ArmPassive() }},
		{"jitter", func(a *Attack) { a.Arm(AttackConfig{Phase1Spacing: 50 * time.Millisecond}) }},
		{"full", func(a *Attack) { a.Arm(PaperAttack()) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				site := website.Survey(website.IdentityPermutation())
				sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: seed, RandomizeAmbient: true})
				atk := NewAttack(sess)
				tc.arm(atk)
				sess.Run()

				streamed := atk.Infer()
				posthoc := atk.Predictor.Infer(atk.Monitor.ResponseRecords())
				if len(posthoc) == 0 && tc.name != "passive" {
					t.Fatalf("seed %d: no inferences — degenerate trial", seed)
				}
				if !reflect.DeepEqual(streamed, posthoc) && !(len(streamed) == 0 && len(posthoc) == 0) {
					t.Fatalf("seed %d: streaming inference diverges from post-hoc\n got %+v\nwant %+v",
						seed, streamed, posthoc)
				}
				for i := range streamed {
					if streamed[i].Object != posthoc[i].Object {
						t.Fatalf("seed %d run %d: matched object pointers differ", seed, i)
					}
				}
			}
		})
	}
}

// TestStreamingSurvivesRearm checks a re-armed attack on a reused
// session still agrees with the reference pass (the world-reuse
// path: stale stream state must not leak across trials).
func TestStreamingSurvivesRearm(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 1, RandomizeAmbient: true})
	atk := NewAttack(sess)
	for seed := int64(1); seed <= 5; seed++ {
		sess.Reset(website.Survey(website.IdentityPermutation()), h2sim.SessionConfig{Seed: seed, RandomizeAmbient: true})
		atk.Arm(PaperAttack())
		sess.Run()
		streamed := atk.Infer()
		posthoc := atk.Predictor.Infer(atk.Monitor.ResponseRecords())
		if !reflect.DeepEqual(streamed, posthoc) && !(len(streamed) == 0 && len(posthoc) == 0) {
			t.Fatalf("seed %d: re-armed streaming inference diverges", seed)
		}
	}
}

// TestStreamingEmitsPredRunEvents checks the flight-recorder hook:
// every classified run produces one attack.pred.run event with the
// estimated size and matched object ID.
func TestStreamingEmitsPredRunEvents(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 3, RandomizeAmbient: true})
	atk := NewAttack(sess)
	rec := obs.NewRecorder(4096)
	atk.Obs = obs.Sink{}.WithRecorder(rec)
	atk.Arm(PaperAttack())
	sess.Run()
	infs := atk.Infer()
	var events []obs.Event
	for _, e := range rec.Events() {
		if e.Kind == obs.EvPredRun {
			events = append(events, e)
		}
	}
	if len(events) != len(infs) {
		t.Fatalf("recorded %d EvPredRun events for %d inferences", len(events), len(infs))
	}
	for i, e := range events {
		if int(e.A) != infs[i].EstSize || e.At != infs[i].End {
			t.Errorf("event %d = %+v, inference %+v", i, e, infs[i])
		}
		wantB := int64(-1)
		if infs[i].Object != nil {
			wantB = int64(infs[i].Object.ID)
		}
		if e.B != wantB {
			t.Errorf("event %d object = %d, want %d", i, e.B, wantB)
		}
	}
}

// siteWithSizes builds a minimal site whose objects have the given
// sizes, IDs 1..n in order.
func siteWithSizes(sizes ...int) *website.Site {
	s := &website.Site{}
	for i, size := range sizes {
		s.Objects = append(s.Objects, website.Object{ID: i + 1, Size: size})
	}
	return s
}

// TestPrimedMatchEquivalence drives the binary-search matcher and the
// linear-scan reference over adversarial size tables — duplicate
// sizes, exact ties above and below, out-of-tolerance estimates —
// and every estimate in a covering range. The two must agree on the
// returned object pointer, not just its size.
func TestPrimedMatchEquivalence(t *testing.T) {
	sites := []*website.Site{
		siteWithSizes(),
		siteWithSizes(5000),
		siteWithSizes(5000, 5000, 5000),
		siteWithSizes(1000, 1064),              // tie at est 1032
		siteWithSizes(1064, 1000),              // tie, reversed declaration order
		siteWithSizes(300, 332, 364, 364, 400), // duplicates adjacent to ties
		siteWithSizes(100, 5000, 5032, 90000),
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(40)
		sizes := make([]int, n)
		for j := range sizes {
			sizes[j] = 50 + rng.Intn(4000) // dense: many within-tolerance collisions
		}
		sites = append(sites, siteWithSizes(sizes...))
	}
	for si, site := range sites {
		p := NewPredictor(site)
		p.Prime()
		lo, hi := -10, 10
		for _, o := range site.Objects {
			if o.Size+p.Tolerance+2 > hi {
				hi = o.Size + p.Tolerance + 2
			}
		}
		for est := lo; est <= hi; est++ {
			want := p.match(est)
			got := p.matchPrimed(est)
			if got != want {
				t.Fatalf("site %d est %d: matchPrimed=%v match=%v", si, est, got, want)
			}
		}
	}
}

// TestPrimeInvalidatesOnSiteChange checks the pointer-keyed table
// cache: re-pointing the predictor at a different site recompiles.
func TestPrimeInvalidatesOnSiteChange(t *testing.T) {
	s1 := siteWithSizes(1000, 2000)
	s2 := siteWithSizes(3000)
	p := NewPredictor(s1)
	p.Prime()
	if got := p.matchPrimed(1000); got == nil || got.Size != 1000 {
		t.Fatalf("match on s1 = %v", got)
	}
	p.Site = s2
	p.Prime()
	if got := p.matchPrimed(3000); got == nil || got.Size != 3000 {
		t.Fatalf("match on s2 = %v", got)
	}
	if got := p.matchPrimed(1000); got != nil {
		t.Fatalf("stale s1 entry survived reprime: %v", got)
	}
}

// TestInferBatch checks the batched API equals element-wise Infer.
func TestInferBatch(t *testing.T) {
	site := website.Survey(website.IdentityPermutation())
	var streams [][]trace.RecordObs
	for seed := int64(1); seed <= 4; seed++ {
		sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: seed, RandomizeAmbient: true})
		atk := InstallPassive(sess)
		sess.Run()
		streams = append(streams, append([]trace.RecordObs(nil), atk.Monitor.Records...))
	}
	streams = append(streams, nil) // empty stream stays empty

	p := NewPredictor(site)
	got := p.InferBatch(streams)
	if len(got) != len(streams) {
		t.Fatalf("InferBatch returned %d results for %d streams", len(got), len(streams))
	}
	for i, recs := range streams {
		want := p.Infer(recs)
		if !reflect.DeepEqual(got[i], want) && !(len(got[i]) == 0 && len(want) == 0) {
			t.Fatalf("stream %d: InferBatch diverges from Infer\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}
