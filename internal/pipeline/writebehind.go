package pipeline

import (
	"io"
	"sync"

	"repro/internal/telemetry"
)

// writeBehind is a buffered writer whose underlying writes happen on
// a dedicated flusher goroutine: the caller fills one chunk while the
// flusher writes the previous one, overlapping encode with file I/O.
// It is the async export stage's second pipeline step — the queue
// moves encode+write off the emit goroutine, the write-behind buffer
// moves the write syscalls off the encode path.
//
// Ordering and durability: chunks are handed to the single flusher in
// fill order, so the byte stream is exactly the inline one. Flush
// waits for the flusher to go idle and then writes the partial chunk
// inline — when it returns, every byte is in the file, which is what
// lets checkpoints record offsets as durable. A flusher error is
// sticky and surfaces on the next Write or Flush; later chunks are
// discarded, matching bufio.Writer's behavior after a write error.
type writeBehind struct {
	dst io.Writer

	mu      sync.Mutex
	handoff sync.Cond
	cur     []byte // chunk being filled by Write
	pending []byte // chunk queued for the flusher (nil when none)
	free    []byte // spare chunk, returned by the flusher
	size    int
	err     error
	closed  bool
	done    chan struct{}
	gauges  *telemetry.Gauges // nil when telemetry is off
}

// chunkPool recycles write-behind chunks across campaigns: a process
// that runs many campaigns (shard sweeps, benchmarks) reuses warm
// pages instead of faulting in fresh ones per Begin.
var chunkPool sync.Pool

// getChunk returns a zero-length chunk with at least size capacity.
func getChunk(size int) []byte {
	if c, ok := chunkPool.Get().(*[]byte); ok && cap(*c) >= size {
		return (*c)[:0]
	}
	return make([]byte, 0, size)
}

// newWriteBehind starts the flusher goroutine. size is the chunk
// size; two chunks are in flight at most, so peak buffering is
// 2*size bytes. gauges (nil when telemetry is off) samples the
// flusher backlog (0 or 1 chunk with the two-chunk design).
func newWriteBehind(dst io.Writer, size int, gauges *telemetry.Gauges) *writeBehind {
	if size < 1 {
		size = 1
	}
	w := &writeBehind{
		dst:    dst,
		cur:    getChunk(size),
		free:   getChunk(size),
		size:   size,
		done:   make(chan struct{}),
		gauges: gauges,
	}
	w.handoff.L = &w.mu
	go w.flusher()
	return w
}

// Write fills the current chunk, handing full chunks to the flusher.
// It blocks only while both chunks are busy (the flusher sets the
// write pace, as an inline writer's syscalls would).
func (w *writeBehind) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if len(w.cur) == w.size {
			if err := w.rotate(); err != nil {
				return 0, err
			}
		}
		c := copy(w.cur[len(w.cur):w.size], p)
		w.cur = w.cur[:len(w.cur)+c]
		p = p[c:]
	}
	return n, nil
}

// appendBuf returns the current chunk for in-place appends: callers
// encode directly into it (skipping a scratch-buffer copy) and hand
// the extended slice back through commitAppend. Bytes past the
// returned slice's length are uncommitted — an abandoned append
// simply never commits.
func (w *writeBehind) appendBuf() []byte { return w.cur }

// commitAppend installs buf — appendBuf extended in place (or grown)
// — as the current chunk, rotating it to the flusher once it reaches
// the chunk size. A single append longer than the chunk size just
// ships as one oversized chunk.
func (w *writeBehind) commitAppend(buf []byte) error {
	w.cur = buf
	if len(buf) >= w.size {
		return w.rotate()
	}
	return nil
}

// rotate queues the full current chunk for the flusher and takes the
// spare as the new fill target, waiting for the flusher to free one
// if both are busy.
func (w *writeBehind) rotate() error {
	w.mu.Lock()
	for w.pending != nil && w.err == nil {
		w.handoff.Wait()
	}
	if w.err != nil {
		w.mu.Unlock()
		return w.err
	}
	w.pending = w.cur
	w.cur = w.free[:0]
	w.free = nil
	w.gauges.Set(telemetry.GWriteBehindPending, 1)
	w.handoff.Signal()
	w.mu.Unlock()
	return nil
}

// Flush drains the flusher and writes the partial chunk inline; on
// return every byte handed to Write is in dst.
func (w *writeBehind) Flush() error {
	w.mu.Lock()
	for w.pending != nil && w.err == nil {
		w.handoff.Wait()
	}
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	// The flusher only touches dst while a pending chunk exists, so
	// with the queue drained the inline write cannot race it.
	if len(w.cur) > 0 {
		if _, err := w.dst.Write(w.cur); err != nil {
			w.mu.Lock()
			w.err = err
			w.mu.Unlock()
			return err
		}
		w.cur = w.cur[:0]
	}
	return nil
}

// stop terminates the flusher goroutine and returns the chunks to the
// pool. It does not flush; callers flush first if they want the tail
// written.
func (w *writeBehind) stop() {
	w.mu.Lock()
	w.closed = true
	w.handoff.Signal()
	w.mu.Unlock()
	<-w.done
	// The flusher is gone; no goroutine touches the chunks now.
	if w.cur != nil {
		c := w.cur[:0]
		chunkPool.Put(&c)
		w.cur = nil
	}
	if w.free != nil {
		c := w.free[:0]
		chunkPool.Put(&c)
		w.free = nil
	}
}

// flusher writes queued chunks in hand-off order. On a write error it
// records the error and keeps draining (discarding chunks) so
// producers never deadlock against a dead writer.
func (w *writeBehind) flusher() {
	defer close(w.done)
	w.mu.Lock()
	for {
		for w.pending == nil && !w.closed {
			w.handoff.Wait()
		}
		if w.pending == nil {
			w.mu.Unlock()
			return
		}
		chunk := w.pending
		w.mu.Unlock()
		_, err := w.dst.Write(chunk)
		w.mu.Lock()
		w.pending = nil
		w.free = chunk[:0]
		w.gauges.Set(telemetry.GWriteBehindPending, 0)
		if err != nil && w.err == nil {
			w.err = err
		}
		w.handoff.Signal()
	}
}
