package pipeline

// Generator describes one campaign: a name, a trial count, and the
// parameters of each trial. It is the pipeline's importer stage.
//
// Params must be a cheap pure function of the trial index — the
// pipeline calls it once on a worker to execute the trial and once at
// export time, and a resumed campaign calls it again for re-run
// indices. Anything expensive a trial needs (a built site model, a
// session stack) belongs in the worker state, derived from the
// parameters, not in the parameters themselves.
type Generator[P any] interface {
	// Name identifies the campaign (used in checkpoint files,
	// progress lines, and exporter metadata).
	Name() string

	// Trials is the campaign size.
	Trials() int

	// Params returns trial i's parameters.
	Params(i int) P

	// Fingerprint is a stable string identifying the campaign's full
	// configuration (generator parameters, seeds, trial counts). A
	// checkpoint records it and resume refuses to continue under a
	// different fingerprint, because mixed-configuration output would
	// be silently meaningless.
	Fingerprint() string
}

// Fixed is the simplest Generator: n trials whose parameters come
// from a function of the index. The paper's six sweeps are Fixed
// generators over their configuration grids.
type Fixed[P any] struct {
	// CampaignName is the Name() value.
	CampaignName string

	// N is the trial count.
	N int

	// Fn builds trial i's parameters.
	Fn func(i int) P

	// FP is the Fingerprint() value; leave empty for campaigns that
	// never checkpoint (the in-memory sweeps).
	FP string
}

// Name implements Generator.
func (f Fixed[P]) Name() string { return f.CampaignName }

// Trials implements Generator.
func (f Fixed[P]) Trials() int { return f.N }

// Params implements Generator.
func (f Fixed[P]) Params(i int) P { return f.Fn(i) }

// Fingerprint implements Generator.
func (f Fixed[P]) Fingerprint() string { return f.FP }
