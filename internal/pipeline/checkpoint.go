package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointFile is the on-disk checkpoint format: one JSON object
// recording where the campaign is and everything the exporters need
// to continue byte-identically.
//
//	{
//	  "campaign":    "survey",
//	  "fingerprint": "corpus{seed=1 sites=1000 ...} reps=1 seed0=1",
//	  "trials":      1000,
//	  "next":        600,
//	  "done":        false,
//	  "exporters":   {"jsonl": {"offset": 123456, "lines": 600}, ...}
//	}
//
// next is the first trial index a resumed run executes; exporters
// maps Exporter.Name() to the state returned by its Checkpoint. The
// file is written atomically (temp file + rename in the same
// directory), so a kill during a checkpoint write leaves the previous
// checkpoint intact.
type checkpointFile struct {
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	Trials      int    `json:"trials"`
	// RangeStart/RangeEnd record the contiguous index slice this
	// checkpoint covers (a shard run). Zero values mean the full
	// campaign — RangeEnd 0 is read as Trials, so checkpoints written
	// before ranges existed still verify.
	RangeStart int                        `json:"range_start,omitempty"`
	RangeEnd   int                        `json:"range_end,omitempty"`
	Next       int                        `json:"next"`
	DoneFlag   bool                       `json:"done"`
	Exporters  map[string]json.RawMessage `json:"exporters"`
}

// checkpoint couples the format with its path and campaign identity.
type checkpoint struct {
	checkpointFile
	path string
}

// newCheckpoint prepares a checkpoint writer for the [start, end)
// slice of a campaign.
func newCheckpoint(path, campaign, fingerprint string, trials, start, end int) *checkpoint {
	return &checkpoint{
		checkpointFile: checkpointFile{
			Campaign:    campaign,
			Fingerprint: fingerprint,
			Trials:      trials,
			RangeStart:  start,
			RangeEnd:    end,
		},
		path: path,
	}
}

// loadCheckpoint reads an existing checkpoint, returning (nil, nil)
// when the file does not exist (a fresh campaign).
func loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: read checkpoint: %w", err)
	}
	ck := &checkpoint{path: path}
	if err := json.Unmarshal(data, &ck.checkpointFile); err != nil {
		return nil, fmt.Errorf("pipeline: parse checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// verify guards a resume: the checkpoint must describe exactly the
// campaign — and the index range — the caller is about to continue.
func (ck *checkpoint) verify(campaign, fingerprint string, trials, start, end int) error {
	if ck.Campaign != campaign {
		return fmt.Errorf("pipeline: checkpoint %s is for campaign %q, not %q", ck.path, ck.Campaign, campaign)
	}
	if ck.Fingerprint != fingerprint {
		return fmt.Errorf("pipeline: checkpoint %s was written under a different configuration:\n  checkpoint: %s\n  requested:  %s",
			ck.path, ck.Fingerprint, fingerprint)
	}
	if ck.Trials != trials {
		return fmt.Errorf("pipeline: checkpoint %s records %d trials, campaign has %d", ck.path, ck.Trials, trials)
	}
	ckEnd := ck.RangeEnd
	if ckEnd == 0 {
		ckEnd = ck.Trials
	}
	if ck.RangeStart != start || ckEnd != end {
		return fmt.Errorf("pipeline: checkpoint %s covers range [%d, %d), run requested [%d, %d)",
			ck.path, ck.RangeStart, ckEnd, start, end)
	}
	return nil
}

// CheckpointExporterState reads the serialized state one exporter had
// at the checkpoint file's last save. ok is false when the file does
// not exist or records no state for that exporter. A campaign whose
// checkpoint says done short-circuits Run without touching the
// exporters; callers that derive output files from exporter state (the
// shard bundle's obs snapshot) use this to recover that state from the
// done checkpoint instead of re-running the campaign.
func CheckpointExporterState(path, exporter string) (json.RawMessage, bool, error) {
	ck, err := loadCheckpoint(path)
	if err != nil || ck == nil {
		return nil, false, err
	}
	state, ok := ck.Exporters[exporter]
	return state, ok, nil
}

// save atomically rewrites the checkpoint file with next as the
// resume index and the exporter states collected by the caller.
func (ck *checkpoint) save(next int, done bool, states map[string]json.RawMessage) error {
	ck.Next = next
	ck.DoneFlag = done
	ck.Exporters = states
	data, err := json.MarshalIndent(&ck.checkpointFile, "", "  ")
	if err != nil {
		return fmt.Errorf("pipeline: encode checkpoint: %w", err)
	}
	tmp := ck.path + ".tmp"
	if dir := filepath.Dir(ck.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("pipeline: checkpoint dir: %w", err)
		}
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("pipeline: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, ck.path); err != nil {
		return fmt.Errorf("pipeline: commit checkpoint: %w", err)
	}
	return nil
}
