package pipeline

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// rangeJSONL runs the test campaign over [start, end) with the given
// config template and returns the exported bytes.
func rangeJSONL(t *testing.T, n int, cfg Config) (Summary, []byte) {
	t.Helper()
	cfgCopy := cfg
	dir := t.TempDir()
	if cfgCopy.Checkpoint != "" {
		cfgCopy.Checkpoint = filepath.Join(dir, cfgCopy.Checkpoint)
	}
	return runJSONL(t, dir, n, cfgCopy)
}

// TestRangeSlicesConcatenateToFullRun is the shard contract at the
// pipeline layer: contiguous [Start, End) slices, run independently,
// concatenate to the bytes of a full run.
func TestRangeSlicesConcatenateToFullRun(t *testing.T) {
	const n = 47
	_, want := rangeJSONL(t, n, Config{Workers: 4})
	for _, bounds := range [][]int{{0, 47}, {0, 20, 47}, {0, 1, 46, 47}, {0, 16, 32, 47}} {
		var got bytes.Buffer
		for i := 0; i+1 < len(bounds); i++ {
			sum, data := rangeJSONL(t, n, Config{Workers: 3, Start: bounds[i], End: bounds[i+1]})
			if !sum.Done || sum.Start != bounds[i] || sum.End != bounds[i+1] || sum.Exported != bounds[i+1] {
				t.Fatalf("slice [%d,%d): %+v", bounds[i], bounds[i+1], sum)
			}
			got.Write(data)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("bounds %v: concatenated slices differ from full run", bounds)
		}
	}
}

func TestRangeEmptySlice(t *testing.T) {
	sum, data := rangeJSONL(t, 10, Config{Start: 4, End: 4})
	if !sum.Done || sum.Exported != 4 || len(data) != 0 {
		t.Fatalf("empty slice: %+v, %d bytes", sum, len(data))
	}
}

func TestRangeRejectsBadBounds(t *testing.T) {
	for _, cfg := range []Config{{Start: -1}, {Start: 8, End: 4}, {Start: 11}} {
		if _, err := Run(cfg, testGen(10, ""), noState, testTrial); err == nil {
			t.Fatalf("range %d..%d accepted", cfg.Start, cfg.End)
		}
	}
	// End past the campaign clamps (it means "full campaign" for 0 and
	// is clamped otherwise), matching the pre-range behavior.
	sum, err := Run(Config{End: 99}, testGen(10, ""), noState, testTrial)
	if err != nil || !sum.Done || sum.Exported != 10 {
		t.Fatalf("End>Trials: %+v, %v", sum, err)
	}
}

// TestRangeCheckpointResume interrupts a shard slice mid-range and
// resumes it: the slice's bytes must match an uninterrupted slice run.
func TestRangeCheckpointResume(t *testing.T) {
	const n, lo, hi = 60, 20, 45
	refDir := t.TempDir()
	_, want := runJSONL(t, refDir, n, Config{Workers: 2, Start: lo, End: hi})

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	sum, _ := runJSONL(t, dir, n, Config{Workers: 2, Start: lo, End: hi, Checkpoint: ckpt, CheckpointEvery: 5, MaxTrials: 11})
	if sum.Done || sum.Exported != lo+11 {
		t.Fatalf("interrupted slice: %+v", sum)
	}
	sum, got := runJSONL(t, dir, n, Config{Workers: 2, Start: lo, End: hi, Checkpoint: ckpt, CheckpointEvery: 5})
	if !sum.Done || sum.Start != lo+11 || sum.Exported != hi {
		t.Fatalf("resumed slice: %+v", sum)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed slice differs from uninterrupted slice")
	}
}

// TestCheckpointRejectsRangeMismatch pins the guard: a checkpoint
// written for one shard range must not resume a different range.
func TestCheckpointRejectsRangeMismatch(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	sink := func() Exporter[int, string] {
		return Funcs[int, string]{ExporterName: "sink"}
	}
	if _, err := Run(Config{Start: 0, End: 15, Checkpoint: ckpt, MaxTrials: 5},
		testGen(n, "fp1"), noState, testTrial, sink()); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Start: 5, End: 15, Checkpoint: ckpt},
		{Start: 0, End: 20, Checkpoint: ckpt},
		{Checkpoint: ckpt},
	} {
		_, err := Run(cfg, testGen(n, "fp1"), noState, testTrial, sink())
		if err == nil || !strings.Contains(err.Error(), "range") {
			t.Fatalf("range [%d,%d): want range mismatch error, got %v", cfg.Start, cfg.End, err)
		}
	}
}

// TestCheckpointRangeBackwardCompat: checkpoints written before the
// range fields existed (range_start/range_end absent, i.e. zero) must
// still verify against a full-campaign run.
func TestCheckpointRangeBackwardCompat(t *testing.T) {
	ck := &checkpoint{checkpointFile: checkpointFile{Campaign: "test", Fingerprint: "fp1", Trials: 30, Next: 10}}
	if err := ck.verify("test", "fp1", 30, 0, 30); err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if err := ck.verify("test", "fp1", 30, 10, 20); err == nil {
		t.Fatal("legacy checkpoint accepted for a shard range")
	}
}
