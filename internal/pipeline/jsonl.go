package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/telemetry"
)

// JSONL streams one JSON line per trial to a file — the bounded-
// memory raw export of a campaign. Lines are written in trial-index
// order; the encoding is the caller's (a marshal function over the
// trial's params and result), so one implementation serves any
// campaign type.
//
// Its checkpoint state is the byte offset and line count after the
// last exported trial. Restore truncates the file back to that
// offset, discarding any trailing lines a killed run had written past
// its last checkpoint; because the pipeline re-runs exactly the
// trials after the checkpoint and trials are pure functions of their
// index, the resumed file ends up byte-identical to an uninterrupted
// run's.
type JSONL[P, R any] struct {
	path   string
	encode func(i int, p P, r R) (any, error)
	app    Appender[P, R]

	file    *os.File
	w       lineWriter
	wb      *writeBehind // non-nil when w is the write-behind buffer
	bufSize int
	scratch []byte
	offset  int64
	lines   int64
	resumed bool
	gauges  *telemetry.Gauges // campaign telemetry (nil when off)
}

// lineWriter is the buffered writer behind Export: a plain
// bufio.Writer on the inline path, or the write-behind buffer when
// the campaign runs the pipelined export stage. Flush must leave
// every written byte in the file (checkpoints record offsets as
// durable bytes).
type lineWriter interface {
	io.Writer
	Flush() error
}

// Appender is the zero-allocation encoding contract: AppendLine
// appends trial i's JSON line (without the trailing newline) to dst
// and returns the extended slice. Implementations must produce bytes
// identical to json.Marshal of the value the fallback encode function
// would return — checkpoint offsets, shard concatenation, and resume
// byte-identity all assume the two paths are interchangeable.
type Appender[P, R any] interface {
	AppendLine(dst []byte, i int, p P, r R) ([]byte, error)
}

// AppendFunc adapts a plain function to the Appender contract.
type AppendFunc[P, R any] func(dst []byte, i int, p P, r R) ([]byte, error)

// AppendLine implements Appender.
func (f AppendFunc[P, R]) AppendLine(dst []byte, i int, p P, r R) ([]byte, error) {
	return f(dst, i, p, r)
}

// NewJSONL builds a JSONL exporter writing to path. encode maps one
// trial to the value marshalled as its line; returning the result
// struct itself is typical.
func NewJSONL[P, R any](path string, encode func(i int, p P, r R) (any, error)) *JSONL[P, R] {
	return &JSONL[P, R]{path: path, encode: encode}
}

// WithAppender installs the zero-allocation fast path: Export calls
// app instead of encode+json.Marshal. The fallback encode function is
// retained as the semantic reference (the equivalence suites compare
// the two). Returns j for chaining.
func (j *JSONL[P, R]) WithAppender(app Appender[P, R]) *JSONL[P, R] {
	j.app = app
	return j
}

// WithBufferSize sets the exporter's default bufio.Writer size used
// at Begin (normally 1<<16); a positive Config.WriterBuf on the
// campaign still takes precedence. Larger buffers amortize syscalls
// for shard bundles whose lines are long; values < 1 keep the
// default. Returns j for chaining.
func (j *JSONL[P, R]) WithBufferSize(n int) *JSONL[P, R] {
	j.bufSize = n
	return j
}

// Name implements Exporter.
func (j *JSONL[P, R]) Name() string { return "jsonl:" + filepath.Base(j.path) }

// jsonlState is the serialized checkpoint state.
type jsonlState struct {
	Offset int64 `json:"offset"`
	Lines  int64 `json:"lines"`
}

// Restore implements Exporter: record the checkpointed offset; Begin
// truncates to it.
func (j *JSONL[P, R]) Restore(state json.RawMessage) error {
	var s jsonlState
	if err := json.Unmarshal(state, &s); err != nil {
		return fmt.Errorf("jsonl state: %w", err)
	}
	j.offset, j.lines, j.resumed = s.Offset, s.Lines, true
	return nil
}

// Begin implements Exporter: open (or reopen) the file. On resume the
// file is truncated to the checkpointed offset; on a fresh campaign
// it is truncated to empty.
func (j *JSONL[P, R]) Begin(m Meta) error {
	if dir := filepath.Dir(j.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(j.offset); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(j.offset, 0); err != nil {
		f.Close()
		return err
	}
	j.file = f
	// Buffer size precedence: the campaign config's explicit request
	// (Config.WriterBuf via Meta) beats the exporter's own default
	// (WithBufferSize), which beats 64 KiB. None affect the bytes
	// written, only syscall batching.
	size := m.WriterBuf
	if size < 1 {
		size = j.bufSize
	}
	if size < 1 {
		size = 1 << 16
	}
	// On the pipelined export stage the Export calls already run off
	// the emit goroutine, so buffer with write-behind: a flusher
	// goroutine performs the file writes, overlapping encode with
	// I/O. Inline campaigns keep the plain bufio.Writer.
	if m.AsyncExport {
		j.wb = newWriteBehind(f, size, m.Gauges)
		j.w = j.wb
	} else {
		j.w = bufio.NewWriterSize(f, size)
	}
	j.gauges = m.Gauges
	j.gauges.Set(telemetry.GExportBytes, j.offset)
	return nil
}

// Export implements Exporter: append one line. With an Appender
// installed the line is built in a reused scratch buffer and written
// once — zero allocations steady state; otherwise the trial value is
// marshalled through encoding/json.
func (j *JSONL[P, R]) Export(i int, p P, r R) error {
	if j.app != nil {
		// With the write-behind buffer the line is encoded directly
		// into the outgoing chunk — no scratch copy. On an encode
		// error the chunk's length is never advanced, so the partial
		// append is simply never committed.
		if j.wb != nil {
			buf := j.wb.appendBuf()
			start := len(buf)
			line, err := j.app.AppendLine(buf, i, p, r)
			if err != nil {
				return err
			}
			line = append(line, '\n')
			j.offset += int64(len(line) - start)
			j.lines++
			j.gauges.Set(telemetry.GExportBytes, j.offset)
			return j.wb.commitAppend(line)
		}
		line, err := j.app.AppendLine(j.scratch[:0], i, p, r)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		j.scratch = line // keep any growth for the next line
		if _, err := j.w.Write(line); err != nil {
			return err
		}
		j.offset += int64(len(line))
		j.lines++
		j.gauges.Set(telemetry.GExportBytes, j.offset)
		return nil
	}
	v, err := j.encode(i, p, r)
	if err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	j.offset += int64(len(data))
	j.lines++
	j.gauges.Set(telemetry.GExportBytes, j.offset)
	return nil
}

// Checkpoint implements Exporter. The buffered writer is flushed
// first so the recorded offset is durable bytes, not buffered ones.
func (j *JSONL[P, R]) Checkpoint() (json.RawMessage, error) {
	if j.w != nil {
		if err := j.w.Flush(); err != nil {
			return nil, err
		}
	}
	return json.Marshal(jsonlState{Offset: j.offset, Lines: j.lines})
}

// Close implements Exporter. The flusher goroutine (if any) is
// stopped even when the final flush fails.
func (j *JSONL[P, R]) Close(bool) error {
	if j.file == nil {
		return nil
	}
	ferr := j.w.Flush()
	if j.wb != nil {
		j.wb.stop()
		j.wb = nil
	}
	cerr := j.file.Close()
	j.file, j.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Lines reports how many lines the exporter has written across the
// campaign so far (including lines restored from a checkpoint).
func (j *JSONL[P, R]) Lines() int64 { return j.lines }
