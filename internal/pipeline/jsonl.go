package pipeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// JSONL streams one JSON line per trial to a file — the bounded-
// memory raw export of a campaign. Lines are written in trial-index
// order; the encoding is the caller's (a marshal function over the
// trial's params and result), so one implementation serves any
// campaign type.
//
// Its checkpoint state is the byte offset and line count after the
// last exported trial. Restore truncates the file back to that
// offset, discarding any trailing lines a killed run had written past
// its last checkpoint; because the pipeline re-runs exactly the
// trials after the checkpoint and trials are pure functions of their
// index, the resumed file ends up byte-identical to an uninterrupted
// run's.
type JSONL[P, R any] struct {
	path   string
	encode func(i int, p P, r R) (any, error)

	file    *os.File
	w       *bufio.Writer
	offset  int64
	lines   int64
	resumed bool
}

// NewJSONL builds a JSONL exporter writing to path. encode maps one
// trial to the value marshalled as its line; returning the result
// struct itself is typical.
func NewJSONL[P, R any](path string, encode func(i int, p P, r R) (any, error)) *JSONL[P, R] {
	return &JSONL[P, R]{path: path, encode: encode}
}

// Name implements Exporter.
func (j *JSONL[P, R]) Name() string { return "jsonl:" + filepath.Base(j.path) }

// jsonlState is the serialized checkpoint state.
type jsonlState struct {
	Offset int64 `json:"offset"`
	Lines  int64 `json:"lines"`
}

// Restore implements Exporter: record the checkpointed offset; Begin
// truncates to it.
func (j *JSONL[P, R]) Restore(state json.RawMessage) error {
	var s jsonlState
	if err := json.Unmarshal(state, &s); err != nil {
		return fmt.Errorf("jsonl state: %w", err)
	}
	j.offset, j.lines, j.resumed = s.Offset, s.Lines, true
	return nil
}

// Begin implements Exporter: open (or reopen) the file. On resume the
// file is truncated to the checkpointed offset; on a fresh campaign
// it is truncated to empty.
func (j *JSONL[P, R]) Begin(m Meta) error {
	if dir := filepath.Dir(j.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(j.offset); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(j.offset, 0); err != nil {
		f.Close()
		return err
	}
	j.file = f
	j.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// Export implements Exporter: append one line.
func (j *JSONL[P, R]) Export(i int, p P, r R) error {
	v, err := j.encode(i, p, r)
	if err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	j.offset += int64(len(data)) + 1
	j.lines++
	return nil
}

// Checkpoint implements Exporter. The buffered writer is flushed
// first so the recorded offset is durable bytes, not buffered ones.
func (j *JSONL[P, R]) Checkpoint() (json.RawMessage, error) {
	if j.w != nil {
		if err := j.w.Flush(); err != nil {
			return nil, err
		}
	}
	return json.Marshal(jsonlState{Offset: j.offset, Lines: j.lines})
}

// Close implements Exporter.
func (j *JSONL[P, R]) Close(bool) error {
	if j.file == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		return err
	}
	err := j.file.Close()
	j.file, j.w = nil, nil
	return err
}

// Lines reports how many lines the exporter has written across the
// campaign so far (including lines restored from a checkpoint).
func (j *JSONL[P, R]) Lines() int64 { return j.lines }
