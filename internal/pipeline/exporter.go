package pipeline

import (
	"encoding/json"
	"fmt"

	"repro/internal/telemetry"
)

// Meta is the campaign metadata handed to every exporter at Begin.
type Meta struct {
	// Name is the campaign name.
	Name string

	// Trials is the total campaign size.
	Trials int

	// Start is the first index this invocation will export (non-zero
	// on resume).
	Start int

	// Resumed reports whether exporter state was restored from a
	// checkpoint before Begin.
	Resumed bool

	// WriterBuf, when positive, is the campaign's requested writer
	// buffer size in bytes (Config.WriterBuf). File-backed exporters
	// should prefer it over their own defaults; it never affects the
	// bytes written, only how they are batched.
	WriterBuf int

	// AsyncExport reports that the campaign runs its exporters on the
	// pipelined export stage (Config.ExportQueue >= 0). File-backed
	// exporters may use write-behind buffering — their writes already
	// happen off the emit goroutine, so an extra flusher goroutine
	// overlaps encode with file I/O without reordering anything.
	AsyncExport bool

	// Gauges is the campaign's live telemetry block (nil when the
	// plane is off). Exporters that write files publish their byte
	// cursor through it (e.g. JSONL sets GExportBytes); write-only —
	// nothing an exporter emits may depend on a gauge value.
	Gauges *telemetry.Gauges
}

// Exporter consumes the pipeline's ordered result stream. It is the
// pluggable output stage: implementations accumulate tables, append
// JSONL lines, or feed metrics registries.
//
// The call sequence per invocation is Restore? → Begin → Export* →
// Close, with Checkpoint interleaved between Export calls. Export is
// invoked serialized, in strict trial-index order, so output derived
// from the stream is deterministic at any worker count.
//
// Checkpoint/Restore carry the exporter's state across process
// restarts as one JSON value. Restore must rewind the exporter's sink
// to exactly that state — an exporter writing to a file truncates
// back to the checkpointed offset — so a resumed campaign appends
// bytes identical to an uninterrupted run. Exporters with no
// meaningful state return a nil checkpoint and accept one.
type Exporter[P, R any] interface {
	// Name identifies the exporter instance inside a checkpoint file;
	// it must be stable across runs and unique within a campaign.
	Name() string

	// Begin starts one invocation.
	Begin(m Meta) error

	// Export consumes trial i. Calls arrive in index order.
	Export(i int, p P, r R) error

	// Checkpoint serializes the exporter's state after the most
	// recent Export as one JSON value (nil means stateless).
	Checkpoint() (json.RawMessage, error)

	// Restore rewinds the exporter to a state previously returned by
	// Checkpoint. Called at most once, before Begin.
	Restore(state json.RawMessage) error

	// Close ends the invocation. done is false when the campaign was
	// stopped for later resume — an exporter that renders a final
	// artifact (a summary table) should do so only when done.
	Close(done bool) error
}

// Collector is the in-memory exporter behind the fixed sweeps: it
// appends every result to a slice, preserving the exact semantics the
// sweeps had when they accumulated results themselves. It is the one
// exporter that is deliberately not bounded-memory, and it refuses to
// resume (a collector that missed earlier trials would silently
// aggregate a partial campaign).
type Collector[P, R any] struct {
	results []R
}

// NewCollector pre-sizes a collector for n results.
func NewCollector[P, R any](n int) *Collector[P, R] {
	return &Collector[P, R]{results: make([]R, 0, n)}
}

// Name implements Exporter.
func (c *Collector[P, R]) Name() string { return "collect" }

// Begin implements Exporter. The backing slice is pre-sized to the
// campaign's trial count so million-trial collects append without
// regrowth.
func (c *Collector[P, R]) Begin(m Meta) error {
	if m.Start != 0 {
		return fmt.Errorf("pipeline: Collector cannot resume mid-campaign (start %d)", m.Start)
	}
	if cap(c.results) < m.Trials {
		grown := make([]R, len(c.results), m.Trials)
		copy(grown, c.results)
		c.results = grown
	}
	return nil
}

// Export implements Exporter.
func (c *Collector[P, R]) Export(i int, p P, r R) error {
	c.results = append(c.results, r)
	return nil
}

// Checkpoint implements Exporter.
func (c *Collector[P, R]) Checkpoint() (json.RawMessage, error) {
	return nil, fmt.Errorf("pipeline: Collector does not checkpoint")
}

// Restore implements Exporter.
func (c *Collector[P, R]) Restore(json.RawMessage) error {
	return fmt.Errorf("pipeline: Collector does not restore")
}

// Close implements Exporter.
func (c *Collector[P, R]) Close(bool) error { return nil }

// Results returns the collected results in trial order.
func (c *Collector[P, R]) Results() []R { return c.results }

// Funcs adapts plain functions into an Exporter, the smallest way to
// plug custom output into a campaign (see the README's custom
// exporter example). Nil fields are no-ops; a nil OnCheckpoint makes
// the exporter stateless (checkpoints as null, restores anything).
type Funcs[P, R any] struct {
	// ExporterName is the Name() value; required when checkpointing.
	ExporterName string

	OnBegin      func(m Meta) error
	OnExport     func(i int, p P, r R) error
	OnCheckpoint func() (json.RawMessage, error)
	OnRestore    func(state json.RawMessage) error
	OnClose      func(done bool) error
}

// Name implements Exporter.
func (f Funcs[P, R]) Name() string { return f.ExporterName }

// Begin implements Exporter.
func (f Funcs[P, R]) Begin(m Meta) error {
	if f.OnBegin == nil {
		return nil
	}
	return f.OnBegin(m)
}

// Export implements Exporter.
func (f Funcs[P, R]) Export(i int, p P, r R) error {
	if f.OnExport == nil {
		return nil
	}
	return f.OnExport(i, p, r)
}

// Checkpoint implements Exporter.
func (f Funcs[P, R]) Checkpoint() (json.RawMessage, error) {
	if f.OnCheckpoint == nil {
		return nil, nil
	}
	return f.OnCheckpoint()
}

// Restore implements Exporter.
func (f Funcs[P, R]) Restore(state json.RawMessage) error {
	if f.OnRestore == nil {
		return nil
	}
	return f.OnRestore(state)
}

// Close implements Exporter.
func (f Funcs[P, R]) Close(done bool) error {
	if f.OnClose == nil {
		return nil
	}
	return f.OnClose(done)
}
