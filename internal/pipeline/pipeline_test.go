package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// testGen is a campaign whose trial i computes a string from i.
func testGen(n int, fp string) Fixed[int] {
	return Fixed[int]{CampaignName: "test", N: n, Fn: func(i int) int { return i * 3 }, FP: fp}
}

func testTrial(_ struct{}, p int) string { return fmt.Sprintf("r%d", p) }

func noState() struct{} { return struct{}{} }

func TestRunCollectsInOrder(t *testing.T) {
	const n = 200
	var lastIdx atomic.Int64
	lastIdx.Store(-1)
	order := Funcs[int, string]{
		ExporterName: "order",
		OnExport: func(i int, p int, r string) error {
			if int64(i) != lastIdx.Load()+1 {
				t.Errorf("export order: got %d after %d", i, lastIdx.Load())
			}
			lastIdx.Store(int64(i))
			return nil
		},
	}
	collect := NewCollector[int, string](n)
	sum, err := Run(Config{Workers: 8}, testGen(n, ""), noState, testTrial, collect, order)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Exported != n {
		t.Fatalf("summary = %+v, want done with %d exported", sum, n)
	}
	results := collect.Results()
	if len(results) != n {
		t.Fatalf("collected %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if want := fmt.Sprintf("r%d", i*3); r != want {
			t.Fatalf("result[%d] = %q, want %q", i, r, want)
		}
	}
}

func TestZeroTrials(t *testing.T) {
	began, closed := false, false
	e := Funcs[int, string]{
		ExporterName: "e",
		OnBegin:      func(Meta) error { began = true; return nil },
		OnClose:      func(done bool) error { closed = done; return nil },
	}
	sum, err := Run(Config{}, testGen(0, ""), noState, testTrial, e)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || !began || !closed {
		t.Fatalf("zero-trial campaign: sum=%+v began=%v closedDone=%v", sum, began, closed)
	}
}

func runJSONL(t *testing.T, dir string, n int, cfg Config, extra ...Exporter[int, string]) (Summary, []byte) {
	t.Helper()
	path := filepath.Join(dir, "out.jsonl")
	exp := NewJSONL(path, func(i int, p int, r string) (any, error) {
		return map[string]any{"i": i, "r": r}, nil
	})
	exporters := append([]Exporter[int, string]{exp}, extra...)
	sum, err := Run(cfg, testGen(n, "fp1"), noState, testTrial, exporters...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sum, data
}

func TestResumeAfterMaxTrialsByteIdentical(t *testing.T) {
	const n = 57
	refDir := t.TempDir()
	_, want := runJSONL(t, refDir, n, Config{Workers: 4})

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	sum, _ := runJSONL(t, dir, n, Config{Workers: 4, Checkpoint: ckpt, CheckpointEvery: 10, MaxTrials: 23})
	if sum.Done || sum.Exported != 23 {
		t.Fatalf("interrupted run: %+v, want 23 exported not done", sum)
	}
	sum, got := runJSONL(t, dir, n, Config{Workers: 4, Checkpoint: ckpt, CheckpointEvery: 10})
	if !sum.Done || sum.Start != 23 || sum.Exported != n {
		t.Fatalf("resumed run: %+v, want done from 23", sum)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run:\ngot %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestResumeTruncatesAfterCrash kills the campaign with an exporter
// error between checkpoints, so the JSONL file holds lines past the
// last checkpoint; the resume must truncate them and still produce
// byte-identical output.
func TestResumeTruncatesAfterCrash(t *testing.T) {
	const n = 57
	refDir := t.TempDir()
	_, want := runJSONL(t, refDir, n, Config{Workers: 4})

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	path := filepath.Join(dir, "out.jsonl")
	boom := Funcs[int, string]{
		ExporterName: "boom",
		OnExport: func(i int, p int, r string) error {
			if i == 37 {
				return fmt.Errorf("crash at %d", i)
			}
			return nil
		},
	}
	exp := NewJSONL(path, func(i int, p int, r string) (any, error) {
		return map[string]any{"i": i, "r": r}, nil
	})
	_, err := Run(Config{Workers: 4, Checkpoint: ckpt, CheckpointEvery: 10},
		testGen(n, "fp1"), noState, testTrial, exp, boom)
	if err == nil {
		t.Fatal("expected crash error")
	}
	// The file now holds more lines than the last checkpoint (30)
	// covers; Close(false) flushed them.
	crashed, _ := os.ReadFile(path)
	if got := bytes.Count(crashed, []byte("\n")); got <= 30 {
		t.Fatalf("crash left %d lines, expected trailing lines past checkpoint 30", got)
	}
	sum, got := runJSONL(t, dir, n, Config{Workers: 4, Checkpoint: ckpt}, boomNoop())
	if !sum.Done || sum.Start != 30 {
		t.Fatalf("resumed run: %+v, want done from 30", sum)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from uninterrupted run")
	}
}

// boomNoop stands in for the crashed exporter on resume (the
// checkpoint names it, so the resume must present it).
func boomNoop() Exporter[int, string] {
	return Funcs[int, string]{ExporterName: "boom"}
}

func TestResumeRefusesFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	path := filepath.Join(dir, "out.jsonl")
	mk := func() Exporter[int, string] {
		return NewJSONL(path, func(i int, p int, r string) (any, error) { return r, nil })
	}
	if _, err := Run(Config{Checkpoint: ckpt, MaxTrials: 5}, testGen(20, "fpA"), noState, testTrial, mk()); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{Checkpoint: ckpt}, testGen(20, "fpB"), noState, testTrial, mk())
	if err == nil {
		t.Fatal("resume under a different fingerprint must fail")
	}
	_, err = Run(Config{Checkpoint: ckpt}, Fixed[int]{CampaignName: "other", N: 20, Fn: func(i int) int { return i }, FP: "fpA"}, noState, testTrial, mk())
	if err == nil {
		t.Fatal("resume under a different campaign name must fail")
	}
}

func TestDoneCheckpointShortCircuits(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	path := filepath.Join(dir, "out.jsonl")
	mk := func() Exporter[int, string] {
		return NewJSONL(path, func(i int, p int, r string) (any, error) { return r, nil })
	}
	if _, err := Run(Config{Checkpoint: ckpt}, testGen(10, "fp"), noState, testTrial, mk()); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)
	touched := false
	spy := Funcs[int, string]{ExporterName: "spy", OnBegin: func(Meta) error { touched = true; return nil }}
	sum, err := Run(Config{Checkpoint: ckpt}, testGen(10, "fp"), noState, testTrial, mk(), spy)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Exported != 10 || touched {
		t.Fatalf("done campaign re-ran: sum=%+v exporterTouched=%v", sum, touched)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("done campaign modified exporter output")
	}
}

func TestCollectorRefusesResume(t *testing.T) {
	c := NewCollector[int, string](4)
	if err := c.Begin(Meta{Start: 3}); err == nil {
		t.Fatal("Collector must refuse a mid-campaign start")
	}
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("Collector must refuse to checkpoint")
	}
}

func TestStopChannel(t *testing.T) {
	// A stop that is already readable drains before any trial is
	// claimed: nothing executes, nothing exports, and the campaign is
	// left resumable (Done false).
	stop := make(chan struct{})
	close(stop)
	collect := NewCollector[int, string](50)
	sum, err := Run(Config{Workers: 4, Stop: stop}, testGen(50, ""), noState, testTrial, collect)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Done || sum.Exported != 0 {
		t.Fatalf("pre-stopped campaign: %+v, want zero exports, not done", sum)
	}
}

func TestCheckpointFileShape(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	path := filepath.Join(dir, "out.jsonl")
	exp := NewJSONL(path, func(i int, p int, r string) (any, error) { return r, nil })
	if _, err := Run(Config{Checkpoint: ckpt, MaxTrials: 7}, testGen(20, "fp"), noState, testTrial, exp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Campaign != "test" || ck.Fingerprint != "fp" || ck.Trials != 20 || ck.Next != 7 || ck.DoneFlag {
		t.Fatalf("checkpoint = %+v", ck)
	}
	if _, ok := ck.Exporters[exp.Name()]; !ok {
		t.Fatalf("checkpoint lacks exporter state, has %v", ck.Exporters)
	}
}
