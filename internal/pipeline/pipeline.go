// Package pipeline is the streaming experiment surface of the
// repository: a generator → runner → exporter pipeline that executes
// seeded trial campaigns of any length in bounded memory, with
// checkpointed progress and byte-identical resume.
//
// The three stage contracts are deliberately small:
//
//   - A Generator describes the campaign: how many trials, and the
//     parameters of trial i. Params(i) must be a cheap pure function
//     of i — that one rule is what makes the whole pipeline
//     deterministic at any worker count, resumable from any index,
//     and free to re-derive parameters instead of storing them.
//   - The runner (internal/runner.StreamWith) fans trial indices
//     across a worker pool, each worker holding one reusable state
//     arena, and delivers results in strict index order through a
//     bounded reorder window — at most Window trials are in flight or
//     parked, no matter how long the campaign runs.
//   - Exporters consume the ordered (index, params, result) stream:
//     accumulate a table, append a JSONL line, feed a metrics
//     registry. Because the stream order is index order, an
//     exporter's output is a pure function of the campaign
//     definition — the same bytes at -j 1 and -j 64.
//
// Checkpointing rides on the same purity. Every CheckpointEvery
// trials the pipeline collects each exporter's serialized state plus
// the next trial index into one JSON checkpoint file (written
// atomically). A resumed run restores the exporters, re-verifies the
// campaign fingerprint, and continues from the recorded index; trials
// after the checkpoint re-execute identically, so the final exporter
// output is byte-identical to an uninterrupted run. A kill between
// checkpoints loses at most CheckpointEvery trials of work, never
// output integrity: exporters whose sinks can hold partial trailing
// data (the JSONL file) truncate back to their checkpointed state on
// restore.
//
// Every sweep in this repository executes through Run — the paper's
// six fixed sweeps (via experiment's Fixed generators and a Collector
// exporter) and the synthetic-corpus survey campaigns (via the
// website corpus generator and the JSONL/summary/obs exporters) are
// configurations of this one path, not separate harnesses.
package pipeline

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// Config tunes one Run. The zero value runs serially-scheduled on all
// CPUs with no checkpointing.
type Config struct {
	// Workers is the trial worker count (internal/runner semantics:
	// <=0 means GOMAXPROCS, 1 is the serial path).
	Workers int

	// Window bounds how many trials may be in flight or parked ahead
	// of the export cursor (internal/runner.StreamOptions.Window).
	// Zero selects the runner default, max(64, 4*workers).
	Window int

	// Batch is the number of consecutive trial indices one worker
	// claims at a time (internal/runner.StreamOptions.Batch). Set it
	// to the campaign's parameter period — e.g. the survey's
	// SiteTrials — so per-worker caches (built sites, primed size
	// tables) serve the whole period instead of being diluted across
	// workers. Zero claims one index. Never affects exported bytes.
	Batch int

	// OnProgress receives completion/ETA snapshots (serialized).
	OnProgress func(runner.Progress)

	// OnTrialDone receives each trial's index and wall-clock duration
	// (serialized; runner semantics). The experiment layer times its
	// trials into per-worker obs shards instead, so this is for
	// external consumers.
	OnTrialDone func(index int, elapsed time.Duration)

	// Start is the first trial index this invocation executes (default
	// 0). A checkpointed resume overrides it with the recorded next
	// index. Together with End it confines the run to one contiguous
	// slice [Start, End) of the campaign — the process-level
	// partitioning internal/shard builds on: because Params(i) is pure,
	// a campaign sliced across processes exports exactly the lines a
	// single process would for those indices.
	Start int

	// End, when positive, bounds execution to trial indices below it;
	// zero means the full campaign (Generator.Trials()).
	End int

	// Checkpoint is the checkpoint file path; empty disables
	// checkpointing (and resume).
	Checkpoint string

	// CheckpointEvery is the number of exported trials between
	// checkpoint writes. Zero means 1000. The final state at
	// completion or stop is always checkpointed.
	CheckpointEvery int

	// MaxTrials, when positive, stops the run after that many trials
	// have been exported by this invocation, checkpointing the stop
	// point. The campaign is resumed by running again with the same
	// checkpoint file — the chunked execution mode for multi-hour
	// campaigns (and the deterministic "kill" used by the resume
	// tests). It is implemented as a tighter execution end bound, so
	// no trial beyond the stop point ever runs: state recorded during
	// execution (the shard obs snapshot) exactly matches the exported
	// prefix at the final checkpoint.
	MaxTrials int

	// Stop, when non-nil, requests a graceful stop when it becomes
	// readable (e.g. closed on SIGINT): workers claim no further
	// trials, trials already claimed complete and export, and the
	// pipeline checkpoints the stop point, returning with
	// Summary.Done == false. Draining — rather than discarding
	// in-flight trials — is what keeps execution-time side effects
	// (metrics shards) exact across the stop/resume boundary.
	Stop <-chan struct{}

	// ExportQueue tunes the pipelined export stage: a bounded,
	// order-preserving queue hands each trial from the emit goroutine
	// to a dedicated writer goroutine, so encode+write overlap trial
	// compute. Zero selects DefaultExportQueue (256) items; positive
	// values set the depth; negative disables the stage and exports
	// run inline on the emit goroutine. Periodic checkpoints ride the
	// queue as tokens, so a checkpoint always records the durable
	// bytes of exactly the trials before it — output bytes and
	// resume/kill semantics are identical on both paths.
	ExportQueue int

	// WriterBuf, when positive, is handed to exporters via
	// Meta.WriterBuf as the preferred writer buffer size in bytes
	// (JSONL uses it for its bufio.Writer, overriding its default).
	// Batching only; never affects exported bytes.
	WriterBuf int

	// Gauges, when non-nil, receives live pipeline health samples —
	// export-queue depth and high-water, write-behind backlog,
	// exported-trial/byte cursors, and checkpoint lag — alongside the
	// runner gauges (the same *Gauges is handed down to the worker
	// pool). Write-only from the pipeline's perspective: the telemetry
	// status server samples it, nothing is read back, so exported
	// bytes are identical with the plane on or off. Nil (default)
	// disables it at zero cost.
	Gauges *telemetry.Gauges
}

// Summary reports what one Run invocation did.
type Summary struct {
	// Name is the generator's campaign name.
	Name string

	// Trials is the total campaign size.
	Trials int

	// Start is the index this invocation began at (non-zero on
	// resume or for a shard range).
	Start int

	// End is the index this invocation runs up to: Trials for a full
	// campaign, Config.End for a shard range.
	End int

	// Exported counts trials exported so far (== the next index to
	// run; Start + this run's exports).
	Exported int

	// Failures are this invocation's panicked trials, in index order
	// (their results were exported as zero values).
	Failures []*runner.TrialError

	// Done reports whether the campaign range completed. False means
	// a MaxTrials/Stop stop was checkpointed for resume.
	Done bool
}

// Run executes gen's campaign through a worker pool and streams every
// trial, in index order, to each exporter. newState builds one
// reusable worker arena (e.g. an experiment.World) and trial executes
// one trial in it; trial(state, gen.Params(i)) must depend only on i,
// the same purity contract as internal/runner.
//
// With cfg.Checkpoint set, Run resumes from an existing checkpoint
// file (restoring exporter state and the next index, after verifying
// the generator fingerprint) and periodically checkpoints progress.
// A campaign whose checkpoint says done returns immediately without
// touching the exporters.
func Run[P, R, S any](cfg Config, gen Generator[P], newState func() S, trial func(state S, p P) R, exporters ...Exporter[P, R]) (Summary, error) {
	n := gen.Trials()
	end := cfg.End
	if end <= 0 || end > n {
		end = n
	}
	sum := Summary{Name: gen.Name(), Trials: n, Start: cfg.Start, End: end}
	if cfg.Start < 0 || cfg.Start > end {
		return sum, fmt.Errorf("pipeline: range [%d, %d) outside campaign of %d trials", cfg.Start, end, n)
	}

	var ck *checkpoint
	resumed := false
	if cfg.Checkpoint != "" {
		loaded, err := loadCheckpoint(cfg.Checkpoint)
		if err != nil {
			return sum, err
		}
		resumed = loaded != nil
		if loaded != nil {
			if err := loaded.verify(gen.Name(), gen.Fingerprint(), n, cfg.Start, end); err != nil {
				return sum, err
			}
			if loaded.DoneFlag {
				sum.Start, sum.Exported, sum.Done = loaded.Next, loaded.Next, true
				return sum, nil
			}
			for _, e := range exporters {
				state, ok := loaded.Exporters[e.Name()]
				if !ok {
					return sum, fmt.Errorf("pipeline: checkpoint %s has no state for exporter %q", cfg.Checkpoint, e.Name())
				}
				if err := e.Restore(state); err != nil {
					return sum, fmt.Errorf("pipeline: restore exporter %q: %w", e.Name(), err)
				}
			}
			sum.Start = loaded.Next
		}
		ck = newCheckpoint(cfg.Checkpoint, gen.Name(), gen.Fingerprint(), n, cfg.Start, end)
	}

	// checkpointStates collects every exporter's serialized state; a
	// failing exporter aborts the save so a checkpoint never records
	// a partial exporter set.
	checkpointStates := func() (map[string]json.RawMessage, error) {
		states := make(map[string]json.RawMessage, len(exporters))
		for _, e := range exporters {
			state, err := e.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("pipeline: checkpoint exporter %q: %w", e.Name(), err)
			}
			if state == nil {
				state = json.RawMessage("null")
			}
			states[e.Name()] = state
		}
		return states, nil
	}
	g := cfg.Gauges
	saveCheckpoint := func(next int, done bool) error {
		states, err := checkpointStates()
		if err != nil {
			return err
		}
		if err := ck.save(next, done, states); err != nil {
			return err
		}
		// Checkpoint lag is read as GExportedTrials-GCkptTrials and
		// GExportBytes-GCkptBytes: both cursors are sampled after the
		// save, so the lag gauges describe durable state.
		g.Set(telemetry.GCkptTrials, int64(next))
		g.Set(telemetry.GCkptBytes, g.Load(telemetry.GExportBytes))
		return nil
	}

	meta := Meta{
		Name: gen.Name(), Trials: n, Start: sum.Start, Resumed: resumed,
		WriterBuf: cfg.WriterBuf, AsyncExport: cfg.ExportQueue >= 0,
		Gauges: cfg.Gauges,
	}
	for _, e := range exporters {
		if err := e.Begin(meta); err != nil {
			return sum, fmt.Errorf("pipeline: exporter %q: %w", e.Name(), err)
		}
	}

	// doExport streams one trial to every exporter, serialized and in
	// index order on whichever goroutine owns the export stage.
	doExport := func(i int, p *P, r *R) error {
		for _, e := range exporters {
			if err := e.Export(i, *p, *r); err != nil {
				return fmt.Errorf("pipeline: exporter %q at trial %d: %w", e.Name(), i, err)
			}
		}
		return nil
	}

	// The pipelined export stage (unless disabled): trials and
	// periodic checkpoint tokens flow through a bounded FIFO to one
	// writer goroutine, which is then the only goroutine touching the
	// exporters until close() drains it. Exported bytes, checkpoint
	// contents, and error semantics match the inline path exactly —
	// only the overlap with trial compute differs.
	var q *exportQueue[R]
	if cfg.ExportQueue >= 0 {
		depth := cfg.ExportQueue
		if depth == 0 {
			depth = DefaultExportQueue
		}
		q = newExportQueue(depth, cfg.Gauges, func(it *exportItem[R]) error {
			if it.ckpt {
				return saveCheckpoint(it.i, false)
			}
			p := gen.Params(it.i)
			return doExport(it.i, &p, &it.r)
		})
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 1000
	}
	// MaxTrials is a tighter end bound, not an emit-side abort: the
	// runner executes exactly [sum.Start, execEnd), so nothing runs
	// beyond the checkpointed stop point.
	execEnd := end
	if cfg.MaxTrials > 0 && sum.Start+cfg.MaxTrials < execEnd {
		execEnd = sum.Start + cfg.MaxTrials
	}
	exported := 0
	var runErr error
	runner.StreamWith(execEnd, runner.StreamOptions{
		Options: runner.Options{Workers: cfg.Workers, OnProgress: cfg.OnProgress, OnTrialDone: cfg.OnTrialDone, Gauges: cfg.Gauges},
		Start:   sum.Start,
		Window:  cfg.Window,
		Batch:   cfg.Batch,
		Stop:    cfg.Stop,
	}, newState, func(s S, i int) R {
		return trial(s, gen.Params(i))
	}, func(i int, result R, err *runner.TrialError) bool {
		if err != nil {
			sum.Failures = append(sum.Failures, err)
		}
		if q != nil {
			if !q.putTrial(i, &result) {
				runErr = q.err()
				return false
			}
			exported++
			g.Set(telemetry.GExportedTrials, int64(i+1))
			if ck != nil && exported%every == 0 {
				if !q.putCkpt(i + 1) {
					runErr = q.err()
					return false
				}
			}
			return true
		}
		p := gen.Params(i)
		if expErr := doExport(i, &p, &result); expErr != nil {
			runErr = expErr
			return false
		}
		exported++
		g.Set(telemetry.GExportedTrials, int64(i+1))
		if ck != nil && exported%every == 0 {
			if ckErr := saveCheckpoint(i+1, false); ckErr != nil {
				runErr = ckErr
				return false
			}
		}
		return true
	})
	if q != nil {
		// Drain the writer before any final checkpoint or Close: after
		// this, every executed trial's bytes have reached the
		// exporters and no other goroutine touches them.
		if qErr := q.close(); qErr != nil && runErr == nil {
			runErr = qErr
		}
	}

	sum.Exported = sum.Start + exported
	if runErr != nil {
		// The exporters may be mid-trial; close them without the
		// done-side effects and leave the last periodic checkpoint as
		// the resume point.
		for _, e := range exporters {
			_ = e.Close(false)
		}
		return sum, runErr
	}
	sum.Done = runErr == nil && sum.Exported == end
	if ck != nil {
		if err := saveCheckpoint(sum.Exported, sum.Done); err != nil {
			return sum, err
		}
	}
	for _, e := range exporters {
		if err := e.Close(sum.Done); err != nil {
			return sum, fmt.Errorf("pipeline: close exporter %q: %w", e.Name(), err)
		}
	}
	return sum, nil
}
