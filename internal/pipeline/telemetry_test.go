package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// TestGaugesByteIdenticalOutput pins the wall-vs-deterministic
// boundary at the pipeline level: JSONL output with the telemetry
// plane enabled is byte-identical to the plane-off reference, on both
// the inline and the pipelined export stage and at several worker
// counts. The gauges are write-only samples; nothing downstream may
// read them back into the byte stream.
func TestGaugesByteIdenticalOutput(t *testing.T) {
	const n = 83
	_, want := runJSONL(t, t.TempDir(), n, Config{Workers: 1, ExportQueue: -1})
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"inline-j4", Config{Workers: 4, ExportQueue: -1, Gauges: &telemetry.Gauges{}}},
		{"queued-j1", Config{Workers: 1, ExportQueue: 8, Gauges: &telemetry.Gauges{}}},
		{"queued-j8", Config{Workers: 8, ExportQueue: 8, WriterBuf: 128, Gauges: &telemetry.Gauges{}}},
	} {
		_, got := runJSONL(t, t.TempDir(), n, tc.cfg)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: output with gauges enabled differs from reference (%d vs %d bytes)",
				tc.name, len(got), len(want))
		}
	}
}

// TestGaugesPipelineCursors verifies the export-side gauges after a
// campaign: the exported-trials and checkpoint cursors agree with the
// summary, export bytes match the file, and the queue drained.
func TestGaugesPipelineCursors(t *testing.T) {
	const n = 64
	g := &telemetry.Gauges{}
	dir := t.TempDir()
	ckpt := dir + "/ck.json"
	sum, data := runJSONL(t, dir, n, Config{
		Workers: 4, ExportQueue: 8, Checkpoint: ckpt, CheckpointEvery: 10, Gauges: g,
	})
	if !sum.Done {
		t.Fatalf("campaign not done: %+v", sum)
	}
	if got := g.Load(telemetry.GExportedTrials); got != n {
		t.Errorf("GExportedTrials = %d, want %d", got, n)
	}
	// The final checkpoint records completion, so the lag gauges must
	// read zero lag.
	if got := g.Load(telemetry.GCkptTrials); got != n {
		t.Errorf("GCkptTrials = %d, want %d", got, n)
	}
	if got := g.Load(telemetry.GExportBytes); got != int64(len(data)) {
		t.Errorf("GExportBytes = %d, want file size %d", got, len(data))
	}
	if got := g.Load(telemetry.GCkptBytes); got != int64(len(data)) {
		t.Errorf("GCkptBytes = %d, want %d", got, len(data))
	}
	if got := g.Load(telemetry.GExportQueueDepth); got != 0 {
		t.Errorf("GExportQueueDepth = %d after drain, want 0", got)
	}
	if hw := g.Load(telemetry.GExportQueueHighWater); hw < 1 {
		t.Errorf("GExportQueueHighWater = %d, want >= 1", hw)
	}
}
