package pipeline

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/jsonenc"
)

// stringAppender mirrors the fallback encode used by the tests below
// (the line is json.Marshal of the result string), so appender and
// reflection paths must produce identical bytes.
func stringAppender() AppendFunc[int, string] {
	return func(dst []byte, i int, p int, r string) ([]byte, error) {
		return jsonenc.AppendString(dst, r), nil
	}
}

// TestAppenderMatchesFallbackBytes runs the same campaign through the
// append fast path and the json.Marshal fallback and requires
// byte-identical files — the contract that makes the fast path safe
// to substitute under checkpointed campaigns.
func TestAppenderMatchesFallbackBytes(t *testing.T) {
	const n = 100
	run := func(app Appender[int, string]) []byte {
		dir := t.TempDir()
		path := filepath.Join(dir, "out.jsonl")
		exp := NewJSONL(path, func(i int, p int, r string) (any, error) { return r, nil })
		if app != nil {
			exp.WithAppender(app)
		}
		if _, err := Run(Config{Workers: 4}, testGen(n, ""), noState, testTrial, exp); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	want := run(nil)
	got := run(stringAppender())
	if !bytes.Equal(got, want) {
		t.Fatalf("append fast path diverges from fallback:\n got %q\nwant %q", got, want)
	}
}

// TestExportQueueByteIdentity pins the async/sync equivalence: any
// queue depth (including the backpressure-heavy depth 1) and writer
// buffer size must export the same bytes as the inline path.
func TestExportQueueByteIdentity(t *testing.T) {
	const n = 123
	run := func(cfg Config) []byte {
		dir := t.TempDir()
		path := filepath.Join(dir, "out.jsonl")
		exp := NewJSONL(path, func(i int, p int, r string) (any, error) { return r, nil }).
			WithAppender(stringAppender())
		if _, err := Run(cfg, testGen(n, ""), noState, testTrial, exp); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	want := run(Config{Workers: 4, ExportQueue: -1}) // inline
	for _, cfg := range []Config{
		{Workers: 4},                                // default async depth
		{Workers: 4, ExportQueue: 1},                // maximal backpressure
		{Workers: 1, ExportQueue: 7, WriterBuf: 32}, // serial runner, tiny buffer
		{Workers: 8, ExportQueue: 512, WriterBuf: 1 << 20},
	} {
		if got := run(cfg); !bytes.Equal(got, want) {
			t.Fatalf("config %+v exported different bytes", cfg)
		}
	}
}

// TestEncodeErrorAbortsAndLeavesRestorableCheckpoint fails the
// appender mid-campaign: the run must surface the error, and the
// checkpoint left behind must resume to a byte-identical file.
func TestEncodeErrorAbortsAndLeavesRestorableCheckpoint(t *testing.T) {
	const n = 57
	refDir := t.TempDir()
	_, want := runJSONL(t, refDir, n, Config{Workers: 4})

	mk := func(path string, failAt int) *JSONL[int, string] {
		return NewJSONL(path, func(i int, p int, r string) (any, error) {
			return map[string]any{"i": i, "r": r}, nil
		}).WithAppender(AppendFunc[int, string](func(dst []byte, i int, p int, r string) ([]byte, error) {
			if failAt >= 0 && i == failAt {
				return dst, fmt.Errorf("encode failure at %d", i)
			}
			// Replicate json.Marshal(map[string]any{"i": i, "r": r})
			// (keys sorted: "i" then "r") so the resumed file matches
			// the fallback reference byte for byte.
			dst = append(dst, `{"i":`...)
			dst = jsonenc.AppendInt(dst, int64(i))
			dst = append(dst, `,"r":`...)
			dst = jsonenc.AppendString(dst, r)
			return append(dst, '}'), nil
		}))
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	path := filepath.Join(dir, "out.jsonl")
	_, err := Run(Config{Workers: 4, Checkpoint: ckpt, CheckpointEvery: 10},
		testGen(n, "fp1"), noState, testTrial, mk(path, 37))
	if err == nil || !strings.Contains(err.Error(), "encode failure at 37") {
		t.Fatalf("want encode failure, got %v", err)
	}
	sum, err := Run(Config{Workers: 4, Checkpoint: ckpt},
		testGen(n, "fp1"), noState, testTrial, mk(path, -1))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !sum.Done || sum.Start != 30 {
		t.Fatalf("resume summary %+v, want done from checkpoint 30", sum)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed file differs from uninterrupted reference")
	}
}

// TestWriterErrorAbortsAndLeavesRestorableCheckpoint fails the real
// write path (the JSONL file descriptor dies mid-campaign, as a full
// disk would make it): the campaign must abort with the write error
// and the checkpoint must still resume to a byte-identical file.
func TestWriterErrorAbortsAndLeavesRestorableCheckpoint(t *testing.T) {
	const n = 57
	refDir := t.TempDir()
	_, want := runJSONL(t, refDir, n, Config{Workers: 4})

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	path := filepath.Join(dir, "out.jsonl")
	exp := NewJSONL(path, func(i int, p int, r string) (any, error) {
		return map[string]any{"i": i, "r": r}, nil
	}).WithBufferSize(1) // flush every line so the dead fd surfaces immediately
	// sabotage runs before the JSONL exporter in the list: at trial 37
	// it closes the file out from under the writer, the way ENOSPC
	// kills a stream mid-write.
	sabotage := Funcs[int, string]{
		ExporterName: "sabotage",
		OnExport: func(i int, p int, r string) error {
			if i == 37 {
				return exp.file.Close()
			}
			return nil
		},
	}
	_, err := Run(Config{Workers: 4, Checkpoint: ckpt, CheckpointEvery: 10},
		testGen(n, "fp1"), noState, testTrial, sabotage, exp)
	if err == nil {
		t.Fatal("want write error after fd death, got nil")
	}
	sum, got := runJSONL(t, dir, n, Config{Workers: 4, Checkpoint: ckpt},
		Funcs[int, string]{ExporterName: "sabotage"})
	if !sum.Done || sum.Start != 30 {
		t.Fatalf("resume summary %+v, want done from checkpoint 30", sum)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed file differs from uninterrupted reference")
	}
}

// TestCollectorPreSizesFromMeta pins the Begin-time pre-sizing: a
// zero-capacity collector must reach campaign capacity without
// regrowth during exports.
func TestCollectorPreSizesFromMeta(t *testing.T) {
	c := NewCollector[int, string](0)
	if err := c.Begin(Meta{Trials: 1000}); err != nil {
		t.Fatal(err)
	}
	if cap(c.results) != 1000 {
		t.Fatalf("cap after Begin = %d, want 1000", cap(c.results))
	}
	base := &c.results[:1][0]
	for i := 0; i < 1000; i++ {
		if err := c.Export(i, i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if &c.results[0] != base {
		t.Fatal("collector reallocated during exports despite pre-sizing")
	}
}
