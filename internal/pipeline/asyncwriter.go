package pipeline

import (
	"sync"

	"repro/internal/telemetry"
)

// DefaultExportQueue is the async export stage's queue depth when
// Config.ExportQueue is zero.
const DefaultExportQueue = 256

// exportItem is one unit of writer-goroutine work: a trial to export,
// or (ckpt true) a periodic checkpoint token carrying the next trial
// index. Tokens ride the same FIFO as the trials, so by the time the
// writer processes one, every prior trial's bytes have been handed to
// the exporters — the checkpoint barriers on queue drain by
// construction, and the recorded offsets are durable bytes.
//
// Only the result rides the queue: trial params are a cheap pure
// function of the index (the Generator contract), so the writer
// re-derives them instead of copying potentially large param structs
// through the FIFO.
type exportItem[R any] struct {
	i    int
	r    R
	ckpt bool
}

// exportQueue is the bounded, order-preserving handoff between the
// runner's strict-order emit goroutine and the export writer
// goroutine: a double-buffer queue (producer appends to one slice
// while the writer drains the other; a swap under the lock exchanges
// them) so encode+write overlap trial compute without per-item
// channel traffic or steady-state allocation. The single producer and
// single consumer preserve index order end to end.
type exportQueue[R any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []exportItem[R] // producer side of the double buffer
	spare    []exportItem[R] // writer side, swapped back in
	depth    int
	wakeAt   int // queue length that wakes an idle writer
	closed   bool
	failed   error
	done     chan struct{}
	process  func(*exportItem[R]) error
	gauges   *telemetry.Gauges
}

// newExportQueue starts the writer goroutine. process handles one
// item (export or checkpoint token); its first error stops the writer
// and surfaces through put/close. gauges (nil when telemetry is off)
// samples the queue's depth and high-water so a status scrape shows
// whether the campaign is compute-bound (shallow queue) or
// writer-bound (queue pinned at depth).
func newExportQueue[R any](depth int, gauges *telemetry.Gauges, process func(*exportItem[R]) error) *exportQueue[R] {
	if depth < 1 {
		depth = 1
	}
	q := &exportQueue[R]{
		buf:     make([]exportItem[R], 0, depth),
		spare:   make([]exportItem[R], 0, depth),
		depth:   depth,
		wakeAt:  (depth + 1) / 2,
		done:    make(chan struct{}),
		process: process,
		gauges:  gauges,
	}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	go q.writer()
	return q
}

// putTrial enqueues one trial, blocking while the queue is full
// (backpressure bounds memory to ~2*depth items in flight). The
// result is copied once, directly into the queue slot — results can
// be large structs, so the hot path avoids passing them by value. It
// returns false once the writer has failed; the producer should stop
// and read err().
func (q *exportQueue[R]) putTrial(i int, r *R) bool {
	q.mu.Lock()
	if !q.waitSlot() {
		q.mu.Unlock()
		return false
	}
	q.buf = append(q.buf, exportItem[R]{i: i})
	q.buf[len(q.buf)-1].r = *r
	q.sampleDepth()
	q.wake()
	q.mu.Unlock()
	return true
}

// putCkpt enqueues a checkpoint token recording next as the resume
// index once everything before it has drained.
func (q *exportQueue[R]) putCkpt(next int) bool {
	q.mu.Lock()
	if !q.waitSlot() {
		q.mu.Unlock()
		return false
	}
	q.buf = append(q.buf, exportItem[R]{i: next, ckpt: true})
	q.sampleDepth()
	q.wake()
	q.mu.Unlock()
	return true
}

// sampleDepth publishes the queue occupancy — items put but not yet
// processed — to the telemetry gauges. The depth gauge is maintained
// as a counter pair (Add +1 on put, -1 after q.process completes an
// item), so the writer's in-progress batch still counts as backlog;
// the high-water gauge rides the same increment. Caller holds q.mu,
// but the gauge cells are atomics, so the writer's decrements need no
// lock.
func (q *exportQueue[R]) sampleDepth() {
	d := q.gauges.Add(telemetry.GExportQueueDepth, 1)
	q.gauges.SetMax(telemetry.GExportQueueHighWater, d)
}

// waitSlot blocks until the producer buffer has room, reporting false
// on writer failure. Caller holds q.mu.
func (q *exportQueue[R]) waitSlot() bool {
	for len(q.buf) >= q.depth && q.failed == nil {
		q.notFull.Wait()
	}
	return q.failed == nil
}

// wake signals the writer on the upward crossing of wakeAt. Wake
// hysteresis: an idle writer is only woken once half the depth has
// accumulated (or at close), so a producer that outruns the writer
// pays one futex wake per ~depth/2 items instead of one per item.
// Nothing downstream needs lower latency — checkpoint tokens are
// periodic best-effort and close() drains the queue. The writer only
// sleeps on an empty buffer, so every upward crossing of wakeAt finds
// it either waiting (gets the signal) or already draining. Caller
// holds q.mu.
func (q *exportQueue[R]) wake() {
	if len(q.buf) == q.wakeAt {
		q.notEmpty.Signal()
	}
}

// err reports the writer's failure, if any.
func (q *exportQueue[R]) err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failed
}

// close marks the queue finished, waits for the writer to drain every
// queued item, and returns its error. After close returns, no
// goroutine touches the exporters — the caller may checkpoint and
// Close them directly.
func (q *exportQueue[R]) close() error {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Signal()
	q.mu.Unlock()
	<-q.done
	return q.failed
}

// writer drains batches in FIFO order until close (or failure). On a
// failing item the remaining queued work is discarded: the last
// periodic checkpoint the writer completed is the resume point, and
// anything after it re-runs on resume.
func (q *exportQueue[R]) writer() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.buf) == 0 && !q.closed {
			q.notEmpty.Wait()
		}
		if len(q.buf) == 0 {
			q.mu.Unlock()
			return
		}
		batch := q.buf
		q.buf = q.spare[:0]
		q.spare = batch
		q.notFull.Broadcast()
		q.mu.Unlock()
		for k := range batch {
			if err := q.process(&batch[k]); err != nil {
				q.mu.Lock()
				q.failed = err
				q.buf = q.buf[:0]
				q.notFull.Broadcast()
				q.mu.Unlock()
				// The failed item, the rest of this batch, and the
				// discarded producer buffer no longer count as backlog.
				q.gauges.Set(telemetry.GExportQueueDepth, 0)
				return
			}
			q.gauges.Add(telemetry.GExportQueueDepth, -1)
		}
	}
}
