package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/website"
)

// This file is the survey-campaign surface: it runs the paper's
// attack against a synthetic site corpus (internal/website.Corpus)
// through the streaming pipeline (internal/pipeline), measuring
// Table II-style attack accuracy across thousands of sites instead of
// the one survey site. The pieces are a Generator over (site, rep)
// trials, a World-based trial executor with per-worker site caching,
// and the campaign exporters (JSONL lines, a checkpointable summary
// table, an obs snapshot).

// CorpusTrialParams identifies one survey-campaign trial: repetition
// Rep of the attack against corpus site Site. It is the pipeline's P
// type — a cheap pure function of the trial index; the site model
// itself is built (and cached) in the worker state.
type CorpusTrialParams struct {
	// Site is the corpus site index.
	Site int

	// Rep is the repetition number for this site (0-based).
	Rep int

	// Seed drives all per-trial randomness (ambient network
	// conditions, packet noise).
	Seed int64

	// Mode selects the adversary; zero means ModeFullAttack.
	Mode AdversaryMode
}

// SurveyResult is one survey-campaign trial outcome. It embeds the
// generated site's spec so each JSONL line is self-describing — per-
// site accuracy can be grouped by object count, shape, or size
// without rebuilding the corpus.
type SurveyResult struct {
	website.SiteSpec

	// Rep and TrialSeed identify the trial within the site.
	Rep       int   `json:"rep"`
	TrialSeed int64 `json:"trial_seed"`

	// Broken reports a torn-down connection (or a panicked trial).
	Broken bool `json:"broken"`

	// PageComplete reports whether every scheduled object completed.
	PageComplete bool `json:"complete"`

	// TargetClean reports a clean (non-multiplexed, complete) copy of
	// the target document on the wire; TargetCleanOrig restricts that
	// to the original transmission.
	TargetClean     bool `json:"target_clean"`
	TargetCleanOrig bool `json:"target_clean_orig"`

	// TargetIdentified reports whether the predictor matched the
	// target's size from the encrypted traffic.
	TargetIdentified bool `json:"target_identified"`

	// TargetDegree is the original copy's degree of multiplexing.
	TargetDegree float64 `json:"target_degree"`

	// Success is the paper's criterion on the target: clean AND
	// identified, on an unbroken connection.
	Success bool `json:"success"`

	// Inferences counts delimiter-bounded runs the predictor saw;
	// Identified counts those matched to some site object.
	Inferences int `json:"inferences"`
	Identified int `json:"identified"`

	// Traffic counters, as in TrialResult.
	Retransmissions int `json:"retransmissions"`
	ReRequests      int `json:"re_requests"`
	Resets          int `json:"resets"`

	// LoadTimeMs is when the last scheduled object completed (0 when
	// it never did).
	LoadTimeMs float64 `json:"load_time_ms"`
}

// objectBucketLabels are the site-size segments survey metrics and
// summaries aggregate by (object count).
var objectBucketLabels = []string{"1-16 objects", "17-32 objects", "33-48 objects", "49-64 objects", "65+ objects"}

// objectBucket maps an object count to its segment index.
func objectBucket(n int) int {
	b := (n - 1) / 16
	if b < 0 {
		b = 0
	}
	if b >= len(objectBucketLabels) {
		b = len(objectBucketLabels) - 1
	}
	return b
}

// RunSiteTrial executes one attack trial against a generated corpus
// site in this world, the corpus counterpart of RunTrial. The full
// attack triggers on the site's target document (TriggerGet =
// Spec.TargetID) and the predictor scores against the site's own size
// table.
func (w *World) RunSiteTrial(gs *website.GeneratedSite, p CorpusTrialParams) SurveyResult {
	// Trial latency feeds the worker's own shard, lock-free (see
	// World.RunTrial).
	var wallStart time.Time
	if w.shard != nil {
		wallStart = time.Now()
	}
	w.rng.Seed(p.Seed)
	path, _ := ambient(w.rng) // think time is baked into the site's schedule
	site := gs.Site

	sink := w.shard.Sink(objectBucket(gs.Spec.Objects))
	if w.rec != nil {
		w.rec.Reset()
		sink = sink.WithRecorder(w.rec)
	}
	sessCfg := h2sim.SessionConfig{
		Seed:   p.Seed,
		Path:   path,
		Server: h2sim.ServerConfig{},
		Client: h2sim.ClientConfig{},
		Obs:    sink,
	}
	if w.sess == nil {
		w.sess = h2sim.NewSession(site, sessCfg)
		w.atk = core.NewAttack(w.sess)
	} else {
		w.sess.Reset(site, sessCfg)
	}
	sess, atk := w.sess, w.atk
	atk.Obs = sink

	mode := p.Mode
	if mode == 0 {
		mode = ModeFullAttack
	}
	switch mode {
	case ModePassive:
		atk.ArmPassive()
	default:
		cfg := core.PaperAttack()
		cfg.TriggerGet = gs.Spec.TargetID
		atk.Arm(cfg)
	}

	sess.Run()

	targetID := gs.Spec.TargetID
	res := SurveyResult{
		SiteSpec:        gs.Spec,
		Rep:             p.Rep,
		TrialSeed:       p.Seed,
		Broken:          sess.Broken(),
		PageComplete:    sess.Client.AllScheduledComplete(),
		Retransmissions: sess.TotalRetransmissions(),
		ReRequests:      sess.Client.Stats.ReRequests,
		Resets:          sess.Client.Stats.Resets,
	}
	lastID := gs.Spec.Objects // IDs are 1..Objects in schedule order
	if lt := sess.Client.CompletedAt(lastID); lt > 0 {
		res.LoadTimeMs = float64(lt) / float64(time.Millisecond)
	}
	// The survey result keeps no transmission pointers, so the
	// zero-alloc arena-reused variant is safe here.
	copies := w.an.CopiesReused(sess.GroundTruth)
	res.TargetClean, res.TargetCleanOrig = analysis.CleanCopy(copies, targetID)
	res.TargetDegree = analysis.OriginalDegree(copies, targetID)

	infs := atk.Infer()
	res.Inferences = len(infs)
	for _, inf := range infs {
		if inf.Object == nil {
			continue
		}
		res.Identified++
		if inf.Object.ID == targetID {
			res.TargetIdentified = true
		}
	}
	res.Success = !res.Broken && res.TargetClean && res.TargetIdentified

	sink.Inc(obs.CTrial)
	if res.Broken {
		sink.Inc(obs.CTrialBroken)
	}
	if res.PageComplete {
		sink.Inc(obs.CTrialComplete)
	}
	if w.shard != nil {
		w.shard.ObserveTrialWall(time.Since(wallStart))
	}
	return res
}

// SurveyConfig configures a survey campaign over a synthetic corpus.
type SurveyConfig struct {
	// Corpus is the site population (see website.CorpusConfig; the
	// zero value plus Sites is valid).
	Corpus website.CorpusConfig

	// SiteTrials is the number of attack repetitions per site
	// (distinct trial seeds). Zero means 1.
	SiteTrials int

	// Seed offsets the per-trial seeds: trial i runs with Seed+i.
	Seed int64

	// Mode selects the adversary; zero means ModeFullAttack.
	Mode AdversaryMode
}

// Survey is a configured survey campaign: a pipeline generator over
// (site, rep) trials plus the worker-state factory that executes
// them. Feed it to pipeline.Run directly or use its Run convenience.
type Survey struct {
	cfg     SurveyConfig
	corpus  *website.Corpus
	metrics *obs.Registry
}

// NewSurvey builds a survey campaign.
func NewSurvey(cfg SurveyConfig) *Survey {
	if cfg.SiteTrials <= 0 {
		cfg.SiteTrials = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Survey{cfg: cfg, corpus: website.NewCorpus(cfg.Corpus)}
}

// Corpus returns the campaign's site population.
func (s *Survey) Corpus() *website.Corpus { return s.corpus }

// SetMetrics collects the campaign's cross-layer metrics into reg,
// segmented by site-size bucket (sweep Metrics-option semantics).
// On a resumed campaign the snapshot covers only the resumed portion.
func (s *Survey) SetMetrics(reg *obs.Registry) {
	if reg != nil {
		reg.SetSegments(objectBucketLabels...)
	}
	s.metrics = reg
}

// Name implements pipeline.Generator.
func (s *Survey) Name() string { return "survey" }

// Trials implements pipeline.Generator: sites × repetitions.
func (s *Survey) Trials() int { return s.corpus.Len() * s.cfg.SiteTrials }

// Params implements pipeline.Generator. Consecutive indices cover one
// site's repetitions before moving to the next site, so a worker's
// cached site model serves runs of trials.
func (s *Survey) Params(i int) CorpusTrialParams {
	return CorpusTrialParams{
		Site: i / s.cfg.SiteTrials,
		Rep:  i % s.cfg.SiteTrials,
		Seed: s.cfg.Seed + int64(i),
		Mode: s.cfg.Mode,
	}
}

// Fingerprint implements pipeline.Generator.
func (s *Survey) Fingerprint() string {
	return fmt.Sprintf("%s reps=%d seed0=%d mode=%d",
		s.corpus.Config().Fingerprint(), s.cfg.SiteTrials, s.cfg.Seed, s.cfg.Mode)
}

// surveyWorker is one worker's reusable state: a trial world plus the
// most recently built site (trials against the same site are adjacent
// in index order, so the cache hit rate is (SiteTrials-1)/SiteTrials
// or better).
type surveyWorker struct {
	w    *World
	s    *Survey
	site *website.GeneratedSite
}

func (sw *surveyWorker) run(p CorpusTrialParams) SurveyResult {
	if sw.site == nil || sw.site.Spec.Index != p.Site {
		sw.site = sw.s.corpus.Build(p.Site)
	}
	return sw.w.RunSiteTrial(sw.site, p)
}

// Run executes the campaign through pipeline.Run with the given
// pipeline configuration and exporters. Unless the caller set one,
// the worker claim batch defaults to SiteTrials, so all repetitions
// of a site run on the worker whose cache already holds that site's
// model and primed size table (batching never changes the exported
// bytes, only which worker runs which trial).
func (s *Survey) Run(cfg pipeline.Config, exporters ...pipeline.Exporter[CorpusTrialParams, SurveyResult]) (pipeline.Summary, error) {
	if cfg.Batch == 0 {
		cfg.Batch = s.cfg.SiteTrials
	}
	newState := func() *surveyWorker {
		w := NewWorld()
		if s.metrics != nil {
			// Trial latency lands in the worker's own shard (see
			// World.RunSiteTrial); no per-trial registry lock.
			w.SetMetrics(s.metrics.NewShard())
		}
		return &surveyWorker{w: w, s: s}
	}
	return pipeline.Run(cfg, s, newState,
		func(sw *surveyWorker, p CorpusTrialParams) SurveyResult { return sw.run(p) },
		exporters...)
}

// SurveyJSONL returns the campaign's raw per-trial exporter: one JSON
// line per trial (the SurveyResult, which embeds the site spec). The
// zero-allocation append encoder is installed as the fast path; the
// json.Marshal closure remains the semantic reference the equivalence
// suite compares against.
func SurveyJSONL(path string) *pipeline.JSONL[CorpusTrialParams, SurveyResult] {
	return pipeline.NewJSONL(path, func(i int, p CorpusTrialParams, r SurveyResult) (any, error) {
		return r, nil
	}).WithAppender(pipeline.AppendFunc[CorpusTrialParams, SurveyResult](AppendSurveyResultLine))
}

// surveyAgg is one aggregation cell of the survey summary.
type surveyAgg struct {
	Trials     int `json:"trials"`
	Broken     int `json:"broken"`
	Complete   int `json:"complete"`
	Clean      int `json:"clean"`
	Identified int `json:"identified"`
	Success    int `json:"success"`
}

func (a *surveyAgg) add(r SurveyResult) {
	a.Trials++
	if r.Broken {
		a.Broken++
	}
	if r.PageComplete {
		a.Complete++
	}
	if r.TargetClean {
		a.Clean++
	}
	if r.TargetIdentified {
		a.Identified++
	}
	if r.Success {
		a.Success++
	}
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// surveySummaryState is the summary's checkpoint/serialization form.
type surveySummaryState struct {
	Total   surveyAgg             `json:"total"`
	Buckets []surveyAgg           `json:"buckets"` // indexed like objectBucketLabels
	Shapes  map[string]*surveyAgg `json:"shapes"`
}

// SurveySummary is the campaign's aggregate exporter: attack accuracy
// by site-size bucket and by schedule shape. It is checkpointable —
// its counters serialize into the campaign checkpoint, so a resumed
// campaign's summary covers every trial, not just the resumed
// portion.
type SurveySummary struct {
	st surveySummaryState
}

// NewSurveySummary builds an empty summary exporter.
func NewSurveySummary() *SurveySummary {
	return &SurveySummary{st: surveySummaryState{
		Buckets: make([]surveyAgg, len(objectBucketLabels)),
		Shapes:  make(map[string]*surveyAgg),
	}}
}

// Name implements pipeline.Exporter.
func (s *SurveySummary) Name() string { return "summary" }

// Begin implements pipeline.Exporter.
func (s *SurveySummary) Begin(pipeline.Meta) error { return nil }

// Export implements pipeline.Exporter.
func (s *SurveySummary) Export(i int, p CorpusTrialParams, r SurveyResult) error {
	s.st.Total.add(r)
	s.st.Buckets[objectBucket(r.Objects)].add(r)
	agg := s.st.Shapes[r.Shape]
	if agg == nil {
		agg = &surveyAgg{}
		s.st.Shapes[r.Shape] = agg
	}
	agg.add(r)
	return nil
}

// Checkpoint implements pipeline.Exporter.
func (s *SurveySummary) Checkpoint() (json.RawMessage, error) {
	return json.Marshal(&s.st)
}

// Restore implements pipeline.Exporter.
func (s *SurveySummary) Restore(state json.RawMessage) error {
	st := surveySummaryState{Shapes: make(map[string]*surveyAgg)}
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("summary state: %w", err)
	}
	for len(st.Buckets) < len(objectBucketLabels) {
		st.Buckets = append(st.Buckets, surveyAgg{})
	}
	if st.Shapes == nil {
		st.Shapes = make(map[string]*surveyAgg)
	}
	s.st = st
	return nil
}

// Close implements pipeline.Exporter.
func (s *SurveySummary) Close(bool) error { return nil }

// Total returns the campaign-wide aggregate counters
// (trials/broken/complete/clean/identified/success).
func (s *SurveySummary) Total() (trials, success int) {
	return s.st.Total.Trials, s.st.Total.Success
}

// Format renders the accuracy summary as a text table, rows in a
// fixed deterministic order (size buckets, then shapes sorted by
// name, then the total).
func (s *SurveySummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Survey campaign: attack accuracy across the synthetic corpus\n")
	fmt.Fprintf(&b, "%-16s %8s %8s %9s %8s %8s %8s\n",
		"segment", "trials", "broken%", "complete%", "clean%", "ident%", "success%")
	row := func(label string, a surveyAgg) {
		if a.Trials == 0 {
			return
		}
		fmt.Fprintf(&b, "%-16s %8d %8.1f %9.1f %8.1f %8.1f %8.1f\n",
			label, a.Trials, pct(a.Broken, a.Trials), pct(a.Complete, a.Trials),
			pct(a.Clean, a.Trials), pct(a.Identified, a.Trials), pct(a.Success, a.Trials))
	}
	for i, label := range objectBucketLabels {
		row(label, s.st.Buckets[i])
	}
	shapes := make([]string, 0, len(s.st.Shapes))
	for name := range s.st.Shapes {
		shapes = append(shapes, name)
	}
	sort.Strings(shapes)
	for _, name := range shapes {
		row("shape "+name, *s.st.Shapes[name])
	}
	row("total", s.st.Total)
	return b.String()
}

// SurveyObsExport is the obs-snapshot exporter: at campaign
// completion it writes reg's deterministic merged snapshot to path as
// JSON (MarshalSweeps format, one "survey" sweep). It is stateless —
// on a resumed campaign the snapshot covers only the trials run since
// the resume, because worker shards live in memory.
func SurveyObsExport(reg *obs.Registry, path string) pipeline.Exporter[CorpusTrialParams, SurveyResult] {
	return pipeline.Funcs[CorpusTrialParams, SurveyResult]{
		ExporterName: "obs",
		OnClose: func(done bool) error {
			if !done {
				return nil
			}
			data, err := obs.MarshalSweeps(map[string]*obs.Snapshot{"survey": reg.Snapshot()})
			if err != nil {
				return err
			}
			return os.WriteFile(path, data, 0o644)
		},
	}
}
