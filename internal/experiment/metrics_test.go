package experiment

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestSweepMetricsDeterminism is the tentpole's determinism gate at
// the sweep level: the same seeds produce a byte-identical sim-domain
// metrics snapshot at -j 1 and -j 8. Worker count only changes how
// trials are scheduled across shards; merging is commutative integer
// addition, so the merged aggregate cannot depend on it.
func TestSweepMetricsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) (string, []TableIRow) {
		reg := obs.NewRegistry()
		rows := TableI(6, 7000, Workers(workers), Metrics(reg))
		return reg.Snapshot().DeterministicText(), rows
	}
	text1, rows1 := run(1)
	text8, rows8 := run(8)
	if text1 != text8 {
		t.Errorf("metrics snapshot differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", text1, text8)
	}
	if !reflect.DeepEqual(rows1, rows8) {
		t.Error("sweep rows differ between -j 1 and -j 8")
	}
}

// TestSweepMetricsDoNotChangeResults pins the zero-interference
// contract behind the golden-output gate: attaching a metrics
// registry (or not) must leave the sweep's rows byte-identical.
func TestSweepMetricsDoNotChangeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plain := TableI(4, 7100, Workers(2))
	reg := obs.NewRegistry()
	metered := TableI(4, 7100, Workers(2), Metrics(reg))
	if !reflect.DeepEqual(plain, metered) {
		t.Error("metrics collection changed sweep results")
	}
	snap := reg.Snapshot()
	seg := snap.Segment("jitter=50ms")
	if seg == nil {
		t.Fatal("sweep did not label its configuration segments")
	}
	if got := seg.Counter("trial.count"); got != 4 {
		t.Errorf("segment trial.count = %d, want 4", got)
	}
}

// TestWorldRecorderCapturesTrial pins the flight-recorder path used
// by `h2attack -events`: a full-attack trial records typed events
// with sim timestamps, and re-running the same seed replays the
// identical event stream.
func TestWorldRecorderCapturesTrial(t *testing.T) {
	w := NewWorld()
	rec := obs.NewRecorder(4096)
	w.SetRecorder(rec)
	w.RunTrial(TrialParams{Seed: 42, Mode: ModeFullAttack})
	first := append([]obs.Event(nil), rec.Events()...)
	if len(first) == 0 {
		t.Fatal("full-attack trial recorded no events")
	}
	kinds := map[obs.EventKind]bool{}
	for _, e := range first {
		kinds[e.Kind] = true
	}
	for _, want := range []obs.EventKind{obs.EvH2Request, obs.EvAtkPhase} {
		if !kinds[want] {
			t.Errorf("event stream missing kind %v", want)
		}
	}
	w.RunTrial(TrialParams{Seed: 42, Mode: ModeFullAttack})
	if !reflect.DeepEqual(first, rec.Events()) {
		t.Error("same-seed replay produced a different event stream")
	}
}
