// Package experiment is the reproduction harness: it runs the
// paper's experiments on the simulation stack and prints the same
// rows and series the paper reports (Table I, Figure 5, the section
// IV-A and IV-D experiments, Table II, and the section VII defence
// evaluation).
//
// Every trial is driven by a single seed: the seed determines the
// survey outcome (party permutation), the client's think time before
// the result HTML, the ambient network conditions of that session,
// and all packet-level noise — the variation the paper's ~500
// volunteer sessions exhibit. RunTrial executes one such page load;
// the sweep functions (TableI, Fig5, DropSweep, TableII, DelaySweep,
// Defenses) fan their trials across an internal/runner worker pool
// (configure with Workers and OnProgress) and, because every trial's
// seed derives from its trial index, return byte-identical tables at
// any worker count.
package experiment

import (
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/website"
)

// AdversaryMode selects what is installed at the middlebox. The enum
// starts at 1 so the zero value is invalid.
type AdversaryMode uint8

const (
	// ModePassive is a classic eavesdropper (monitor only).
	ModePassive AdversaryMode = iota + 1
	// ModeJitter applies request spacing only.
	ModeJitter
	// ModeJitterThrottle applies spacing plus a bandwidth cap.
	ModeJitterThrottle
	// ModeFullAttack runs the composed paper attack (spacing →
	// throttle + targeted drops → raised spacing).
	ModeFullAttack
)

// TrialParams configures one page-load trial.
type TrialParams struct {
	// Seed drives all per-trial randomness.
	Seed int64

	// Mode selects the adversary.
	Mode AdversaryMode

	// Spacing is the request spacing for ModeJitter /
	// ModeJitterThrottle.
	Spacing time.Duration

	// Bandwidth is the throttle for ModeJitterThrottle (bits/sec).
	Bandwidth int64

	// Attack overrides the full-attack configuration; zero value
	// means core.PaperAttack.
	Attack core.AttackConfig

	// Server/Client override endpoint knobs (zero values = defaults).
	Server h2sim.ServerConfig
	Client h2sim.ClientConfig

	// TCP overrides transport knobs on both endpoints (zero value =
	// defaults). Used e.g. to lower MaxRetries so a harsh drop phase
	// can actually break the connection.
	TCP tcpsim.Config

	// UniformDelay adds a constant extra one-way delay on both
	// directions (the paper's section IV-A control experiment).
	UniformDelay time.Duration

	// FixedAmbient disables per-trial ambient randomization (for
	// focused unit tests).
	FixedAmbient bool

	// TimeLimit bounds the trial. Zero = session default.
	TimeLimit time.Duration

	// CanonicalOrder enables the paper's section VII ordering defence
	// (images requested in a fixed order regardless of the outcome).
	CanonicalOrder bool

	// PadBucket enables size padding to the given bucket (bytes).
	PadBucket int

	// PushEmblems enables the section VII server-push defence: the
	// server pushes all emblem images in canonical party order when
	// the result HTML is requested, so the client never requests them
	// and the wire order carries no secret.
	PushEmblems bool

	// ObsSegment selects which metrics segment this trial's counters
	// land in when the sweep runs with the Metrics option — sweeps set
	// it to the configuration index (the jitter column, the drop rate,
	// …) so per-configuration aggregates stay separable. Ignored
	// without metrics.
	ObsSegment int
}

// TrialResult is everything the evaluations consume.
type TrialResult struct {
	Broken bool

	// HTML verdicts.
	HTMLCleanAny   bool    // some complete copy transmitted clean
	HTMLCleanOrig  bool    // the original copy was clean
	HTMLIdentified bool    // predictor matched the HTML size
	HTMLDegree     float64 // degree of multiplexing of the original copy

	// Emblem verdicts.
	TruthOrder [website.PartyCount]int
	PredOrder  [website.PartyCount]int
	ImageClean [website.PartyCount]bool // clean copy of i-th requested emblem

	// Traffic counters.
	Retransmissions int // TCP retransmits + client re-requests
	ReRequests      int
	Resets          int
	PageComplete    bool
	LoadTime        time.Duration

	// Copies gives the ground-truth transmissions for deeper digs.
	// Excluded from the JSON form (sharded sweeps serialize results
	// across process boundaries): no sweep aggregator reads them, and
	// they dwarf the rest of the record.
	Copies []*analysis.CopyTransmission `json:"-"`

	// Requests is the client's request log (issue times, objects,
	// re-issues), used for Table II's inter-request timing rows.
	Requests []h2sim.RequestLog
}

// Ambient variation bounds: the per-trial server-side one-way delay
// is drawn from [AmbientDelayLo, AmbientDelayLo+AmbientDelaySpread]
// and the client think time before the result HTML from
// [AmbientGapLo, AmbientGapLo+AmbientGapSpread]. These four values
// are the calibration of the reproduction (see EXPERIMENTS.md).
const (
	AmbientDelayLo     = 20 * time.Millisecond
	AmbientDelaySpread = 190 * time.Millisecond
	AmbientGapLo       = 40 * time.Millisecond
	AmbientGapSpread   = 210 * time.Millisecond
)

// ambient draws the per-trial network/think-time variation.
func ambient(rng *rand.Rand) (path netem.PathConfig, htmlGap time.Duration) {
	path = h2sim.DefaultPath()
	path.ServerSide.PropDelay = AmbientDelayLo +
		time.Duration(rng.Int63n(int64(AmbientDelaySpread)))
	path.ClientSide.PropDelay = time.Millisecond +
		time.Duration(rng.Int63n(int64(3*time.Millisecond)))
	htmlGap = AmbientGapLo +
		time.Duration(rng.Int63n(int64(AmbientGapSpread)))
	return path, htmlGap
}

// RunTrial executes one trial in a fresh world. Sweeps and other
// hot loops should keep a World per worker and call its RunTrial
// method instead — same results, amortized construction.
func RunTrial(p TrialParams) TrialResult {
	return NewWorld().RunTrial(p)
}

// HTMLSuccess is the paper's success criterion for the object of
// interest: degree of multiplexing brought to zero AND identified
// from the encrypted traffic.
func (r TrialResult) HTMLSuccess() bool {
	return !r.Broken && r.HTMLCleanAny && r.HTMLIdentified
}

// ImageSuccess reports position-i success under the all-objects
// target: the i-th displayed party was correctly identified and its
// emblem transmitted clean.
func (r TrialResult) ImageSuccess(i int) bool {
	return !r.Broken && r.ImageClean[i] && r.PredOrder[i] == r.TruthOrder[i]
}
