package experiment

import (
	"repro/internal/h2sim"
	"repro/internal/jsonenc"
)

// This file holds the hand-rolled append encoders behind the export
// fast path: byte-for-byte replacements for json.Marshal over the
// campaign line types (SurveyResult for the survey, TrialResult for
// all six fixed sweeps, CorpusTrialParams for trial identities).
// Field order follows struct declaration order — embedded SiteSpec
// fields promote inline first — exactly as encoding/json's reflection
// encoder walks them; the equivalence suite in encoders_test.go pins
// each encoder against json.Marshal under seeded random values, since
// checkpoint offsets and shard concatenation depend on the two paths
// being interchangeable.

// AppendCorpusTrialParams appends p's JSON object, byte-identical to
// json.Marshal(p).
func AppendCorpusTrialParams(dst []byte, p CorpusTrialParams) []byte {
	dst = append(dst, `{"Site":`...)
	dst = jsonenc.AppendInt(dst, int64(p.Site))
	dst = append(dst, `,"Rep":`...)
	dst = jsonenc.AppendInt(dst, int64(p.Rep))
	dst = append(dst, `,"Seed":`...)
	dst = jsonenc.AppendInt(dst, p.Seed)
	dst = append(dst, `,"Mode":`...)
	dst = jsonenc.AppendUint(dst, uint64(p.Mode))
	return append(dst, '}')
}

// AppendSurveyResult appends r's JSON object, byte-identical to
// json.Marshal(r). The embedded website.SiteSpec's tagged fields lead
// (promoted inline, declaration order), then SurveyResult's own.
func AppendSurveyResult(dst []byte, r SurveyResult) ([]byte, error) {
	var err error
	dst = append(dst, `{"site":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Index))
	dst = append(dst, `,"seed":`...)
	dst = jsonenc.AppendUint(dst, r.SiteSpec.Seed)
	dst = append(dst, `,"objects":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Objects))
	dst = append(dst, `,"shape":`...)
	dst = jsonenc.AppendString(dst, r.Shape)
	dst = append(dst, `,"target_id":`...)
	dst = jsonenc.AppendInt(dst, int64(r.TargetID))
	dst = append(dst, `,"target_size":`...)
	dst = jsonenc.AppendInt(dst, int64(r.TargetSize))
	dst = append(dst, `,"total_bytes":`...)
	dst = jsonenc.AppendInt(dst, int64(r.TotalBytes))
	dst = append(dst, `,"rep":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Rep))
	dst = append(dst, `,"trial_seed":`...)
	dst = jsonenc.AppendInt(dst, r.TrialSeed)
	dst = append(dst, `,"broken":`...)
	dst = jsonenc.AppendBool(dst, r.Broken)
	dst = append(dst, `,"complete":`...)
	dst = jsonenc.AppendBool(dst, r.PageComplete)
	dst = append(dst, `,"target_clean":`...)
	dst = jsonenc.AppendBool(dst, r.TargetClean)
	dst = append(dst, `,"target_clean_orig":`...)
	dst = jsonenc.AppendBool(dst, r.TargetCleanOrig)
	dst = append(dst, `,"target_identified":`...)
	dst = jsonenc.AppendBool(dst, r.TargetIdentified)
	dst = append(dst, `,"target_degree":`...)
	if dst, err = jsonenc.AppendFloat64(dst, r.TargetDegree); err != nil {
		return dst, err
	}
	dst = append(dst, `,"success":`...)
	dst = jsonenc.AppendBool(dst, r.Success)
	dst = append(dst, `,"inferences":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Inferences))
	dst = append(dst, `,"identified":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Identified))
	dst = append(dst, `,"retransmissions":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Retransmissions))
	dst = append(dst, `,"re_requests":`...)
	dst = jsonenc.AppendInt(dst, int64(r.ReRequests))
	dst = append(dst, `,"resets":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Resets))
	dst = append(dst, `,"load_time_ms":`...)
	if dst, err = jsonenc.AppendFloat64(dst, r.LoadTimeMs); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// appendRequestLog appends one h2sim.RequestLog object (untagged
// fields, declaration order).
func appendRequestLog(dst []byte, l h2sim.RequestLog) []byte {
	dst = append(dst, `{"Time":`...)
	dst = jsonenc.AppendInt(dst, int64(l.Time))
	dst = append(dst, `,"ObjectID":`...)
	dst = jsonenc.AppendInt(dst, int64(l.ObjectID))
	dst = append(dst, `,"CopyID":`...)
	dst = jsonenc.AppendInt(dst, int64(l.CopyID))
	dst = append(dst, `,"StreamID":`...)
	dst = jsonenc.AppendUint(dst, uint64(l.StreamID))
	dst = append(dst, `,"ReIssue":`...)
	dst = jsonenc.AppendBool(dst, l.ReIssue)
	return append(dst, '}')
}

// AppendTrialResult appends r's JSON object, byte-identical to
// json.Marshal(r): untagged Go field names in declaration order,
// Copies excluded (json:"-"), nil Requests encoding as null.
func AppendTrialResult(dst []byte, r TrialResult) ([]byte, error) {
	var err error
	dst = append(dst, `{"Broken":`...)
	dst = jsonenc.AppendBool(dst, r.Broken)
	dst = append(dst, `,"HTMLCleanAny":`...)
	dst = jsonenc.AppendBool(dst, r.HTMLCleanAny)
	dst = append(dst, `,"HTMLCleanOrig":`...)
	dst = jsonenc.AppendBool(dst, r.HTMLCleanOrig)
	dst = append(dst, `,"HTMLIdentified":`...)
	dst = jsonenc.AppendBool(dst, r.HTMLIdentified)
	dst = append(dst, `,"HTMLDegree":`...)
	if dst, err = jsonenc.AppendFloat64(dst, r.HTMLDegree); err != nil {
		return dst, err
	}
	dst = append(dst, `,"TruthOrder":[`...)
	for k, v := range r.TruthOrder {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = jsonenc.AppendInt(dst, int64(v))
	}
	dst = append(dst, `],"PredOrder":[`...)
	for k, v := range r.PredOrder {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = jsonenc.AppendInt(dst, int64(v))
	}
	dst = append(dst, `],"ImageClean":[`...)
	for k, v := range r.ImageClean {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = jsonenc.AppendBool(dst, v)
	}
	dst = append(dst, `],"Retransmissions":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Retransmissions))
	dst = append(dst, `,"ReRequests":`...)
	dst = jsonenc.AppendInt(dst, int64(r.ReRequests))
	dst = append(dst, `,"Resets":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Resets))
	dst = append(dst, `,"PageComplete":`...)
	dst = jsonenc.AppendBool(dst, r.PageComplete)
	dst = append(dst, `,"LoadTime":`...)
	dst = jsonenc.AppendInt(dst, int64(r.LoadTime))
	dst = append(dst, `,"Requests":`...)
	if r.Requests == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for k, l := range r.Requests {
			if k > 0 {
				dst = append(dst, ',')
			}
			dst = appendRequestLog(dst, l)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}

// AppendSurveyResultLine is the survey campaign's pipeline.Appender:
// the JSONL line is the SurveyResult alone (the params are implied by
// the trial index).
func AppendSurveyResultLine(dst []byte, _ int, _ CorpusTrialParams, r SurveyResult) ([]byte, error) {
	return AppendSurveyResult(dst, r)
}

// AppendTrialResultLine is the sweep shards' pipeline.Appender; one
// encoder serves all six fixed sweeps since they share TrialResult.
func AppendTrialResultLine(dst []byte, _ int, _ TrialParams, r TrialResult) ([]byte, error) {
	return AppendTrialResult(dst, r)
}
