package experiment

import (
	"reflect"
	"testing"

	"repro/internal/runner"
)

// The worker pool must be invisible in the results: every sweep's
// rows are a pure function of (trials, seed0), so running the same
// sweep serially and at 8 workers must produce deeply equal output.
// Trial counts are small; the 100-trial equivalence is checked on the
// full CLI output in EXPERIMENTS.md.

func TestSweepsIdenticalAcrossWorkerCounts(t *testing.T) {
	if s, p := TableI(6, 1, Workers(1)), TableI(6, 1, Workers(8)); !reflect.DeepEqual(s, p) {
		t.Errorf("TableI differs across worker counts:\nserial:   %+v\nparallel: %+v", s, p)
	}
	if s, p := Fig5(3, 1, Workers(1)), Fig5(3, 1, Workers(8)); !reflect.DeepEqual(s, p) {
		t.Errorf("Fig5 differs across worker counts:\nserial:   %+v\nparallel: %+v", s, p)
	}
	if s, p := DropSweep(4, 1, Workers(1)), DropSweep(4, 1, Workers(8)); !reflect.DeepEqual(s, p) {
		t.Errorf("DropSweep differs across worker counts:\nserial:   %+v\nparallel: %+v", s, p)
	}
	if s, p := TableII(8, 1, Workers(1)), TableII(8, 1, Workers(8)); !reflect.DeepEqual(s, p) {
		t.Errorf("TableII differs across worker counts:\nserial:   %+v\nparallel: %+v", s, p)
	}
	if s, p := DelaySweep(4, 1, Workers(1)), DelaySweep(4, 1, Workers(8)); !reflect.DeepEqual(s, p) {
		t.Errorf("DelaySweep differs across worker counts:\nserial:   %+v\nparallel: %+v", s, p)
	}
	if s, p := Defenses(3, 1, Workers(1)), Defenses(3, 1, Workers(8)); !reflect.DeepEqual(s, p) {
		t.Errorf("Defenses differs across worker counts:\nserial:   %+v\nparallel: %+v", s, p)
	}
}

func TestSweepProgressCoversWholeSweep(t *testing.T) {
	// All configurations of a table share one progress stream: Table I
	// has 4 jitter values, so Total must be 4*trials, and the stream
	// must end exactly at completion.
	var last runner.Progress
	calls := 0
	TableI(3, 1, Workers(2), OnProgress(func(p runner.Progress) {
		last = p
		calls++
	}))
	if calls != 12 {
		t.Errorf("progress callbacks = %d, want one per trial (12)", calls)
	}
	if last.Completed != 12 || last.Total != 12 {
		t.Errorf("final progress = %d/%d, want 12/12", last.Completed, last.Total)
	}
}

func TestZeroTrialSweep(t *testing.T) {
	// A zero-trial sweep must not panic or hang; rows carry NaN
	// percentages (0/0) exactly as the serial code always did.
	rows := TableI(0, 1, Workers(8))
	if len(rows) != 4 {
		t.Errorf("zero-trial TableI rows = %d, want 4", len(rows))
	}
}
