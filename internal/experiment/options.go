package experiment

import (
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// Option configures how a sweep executes its trials. Options affect
// scheduling and observation only — the rows a sweep returns are
// identical at every worker count, because each trial is a pure
// function of its index (see internal/runner).
type Option func(*sweepConfig)

type sweepConfig struct {
	workers    int
	onProgress func(runner.Progress)
	metrics    *obs.Registry
	gauges     *telemetry.Gauges
}

// parse folds the option list into a config.
func parseOpts(opts []Option) sweepConfig {
	var cfg sweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Workers sets the number of concurrent trial executors for a sweep.
// Zero or negative selects runtime.GOMAXPROCS(0) (the default); 1
// runs the trials serially on the calling goroutine.
func Workers(n int) Option {
	return func(c *sweepConfig) { c.workers = n }
}

// OnProgress installs a progress callback, invoked (serialized) after
// every trial completes across the whole sweep — all configurations
// of a table share one progress stream, so Remaining estimates the
// full sweep.
func OnProgress(f func(runner.Progress)) Option {
	return func(c *sweepConfig) { c.onProgress = f }
}

// Metrics collects the sweep's cross-layer metrics into reg: each
// worker gets one shard (merged by reg.Snapshot at the caller's
// leisure), the sweep labels reg's segments with its configuration
// axis, and per-trial wall-clock latency feeds reg's wall section.
// Use a fresh Registry per sweep; the sim-domain snapshot is
// byte-identical at any worker count.
func Metrics(reg *obs.Registry) Option {
	return func(c *sweepConfig) { c.metrics = reg }
}

// Telemetry publishes the sweep's live health samples (worker pool,
// in-flight trials, reorder-ring occupancy) into g for the status
// server to scrape. Wall-side only: unlike Metrics, nothing fed
// through g can reach the sweep's output — the rows and every
// deterministic aggregate are byte-identical with or without it.
func Telemetry(g *telemetry.Gauges) Option {
	return func(c *sweepConfig) { c.gauges = g }
}

// setSegments labels the supplied registry's segments with the
// sweep's configuration axis (a no-op when the sweep runs without
// Metrics). Sweeps call it before their first trial so that each
// configuration's counters land in a separable, labelled segment.
func setSegments(opts []Option, labels ...string) {
	if cfg := parseOpts(opts); cfg.metrics != nil {
		cfg.metrics.SetSegments(labels...)
	}
}

// runTrials executes n trials through the streaming pipeline,
// building the i-th trial's parameters with mk(i), and returns the
// results in trial order. The fixed sweeps are pipeline campaigns: a
// Fixed generator over the configuration grid, the shared worker pool
// (each worker keeps one reusable World, reset per trial), and a
// Collector exporter — the same execution path survey campaigns use,
// minus checkpointing, which in-memory sweeps have no use for. A
// trial that panics is reported as a broken trial
// (TrialResult{Broken: true}) so a single bad seed cannot kill a
// sweep; every aggregate already accounts broken trials.
func runTrials(n int, opts []Option, mk func(i int) TrialParams) []TrialResult {
	cfg := parseOpts(opts)
	newState := NewWorld
	if cfg.metrics != nil {
		reg := cfg.metrics
		newState = func() *World {
			w := NewWorld()
			// The world times its own trials into the shard's lock-free
			// wall histogram; no per-trial registry lock on the
			// dispatch path.
			w.SetMetrics(reg.NewShard())
			return w
		}
	}
	collect := pipeline.NewCollector[TrialParams, TrialResult](n)
	sum, err := pipeline.Run(pipeline.Config{
		Workers:    cfg.workers,
		OnProgress: cfg.onProgress,
		Gauges:     cfg.gauges,
	}, pipeline.Fixed[TrialParams]{CampaignName: "sweep", N: n, Fn: mk},
		newState, (*World).RunTrial, collect)
	if err != nil {
		// No checkpointing and an infallible exporter: a failure here
		// is a harness bug, not a runtime condition.
		panic(err)
	}
	results := collect.Results()
	for _, f := range sum.Failures {
		results[f.Index] = TrialResult{Broken: true}
	}
	return results
}
