package experiment

import (
	"repro/internal/runner"
)

// Option configures how a sweep executes its trials. Options affect
// scheduling only — the rows a sweep returns are identical at every
// worker count, because each trial is a pure function of its index
// (see internal/runner).
type Option func(*sweepConfig)

type sweepConfig struct {
	workers    int
	onProgress func(runner.Progress)
}

// Workers sets the number of concurrent trial executors for a sweep.
// Zero or negative selects runtime.GOMAXPROCS(0) (the default); 1
// runs the trials serially on the calling goroutine.
func Workers(n int) Option {
	return func(c *sweepConfig) { c.workers = n }
}

// OnProgress installs a progress callback, invoked (serialized) after
// every trial completes across the whole sweep — all configurations
// of a table share one progress stream, so Remaining estimates the
// full sweep.
func OnProgress(f func(runner.Progress)) Option {
	return func(c *sweepConfig) { c.onProgress = f }
}

// runTrials executes n trials through the worker pool, building the
// i-th trial's parameters with mk(i), and returns the results in
// trial order. Each worker keeps one reusable World, reset per trial,
// so a sweep pays construction once per worker rather than once per
// trial. A trial that panics is reported as a broken trial
// (TrialResult{Broken: true}) so a single bad seed cannot kill a
// sweep; every aggregate already accounts broken trials.
func runTrials(n int, opts []Option, mk func(i int) TrialParams) []TrialResult {
	var cfg sweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	results, failures := runner.RunWith(n, runner.Options{
		Workers:    cfg.workers,
		OnProgress: cfg.onProgress,
	}, NewWorld, func(w *World, i int) TrialResult {
		return w.RunTrial(mk(i))
	})
	for _, f := range failures {
		results[f.Index] = TrialResult{Broken: true}
	}
	return results
}
