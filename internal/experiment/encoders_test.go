package experiment

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/h2sim"
	"repro/internal/website"
)

// randomSurveyResult fills every field from the seeded stream,
// including escape-needing shapes and awkward floats, so the
// equivalence check exercises the full encoder surface.
func randomSurveyResult(rng *rand.Rand) SurveyResult {
	shapes := []string{"flat", "front-loaded", "back-loaded", "shape <&> \"quoted\"", "", "sp lit"}
	degree := []float64{0, 1, 1.5, 63.0 / 7, 1e-7, 2.5e21, float64(rng.Intn(1000)) / 8}
	return SurveyResult{
		SiteSpec: website.SiteSpec{
			Index:      rng.Intn(1 << 20),
			Seed:       rng.Uint64(),
			Objects:    rng.Intn(128),
			Shape:      shapes[rng.Intn(len(shapes))],
			TargetID:   rng.Intn(64),
			TargetSize: rng.Intn(1 << 22),
			TotalBytes: rng.Intn(1 << 28),
		},
		Rep:              rng.Intn(100),
		TrialSeed:        rng.Int63() - rng.Int63(),
		Broken:           rng.Intn(2) == 0,
		PageComplete:     rng.Intn(2) == 0,
		TargetClean:      rng.Intn(2) == 0,
		TargetCleanOrig:  rng.Intn(2) == 0,
		TargetIdentified: rng.Intn(2) == 0,
		TargetDegree:     degree[rng.Intn(len(degree))],
		Success:          rng.Intn(2) == 0,
		Inferences:       rng.Intn(256),
		Identified:       rng.Intn(256),
		Retransmissions:  rng.Intn(64),
		ReRequests:       rng.Intn(16),
		Resets:           rng.Intn(16),
		LoadTimeMs:       degree[rng.Intn(len(degree))] * 100,
	}
}

// randomTrialResult covers nil and populated request logs plus the
// fixed-size emblem arrays.
func randomTrialResult(rng *rand.Rand) TrialResult {
	r := TrialResult{
		Broken:          rng.Intn(4) == 0,
		HTMLCleanAny:    rng.Intn(2) == 0,
		HTMLCleanOrig:   rng.Intn(2) == 0,
		HTMLIdentified:  rng.Intn(2) == 0,
		HTMLDegree:      []float64{0, 1, 2.25, 1e21, 7.0 / 3}[rng.Intn(5)],
		Retransmissions: rng.Intn(64),
		ReRequests:      rng.Intn(16),
		Resets:          rng.Intn(16),
		PageComplete:    rng.Intn(2) == 0,
		LoadTime:        time.Duration(rng.Int63n(int64(10 * time.Second))),
	}
	for k := range r.TruthOrder {
		r.TruthOrder[k] = rng.Intn(website.PartyCount)
		r.PredOrder[k] = rng.Intn(website.PartyCount) - 1
		r.ImageClean[k] = rng.Intn(2) == 0
	}
	if rng.Intn(4) > 0 {
		r.Requests = make([]h2sim.RequestLog, rng.Intn(20))
		for k := range r.Requests {
			r.Requests[k] = h2sim.RequestLog{
				Time:     time.Duration(rng.Int63n(int64(time.Minute))),
				ObjectID: rng.Intn(128),
				CopyID:   rng.Intn(8),
				StreamID: uint32(rng.Intn(1 << 16)),
				ReIssue:  rng.Intn(4) == 0,
			}
		}
	}
	return r
}

// TestAppendEncodersMatchJSON is the load-bearing equivalence suite:
// every append encoder must produce byte-identical output to
// json.Marshal for seeded random values, since checkpoint offsets and
// shard concatenation assume the fast path and the reflection path
// are interchangeable.
func TestAppendEncodersMatchJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 2000; n++ {
		sr := randomSurveyResult(rng)
		want, err := json.Marshal(sr)
		if err != nil {
			t.Fatalf("json.Marshal(SurveyResult): %v", err)
		}
		got, err := AppendSurveyResult(nil, sr)
		if err != nil {
			t.Fatalf("AppendSurveyResult: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("SurveyResult drift:\n got %s\nwant %s", got, want)
		}

		tr := randomTrialResult(rng)
		want, err = json.Marshal(tr)
		if err != nil {
			t.Fatalf("json.Marshal(TrialResult): %v", err)
		}
		got, err = AppendTrialResult(nil, tr)
		if err != nil {
			t.Fatalf("AppendTrialResult: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("TrialResult drift:\n got %s\nwant %s", got, want)
		}

		p := CorpusTrialParams{
			Site: rng.Intn(1 << 20),
			Rep:  rng.Intn(64),
			Seed: rng.Int63() - rng.Int63(),
			Mode: AdversaryMode(rng.Intn(5)),
		}
		want, err = json.Marshal(p)
		if err != nil {
			t.Fatalf("json.Marshal(CorpusTrialParams): %v", err)
		}
		if got := AppendCorpusTrialParams(nil, p); string(got) != string(want) {
			t.Fatalf("CorpusTrialParams drift:\n got %s\nwant %s", got, want)
		}
	}
}

// TestAppendEncodersRejectBadFloats pins the error path: NaN degrees
// must surface as encode errors (aborting the campaign), not corrupt
// lines.
func TestAppendEncodersRejectBadFloats(t *testing.T) {
	if _, err := AppendSurveyResult(nil, SurveyResult{TargetDegree: math.NaN()}); err == nil {
		t.Fatal("AppendSurveyResult: want error for NaN TargetDegree")
	}
	if _, err := AppendTrialResult(nil, TrialResult{HTMLDegree: math.Inf(1)}); err == nil {
		t.Fatal("AppendTrialResult: want error for +Inf HTMLDegree")
	}
}

// TestAppendLineZeroAllocs pins the steady-state allocation contract
// of the export fast path: appending a line into a pre-grown buffer
// allocates nothing.
func TestAppendLineZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sr := randomSurveyResult(rng)
	tr := randomTrialResult(rng)
	if tr.Requests == nil {
		tr.Requests = make([]h2sim.RequestLog, 4)
	}
	buf := make([]byte, 0, 1<<16)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendSurveyResultLine(buf[:0], 0, CorpusTrialParams{}, sr)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendSurveyResultLine allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendTrialResultLine(buf[:0], 0, TrialParams{}, tr)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendTrialResultLine allocates %.1f/op, want 0", allocs)
	}
}
