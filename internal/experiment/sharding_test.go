package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/shard"
)

// These tests pin the multi-process contract end to end at the
// experiment layer: a sweep split into contiguous shard slices, each
// serialized across a process-style boundary (JSONL files on disk),
// reassembles into the byte-identical rendered table, and the obs
// state survives checkpointed shard restarts.

// runShardSlices executes def as n contiguous slices into dir,
// returning the concatenated JSONL bytes.
func runShardSlices(t *testing.T, d SweepDef, n int, workers int) []byte {
	t.Helper()
	dir := t.TempDir()
	var cat bytes.Buffer
	for i, r := range shard.Plan(d.Trials, n) {
		path := filepath.Join(dir, "slice.jsonl")
		sum, err := d.RunShard(pipeline.Config{Workers: workers, Start: r.Start, End: r.End}, nil, path)
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		if !sum.Done || sum.Exported != r.End {
			t.Fatalf("slice %d: %+v", i, sum)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cat.Write(data)
	}
	return cat.Bytes()
}

func TestSweepShardMergeByteIdentical(t *testing.T) {
	d := delayDef(3, 1)
	want := d.Format(d.Run(Workers(4)))

	for _, shards := range []int{1, 3} {
		cat := runShardSlices(t, d, shards, 2)
		results, err := DecodeTrialResults(bytes.NewReader(cat), d.Trials)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if got := d.Format(results); got != want {
			t.Fatalf("%d shards: merged table differs from in-process run:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

func TestSweepShardBrokenOnPanic(t *testing.T) {
	// A shard process must export a panicked trial as the same Broken
	// record runTrials patches into in-process aggregates — not a zero
	// line, and not a dead process. A nil world panics on first use.
	res := brokenOnPanic(nil, TrialParams{})
	if !res.Broken {
		t.Fatal("brokenOnPanic did not convert the panic into a Broken result")
	}
}

func TestSurveyShardMergeByteIdentical(t *testing.T) {
	cfg := SurveyConfig{SiteTrials: 2, Seed: 1}
	cfg.Corpus.Sites = 6
	cfg.Corpus.Seed = 1

	full := filepath.Join(t.TempDir(), "full.jsonl")
	s := NewSurvey(cfg)
	if _, err := s.Run(pipeline.Config{Workers: 4}, SurveyJSONL(full)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	var cat bytes.Buffer
	for i, r := range shard.Plan(s.Trials(), 3) {
		// A fresh Survey per slice: separate processes share nothing.
		ss := NewSurvey(cfg)
		if ss.Fingerprint() != s.Fingerprint() {
			t.Fatal("survey fingerprint not reproducible from config")
		}
		path := filepath.Join(t.TempDir(), "slice.jsonl")
		sum, err := ss.Run(pipeline.Config{Workers: 2, Start: r.Start, End: r.End}, SurveyJSONL(path))
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		if !sum.Done {
			t.Fatalf("slice %d: %+v", i, sum)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cat.Write(data)
	}
	if !bytes.Equal(cat.Bytes(), want) {
		t.Fatal("concatenated survey shard slices differ from single-process JSONL")
	}
}

// TestShardObsExactAcrossInterrupt pins the end-to-end exactness of
// checkpointed shard metrics: a slice interrupted by MaxTrials at
// -j 4 and resumed in a fresh ObsState must report exactly the
// uninterrupted slice's snapshot. This is what MaxTrials-as-end-bound
// buys — under the old emit-side abort, workers raced past the export
// cursor and their metrics were checkpointed, then double-counted
// when the resumed run re-executed those trials.
func TestShardObsExactAcrossInterrupt(t *testing.T) {
	d := delayDef(3, 1)
	dir := t.TempDir()

	ref := NewObsState()
	if _, err := d.RunShard(pipeline.Config{Workers: 4}, ref, filepath.Join(dir, "ref.jsonl")); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	ck := filepath.Join(dir, "ck.json")
	out := filepath.Join(dir, "out.jsonl")
	st1 := NewObsState()
	sum, err := d.RunShard(pipeline.Config{Workers: 4, Checkpoint: ck, CheckpointEvery: 2, MaxTrials: 5}, st1, out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Done || sum.Exported != 5 {
		t.Fatalf("interrupted run: %+v, want exactly 5 exports", sum)
	}

	st2 := NewObsState()
	sum, err = d.RunShard(pipeline.Config{Workers: 4, Checkpoint: ck, CheckpointEvery: 2}, st2, out)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done {
		t.Fatalf("resumed run: %+v", sum)
	}
	got, err := st2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.DeterministicText() != want.DeterministicText() {
		t.Fatalf("resumed metrics differ from uninterrupted run:\n%s\nvs\n%s",
			got.DeterministicText(), want.DeterministicText())
	}
	if got.Wall == nil || want.Wall == nil || got.Wall.Trials != want.Wall.Trials {
		t.Fatalf("resumed wall = %+v, want %+v", got.Wall, want.Wall)
	}
}

// TestObsStateSurvivesRestart pins the shard-resume metrics contract:
// an ObsState checkpointed mid-range and restored into a fresh
// process must report the union of both incarnations' observations.
func TestObsStateSurvivesRestart(t *testing.T) {
	whole := NewObsState()
	whole.Reg.SetSegments("a", "b")

	first := NewObsState()
	first.Reg.SetSegments("a", "b")
	for i := 0; i < 10; i++ {
		first.Reg.NewShard().ObserveTrialWall(time.Millisecond)
		whole.Reg.NewShard().ObserveTrialWall(time.Millisecond)
	}
	state, err := first.checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	second := NewObsState()
	second.Reg.SetSegments("a", "b")
	if err := second.restore(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		second.Reg.NewShard().ObserveTrialWall(2 * time.Millisecond)
		whole.Reg.NewShard().ObserveTrialWall(2 * time.Millisecond)
	}

	got, err := second.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Wall == nil || got.Wall.Trials != want.Wall.Trials {
		t.Fatalf("restarted wall trials = %+v, want %d", got.Wall, want.Wall.Trials)
	}
	if got.Wall.Hist.Sum != want.Wall.Hist.Sum {
		t.Fatalf("restarted wall sum = %d, want %d", got.Wall.Hist.Sum, want.Wall.Hist.Sum)
	}
	if got.DeterministicText() != want.DeterministicText() {
		t.Fatalf("restarted deterministic text differs:\n%s\nvs\n%s",
			got.DeterministicText(), want.DeterministicText())
	}
	// Repeated snapshots must not double-count the restored base.
	again, err := second.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if again.Wall.Trials != got.Wall.Trials {
		t.Fatalf("second Snapshot() changed wall trials: %d vs %d", again.Wall.Trials, got.Wall.Trials)
	}
}
