package experiment

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/tcpsim"
	"repro/internal/trace"
	"repro/internal/website"
)

// TestWorldMatchesFreshTrial is the reuse-correctness contract of the
// trial world: for every adversary mode, a trial run in a reused
// world must equal the same trial run in a fresh world, bit for bit.
func TestWorldMatchesFreshTrial(t *testing.T) {
	params := []TrialParams{
		{Seed: 7, Mode: ModePassive},
		{Seed: 8, Mode: ModeJitter, Spacing: 50e6},
		{Seed: 9, Mode: ModeJitterThrottle, Spacing: 50e6, Bandwidth: 100_000_000},
		{Seed: 10, Mode: ModeFullAttack},
		{Seed: 11, Mode: ModeFullAttack, CanonicalOrder: true},
		{Seed: 12, Mode: ModeFullAttack, PadBucket: 4096},
		{Seed: 13, Mode: ModePassive, PushEmblems: true},
	}
	w := NewWorld()
	for _, p := range params {
		fresh := RunTrial(p)
		reused := w.RunTrial(p)
		if !reflect.DeepEqual(fresh, reused) {
			t.Errorf("params %+v: reused-world result differs from fresh world\nfresh:  %+v\nreused: %+v",
				p, fresh, reused)
		}
	}
}

// TestWorldNoStateLeak dirties a world with trials at different seeds
// — including a broken-connection trial, the messiest exit path (RST
// bursts, parked workers, packets still in flight when the run stops)
// — and checks that a target trial afterwards still matches a fresh
// world exactly. Run under -race via scripts/ci.sh, this is the
// regression gate for every Reset method in the stack.
func TestWorldNoStateLeak(t *testing.T) {
	target := TrialParams{Seed: 42, Mode: ModeFullAttack}
	want := NewWorld().RunTrial(target)

	// A near-certain-drop attack phase against a transport with no
	// retry budget: the dirtying trial must end with a broken
	// connection so the leak test covers the abort path (RST bursts,
	// parked workers, packets still in flight), not just clean exits.
	breaker := TrialParams{
		Seed: 5,
		Mode: ModeFullAttack,
		TCP:  tcpsim.Config{MaxRetries: 1},
		Attack: core.AttackConfig{
			Phase1Spacing: 50e6,
			TriggerGet:    2,
			ThrottleBps:   1_000_000,
			DropRate:      0.995,
			DropDuration:  60e9,
			Phase2Spacing: 80e6,
		},
	}

	w := NewWorld()
	if r := w.RunTrial(breaker); !r.Broken {
		t.Fatalf("dirtying trial did not break the connection; pick a harsher config")
	}
	for _, dirty := range []TrialParams{
		{Seed: 1, Mode: ModeFullAttack},
		{Seed: 2, Mode: ModePassive, PushEmblems: true},
		{Seed: 3, Mode: ModeJitter, Spacing: 80e6},
	} {
		w.RunTrial(dirty)
	}
	got := w.RunTrial(target)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("world state leaked across trials\nfresh:  %+v\ndirty world: %+v", want, got)
	}
}

// TestWorldTrialAllocs pins the steady-state allocation budget of a
// reused-world full-attack trial. The reset-don't-rebuild design
// keeps the whole trial - session, transport, TLS, HTTP/2, adversary,
// analysis - within a small constant budget once pools are warm; a
// regression here means some layer started rebuilding or leaking.
func TestWorldTrialAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w := NewWorld()
	// Warm-up: grow every pool and scratch buffer to its high-water
	// mark across both clean and broken trials.
	for s := int64(0); s < 5; s++ {
		w.RunTrial(TrialParams{Seed: 90000 + s, Mode: ModeFullAttack})
	}
	seed := int64(90005)
	allocs := testing.AllocsPerRun(10, func() {
		w.RunTrial(TrialParams{Seed: seed, Mode: ModeFullAttack})
		seed++
	})
	// Headroom above the ~53 measured (was ~160 before RST_STREAM
	// rounds reused a frame scratch): trial-to-trial variation can
	// touch fresh high-water marks (more resets, more copies). The
	// pre-world baseline was ~2974.
	if allocs > 120 {
		t.Errorf("reused-world full-attack trial allocates %.0f objects/run, budget 120", allocs)
	}
}

// TestStreamingInferenceZeroAllocs pins the streaming inference
// engine's steady state to zero allocations per trial: once the
// inference buffer and the primed size table have reached their
// high-water marks, a full Start → Observe-every-record → Inferences
// cycle over a real trial's record stream must not allocate. This is
// the inference-side counterpart of TestWorldTrialAllocs.
func TestStreamingInferenceZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Capture a real full-attack trial's record stream.
	site := website.Survey(website.IdentityPermutation())
	sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: 42, RandomizeAmbient: true})
	atk := core.InstallPassive(sess)
	sess.Run()
	records := append([]trace.RecordObs(nil), atk.Monitor.Records...)
	if len(records) == 0 {
		t.Fatal("captured no records")
	}

	p := core.NewPredictor(site)
	var eng core.StreamInference
	cycle := func() {
		eng.Start(p, obs.Sink{})
		for _, r := range records {
			eng.Observe(r)
		}
		if len(eng.Inferences()) == 0 {
			t.Fatal("streaming engine classified nothing")
		}
	}
	cycle() // warm: grow the inference buffer, prime the table
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Errorf("steady-state streaming inference allocates %.0f objects/trial, want 0", allocs)
	}
}
