package experiment

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// ObsState is a metrics registry whose accumulated snapshot survives
// checkpointed process restarts. A live obs.Registry only covers the
// current process; a shard campaign that is interrupted and resumed
// would otherwise write a bundle snapshot missing every pre-restart
// trial, and the merged metrics would no longer match a
// single-process run. ObsState checkpoints the combined snapshot
// (restored base ⊕ live registry) alongside the campaign's other
// exporter state, so the bundle snapshot covers the whole shard range
// no matter how many times the process restarted.
type ObsState struct {
	// Reg is the live registry: point worker shards
	// (Registry.NewShard) and segment labels at it as usual.
	Reg *obs.Registry

	// base is the snapshot restored from a checkpoint — the trials
	// run by previous incarnations of this shard.
	base *obs.Snapshot
}

// NewObsState builds an ObsState around a fresh registry.
func NewObsState() *ObsState { return &ObsState{Reg: obs.NewRegistry()} }

// Snapshot returns the shard-range snapshot: the live registry's
// snapshot merged onto the checkpoint-restored base (if any). Safe to
// call repeatedly; neither side is mutated.
func (o *ObsState) Snapshot() (*obs.Snapshot, error) {
	live := o.Reg.Snapshot()
	if o.base == nil {
		return live, nil
	}
	// Clone the base through its wire form so repeated snapshots do
	// not accumulate into it.
	data, err := json.Marshal(o.base)
	if err != nil {
		return nil, fmt.Errorf("experiment: obs state: %w", err)
	}
	merged := &obs.Snapshot{}
	if err := json.Unmarshal(data, merged); err != nil {
		return nil, fmt.Errorf("experiment: obs state: %w", err)
	}
	if err := merged.Merge(live); err != nil {
		return nil, fmt.Errorf("experiment: obs state: %w", err)
	}
	return merged, nil
}

// checkpoint serializes the combined snapshot.
func (o *ObsState) checkpoint() (json.RawMessage, error) {
	snap, err := o.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(snap)
}

// restore loads a previous incarnation's combined snapshot as the new
// base.
func (o *ObsState) restore(state json.RawMessage) error {
	base := &obs.Snapshot{}
	if err := json.Unmarshal(state, base); err != nil {
		return fmt.Errorf("experiment: obs state: %w", err)
	}
	o.base = base
	return nil
}

// ObsStateExporter adapts an ObsState to one campaign's exporter
// slot: it exports nothing per trial, only rides the pipeline's
// checkpoint cycle. The type parameters bind it to the campaign's
// (params, result) types.
func ObsStateExporter[P, R any](o *ObsState) pipeline.Exporter[P, R] {
	return pipeline.Funcs[P, R]{
		ExporterName: "obs-state",
		OnCheckpoint: o.checkpoint,
		OnRestore:    o.restore,
	}
}
