package experiment

import (
	"math/rand"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/obs"
	"repro/internal/website"
)

// World is a reusable trial arena: one fully-constructed simulation
// stack (site model, session, adversary) plus the per-trial RNG,
// reset in place between trials instead of rebuilt. A world's RunTrial
// returns byte-identical results to the package-level RunTrial at the
// same parameters — reuse is a pure performance optimization, which
// the state-leak regression tests pin down.
//
// A World is not safe for concurrent use; the runner keeps one per
// worker goroutine (see runner.RunWith).
type World struct {
	rng *rand.Rand
	sb  website.SurveyBuilder

	sess *h2sim.Session
	atk  *core.Attack

	// an scores ground-truth traces with reused indexing scratch (the
	// analysis-side arena mirror of the session stack).
	an analysis.Analyzer

	// pushPaths caches the PushEmblems promise list; the emblem paths
	// are fixed by the site model, so it is computed once.
	pushPaths []string
	pushMap   map[string][]string

	// shard, when set, receives every trial's metric increments
	// (segment selected by TrialParams.ObsSegment); rec, when set,
	// flight-records each trial (reset at trial start, so after
	// RunTrial it holds the last trial's events).
	shard *obs.Shard
	rec   *obs.Recorder
}

// NewWorld builds an empty world. The expensive components (session
// stack, adversary) are constructed lazily on the first trial and
// reused afterwards.
func NewWorld() *World {
	return &World{rng: rand.New(rand.NewSource(1))}
}

// SetMetrics points the world's trials at one worker shard. Pass nil
// to disable (the default): without a shard the whole stack runs with
// zero Sinks and pays only the disabled-path branch.
func (w *World) SetMetrics(shard *obs.Shard) { w.shard = shard }

// SetRecorder attaches a flight recorder: each subsequent trial resets
// it and records its typed events, so after RunTrial it holds that
// trial's (most recent) events. Pass nil to detach.
func (w *World) SetRecorder(rec *obs.Recorder) { w.rec = rec }

// RunTrial executes one trial in this world. Equivalent to the
// package-level RunTrial(p), amortizing construction across calls.
func (w *World) RunTrial(p TrialParams) TrialResult {
	// Trial latency feeds the worker's own shard (lock-free; merged
	// into the registry's wall section at snapshot time). No defer:
	// the method is on the dispatch hot path.
	var wallStart time.Time
	if w.shard != nil {
		wallStart = time.Now()
	}
	// Re-seeding replays the exact stream a fresh
	// rand.New(rand.NewSource(p.Seed)) would produce, so the survey
	// outcome and ambient draws match the fresh-world path.
	w.rng.Seed(p.Seed)
	rng := w.rng
	order := website.RandomPermutation(rng)

	path, htmlGap := ambient(rng)
	if p.FixedAmbient {
		path, htmlGap = h2sim.DefaultPath(), 250*time.Millisecond
	}
	if p.UniformDelay > 0 {
		path.ClientSide.PropDelay += p.UniformDelay / 2
		path.ServerSide.PropDelay += p.UniformDelay / 2
	}
	site := w.sb.Build(order, website.SurveyOptions{
		HTMLGap:             htmlGap,
		CanonicalImageOrder: p.CanonicalOrder,
		PadBucket:           p.PadBucket,
	})

	serverCfg := p.Server
	if p.PushEmblems {
		serverCfg.Push = w.pushConfig(site, serverCfg.Push)
	}
	sink := w.shard.Sink(p.ObsSegment)
	if w.rec != nil {
		w.rec.Reset()
		sink = sink.WithRecorder(w.rec)
	}
	sessCfg := h2sim.SessionConfig{
		Seed:      p.Seed,
		Path:      path,
		TCP:       p.TCP,
		Server:    serverCfg,
		Client:    p.Client,
		TimeLimit: p.TimeLimit,
		Obs:       sink,
	}
	if w.sess == nil {
		w.sess = h2sim.NewSession(site, sessCfg)
		w.atk = core.NewAttack(w.sess)
	} else {
		w.sess.Reset(site, sessCfg)
	}
	sess, atk := w.sess, w.atk
	atk.Obs = sink

	switch p.Mode {
	case ModeJitter:
		atk.Arm(core.AttackConfig{Phase1Spacing: p.Spacing})
	case ModeJitterThrottle:
		atk.Arm(core.AttackConfig{Phase1Spacing: p.Spacing})
		atk.Controller.SetBandwidth(p.Bandwidth)
	case ModeFullAttack:
		cfg := p.Attack
		if cfg == (core.AttackConfig{}) {
			cfg = core.PaperAttack()
		}
		atk.Arm(cfg)
	default:
		atk.ArmPassive()
	}

	sess.Run()

	res := TrialResult{
		Broken:          sess.Broken(),
		TruthOrder:      site.DisplayOrder,
		Retransmissions: sess.TotalRetransmissions(),
		ReRequests:      sess.Client.Stats.ReRequests,
		Resets:          sess.Client.Stats.Resets,
		PageComplete:    sess.Client.AllScheduledComplete(),
		LoadTime:        sess.Client.CompletedAt(45), // the trailing beacon
	}
	res.Requests = sess.Client.Requests
	// Copies escape the trial (the result is collected), so they are
	// freshly allocated; only the analyzer's indexing scratch is
	// reused.
	res.Copies = w.an.Copies(sess.GroundTruth)
	res.HTMLCleanAny, res.HTMLCleanOrig = analysis.CleanCopy(res.Copies, website.ResultHTMLID)
	res.HTMLDegree = analysis.OriginalDegree(res.Copies, website.ResultHTMLID)

	infs := atk.Infer()
	res.HTMLIdentified = atk.Predictor.IdentifiedHTML(infs)
	res.PredOrder = atk.Predictor.PredictEmblemOrder(infs)
	for i, party := range res.TruthOrder {
		clean, _ := analysis.CleanCopy(res.Copies, website.EmblemID(party))
		res.ImageClean[i] = clean
	}
	sink.Inc(obs.CTrial)
	if res.Broken {
		sink.Inc(obs.CTrialBroken)
	}
	if res.PageComplete {
		sink.Inc(obs.CTrialComplete)
	}
	if w.shard != nil {
		w.shard.ObserveTrialWall(time.Since(wallStart))
	}
	return res
}

// pushConfig returns the server push map for the PushEmblems defence.
// When the caller supplied its own map it is extended in place (the
// fresh-world semantics); otherwise the world's cached map is reused —
// its contents are invariant because the emblem promise list is in
// canonical party order and the site's paths never vary.
func (w *World) pushConfig(site *website.Site, user map[string][]string) map[string][]string {
	html, _ := site.Object(website.ResultHTMLID)
	if w.pushPaths == nil {
		for party := 0; party < website.PartyCount; party++ {
			o, _ := site.Object(website.EmblemID(party))
			w.pushPaths = append(w.pushPaths, o.Path)
		}
	}
	if user != nil {
		user[html.Path] = w.pushPaths
		return user
	}
	if w.pushMap == nil {
		w.pushMap = map[string][]string{html.Path: w.pushPaths}
	}
	return w.pushMap
}
