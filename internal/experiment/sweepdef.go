package experiment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pipeline"
)

// SweepDef is one fixed sweep as a shardable pipeline campaign: the
// trial grid (a pure function of the index), the metrics segment
// labels of its configuration axis, and the aggregation that renders
// the final table from the complete, index-ordered result set.
//
// The definition is what lets a sweep cross a process boundary.
// Because Params(i) is pure and Format consumes nothing but the
// results slice, any contiguous partition of [0, Trials) can run in
// separate processes, serialize its results as JSONL, and be
// concatenated back in index order — Format over the reassembled
// slice is byte-identical to a single-process run (internal/shard
// holds the manifest/merge machinery, cmd/h2attack the driver).
type SweepDef struct {
	// Name is the campaign name — the CLI flag name ("table1",
	// "fig5", ...), used in checkpoint files, shard manifests, and the
	// -metrics-json sweep key.
	Name string

	// Trials is the total campaign size across all configurations.
	Trials int

	// Segments labels the sweep's configuration axis for the metrics
	// registry.
	Segments []string

	// Params builds trial i's parameters (pure).
	Params func(i int) TrialParams

	// Format aggregates a complete result set (len == Trials, index
	// order) into the sweep's rendered table.
	Format func(results []TrialResult) string

	// fingerprint identifies the configuration for checkpoint/merge
	// validation (see sweepFingerprint).
	fingerprint string
}

// sweepFingerprint builds the stable campaign fingerprint recorded in
// shard manifests and checkpoints: two runs agree on it exactly when
// they would produce identical trial streams.
func sweepFingerprint(name string, trials int, seed0 int64) string {
	return fmt.Sprintf("sweep{name=%s trials=%d seed0=%d}", name, trials, seed0)
}

// Fingerprint identifies the sweep's full configuration; shard merge
// refuses to combine bundles with differing fingerprints.
func (d SweepDef) Fingerprint() string { return d.fingerprint }

// generator adapts the definition to the pipeline's Generator stage.
func (d SweepDef) generator() pipeline.Fixed[TrialParams] {
	return pipeline.Fixed[TrialParams]{CampaignName: d.Name, N: d.Trials, Fn: d.Params, FP: d.fingerprint}
}

// Run executes the whole sweep in-process and returns the results in
// trial order — the execution path behind TableI, Fig5, etc.
func (d SweepDef) Run(opts ...Option) []TrialResult {
	setSegments(opts, d.Segments...)
	return runTrials(d.Trials, opts, d.Params)
}

// Sweeps returns the shardable definitions of the paper's six fixed
// sweeps at the given per-configuration trial count and base seed, in
// the CLI's flag order.
func Sweeps(trials int, seed0 int64) []SweepDef {
	return []SweepDef{
		tableIDef(trials, seed0),
		fig5Def(trials, seed0),
		dropDef(trials, seed0),
		tableIIDef(trials, seed0),
		delayDef(trials, seed0),
		defensesDef(trials, seed0),
	}
}

// ShardWriterBuf is the default JSONL writer buffer for sweep shard
// bundles: TrialResult lines carry the full request log (~2.5 KB
// each), so shards batch ~100 lines per write — on the async export
// stage this also sets the write-behind chunk size, where 256 KiB
// keeps encode and file I/O overlapped at fine enough grain
// (Config.WriterBuf overrides it).
const ShardWriterBuf = 1 << 18

// RunShard executes the [cfg.Start, cfg.End) slice of the sweep
// through the checkpointable pipeline, writing one JSON-marshalled
// TrialResult per trial (Copies excluded — no aggregator reads them)
// as a line of jsonlPath. st, when non-nil, receives the slice's
// metrics (segment labels set here) and rides the checkpoint cycle so
// the snapshot covers the whole range across restarts. A trial that
// panics is recorded as TrialResult{Broken: true}, matching what
// runTrials feeds the in-process aggregators, so a merged shard set
// aggregates identically to a single-process run.
func (d SweepDef) RunShard(cfg pipeline.Config, st *ObsState, jsonlPath string) (pipeline.Summary, error) {
	newState := NewWorld
	jsonl := pipeline.NewJSONL(jsonlPath, func(_ int, _ TrialParams, r TrialResult) (any, error) {
		return r, nil
	}).WithAppender(pipeline.AppendFunc[TrialParams, TrialResult](AppendTrialResultLine)).
		WithBufferSize(ShardWriterBuf)
	exporters := []pipeline.Exporter[TrialParams, TrialResult]{jsonl}
	if st != nil {
		reg := st.Reg
		reg.SetSegments(d.Segments...)
		newState = func() *World {
			w := NewWorld()
			w.SetMetrics(reg.NewShard())
			return w
		}
		exporters = append(exporters, ObsStateExporter[TrialParams, TrialResult](st))
	}
	return pipeline.Run(cfg, d.generator(), newState, brokenOnPanic, exporters...)
}

// brokenOnPanic runs one trial, converting a panic into the broken
// trial runTrials would aggregate — the exported record must carry
// the verdict, not a zero value.
func brokenOnPanic(w *World, p TrialParams) (r TrialResult) {
	defer func() {
		if recover() != nil {
			r = TrialResult{Broken: true}
		}
	}()
	return w.RunTrial(p)
}

// DecodeTrialResults reads exactly n JSON-marshalled TrialResult
// lines — the reassembled shard slices of one sweep, in index order.
func DecodeTrialResults(r io.Reader, n int) ([]TrialResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	results := make([]TrialResult, 0, n)
	for sc.Scan() {
		var tr TrialResult
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			return nil, fmt.Errorf("experiment: trial record %d: %w", len(results), err)
		}
		results = append(results, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) != n {
		return nil, fmt.Errorf("experiment: got %d trial records, want %d", len(results), n)
	}
	return results, nil
}
