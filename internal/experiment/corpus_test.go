package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/website"
)

func testSurveyConfig(sites int) SurveyConfig {
	return SurveyConfig{
		Corpus: website.CorpusConfig{
			Seed:       11,
			Sites:      sites,
			MinObjects: 8,
			MaxObjects: 24, // keep test trials quick
		},
		SiteTrials: 1,
		Seed:       1,
	}
}

func runSurveyJSONL(t *testing.T, cfg SurveyConfig, pcfg pipeline.Config, path string) (pipeline.Summary, []byte) {
	t.Helper()
	s := NewSurvey(cfg)
	sum, err := s.Run(pcfg, SurveyJSONL(path))
	if err != nil {
		t.Fatalf("survey run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sum, data
}

func TestSurveyIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := testSurveyConfig(12)
	dir := t.TempDir()
	_, a := runSurveyJSONL(t, cfg, pipeline.Config{Workers: 1}, filepath.Join(dir, "j1.jsonl"))
	_, b := runSurveyJSONL(t, cfg, pipeline.Config{Workers: 8}, filepath.Join(dir, "j8.jsonl"))
	if !bytes.Equal(a, b) {
		t.Fatal("survey JSONL differs between -j 1 and -j 8")
	}
	if len(a) == 0 {
		t.Fatal("survey produced no output")
	}
}

func TestSurveyResumeByteIdentical(t *testing.T) {
	cfg := testSurveyConfig(17)
	refDir := t.TempDir()
	_, want := runSurveyJSONL(t, cfg, pipeline.Config{Workers: 4}, filepath.Join(refDir, "ref.jsonl"))

	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	ckpt := filepath.Join(dir, "ck.json")

	// Kill after 9 trials with checkpoints every 4: the last
	// checkpoint is the stop point itself (graceful), but the summary
	// counters must survive the restart too.
	killed := NewSurvey(cfg)
	killedSummary := NewSurveySummary()
	sum, err := killed.Run(pipeline.Config{
		Workers: 4, Checkpoint: ckpt, CheckpointEvery: 4, MaxTrials: 9,
	}, SurveyJSONL(path), killedSummary)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Done || sum.Exported != 9 {
		t.Fatalf("interrupted survey: %+v", sum)
	}

	resumed := NewSurvey(cfg)
	resumedSummary := NewSurveySummary()
	sum, err = resumed.Run(pipeline.Config{
		Workers: 4, Checkpoint: ckpt, CheckpointEvery: 4,
	}, SurveyJSONL(path), resumedSummary)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Start != 9 || sum.Exported != 17 {
		t.Fatalf("resumed survey: %+v", sum)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed survey JSONL differs from uninterrupted run")
	}

	// The resumed summary must cover the whole campaign.
	uninterrupted := NewSurvey(cfg)
	fullSummary := NewSurveySummary()
	if _, err := uninterrupted.Run(pipeline.Config{Workers: 4}, fullSummary); err != nil {
		t.Fatal(err)
	}
	if resumedSummary.Format() != fullSummary.Format() {
		t.Fatalf("resumed summary differs:\n%s\nvs uninterrupted:\n%s",
			resumedSummary.Format(), fullSummary.Format())
	}
	trials, _ := resumedSummary.Total()
	if trials != 17 {
		t.Fatalf("resumed summary counted %d trials, want 17", trials)
	}
}

func TestSurveyAttackWorksOnCorpusSites(t *testing.T) {
	cfg := testSurveyConfig(10)
	s := NewSurvey(cfg)
	collect := pipeline.NewCollector[CorpusTrialParams, SurveyResult](s.Trials())
	if _, err := s.Run(pipeline.Config{Workers: 4}, collect); err != nil {
		t.Fatal(err)
	}
	identified, complete := 0, 0
	for _, r := range collect.Results() {
		if r.TargetIdentified {
			identified++
		}
		if r.PageComplete {
			complete++
		}
		if r.Objects == 0 || r.TargetID == 0 {
			t.Fatalf("result missing site spec: %+v", r)
		}
	}
	if identified == 0 {
		t.Fatal("predictor never identified the target across 10 corpus sites")
	}
	if complete == 0 {
		t.Fatal("no corpus page load ever completed")
	}
}
