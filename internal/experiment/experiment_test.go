package experiment

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/website"
)

// Trial counts are kept modest so the suite stays fast; the bench
// harness (bench_test.go at the repo root) runs the full 100-trial
// versions that EXPERIMENTS.md records.

func TestBaselineMultiplexingShape(t *testing.T) {
	// Paper section IV: by default the result HTML is multiplexed in
	// most trials (Table I row 0: 32% clean), and when multiplexed its
	// degree is high (~98%).
	clean, mux := 0, 0
	var degSum float64
	const trials = 50
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{Seed: int64(40000 + i), Mode: ModePassive})
		if r.Broken {
			t.Fatalf("trial %d broke at baseline", i)
		}
		if r.HTMLCleanAny {
			clean++
		} else if r.HTMLDegree > 0 {
			mux++
			degSum += r.HTMLDegree
		}
	}
	pct := 100 * float64(clean) / trials
	if pct < 15 || pct > 55 {
		t.Errorf("baseline clean%% = %.0f, want near the paper's 32%%", pct)
	}
	if mux > 0 {
		if mean := degSum / float64(mux); mean < 0.6 {
			t.Errorf("mean degree when multiplexed = %.2f, want high (~0.98)", mean)
		}
	}
}

func TestJitterImprovesSerialization(t *testing.T) {
	// Table I shape: 50ms spacing raises the non-multiplexed fraction
	// well above baseline.
	cleanAt := func(spacing time.Duration) int {
		clean := 0
		for i := 0; i < 40; i++ {
			p := TrialParams{Seed: int64(40000 + i), Mode: ModeJitter, Spacing: spacing}
			if spacing == 0 {
				p.Mode = ModePassive
			}
			if RunTrial(p).HTMLCleanAny {
				clean++
			}
		}
		return clean
	}
	base := cleanAt(0)
	at50 := cleanAt(50 * time.Millisecond)
	if at50 <= base {
		t.Errorf("50ms jitter did not help: baseline %d/40, 50ms %d/40", base, at50)
	}
}

func TestJitterIncreasesRetransmissions(t *testing.T) {
	// Table I: retransmissions grow with jitter (paper: +130% at 50ms,
	// +194% at 100ms).
	retransAt := func(spacing time.Duration) int {
		total := 0
		for i := 0; i < 30; i++ {
			p := TrialParams{Seed: int64(41000 + i), Mode: ModeJitter, Spacing: spacing}
			if spacing == 0 {
				p.Mode = ModePassive
			}
			total += RunTrial(p).Retransmissions
		}
		return total
	}
	base := retransAt(0)
	at100 := retransAt(100 * time.Millisecond)
	if at100 <= base {
		t.Errorf("100ms jitter did not raise retransmissions: %d vs %d", at100, base)
	}
}

func TestUniformDelayDoesNotHelpAdversary(t *testing.T) {
	// Section IV-A: constant added delay cannot increase inter-arrival
	// spacing, so it never raises the non-multiplexed fraction (in the
	// simulation it actually lowers it, by slowing the drain); the
	// paper accordingly rejects delay as an attack knob.
	rows := DelaySweep(40, 42000)
	base := rows[0].NotMultiplexedPct
	for _, r := range rows[1:] {
		if r.NotMultiplexedPct > base+12 { // noise bound for 40 trials
			t.Errorf("uniform delay %v raised clean%% from %.0f to %.0f; delay must not help",
				r.Delay, base, r.NotMultiplexedPct)
		}
	}
}

func TestFullAttackBreaksHTMLPrivacy(t *testing.T) {
	// Section V: the composed attack identifies the result HTML in the
	// vast majority of trials (paper: 90-100%).
	success := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		if RunTrial(TrialParams{Seed: int64(43000 + i), Mode: ModeFullAttack}).HTMLSuccess() {
			success++
		}
	}
	if pct := 100 * success / trials; pct < 75 {
		t.Errorf("full attack HTML success = %d%%, want >= 75%%", pct)
	}
}

func TestFullAttackRecoversImageSequence(t *testing.T) {
	// Table II: the survey outcome (emblem order) is recovered with
	// high per-position accuracy.
	var posOK [website.PartyCount]int
	const trials = 30
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{Seed: int64(44000 + i), Mode: ModeFullAttack})
		for k := 0; k < website.PartyCount; k++ {
			if r.ImageSuccess(k) {
				posOK[k]++
			}
		}
	}
	for k, ok := range posOK {
		if pct := 100 * ok / trials; pct < 60 {
			t.Errorf("image position %d accuracy = %d%%, want >= 60%%", k+1, pct)
		}
	}
}

func TestDropsForceStreamResets(t *testing.T) {
	// Section IV-D: at an 80% drop rate the client resets its streams
	// in essentially every trial.
	resets := 0
	const trials = 25
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{Seed: int64(45000 + i), Mode: ModeFullAttack})
		if r.Resets > 0 {
			resets++
		}
	}
	if resets < trials*8/10 {
		t.Errorf("resets in %d/%d trials, want nearly all", resets, trials)
	}
}

func TestPassiveAdversaryFailsOnMultiplexedTraffic(t *testing.T) {
	// The point of the paper's related-work comparison: without active
	// interference, the delimiter-based size attack identifies the
	// HTML only when it happens to transmit clean.
	okWithoutClean := 0
	for i := 0; i < 40; i++ {
		r := RunTrial(TrialParams{Seed: int64(46000 + i), Mode: ModePassive})
		if r.HTMLIdentified && !r.HTMLCleanAny {
			okWithoutClean++
		}
	}
	if okWithoutClean > 4 {
		t.Errorf("passive predictor identified multiplexed HTML %d times: side channel too strong", okWithoutClean)
	}
}

// --- Ablations (DESIGN.md section 5) ---

func TestAblationDisableBackpressure(t *testing.T) {
	// Ablation 1: without socket-buffer backpressure, worker enqueues
	// are service-paced and transmissions rarely overlap — baseline
	// multiplexing collapses and the HTML is almost always clean.
	clean := 0
	const trials = 25
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{
			Seed:   int64(47000 + i),
			Mode:   ModePassive,
			Server: h2sim.ServerConfig{DisableBackpressure: true},
		})
		if r.HTMLCleanAny {
			clean++
		}
	}
	if clean < trials*8/10 {
		t.Errorf("without backpressure only %d/%d clean; multiplexing should collapse", clean, trials)
	}
}

func TestAblationDisableReRequest(t *testing.T) {
	// Ablation 2: without the duplicate-request policy, jitter cannot
	// inflate retransmissions the way Table I reports.
	retrans := func(disable bool) int {
		total := 0
		for i := 0; i < 25; i++ {
			total += RunTrial(TrialParams{
				Seed:    int64(48000 + i),
				Mode:    ModeJitter,
				Spacing: 100 * time.Millisecond,
				Client:  h2sim.ClientConfig{DisableReRequest: disable},
			}).ReRequests
		}
		return total
	}
	if with, without := retrans(false), retrans(true); without != 0 || with == 0 {
		t.Errorf("re-requests with=%d without=%d; ablation should zero them", with, without)
	}
}

func TestAblationDisableReset(t *testing.T) {
	// Ablation 3: without the reset-streams policy the composed attack
	// loses most of its HTML success (the post-reset clean window is
	// the mechanism).
	succ := func(disable bool) int {
		n := 0
		for i := 0; i < 25; i++ {
			r := RunTrial(TrialParams{
				Seed:   int64(49000 + i),
				Mode:   ModeFullAttack,
				Client: h2sim.ClientConfig{DisableReset: disable},
			})
			if r.HTMLSuccess() {
				n++
			}
		}
		return n
	}
	with, without := succ(false), succ(true)
	if without >= with {
		t.Errorf("attack success with resets %d/25, without %d/25; resets should matter", with, without)
	}
}

func TestAblationWideRefetchWindow(t *testing.T) {
	// Ablation: a large post-reset refetch window re-creates the
	// interleaving and costs image-sequence accuracy.
	acc := func(window int) int {
		total := 0
		for i := 0; i < 20; i++ {
			r := RunTrial(TrialParams{
				Seed:   int64(50000 + i),
				Mode:   ModeFullAttack,
				Client: h2sim.ClientConfig{RefetchWindow: window},
			})
			for k := 0; k < website.PartyCount; k++ {
				if r.ImageSuccess(k) {
					total++
				}
			}
		}
		return total
	}
	narrow, wide := acc(2), acc(24)
	if wide >= narrow {
		t.Errorf("image successes narrow=%d wide=%d; wide window should hurt", narrow, wide)
	}
}

// --- Harness plumbing ---

func TestRunTrialDeterminism(t *testing.T) {
	a := RunTrial(TrialParams{Seed: 51000, Mode: ModeFullAttack})
	b := RunTrial(TrialParams{Seed: 51000, Mode: ModeFullAttack})
	if a.Retransmissions != b.Retransmissions || a.Resets != b.Resets ||
		a.HTMLCleanAny != b.HTMLCleanAny || a.PredOrder != b.PredOrder {
		t.Error("same seed produced different trial results")
	}
	c := RunTrial(TrialParams{Seed: 51001, Mode: ModeFullAttack})
	if a.TruthOrder == c.TruthOrder && a.Retransmissions == c.Retransmissions {
		t.Error("different seeds produced identical trials")
	}
}

func TestTruthOrderMatchesPermutation(t *testing.T) {
	r := RunTrial(TrialParams{Seed: 52000, Mode: ModePassive})
	var seen [website.PartyCount]bool
	for _, p := range r.TruthOrder {
		if p < 0 || p >= website.PartyCount || seen[p] {
			t.Fatalf("truth order %v is not a permutation", r.TruthOrder)
		}
		seen[p] = true
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	r := RunTrial(TrialParams{Seed: 53000, Mode: ModePassive})
	if !r.PageComplete {
		t.Fatal("baseline page incomplete")
	}
	copies := r.Copies
	// Original copy byte counts equal object sizes for complete copies.
	site := website.Survey(r.TruthOrder)
	for _, spec := range site.Schedule {
		obj, _ := site.Object(spec.ObjectID)
		found := false
		for _, c := range analysis.CopiesOf(copies, spec.ObjectID) {
			if c.Complete && c.Bytes == obj.Size {
				found = true
			}
		}
		if !found {
			t.Errorf("object %d has no complete copy of %d bytes", spec.ObjectID, obj.Size)
		}
	}
}

func TestFormatters(t *testing.T) {
	// The formatters must render without panicking and include the
	// paper's reference values.
	tbl := FormatTableI([]TableIRow{{Jitter: 0, NotMultiplexedPct: 32}})
	if tbl == "" {
		t.Error("empty Table I")
	}
	f5 := FormatFig5([]Fig5Row{{LabelMbps: 800, Bandwidth: 10e6, SuccessPct: 63}})
	if f5 == "" {
		t.Error("empty Fig 5")
	}
	ds := FormatDropSweep([]DropRow{{DropRate: 0.8, SuccessPct: 90}})
	if ds == "" {
		t.Error("empty drop sweep")
	}
	t2 := FormatTableII(TableIIResult{Trials: 1})
	if t2 == "" {
		t.Error("empty Table II")
	}
	dl := FormatDelaySweep([]DelayRow{{Delay: 0, NotMultiplexedPct: 30}})
	if dl == "" {
		t.Error("empty delay sweep")
	}
}

func TestDefenseCanonicalOrderHidesOutcome(t *testing.T) {
	// Section VII extension: with images requested in a fixed order,
	// the attack still identifies objects but the recovered sequence
	// carries no information about the survey outcome (~12.5% per
	// position by chance).
	posOK, trials := 0, 25
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{
			Seed: int64(80000 + i), Mode: ModeFullAttack, CanonicalOrder: true,
		})
		for k := 0; k < website.PartyCount; k++ {
			if r.ImageSuccess(k) {
				posOK++
			}
		}
	}
	if pct := 100 * posOK / (trials * website.PartyCount); pct > 35 {
		t.Errorf("ordering defence leaked: position accuracy %d%%, want near chance", pct)
	}
}

func TestDefensePaddingDefeatsSizeTable(t *testing.T) {
	// Section VII extension: padding to 4KiB buckets makes sizes
	// collide and the size->identity mapping ambiguous.
	htmlOK, trials := 0, 25
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{
			Seed: int64(81000 + i), Mode: ModeFullAttack, PadBucket: 4096,
		})
		if r.HTMLSuccess() {
			htmlOK++
		}
	}
	if pct := 100 * htmlOK / trials; pct > 30 {
		t.Errorf("padding defence leaked: HTML success %d%%, want low", pct)
	}
}

func TestDefenseServerPushDefeatsSpacing(t *testing.T) {
	// Section VII extension: pushed resources are server-initiated, so
	// the adversary's request-spacing lever cannot serialize them, and
	// simultaneous pushes multiplex one another.
	posOK, trials := 0, 25
	for i := 0; i < trials; i++ {
		r := RunTrial(TrialParams{
			Seed: int64(82000 + i), Mode: ModeFullAttack, PushEmblems: true,
		})
		for k := 0; k < website.PartyCount; k++ {
			if r.ImageSuccess(k) {
				posOK++
			}
		}
	}
	if pct := 100 * posOK / (trials * website.PartyCount); pct > 20 {
		t.Errorf("push defence leaked: position accuracy %d%%", pct)
	}
}

func TestMonitorGetCountMatchesClientRequests(t *testing.T) {
	// Cross-layer validation: the adversary's GET counter (parsed from
	// cleartext record headers at the middlebox) must track the
	// client's actual request count closely — it is the trigger for
	// the attack's phase transitions.
	for i := 0; i < 10; i++ {
		site := website.Survey(website.IdentityPermutation())
		sess := h2sim.NewSession(site, h2sim.SessionConfig{Seed: int64(90000 + i)})
		atk := core.InstallPassive(sess)
		sess.Run()
		gets := atk.Monitor.GetCount()
		reqs := sess.Client.Stats.Requests
		sched := len(site.Schedule)
		// The monitor must see every first-time request (the attack
		// trigger counts those); re-requests HPACK-index their paths
		// into records below the GET-size floor, so the count may fall
		// short of the client's total but never below the schedule.
		if gets < sched-1 || gets > reqs+2 {
			t.Errorf("seed %d: monitor counted %d GETs (schedule %d, client total %d)",
				90000+i, gets, sched, reqs)
		}
	}
}

func TestBaselineImageDegreesHigh(t *testing.T) {
	// Paper section V: "In absence of any adversarial intervention,
	// the degree of multiplexing of each of these objects range from
	// 80% to 99%." The emblem images arrive in a sub-millisecond burst
	// and must interleave heavily at baseline.
	var sum float64
	var n int
	for i := 0; i < 20; i++ {
		r := RunTrial(TrialParams{Seed: int64(95000 + i), Mode: ModePassive})
		for p := 0; p < website.PartyCount; p++ {
			d := analysis.OriginalDegree(r.Copies, website.EmblemID(p))
			if d >= 0 {
				sum += d
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no image transmissions observed")
	}
	if mean := sum / float64(n); mean < 0.6 {
		t.Errorf("mean baseline image degree = %.2f, want high (paper: 0.8-0.99)", mean)
	}
}
