package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/website"
)

// TableIRow is one jitter setting of Table I.
type TableIRow struct {
	Jitter             time.Duration
	NotMultiplexedPct  float64 // trials where the HTML had a clean copy
	Retransmissions    int     // total across trials
	RetransIncreasePct float64 // vs the 0-jitter baseline row
	Broken             int
}

// TableI reproduces the paper's Table I: the effect of inter-request
// jitter on the result HTML's multiplexing and on retransmission
// volume. trials page loads per jitter value (the paper used 100).
func TableI(trials int, seed0 int64, opts ...Option) []TableIRow {
	return tableIRows(trials, tableIDef(trials, seed0).Run(opts...))
}

// tableIDef is Table I as a shardable sweep definition.
func tableIDef(trials int, seed0 int64) SweepDef {
	jitters := []time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	return SweepDef{
		Name:     "table1",
		Trials:   len(jitters) * trials,
		Segments: []string{"jitter=0ms", "jitter=25ms", "jitter=50ms", "jitter=100ms"},
		Params: func(i int) TrialParams {
			p := TrialParams{Seed: seed0 + int64(i%trials), Mode: ModeJitter, Spacing: jitters[i/trials], ObsSegment: i / trials}
			if p.Spacing == 0 {
				p.Mode = ModePassive
			}
			return p
		},
		Format: func(results []TrialResult) string {
			return FormatTableI(tableIRows(trials, results))
		},
		fingerprint: sweepFingerprint("table1", trials, seed0),
	}
}

// tableIRows aggregates a complete Table I result set.
func tableIRows(trials int, results []TrialResult) []TableIRow {
	jitters := []time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	rows := make([]TableIRow, 0, len(jitters))
	baseRetrans := 0
	for ji, j := range jitters {
		row := TableIRow{Jitter: j}
		clean := 0
		for _, r := range results[ji*trials : (ji+1)*trials] {
			if r.Broken {
				row.Broken++
				continue
			}
			row.Retransmissions += r.Retransmissions
			if r.HTMLCleanAny {
				clean++
			}
		}
		row.NotMultiplexedPct = 100 * float64(clean) / float64(trials)
		if ji == 0 {
			baseRetrans = row.Retransmissions
		}
		if baseRetrans > 0 {
			row.RetransIncreasePct = 100 * float64(row.Retransmissions-baseRetrans) / float64(baseRetrans)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTableI renders rows next to the paper's values.
func FormatTableI(rows []TableIRow) string {
	paperClean := map[time.Duration]int{0: 32, 25 * time.Millisecond: 46, 50 * time.Millisecond: 54, 100 * time.Millisecond: 54}
	paperRetr := map[time.Duration]string{0: "0 (baseline)", 25 * time.Millisecond: "~33", 50 * time.Millisecond: "~130", 100 * time.Millisecond: "~194"}
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: effect of jitter on HTTP/2 multiplexing\n")
	fmt.Fprintf(&b, "%-12s %-26s %-10s %-26s %-12s\n",
		"jitter(ms)", "not-multiplexed% (paper)", "retrans", "retrans-increase%(paper)", "broken")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.0f %6.0f%%          (%2d%%)    %-10d %+8.0f%%      (%s)%8d\n",
			float64(r.Jitter)/float64(time.Millisecond),
			r.NotMultiplexedPct, paperClean[r.Jitter],
			r.Retransmissions, r.RetransIncreasePct, paperRetr[r.Jitter], r.Broken)
	}
	return b.String()
}

// Fig5Row is one bandwidth point of Figure 5.
type Fig5Row struct {
	// LabelMbps is the paper's x-axis value; Bandwidth is the
	// simulated throttle actually applied (LabelMbps * Fig5Scale).
	LabelMbps       int
	Bandwidth       int64
	Retransmissions int
	SuccessPct      float64 // trials with a clean identified HTML copy
	OrigSuccessPct  float64 // success via the original copy only
	Broken          int
}

// Fig5Scale maps the paper's bandwidth axis onto the simulator's.
// The paper's testbed saturated near its 1 Gbps link; the simulated
// origin path saturates near 12.5 Mbps (socket buffer over the
// ambient RTT), so each labelled Mbps is worth 12.5 kbps of simulated
// throttle — the sweep points then sit at the same position relative
// to saturation as the paper's. See EXPERIMENTS.md.
const Fig5Scale = 12_500

// Fig5 reproduces Figure 5: bandwidth limitation (with 50ms request
// spacing active, extending the section IV-B setup) versus
// retransmissions and success cases.
func Fig5(trials int, seed0 int64, opts ...Option) []Fig5Row {
	return fig5Rows(trials, fig5Def(trials, seed0).Run(opts...))
}

// fig5Def is Figure 5 as a shardable sweep definition.
func fig5Def(trials int, seed0 int64) SweepDef {
	labels := []int{1000, 800, 500, 100, 1}
	segs := make([]string, len(labels))
	for i, l := range labels {
		segs[i] = fmt.Sprintf("bw=%dMbps", l)
	}
	return SweepDef{
		Name:     "fig5",
		Trials:   len(labels) * trials,
		Segments: segs,
		Params: func(i int) TrialParams {
			return TrialParams{
				Seed:       seed0 + int64(i%trials),
				Mode:       ModeJitterThrottle,
				Spacing:    50 * time.Millisecond,
				Bandwidth:  int64(labels[i/trials]) * Fig5Scale,
				TimeLimit:  45 * time.Second,
				ObsSegment: i / trials,
			}
		},
		Format: func(results []TrialResult) string {
			return FormatFig5(fig5Rows(trials, results))
		},
		fingerprint: sweepFingerprint("fig5", trials, seed0),
	}
}

// fig5Rows aggregates a complete Figure 5 result set.
func fig5Rows(trials int, results []TrialResult) []Fig5Row {
	labels := []int{1000, 800, 500, 100, 1}
	rows := make([]Fig5Row, 0, len(labels))
	for li, label := range labels {
		bw := int64(label) * Fig5Scale
		row := Fig5Row{LabelMbps: label, Bandwidth: bw}
		succ, orig := 0, 0
		for _, r := range results[li*trials : (li+1)*trials] {
			if r.Broken || !r.PageComplete {
				// The paper reports the sub-1Mbps regime as a broken
				// connection; a page load that cannot finish is the
				// same outcome.
				row.Broken++
				continue
			}
			row.Retransmissions += r.Retransmissions
			if r.HTMLSuccess() {
				succ++
				if r.HTMLCleanOrig {
					orig++
				}
			}
		}
		row.SuccessPct = 100 * float64(succ) / float64(trials)
		row.OrigSuccessPct = 100 * float64(orig) / float64(trials)
		rows = append(rows, row)
	}
	return rows
}

// FormatFig5 renders the series.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: effect of bandwidth limitation (50ms jitter active)\n")
	fmt.Fprintf(&b, "%-12s %-14s %-12s %-10s %-18s %-8s\n",
		"label(Mbps)", "sim-throttle", "retrans", "success%", "success-via-orig%", "broken")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %-14s %-12d %-10.0f %-18.0f %-8d\n",
			r.LabelMbps, fmtBps(r.Bandwidth), r.Retransmissions, r.SuccessPct, r.OrigSuccessPct, r.Broken)
	}
	b.WriteString("paper shape: retransmissions fall monotonically as bandwidth falls;\n")
	b.WriteString("success peaks at 800 Mbps then declines; <1 Mbps breaks the connection\n")
	return b.String()
}

func fmtBps(bps int64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%d Gbps", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%d Mbps", bps/1e6)
	default:
		return fmt.Sprintf("%d bps", bps)
	}
}

// DropRow is one point of the section IV-D targeted-drop experiment.
type DropRow struct {
	DropRate   float64
	SuccessPct float64
	ResetRate  float64 // trials in which the client reset streams
	Broken     int
}

// DropSweep reproduces section IV-D: targeted server→client drops
// (with jitter and the 800 Mbps throttle applied) forcing HTTP/2
// stream resets. The paper reports ~90% success at an 80% drop rate
// and a broken connection beyond it.
func DropSweep(trials int, seed0 int64, opts ...Option) []DropRow {
	return dropRows(trials, dropDef(trials, seed0).Run(opts...))
}

// dropDef is the §IV-D drop sweep as a shardable sweep definition.
func dropDef(trials int, seed0 int64) SweepDef {
	rates := []float64{0, 0.4, 0.8, 0.95}
	return SweepDef{
		Name:     "drops",
		Trials:   len(rates) * trials,
		Segments: []string{"drop=0%", "drop=40%", "drop=80%", "drop=95%"},
		Params: func(i int) TrialParams {
			cfg := core.PaperAttack()
			cfg.DropRate = rates[i/trials]
			if cfg.DropRate == 0 {
				cfg.DropDuration = time.Millisecond // phases advance, drops are moot
			}
			return TrialParams{Seed: seed0 + int64(i%trials), Mode: ModeFullAttack, Attack: cfg, ObsSegment: i / trials}
		},
		Format: func(results []TrialResult) string {
			return FormatDropSweep(dropRows(trials, results))
		},
		fingerprint: sweepFingerprint("drops", trials, seed0),
	}
}

// dropRows aggregates a complete drop-sweep result set.
func dropRows(trials int, results []TrialResult) []DropRow {
	rates := []float64{0, 0.4, 0.8, 0.95}
	rows := make([]DropRow, 0, len(rates))
	for ri, rate := range rates {
		row := DropRow{DropRate: rate}
		succ, resets := 0, 0
		for _, r := range results[ri*trials : (ri+1)*trials] {
			if r.Broken {
				row.Broken++
				continue
			}
			if r.Resets > 0 {
				resets++
			}
			if r.HTMLSuccess() {
				succ++
			}
		}
		row.SuccessPct = 100 * float64(succ) / float64(trials)
		row.ResetRate = 100 * float64(resets) / float64(trials)
		rows = append(rows, row)
	}
	return rows
}

// FormatDropSweep renders the sweep.
func FormatDropSweep(rows []DropRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IV-D: targeted packet drops forcing stream reset\n")
	fmt.Fprintf(&b, "%-10s %-10s %-12s %-8s\n", "drop%", "success%", "reset-rate%", "broken")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.0f %-10.0f %-12.0f %-8d\n",
			100*r.DropRate, r.SuccessPct, r.ResetRate, r.Broken)
	}
	b.WriteString("paper: ~90% success at 80% drops; higher rates break the connection\n")
	return b.String()
}

// TableIIResult aggregates the full-attack evaluation.
type TableIIResult struct {
	Trials int

	// GapPrev[k]/GapNext[k] are the median client-side intervals
	// between the k-th object of interest's first request and the
	// previous/next request (Table II's first two rows; 0 = HTML,
	// 1..8 = images).
	GapPrev [1 + website.PartyCount]time.Duration
	GapNext [1 + website.PartyCount]time.Duration

	// SingleTarget[k] is the success rate when the adversary targets
	// only the k-th object of interest (0 = HTML, 1..8 = images).
	SingleTarget [1 + website.PartyCount]float64

	// AllTargets[k] is the success rate when the adversary wants the
	// whole sequence (paper's second accuracy row).
	AllTargets [1 + website.PartyCount]float64

	Broken int
}

// TableII reproduces the paper's Table II with the composed attack.
func TableII(trials int, seed0 int64, opts ...Option) TableIIResult {
	return tableIIFromResults(trials, tableIIDef(trials, seed0).Run(opts...))
}

// tableIIDef is Table II as a shardable sweep definition.
func tableIIDef(trials int, seed0 int64) SweepDef {
	return SweepDef{
		Name:     "table2",
		Trials:   trials,
		Segments: []string{"full-attack"},
		Params: func(i int) TrialParams {
			return TrialParams{Seed: seed0 + int64(i), Mode: ModeFullAttack}
		},
		Format: func(results []TrialResult) string {
			return FormatTableII(tableIIFromResults(trials, results))
		},
		fingerprint: sweepFingerprint("table2", trials, seed0),
	}
}

// tableIIFromResults aggregates a complete Table II result set.
func tableIIFromResults(trials int, results []TrialResult) TableIIResult {
	res := TableIIResult{Trials: trials}
	var single, all [1 + website.PartyCount]int
	gapsPrev := make([][]time.Duration, 1+website.PartyCount)
	gapsNext := make([][]time.Duration, 1+website.PartyCount)
	for _, r := range results {
		if r.Broken {
			res.Broken++
		}
		collectGaps(r, gapsPrev, gapsNext)
		// Target: the HTML.
		if r.HTMLSuccess() {
			all[0]++
			single[0]++
		}
		// Targets: images 1..8.
		for k := 0; k < website.PartyCount; k++ {
			if r.ImageSuccess(k) {
				all[1+k]++
			}
			if singleImageSuccess(r, k) {
				single[1+k]++
			}
		}
	}
	for k := range single {
		res.SingleTarget[k] = 100 * float64(single[k]) / float64(trials)
		res.AllTargets[k] = 100 * float64(all[k]) / float64(trials)
		res.GapPrev[k] = median(gapsPrev[k])
		res.GapNext[k] = median(gapsNext[k])
	}
	return res
}

// collectGaps extracts the client-side inter-request intervals around
// each object of interest's first request.
func collectGaps(r TrialResult, prev, next [][]time.Duration) {
	// Objects of interest in display position order: HTML, then the
	// k-th displayed party's emblem.
	interest := make([]int, 0, 1+website.PartyCount)
	interest = append(interest, website.ResultHTMLID)
	for _, party := range r.TruthOrder {
		interest = append(interest, website.EmblemID(party))
	}
	for k, objID := range interest {
		for idx, rl := range r.Requests {
			if rl.ObjectID != objID || rl.ReIssue || rl.CopyID != 0 {
				continue
			}
			if idx > 0 {
				prev[k] = append(prev[k], rl.Time-r.Requests[idx-1].Time)
			}
			if idx+1 < len(r.Requests) {
				next[k] = append(next[k], r.Requests[idx+1].Time-rl.Time)
			}
			break
		}
	}
}

// median returns the middle element of ds (0 when empty).
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// singleImageSuccess scores the one-object-at-a-time row: the
// adversary only needs the k-th displayed emblem clean and its size
// identified somewhere in the trace (sequence position of the others
// is irrelevant).
func singleImageSuccess(r TrialResult, k int) bool {
	if r.Broken || !r.ImageClean[k] {
		return false
	}
	want := r.TruthOrder[k]
	for _, p := range r.PredOrder {
		if p == want {
			return true
		}
	}
	return false
}

// FormatTableII renders the accuracy table next to the paper's rows.
func FormatTableII(res TableIIResult) string {
	paperSingle := [9]int{100, 100, 100, 100, 100, 100, 100, 100, 100}
	paperAll := [9]int{90, 90, 85, 81, 80, 62, 64, 78, 64}
	labels := [9]string{"HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"}
	paperPrev := [9]string{"500", "780", "0.4", "2", "0.3", "0.1", "0.3", "2", "0.5"}
	paperNext := [9]string{"160", "0.4", "2", "0.3", "0.1", "0.3", "2", "0.5", "26"}
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: prediction accuracy over %d trials (%d broken)\n", res.Trials, res.Broken)
	fmt.Fprintf(&b, "%-6s %-20s %-20s %-22s %-22s\n",
		"object", "gap-prev ms (paper)", "gap-next ms (paper)", "single-target%(paper)", "all-targets%(paper)")
	for k := 0; k < len(labels); k++ {
		fmt.Fprintf(&b, "%-6s %8.1f (%5s)    %8.1f (%5s)    %6.0f%%       (%3d%%)    %6.0f%%       (%3d%%)\n",
			labels[k],
			float64(res.GapPrev[k])/float64(time.Millisecond), paperPrev[k],
			float64(res.GapNext[k])/float64(time.Millisecond), paperNext[k],
			res.SingleTarget[k], paperSingle[k], res.AllTargets[k], paperAll[k])
	}
	b.WriteString("gap rows are client-side medians; the HTML's gap-prev is the per-session think time\n")
	return b.String()
}

// DelayRow is one point of the section IV-A uniform-delay control.
type DelayRow struct {
	Delay             time.Duration
	NotMultiplexedPct float64
}

// DelaySweep reproduces section IV-A: uniform added delay cannot
// increase inter-arrival spacing, so it gives the adversary nothing
// (the paper rejects it as an attack knob; in the simulation extra
// delay actually deepens multiplexing by slowing the drain).
func DelaySweep(trials int, seed0 int64, opts ...Option) []DelayRow {
	return delayRows(trials, delayDef(trials, seed0).Run(opts...))
}

// delayDef is the §IV-A uniform-delay control as a shardable sweep
// definition.
func delayDef(trials int, seed0 int64) SweepDef {
	delays := []time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	return SweepDef{
		Name:     "delay",
		Trials:   len(delays) * trials,
		Segments: []string{"delay=0ms", "delay=25ms", "delay=50ms", "delay=100ms"},
		Params: func(i int) TrialParams {
			return TrialParams{Seed: seed0 + int64(i%trials), Mode: ModePassive, UniformDelay: delays[i/trials], ObsSegment: i / trials}
		},
		Format: func(results []TrialResult) string {
			return FormatDelaySweep(delayRows(trials, results))
		},
		fingerprint: sweepFingerprint("delay", trials, seed0),
	}
}

// delayRows aggregates a complete delay-sweep result set.
func delayRows(trials int, results []TrialResult) []DelayRow {
	delays := []time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	rows := make([]DelayRow, 0, len(delays))
	for di, d := range delays {
		clean := 0
		for _, r := range results[di*trials : (di+1)*trials] {
			if r.HTMLCleanAny {
				clean++
			}
		}
		rows = append(rows, DelayRow{Delay: d, NotMultiplexedPct: 100 * float64(clean) / float64(trials)})
	}
	return rows
}

// FormatDelaySweep renders the control experiment.
func FormatDelaySweep(rows []DelayRow) string {
	var b strings.Builder
	b.WriteString("Section IV-A: uniform delay control (must not raise the clean fraction)\n")
	fmt.Fprintf(&b, "%-12s %-18s\n", "delay(ms)", "not-multiplexed%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.0f %-18.0f\n",
			float64(r.Delay)/float64(time.Millisecond), r.NotMultiplexedPct)
	}
	return b.String()
}

// DefenseRow is one configuration of the section VII defence
// evaluation (an extension experiment: the paper proposes these
// mitigations as future work).
type DefenseRow struct {
	Name           string
	HTMLSuccessPct float64
	// PosAccuracyPct is the mean per-position accuracy of the
	// recovered survey outcome under the full attack.
	PosAccuracyPct float64
}

// defenseConfigs is the §VII defence evaluation grid, shared by the
// sweep definition and its aggregator.
var defenseConfigs = []struct {
	name      string
	canonical bool
	pad       int
	push      bool
}{
	{"none (paper attack)", false, 0, false},
	{"canonical order", true, 0, false},
	{"server push", false, 0, true},
	{"pad to 4KiB", false, 4096, false},
	{"order + padding", true, 4096, false},
}

// Defenses evaluates the paper's section VII mitigation proposals
// against the full composed attack: requesting the emblem images in a
// fixed canonical order (so the request sequence carries no secret),
// padding all object sizes to 4 KiB buckets, and both together.
func Defenses(trials int, seed0 int64, opts ...Option) []DefenseRow {
	return defenseRows(trials, defensesDef(trials, seed0).Run(opts...))
}

// defensesDef is the defence evaluation as a shardable sweep
// definition.
func defensesDef(trials int, seed0 int64) SweepDef {
	configs := defenseConfigs
	segs := make([]string, len(configs))
	for i, cfg := range configs {
		segs[i] = cfg.name
	}
	return SweepDef{
		Name:     "defenses",
		Trials:   len(configs) * trials,
		Segments: segs,
		Params: func(i int) TrialParams {
			cfg := configs[i/trials]
			return TrialParams{
				Seed:           seed0 + int64(i%trials),
				Mode:           ModeFullAttack,
				CanonicalOrder: cfg.canonical,
				PadBucket:      cfg.pad,
				PushEmblems:    cfg.push,
				ObsSegment:     i / trials,
			}
		},
		Format: func(results []TrialResult) string {
			return FormatDefenses(defenseRows(trials, results))
		},
		fingerprint: sweepFingerprint("defenses", trials, seed0),
	}
}

// defenseRows aggregates a complete defence-evaluation result set.
func defenseRows(trials int, results []TrialResult) []DefenseRow {
	configs := defenseConfigs
	rows := make([]DefenseRow, 0, len(configs))
	for ci, cfg := range configs {
		htmlOK, posOK := 0, 0
		for _, r := range results[ci*trials : (ci+1)*trials] {
			if r.HTMLSuccess() {
				htmlOK++
			}
			for k := 0; k < website.PartyCount; k++ {
				if r.ImageSuccess(k) {
					posOK++
				}
			}
		}
		rows = append(rows, DefenseRow{
			Name:           cfg.name,
			HTMLSuccessPct: 100 * float64(htmlOK) / float64(trials),
			PosAccuracyPct: 100 * float64(posOK) / float64(trials*website.PartyCount),
		})
	}
	return rows
}

// FormatDefenses renders the defence evaluation.
func FormatDefenses(rows []DefenseRow) string {
	var b strings.Builder
	b.WriteString("Section VII extension: proposed defences vs the full attack\n")
	fmt.Fprintf(&b, "%-22s %-14s %-22s\n", "defence", "html-success%", "outcome-pos-accuracy%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-14.0f %-22.0f\n", r.Name, r.HTMLSuccessPct, r.PosAccuracyPct)
	}
	b.WriteString("random guessing recovers a position ~12.5% of the time\n")
	return b.String()
}
