package h2

import (
	"encoding/hex"
	"reflect"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestHpackIntRoundTrip(t *testing.T) {
	cases := []struct {
		v    uint64
		n    uint8
		want string
	}{
		{10, 5, "0a"},       // RFC 7541 C.1.1
		{1337, 5, "1f9a0a"}, // RFC 7541 C.1.2
		{42, 8, "2a"},       // RFC 7541 C.1.3
		{0, 5, "00"},
		{31, 5, "1f00"},
		{1 << 20, 7, "7f81ff3f"},
	}
	for _, c := range cases {
		got := appendHpackInt(nil, 0, c.n, c.v)
		if hex.EncodeToString(got) != c.want {
			t.Errorf("encode %d prefix %d = %x, want %s", c.v, c.n, got, c.want)
		}
		v, rest, err := readHpackInt(got, c.n)
		if err != nil || v != c.v || len(rest) != 0 {
			t.Errorf("decode %x = (%d, rest %d, %v), want (%d, 0, nil)", got, v, len(rest), err, c.v)
		}
	}
}

func TestHpackIntQuick(t *testing.T) {
	f := func(v uint32, nRaw uint8) bool {
		n := nRaw%8 + 1
		enc := appendHpackInt(nil, 0, n, uint64(v))
		got, rest, err := readHpackInt(enc, n)
		return err == nil && got == uint64(v) && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHpackIntTruncated(t *testing.T) {
	enc := appendHpackInt(nil, 0, 5, 1337)
	for i := 0; i < len(enc); i++ {
		if _, _, err := readHpackInt(enc[:i], 5); err == nil {
			t.Errorf("decode of %d-byte prefix succeeded, want error", i)
		}
	}
}

func TestHpackIntOverflow(t *testing.T) {
	// 0x1f then ten 0xff continuation bytes overflows uint64 shifts.
	b := append([]byte{0x1f}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := readHpackInt(b, 5); err == nil {
		t.Error("decode of oversized integer succeeded, want error")
	}
}

func TestHpackStringPlainWhenHuffmanLonger(t *testing.T) {
	// A string of rare symbols is longer in Huffman form and must be
	// emitted plain.
	s := "\x01\x02\x03"
	enc := appendHpackString(nil, s)
	if enc[0]&0x80 != 0 {
		t.Fatalf("string %q encoded with huffman bit set", s)
	}
	got, rest, err := readHpackString(enc)
	if err != nil || got != s || len(rest) != 0 {
		t.Fatalf("decode = (%q, %d, %v), want (%q, 0, nil)", got, len(rest), err, s)
	}
}

// RFC 7541 C.2: single representation forms.
func TestHpackDecodeC2(t *testing.T) {
	cases := []struct {
		hex  string
		want HeaderField
	}{
		{"400a637573746f6d2d6b65790d637573746f6d2d686561646572", HeaderField{Name: "custom-key", Value: "custom-header"}},
		{"040c2f73616d706c652f70617468", HeaderField{Name: ":path", Value: "/sample/path"}},
		{"100870617373776f726406736563726574", HeaderField{Name: "password", Value: "secret", Sensitive: true}},
		{"82", HeaderField{Name: ":method", Value: "GET"}},
	}
	for _, c := range cases {
		d := NewHpackDecoder(4096)
		got, err := d.DecodeFull(mustHex(t, c.hex))
		if err != nil {
			t.Errorf("decode %s: %v", c.hex, err)
			continue
		}
		if len(got) != 1 || got[0] != c.want {
			t.Errorf("decode %s = %+v, want [%+v]", c.hex, got, c.want)
		}
	}
}

var c3Requests = [][]HeaderField{
	{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: "/"},
		{Name: ":authority", Value: "www.example.com"},
	},
	{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: "/"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: "cache-control", Value: "no-cache"},
	},
	{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/index.html"},
		{Name: ":authority", Value: "www.example.com"},
		{Name: "custom-key", Value: "custom-value"},
	},
}

// RFC 7541 C.3: request examples without Huffman coding (decoder side;
// the encoder prefers Huffman so only decode is vector-checked).
func TestHpackDecodeC3Sequence(t *testing.T) {
	blocks := []string{
		"828684410f7777772e6578616d706c652e636f6d",
		"828684be58086e6f2d6361636865",
		"828785bf400a637573746f6d2d6b65790c637573746f6d2d76616c7565",
	}
	d := NewHpackDecoder(4096)
	for i, blk := range blocks {
		got, err := d.DecodeFull(mustHex(t, blk))
		if err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
		if !reflect.DeepEqual(got, c3Requests[i]) {
			t.Errorf("request %d = %+v, want %+v", i+1, got, c3Requests[i])
		}
	}
	if d.table.len() != 3 {
		t.Errorf("dynamic table has %d entries after C.3, want 3", d.table.len())
	}
	if d.table.size != 164 {
		t.Errorf("dynamic table size = %d after C.3, want 164", d.table.size)
	}
}

// RFC 7541 C.4: the same requests with Huffman coding; our encoder's
// choices match the example encoder exactly.
func TestHpackEncodeC4Sequence(t *testing.T) {
	want := []string{
		"828684418cf1e3c2e5f23a6ba0ab90f4ff",
		"828684be5886a8eb10649cbf",
		"828785bf408825a849e95ba97d7f8925a849e95bb8e8b4bf",
	}
	e := NewHpackEncoder(4096)
	d := NewHpackDecoder(4096)
	for i, req := range c3Requests {
		blk := e.AppendHeaderBlock(nil, req)
		if hex.EncodeToString(blk) != want[i] {
			t.Errorf("request %d encodes to %x, want %s", i+1, blk, want[i])
		}
		got, err := d.DecodeFull(blk)
		if err != nil {
			t.Fatalf("request %d decode: %v", i+1, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("request %d round trip = %+v, want %+v", i+1, got, req)
		}
	}
	if e.table.size != 164 {
		t.Errorf("encoder dynamic table size = %d, want 164", e.table.size)
	}
}

// RFC 7541 C.5: response examples without Huffman, with a 256-octet
// dynamic table forcing evictions.
func TestHpackDecodeC5Evictions(t *testing.T) {
	blocks := []string{
		"4803333032580770726976617465611d4d6f6e2c203037204d617920323031342031323a34353a353320474d546e1768747470733a2f2f7777772e6578616d706c652e636f6d",
		"4803333037c1c0bf",
		"88c1611d4d6f6e2c203037204d617920323031342031333a31353a333920474d54c05a04677a69707738666f6f3d4153444a4b48514b425a584f5157454f5049554158515745" +
			"4f49553b206d61782d6167653d333630303b2076657273696f6e3d31",
	}
	want := [][]HeaderField{
		{
			{Name: ":status", Value: "302"},
			{Name: "cache-control", Value: "private"},
			{Name: "date", Value: "Mon, 07 May 2014 12:45:53 GMT"},
			{Name: "location", Value: "https://www.example.com"},
		},
		{
			{Name: ":status", Value: "307"},
			{Name: "cache-control", Value: "private"},
			{Name: "date", Value: "Mon, 07 May 2014 12:45:53 GMT"},
			{Name: "location", Value: "https://www.example.com"},
		},
		{
			{Name: ":status", Value: "200"},
			{Name: "cache-control", Value: "private"},
			{Name: "date", Value: "Mon, 07 May 2014 13:15:39 GMT"},
			{Name: "location", Value: "https://www.example.com"},
			{Name: "content-encoding", Value: "gzip"},
			{Name: "set-cookie", Value: "foo=ASDJKHQKBZXOQWEOPIUAXQWEOIU; max-age=3600; version=1"},
		},
	}
	d := NewHpackDecoder(256)
	for i, blk := range blocks {
		got, err := d.DecodeFull(mustHex(t, blk))
		if err != nil {
			t.Fatalf("response %d: %v", i+1, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("response %d = %+v, want %+v", i+1, got, want[i])
		}
	}
	if d.table.len() != 3 {
		t.Errorf("dynamic table has %d entries after C.5, want 3", d.table.len())
	}
	if d.table.size != 215 {
		t.Errorf("dynamic table size = %d after C.5, want 215", d.table.size)
	}
}

func TestHpackRoundTripQuick(t *testing.T) {
	sanitize := func(b []byte) string {
		out := make([]byte, 0, len(b))
		for _, c := range b {
			// Header names must be nonempty lowercase-ish tokens; keep
			// printable subset to exercise both Huffman and plain paths.
			out = append(out, 'a'+c%26)
		}
		return string(out)
	}
	f := func(names, values [][]byte) bool {
		e := NewHpackEncoder(4096)
		d := NewHpackDecoder(4096)
		var fields []HeaderField
		for i, n := range names {
			v := ""
			if i < len(values) {
				v = string(values[i])
			}
			fields = append(fields, HeaderField{Name: "x-" + sanitize(n), Value: v})
		}
		blk := e.AppendHeaderBlock(nil, fields)
		got, err := d.DecodeFull(blk)
		if err != nil {
			return false
		}
		if len(fields) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, fields)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHpackSensitiveNeverIndexed(t *testing.T) {
	e := NewHpackEncoder(4096)
	fields := []HeaderField{{Name: "authorization", Value: "Bearer tok", Sensitive: true}}
	blk := e.AppendHeaderBlock(nil, fields)
	if blk[0]&0xf0 != 0x10 {
		t.Fatalf("sensitive field first octet = 0x%x, want never-indexed (0x1X)", blk[0])
	}
	if e.table.len() != 0 {
		t.Error("sensitive field was added to the encoder dynamic table")
	}
	d := NewHpackDecoder(4096)
	got, err := d.DecodeFull(blk)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Sensitive {
		t.Error("decoded field lost Sensitive bit")
	}
	if d.table.len() != 0 {
		t.Error("sensitive field was added to the decoder dynamic table")
	}
}

func TestHpackTableSizeUpdateSignalled(t *testing.T) {
	e := NewHpackEncoder(4096)
	e.SetMaxDynamicTableSize(0)
	blk := e.AppendHeaderBlock(nil, []HeaderField{{Name: ":method", Value: "GET"}})
	if blk[0]&0xe0 != 0x20 {
		t.Fatalf("first octet = 0x%x, want dynamic table size update (0x2X)", blk[0])
	}
	d := NewHpackDecoder(4096)
	if _, err := d.DecodeFull(blk); err != nil {
		t.Fatal(err)
	}
	if d.table.maxSize != 0 {
		t.Errorf("decoder table max = %d, want 0", d.table.maxSize)
	}
}

func TestHpackDecoderRejectsOversizedTableUpdate(t *testing.T) {
	d := NewHpackDecoder(4096)
	blk := appendHpackInt(nil, 0x20, 5, 8192)
	if _, err := d.DecodeFull(blk); err == nil {
		t.Error("oversized table size update accepted, want error")
	}
}

func TestHpackDecoderRejectsMidBlockTableUpdate(t *testing.T) {
	d := NewHpackDecoder(4096)
	blk := []byte{0x82}                     // :method: GET
	blk = appendHpackInt(blk, 0x20, 5, 128) // then a table size update
	if _, err := d.DecodeFull(blk); err == nil {
		t.Error("table size update after a field accepted, want error")
	}
}

func TestHpackDecoderRejectsBadIndex(t *testing.T) {
	for _, blk := range [][]byte{
		{0x80},                           // index 0
		appendHpackInt(nil, 0x80, 7, 62), // dynamic index on empty table
	} {
		d := NewHpackDecoder(4096)
		if _, err := d.DecodeFull(blk); err == nil {
			t.Errorf("decode %x succeeded, want error", blk)
		}
	}
}

func TestHpackMaxHeaderListSize(t *testing.T) {
	d := NewHpackDecoder(4096)
	d.MaxHeaderListSize = 40 // one small field fits, two don't
	e := NewHpackEncoder(4096)
	blk := e.AppendHeaderBlock(nil, []HeaderField{
		{Name: "a", Value: "b"},
		{Name: "c", Value: "d"},
	})
	if _, err := d.DecodeFull(blk); err == nil {
		t.Error("oversized header list accepted, want error")
	}
}

func TestDynamicTableEviction(t *testing.T) {
	var tbl dynamicTable
	tbl.setMaxSize(100)
	tbl.add(HeaderField{Name: "aaaa", Value: "bbbb"}) // size 40
	tbl.add(HeaderField{Name: "cccc", Value: "dddd"}) // size 40
	if tbl.len() != 2 || tbl.size != 80 {
		t.Fatalf("table = %d entries %d bytes, want 2/80", tbl.len(), tbl.size)
	}
	tbl.add(HeaderField{Name: "eeee", Value: "ffff"}) // evicts oldest
	if tbl.len() != 2 || tbl.size != 80 {
		t.Fatalf("after eviction table = %d entries %d bytes, want 2/80", tbl.len(), tbl.size)
	}
	if f, ok := tbl.at(2); !ok || f.Name != "cccc" {
		t.Errorf("oldest surviving entry = %+v, want cccc", f)
	}
	// An entry larger than the table clears it entirely.
	tbl.add(HeaderField{Name: string(make([]byte, 200)), Value: ""})
	if tbl.len() != 0 || tbl.size != 0 {
		t.Errorf("giant entry left table at %d entries %d bytes, want empty", tbl.len(), tbl.size)
	}
}
