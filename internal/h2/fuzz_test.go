package h2

import (
	"bytes"
	"testing"
)

// FuzzHpackDecode ensures the HPACK decoder never panics and that
// whatever it accepts re-encodes to something it accepts again.
func FuzzHpackDecode(f *testing.F) {
	f.Add([]byte{0x82})
	f.Add([]byte{0x40, 0x0a, 'c', 'u', 's', 't', 'o', 'm', '-', 'k', 'e', 'y', 0x01, 'v'})
	f.Add([]byte{0x20})
	f.Add([]byte{0x80})
	f.Add([]byte{0x1f, 0x9a, 0x0a})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewHpackDecoder(4096)
		fields, err := d.DecodeFull(data)
		if err != nil {
			return
		}
		// Round-trip what decoded cleanly.
		e := NewHpackEncoder(4096)
		blk := e.AppendHeaderBlock(nil, fields)
		d2 := NewHpackDecoder(4096)
		fields2, err := d2.DecodeFull(blk)
		if err != nil {
			t.Fatalf("re-decode of re-encoded block failed: %v", err)
		}
		if len(fields2) != len(fields) {
			t.Fatalf("round trip changed field count: %d -> %d", len(fields), len(fields2))
		}
	})
}

// FuzzFrameScanner ensures arbitrary byte streams never panic the
// scanner and that chunking does not change the result.
func FuzzFrameScanner(f *testing.F) {
	f.Add(MarshalFrame(&PingFrame{}), 1)
	f.Add(MarshalFrame(&DataFrame{StreamID: 1, Data: []byte("abc")}), 3)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 2)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 {
			chunk = 1
		}
		var whole FrameScanner
		wf, werr := whole.Feed(data)

		var piecewise FrameScanner
		var pf []Frame
		var perr error
		for off := 0; off < len(data) && perr == nil; off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			var got []Frame
			got, perr = piecewise.Feed(data[off:end])
			pf = append(pf, got...)
		}
		if (werr == nil) != (perr == nil) {
			t.Fatalf("error mismatch: whole=%v piecewise=%v", werr, perr)
		}
		if werr == nil && len(wf) != len(pf) {
			t.Fatalf("frame count mismatch: whole=%d piecewise=%d", len(wf), len(pf))
		}
	})
}

// FuzzHuffman ensures decode never panics and encode/decode stays an
// identity.
func FuzzHuffman(f *testing.F) {
	f.Add([]byte("www.example.com"))
	f.Add([]byte{0x00, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary input to the decoder must not panic.
		_, _ = HuffmanDecode(nil, data) //nolint:errcheck // error is fine
		// Encoding then decoding must return the input.
		enc := AppendHuffmanString(nil, string(data))
		dec, err := HuffmanDecode(nil, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("huffman round trip mismatch")
		}
	})
}
