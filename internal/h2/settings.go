package h2

import "fmt"

// SettingID identifies a SETTINGS parameter (RFC 7540 section 6.5.2).
type SettingID uint16

// SETTINGS parameters defined by RFC 7540 section 6.5.2.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
	SettingMaxHeaderListSize    SettingID = 0x6
)

var settingNames = map[SettingID]string{
	SettingHeaderTableSize:      "SETTINGS_HEADER_TABLE_SIZE",
	SettingEnablePush:           "SETTINGS_ENABLE_PUSH",
	SettingMaxConcurrentStreams: "SETTINGS_MAX_CONCURRENT_STREAMS",
	SettingInitialWindowSize:    "SETTINGS_INITIAL_WINDOW_SIZE",
	SettingMaxFrameSize:         "SETTINGS_MAX_FRAME_SIZE",
	SettingMaxHeaderListSize:    "SETTINGS_MAX_HEADER_LIST_SIZE",
}

// String returns the RFC 7540 name of the setting.
func (id SettingID) String() string {
	if s, ok := settingNames[id]; ok {
		return s
	}
	return fmt.Sprintf("SETTINGS_UNKNOWN_0x%x", uint16(id))
}

// Valid checks the setting value against the constraints of RFC 7540
// section 6.5.2.
func (s Setting) Valid() error {
	switch s.ID {
	case SettingEnablePush:
		if s.Val != 0 && s.Val != 1 {
			return ConnectionError{Code: ErrCodeProtocol, Reason: "ENABLE_PUSH not boolean"}
		}
	case SettingInitialWindowSize:
		if s.Val > MaxWindowSize {
			return ConnectionError{Code: ErrCodeFlowControl, Reason: "INITIAL_WINDOW_SIZE too large"}
		}
	case SettingMaxFrameSize:
		if s.Val < DefaultMaxFrameSize || s.Val > MaxAllowedFrameSize {
			return ConnectionError{Code: ErrCodeProtocol, Reason: "MAX_FRAME_SIZE out of range"}
		}
	}
	return nil
}

// Settings holds an endpoint's view of its peer's (or its own)
// SETTINGS parameters. The zero value is not meaningful; construct
// with DefaultSettings.
type Settings struct {
	// HeaderTableSize is the HPACK dynamic table size.
	HeaderTableSize uint32

	// EnablePush permits PUSH_PROMISE frames.
	EnablePush bool

	// MaxConcurrentStreams caps concurrently open streams. Zero means
	// unlimited (the RFC leaves it initially unset).
	MaxConcurrentStreams uint32

	// InitialWindowSize is the initial per-stream flow-control window.
	InitialWindowSize uint32

	// MaxFrameSize is the largest frame payload the endpoint accepts.
	MaxFrameSize uint32

	// MaxHeaderListSize advises a cap on decoded header lists. Zero
	// means unset.
	MaxHeaderListSize uint32
}

// DefaultSettings returns the initial values mandated by RFC 7540
// section 6.5.2.
func DefaultSettings() Settings {
	return Settings{
		HeaderTableSize:      4096,
		EnablePush:           true,
		MaxConcurrentStreams: 0,
		InitialWindowSize:    DefaultInitialWindowSize,
		MaxFrameSize:         DefaultMaxFrameSize,
		MaxHeaderListSize:    0,
	}
}

// Apply folds the parameters carried by f into s, returning the first
// validation error encountered.
func (s *Settings) Apply(f *SettingsFrame) error {
	for _, st := range f.Settings {
		if err := st.Valid(); err != nil {
			return err
		}
		switch st.ID {
		case SettingHeaderTableSize:
			s.HeaderTableSize = st.Val
		case SettingEnablePush:
			s.EnablePush = st.Val == 1
		case SettingMaxConcurrentStreams:
			s.MaxConcurrentStreams = st.Val
		case SettingInitialWindowSize:
			s.InitialWindowSize = st.Val
		case SettingMaxFrameSize:
			s.MaxFrameSize = st.Val
		case SettingMaxHeaderListSize:
			s.MaxHeaderListSize = st.Val
		}
	}
	return nil
}

// Diff returns the settings list that transforms DefaultSettings into
// s, suitable for the first SETTINGS frame of a connection.
func (s Settings) Diff() []Setting {
	def := DefaultSettings()
	var out []Setting
	if s.HeaderTableSize != def.HeaderTableSize {
		out = append(out, Setting{SettingHeaderTableSize, s.HeaderTableSize})
	}
	if s.EnablePush != def.EnablePush {
		v := uint32(0)
		if s.EnablePush {
			v = 1
		}
		out = append(out, Setting{SettingEnablePush, v})
	}
	if s.MaxConcurrentStreams != def.MaxConcurrentStreams {
		out = append(out, Setting{SettingMaxConcurrentStreams, s.MaxConcurrentStreams})
	}
	if s.InitialWindowSize != def.InitialWindowSize {
		out = append(out, Setting{SettingInitialWindowSize, s.InitialWindowSize})
	}
	if s.MaxFrameSize != def.MaxFrameSize {
		out = append(out, Setting{SettingMaxFrameSize, s.MaxFrameSize})
	}
	if s.MaxHeaderListSize != def.MaxHeaderListSize {
		out = append(out, Setting{SettingMaxHeaderListSize, s.MaxHeaderListSize})
	}
	return out
}
