package h2

import (
	"bytes"
	"testing"
)

func TestPostBodyDelivered(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Method != "POST" {
			_ = w.WriteHeader(405) //nolint:errcheck // test handler
			return
		}
		// Echo the body back reversed, proving the handler ran after
		// the full body arrived.
		out := make([]byte, len(r.Body))
		for i, b := range r.Body {
			out[len(out)-1-i] = b
		}
		_, _ = w.Write(out) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	body := []byte("survey-answer=party-C&q2=yes")
	resp, err := cl.Post("example.test", "/submit", body, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(body))
	for i, b := range body {
		want[len(want)-1-i] = b
	}
	if !bytes.Equal(resp.Body, want) {
		t.Errorf("echo = %q, want %q", resp.Body, want)
	}
}

func TestPostLargeBodySpansWindows(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.SetHeader("x-len", itoa(len(r.Body)))
		_, _ = w.Write([]byte("ok")) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	body := bytes.Repeat([]byte("z"), 150<<10) // > 64KiB initial window
	resp, err := cl.Post("example.test", "/upload", body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.HeaderValue("x-len"); got != itoa(150<<10) {
		t.Errorf("server saw %s bytes, want %d", got, 150<<10)
	}
}

func TestPostEmptyBody(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		_, _ = w.Write([]byte(itoa(len(r.Body)))) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	resp, err := cl.Post("example.test", "/empty", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "0" {
		t.Errorf("body length reported %q, want 0", resp.Body)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
