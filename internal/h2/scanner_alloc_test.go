package h2

import (
	"bytes"
	"testing"
)

// TestFeedIntoMatchesFeed checks the zero-copy scanner emits the same
// frame sequence as the allocating one, across odd chunk boundaries.
func TestFeedIntoMatchesFeed(t *testing.T) {
	var wire []byte
	wire = AppendFrame(wire, &DataFrame{StreamID: 1, Data: []byte("hello")})
	wire = AppendFrame(wire, &HeadersFrame{StreamID: 3, BlockFragment: []byte{0x82}, EndHeaders: true})
	wire = AppendFrame(wire, &DataFrame{StreamID: 1, Data: []byte("world"), EndStream: true, Padded: true, PadLength: 3})
	wire = AppendFrame(wire, &RSTStreamFrame{StreamID: 3, Code: ErrCodeCancel})

	var ref FrameScanner
	want, err := ref.Feed(wire)
	if err != nil {
		t.Fatal(err)
	}

	var sc FrameScanner
	var got []Frame
	for i := 0; i < len(wire); i += 5 {
		end := i + 5
		if end > len(wire) {
			end = len(wire)
		}
		err := sc.FeedInto(wire[i:end], func(f Frame) error {
			// DATA frames are scratch: snapshot what the test compares.
			if df, ok := f.(*DataFrame); ok {
				cp := *df
				cp.Data = append([]byte(nil), df.Data...)
				got = append(got, &cp)
				return nil
			}
			got = append(got, f)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if sc.Buffered() != 0 {
		t.Errorf("%d bytes left buffered", sc.Buffered())
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		wd, wOK := want[i].(*DataFrame)
		gd, gOK := got[i].(*DataFrame)
		if wOK != gOK {
			t.Fatalf("frame %d: type %T vs %T", i, got[i], want[i])
		}
		if wOK {
			if gd.StreamID != wd.StreamID || gd.EndStream != wd.EndStream || !bytes.Equal(gd.Data, wd.Data) {
				t.Errorf("frame %d: %+v, want %+v", i, gd, wd)
			}
			continue
		}
		if got[i].Header() != want[i].Header() {
			t.Errorf("frame %d header: %v, want %v", i, got[i].Header(), want[i].Header())
		}
	}
}

// TestFeedIntoDataZeroAlloc proves DATA frames — the hot frame type
// in every trial — cost zero allocations through FeedInto.
func TestFeedIntoDataZeroAlloc(t *testing.T) {
	wire := AppendFrame(nil, &DataFrame{StreamID: 1, Data: make([]byte, 1400)})
	var sc FrameScanner
	emit := func(f Frame) error { return nil }
	for i := 0; i < 8; i++ {
		if err := sc.FeedInto(wire, emit); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := sc.FeedInto(wire, emit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("FeedInto DATA steady state: %.1f allocs/op, want 0", allocs)
	}
}
