package h2

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// ConnConfig tunes a Conn endpoint.
type ConnConfig struct {
	// Settings are the local settings announced to the peer. The zero
	// value means DefaultSettings.
	Settings Settings

	// DataChunkSize caps the payload of each DATA frame the write
	// scheduler emits. Smaller chunks increase interleaving across
	// concurrent streams. Zero means the peer's SETTINGS_MAX_FRAME_SIZE.
	DataChunkSize int

	// AcceptPush lets a client accept server pushes instead of
	// refusing them (server-side endpoints ignore it).
	AcceptPush bool
}

func (c ConnConfig) withDefaults() ConnConfig {
	if c.Settings == (Settings{}) {
		c.Settings = DefaultSettings()
	}
	return c
}

// connStream is the per-stream bookkeeping shared by client and
// server roles.
type connStream struct {
	id    uint32
	state StreamStateMachine

	// Send side, guarded by Conn.mu.
	sendBuf []byte // body bytes not yet framed
	sendEnd bool   // END_STREAM after sendBuf drains
	sendWin FlowWindow
	sendErr error

	// weight is the RFC 7540 section 5.3 priority weight (1-256; zero
	// means the default 16). credit is the smooth-WRR accumulator the
	// scheduler uses.
	weight int
	credit int

	// Receive side.
	recvMu     sync.Mutex
	recvCond   *sync.Cond
	recvBuf    []byte
	recvEnd    bool
	recvErr    error
	hdrs       []HeaderField
	hdrsReady  bool
	dispatched bool // server: handler already started
}

func newConnStream(id uint32, sendWin int32) *connStream {
	s := &connStream{id: id, sendWin: NewFlowWindow(sendWin)}
	s.recvCond = sync.NewCond(&s.recvMu)
	return s
}

// deliverData appends DATA payload for the stream's reader.
func (s *connStream) deliverData(p []byte, end bool) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	s.recvBuf = append(s.recvBuf, p...)
	if end {
		s.recvEnd = true
	}
	s.recvCond.Broadcast()
}

// deliverHeaders records the decoded header list.
func (s *connStream) deliverHeaders(h []HeaderField, end bool) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	s.hdrs = h
	s.hdrsReady = true
	if end {
		s.recvEnd = true
	}
	s.recvCond.Broadcast()
}

// fail aborts the stream's reader with err.
func (s *connStream) fail(err error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if s.recvErr == nil {
		s.recvErr = err
	}
	s.recvCond.Broadcast()
}

// Conn is one HTTP/2 connection endpoint over a net.Conn. It is used
// by both Server (per accepted connection) and Client.
//
// All frame writes are funneled through a single writer goroutine: a
// FIFO control queue for non-DATA frames and a round-robin scheduler
// for DATA, which is what produces multiplexed (interleaved) object
// transmission when several streams have pending data — the behaviour
// the paper's attack targets.
type Conn struct {
	nc     net.Conn
	cfg    ConnConfig
	client bool

	mu         sync.Mutex
	cond       *sync.Cond // signals the writer goroutine
	ctrlQ      []Frame
	streams    map[uint32]*connStream
	dataRing   []uint32   // streams with pending data (scheduling set)
	sendWin    FlowWindow // connection-level send window
	closed     bool
	closeErr   error
	goAwaySent bool
	draining   bool // GOAWAY exchanged: no new streams, finish in-flight

	peerSettings  Settings
	localSettings Settings

	henc *HpackEncoder // guarded by mu
	hdec *HpackDecoder // read-loop only

	fr *Framer // write side guarded by writer goroutine; read side by read loop

	nextStreamID uint32 // client: next request stream id

	// continuation state (read loop only)
	contStreamID uint32
	contBlock    []byte
	contEnd      bool

	recvConnWin int64 // receive-side connection window consumed since last update

	// pendingWeight holds HEADERS-carried priority weights for streams
	// not yet created.
	pendingWeight map[uint32]int

	onRequest func(*Conn, *connStream)         // server: dispatch a decoded request
	onPush    func(path string, s *connStream) // client: pushed stream arrived

	nextPushID uint32 // server: next even stream id for pushes

	wg sync.WaitGroup
}

func newConn(nc net.Conn, cfg ConnConfig, client bool) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		nc:            nc,
		cfg:           cfg,
		client:        client,
		streams:       make(map[uint32]*connStream),
		pendingWeight: make(map[uint32]int),
		sendWin:       NewFlowWindow(DefaultInitialWindowSize),
		peerSettings:  DefaultSettings(),
		localSettings: cfg.Settings,
		henc:          NewHpackEncoder(DefaultSettings().HeaderTableSize),
		hdec:          NewHpackDecoder(cfg.Settings.HeaderTableSize),
		fr:            NewFramer(nc, nc),
		nextStreamID:  1,
		nextPushID:    2,
	}
	c.cond = sync.NewCond(&c.mu)
	c.fr.MaxReadFrameSize = cfg.Settings.MaxFrameSize
	return c
}

// start launches the reader and writer goroutines after the preface
// has been exchanged.
func (c *Conn) start() {
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		err := c.readLoop()
		c.shutdown(err)
	}()
	go func() {
		defer c.wg.Done()
		c.writeLoop()
	}()
}

// Close tears the connection down and waits for its goroutines.
func (c *Conn) Close() error {
	c.shutdown(ErrClosed)
	c.wg.Wait()
	return nil
}

// shutdown marks the connection closed, fails all streams, and closes
// the socket so both loops unblock.
func (c *Conn) shutdown(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	if err == nil {
		err = ErrClosed
	}
	c.closeErr = err
	streams := make([]*connStream, 0, len(c.streams))
	for _, s := range c.streams {
		streams = append(streams, s)
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	for _, s := range streams {
		s.fail(err)
	}
	_ = c.nc.Close() //nolint:errcheck // best-effort teardown
}

// goAway marks the connection draining and sends GOAWAY(NO_ERROR)
// once, acknowledging all streams seen so far.
func (c *Conn) goAway() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	if c.goAwaySent || c.closed {
		return
	}
	c.goAwaySent = true
	// Advertise the maximum stream id: every request already in
	// flight (including ones racing with this GOAWAY) will still be
	// served; the peer's draining state stops new ones. This is the
	// single-GOAWAY variant of RFC 7540 section 6.8's graceful
	// shutdown dance.
	c.ctrlQ = append(c.ctrlQ, &GoAwayFrame{LastStreamID: MaxWindowSize, Code: ErrCodeNo})
	c.cond.Broadcast()
}

// drained reports whether no streams remain (or the connection died).
func (c *Conn) drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.streams) == 0 || c.closed
}

// Err returns the error the connection terminated with, or nil while
// it is still live.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		return nil
	}
	return c.closeErr
}

// enqueueCtrl queues a non-DATA frame for the writer goroutine.
func (c *Conn) enqueueCtrl(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.closeErr
	}
	c.ctrlQ = append(c.ctrlQ, f)
	c.cond.Broadcast()
	return nil
}

// enqueueData appends body bytes to a stream's send buffer; end marks
// the final chunk.
func (c *Conn) enqueueData(s *connStream, p []byte, end bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.closeErr
	}
	if s.sendErr != nil {
		return s.sendErr
	}
	if len(p) > 0 {
		s.sendBuf = append(s.sendBuf, p...)
	}
	if end {
		s.sendEnd = true
	}
	c.scheduleLocked(s.id)
	c.cond.Broadcast()
	return nil
}

// scheduleLocked adds id to the data ring if absent. Caller holds mu.
func (c *Conn) scheduleLocked(id uint32) {
	for _, v := range c.dataRing {
		if v == id {
			return
		}
	}
	c.dataRing = append(c.dataRing, id)
}

// unscheduleLocked removes id from the data ring. Caller holds mu.
func (c *Conn) unscheduleLocked(id uint32) {
	for i, v := range c.dataRing {
		if v == id {
			c.dataRing = append(c.dataRing[:i], c.dataRing[i+1:]...)
			return
		}
	}
}

// writeLoop is the single writer goroutine: control frames first, then
// one DATA chunk per eligible stream in round-robin order.
func (c *Conn) writeLoop() {
	for {
		c.mu.Lock()
		for !c.closed && len(c.ctrlQ) == 0 && !c.dataReadyLocked() {
			c.cond.Wait()
		}
		if c.closed && len(c.ctrlQ) == 0 {
			c.mu.Unlock()
			return
		}
		if len(c.ctrlQ) > 0 {
			f := c.ctrlQ[0]
			c.ctrlQ = c.ctrlQ[1:]
			c.mu.Unlock()
			if err := c.fr.WriteFrame(f); err != nil {
				c.shutdown(fmt.Errorf("h2: write: %w", err))
				return
			}
			continue
		}
		f, ok := c.nextDataFrameLocked()
		c.mu.Unlock()
		if !ok {
			continue
		}
		if err := c.fr.WriteFrame(f); err != nil {
			c.shutdown(fmt.Errorf("h2: write: %w", err))
			return
		}
	}
}

// dataReadyLocked reports whether any ring stream can make progress
// under current flow-control windows. Caller holds mu.
func (c *Conn) dataReadyLocked() bool {
	if len(c.dataRing) == 0 {
		return false
	}
	for _, id := range c.dataRing {
		s := c.streams[id]
		if s == nil {
			continue
		}
		if len(s.sendBuf) == 0 && s.sendEnd {
			return true // bare END_STREAM frame needs no window
		}
		if len(s.sendBuf) > 0 && c.sendWin.Available() > 0 && s.sendWin.Available() > 0 {
			return true
		}
	}
	return false
}

// nextDataFrameLocked picks the next stream by smooth weighted
// round-robin over the streams with sendable data (RFC 7540 section
// 5.3 priority weights; default weight 16) and cuts one DATA frame
// within flow-control limits. Caller holds mu.
func (c *Conn) nextDataFrameLocked() (Frame, bool) {
	var (
		best  *connStream
		total int
	)
	for i := 0; i < len(c.dataRing); i++ {
		id := c.dataRing[i]
		s := c.streams[id]
		if s == nil || (len(s.sendBuf) == 0 && !s.sendEnd) {
			c.dataRing = append(c.dataRing[:i], c.dataRing[i+1:]...)
			i--
			continue
		}
		eligible := len(s.sendBuf) == 0 || // bare END_STREAM needs no window
			(c.sendWin.Available() > 0 && s.sendWin.Available() > 0)
		if !eligible {
			continue
		}
		w := s.weight
		if w <= 0 {
			w = 16
		}
		total += w
		s.credit += w
		if best == nil || s.credit > best.credit {
			best = s
		}
	}
	if best == nil {
		return nil, false
	}
	best.credit -= total
	id := best.id

	if len(best.sendBuf) == 0 {
		// Bare END_STREAM.
		best.sendEnd = false
		c.unscheduleLocked(id)
		_, _ = best.state.Transition(EvSendEndStream) //nolint:errcheck // local bookkeeping
		c.reapLocked(best)
		return &DataFrame{StreamID: id, EndStream: true}, true
	}

	chunk := c.chunkSizeLocked()
	if chunk > len(best.sendBuf) {
		chunk = len(best.sendBuf)
	}
	chunk = int(c.sendWin.ConsumeUpTo(int64(chunk)))
	if chunk > 0 {
		got := best.sendWin.ConsumeUpTo(int64(chunk))
		if got < int64(chunk) {
			// Return unused connection credit.
			_ = c.sendWin.Replenish(int64(chunk) - got) //nolint:errcheck // reversing a consume cannot overflow
			chunk = int(got)
		}
	}
	if chunk == 0 {
		return nil, false
	}
	data := make([]byte, chunk)
	copy(data, best.sendBuf[:chunk])
	best.sendBuf = best.sendBuf[chunk:]
	end := false
	if len(best.sendBuf) == 0 && best.sendEnd {
		end = true
		best.sendEnd = false
		c.unscheduleLocked(id)
		_, _ = best.state.Transition(EvSendEndStream) //nolint:errcheck // local bookkeeping
		c.reapLocked(best)
	}
	return &DataFrame{StreamID: id, Data: data, EndStream: end}, true
}

// reapLocked removes a fully-closed stream from the table so
// long-lived connections do not accumulate dead entries; it also
// wakes a pending drain. Caller holds mu.
func (c *Conn) reapLocked(s *connStream) {
	if s.state.State() != StateClosed {
		return
	}
	delete(c.streams, s.id)
	c.cond.Broadcast()
}

func (c *Conn) chunkSizeLocked() int {
	max := int(c.peerSettings.MaxFrameSize)
	if c.cfg.DataChunkSize > 0 && c.cfg.DataChunkSize < max {
		return c.cfg.DataChunkSize
	}
	return max
}

// writeHeaders HPACK-encodes fields and enqueues HEADERS (+
// CONTINUATION) frames for the stream.
func (c *Conn) writeHeaders(s *connStream, fields []HeaderField, endStream bool) error {
	return c.writeHeadersPrio(s, fields, endStream, nil)
}

// writeHeadersPrio is writeHeaders with optional RFC 7540 section 5.3
// priority information on the first HEADERS frame.
func (c *Conn) writeHeadersPrio(s *connStream, fields []HeaderField, endStream bool, prio *PriorityParam) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.closeErr
	}
	block := c.henc.AppendHeaderBlock(nil, fields)
	maxFrag := int(c.peerSettings.MaxFrameSize)
	first := true
	for first || len(block) > 0 {
		frag := block
		if len(frag) > maxFrag {
			frag = frag[:maxFrag]
		}
		block = block[len(frag):]
		endHeaders := len(block) == 0
		if first {
			hf := &HeadersFrame{
				StreamID:      s.id,
				BlockFragment: frag,
				EndHeaders:    endHeaders,
				EndStream:     endStream && len(s.sendBuf) == 0 && !s.sendEnd,
			}
			if prio != nil {
				hf.HasPriority = true
				hf.Priority = *prio
			}
			c.ctrlQ = append(c.ctrlQ, hf)
			ev := EvSendHeaders
			if endStream {
				ev = EvSendEndStream
			}
			_, _ = s.state.Transition(ev) //nolint:errcheck // local bookkeeping
			first = false
		} else {
			c.ctrlQ = append(c.ctrlQ, &ContinuationFrame{
				StreamID:      s.id,
				BlockFragment: frag,
				EndHeaders:    endHeaders,
			})
		}
	}
	c.cond.Broadcast()
	return nil
}

// resetStream sends RST_STREAM and aborts local stream state.
func (c *Conn) resetStream(id uint32, code ErrCode) {
	c.mu.Lock()
	s := c.streams[id]
	if s != nil {
		delete(c.streams, id)
		c.unscheduleLocked(id)
		s.sendErr = StreamError{StreamID: id, Code: code}
	}
	if !c.closed {
		c.ctrlQ = append(c.ctrlQ, &RSTStreamFrame{StreamID: id, Code: code})
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	if s != nil {
		s.fail(StreamError{StreamID: id, Code: code})
	}
}

// readLoop dispatches inbound frames until the connection dies.
func (c *Conn) readLoop() error {
	for {
		f, err := c.fr.ReadFrame()
		if err != nil {
			return fmt.Errorf("h2: read: %w", err)
		}
		if err := c.dispatch(f); err != nil {
			var se StreamError
			if errors.As(err, &se) {
				c.resetStream(se.StreamID, se.Code)
				continue
			}
			var ce ConnectionError
			if errors.As(err, &ce) {
				_ = c.enqueueCtrl(&GoAwayFrame{Code: ce.Code, DebugData: []byte(ce.Reason)}) //nolint:errcheck // already failing
			}
			return err
		}
	}
}

// dispatch handles one inbound frame.
func (c *Conn) dispatch(f Frame) error {
	// A header block in progress admits only CONTINUATION for the same
	// stream (RFC 7540 section 6.10).
	if c.contStreamID != 0 {
		cf, ok := f.(*ContinuationFrame)
		if !ok || cf.StreamID != c.contStreamID {
			return ConnectionError{Code: ErrCodeProtocol, Reason: "expected CONTINUATION"}
		}
		c.contBlock = append(c.contBlock, cf.BlockFragment...)
		if cf.EndHeaders {
			id, block, end := c.contStreamID, c.contBlock, c.contEnd
			c.contStreamID, c.contBlock = 0, nil
			return c.finishHeaders(id, block, end)
		}
		return nil
	}

	switch fv := f.(type) {
	case *SettingsFrame:
		return c.handleSettings(fv)
	case *PingFrame:
		if !fv.Ack {
			return c.enqueueCtrl(&PingFrame{Ack: true, Data: fv.Data})
		}
		return nil
	case *WindowUpdateFrame:
		return c.handleWindowUpdate(fv)
	case *HeadersFrame:
		if fv.HasPriority {
			c.mu.Lock()
			if s := c.streams[fv.StreamID]; s != nil {
				s.weight = int(fv.Priority.Weight) + 1
			} else {
				c.pendingWeight[fv.StreamID] = int(fv.Priority.Weight) + 1
			}
			c.mu.Unlock()
		}
		if !fv.EndHeaders {
			c.contStreamID = fv.StreamID
			c.contBlock = append([]byte(nil), fv.BlockFragment...)
			c.contEnd = fv.EndStream
			return nil
		}
		return c.finishHeaders(fv.StreamID, fv.BlockFragment, fv.EndStream)
	case *DataFrame:
		return c.handleData(fv)
	case *RSTStreamFrame:
		c.mu.Lock()
		s := c.streams[fv.StreamID]
		if s != nil {
			delete(c.streams, fv.StreamID)
			c.unscheduleLocked(fv.StreamID)
			s.sendErr = StreamError{StreamID: fv.StreamID, Code: fv.Code}
		}
		c.mu.Unlock()
		if s != nil {
			s.fail(StreamError{StreamID: fv.StreamID, Code: fv.Code, Reason: "reset by peer"})
		}
		return nil
	case *PriorityFrame:
		c.mu.Lock()
		if s := c.streams[fv.StreamID]; s != nil {
			s.weight = int(fv.Priority.Weight) + 1
		}
		c.mu.Unlock()
		return nil
	case *GoAwayFrame:
		if fv.Code == ErrCodeNo {
			// Graceful shutdown: stop opening streams, let in-flight
			// ones finish (RFC 7540 section 6.8).
			c.mu.Lock()
			c.draining = true
			var orphans []*connStream
			for id, s := range c.streams {
				if id > fv.LastStreamID && c.client == ClientStreamID(id) {
					delete(c.streams, id)
					orphans = append(orphans, s)
				}
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			for _, s := range orphans {
				s.fail(fmt.Errorf("h2: stream refused by GOAWAY: %w", ErrClosed))
			}
			return nil
		}
		return fmt.Errorf("h2: peer sent GOAWAY: %v: %w", fv.Code, ErrClosed)
	case *UnknownFrame:
		return nil
	case *PushPromiseFrame:
		if !c.client {
			return ConnectionError{Code: ErrCodeProtocol, Reason: "client sent PUSH_PROMISE"}
		}
		if !c.cfg.AcceptPush {
			// Refuse pushes politely: reset the promised stream.
			c.mu.Lock()
			c.ctrlQ = append(c.ctrlQ, &RSTStreamFrame{StreamID: fv.PromiseID, Code: ErrCodeRefusedStream})
			c.cond.Broadcast()
			c.mu.Unlock()
			return nil
		}
		return c.acceptPush(fv)
	case *ContinuationFrame:
		return ConnectionError{Code: ErrCodeProtocol, Reason: "CONTINUATION without HEADERS"}
	default:
		return nil
	}
}

func (c *Conn) handleSettings(f *SettingsFrame) error {
	if f.Ack {
		return nil
	}
	c.mu.Lock()
	old := c.peerSettings.InitialWindowSize
	err := c.peerSettings.Apply(f)
	if err == nil && c.peerSettings.InitialWindowSize != old {
		delta := int64(c.peerSettings.InitialWindowSize) - int64(old)
		for _, s := range c.streams {
			if aerr := s.sendWin.Adjust(delta); aerr != nil && err == nil {
				err = aerr
			}
		}
	}
	if err == nil {
		c.henc.SetMaxDynamicTableSize(c.peerSettings.HeaderTableSize)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.enqueueCtrl(&SettingsFrame{Ack: true})
}

func (c *Conn) handleWindowUpdate(f *WindowUpdateFrame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.StreamID == 0 {
		if err := c.sendWin.Replenish(int64(f.Increment)); err != nil {
			return err
		}
	} else if s := c.streams[f.StreamID]; s != nil {
		if err := s.sendWin.Replenish(int64(f.Increment)); err != nil {
			return StreamError{StreamID: f.StreamID, Code: ErrCodeFlowControl, Reason: "window overflow"}
		}
	}
	c.cond.Broadcast()
	return nil
}

func (c *Conn) handleData(f *DataFrame) error {
	c.mu.Lock()
	s := c.streams[f.StreamID]
	c.mu.Unlock()
	if s == nil {
		// Tolerate data for streams we already forgot (e.g. after RST).
		return c.replenishRecvWindows(f.StreamID, len(f.Data), false)
	}
	s.deliverData(f.Data, f.EndStream)
	if f.EndStream {
		c.mu.Lock()
		_, _ = s.state.Transition(EvRecvEndStream) //nolint:errcheck // local bookkeeping
		c.reapLocked(s)
		dispatch := !c.client && !s.dispatched
		if dispatch {
			s.dispatched = true
		}
		onReq := c.onRequest
		c.mu.Unlock()
		if dispatch && onReq != nil {
			// The request carried a body: the handler starts now that
			// the last DATA frame has arrived.
			onReq(c, s)
		}
	}
	return c.replenishRecvWindows(f.StreamID, len(f.Data), !f.EndStream)
}

// replenishRecvWindows returns receive-side flow-control credit for
// consumed DATA bytes, batching connection updates.
func (c *Conn) replenishRecvWindows(streamID uint32, n int, updateStream bool) error {
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	c.recvConnWin += int64(n)
	sendConn := c.recvConnWin >= DefaultInitialWindowSize/2
	if sendConn {
		c.recvConnWin = 0
	}
	c.mu.Unlock()
	if sendConn {
		if err := c.enqueueCtrl(&WindowUpdateFrame{StreamID: 0, Increment: DefaultInitialWindowSize / 2}); err != nil {
			return err
		}
	}
	if updateStream {
		return c.enqueueCtrl(&WindowUpdateFrame{StreamID: streamID, Increment: uint32(n)})
	}
	return nil
}

// acceptPush registers a server-initiated stream announced by
// PUSH_PROMISE and hands it to the client layer.
func (c *Conn) acceptPush(f *PushPromiseFrame) error {
	fields, err := c.hdec.DecodeFull(f.BlockFragment)
	if err != nil {
		return err
	}
	path := ""
	for _, hf := range fields {
		if hf.Name == ":path" {
			path = hf.Value
		}
	}
	c.mu.Lock()
	s := newConnStream(f.PromiseID, int32(c.peerSettings.InitialWindowSize))
	_, _ = s.state.Transition(EvRecvPushPromise) //nolint:errcheck // local bookkeeping
	c.streams[f.PromiseID] = s
	onPush := c.onPush
	c.mu.Unlock()
	if onPush != nil {
		onPush(path, s)
	}
	return nil
}

// push reserves a server-initiated stream: it emits PUSH_PROMISE on
// the parent stream and returns the promised stream, on which the
// caller writes the pushed response. Server connections only.
func (c *Conn) push(parent *connStream, fields []HeaderField) (*connStream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, c.closeErr
	}
	if c.client {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "client cannot push"}
	}
	if !c.peerSettings.EnablePush {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "peer disabled push"}
	}
	id := c.nextPushID
	c.nextPushID += 2
	s := newConnStream(id, int32(c.peerSettings.InitialWindowSize))
	_, _ = s.state.Transition(EvSendPushPromise) //nolint:errcheck // local bookkeeping
	c.streams[id] = s
	block := c.henc.AppendHeaderBlock(nil, fields)
	c.ctrlQ = append(c.ctrlQ, &PushPromiseFrame{
		StreamID:      parent.id,
		PromiseID:     id,
		BlockFragment: block,
		EndHeaders:    true,
	})
	c.cond.Broadcast()
	return s, nil
}

// finishHeaders decodes a complete header block and hands it to the
// role-specific layer.
func (c *Conn) finishHeaders(id uint32, block []byte, endStream bool) error {
	fields, err := c.hdec.DecodeFull(block)
	if err != nil {
		return err
	}
	c.mu.Lock()
	s := c.streams[id]
	isNew := s == nil
	if isNew {
		if c.client {
			c.mu.Unlock()
			// A response for an unknown stream: ignore (stream may have
			// been reset locally).
			return nil
		}
		s = newConnStream(id, int32(c.peerSettings.InitialWindowSize))
		if w, ok := c.pendingWeight[id]; ok {
			s.weight = w
			delete(c.pendingWeight, id)
		}
		c.streams[id] = s
	}
	ev := EvRecvHeaders
	if endStream {
		ev = EvRecvEndStream
	}
	_, _ = s.state.Transition(ev) //nolint:errcheck // tolerated: trailers etc.
	// Requests without a body dispatch immediately; ones with a body
	// wait for the final DATA frame (see handleData).
	dispatch := isNew && endStream && !s.dispatched
	if dispatch {
		s.dispatched = true
	}
	onReq := c.onRequest
	c.mu.Unlock()

	s.deliverHeaders(fields, endStream)
	if dispatch && onReq != nil {
		onReq(c, s)
	}
	return nil
}
