// Package h2 implements the HTTP/2 wire protocol (RFC 7540) and HPACK
// header compression (RFC 7541) from scratch on top of the standard
// library only.
//
// The package provides three layers:
//
//   - Framing: FrameHeader, the concrete Frame types, and Framer, which
//     reads and writes frames over any io.ReadWriter.
//   - HPACK: Encoder and Decoder with the full static table, a dynamic
//     table, and canonical Huffman coding.
//   - Endpoints: Server and Client, which speak HTTP/2 over any net.Conn
//     (cleartext, prior-knowledge mode) with stream multiplexing and
//     flow control.
//
// The same framing and HPACK layers are reused by the discrete-event
// simulation endpoints in internal/h2sim, so the bytes on the simulated
// wire are genuine RFC 7540 bytes.
package h2

import (
	"errors"
	"fmt"
)

// ErrCode is an HTTP/2 error code as defined in RFC 7540 section 7.
// Error codes appear in RST_STREAM and GOAWAY frames.
type ErrCode uint32

// HTTP/2 error codes (RFC 7540 section 7).
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

var errCodeNames = map[ErrCode]string{
	ErrCodeNo:                 "NO_ERROR",
	ErrCodeProtocol:           "PROTOCOL_ERROR",
	ErrCodeInternal:           "INTERNAL_ERROR",
	ErrCodeFlowControl:        "FLOW_CONTROL_ERROR",
	ErrCodeSettingsTimeout:    "SETTINGS_TIMEOUT",
	ErrCodeStreamClosed:       "STREAM_CLOSED",
	ErrCodeFrameSize:          "FRAME_SIZE_ERROR",
	ErrCodeRefusedStream:      "REFUSED_STREAM",
	ErrCodeCancel:             "CANCEL",
	ErrCodeCompression:        "COMPRESSION_ERROR",
	ErrCodeConnect:            "CONNECT_ERROR",
	ErrCodeEnhanceYourCalm:    "ENHANCE_YOUR_CALM",
	ErrCodeInadequateSecurity: "INADEQUATE_SECURITY",
	ErrCodeHTTP11Required:     "HTTP_1_1_REQUIRED",
}

// String returns the RFC 7540 name of the error code, or a hex value
// for unknown codes.
func (e ErrCode) String() string {
	if s, ok := errCodeNames[e]; ok {
		return s
	}
	return fmt.Sprintf("ERR_CODE_0x%x", uint32(e))
}

// ConnectionError is a connection-level protocol error (RFC 7540
// section 5.4.1). A ConnectionError requires the endpoint to send a
// GOAWAY frame and close the connection.
type ConnectionError struct {
	Code   ErrCode
	Reason string
}

// Error implements the error interface.
func (e ConnectionError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("h2: connection error: %s", e.Code)
	}
	return fmt.Sprintf("h2: connection error: %s: %s", e.Code, e.Reason)
}

// StreamError is a stream-level protocol error (RFC 7540 section
// 5.4.2). A StreamError requires the endpoint to send a RST_STREAM
// frame for the affected stream.
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

// Error implements the error interface.
func (e StreamError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("h2: stream %d error: %s", e.StreamID, e.Code)
	}
	return fmt.Sprintf("h2: stream %d error: %s: %s", e.StreamID, e.Code, e.Reason)
}

// Sentinel errors returned by framing and endpoint operations.
var (
	// ErrFrameTooLarge is returned when a frame exceeds the reader's
	// SETTINGS_MAX_FRAME_SIZE.
	ErrFrameTooLarge = errors.New("h2: frame too large")

	// ErrClosed is returned by operations on a closed connection or
	// stream.
	ErrClosed = errors.New("h2: closed")

	// ErrBadPreface is returned by a server when the client connection
	// preface is malformed.
	ErrBadPreface = errors.New("h2: bad client preface")

	// ErrHeaderListTooLong is returned by the HPACK decoder when the
	// decoded header list exceeds the configured limit.
	ErrHeaderListTooLong = errors.New("h2: header list too long")
)
