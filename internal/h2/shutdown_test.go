package h2

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		_, _ = w.Write([]byte("finished")) //nolint:errcheck // test handler
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // ends when listener closes

	cl, err := Dial(ln.Addr().String(), ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // teardown

	cs, err := cl.StartGet("example.test", "/slow")
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Shut down while the request is in flight; release the handler
	// shortly after so the drain can complete.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	resp, err := cs.Response()
	if err != nil {
		t.Fatalf("in-flight request failed during graceful shutdown: %v", err)
	}
	if string(resp.Body) != "finished" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestGoAwayRejectsNewRequests(t *testing.T) {
	release := make(chan struct{})
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		<-release
		_, _ = w.Write([]byte("ok")) //nolint:errcheck // test handler
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // ends when listener closes

	cl, err := Dial(ln.Addr().String(), ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // teardown
	cs, err := cl.StartGet("example.test", "/pending")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()

	// Wait until the client has processed the GOAWAY, then new
	// requests must be refused locally.
	deadline := time.After(3 * time.Second)
	for {
		_, err := cl.StartGet("example.test", "/new")
		if err != nil {
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("unexpected error class: %v", err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("client kept accepting new requests after GOAWAY")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(release)
	if _, err := cs.Response(); err != nil {
		t.Fatalf("pre-GOAWAY request failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestStreamsReapedAfterCompletion(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	for i := 0; i < 10; i++ {
		if _, err := cl.Get("example.test", "/x"); err != nil {
			t.Fatal(err)
		}
	}
	cl.conn.mu.Lock()
	n := len(cl.conn.streams)
	cl.conn.mu.Unlock()
	if n != 0 {
		t.Errorf("client retains %d dead streams", n)
	}
}
