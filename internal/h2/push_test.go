package h2

import (
	"sync"
	"testing"
	"time"
)

// pushTestHandler serves /page (pushing /style.css first) and the
// pushed resource itself.
func pushTestHandler(t *testing.T) Handler {
	return HandlerFunc(func(w *ResponseWriter, r *Request) {
		switch r.Path {
		case "/page":
			if err := w.Push("/style.css", nil); err != nil {
				t.Errorf("Push: %v", err)
			}
			_, _ = w.Write([]byte("<html>page</html>")) //nolint:errcheck // test handler
		case "/style.css":
			w.SetHeader("content-type", "text/css")
			_, _ = w.Write([]byte("body{color:red}")) //nolint:errcheck // test handler
		default:
			_ = w.WriteHeader(404) //nolint:errcheck // test handler
		}
	})
}

func TestServerPushDelivered(t *testing.T) {
	cl := testServer(t, pushTestHandler(t), ConnConfig{}, ConnConfig{AcceptPush: true})

	var (
		mu     sync.Mutex
		pushes = map[string]*ClientStream{}
		gotOne = make(chan struct{}, 4)
	)
	cl.OnPush(func(path string, cs *ClientStream) {
		mu.Lock()
		pushes[path] = cs
		mu.Unlock()
		gotOne <- struct{}{}
	})

	resp, err := cl.Get("example.test", "/page")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "<html>page</html>" {
		t.Errorf("page body = %q", resp.Body)
	}
	select {
	case <-gotOne:
	case <-time.After(5 * time.Second):
		t.Fatal("no push arrived")
	}
	mu.Lock()
	cs := pushes["/style.css"]
	mu.Unlock()
	if cs == nil {
		t.Fatalf("pushed paths = %v", pushes)
	}
	presp, err := cs.Response()
	if err != nil {
		t.Fatal(err)
	}
	if string(presp.Body) != "body{color:red}" {
		t.Errorf("pushed body = %q", presp.Body)
	}
	if presp.HeaderValue("content-type") != "text/css" {
		t.Errorf("pushed content-type = %q", presp.HeaderValue("content-type"))
	}
	if cs.StreamID()%2 != 0 {
		t.Errorf("pushed stream id %d is not server-initiated (even)", cs.StreamID())
	}
}

func TestPushRefusedWhenClientDoesNotAccept(t *testing.T) {
	pushErr := make(chan error, 1)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Path == "/page" {
			pushErr <- w.Push("/style.css", nil)
		}
		_, _ = w.Write([]byte("ok")) //nolint:errcheck // test handler
	})
	// Default client config: pushes are refused with RST_STREAM, but
	// the main response must be unaffected.
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	resp, err := cl.Get("example.test", "/page")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ok" {
		t.Errorf("body = %q", resp.Body)
	}
	select {
	case err := <-pushErr:
		// The push may succeed at the API level (refusal arrives
		// later as RST) or fail if the client announced ENABLE_PUSH=0;
		// either way the connection survives.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("handler never attempted the push")
	}
	if resp2, err := cl.Get("example.test", "/page"); err != nil || len(resp2.Body) == 0 {
		t.Fatalf("connection broken after refused push: %v", err)
	}
}

func TestPushDisabledBySettings(t *testing.T) {
	pushErr := make(chan error, 1)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		pushErr <- w.Push("/x", nil)
		_, _ = w.Write([]byte("ok")) //nolint:errcheck // test handler
	})
	ccfg := ConnConfig{Settings: func() Settings {
		s := DefaultSettings()
		s.EnablePush = false
		return s
	}()}
	cl := testServer(t, h, ConnConfig{}, ccfg)
	if _, err := cl.Get("example.test", "/page"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-pushErr:
		if err == nil {
			t.Error("push succeeded although the client sent ENABLE_PUSH=0")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran")
	}
}

func TestClientCannotPush(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	if _, err := cl.conn.push(&connStream{id: 1}, nil); err == nil {
		t.Error("client-side push accepted")
	}
}
