package h2

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// rfc7541 Huffman examples (Appendix C.4 / C.6 string literals).
var huffmanVectors = []struct {
	plain string
	coded string // hex
}{
	{"www.example.com", "f1e3c2e5f23a6ba0ab90f4ff"},
	{"no-cache", "a8eb10649cbf"},
	{"custom-key", "25a849e95ba97d7f"},
	{"custom-value", "25a849e95bb8e8b4bf"},
	{"302", "6402"},
	{"private", "aec3771a4b"},
	{"Mon, 21 Oct 2013 20:13:21 GMT", "d07abe941054d444a8200595040b8166e082a62d1bff"},
	{"https://www.example.com", "9d29ad171863c78f0b97c8e9ae82ae43d3"},
	{"307", "640eff"},
	{"gzip", "9bd9ab"},
}

func TestHuffmanEncodeVectors(t *testing.T) {
	for _, v := range huffmanVectors {
		got := AppendHuffmanString(nil, v.plain)
		if hex.EncodeToString(got) != v.coded {
			t.Errorf("encode %q = %x, want %s", v.plain, got, v.coded)
		}
		if n := HuffmanEncodeLength(v.plain); n != len(got) {
			t.Errorf("HuffmanEncodeLength(%q) = %d, want %d", v.plain, n, len(got))
		}
	}
}

func TestHuffmanDecodeVectors(t *testing.T) {
	for _, v := range huffmanVectors {
		raw, err := hex.DecodeString(v.coded)
		if err != nil {
			t.Fatalf("bad vector hex %q: %v", v.coded, err)
		}
		got, err := HuffmanDecode(nil, raw)
		if err != nil {
			t.Errorf("decode %s: %v", v.coded, err)
			continue
		}
		if string(got) != v.plain {
			t.Errorf("decode %s = %q, want %q", v.coded, got, v.plain)
		}
	}
}

func TestHuffmanRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		enc := AppendHuffmanString(nil, string(data))
		dec, err := HuffmanDecode(nil, enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanEncodeEmpty(t *testing.T) {
	if got := AppendHuffmanString(nil, ""); len(got) != 0 {
		t.Errorf("encode empty = %x, want empty", got)
	}
	dec, err := HuffmanDecode(nil, nil)
	if err != nil || len(dec) != 0 {
		t.Errorf("decode empty = %x, %v; want empty, nil", dec, err)
	}
}

func TestHuffmanDecodeRejectsBadPadding(t *testing.T) {
	// "0" encodes as 00000 (5 bits); padding the rest with zeros is
	// not an EOS prefix and must be rejected.
	if _, err := HuffmanDecode(nil, []byte{0x00}); err == nil {
		t.Error("decode of zero-padded partial code succeeded, want error")
	}
}

func TestHuffmanDecodeRejectsLongPadding(t *testing.T) {
	// A full byte of ones after a symbol is 8 bits of padding — more
	// than the 7 allowed.
	enc := AppendHuffmanString(nil, "0") // 5 bits + 3 bits padding
	enc = append(enc, 0xff)
	if _, err := HuffmanDecode(nil, enc); err == nil {
		t.Error("decode with 8+ bits of padding succeeded, want error")
	}
}

func TestHuffmanDecodeRejectsEOS(t *testing.T) {
	// EOS is 30 one-bits; 4 bytes of 0xff contain it.
	if _, err := HuffmanDecode(nil, []byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("decode of embedded EOS succeeded, want error")
	}
}

func TestHuffmanTableIsPrefixFree(t *testing.T) {
	// Walking the decode tree, no leaf may also be an internal node.
	var walk func(n *huffmanNode, depth int)
	count := 0
	walk = func(n *huffmanNode, depth int) {
		if n.sym >= 0 {
			count++
			if n.children[0] != nil || n.children[1] != nil {
				t.Errorf("symbol %d at depth %d has children: code table is not prefix-free", n.sym, depth)
			}
			return
		}
		for _, c := range n.children {
			if c != nil {
				walk(c, depth+1)
			}
		}
	}
	walk(_huffmanRoot, 0)
	if count != 257 {
		t.Errorf("decode tree has %d leaves, want 257", count)
	}
}

func TestHuffmanCodeLengthsMonotoneBound(t *testing.T) {
	for sym, c := range huffmanCodes {
		if c.bits < 5 || c.bits > 30 {
			t.Errorf("symbol %d has code length %d, want 5..30", sym, c.bits)
		}
		if c.code>>c.bits != 0 {
			t.Errorf("symbol %d code 0x%x wider than %d bits", sym, c.code, c.bits)
		}
	}
}
