package h2

import "testing"

// TestHpackRoundTripZeroAlloc pins the steady-state cost of the
// encoder/decoder pair on a realistic request block: after the
// dynamic tables and intern caches are warm, encoding into a reused
// buffer and decoding via DecodeFullReuse allocate nothing. This
// covers the encoder's static-table probe (scratch key buffer, not a
// per-field string concat) and the decoder's recycled field slice.
func TestHpackRoundTripZeroAlloc(t *testing.T) {
	fields := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "survey.example"},
		{Name: ":path", Value: "/assets/emblem-3.png"},
		{Name: "accept", Value: "image/png"},
	}
	enc := NewHpackEncoder(4096)
	dec := NewHpackDecoder(4096)

	var block []byte
	roundTrip := func() {
		block = enc.AppendHeaderBlock(block[:0], fields)
		if _, err := dec.DecodeFullReuse(block); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		roundTrip()
	}
	allocs := testing.AllocsPerRun(200, roundTrip)
	if allocs != 0 {
		t.Errorf("HPACK round trip steady state: %.1f allocs/op, want 0", allocs)
	}
}
