package h2

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ClientPreface is the fixed sequence of bytes a client must send first
// on every HTTP/2 connection (RFC 7540 section 3.5).
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Frame size constants from RFC 7540 section 4.2.
const (
	// FrameHeaderLen is the fixed length of an HTTP/2 frame header.
	FrameHeaderLen = 9

	// DefaultMaxFrameSize is the initial value of
	// SETTINGS_MAX_FRAME_SIZE.
	DefaultMaxFrameSize = 1 << 14

	// MaxAllowedFrameSize is the largest value SETTINGS_MAX_FRAME_SIZE
	// may take (2^24 - 1).
	MaxAllowedFrameSize = 1<<24 - 1

	// DefaultInitialWindowSize is the initial flow-control window for
	// both connections and streams.
	DefaultInitialWindowSize = 65535

	// MaxWindowSize is the largest flow-control window permitted
	// (2^31 - 1).
	MaxWindowSize = 1<<31 - 1
)

// FrameType identifies the type octet of an HTTP/2 frame.
type FrameType uint8

// Frame types defined by RFC 7540 section 6.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
)

var frameTypeNames = map[FrameType]string{
	FrameData:         "DATA",
	FrameHeaders:      "HEADERS",
	FramePriority:     "PRIORITY",
	FrameRSTStream:    "RST_STREAM",
	FrameSettings:     "SETTINGS",
	FramePushPromise:  "PUSH_PROMISE",
	FramePing:         "PING",
	FrameGoAway:       "GOAWAY",
	FrameWindowUpdate: "WINDOW_UPDATE",
	FrameContinuation: "CONTINUATION",
}

// String returns the RFC 7540 name of the frame type.
func (t FrameType) String() string {
	if s, ok := frameTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("FRAME_TYPE_0x%x", uint8(t))
}

// Flags holds the 8-bit flags field of a frame header. The meaning of
// each bit depends on the frame type.
type Flags uint8

// Has reports whether all bits in f are set in fl.
func (fl Flags) Has(f Flags) bool { return fl&f == f }

// Frame flags defined by RFC 7540 section 6.
const (
	// FlagEndStream marks the last frame of a stream (DATA, HEADERS).
	FlagEndStream Flags = 0x1

	// FlagAck acknowledges a SETTINGS or PING frame.
	FlagAck Flags = 0x1

	// FlagEndHeaders marks the end of a header block (HEADERS,
	// PUSH_PROMISE, CONTINUATION).
	FlagEndHeaders Flags = 0x4

	// FlagPadded indicates the frame carries padding (DATA, HEADERS,
	// PUSH_PROMISE).
	FlagPadded Flags = 0x8

	// FlagPriority indicates the HEADERS frame carries priority
	// information.
	FlagPriority Flags = 0x20
)

// FrameHeader is the 9-octet header that precedes every HTTP/2 frame
// (RFC 7540 section 4.1).
type FrameHeader struct {
	// Length is the length of the frame payload, excluding the header.
	Length uint32

	// Type identifies the frame type.
	Type FrameType

	// Flags holds type-specific boolean flags.
	Flags Flags

	// StreamID identifies the stream the frame belongs to; zero means
	// the connection as a whole.
	StreamID uint32
}

// String returns a compact human-readable rendering of the header.
func (h FrameHeader) String() string {
	return fmt.Sprintf("[%v stream=%d len=%d flags=0x%x]", h.Type, h.StreamID, h.Length, uint8(h.Flags))
}

// WireLen returns the total on-wire size of the frame, header included.
func (h FrameHeader) WireLen() int { return FrameHeaderLen + int(h.Length) }

// appendFrameHeader appends the 9-byte wire encoding of h to b.
func appendFrameHeader(b []byte, h FrameHeader) []byte {
	return append(b,
		byte(h.Length>>16), byte(h.Length>>8), byte(h.Length),
		byte(h.Type),
		byte(h.Flags),
		byte(h.StreamID>>24)&0x7f, byte(h.StreamID>>16), byte(h.StreamID>>8), byte(h.StreamID),
	)
}

// parseFrameHeader decodes a 9-byte wire header. The buffer must hold
// at least FrameHeaderLen bytes.
func parseFrameHeader(buf []byte) FrameHeader {
	return FrameHeader{
		Length:   uint32(buf[0])<<16 | uint32(buf[1])<<8 | uint32(buf[2]),
		Type:     FrameType(buf[3]),
		Flags:    Flags(buf[4]),
		StreamID: binary.BigEndian.Uint32(buf[5:9]) & 0x7fffffff,
	}
}

// Frame is the interface implemented by all decoded HTTP/2 frames.
type Frame interface {
	// Header returns the frame's header.
	Header() FrameHeader

	// appendPayload appends the frame's payload encoding to b and
	// returns the extended slice. It must produce exactly
	// Header().Length bytes.
	appendPayload(b []byte) []byte
}

// PriorityParam carries the stream dependency fields of PRIORITY and
// HEADERS frames (RFC 7540 section 5.3).
type PriorityParam struct {
	// StreamDep is the stream this stream depends on.
	StreamDep uint32

	// Exclusive marks the dependency as exclusive.
	Exclusive bool

	// Weight is the dependency weight minus one (0..255 encodes
	// weights 1..256).
	Weight uint8
}

// IsZero reports whether the priority parameters are all defaults.
func (p PriorityParam) IsZero() bool { return p == PriorityParam{} }

// DataFrame carries stream payload bytes (RFC 7540 section 6.1).
type DataFrame struct {
	StreamID  uint32
	EndStream bool
	Data      []byte
	PadLength uint8
	Padded    bool
}

// Header implements Frame.
func (f *DataFrame) Header() FrameHeader {
	var flags Flags
	length := uint32(len(f.Data))
	if f.EndStream {
		flags |= FlagEndStream
	}
	if f.Padded {
		flags |= FlagPadded
		length += 1 + uint32(f.PadLength)
	}
	return FrameHeader{Length: length, Type: FrameData, Flags: flags, StreamID: f.StreamID}
}

func (f *DataFrame) appendPayload(b []byte) []byte {
	if f.Padded {
		b = append(b, f.PadLength)
	}
	b = append(b, f.Data...)
	if f.Padded {
		b = append(b, make([]byte, f.PadLength)...)
	}
	return b
}

// HeadersFrame opens a stream and carries an HPACK-encoded header
// block fragment (RFC 7540 section 6.2).
type HeadersFrame struct {
	StreamID      uint32
	EndStream     bool
	EndHeaders    bool
	BlockFragment []byte
	Priority      PriorityParam
	HasPriority   bool
	PadLength     uint8
	Padded        bool
}

// Header implements Frame.
func (f *HeadersFrame) Header() FrameHeader {
	var flags Flags
	length := uint32(len(f.BlockFragment))
	if f.EndStream {
		flags |= FlagEndStream
	}
	if f.EndHeaders {
		flags |= FlagEndHeaders
	}
	if f.HasPriority {
		flags |= FlagPriority
		length += 5
	}
	if f.Padded {
		flags |= FlagPadded
		length += 1 + uint32(f.PadLength)
	}
	return FrameHeader{Length: length, Type: FrameHeaders, Flags: flags, StreamID: f.StreamID}
}

func (f *HeadersFrame) appendPayload(b []byte) []byte {
	if f.Padded {
		b = append(b, f.PadLength)
	}
	if f.HasPriority {
		dep := f.Priority.StreamDep & 0x7fffffff
		if f.Priority.Exclusive {
			dep |= 1 << 31
		}
		b = binary.BigEndian.AppendUint32(b, dep)
		b = append(b, f.Priority.Weight)
	}
	b = append(b, f.BlockFragment...)
	if f.Padded {
		b = append(b, make([]byte, f.PadLength)...)
	}
	return b
}

// PriorityFrame reprioritizes a stream (RFC 7540 section 6.3).
type PriorityFrame struct {
	StreamID uint32
	Priority PriorityParam
}

// Header implements Frame.
func (f *PriorityFrame) Header() FrameHeader {
	return FrameHeader{Length: 5, Type: FramePriority, StreamID: f.StreamID}
}

func (f *PriorityFrame) appendPayload(b []byte) []byte {
	dep := f.Priority.StreamDep & 0x7fffffff
	if f.Priority.Exclusive {
		dep |= 1 << 31
	}
	b = binary.BigEndian.AppendUint32(b, dep)
	return append(b, f.Priority.Weight)
}

// RSTStreamFrame abruptly terminates a stream (RFC 7540 section 6.4).
type RSTStreamFrame struct {
	StreamID uint32
	Code     ErrCode
}

// Header implements Frame.
func (f *RSTStreamFrame) Header() FrameHeader {
	return FrameHeader{Length: 4, Type: FrameRSTStream, StreamID: f.StreamID}
}

func (f *RSTStreamFrame) appendPayload(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(f.Code))
}

// Setting is a single identifier/value pair from a SETTINGS frame.
type Setting struct {
	ID  SettingID
	Val uint32
}

// String renders the setting as NAME=value.
func (s Setting) String() string { return fmt.Sprintf("%v=%d", s.ID, s.Val) }

// SettingsFrame conveys configuration parameters (RFC 7540 section
// 6.5).
type SettingsFrame struct {
	Ack      bool
	Settings []Setting
}

// Header implements Frame.
func (f *SettingsFrame) Header() FrameHeader {
	var flags Flags
	if f.Ack {
		flags |= FlagAck
	}
	return FrameHeader{Length: uint32(6 * len(f.Settings)), Type: FrameSettings, Flags: flags}
}

func (f *SettingsFrame) appendPayload(b []byte) []byte {
	for _, s := range f.Settings {
		b = binary.BigEndian.AppendUint16(b, uint16(s.ID))
		b = binary.BigEndian.AppendUint32(b, s.Val)
	}
	return b
}

// Value returns the value of the given setting and whether it was
// present in the frame. The last occurrence wins, per RFC 7540
// section 6.5.3.
func (f *SettingsFrame) Value(id SettingID) (uint32, bool) {
	var (
		val   uint32
		found bool
	)
	for _, s := range f.Settings {
		if s.ID == id {
			val, found = s.Val, true
		}
	}
	return val, found
}

// PushPromiseFrame announces a server push (RFC 7540 section 6.6).
type PushPromiseFrame struct {
	StreamID      uint32
	PromiseID     uint32
	EndHeaders    bool
	BlockFragment []byte
	PadLength     uint8
	Padded        bool
}

// Header implements Frame.
func (f *PushPromiseFrame) Header() FrameHeader {
	var flags Flags
	length := uint32(4 + len(f.BlockFragment))
	if f.EndHeaders {
		flags |= FlagEndHeaders
	}
	if f.Padded {
		flags |= FlagPadded
		length += 1 + uint32(f.PadLength)
	}
	return FrameHeader{Length: length, Type: FramePushPromise, Flags: flags, StreamID: f.StreamID}
}

func (f *PushPromiseFrame) appendPayload(b []byte) []byte {
	if f.Padded {
		b = append(b, f.PadLength)
	}
	b = binary.BigEndian.AppendUint32(b, f.PromiseID&0x7fffffff)
	b = append(b, f.BlockFragment...)
	if f.Padded {
		b = append(b, make([]byte, f.PadLength)...)
	}
	return b
}

// PingFrame measures round-trip time or checks liveness (RFC 7540
// section 6.7).
type PingFrame struct {
	Ack  bool
	Data [8]byte
}

// Header implements Frame.
func (f *PingFrame) Header() FrameHeader {
	var flags Flags
	if f.Ack {
		flags |= FlagAck
	}
	return FrameHeader{Length: 8, Type: FramePing, Flags: flags}
}

func (f *PingFrame) appendPayload(b []byte) []byte { return append(b, f.Data[:]...) }

// GoAwayFrame initiates connection shutdown (RFC 7540 section 6.8).
type GoAwayFrame struct {
	LastStreamID uint32
	Code         ErrCode
	DebugData    []byte
}

// Header implements Frame.
func (f *GoAwayFrame) Header() FrameHeader {
	return FrameHeader{Length: uint32(8 + len(f.DebugData)), Type: FrameGoAway}
}

func (f *GoAwayFrame) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, f.LastStreamID&0x7fffffff)
	b = binary.BigEndian.AppendUint32(b, uint32(f.Code))
	return append(b, f.DebugData...)
}

// WindowUpdateFrame replenishes a flow-control window (RFC 7540
// section 6.9). StreamID zero updates the connection window.
type WindowUpdateFrame struct {
	StreamID  uint32
	Increment uint32
}

// Header implements Frame.
func (f *WindowUpdateFrame) Header() FrameHeader {
	return FrameHeader{Length: 4, Type: FrameWindowUpdate, StreamID: f.StreamID}
}

func (f *WindowUpdateFrame) appendPayload(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, f.Increment&0x7fffffff)
}

// ContinuationFrame continues a header block started by HEADERS or
// PUSH_PROMISE (RFC 7540 section 6.10).
type ContinuationFrame struct {
	StreamID      uint32
	EndHeaders    bool
	BlockFragment []byte
}

// Header implements Frame.
func (f *ContinuationFrame) Header() FrameHeader {
	var flags Flags
	if f.EndHeaders {
		flags |= FlagEndHeaders
	}
	return FrameHeader{Length: uint32(len(f.BlockFragment)), Type: FrameContinuation, Flags: flags, StreamID: f.StreamID}
}

func (f *ContinuationFrame) appendPayload(b []byte) []byte { return append(b, f.BlockFragment...) }

// UnknownFrame preserves frames with an unrecognized type so they can
// be ignored but re-serialized (RFC 7540 requires ignoring unknown
// types).
type UnknownFrame struct {
	FH      FrameHeader
	Payload []byte
}

// Header implements Frame.
func (f *UnknownFrame) Header() FrameHeader {
	h := f.FH
	h.Length = uint32(len(f.Payload))
	return h
}

func (f *UnknownFrame) appendPayload(b []byte) []byte { return append(b, f.Payload...) }

// Interface compliance checks.
var (
	_ Frame = (*DataFrame)(nil)
	_ Frame = (*HeadersFrame)(nil)
	_ Frame = (*PriorityFrame)(nil)
	_ Frame = (*RSTStreamFrame)(nil)
	_ Frame = (*SettingsFrame)(nil)
	_ Frame = (*PushPromiseFrame)(nil)
	_ Frame = (*PingFrame)(nil)
	_ Frame = (*GoAwayFrame)(nil)
	_ Frame = (*WindowUpdateFrame)(nil)
	_ Frame = (*ContinuationFrame)(nil)
	_ Frame = (*UnknownFrame)(nil)
)

// AppendFrame appends the full wire encoding (header + payload) of f
// to b and returns the extended slice.
func AppendFrame(b []byte, f Frame) []byte {
	b = appendFrameHeader(b, f.Header())
	return f.appendPayload(b)
}

// MarshalFrame returns the full wire encoding of f.
func MarshalFrame(f Frame) []byte {
	h := f.Header()
	return AppendFrame(make([]byte, 0, h.WireLen()), f)
}

// Framer reads and writes HTTP/2 frames over an io.ReadWriter. The
// zero value is not usable; construct with NewFramer.
//
// Framer performs structural validation (lengths, reserved bits,
// stream-id parity rules are left to the connection layer) and
// enforces MaxReadFrameSize on reads.
type Framer struct {
	r io.Reader
	w io.Writer

	// MaxReadFrameSize caps the payload length accepted by ReadFrame.
	// Defaults to DefaultMaxFrameSize.
	MaxReadFrameSize uint32

	readBuf  []byte
	writeBuf []byte
}

// NewFramer returns a Framer that writes to w and reads from r. Either
// may be nil if only one direction is used.
func NewFramer(w io.Writer, r io.Reader) *Framer {
	return &Framer{
		r:                r,
		w:                w,
		MaxReadFrameSize: DefaultMaxFrameSize,
	}
}

// WriteFrame serializes f and writes it to the underlying writer.
func (fr *Framer) WriteFrame(f Frame) error {
	fr.writeBuf = AppendFrame(fr.writeBuf[:0], f)
	if _, err := fr.w.Write(fr.writeBuf); err != nil {
		return fmt.Errorf("h2: write %v frame: %w", f.Header().Type, err)
	}
	return nil
}

// ReadFrame reads and decodes the next frame from the underlying
// reader. The returned frame's byte slices are only valid until the
// next call to ReadFrame.
func (fr *Framer) ReadFrame() (Frame, error) {
	var hbuf [FrameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hbuf[:]); err != nil {
		return nil, err
	}
	h := parseFrameHeader(hbuf[:])
	if h.Length > fr.MaxReadFrameSize {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, h.Length, fr.MaxReadFrameSize)
	}
	if cap(fr.readBuf) < int(h.Length) {
		fr.readBuf = make([]byte, h.Length)
	}
	payload := fr.readBuf[:h.Length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("h2: read %v payload: %w", h.Type, err)
	}
	return ParseFramePayload(h, payload)
}

// ParseFramePayload decodes a frame payload given its already-parsed
// header. The returned frame aliases payload.
func ParseFramePayload(h FrameHeader, payload []byte) (Frame, error) {
	if int(h.Length) != len(payload) {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "payload length mismatch"}
	}
	switch h.Type {
	case FrameData:
		return parseDataFrame(h, payload)
	case FrameHeaders:
		return parseHeadersFrame(h, payload)
	case FramePriority:
		return parsePriorityFrame(h, payload)
	case FrameRSTStream:
		return parseRSTStreamFrame(h, payload)
	case FrameSettings:
		return parseSettingsFrame(h, payload)
	case FramePushPromise:
		return parsePushPromiseFrame(h, payload)
	case FramePing:
		return parsePingFrame(h, payload)
	case FrameGoAway:
		return parseGoAwayFrame(h, payload)
	case FrameWindowUpdate:
		return parseWindowUpdateFrame(h, payload)
	case FrameContinuation:
		return parseContinuationFrame(h, payload)
	default:
		return &UnknownFrame{FH: h, Payload: payload}, nil
	}
}

// FrameScanner incrementally splits a byte stream into frames. Feed
// arbitrary chunks; complete frames come out. Unlike Framer it does
// not need an io.Reader, which suits event-driven transports.
type FrameScanner struct {
	buf []byte
	off int // parse position within buf

	// MaxFrameSize caps accepted payload lengths; zero means
	// DefaultMaxFrameSize.
	MaxFrameSize uint32

	// FeedInto scratch values, one per frame type the simulated
	// sessions exchange, so steady-state scanning allocates nothing.
	data     DataFrame
	headers  HeadersFrame
	rst      RSTStreamFrame
	settings SettingsFrame
	push     PushPromiseFrame
}

// Reset discards buffered partial-frame bytes so the scanner can
// start a fresh stream, keeping the buffer capacity and scratch
// frames. MaxFrameSize is preserved.
func (sc *FrameScanner) Reset() {
	sc.buf = sc.buf[:0]
	sc.off = 0
}

func (sc *FrameScanner) maxSize() uint32 {
	if sc.MaxFrameSize == 0 {
		return DefaultMaxFrameSize
	}
	return sc.MaxFrameSize
}

// ingest compacts the consumed prefix and appends the new bytes, so
// the buffer's backing array is recycled instead of growing behind an
// advancing offset.
func (sc *FrameScanner) ingest(b []byte) {
	if sc.off > 0 {
		n := copy(sc.buf, sc.buf[sc.off:])
		sc.buf = sc.buf[:n]
		sc.off = 0
	}
	sc.buf = append(sc.buf, b...)
}

// next parses the header of the next complete buffered frame. ok is
// false when more bytes are needed.
func (sc *FrameScanner) next() (h FrameHeader, ok bool, err error) {
	if len(sc.buf)-sc.off < FrameHeaderLen {
		return h, false, nil
	}
	h = parseFrameHeader(sc.buf[sc.off:])
	if h.Length > sc.maxSize() {
		return h, false, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, h.Length, sc.maxSize())
	}
	if len(sc.buf)-sc.off < FrameHeaderLen+int(h.Length) {
		return h, false, nil
	}
	return h, true, nil
}

// Feed appends stream bytes and returns all newly complete frames.
// Returned frames own their memory (safe to retain). For the
// allocation-free variant see FeedInto.
func (sc *FrameScanner) Feed(b []byte) ([]Frame, error) {
	sc.ingest(b)
	var out []Frame
	for {
		h, ok, err := sc.next()
		if err != nil || !ok {
			return out, err
		}
		start := sc.off + FrameHeaderLen
		payload := make([]byte, h.Length)
		copy(payload, sc.buf[start:start+int(h.Length)])
		sc.off = start + int(h.Length)
		f, err := ParseFramePayload(h, payload)
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

// FeedInto appends stream bytes and invokes emit once per newly
// complete frame, in order, stopping at the first error (emit's or
// the scanner's). Unlike Feed it does not copy payloads: the frame
// passed to emit aliases the scanner's buffer — and for the frame
// types the simulated sessions exchange (DATA, HEADERS, RST_STREAM,
// SETTINGS, PUSH_PROMISE) is itself a scratch value reused across
// calls — so it is valid only during the callback. In steady state
// those frame types cost zero allocations, which is what the HTTP/2
// session layers ride.
func (sc *FrameScanner) FeedInto(b []byte, emit func(Frame) error) error {
	sc.ingest(b)
	for {
		h, ok, err := sc.next()
		if err != nil || !ok {
			return err
		}
		start := sc.off + FrameHeaderLen
		payload := sc.buf[start : start+int(h.Length)]
		sc.off = start + int(h.Length)
		var f Frame
		switch h.Type {
		case FrameData:
			// Mirror parseDataFrame into the scratch frame.
			if h.StreamID == 0 {
				return ConnectionError{Code: ErrCodeProtocol, Reason: "DATA on stream 0"}
			}
			body, padLen, err := stripPadding(h, payload)
			if err != nil {
				return err
			}
			sc.data = DataFrame{
				StreamID:  h.StreamID,
				EndStream: h.Flags.Has(FlagEndStream),
				Data:      body,
				PadLength: padLen,
				Padded:    h.Flags.Has(FlagPadded),
			}
			f = &sc.data
		case FrameHeaders:
			// Mirror parseHeadersFrame.
			if h.StreamID == 0 {
				return ConnectionError{Code: ErrCodeProtocol, Reason: "HEADERS on stream 0"}
			}
			body, padLen, err := stripPadding(h, payload)
			if err != nil {
				return err
			}
			sc.headers = HeadersFrame{
				StreamID:   h.StreamID,
				EndStream:  h.Flags.Has(FlagEndStream),
				EndHeaders: h.Flags.Has(FlagEndHeaders),
				PadLength:  padLen,
				Padded:     h.Flags.Has(FlagPadded),
			}
			if h.Flags.Has(FlagPriority) {
				if len(body) < 5 {
					return ConnectionError{Code: ErrCodeFrameSize, Reason: "HEADERS priority fields truncated"}
				}
				dep := binary.BigEndian.Uint32(body[:4])
				sc.headers.HasPriority = true
				sc.headers.Priority = PriorityParam{
					StreamDep: dep & 0x7fffffff,
					Exclusive: dep>>31 == 1,
					Weight:    body[4],
				}
				body = body[5:]
			}
			sc.headers.BlockFragment = body
			f = &sc.headers
		case FrameRSTStream:
			// Mirror parseRSTStreamFrame.
			if h.StreamID == 0 {
				return ConnectionError{Code: ErrCodeProtocol, Reason: "RST_STREAM on stream 0"}
			}
			if len(payload) != 4 {
				return ConnectionError{Code: ErrCodeFrameSize, Reason: "RST_STREAM length != 4"}
			}
			sc.rst = RSTStreamFrame{StreamID: h.StreamID, Code: ErrCode(binary.BigEndian.Uint32(payload))}
			f = &sc.rst
		case FrameSettings:
			// Mirror parseSettingsFrame, reusing the Settings slice.
			if h.StreamID != 0 {
				return ConnectionError{Code: ErrCodeProtocol, Reason: "SETTINGS on nonzero stream"}
			}
			if h.Flags.Has(FlagAck) && len(payload) != 0 {
				return ConnectionError{Code: ErrCodeFrameSize, Reason: "SETTINGS ack with payload"}
			}
			if len(payload)%6 != 0 {
				return ConnectionError{Code: ErrCodeFrameSize, Reason: "SETTINGS length not multiple of 6"}
			}
			sc.settings.Ack = h.Flags.Has(FlagAck)
			sc.settings.Settings = sc.settings.Settings[:0]
			for i := 0; i < len(payload); i += 6 {
				s := Setting{
					ID:  SettingID(binary.BigEndian.Uint16(payload[i : i+2])),
					Val: binary.BigEndian.Uint32(payload[i+2 : i+6]),
				}
				if err := s.Valid(); err != nil {
					return err
				}
				sc.settings.Settings = append(sc.settings.Settings, s)
			}
			f = &sc.settings
		case FramePushPromise:
			// Mirror parsePushPromiseFrame.
			if h.StreamID == 0 {
				return ConnectionError{Code: ErrCodeProtocol, Reason: "PUSH_PROMISE on stream 0"}
			}
			body, padLen, err := stripPadding(h, payload)
			if err != nil {
				return err
			}
			if len(body) < 4 {
				return ConnectionError{Code: ErrCodeFrameSize, Reason: "PUSH_PROMISE truncated"}
			}
			sc.push = PushPromiseFrame{
				StreamID:      h.StreamID,
				PromiseID:     binary.BigEndian.Uint32(body[:4]) & 0x7fffffff,
				EndHeaders:    h.Flags.Has(FlagEndHeaders),
				BlockFragment: body[4:],
				PadLength:     padLen,
				Padded:        h.Flags.Has(FlagPadded),
			}
			f = &sc.push
		default:
			f, err = ParseFramePayload(h, payload)
			if err != nil {
				return err
			}
		}
		if err := emit(f); err != nil {
			return err
		}
	}
}

// Buffered returns the number of bytes awaiting a complete frame.
func (sc *FrameScanner) Buffered() int { return len(sc.buf) - sc.off }

// stripPadding removes the pad-length octet and trailing padding from
// a padded payload.
func stripPadding(h FrameHeader, payload []byte) (body []byte, padLen uint8, err error) {
	if !h.Flags.Has(FlagPadded) {
		return payload, 0, nil
	}
	if len(payload) < 1 {
		return nil, 0, ConnectionError{Code: ErrCodeFrameSize, Reason: "padded frame too short"}
	}
	padLen = payload[0]
	body = payload[1:]
	if int(padLen) >= len(body)+1 {
		// RFC 7540 6.1: padding >= remaining payload is a protocol error.
		return nil, 0, ConnectionError{Code: ErrCodeProtocol, Reason: "padding exceeds payload"}
	}
	return body[:len(body)-int(padLen)], padLen, nil
}

func parseDataFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "DATA on stream 0"}
	}
	body, padLen, err := stripPadding(h, payload)
	if err != nil {
		return nil, err
	}
	return &DataFrame{
		StreamID:  h.StreamID,
		EndStream: h.Flags.Has(FlagEndStream),
		Data:      body,
		PadLength: padLen,
		Padded:    h.Flags.Has(FlagPadded),
	}, nil
}

func parseHeadersFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "HEADERS on stream 0"}
	}
	body, padLen, err := stripPadding(h, payload)
	if err != nil {
		return nil, err
	}
	f := &HeadersFrame{
		StreamID:   h.StreamID,
		EndStream:  h.Flags.Has(FlagEndStream),
		EndHeaders: h.Flags.Has(FlagEndHeaders),
		PadLength:  padLen,
		Padded:     h.Flags.Has(FlagPadded),
	}
	if h.Flags.Has(FlagPriority) {
		if len(body) < 5 {
			return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "HEADERS priority fields truncated"}
		}
		dep := binary.BigEndian.Uint32(body[:4])
		f.HasPriority = true
		f.Priority = PriorityParam{
			StreamDep: dep & 0x7fffffff,
			Exclusive: dep>>31 == 1,
			Weight:    body[4],
		}
		body = body[5:]
	}
	f.BlockFragment = body
	return f, nil
}

func parsePriorityFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "PRIORITY on stream 0"}
	}
	if len(payload) != 5 {
		return nil, StreamError{StreamID: h.StreamID, Code: ErrCodeFrameSize, Reason: "PRIORITY length != 5"}
	}
	dep := binary.BigEndian.Uint32(payload[:4])
	return &PriorityFrame{
		StreamID: h.StreamID,
		Priority: PriorityParam{
			StreamDep: dep & 0x7fffffff,
			Exclusive: dep>>31 == 1,
			Weight:    payload[4],
		},
	}, nil
}

func parseRSTStreamFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "RST_STREAM on stream 0"}
	}
	if len(payload) != 4 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "RST_STREAM length != 4"}
	}
	return &RSTStreamFrame{StreamID: h.StreamID, Code: ErrCode(binary.BigEndian.Uint32(payload))}, nil
}

func parseSettingsFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID != 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "SETTINGS on nonzero stream"}
	}
	if h.Flags.Has(FlagAck) && len(payload) != 0 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "SETTINGS ack with payload"}
	}
	if len(payload)%6 != 0 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "SETTINGS length not multiple of 6"}
	}
	f := &SettingsFrame{Ack: h.Flags.Has(FlagAck)}
	for i := 0; i < len(payload); i += 6 {
		s := Setting{
			ID:  SettingID(binary.BigEndian.Uint16(payload[i : i+2])),
			Val: binary.BigEndian.Uint32(payload[i+2 : i+6]),
		}
		if err := s.Valid(); err != nil {
			return nil, err
		}
		f.Settings = append(f.Settings, s)
	}
	return f, nil
}

func parsePushPromiseFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "PUSH_PROMISE on stream 0"}
	}
	body, padLen, err := stripPadding(h, payload)
	if err != nil {
		return nil, err
	}
	if len(body) < 4 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "PUSH_PROMISE truncated"}
	}
	return &PushPromiseFrame{
		StreamID:      h.StreamID,
		PromiseID:     binary.BigEndian.Uint32(body[:4]) & 0x7fffffff,
		EndHeaders:    h.Flags.Has(FlagEndHeaders),
		BlockFragment: body[4:],
		PadLength:     padLen,
		Padded:        h.Flags.Has(FlagPadded),
	}, nil
}

func parsePingFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID != 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "PING on nonzero stream"}
	}
	if len(payload) != 8 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "PING length != 8"}
	}
	f := &PingFrame{Ack: h.Flags.Has(FlagAck)}
	copy(f.Data[:], payload)
	return f, nil
}

func parseGoAwayFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID != 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "GOAWAY on nonzero stream"}
	}
	if len(payload) < 8 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "GOAWAY truncated"}
	}
	return &GoAwayFrame{
		LastStreamID: binary.BigEndian.Uint32(payload[:4]) & 0x7fffffff,
		Code:         ErrCode(binary.BigEndian.Uint32(payload[4:8])),
		DebugData:    payload[8:],
	}, nil
}

func parseWindowUpdateFrame(h FrameHeader, payload []byte) (Frame, error) {
	if len(payload) != 4 {
		return nil, ConnectionError{Code: ErrCodeFrameSize, Reason: "WINDOW_UPDATE length != 4"}
	}
	inc := binary.BigEndian.Uint32(payload) & 0x7fffffff
	if inc == 0 {
		if h.StreamID == 0 {
			return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "WINDOW_UPDATE increment 0"}
		}
		return nil, StreamError{StreamID: h.StreamID, Code: ErrCodeProtocol, Reason: "WINDOW_UPDATE increment 0"}
	}
	return &WindowUpdateFrame{StreamID: h.StreamID, Increment: inc}, nil
}

func parseContinuationFrame(h FrameHeader, payload []byte) (Frame, error) {
	if h.StreamID == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "CONTINUATION on stream 0"}
	}
	return &ContinuationFrame{
		StreamID:      h.StreamID,
		EndHeaders:    h.Flags.Has(FlagEndHeaders),
		BlockFragment: payload,
	}, nil
}
