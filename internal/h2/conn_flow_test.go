package h2

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// rawServerConn accepts one connection, performs the server preface
// exchange manually, and hands the test raw framer access.
func rawServerConn(t *testing.T) (*Framer, net.Conn, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() }) //nolint:errcheck // teardown

	type acceptResult struct {
		fr *Framer
		nc net.Conn
	}
	acceptc := make(chan acceptResult, 1)
	go func() {
		nc, aerr := ln.Accept()
		if aerr != nil {
			return
		}
		buf := make([]byte, len(ClientPreface))
		if _, rerr := io.ReadFull(nc, buf); rerr != nil {
			return
		}
		fr := NewFramer(nc, nc)
		_ = fr.WriteFrame(&SettingsFrame{}) //nolint:errcheck // test handshake
		acceptc <- acceptResult{fr, nc}
	}()

	cl, err := Dial(ln.Addr().String(), ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() }) //nolint:errcheck // teardown
	res := <-acceptc
	t.Cleanup(func() { _ = res.nc.Close() }) //nolint:errcheck // teardown
	return res.fr, res.nc, cl
}

// readUntil reads frames until pred returns true, failing after a
// bounded number of frames.
func readUntil(t *testing.T, fr *Framer, what string, pred func(Frame) bool) Frame {
	t.Helper()
	for i := 0; i < 200; i++ {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("waiting for %s: %v", what, err)
		}
		if pred(f) {
			return f
		}
	}
	t.Fatalf("never saw %s", what)
	return nil
}

func TestFlowControlStallsAndResumes(t *testing.T) {
	fr, _, cl := rawServerConn(t)

	// Issue a request so the raw "server" owns a stream.
	done := make(chan *Response, 1)
	go func() {
		cs, err := cl.StartGet("example.test", "/big")
		if err != nil {
			done <- nil
			return
		}
		r, _ := cs.Response() //nolint:errcheck // nil on failure is asserted below
		done <- r
	}()

	hf := readUntil(t, fr, "request HEADERS", func(f Frame) bool {
		_, ok := f.(*HeadersFrame)
		return ok
	}).(*HeadersFrame)
	streamID := hf.StreamID

	// Respond with more data than the 64KiB initial window allows;
	// DO NOT grant window updates beyond what the client sends.
	henc := NewHpackEncoder(4096)
	block := henc.AppendHeaderBlock(nil, []HeaderField{{Name: ":status", Value: "200"}})
	if err := fr.WriteFrame(&HeadersFrame{StreamID: streamID, BlockFragment: block, EndHeaders: true}); err != nil {
		t.Fatal(err)
	}
	const total = 200 << 10
	body := bytes.Repeat([]byte{7}, total)
	sent := 0
	for sent < total {
		n := 16 << 10
		if n > total-sent {
			n = total - sent
		}
		// The raw server respects no window: the CLIENT must keep the
		// transfer alive by replenishing via WINDOW_UPDATE, which this
		// loop consumes to pace itself like a compliant sender.
		if err := fr.WriteFrame(&DataFrame{
			StreamID:  streamID,
			Data:      body[sent : sent+n],
			EndStream: sent+n == total,
		}); err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	// Drain client WINDOW_UPDATEs/acks until the response lands.
	go func() {
		for {
			if _, err := fr.ReadFrame(); err != nil {
				return
			}
		}
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("response failed")
		}
		if len(r.Body) != total {
			t.Errorf("received %d bytes, want %d", len(r.Body), total)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("transfer hung")
	}
}

func TestClientSendsWindowUpdates(t *testing.T) {
	fr, _, cl := rawServerConn(t)
	go func() {
		cs, err := cl.StartGet("example.test", "/stream")
		if err != nil {
			return
		}
		_, _ = cs.Response() //nolint:errcheck // not the assertion target
	}()
	hf := readUntil(t, fr, "request HEADERS", func(f Frame) bool {
		_, ok := f.(*HeadersFrame)
		return ok
	}).(*HeadersFrame)
	henc := NewHpackEncoder(4096)
	block := henc.AppendHeaderBlock(nil, []HeaderField{{Name: ":status", Value: "200"}})
	if err := fr.WriteFrame(&HeadersFrame{StreamID: hf.StreamID, BlockFragment: block, EndHeaders: true}); err != nil {
		t.Fatal(err)
	}
	// Send one mid-stream DATA frame: the client must return stream
	// credit.
	if err := fr.WriteFrame(&DataFrame{StreamID: hf.StreamID, Data: make([]byte, 8192)}); err != nil {
		t.Fatal(err)
	}
	readUntil(t, fr, "stream WINDOW_UPDATE", func(f Frame) bool {
		wu, ok := f.(*WindowUpdateFrame)
		return ok && wu.StreamID == hf.StreamID && wu.Increment == 8192
	})
}

func TestClientAnswersPing(t *testing.T) {
	fr, _, _ := rawServerConn(t)
	ping := &PingFrame{Data: [8]byte{9, 8, 7, 6, 5, 4, 3, 2}}
	if err := fr.WriteFrame(ping); err != nil {
		t.Fatal(err)
	}
	readUntil(t, fr, "PING ack", func(f Frame) bool {
		p, ok := f.(*PingFrame)
		return ok && p.Ack && p.Data == ping.Data
	})
}

func TestClientAcksSettings(t *testing.T) {
	fr, _, _ := rawServerConn(t)
	if err := fr.WriteFrame(&SettingsFrame{Settings: []Setting{{SettingInitialWindowSize, 1 << 20}}}); err != nil {
		t.Fatal(err)
	}
	readUntil(t, fr, "SETTINGS ack", func(f Frame) bool {
		s, ok := f.(*SettingsFrame)
		return ok && s.Ack
	})
}

func TestCompressionErrorTearsDownConnection(t *testing.T) {
	fr, _, cl := rawServerConn(t)
	// Garbage header block: HPACK index 0 is always a compression
	// error, which is connection-fatal per RFC 7541.
	if err := fr.WriteFrame(&HeadersFrame{StreamID: 1, BlockFragment: []byte{0x80}, EndHeaders: true}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for cl.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("client survived a compression error")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if _, err := cl.StartGet("example.test", "/x"); err == nil {
		t.Error("dead connection accepted a request")
	}
}

func TestWindowOverflowIsFlowControlError(t *testing.T) {
	fr, _, cl := rawServerConn(t)
	// Two maximal connection window updates overflow 2^31-1.
	if err := fr.WriteFrame(&WindowUpdateFrame{Increment: MaxWindowSize}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(&WindowUpdateFrame{Increment: MaxWindowSize}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for cl.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("client ignored a connection window overflow")
		case <-time.After(5 * time.Millisecond):
		}
	}
	var ce ConnectionError
	if !errors.As(cl.Err(), &ce) && !errors.Is(cl.Err(), ErrClosed) {
		t.Logf("terminal error: %v (acceptable as long as the conn died)", cl.Err())
	}
}

func TestUnknownFrameTypeIgnored(t *testing.T) {
	fr, _, cl := rawServerConn(t)
	if err := fr.WriteFrame(&UnknownFrame{
		FH:      FrameHeader{Type: FrameType(0x77), StreamID: 0},
		Payload: []byte{1, 2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	// The connection must stay healthy.
	time.Sleep(50 * time.Millisecond)
	if cl.Err() != nil {
		t.Fatalf("unknown frame killed the connection: %v", cl.Err())
	}
}

func TestContinuationReassembly(t *testing.T) {
	fr, _, cl := rawServerConn(t)
	go func() {
		cs, err := cl.StartGet("example.test", "/cont")
		if err != nil {
			return
		}
		_, _ = cs.Response() //nolint:errcheck // not the assertion target
	}()
	hf := readUntil(t, fr, "request HEADERS", func(f Frame) bool {
		_, ok := f.(*HeadersFrame)
		return ok
	}).(*HeadersFrame)

	// Respond with the header block split across HEADERS + two
	// CONTINUATION frames.
	henc := NewHpackEncoder(4096)
	block := henc.AppendHeaderBlock(nil, []HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "x-long", Value: string(bytes.Repeat([]byte("v"), 60))},
	})
	third := len(block) / 3
	if err := fr.WriteFrame(&HeadersFrame{StreamID: hf.StreamID, BlockFragment: block[:third]}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(&ContinuationFrame{StreamID: hf.StreamID, BlockFragment: block[third : 2*third]}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(&ContinuationFrame{StreamID: hf.StreamID, BlockFragment: block[2*third:], EndHeaders: true}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(&DataFrame{StreamID: hf.StreamID, Data: []byte("done"), EndStream: true}); err != nil {
		t.Fatal(err)
	}
	// The client must reassemble and not error out.
	deadline := time.After(5 * time.Second)
	for {
		if cl.Err() != nil {
			t.Fatalf("client died on CONTINUATION: %v", cl.Err())
		}
		cl.conn.mu.Lock()
		n := len(cl.conn.streams)
		cl.conn.mu.Unlock()
		if n == 0 {
			return // stream completed and was reaped
		}
		select {
		case <-deadline:
			t.Fatal("response never completed")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestInterleavedContinuationIsConnectionError(t *testing.T) {
	fr, _, cl := rawServerConn(t)
	go func() {
		cs, err := cl.StartGet("example.test", "/x")
		if err != nil {
			return
		}
		_, _ = cs.Response() //nolint:errcheck // connection will die
	}()
	hf := readUntil(t, fr, "request HEADERS", func(f Frame) bool {
		_, ok := f.(*HeadersFrame)
		return ok
	}).(*HeadersFrame)
	// Open a header block, then interleave a PING: RFC 7540 section
	// 6.10 forbids any other frame before END_HEADERS.
	if err := fr.WriteFrame(&HeadersFrame{StreamID: hf.StreamID, BlockFragment: []byte{0x88}}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteFrame(&PingFrame{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for cl.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("client tolerated an interleaved CONTINUATION block")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
