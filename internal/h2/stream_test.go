package h2

import "testing"

func TestStreamLifecycleRequestResponse(t *testing.T) {
	// Client perspective: send request with END_STREAM, receive
	// response ending with END_STREAM.
	var m StreamStateMachine
	if m.State() != StateIdle {
		t.Fatalf("initial state = %v, want idle", m.State())
	}
	st, err := m.Transition(EvSendEndStream) // HEADERS+END_STREAM
	if err != nil || st != StateHalfClosedLocal {
		t.Fatalf("after request: %v, %v", st, err)
	}
	st, err = m.Transition(EvRecvHeaders)
	if err != nil || st != StateHalfClosedLocal {
		t.Fatalf("after response headers: %v, %v", st, err)
	}
	st, err = m.Transition(EvRecvEndStream)
	if err != nil || st != StateClosed {
		t.Fatalf("after response end: %v, %v", st, err)
	}
}

func TestStreamLifecycleServerSide(t *testing.T) {
	var m StreamStateMachine
	if _, err := m.Transition(EvRecvEndStream); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateHalfClosedRemote {
		t.Fatalf("state = %v, want half-closed (remote)", m.State())
	}
	if _, err := m.Transition(EvSendHeaders); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transition(EvSendEndStream); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateClosed {
		t.Fatalf("state = %v, want closed", m.State())
	}
}

func TestStreamOpenThenHalfClose(t *testing.T) {
	var m StreamStateMachine
	mustState := func(ev StreamEvent, want StreamState) {
		t.Helper()
		st, err := m.Transition(ev)
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if st != want {
			t.Fatalf("%v -> %v, want %v", ev, st, want)
		}
	}
	mustState(EvSendHeaders, StateOpen)
	mustState(EvSendHeaders, StateOpen) // trailers allowed
	mustState(EvSendEndStream, StateHalfClosedLocal)
	mustState(EvRecvEndStream, StateClosed)
}

func TestStreamRSTAlwaysCloses(t *testing.T) {
	states := []StreamEvent{EvSendHeaders, EvRecvHeaders, EvSendPushPromise, EvRecvPushPromise}
	for _, setup := range states {
		var m StreamStateMachine
		if _, err := m.Transition(setup); err != nil {
			t.Fatalf("%v: %v", setup, err)
		}
		if st, err := m.Transition(EvRecvRST); err != nil || st != StateClosed {
			t.Errorf("RST after %v: state %v err %v", setup, st, err)
		}
	}
}

func TestStreamRSTOnIdleIsError(t *testing.T) {
	var m StreamStateMachine
	if _, err := m.Transition(EvRecvRST); err == nil {
		t.Error("RST on idle stream accepted, want connection error")
	}
}

func TestStreamClosedRejectsTraffic(t *testing.T) {
	var m StreamStateMachine
	if _, err := m.Transition(EvSendRST); err == nil {
		t.Fatal("want error on idle RST")
	}
	m = StreamStateMachine{}
	mustOK := func(ev StreamEvent) {
		t.Helper()
		if _, err := m.Transition(ev); err != nil {
			t.Fatal(err)
		}
	}
	mustOK(EvSendHeaders)
	mustOK(EvSendRST)
	if _, err := m.Transition(EvSendHeaders); err == nil {
		t.Error("HEADERS on closed stream accepted, want stream error")
	}
}

func TestStreamPushPromiseLifecycle(t *testing.T) {
	// Server reserves a push stream, then sends the response.
	var m StreamStateMachine
	if _, err := m.Transition(EvSendPushPromise); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateReservedLocal {
		t.Fatalf("state = %v, want reserved (local)", m.State())
	}
	if _, err := m.Transition(EvSendHeaders); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateHalfClosedRemote {
		t.Fatalf("state = %v, want half-closed (remote)", m.State())
	}
}

func TestStreamIllegalTransitions(t *testing.T) {
	// Receiving HEADERS on a stream we reserved locally is illegal.
	var m StreamStateMachine
	if _, err := m.Transition(EvSendPushPromise); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transition(EvRecvHeaders); err == nil {
		t.Error("recv HEADERS in reserved (local) accepted, want error")
	}
}

func TestClientStreamID(t *testing.T) {
	if !ClientStreamID(1) || !ClientStreamID(7) {
		t.Error("odd ids must be client-initiated")
	}
	if ClientStreamID(2) || ClientStreamID(0) {
		t.Error("even ids must not be client-initiated")
	}
}

func TestStateAndEventStrings(t *testing.T) {
	for st := StateIdle; st <= StateClosed; st++ {
		if st.String() == "" {
			t.Errorf("state %d has empty name", st)
		}
	}
	if StreamState(99).String() == "" || StreamEvent(99).String() == "" {
		t.Error("unknown values must still render")
	}
	for ev := EvSendHeaders; ev <= EvRecvPushPromise; ev++ {
		if ev.String() == "" {
			t.Errorf("event %d has empty name", ev)
		}
	}
}
