package h2

import "fmt"

// StreamState is the RFC 7540 section 5.1 stream state.
type StreamState uint8

// Stream states. The enum starts at 1 so the zero value is invalid.
const (
	StateIdle StreamState = iota + 1
	StateReservedLocal
	StateReservedRemote
	StateOpen
	StateHalfClosedLocal
	StateHalfClosedRemote
	StateClosed
)

var streamStateNames = map[StreamState]string{
	StateIdle:             "idle",
	StateReservedLocal:    "reserved (local)",
	StateReservedRemote:   "reserved (remote)",
	StateOpen:             "open",
	StateHalfClosedLocal:  "half-closed (local)",
	StateHalfClosedRemote: "half-closed (remote)",
	StateClosed:           "closed",
}

// String returns the RFC 7540 name of the state.
func (s StreamState) String() string {
	if n, ok := streamStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("StreamState(%d)", uint8(s))
}

// StreamEvent is a transition-triggering event on a stream, from the
// perspective of one endpoint.
type StreamEvent uint8

// Stream events. The enum starts at 1 so the zero value is invalid.
const (
	// EvSendHeaders: this endpoint sends HEADERS (without END_STREAM).
	EvSendHeaders StreamEvent = iota + 1
	// EvRecvHeaders: this endpoint receives HEADERS (without END_STREAM).
	EvRecvHeaders
	// EvSendEndStream: this endpoint sends a frame with END_STREAM.
	EvSendEndStream
	// EvRecvEndStream: this endpoint receives a frame with END_STREAM.
	EvRecvEndStream
	// EvSendRST: this endpoint sends RST_STREAM.
	EvSendRST
	// EvRecvRST: this endpoint receives RST_STREAM.
	EvRecvRST
	// EvSendPushPromise: this endpoint sends PUSH_PROMISE reserving the stream.
	EvSendPushPromise
	// EvRecvPushPromise: this endpoint receives PUSH_PROMISE reserving the stream.
	EvRecvPushPromise
)

var streamEventNames = map[StreamEvent]string{
	EvSendHeaders:     "send HEADERS",
	EvRecvHeaders:     "recv HEADERS",
	EvSendEndStream:   "send END_STREAM",
	EvRecvEndStream:   "recv END_STREAM",
	EvSendRST:         "send RST_STREAM",
	EvRecvRST:         "recv RST_STREAM",
	EvSendPushPromise: "send PUSH_PROMISE",
	EvRecvPushPromise: "recv PUSH_PROMISE",
}

// String returns a human-readable event name.
func (e StreamEvent) String() string {
	if n, ok := streamEventNames[e]; ok {
		return n
	}
	return fmt.Sprintf("StreamEvent(%d)", uint8(e))
}

// StreamStateMachine tracks one stream's lifecycle per RFC 7540
// section 5.1 from the perspective of a single endpoint. The zero
// value starts in the idle state.
type StreamStateMachine struct {
	state StreamState
}

// State returns the current state, mapping the zero value to idle.
func (m *StreamStateMachine) State() StreamState {
	if m.state == 0 {
		return StateIdle
	}
	return m.state
}

// Transition applies ev and returns the new state, or an error if the
// event is not legal in the current state. RST in either direction is
// always accepted once the stream has left idle.
func (m *StreamStateMachine) Transition(ev StreamEvent) (StreamState, error) {
	cur := m.State()
	next, err := nextStreamState(cur, ev)
	if err != nil {
		return cur, err
	}
	m.state = next
	return next, nil
}

func nextStreamState(cur StreamState, ev StreamEvent) (StreamState, error) {
	if ev == EvSendRST || ev == EvRecvRST {
		if cur == StateIdle {
			return 0, ConnectionError{Code: ErrCodeProtocol, Reason: "RST_STREAM on idle stream"}
		}
		return StateClosed, nil
	}
	switch cur {
	case StateIdle:
		switch ev {
		case EvSendHeaders, EvRecvHeaders:
			return StateOpen, nil
		case EvSendEndStream:
			// HEADERS+END_STREAM opens and immediately half-closes.
			return StateHalfClosedLocal, nil
		case EvRecvEndStream:
			return StateHalfClosedRemote, nil
		case EvSendPushPromise:
			return StateReservedLocal, nil
		case EvRecvPushPromise:
			return StateReservedRemote, nil
		}
	case StateReservedLocal:
		if ev == EvSendHeaders || ev == EvSendEndStream {
			return StateHalfClosedRemote, nil
		}
	case StateReservedRemote:
		if ev == EvRecvHeaders || ev == EvRecvEndStream {
			return StateHalfClosedLocal, nil
		}
	case StateOpen:
		switch ev {
		case EvSendEndStream:
			return StateHalfClosedLocal, nil
		case EvRecvEndStream:
			return StateHalfClosedRemote, nil
		case EvSendHeaders, EvRecvHeaders:
			// Trailers or repeated HEADERS keep the stream open.
			return StateOpen, nil
		}
	case StateHalfClosedLocal:
		switch ev {
		case EvRecvEndStream:
			return StateClosed, nil
		case EvRecvHeaders:
			return StateHalfClosedLocal, nil
		}
	case StateHalfClosedRemote:
		switch ev {
		case EvSendEndStream:
			return StateClosed, nil
		case EvSendHeaders:
			return StateHalfClosedRemote, nil
		}
	case StateClosed:
		return 0, StreamError{Code: ErrCodeStreamClosed, Reason: fmt.Sprintf("%v on closed stream", ev)}
	}
	return 0, ConnectionError{
		Code:   ErrCodeProtocol,
		Reason: fmt.Sprintf("illegal %v in state %v", ev, cur),
	}
}

// ClientStreamID reports whether id is a client-initiated (odd)
// stream id.
func ClientStreamID(id uint32) bool { return id%2 == 1 }
