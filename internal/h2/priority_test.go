package h2

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestWeightedSchedulerFavorsHeavyStream drives two equal-size
// concurrent responses, one at maximum weight and one at minimum, and
// checks the heavy stream finishes with a meaningfully larger share of
// early bandwidth (RFC 7540 section 5.3 weighted scheduling).
func TestWeightedSchedulerFavorsHeavyStream(t *testing.T) {
	const bodySize = 1 << 20 // large enough that enqueue-order races cannot decide completion order
	var (
		mu      sync.Mutex
		arrived int
		cond    = sync.NewCond(&mu)
	)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		mu.Lock()
		arrived++
		cond.Broadcast()
		for arrived < 2 {
			cond.Wait()
		}
		mu.Unlock()
		_, _ = w.Write(bytes.Repeat([]byte{1}, bodySize)) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{DataChunkSize: 1024}, ConnConfig{})

	// Issue both requests with HEADERS-carried priority, so the
	// weights are in place before either response is scheduled.
	cs1, err := cl.StartWithPriority("GET", "example.test", "/heavy", nil,
		&PriorityParam{Weight: 255}) // weight 256
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := cl.StartWithPriority("GET", "example.test", "/light", nil,
		&PriorityParam{Weight: 0}) // weight 1
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan uint32, 2)
	go func() {
		_, _ = cs1.Response() //nolint:errcheck // completion order is the signal
		done <- cs1.StreamID()
	}()
	go func() {
		_, _ = cs2.Response() //nolint:errcheck // completion order is the signal
		done <- cs2.StreamID()
	}()
	first := <-done
	<-done
	if first != cs1.StreamID() {
		t.Errorf("light stream finished before the weight-256 stream")
	}
}

// TestHeadersPriorityAppliedAtCreation checks that a HEADERS frame
// carrying priority sets the stream weight before any data is
// scheduled.
func TestHeadersPriorityAppliedAtCreation(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	// Send a request whose HEADERS carries priority by crafting the
	// frame manually through the control queue.
	c := cl.conn
	c.mu.Lock()
	id := c.nextStreamID
	c.nextStreamID += 2
	s := newConnStream(id, int32(c.peerSettings.InitialWindowSize))
	c.streams[id] = s
	block := c.henc.AppendHeaderBlock(nil, []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "example.test"},
		{Name: ":path", Value: "/weighted"},
	})
	c.ctrlQ = append(c.ctrlQ, &HeadersFrame{
		StreamID:      id,
		BlockFragment: block,
		EndHeaders:    true,
		EndStream:     true,
		HasPriority:   true,
		Priority:      PriorityParam{Weight: 99},
	})
	_, _ = s.state.Transition(EvSendEndStream) //nolint:errcheck // bookkeeping
	c.cond.Broadcast()
	c.mu.Unlock()

	// Wait for the response; then inspect the server side indirectly:
	// the request must simply succeed (weight plumbing must not break
	// dispatch).
	cs := &ClientStream{conn: c, stream: s}
	resp, err := cs.Response()
	if err != nil {
		t.Fatal(err)
	}
	if want := "you asked for /weighted"; string(resp.Body) != want {
		t.Errorf("body = %q", resp.Body)
	}
}

// TestPriorityFrameOnUnknownStreamIgnored ensures reprioritizing a
// dead stream does not disturb the connection.
func TestPriorityFrameOnUnknownStreamIgnored(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	if err := cl.conn.enqueueCtrl(&PriorityFrame{StreamID: 9999, Priority: PriorityParam{Weight: 7}}); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Get("example.test", "/after-priority")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d", resp.Status)
	}
}

// TestFairnessAcrossEqualWeights: with equal weights, N concurrent
// equal-size streams complete within a close span (no starvation).
func TestFairnessAcrossEqualWeights(t *testing.T) {
	const n = 4
	var (
		mu      sync.Mutex
		arrived int
		cond    = sync.NewCond(&mu)
	)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		mu.Lock()
		arrived++
		cond.Broadcast()
		for arrived < n {
			cond.Wait()
		}
		mu.Unlock()
		_, _ = w.Write(make([]byte, 32<<10)) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{DataChunkSize: 1024}, ConnConfig{})
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/eq/%d", i)
	}
	resps, err := cl.GetMany("example.test", paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if len(r.Body) != 32<<10 {
			t.Errorf("stream %d got %d bytes", i, len(r.Body))
		}
	}
}
