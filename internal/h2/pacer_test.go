package h2

import (
	"bytes"
	"testing"
	"time"
)

func TestPacerPassesPrefaceUntouched(t *testing.T) {
	var out bytes.Buffer
	p := NewRequestPacer(&out, 0, true)
	if _, err := p.Write([]byte(ClientPreface)); err != nil {
		t.Fatal(err)
	}
	if out.String() != ClientPreface {
		t.Errorf("preface corrupted: %q", out.String())
	}
}

func TestPacerReassemblesSplitFrames(t *testing.T) {
	var out bytes.Buffer
	p := NewRequestPacer(&out, 0, false)
	wire := MarshalFrame(&SettingsFrame{})
	wire = AppendFrame(wire, &DataFrame{StreamID: 1, Data: []byte("hello world")})
	// Dribble one byte at a time; output must equal input eventually.
	for _, b := range wire {
		if _, err := p.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out.Bytes(), wire) {
		t.Errorf("pacer corrupted the stream:\n got %x\nwant %x", out.Bytes(), wire)
	}
}

func TestPacerSpacesRequests(t *testing.T) {
	var out bytes.Buffer
	p := NewRequestPacer(&out, 40*time.Millisecond, false)
	var slept time.Duration
	p.Sleep = func(d time.Duration) { slept += d }

	var wire []byte
	for i := 0; i < 3; i++ {
		wire = AppendFrame(wire, &HeadersFrame{
			StreamID:      uint32(1 + 2*i),
			BlockFragment: []byte{0x82},
			EndHeaders:    true,
			EndStream:     true,
		})
	}
	if _, err := p.Write(wire); err != nil {
		t.Fatal(err)
	}
	// Three back-to-back requests: the 2nd and 3rd must each wait
	// nearly the full spacing.
	if slept < 70*time.Millisecond {
		t.Errorf("total hold = %v, want >= ~80ms for two spaced releases", slept)
	}
	if !bytes.Equal(out.Bytes(), wire) {
		t.Error("pacer altered frame bytes")
	}
}

func TestPacerDoesNotHoldDataFrames(t *testing.T) {
	var out bytes.Buffer
	p := NewRequestPacer(&out, time.Second, false)
	p.Sleep = func(time.Duration) { t.Error("DATA frame was held") }
	wire := MarshalFrame(&DataFrame{StreamID: 1, Data: make([]byte, 100)})
	if _, err := p.Write(wire); err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(wire) {
		t.Error("DATA frame not forwarded")
	}
}

func TestPacerObservesFrames(t *testing.T) {
	var out bytes.Buffer
	p := NewRequestPacer(&out, 0, false)
	var seen []FrameType
	p.OnFrame = func(f Frame) { seen = append(seen, f.Header().Type) }
	var wire []byte
	wire = AppendFrame(wire, &SettingsFrame{})
	wire = AppendFrame(wire, &HeadersFrame{StreamID: 1, BlockFragment: []byte{0x82}, EndHeaders: true})
	wire = AppendFrame(wire, &RSTStreamFrame{StreamID: 1, Code: ErrCodeCancel})
	if _, err := p.Write(wire); err != nil {
		t.Fatal(err)
	}
	want := []FrameType{FrameSettings, FrameHeaders, FrameRSTStream}
	if len(seen) != len(want) {
		t.Fatalf("observed %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("frame %d = %v, want %v", i, seen[i], want[i])
		}
	}
}
