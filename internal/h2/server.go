package h2

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Request is a decoded HTTP/2 request as seen by a server handler.
type Request struct {
	Method    string
	Scheme    string
	Path      string
	Authority string

	// Header holds the non-pseudo header fields in arrival order.
	Header []HeaderField

	// Body is the complete request body (empty for bodyless methods).
	Body []byte

	// StreamID is the HTTP/2 stream carrying the request.
	StreamID uint32
}

// HeaderValue returns the first value of the named header, or "".
func (r *Request) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// ResponseWriter lets a handler stream a response. Methods must not
// be called concurrently.
type ResponseWriter struct {
	conn    *Conn
	stream  *connStream
	started bool
	extra   []HeaderField
	push    func(path string, extra []HeaderField) error
}

// SetHeader adds a response header field; it must be called before
// the first Write or Flush.
func (w *ResponseWriter) SetHeader(name, value string) {
	w.extra = append(w.extra, HeaderField{Name: name, Value: value})
}

// WriteHeader sends the response HEADERS frame with the given status.
// It is implied (with status 200) by the first Write.
func (w *ResponseWriter) WriteHeader(status int) error {
	if w.started {
		return errors.New("h2: headers already written")
	}
	w.started = true
	fields := append([]HeaderField{{Name: ":status", Value: strconv.Itoa(status)}}, w.extra...)
	return w.conn.writeHeaders(w.stream, fields, false)
}

// Write queues body bytes for the scheduler. The first call sends
// HEADERS with status 200 if WriteHeader was not called.
func (w *ResponseWriter) Write(p []byte) (int, error) {
	if !w.started {
		if err := w.WriteHeader(200); err != nil {
			return 0, err
		}
	}
	if err := w.conn.enqueueData(w.stream, p, false); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Push initiates a server push of the given path (RFC 7540 section
// 8.2): it announces PUSH_PROMISE on this response's stream and
// dispatches a synthetic GET to the server's handler, whose response
// is sent on the promised stream. It fails when the peer disabled
// push.
func (w *ResponseWriter) Push(path string, extra []HeaderField) error {
	if w.push == nil {
		return errors.New("h2: push not available on this writer")
	}
	return w.push(path, extra)
}

// Close ends the response stream. Every handler must close its
// writer; Server does it automatically when the handler returns.
func (w *ResponseWriter) Close() error {
	if !w.started {
		if err := w.WriteHeader(200); err != nil {
			return err
		}
	}
	return w.conn.enqueueData(w.stream, nil, true)
}

// Handler responds to HTTP/2 requests.
type Handler interface {
	ServeH2(w *ResponseWriter, r *Request)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(w *ResponseWriter, r *Request)

// ServeH2 implements Handler.
func (f HandlerFunc) ServeH2(w *ResponseWriter, r *Request) { f(w, r) }

var _ Handler = HandlerFunc(nil)

// Server serves HTTP/2 (prior-knowledge cleartext) connections.
type Server struct {
	// Handler receives every request. Each request runs in its own
	// goroutine — the multi-threaded server operation the paper's
	// multiplexing analysis assumes.
	Handler Handler

	// Config tunes each accepted connection.
	Config ConnConfig

	mu       sync.Mutex
	conns    map[*Conn]struct{}
	ln       net.Listener
	draining bool
	wg       sync.WaitGroup
}

// Serve accepts connections on l until it is closed.
func (srv *Server) Serve(l net.Listener) error {
	srv.mu.Lock()
	srv.ln = l
	if srv.conns == nil {
		srv.conns = make(map[*Conn]struct{})
	}
	srv.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			return fmt.Errorf("h2: accept: %w", err)
		}
		srv.wg.Add(1)
		go func() {
			defer srv.wg.Done()
			_ = srv.ServeConn(nc) //nolint:errcheck // per-conn errors end that conn only
		}()
	}
}

// Shutdown gracefully drains the server: it stops accepting new
// connections, sends GOAWAY on every live connection, waits up to
// timeout for in-flight streams to finish, then closes everything.
func (srv *Server) Shutdown(timeout time.Duration) error {
	srv.mu.Lock()
	srv.draining = true
	ln := srv.ln
	srv.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	deadline := time.Now().Add(timeout)
	drainedStreak := 0
	for {
		srv.mu.Lock()
		conns := make([]*Conn, 0, len(srv.conns))
		for c := range srv.conns {
			conns = append(conns, c)
		}
		srv.mu.Unlock()
		allDrained := true
		for _, c := range conns {
			c.goAway()
			if !c.drained() {
				allDrained = false
			}
		}
		if allDrained {
			// Require a short streak so a connection racing through
			// Accept/registration is not missed by one snapshot.
			drainedStreak++
			if drainedStreak >= 5 {
				break
			}
		} else {
			drainedStreak = 0
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.mu.Lock()
	conns := make([]*Conn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	srv.mu.Unlock()
	for _, c := range conns {
		_ = c.Close() //nolint:errcheck // teardown after drain
	}
	srv.wg.Wait()
	return err
}

// Close shuts the listener and all live connections down and waits
// for connection goroutines to exit.
func (srv *Server) Close() error {
	srv.mu.Lock()
	ln := srv.ln
	conns := make([]*Conn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	srv.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close() //nolint:errcheck // best-effort teardown
	}
	srv.wg.Wait()
	return err
}

// ServeConn serves a single already-accepted connection, blocking
// until it terminates.
func (srv *Server) ServeConn(nc net.Conn) error {
	// Read and validate the client preface.
	buf := make([]byte, len(ClientPreface))
	if _, err := io.ReadFull(nc, buf); err != nil {
		_ = nc.Close() //nolint:errcheck // handshake failed
		return fmt.Errorf("%w: %v", ErrBadPreface, err)
	}
	if string(buf) != ClientPreface {
		_ = nc.Close() //nolint:errcheck // handshake failed
		return ErrBadPreface
	}

	c := newConn(nc, srv.Config, false)
	var reqWG sync.WaitGroup
	c.onRequest = func(conn *Conn, s *connStream) {
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			srv.serveRequest(conn, s)
		}()
	}

	srv.mu.Lock()
	if srv.conns == nil {
		srv.conns = make(map[*Conn]struct{})
	}
	srv.conns[c] = struct{}{}
	draining := srv.draining
	srv.mu.Unlock()
	if draining {
		// The server began draining while this connection was being
		// accepted: tell the client as soon as the loops start (the
		// GOAWAY is queued now and written right after SETTINGS).
		c.goAway()
	}
	defer func() {
		srv.mu.Lock()
		delete(srv.conns, c)
		srv.mu.Unlock()
	}()

	// Announce our settings before starting the loops so the first
	// frame on the wire is SETTINGS, per RFC 7540 section 3.5.
	if err := c.fr.WriteFrame(&SettingsFrame{Settings: c.localSettings.Diff()}); err != nil {
		_ = nc.Close() //nolint:errcheck // handshake failed
		return fmt.Errorf("h2: server settings: %w", err)
	}
	c.start()
	c.wg.Wait()
	reqWG.Wait()
	err := c.Err()
	if err != nil && (errors.Is(err, io.EOF) || errors.Is(err, ErrClosed)) {
		return nil
	}
	return err
}

// serveRequest builds the Request, invokes the handler, and closes
// the response.
func (srv *Server) serveRequest(c *Conn, s *connStream) {
	s.recvMu.Lock()
	fields := s.hdrs
	body := s.recvBuf
	s.recvMu.Unlock()

	req := &Request{StreamID: s.id, Body: body}
	for _, f := range fields {
		switch f.Name {
		case ":method":
			req.Method = f.Value
		case ":scheme":
			req.Scheme = f.Value
		case ":path":
			req.Path = f.Value
		case ":authority":
			req.Authority = f.Value
		default:
			if !strings.HasPrefix(f.Name, ":") {
				req.Header = append(req.Header, f)
			}
		}
	}

	w := &ResponseWriter{conn: c, stream: s}
	w.push = func(path string, extra []HeaderField) error {
		fields := []HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: req.Scheme},
			{Name: ":authority", Value: req.Authority},
			{Name: ":path", Value: path},
		}
		fields = append(fields, extra...)
		ps, err := c.push(s, fields)
		if err != nil {
			return err
		}
		ps.deliverHeaders(fields, true)
		if c.onRequest != nil {
			c.onRequest(c, ps)
		}
		return nil
	}
	h := srv.Handler
	if h == nil {
		h = HandlerFunc(func(w *ResponseWriter, _ *Request) {
			_ = w.WriteHeader(404) //nolint:errcheck // nothing else to do
		})
	}
	h.ServeH2(w, req)
	_ = w.Close() //nolint:errcheck // stream may already be reset
}
