package h2

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer starts a Server on a loopback listener and returns a
// connected Client. Both are torn down with t.Cleanup.
func testServer(t *testing.T, h Handler, scfg, ccfg ConnConfig) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h, Config: scfg}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) //nolint:errcheck // ends when listener closes
	}()
	t.Cleanup(func() {
		_ = srv.Close() //nolint:errcheck // test teardown
		<-done
	})
	cl, err := Dial(ln.Addr().String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() }) //nolint:errcheck // test teardown
	return cl
}

func echoPathHandler() Handler {
	return HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.SetHeader("content-type", "text/plain")
		_, _ = w.Write([]byte("you asked for " + r.Path)) //nolint:errcheck // test handler
	})
}

func TestClientServerBasicGet(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	resp, err := cl.Get("example.test", "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d, want 200", resp.Status)
	}
	if got := string(resp.Body); got != "you asked for /hello" {
		t.Errorf("body = %q", got)
	}
	if resp.HeaderValue("content-type") != "text/plain" {
		t.Errorf("content-type = %q", resp.HeaderValue("content-type"))
	}
}

func TestClientServerSequentialRequests(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/obj/%d", i)
		resp, err := cl.Get("example.test", path)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want := "you asked for " + path; string(resp.Body) != want {
			t.Fatalf("request %d body = %q, want %q", i, resp.Body, want)
		}
	}
}

func TestClientServerLargeBody(t *testing.T) {
	const size = 300 << 10 // spans several flow-control windows
	body := bytes.Repeat([]byte("abcdefgh"), size/8)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		_, _ = w.Write(body) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	resp, err := cl.Get("example.test", "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Errorf("body mismatch: got %d bytes, want %d", len(resp.Body), len(body))
	}
}

func TestClientServerConcurrentMultiplexing(t *testing.T) {
	// Handlers block until all requests have arrived, guaranteeing
	// concurrent streams; small DATA chunks force interleaving.
	const n = 8
	var (
		mu      sync.Mutex
		arrived int
		cond    = sync.NewCond(&mu)
	)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		mu.Lock()
		arrived++
		cond.Broadcast()
		for arrived < n {
			cond.Wait()
		}
		mu.Unlock()
		idx := strings.TrimPrefix(r.Path, "/obj/")
		_, _ = w.Write(bytes.Repeat([]byte(idx[:1]), 8<<10)) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{DataChunkSize: 512}, ConnConfig{})
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/obj/%d", i)
	}
	resps, err := cl.GetMany("example.test", paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		want := byte('0' + i)
		if len(r.Body) != 8<<10 {
			t.Errorf("response %d: %d bytes, want %d", i, len(r.Body), 8<<10)
		}
		for _, b := range r.Body {
			if b != want {
				t.Fatalf("response %d: corrupted byte %q, want %q", i, b, want)
			}
		}
	}
}

func TestClientCancelRequest(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		if r.Path != "/slow" {
			_, _ = w.Write([]byte("fast")) //nolint:errcheck // test handler
			return
		}
		close(started)
		<-release
		_, _ = w.Write([]byte("late")) //nolint:errcheck // stream may be reset
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	cs, err := cl.StartGet("example.test", "/slow")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cs.Cancel()
	if _, err := cs.Response(); err == nil {
		t.Error("cancelled request returned a response, want error")
	}
	close(release)
	// The connection must remain usable after a stream reset.
	resp, err := cl.Get("example.test", "/after")
	if err != nil {
		t.Fatalf("connection broken after cancel: %v", err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d, want 200", resp.Status)
	}
}

func TestServerCustomStatusAndHeaders(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.SetHeader("x-reason", "gone fishing")
		if err := w.WriteHeader(404); err != nil {
			t.Errorf("WriteHeader: %v", err)
		}
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	resp, err := cl.Get("example.test", "/missing")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Errorf("status = %d, want 404", resp.Status)
	}
	if resp.HeaderValue("x-reason") != "gone fishing" {
		t.Errorf("x-reason = %q", resp.HeaderValue("x-reason"))
	}
	if len(resp.Body) != 0 {
		t.Errorf("body = %q, want empty", resp.Body)
	}
}

func TestServerNilHandler404(t *testing.T) {
	cl := testServer(t, nil, ConnConfig{}, ConnConfig{})
	resp, err := cl.Get("example.test", "/whatever")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Errorf("status = %d, want 404", resp.Status)
	}
}

func TestRequestHeadersRoundTrip(t *testing.T) {
	gotHdr := make(chan string, 1)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		gotHdr <- r.HeaderValue("x-token")
		_, _ = w.Write([]byte("ok")) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	cs, err := cl.Start("GET", "example.test", "/auth", []HeaderField{
		{Name: "x-token", Value: "s3cr3t", Sensitive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Response(); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-gotHdr:
		if v != "s3cr3t" {
			t.Errorf("x-token = %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never saw the header")
	}
}

func TestServerRejectsBadPreface(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck // test teardown
	srv := &Server{Handler: echoPathHandler()}
	errc := make(chan error, 1)
	go func() {
		nc, aerr := ln.Accept()
		if aerr != nil {
			errc <- aerr
			return
		}
		errc <- srv.ServeConn(nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck // test teardown
	if _, err := nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Error("bad preface accepted, want error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not reject bad preface")
	}
}

func TestPingDoesNotDisturbRequests(t *testing.T) {
	cl := testServer(t, echoPathHandler(), ConnConfig{}, ConnConfig{})
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Get("example.test", "/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d", resp.Status)
	}
}

func TestManyStreamsStress(t *testing.T) {
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		n, _ := strconv.Atoi(strings.TrimPrefix(r.Path, "/n/"))
		_, _ = w.Write(bytes.Repeat([]byte{byte(n)}, 100+n)) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, ConnConfig{DataChunkSize: 64}, ConnConfig{})
	paths := make([]string, 50)
	for i := range paths {
		paths[i] = "/n/" + strconv.Itoa(i)
	}
	resps, err := cl.GetMany("example.test", paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if len(r.Body) != 100+i {
			t.Errorf("response %d: %d bytes, want %d", i, len(r.Body), 100+i)
		}
	}
}

func TestSettingsSmallInitialWindow(t *testing.T) {
	// A 1 KiB initial window forces WINDOW_UPDATE round trips; the
	// transfer must still complete.
	scfg := ConnConfig{}
	ccfg := ConnConfig{Settings: func() Settings {
		s := DefaultSettings()
		s.InitialWindowSize = 1024
		return s
	}()}
	body := bytes.Repeat([]byte("z"), 64<<10)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		_, _ = w.Write(body) //nolint:errcheck // test handler
	})
	cl := testServer(t, h, scfg, ccfg)
	resp, err := cl.Get("example.test", "/windowed")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Errorf("body mismatch: %d bytes, want %d", len(resp.Body), len(body))
	}
}
