package h2

import (
	"testing"
	"testing/quick"
)

func TestFlowWindowConsumeReplenish(t *testing.T) {
	w := NewFlowWindow(100)
	if !w.Consume(60) {
		t.Fatal("consume 60 of 100 failed")
	}
	if w.Consume(60) {
		t.Fatal("consume beyond credit succeeded")
	}
	if w.Available() != 40 {
		t.Fatalf("available = %d, want 40", w.Available())
	}
	if err := w.Replenish(60); err != nil {
		t.Fatal(err)
	}
	if w.Available() != 100 {
		t.Fatalf("available = %d, want 100", w.Available())
	}
}

func TestFlowWindowConsumeUpTo(t *testing.T) {
	w := NewFlowWindow(10)
	if got := w.ConsumeUpTo(25); got != 10 {
		t.Errorf("ConsumeUpTo(25) = %d, want 10", got)
	}
	if got := w.ConsumeUpTo(5); got != 0 {
		t.Errorf("ConsumeUpTo on empty = %d, want 0", got)
	}
	if got := w.ConsumeUpTo(-3); got != 0 {
		t.Errorf("ConsumeUpTo(-3) = %d, want 0", got)
	}
}

func TestFlowWindowOverflow(t *testing.T) {
	w := NewFlowWindow(MaxWindowSize)
	if err := w.Replenish(1); err == nil {
		t.Error("replenish past 2^31-1 accepted, want error")
	}
	if err := w.Replenish(-1); err == nil {
		t.Error("negative replenish accepted, want error")
	}
}

func TestFlowWindowAdjustNegative(t *testing.T) {
	// SETTINGS_INITIAL_WINDOW_SIZE decrease can push a stream window
	// negative; sends must stall until it recovers.
	w := NewFlowWindow(100)
	if !w.Consume(80) {
		t.Fatal("setup consume failed")
	}
	if err := w.Adjust(-90); err != nil {
		t.Fatal(err)
	}
	if w.Available() != -70 {
		t.Fatalf("available = %d, want -70", w.Available())
	}
	if w.Consume(1) {
		t.Error("consume on negative window succeeded")
	}
	if got := w.ConsumeUpTo(10); got != 0 {
		t.Errorf("ConsumeUpTo on negative window = %d, want 0", got)
	}
	if err := w.Replenish(100); err != nil {
		t.Fatal(err)
	}
	if w.Available() != 30 {
		t.Fatalf("available = %d, want 30", w.Available())
	}
}

func TestFlowWindowConservationQuick(t *testing.T) {
	// Invariant: available == initial - consumed + replenished for any
	// sequence of successful operations.
	f := func(initial int32, ops []int16) bool {
		if initial < 0 {
			initial = -initial
		}
		w := NewFlowWindow(initial)
		expect := int64(initial)
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if w.Consume(n) {
					expect -= n
				}
			} else {
				if err := w.Replenish(-n); err == nil {
					expect += -n
				}
			}
			if w.Available() != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
