package h2

import (
	"bytes"
	"io"
	"testing"
)

func TestClientStreamRead(t *testing.T) {
	body := bytes.Repeat([]byte("streaming-"), 2000)
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		w.SetHeader("content-type", "text/plain")
		// Write in pieces so Read observes incremental arrival.
		for off := 0; off < len(body); off += 4096 {
			end := off + 4096
			if end > len(body) {
				end = len(body)
			}
			if _, err := w.Write(body[off:end]); err != nil {
				return
			}
		}
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	cs, err := cl.StartGet("example.test", "/stream")
	if err != nil {
		t.Fatal(err)
	}
	hdrs, err := cs.Headers()
	if err != nil {
		t.Fatal(err)
	}
	foundCT := false
	for _, f := range hdrs {
		if f.Name == "content-type" && f.Value == "text/plain" {
			foundCT = true
		}
	}
	if !foundCT {
		t.Errorf("headers = %v", hdrs)
	}
	got, err := io.ReadAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("streamed %d bytes, want %d", len(got), len(body))
	}
	// Subsequent reads keep returning EOF.
	if _, err := cs.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("post-EOF read = %v", err)
	}
}

func TestClientStreamReadCancelled(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		if _, err := w.Write([]byte("partial")); err != nil {
			return
		}
		close(started)
		<-release
	})
	cl := testServer(t, h, ConnConfig{}, ConnConfig{})
	cs, err := cl.StartGet("example.test", "/hang")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Drain the partial data, then cancel: Read must surface an error,
	// not hang.
	buf := make([]byte, 7)
	if _, err := io.ReadFull(cs, buf); err != nil {
		t.Fatal(err)
	}
	cs.Cancel()
	close(release)
	if _, err := cs.Read(make([]byte, 1)); err == nil || err == io.EOF {
		t.Errorf("read after cancel = %v, want a stream error", err)
	}
}
