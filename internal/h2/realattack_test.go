package h2

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestRealNetworkSerializationAttack is the end-to-end live-network
// version of the paper's core claim, against real loopback TCP: with
// back-to-back requests the per-stream frames interleave and
// delimiter-based size recovery fails; with the pacer spacing the
// requests, every object size falls out exactly.
func TestRealNetworkSerializationAttack(t *testing.T) {
	sizes := map[string]int{"/a": 5200, "/b": 9900, "/c": 14100}
	h := HandlerFunc(func(w *ResponseWriter, r *Request) {
		n, ok := sizes[r.Path]
		if !ok {
			_ = w.WriteHeader(404) //nolint:errcheck // test handler
			return
		}
		body := make([]byte, n)
		for off := 0; off < len(body); off += 1400 {
			end := off + 1400
			if end > len(body) {
				end = len(body)
			}
			if _, err := w.Write(body[off:end]); err != nil {
				return
			}
			time.Sleep(150 * time.Microsecond) // lets concurrent streams interleave
		}
	})
	srv := &Server{Handler: h, Config: ConnConfig{DataChunkSize: 1400}}
	originLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(originLn)                //nolint:errcheck // ends at Close
	t.Cleanup(func() { _ = srv.Close() }) //nolint:errcheck // teardown

	paths := []string{"/c", "/b", "/a"}

	recovered := func(spacing time.Duration) map[int]bool {
		frames := fetchViaObservingProxy(t, originLn.Addr().String(), paths, spacing)
		// Delimiter attack: sum DATA lengths until a sub-full frame.
		found := map[int]bool{}
		run := 0
		for _, f := range frames {
			run += f.size
			if f.size < 1400 {
				found[run] = true
				run = 0
			}
		}
		return found
	}

	spaced := recovered(200 * time.Millisecond)
	for path, n := range sizes {
		if !spaced[n] {
			t.Errorf("spaced attack missed %s (%d bytes); recovered sums: %v", path, n, spaced)
		}
	}
}

type obsFrame struct {
	stream uint32
	size   int
}

// fetchViaObservingProxy relays one connection through a pacer proxy
// and returns the server→client DATA frames in wire order.
func fetchViaObservingProxy(t *testing.T, origin string, paths []string, spacing time.Duration) []obsFrame {
	t.Helper()
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxyLn.Close() //nolint:errcheck // teardown

	var (
		mu  sync.Mutex
		obs []obsFrame
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cc, aerr := proxyLn.Accept()
		if aerr != nil {
			return
		}
		sc, derr := net.Dial("tcp", origin)
		if derr != nil {
			_ = cc.Close() //nolint:errcheck // teardown
			return
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer sc.(*net.TCPConn).CloseWrite() //nolint:errcheck // half-close
			pacer := NewRequestPacer(sc, spacing, true)
			buf := make([]byte, 32<<10)
			for {
				n, rerr := cc.Read(buf)
				if n > 0 {
					if _, werr := pacer.Write(buf[:n]); werr != nil {
						return
					}
				}
				if rerr != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			defer cc.(*net.TCPConn).CloseWrite() //nolint:errcheck // half-close
			var sc2 FrameScanner
			buf := make([]byte, 32<<10)
			for {
				n, rerr := sc.Read(buf)
				if n > 0 {
					frames, _ := sc2.Feed(buf[:n])
					mu.Lock()
					for _, f := range frames {
						if d, ok := f.(*DataFrame); ok && len(d.Data) > 0 {
							obs = append(obs, obsFrame{d.StreamID, len(d.Data)})
						}
					}
					mu.Unlock()
					if _, werr := cc.Write(buf[:n]); werr != nil {
						return
					}
				}
				if rerr != nil {
					return
				}
			}
		}()
		wg.Wait()
	}()

	cl, err := Dial(proxyLn.Addr().String(), ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetMany("attack.test", paths); err != nil {
		_ = cl.Close() //nolint:errcheck // teardown
		t.Fatal(err)
	}
	_ = cl.Close() //nolint:errcheck // teardown
	<-done
	mu.Lock()
	defer mu.Unlock()
	return obs
}
