package h2

import (
	"fmt"
	"io"
	"net"
	"strconv"
)

// Response is a complete HTTP/2 response.
type Response struct {
	Status int
	Header []HeaderField
	Body   []byte

	// StreamID is the stream the response arrived on.
	StreamID uint32
}

// HeaderValue returns the first value of the named header, or "".
func (r *Response) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// Client is an HTTP/2 client over a single connection. It supports
// concurrent requests, which the server may multiplex.
type Client struct {
	conn *Conn
}

// Dial connects to addr (TCP) and performs the HTTP/2 prior-knowledge
// handshake.
func Dial(addr string, cfg ConnConfig) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("h2: dial %s: %w", addr, err)
	}
	return NewClientConn(nc, cfg)
}

// NewClientConn performs the client side of the HTTP/2 handshake over
// an established connection.
func NewClientConn(nc net.Conn, cfg ConnConfig) (*Client, error) {
	if _, err := io.WriteString(nc, ClientPreface); err != nil {
		_ = nc.Close() //nolint:errcheck // handshake failed
		return nil, fmt.Errorf("h2: write preface: %w", err)
	}
	c := newConn(nc, cfg, true)
	if err := c.fr.WriteFrame(&SettingsFrame{Settings: c.localSettings.Diff()}); err != nil {
		_ = nc.Close() //nolint:errcheck // handshake failed
		return nil, fmt.Errorf("h2: client settings: %w", err)
	}
	c.start()
	return &Client{conn: c}, nil
}

// OnPush registers a callback invoked (from the connection's read
// loop) for every accepted server push. The pushed response is read
// from the returned stream like any other. Requires
// ConnConfig.AcceptPush.
func (cl *Client) OnPush(fn func(path string, cs *ClientStream)) {
	cl.conn.mu.Lock()
	defer cl.conn.mu.Unlock()
	cl.conn.onPush = func(path string, s *connStream) {
		fn(path, &ClientStream{conn: cl.conn, stream: s})
	}
}

// Close tears down the connection.
func (cl *Client) Close() error { return cl.conn.Close() }

// Err returns the terminal connection error, if any.
func (cl *Client) Err() error { return cl.conn.Err() }

// ClientStream is an in-flight request.
type ClientStream struct {
	conn   *Conn
	stream *connStream

	readOff int // Read's position within the buffered body
}

// StreamID returns the HTTP/2 stream id of the request.
func (cs *ClientStream) StreamID() uint32 { return cs.stream.id }

// StartGet issues a GET without waiting for the response. Concurrent
// StartGet calls give the server the opportunity to multiplex.
func (cl *Client) StartGet(authority, path string) (*ClientStream, error) {
	return cl.Start("GET", authority, path, nil)
}

// Start issues a request with optional extra headers and returns the
// in-flight stream.
func (cl *Client) Start(method, authority, path string, extra []HeaderField) (*ClientStream, error) {
	return cl.StartWithPriority(method, authority, path, extra, nil)
}

// StartWithPriority issues a request whose HEADERS frame carries
// RFC 7540 section 5.3 priority information (weight 0 encodes 1, 255
// encodes 256). The server's write scheduler allocates bandwidth to
// concurrent responses proportionally.
func (cl *Client) StartWithPriority(method, authority, path string, extra []HeaderField, prio *PriorityParam) (*ClientStream, error) {
	c := cl.conn
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		return nil, err
	}
	if c.draining {
		c.mu.Unlock()
		return nil, fmt.Errorf("h2: connection is draining after GOAWAY: %w", ErrClosed)
	}
	id := c.nextStreamID
	c.nextStreamID += 2
	s := newConnStream(id, int32(c.peerSettings.InitialWindowSize))
	c.streams[id] = s
	c.mu.Unlock()

	fields := []HeaderField{
		{Name: ":method", Value: method},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: authority},
		{Name: ":path", Value: path},
	}
	fields = append(fields, extra...)
	if err := c.writeHeadersPrio(s, fields, true, prio); err != nil {
		return nil, err
	}
	return &ClientStream{conn: c, stream: s}, nil
}

// Headers blocks until the response header block arrives and returns
// it (pseudo-headers included). Use with Read for streaming
// consumption; Response remains the buffered alternative.
func (cs *ClientStream) Headers() ([]HeaderField, error) {
	s := cs.stream
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	for s.recvErr == nil && !s.hdrsReady {
		s.recvCond.Wait()
	}
	if !s.hdrsReady {
		return nil, s.recvErr
	}
	return s.hdrs, nil
}

// Read streams the response body as DATA frames arrive, returning
// io.EOF after the final frame. Do not mix with Response, which
// consumes the same buffer all at once.
func (cs *ClientStream) Read(p []byte) (int, error) {
	s := cs.stream
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	for {
		if cs.readOff < len(s.recvBuf) {
			n := copy(p, s.recvBuf[cs.readOff:])
			cs.readOff += n
			return n, nil
		}
		if s.recvEnd {
			return 0, io.EOF
		}
		if s.recvErr != nil {
			return 0, s.recvErr
		}
		s.recvCond.Wait()
	}
}

var _ io.Reader = (*ClientStream)(nil)

// Cancel aborts the request with RST_STREAM(CANCEL).
func (cs *ClientStream) Cancel() { cs.conn.resetStream(cs.stream.id, ErrCodeCancel) }

// Response blocks until the stream completes and returns the full
// response.
func (cs *ClientStream) Response() (*Response, error) {
	s := cs.stream
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	for s.recvErr == nil && !(s.hdrsReady && s.recvEnd) {
		s.recvCond.Wait()
	}
	if s.recvErr != nil && !(s.hdrsReady && s.recvEnd) {
		return nil, s.recvErr
	}
	resp := &Response{StreamID: s.id, Body: s.recvBuf}
	for _, f := range s.hdrs {
		if f.Name == ":status" {
			st, err := strconv.Atoi(f.Value)
			if err != nil {
				return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "bad :status"}
			}
			resp.Status = st
			continue
		}
		resp.Header = append(resp.Header, f)
	}
	if resp.Status == 0 {
		return nil, ConnectionError{Code: ErrCodeProtocol, Reason: "missing :status"}
	}
	return resp, nil
}

// Post issues a POST carrying body and waits for the response.
func (cl *Client) Post(authority, path string, body []byte, extra []HeaderField) (*Response, error) {
	c := cl.conn
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		return nil, err
	}
	if c.draining {
		c.mu.Unlock()
		return nil, fmt.Errorf("h2: connection is draining after GOAWAY: %w", ErrClosed)
	}
	id := c.nextStreamID
	c.nextStreamID += 2
	s := newConnStream(id, int32(c.peerSettings.InitialWindowSize))
	c.streams[id] = s
	c.mu.Unlock()

	fields := []HeaderField{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: authority},
		{Name: ":path", Value: path},
	}
	fields = append(fields, extra...)
	if err := c.writeHeaders(s, fields, false); err != nil {
		return nil, err
	}
	if err := c.enqueueData(s, body, true); err != nil {
		return nil, err
	}
	cs := &ClientStream{conn: c, stream: s}
	return cs.Response()
}

// Get issues a GET and waits for the complete response.
func (cl *Client) Get(authority, path string) (*Response, error) {
	cs, err := cl.StartGet(authority, path)
	if err != nil {
		return nil, err
	}
	return cs.Response()
}

// GetMany issues all paths back-to-back and then collects every
// response, exercising server-side multiplexing.
func (cl *Client) GetMany(authority string, paths []string) ([]*Response, error) {
	streams := make([]*ClientStream, 0, len(paths))
	for _, p := range paths {
		cs, err := cl.StartGet(authority, p)
		if err != nil {
			return nil, err
		}
		streams = append(streams, cs)
	}
	resps := make([]*Response, 0, len(streams))
	var firstErr error
	for _, cs := range streams {
		r, err := cs.Response()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		resps = append(resps, r)
	}
	if firstErr != nil {
		return resps, firstErr
	}
	return resps, nil
}

// Ping sends a PING and returns immediately (fire-and-forget liveness
// probe; the read loop consumes the ack).
func (cl *Client) Ping() error {
	var d [8]byte
	copy(d[:], "h2health")
	return cl.conn.enqueueCtrl(&PingFrame{Data: d})
}
