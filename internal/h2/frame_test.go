package h2

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip writes f through a Framer and reads it back.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	fr := NewFramer(&buf, &buf)
	if err := fr.WriteFrame(f); err != nil {
		t.Fatalf("write %v: %v", f.Header(), err)
	}
	got, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("read back %v: %v", f.Header(), err)
	}
	return got
}

func TestFrameRoundTripAllTypes(t *testing.T) {
	frames := []Frame{
		&DataFrame{StreamID: 1, Data: []byte("hello"), EndStream: true},
		&DataFrame{StreamID: 3, Data: []byte("padded"), Padded: true, PadLength: 7},
		&HeadersFrame{StreamID: 5, BlockFragment: []byte{0x82}, EndHeaders: true, EndStream: true},
		&HeadersFrame{
			StreamID:      7,
			BlockFragment: []byte{0x82, 0x86},
			HasPriority:   true,
			Priority:      PriorityParam{StreamDep: 3, Exclusive: true, Weight: 200},
			Padded:        true,
			PadLength:     3,
		},
		&PriorityFrame{StreamID: 9, Priority: PriorityParam{StreamDep: 1, Weight: 15}},
		&RSTStreamFrame{StreamID: 11, Code: ErrCodeCancel},
		&SettingsFrame{Settings: []Setting{
			{SettingInitialWindowSize, 1 << 20},
			{SettingMaxFrameSize, 1 << 15},
		}},
		&SettingsFrame{Ack: true},
		&PushPromiseFrame{StreamID: 13, PromiseID: 14, BlockFragment: []byte{0x84}, EndHeaders: true},
		&PingFrame{Data: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}},
		&PingFrame{Ack: true, Data: [8]byte{8, 7, 6, 5, 4, 3, 2, 1}},
		&GoAwayFrame{LastStreamID: 15, Code: ErrCodeEnhanceYourCalm, DebugData: []byte("bye")},
		&WindowUpdateFrame{StreamID: 0, Increment: 12345},
		&WindowUpdateFrame{StreamID: 17, Increment: 1},
		&ContinuationFrame{StreamID: 19, BlockFragment: []byte{0x01, 0x02}, EndHeaders: true},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		// Clear alias-only differences: decoded slices point into the
		// framer buffer, so compare by deep equality of values.
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip %v:\n got %#v\nwant %#v", f.Header(), got, f)
		}
	}
}

func TestFrameHeaderEncoding(t *testing.T) {
	h := FrameHeader{Length: 0x040302, Type: FrameData, Flags: FlagEndStream, StreamID: 0x01020304}
	b := appendFrameHeader(nil, h)
	if len(b) != FrameHeaderLen {
		t.Fatalf("header length %d, want %d", len(b), FrameHeaderLen)
	}
	got := parseFrameHeader(b)
	if got != h {
		t.Errorf("parse(append(%+v)) = %+v", h, got)
	}
	if h.WireLen() != FrameHeaderLen+0x040302 {
		t.Errorf("WireLen = %d", h.WireLen())
	}
}

func TestFrameHeaderReservedBitMasked(t *testing.T) {
	h := FrameHeader{Type: FramePing, StreamID: 0xffffffff}
	b := appendFrameHeader(nil, h)
	got := parseFrameHeader(b)
	if got.StreamID != 0x7fffffff {
		t.Errorf("stream id = 0x%x, want reserved bit masked", got.StreamID)
	}
}

func TestFramerRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewFramer(&buf, nil)
	if err := w.WriteFrame(&DataFrame{StreamID: 1, Data: make([]byte, 2048)}); err != nil {
		t.Fatal(err)
	}
	r := NewFramer(nil, &buf)
	r.MaxReadFrameSize = 1024
	if _, err := r.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFramerEOF(t *testing.T) {
	r := NewFramer(nil, bytes.NewReader(nil))
	if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
	// Truncated header / payload yield ErrUnexpectedEOF.
	r = NewFramer(nil, bytes.NewReader([]byte{0, 0}))
	if _, err := r.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header err = %v, want ErrUnexpectedEOF", err)
	}
	full := MarshalFrame(&PingFrame{})
	r = NewFramer(nil, bytes.NewReader(full[:len(full)-1]))
	if _, err := r.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestParseRejectsProtocolViolations(t *testing.T) {
	cases := []struct {
		name string
		h    FrameHeader
		pay  []byte
	}{
		{"DATA on stream 0", FrameHeader{Type: FrameData, Length: 1}, []byte{0}},
		{"HEADERS on stream 0", FrameHeader{Type: FrameHeaders, Length: 1}, []byte{0x82}},
		{"PRIORITY on stream 0", FrameHeader{Type: FramePriority, Length: 5}, make([]byte, 5)},
		{"RST on stream 0", FrameHeader{Type: FrameRSTStream, Length: 4}, make([]byte, 4)},
		{"RST bad length", FrameHeader{Type: FrameRSTStream, StreamID: 1, Length: 3}, make([]byte, 3)},
		{"SETTINGS on stream", FrameHeader{Type: FrameSettings, StreamID: 1, Length: 0}, nil},
		{"SETTINGS bad length", FrameHeader{Type: FrameSettings, Length: 5}, make([]byte, 5)},
		{"SETTINGS ack payload", FrameHeader{Type: FrameSettings, Flags: FlagAck, Length: 6}, make([]byte, 6)},
		{"PING on stream", FrameHeader{Type: FramePing, StreamID: 1, Length: 8}, make([]byte, 8)},
		{"PING bad length", FrameHeader{Type: FramePing, Length: 7}, make([]byte, 7)},
		{"GOAWAY on stream", FrameHeader{Type: FrameGoAway, StreamID: 1, Length: 8}, make([]byte, 8)},
		{"GOAWAY truncated", FrameHeader{Type: FrameGoAway, Length: 4}, make([]byte, 4)},
		{"WINDOW_UPDATE bad length", FrameHeader{Type: FrameWindowUpdate, StreamID: 1, Length: 3}, make([]byte, 3)},
		{"WINDOW_UPDATE zero conn", FrameHeader{Type: FrameWindowUpdate, Length: 4}, make([]byte, 4)},
		{"WINDOW_UPDATE zero stream", FrameHeader{Type: FrameWindowUpdate, StreamID: 1, Length: 4}, make([]byte, 4)},
		{"CONTINUATION on stream 0", FrameHeader{Type: FrameContinuation, Length: 0}, nil},
		{"padding exceeds payload", FrameHeader{Type: FrameData, StreamID: 1, Flags: FlagPadded, Length: 2}, []byte{5, 0}},
		{"padded empty", FrameHeader{Type: FrameData, StreamID: 1, Flags: FlagPadded, Length: 0}, nil},
	}
	for _, c := range cases {
		if _, err := ParseFramePayload(c.h, c.pay); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestParseUnknownFrameType(t *testing.T) {
	h := FrameHeader{Type: FrameType(0x42), StreamID: 3, Length: 2, Flags: 0x5}
	f, err := ParseFramePayload(h, []byte{0xaa, 0xbb})
	if err != nil {
		t.Fatal(err)
	}
	u, ok := f.(*UnknownFrame)
	if !ok {
		t.Fatalf("parsed %T, want *UnknownFrame", f)
	}
	if !bytes.Equal(MarshalFrame(u), append(appendFrameHeader(nil, h), 0xaa, 0xbb)) {
		t.Error("unknown frame did not re-serialize identically")
	}
}

func TestSettingsFrameValue(t *testing.T) {
	f := &SettingsFrame{Settings: []Setting{
		{SettingInitialWindowSize, 100},
		{SettingInitialWindowSize, 200}, // last occurrence wins
	}}
	if v, ok := f.Value(SettingInitialWindowSize); !ok || v != 200 {
		t.Errorf("Value = %d, %v; want 200, true", v, ok)
	}
	if _, ok := f.Value(SettingMaxFrameSize); ok {
		t.Error("absent setting reported present")
	}
}

func TestSettingValidation(t *testing.T) {
	bad := []Setting{
		{SettingEnablePush, 2},
		{SettingInitialWindowSize, MaxWindowSize + 1},
		{SettingMaxFrameSize, DefaultMaxFrameSize - 1},
		{SettingMaxFrameSize, MaxAllowedFrameSize + 1},
	}
	for _, s := range bad {
		if err := s.Valid(); err == nil {
			t.Errorf("setting %v accepted, want error", s)
		}
	}
	good := []Setting{
		{SettingEnablePush, 0},
		{SettingEnablePush, 1},
		{SettingInitialWindowSize, MaxWindowSize},
		{SettingMaxFrameSize, DefaultMaxFrameSize},
		{SettingHeaderTableSize, 0},
	}
	for _, s := range good {
		if err := s.Valid(); err != nil {
			t.Errorf("setting %v rejected: %v", s, err)
		}
	}
}

func TestSettingsApplyAndDiff(t *testing.T) {
	s := DefaultSettings()
	frame := &SettingsFrame{Settings: []Setting{
		{SettingInitialWindowSize, 1 << 20},
		{SettingEnablePush, 0},
		{SettingMaxConcurrentStreams, 100},
	}}
	if err := s.Apply(frame); err != nil {
		t.Fatal(err)
	}
	if s.InitialWindowSize != 1<<20 || s.EnablePush || s.MaxConcurrentStreams != 100 {
		t.Errorf("applied settings = %+v", s)
	}
	var round Settings = DefaultSettings()
	if err := round.Apply(&SettingsFrame{Settings: s.Diff()}); err != nil {
		t.Fatal(err)
	}
	if round != s {
		t.Errorf("Diff round trip = %+v, want %+v", round, s)
	}
	if len(DefaultSettings().Diff()) != 0 {
		t.Error("DefaultSettings().Diff() not empty")
	}
}

func TestDataFrameQuickRoundTrip(t *testing.T) {
	f := func(stream uint32, data []byte, end bool, padLen uint8) bool {
		if stream == 0 {
			stream = 1
		}
		in := &DataFrame{
			StreamID:  stream & 0x7fffffff,
			Data:      data,
			EndStream: end,
			Padded:    true,
			PadLength: padLen,
		}
		var buf bytes.Buffer
		fr := NewFramer(&buf, &buf)
		fr.MaxReadFrameSize = MaxAllowedFrameSize
		if err := fr.WriteFrame(in); err != nil {
			return false
		}
		out, err := fr.ReadFrame()
		if err != nil {
			return false
		}
		got, ok := out.(*DataFrame)
		if !ok {
			return false
		}
		return got.StreamID == in.StreamID &&
			got.EndStream == in.EndStream &&
			got.PadLength == in.PadLength &&
			bytes.Equal(got.Data, in.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if FrameData.String() != "DATA" || FrameType(0xee).String() == "" {
		t.Error("FrameType.String broken")
	}
	if ErrCodeProtocol.String() != "PROTOCOL_ERROR" || ErrCode(0xffff).String() == "" {
		t.Error("ErrCode.String broken")
	}
	if SettingMaxFrameSize.String() != "SETTINGS_MAX_FRAME_SIZE" {
		t.Error("SettingID.String broken")
	}
	if (ConnectionError{Code: ErrCodeProtocol, Reason: "x"}).Error() == "" {
		t.Error("ConnectionError.Error broken")
	}
	if (StreamError{StreamID: 3, Code: ErrCodeCancel}).Error() == "" {
		t.Error("StreamError.Error broken")
	}
}
