package h2

import (
	"errors"
	"fmt"
)

// HeaderField is a single name/value pair in an HPACK header list.
type HeaderField struct {
	Name  string
	Value string

	// Sensitive marks the field as never-indexed (RFC 7541 section
	// 6.2.3); intermediaries must not add it to any table.
	Sensitive bool
}

// String renders the field as "name: value".
func (f HeaderField) String() string { return f.Name + ": " + f.Value }

// size returns the RFC 7541 section 4.1 size of the entry: name and
// value lengths plus 32 octets of overhead.
func (f HeaderField) size() uint32 {
	return uint32(len(f.Name) + len(f.Value) + 32)
}

// staticTable is the HPACK static table (RFC 7541 Appendix A).
// Index 1 maps to staticTable[0].
var staticTable = [61]HeaderField{
	{Name: ":authority"},
	{Name: ":method", Value: "GET"},
	{Name: ":method", Value: "POST"},
	{Name: ":path", Value: "/"},
	{Name: ":path", Value: "/index.html"},
	{Name: ":scheme", Value: "http"},
	{Name: ":scheme", Value: "https"},
	{Name: ":status", Value: "200"},
	{Name: ":status", Value: "204"},
	{Name: ":status", Value: "206"},
	{Name: ":status", Value: "304"},
	{Name: ":status", Value: "400"},
	{Name: ":status", Value: "404"},
	{Name: ":status", Value: "500"},
	{Name: "accept-charset"},
	{Name: "accept-encoding", Value: "gzip, deflate"},
	{Name: "accept-language"},
	{Name: "accept-ranges"},
	{Name: "accept"},
	{Name: "access-control-allow-origin"},
	{Name: "age"},
	{Name: "allow"},
	{Name: "authorization"},
	{Name: "cache-control"},
	{Name: "content-disposition"},
	{Name: "content-encoding"},
	{Name: "content-language"},
	{Name: "content-length"},
	{Name: "content-location"},
	{Name: "content-range"},
	{Name: "content-type"},
	{Name: "cookie"},
	{Name: "date"},
	{Name: "etag"},
	{Name: "expect"},
	{Name: "expires"},
	{Name: "from"},
	{Name: "host"},
	{Name: "if-match"},
	{Name: "if-modified-since"},
	{Name: "if-none-match"},
	{Name: "if-range"},
	{Name: "if-unmodified-since"},
	{Name: "last-modified"},
	{Name: "link"},
	{Name: "location"},
	{Name: "max-forwards"},
	{Name: "proxy-authenticate"},
	{Name: "proxy-authorization"},
	{Name: "range"},
	{Name: "referer"},
	{Name: "refresh"},
	{Name: "retry-after"},
	{Name: "server"},
	{Name: "set-cookie"},
	{Name: "strict-transport-security"},
	{Name: "transfer-encoding"},
	{Name: "user-agent"},
	{Name: "vary"},
	{Name: "via"},
	{Name: "www-authenticate"},
}

// staticIndex maps "name\x00value" to a static table index for exact
// matches, and name alone to a name-only match.
var staticIndex = buildStaticIndex()

func buildStaticIndex() map[string]uint64 {
	m := make(map[string]uint64, 2*len(staticTable))
	for i := len(staticTable) - 1; i >= 0; i-- {
		f := staticTable[i]
		m[f.Name+"\x00"+f.Value] = uint64(i + 1)
		m[f.Name] = uint64(i + 1) // earliest entry wins for name-only
	}
	return m
}

// dynamicTable is an HPACK dynamic table: a FIFO of header fields with
// size-based eviction. Entry 1 is the most recently inserted.
type dynamicTable struct {
	entries []HeaderField // entries[0] is oldest
	size    uint32
	maxSize uint32
}

// setMaxSize updates the table capacity, evicting as needed.
func (t *dynamicTable) setMaxSize(max uint32) {
	t.maxSize = max
	t.evict()
}

// add inserts f, evicting old entries to stay within maxSize. An entry
// larger than the whole table empties it (RFC 7541 section 4.4).
func (t *dynamicTable) add(f HeaderField) {
	if f.size() > t.maxSize {
		t.entries = nil
		t.size = 0
		return
	}
	t.entries = append(t.entries, f)
	t.size += f.size()
	t.evict()
}

func (t *dynamicTable) evict() {
	var drop int
	for t.size > t.maxSize && drop < len(t.entries) {
		t.size -= t.entries[drop].size()
		drop++
	}
	if drop > 0 {
		t.entries = append(t.entries[:0], t.entries[drop:]...)
	}
}

// reset empties the table and restores capacity max, keeping the
// entries slice's backing array. Vacated slots are zeroed so the
// table does not pin dead strings.
func (t *dynamicTable) reset(max uint32) {
	for i := range t.entries {
		t.entries[i] = HeaderField{}
	}
	t.entries = t.entries[:0]
	t.size = 0
	t.maxSize = max
}

// len returns the number of live entries.
func (t *dynamicTable) len() int { return len(t.entries) }

// at returns the i-th entry where 1 is most recent.
func (t *dynamicTable) at(i uint64) (HeaderField, bool) {
	if i == 0 || i > uint64(len(t.entries)) {
		return HeaderField{}, false
	}
	return t.entries[uint64(len(t.entries))-i], true
}

// search returns the dynamic index (1 = most recent) of the best
// match: exact match preferred, else name-only, else 0.
func (t *dynamicTable) search(f HeaderField) (idx uint64, exact bool) {
	for i := len(t.entries) - 1; i >= 0; i-- {
		e := t.entries[i]
		if e.Name != f.Name {
			continue
		}
		d := uint64(len(t.entries) - i)
		if e.Value == f.Value {
			return d, true
		}
		if idx == 0 {
			idx = d
		}
	}
	return idx, false
}

// appendHpackInt appends the HPACK variable-length integer encoding
// of v with an n-bit prefix, OR-ing high into the first octet's
// non-prefix bits (RFC 7541 section 5.1).
func appendHpackInt(b []byte, high byte, n uint8, v uint64) []byte {
	limit := uint64(1)<<n - 1
	if v < limit {
		return append(b, high|byte(v))
	}
	b = append(b, high|byte(limit))
	v -= limit
	for v >= 128 {
		b = append(b, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readHpackInt decodes an HPACK integer with an n-bit prefix,
// returning the value and the remaining buffer.
func readHpackInt(b []byte, n uint8) (v uint64, rest []byte, err error) {
	if len(b) == 0 {
		return 0, nil, errNeedMore
	}
	limit := uint64(1)<<n - 1
	v = uint64(b[0]) & limit
	b = b[1:]
	if v < limit {
		return v, b, nil
	}
	var shift uint
	for i := 0; ; i++ {
		if i >= len(b) {
			return 0, nil, errNeedMore
		}
		octet := b[i]
		if shift > 56 {
			return 0, nil, errHpackIntOverflow
		}
		v += uint64(octet&0x7f) << shift
		shift += 7
		if octet&0x80 == 0 {
			return v, b[i+1:], nil
		}
	}
}

var (
	errNeedMore         = errors.New("h2: hpack: truncated input")
	errHpackIntOverflow = errors.New("h2: hpack: integer overflow")
)

// appendHpackString appends the HPACK string literal encoding of s,
// Huffman-coding it when that is shorter.
func appendHpackString(b []byte, s string) []byte {
	if hl := HuffmanEncodeLength(s); hl < len(s) {
		b = appendHpackInt(b, 0x80, 7, uint64(hl))
		return AppendHuffmanString(b, s)
	}
	b = appendHpackInt(b, 0, 7, uint64(len(s)))
	return append(b, s...)
}

// readHpackString decodes an HPACK string literal.
func readHpackString(b []byte) (s string, rest []byte, err error) {
	if len(b) == 0 {
		return "", nil, errNeedMore
	}
	huff := b[0]&0x80 != 0
	n, b, err := readHpackInt(b, 7)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, errNeedMore
	}
	raw, rest := b[:n], b[n:]
	if !huff {
		return string(raw), rest, nil
	}
	dec, err := HuffmanDecode(nil, raw)
	if err != nil {
		return "", nil, err
	}
	return string(dec), rest, nil
}

// HpackEncoder compresses header lists into HPACK header blocks. The
// zero value is not usable; construct with NewHpackEncoder.
type HpackEncoder struct {
	table       dynamicTable
	minTableCap uint32 // pending table-size reduction to signal
	pendingCap  bool

	keyBuf []byte // scratch for the static-index lookup key
}

// NewHpackEncoder returns an encoder with the given dynamic table
// capacity (use 4096 for the protocol default).
func NewHpackEncoder(maxTableSize uint32) *HpackEncoder {
	e := &HpackEncoder{}
	e.table.maxSize = maxTableSize
	return e
}

// Reset restores the encoder to its just-constructed state with the
// given table capacity, keeping the dynamic table's backing array so
// a reused encoder compresses without re-allocating it.
func (e *HpackEncoder) Reset(maxTableSize uint32) {
	e.table.reset(maxTableSize)
	e.minTableCap = 0
	e.pendingCap = false
}

// SetMaxDynamicTableSize changes the dynamic table capacity; the
// change is signalled at the start of the next header block as
// required by RFC 7541 section 6.3.
func (e *HpackEncoder) SetMaxDynamicTableSize(v uint32) {
	e.table.setMaxSize(v)
	e.minTableCap = v
	e.pendingCap = true
}

// AppendHeaderBlock appends the HPACK encoding of fields to b.
func (e *HpackEncoder) AppendHeaderBlock(b []byte, fields []HeaderField) []byte {
	if e.pendingCap {
		b = appendHpackInt(b, 0x20, 5, uint64(e.minTableCap))
		e.pendingCap = false
	}
	for _, f := range fields {
		b = e.appendField(b, f)
	}
	return b
}

func (e *HpackEncoder) appendField(b []byte, f HeaderField) []byte {
	if f.Sensitive {
		// Literal never-indexed (0001xxxx), name possibly indexed.
		nameIdx := e.nameIndex(f.Name)
		b = appendHpackInt(b, 0x10, 4, nameIdx)
		if nameIdx == 0 {
			b = appendHpackString(b, f.Name)
		}
		return appendHpackString(b, f.Value)
	}

	// Exact match: indexed representation (1xxxxxxx). The key is
	// assembled in a scratch buffer; the map probe with a string(...)
	// conversion compiles without a temporary string allocation.
	e.keyBuf = append(append(append(e.keyBuf[:0], f.Name...), 0), f.Value...)
	if idx, ok := staticIndex[string(e.keyBuf)]; ok {
		return appendHpackInt(b, 0x80, 7, idx)
	}
	if didx, exact := e.table.search(f); exact {
		return appendHpackInt(b, 0x80, 7, uint64(len(staticTable))+didx)
	}

	// Literal with incremental indexing (01xxxxxx).
	nameIdx := e.nameIndex(f.Name)
	b = appendHpackInt(b, 0x40, 6, nameIdx)
	if nameIdx == 0 {
		b = appendHpackString(b, f.Name)
	}
	b = appendHpackString(b, f.Value)
	e.table.add(f)
	return b
}

// nameIndex returns the combined static+dynamic index of a name-only
// match, or zero.
func (e *HpackEncoder) nameIndex(name string) uint64 {
	if idx, ok := staticIndex[name]; ok {
		return idx
	}
	if didx, _ := e.table.search(HeaderField{Name: name}); didx != 0 {
		return uint64(len(staticTable)) + didx
	}
	return 0
}

// HpackDecoder decompresses HPACK header blocks. The zero value is
// not usable; construct with NewHpackDecoder.
type HpackDecoder struct {
	table dynamicTable

	// maxAllowedTableSize bounds dynamic table size updates; set from
	// the local SETTINGS_HEADER_TABLE_SIZE.
	maxAllowedTableSize uint32

	// MaxHeaderListSize caps the total decoded size (sum of
	// RFC 7541 entry sizes). Zero means no limit.
	MaxHeaderListSize uint32

	// fields is the DecodeFullReuse scratch; huffBuf is the Huffman
	// decode scratch; strings interns decoded literals so repeated
	// header values (paths, status codes) cost one allocation ever
	// rather than one per block.
	fields  []HeaderField
	huffBuf []byte
	strings map[string]string
}

// NewHpackDecoder returns a decoder whose dynamic table is capped at
// maxTableSize octets.
func NewHpackDecoder(maxTableSize uint32) *HpackDecoder {
	d := &HpackDecoder{maxAllowedTableSize: maxTableSize}
	d.table.maxSize = maxTableSize
	return d
}

// Reset restores protocol state (dynamic table and its capacity) to
// what NewHpackDecoder(maxTableSize) would produce, so a reused
// decoder tracks a fresh peer encoder. Decode scratch and the string
// intern cache are deliberately kept: they hold no protocol state,
// and identical literals decode to equal strings either way.
func (d *HpackDecoder) Reset(maxTableSize uint32) {
	d.table.reset(maxTableSize)
	d.maxAllowedTableSize = maxTableSize
}

// intern returns a string equal to b, reusing a previously decoded
// instance when available. The cache only ever grows, which is fine
// for the simulator's closed header vocabulary.
func (d *HpackDecoder) intern(b []byte) string {
	if s, ok := d.strings[string(b)]; ok { // no-alloc map probe
		return s
	}
	if d.strings == nil {
		d.strings = make(map[string]string)
	}
	s := string(b)
	d.strings[s] = s
	return s
}

// readString decodes an HPACK string literal using the decoder's
// Huffman scratch and intern cache; allocation-free for literals seen
// before.
func (d *HpackDecoder) readString(b []byte) (s string, rest []byte, err error) {
	if len(b) == 0 {
		return "", nil, errNeedMore
	}
	huff := b[0]&0x80 != 0
	n, b, err := readHpackInt(b, 7)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, errNeedMore
	}
	raw, rest := b[:n], b[n:]
	if !huff {
		return d.intern(raw), rest, nil
	}
	dec, err := HuffmanDecode(d.huffBuf[:0], raw)
	if err != nil {
		return "", nil, err
	}
	d.huffBuf = dec
	return d.intern(dec), rest, nil
}

// DecodeFull decodes a complete header block (all fragments already
// concatenated). The returned slice is freshly allocated and owned by
// the caller; the allocation-free variant is DecodeFullReuse.
func (d *HpackDecoder) DecodeFull(block []byte) ([]HeaderField, error) {
	fields, err := d.decodeFull(nil, block)
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// DecodeFullReuse is DecodeFull with recycled storage: the returned
// slice is scratch owned by the decoder, valid only until the next
// decode call. In steady state (every literal seen before) it
// allocates nothing.
func (d *HpackDecoder) DecodeFullReuse(block []byte) ([]HeaderField, error) {
	fields, err := d.decodeFull(d.fields[:0], block)
	d.fields = fields
	if err != nil {
		return nil, err
	}
	return fields, nil
}

func (d *HpackDecoder) decodeFull(fields []HeaderField, block []byte) ([]HeaderField, error) {
	var listSize uint32
	b := block
	seenField := false
	for len(b) > 0 {
		octet := b[0]
		switch {
		case octet&0x80 != 0: // indexed field
			idx, rest, err := readHpackInt(b, 7)
			if err != nil {
				return fields, d.wrap(err)
			}
			b = rest
			f, err := d.fieldAt(idx)
			if err != nil {
				return fields, err
			}
			fields, listSize = append(fields, f), listSize+f.size()
			seenField = true

		case octet&0xc0 == 0x40: // literal, incremental indexing
			f, rest, err := d.readLiteral(b, 6)
			if err != nil {
				return fields, d.wrap(err)
			}
			b = rest
			d.table.add(f)
			fields, listSize = append(fields, f), listSize+f.size()
			seenField = true

		case octet&0xe0 == 0x20: // dynamic table size update
			if seenField {
				return fields, ConnectionError{Code: ErrCodeCompression, Reason: "table size update after field"}
			}
			v, rest, err := readHpackInt(b, 5)
			if err != nil {
				return fields, d.wrap(err)
			}
			if v > uint64(d.maxAllowedTableSize) {
				return fields, ConnectionError{Code: ErrCodeCompression, Reason: "table size update exceeds limit"}
			}
			d.table.setMaxSize(uint32(v))
			b = rest

		default: // literal without indexing (0000) or never-indexed (0001)
			f, rest, err := d.readLiteral(b, 4)
			if err != nil {
				return fields, d.wrap(err)
			}
			f.Sensitive = octet&0x10 != 0
			b = rest
			fields, listSize = append(fields, f), listSize+f.size()
			seenField = true
		}
		if d.MaxHeaderListSize != 0 && listSize > d.MaxHeaderListSize {
			return fields, ErrHeaderListTooLong
		}
	}
	return fields, nil
}

// readLiteral decodes a literal field representation whose name index
// uses an n-bit prefix.
func (d *HpackDecoder) readLiteral(b []byte, n uint8) (HeaderField, []byte, error) {
	idx, b, err := readHpackInt(b, n)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var f HeaderField
	if idx != 0 {
		ref, err := d.fieldAt(idx)
		if err != nil {
			return HeaderField{}, nil, err
		}
		f.Name = ref.Name
	} else {
		f.Name, b, err = d.readString(b)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, b, err = d.readString(b)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, b, nil
}

// fieldAt resolves a combined static+dynamic table index.
func (d *HpackDecoder) fieldAt(idx uint64) (HeaderField, error) {
	if idx == 0 {
		return HeaderField{}, ConnectionError{Code: ErrCodeCompression, Reason: "index 0"}
	}
	if idx <= uint64(len(staticTable)) {
		return staticTable[idx-1], nil
	}
	f, ok := d.table.at(idx - uint64(len(staticTable)))
	if !ok {
		return HeaderField{}, ConnectionError{Code: ErrCodeCompression, Reason: fmt.Sprintf("index %d out of range", idx)}
	}
	return f, nil
}

func (d *HpackDecoder) wrap(err error) error {
	var ce ConnectionError
	if errors.As(err, &ce) {
		return err
	}
	return ConnectionError{Code: ErrCodeCompression, Reason: err.Error()}
}
