package h2

import (
	"io"
	"time"
)

// RequestPacer is an io.Writer middlebox for the client→server half
// of a live HTTP/2 connection: it re-segments the byte stream at
// frame boundaries and enforces a minimum spacing between frames that
// open requests (HEADERS), releasing everything else immediately.
// This is the real-network implementation of the paper's jitter knob:
// a gateway that holds GET packets so the server never has two
// requests in flight closer than Spacing apart.
//
// Write blocks while holding a request frame, so run the pacer inside
// its own relay goroutine. The zero value is not usable; construct
// with NewRequestPacer.
type RequestPacer struct {
	dst     io.Writer
	spacing time.Duration

	// OnFrame, when non-nil, observes every parsed frame (after the
	// preface) in order.
	OnFrame func(Frame)

	// Sleep is the blocking wait used between releases; overridable
	// for tests. Defaults to time.Sleep.
	Sleep func(time.Duration)

	scanner     FrameScanner
	prefaceLeft int
	lastRelease time.Time
}

// NewRequestPacer wraps dst. expectPreface should be true when the
// stream starts with the client connection preface (a raw client→
// server connection) and false when the preface was already consumed.
func NewRequestPacer(dst io.Writer, spacing time.Duration, expectPreface bool) *RequestPacer {
	p := &RequestPacer{dst: dst, spacing: spacing, Sleep: time.Sleep}
	if expectPreface {
		p.prefaceLeft = len(ClientPreface)
	}
	return p
}

// Write forwards b, holding frames that carry request HEADERS so that
// consecutive requests are at least Spacing apart on the upstream
// side. It always reports len(b) on success.
func (p *RequestPacer) Write(b []byte) (int, error) {
	total := len(b)
	// Forward any remaining preface bytes untouched.
	if p.prefaceLeft > 0 {
		n := p.prefaceLeft
		if n > len(b) {
			n = len(b)
		}
		if _, err := p.dst.Write(b[:n]); err != nil {
			return 0, err
		}
		p.prefaceLeft -= n
		b = b[n:]
		if len(b) == 0 {
			return total, nil
		}
	}
	frames, err := p.scanner.Feed(b)
	if err != nil {
		// Not parseable as HTTP/2: fall back to transparent relay.
		if _, werr := p.dst.Write(b); werr != nil {
			return 0, werr
		}
		return total, nil
	}
	for _, f := range frames {
		if p.OnFrame != nil {
			p.OnFrame(f)
		}
		if _, isReq := f.(*HeadersFrame); isReq && p.spacing > 0 {
			if wait := time.Until(p.lastRelease.Add(p.spacing)); wait > 0 {
				p.Sleep(wait)
			}
			p.lastRelease = time.Now()
		}
		if _, err := p.dst.Write(MarshalFrame(f)); err != nil {
			return 0, err
		}
	}
	return total, nil
}

var _ io.Writer = (*RequestPacer)(nil)
