package h2

// FlowWindow tracks one direction of a flow-control window for a
// stream or a connection (RFC 7540 section 5.2). Windows are signed:
// a SETTINGS_INITIAL_WINDOW_SIZE decrease can make a stream window
// negative.
type FlowWindow struct {
	avail int64
}

// NewFlowWindow returns a window with the given initial credit.
func NewFlowWindow(initial int32) FlowWindow {
	return FlowWindow{avail: int64(initial)}
}

// Available returns the current credit; it may be negative.
func (w *FlowWindow) Available() int64 { return w.avail }

// Consume debits n octets from the window. It returns false without
// changing the window when insufficient credit is available.
func (w *FlowWindow) Consume(n int64) bool {
	if n < 0 || w.avail < n {
		return false
	}
	w.avail -= n
	return true
}

// ConsumeUpTo debits min(n, available) and returns the amount
// debited. It never debits below zero credit.
func (w *FlowWindow) ConsumeUpTo(n int64) int64 {
	if n < 0 || w.avail <= 0 {
		return 0
	}
	if n > w.avail {
		n = w.avail
	}
	w.avail -= n
	return n
}

// Replenish credits n octets (a WINDOW_UPDATE). It returns an error
// if the window would exceed 2^31-1, which is a flow-control
// protocol violation.
func (w *FlowWindow) Replenish(n int64) error {
	if n < 0 {
		return ConnectionError{Code: ErrCodeInternal, Reason: "negative window replenish"}
	}
	if w.avail+n > MaxWindowSize {
		return ConnectionError{Code: ErrCodeFlowControl, Reason: "window overflow"}
	}
	w.avail += n
	return nil
}

// Adjust applies a SETTINGS_INITIAL_WINDOW_SIZE delta, which may
// drive the window negative (RFC 7540 section 6.9.2).
func (w *FlowWindow) Adjust(delta int64) error {
	if w.avail+delta > MaxWindowSize {
		return ConnectionError{Code: ErrCodeFlowControl, Reason: "window overflow on settings change"}
	}
	w.avail += delta
	return nil
}
