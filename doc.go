// Package repro is a from-scratch Go reproduction of "Depending on
// HTTP/2 for Privacy? Good Luck!" (Mitra, Vairam, SLP SK,
// Chandrachoodan, Kamakoti — DSN 2020): the first active traffic-
// analysis attack on HTTP/2, which forces a multiplexing server to
// serialize object transmissions and thereby restores the
// encrypted-object-size side channel.
//
// The repository root holds bench_test.go, whose benchmarks
// regenerate every table and figure of the paper's evaluation; the
// library lives under internal/ (see DESIGN.md for the system
// inventory) and runnable demonstrations under examples/ and cmd/.
package repro
